(* Chaos + replay battery for the deterministic fault-injection layer.

   Oracle: under every shipped fault schedule, each answer the system
   produces is either a structured error or bitwise-identical to a
   fault-free cold solve — never a silently wrong bound.  On top of that:
   the cache recovers from corrupt records (evict + recompute, no leaked
   temp files), the server never crashes and still drains gracefully, and
   every failure message printed here carries the exact plan string and
   chaos seed needed to replay the run.

   The schedule matrix is seeded by GRAPHIO_CHAOS_SEED (default 1; CI
   loops several seeds), so repeated CI runs explore different fault
   sequences while any single run stays fully deterministic. *)

open Graphio_core
module F = Graphio_fault
module Metrics = Graphio_obs.Metrics
module Jsonx = Graphio_obs.Jsonx
module Spectrum = Graphio_cache.Spectrum

let chaos_seed =
  match Sys.getenv_opt "GRAPHIO_CHAOS_SEED" with
  | Some s -> ( match int_of_string_opt s with Some n -> n | None -> 1)
  | None -> 1

(* ------------------------- replayable failures ------------------------ *)

(* Every chaos assertion failure must be reproducible from the printed
   message alone.  [fail_plan] threads the plan string and chaos seed into
   both the alcotest message and (when GRAPHIO_CHAOS_ARTIFACT is set, as
   in CI) an artifact file uploaded on red. *)
exception Chaos of string

let record_failure plan detail =
  match Sys.getenv_opt "GRAPHIO_CHAOS_ARTIFACT" with
  | None -> ()
  | Some path ->
      let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
      Printf.fprintf oc "GRAPHIO_FAULTS='%s' GRAPHIO_CHAOS_SEED=%d # %s\n" plan
        chaos_seed detail;
      close_out oc

let replayed plan detail =
  Printf.sprintf "%s [replay: GRAPHIO_FAULTS='%s' GRAPHIO_CHAOS_SEED=%d]"
    detail plan chaos_seed

let fail_plan plan fmt =
  Printf.ksprintf
    (fun detail ->
      record_failure plan detail;
      raise (Chaos (replayed plan detail)))
    fmt

(* Run a schedule body so that any escaping exception — an assertion via
   [fail_plan] or an unexpected crash — surfaces with the replay line. *)
let guard plan f =
  try f () with
  | Chaos msg -> Alcotest.fail msg
  | e ->
      let detail = "unexpected exception: " ^ Printexc.to_string e in
      record_failure plan detail;
      Alcotest.fail (replayed plan detail)

(* ------------------------------ helpers ------------------------------- *)

let fresh_dir prefix =
  let p = Filename.temp_file prefix "" in
  Sys.remove p;
  Unix.mkdir p 0o700;
  p

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let counter_of name =
  match Metrics.find (Metrics.snapshot ()) name with
  | Some (Metrics.Counter v) -> v
  | _ -> 0

let same_float a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* ======================================================================
   Fault-layer unit tests (no plan/seed dependence: fully deterministic)
   ====================================================================== *)

let test_parse_ok () =
  List.iter
    (fun s ->
      match F.parse s with
      | Ok _ -> ()
      | Error m -> Alcotest.failf "plan %S should parse: %s" s m)
    [
      "a.b";
      "cache.*:p=0.25:seed=3:kind=flip,pool.task:nth=2:count=1";
      "x:kind=delay:ms=2.5";
      "server.sock.read:nth=3:kind=partial";
      " a , b.c:p=0 ";
    ]

let test_parse_err () =
  List.iter
    (fun (s, fragment) ->
      match F.parse s with
      | Ok _ -> Alcotest.failf "plan %S should be rejected" s
      | Error m ->
          Alcotest.(check bool)
            (Printf.sprintf "error for %S is one line" s)
            false (String.contains m '\n');
          Alcotest.(check bool)
            (Printf.sprintf "error for %S mentions %S (got %S)" s fragment m)
            true
            (contains_substring m fragment))
    [
      ("", "no clauses");
      (":p=1", "names no site");
      ("a:p=2", "not in [0, 1]");
      ("a:p=x", "not a number");
      ("a:nth=0", ">= 1");
      ("a:nth=x", "not an integer");
      ("a:count=0", ">= 1");
      ("a:ms=-1", ">= 0");
      ("a:kind=bogus", "error|partial|flip|delay");
      ("a:frobnicate=1", "unknown key");
      ("a:p", "KEY=VALUE");
    ]

let test_inert_without_plan () =
  F.clear ();
  let s = F.site "unit.inert" in
  for _ = 1 to 5 do
    Alcotest.(check bool) "hit passes" true (F.hit s = F.Pass)
  done;
  Alcotest.(check bool) "not active" false (F.active ());
  Alcotest.(check int) "no fires" 0 (F.injected_total ());
  (* a plan for a different site leaves this one untouched *)
  F.with_plan "unit.other" (fun () ->
      Alcotest.(check bool) "unmatched site passes" true (F.hit s = F.Pass))

let test_nth_semantics () =
  F.with_plan "unit.nth:nth=3" (fun () ->
      let s = F.site "unit.nth" in
      let outcomes = List.init 5 (fun _ -> F.hit s) in
      Alcotest.(check bool)
        "fires exactly on the third hit" true
        (outcomes = [ F.Pass; F.Pass; F.Fail; F.Pass; F.Pass ]);
      Alcotest.(check bool)
        "log records site, 1-based hit index, and tag" true
        (F.injections () = [ ("unit.nth", 3, "fail") ]))

let test_count_cap () =
  F.with_plan "unit.count:count=2" (fun () ->
      let s = F.site "unit.count" in
      let outcomes = List.init 4 (fun _ -> F.hit s) in
      Alcotest.(check bool)
        "p=1 fires until the cap, then passes" true
        (outcomes = [ F.Fail; F.Fail; F.Pass; F.Pass ]);
      Alcotest.(check int) "two fires total" 2 (F.injected_total ()))

let test_prob_replay () =
  let plan = "unit.prob:p=0.5:seed=11" in
  let run () =
    F.with_plan plan (fun () ->
        let s = F.site "unit.prob" in
        List.init 200 (fun _ -> F.hit s))
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "same plan+seed gives the same sequence" true (a = b);
  let fires = List.length (List.filter (fun o -> o <> F.Pass) a) in
  Alcotest.(check bool) "p=0.5 fires some but not all" true
    (fires > 0 && fires < 200);
  (* a different seed must give a different sequence (with 200 coin flips,
     a collision would be astronomically unlikely) *)
  let c =
    F.with_plan "unit.prob:p=0.5:seed=12" (fun () ->
        let s = F.site "unit.prob" in
        List.init 200 (fun _ -> F.hit s))
  in
  Alcotest.(check bool) "different seed gives a different sequence" true
    (a <> c)

let test_kind_outcomes () =
  F.with_plan "unit.kind.partial:kind=partial" (fun () ->
      let s = F.site "unit.kind.partial" in
      (match F.hit ~len:64 s with
      | F.Torn k -> Alcotest.(check bool) "torn within len" true (k >= 0 && k < 64)
      | o -> Alcotest.failf "expected Torn, got %s" (match o with F.Fail -> "Fail" | _ -> "?"));
      Alcotest.(check bool) "partial with len=0 degrades to Fail" true
        (F.hit ~len:0 s = F.Fail));
  F.with_plan "unit.kind.flip:kind=flip" (fun () ->
      let s = F.site "unit.kind.flip" in
      (match F.hit ~len:64 s with
      | F.Flip (off, mask) ->
          Alcotest.(check bool) "flip offset within len" true (off >= 0 && off < 64);
          Alcotest.(check bool) "flip mask nonzero byte" true (mask >= 1 && mask <= 255)
      | _ -> Alcotest.fail "expected Flip");
      Alcotest.(check bool) "flip with len=0 degrades to Fail" true
        (F.hit ~len:0 s = F.Fail));
  F.with_plan "unit.kind.delay:kind=delay:ms=5" (fun () ->
      let s = F.site "unit.kind.delay" in
      match F.hit s with
      | F.Sleep t -> Alcotest.(check bool) "delay is ms/1000" true (same_float t 0.005)
      | _ -> Alcotest.fail "expected Sleep")

let test_wildcard_per_site () =
  F.with_plan "unit.wild.*:nth=1" (fun () ->
      let a = F.site "unit.wild.one" and b = F.site "unit.wild.two" in
      (* each matched site gets its own clause instance: both fire on
         their own first hit, independently *)
      Alcotest.(check bool) "site one fires first hit" true (F.hit a = F.Fail);
      Alcotest.(check bool) "site two fires first hit" true (F.hit b = F.Fail);
      Alcotest.(check bool) "site one passes afterwards" true (F.hit a = F.Pass))

let test_step_raises () =
  F.with_plan "unit.step:nth=1" (fun () ->
      let s = F.site "unit.step" in
      (match F.step s with
      | () -> Alcotest.fail "step should raise on a fired hit"
      | exception F.Injected name ->
          Alcotest.(check string) "exception carries site name" "unit.step" name);
      F.step s (* second hit passes *))

let test_fire_metrics () =
  let before = counter_of "fault.injected.unit.metric" in
  F.with_plan "unit.metric:nth=1" (fun () ->
      ignore (F.hit (F.site "unit.metric")));
  Alcotest.(check int) "fault.injected.unit.metric incremented"
    (before + 1)
    (counter_of "fault.injected.unit.metric")

let test_with_plan_restores () =
  F.set (F.parse_exn "unit.outer:nth=1");
  F.with_plan "unit.inner:nth=1" (fun () ->
      Alcotest.(check (option string)) "inner installed"
        (Some "unit.inner:nth=1") (F.plan_string ()));
  Alcotest.(check (option string)) "outer restored" (Some "unit.outer:nth=1")
    (F.plan_string ());
  F.clear ();
  Alcotest.(check (option string)) "cleared" None (F.plan_string ())

(* ======================================================================
   Cache chaos: bounds stay bitwise-identical to a fault-free cold solve
   ====================================================================== *)

let cache_specs =
  [| ("fft:3", 4, Solver.Normalized); ("fft:4", 8, Solver.Normalized);
     ("bhk:4", 8, Solver.Standard); ("inner:8", 4, Solver.Normalized);
     ("fft:3", 4, Solver.Standard); ("bhk:4", 16, Solver.Normalized) |]

let cache_jobs () =
  Array.map
    (fun (spec, m, method_) ->
      match Graphio_workloads.Spec.parse spec with
      | Ok g -> Solver.job ~method_ g ~m
      | Error e -> Alcotest.fail e)
    cache_specs

let bounds_of results =
  Array.map
    (fun (r : Solver.batch_result) ->
      r.Solver.outcome.Solver.result.Spectral_bound.bound)
    results

let run_round cache =
  bounds_of (Solver.bound_batch ~cache ~h:16 ~dense_threshold:24 (cache_jobs ()))

let cache_expected =
  lazy (bounds_of
          (Solver.bound_batch ~cache:Spectrum.disabled ~h:16 ~dense_threshold:24
             (cache_jobs ())))

let check_bounds plan label got =
  let expected = Lazy.force cache_expected in
  Array.iteri
    (fun i b ->
      if not (same_float b expected.(i)) then
        fail_plan plan "%s: job %d bound %h differs from fault-free %h" label i
          b expected.(i))
    got

let assert_no_leaked_tmp plan dir =
  Array.iter
    (fun f ->
      if contains_substring f ".tmp." then
        fail_plan plan "leaked temp file %s in cache dir" f)
    (Sys.readdir dir)

(* The shipped schedule matrix: every disk-tier site, every damage kind
   (error / torn / flipped byte), alone and in combination.  Seeds are
   offset by the chaos seed so CI's seed loop explores distinct fault
   sequences. *)
let cache_plans () =
  let s = chaos_seed in
  [
    Printf.sprintf "cache.disk.write:p=0.7:seed=%d" s;
    Printf.sprintf "cache.disk.write:p=0.7:seed=%d:kind=partial" (s + 1);
    Printf.sprintf "cache.disk.write:p=0.7:seed=%d:kind=flip" (s + 2);
    Printf.sprintf "cache.disk.read:p=0.7:seed=%d" (s + 3);
    Printf.sprintf "cache.disk.read:p=0.7:seed=%d:kind=partial" (s + 4);
    Printf.sprintf "cache.disk.read:p=0.7:seed=%d:kind=flip" (s + 5);
    Printf.sprintf "cache.disk.rename:p=0.7:seed=%d" (s + 6);
    Printf.sprintf "cache.checksum:p=0.6:seed=%d" (s + 7);
    Printf.sprintf "cache.*:p=0.3:seed=%d:kind=partial,cache.disk.rename:p=0.4:seed=%d"
      (s + 8) (s + 9);
  ]

let test_cache_chaos_matrix () =
  List.iter
    (fun plan ->
      let dir = fresh_dir "graphio_chaos_cache" in
      Fun.protect
        ~finally:(fun () -> rm_rf dir)
        (fun () ->
          guard plan (fun () ->
              let cache = Spectrum.create ~dir () in
              F.with_plan plan (fun () ->
                  for round = 1 to 3 do
                    check_bounds plan
                      (Printf.sprintf "chaos round %d" round)
                      (run_round cache);
                    (* force the next round through the disk tier *)
                    Spectrum.drop_memory cache
                  done);
              (* plan removed: the cache must have fully recovered — the
                 final fault-free round is correct and no temp file from a
                 failed publish is left behind *)
              check_bounds plan "recovery round" (run_round cache);
              assert_no_leaked_tmp plan dir)))
    (cache_plans ())

(* Fire-proof per site: a deterministic nth=1 plan must make each cache
   site actually fire (counted by its fault.injected.* metric) while the
   bounds stay correct.  Sites on the read path need a warm cache first —
   they are only consulted once a record exists to read. *)
let test_cache_sites_fire () =
  List.iter
    (fun (site, warm_first) ->
      let plan = site ^ ":nth=1" in
      let dir = fresh_dir "graphio_chaos_fire" in
      Fun.protect
        ~finally:(fun () -> rm_rf dir)
        (fun () ->
          guard plan (fun () ->
              let cache = Spectrum.create ~dir () in
              if warm_first then begin
                ignore (run_round cache);
                Spectrum.drop_memory cache
              end;
              let before = counter_of ("fault.injected." ^ site) in
              F.with_plan plan (fun () ->
                  check_bounds plan "round under fire" (run_round cache);
                  if F.injected_total () < 1 then
                    fail_plan plan "site %s never fired" site);
              if counter_of ("fault.injected." ^ site) <= before then
                fail_plan plan "fault.injected.%s did not increment" site)))
    [
      ("cache.disk.write", false);
      ("cache.disk.rename", false);
      ("cache.disk.read", true);
      ("cache.checksum", true);
    ]

(* ======================================================================
   Replay determinism: same plan + seed => same injected sequence
   ====================================================================== *)

let test_replay_determinism () =
  let plan =
    Printf.sprintf
      "cache.*:p=0.5:seed=%d:kind=partial,cache.disk.rename:p=0.3:seed=%d"
      chaos_seed (chaos_seed + 1)
  in
  let run () =
    let dir = fresh_dir "graphio_chaos_replay" in
    Fun.protect
      ~finally:(fun () -> rm_rf dir)
      (fun () ->
        F.with_plan plan (fun () ->
            let cache = Spectrum.create ~dir () in
            for _ = 1 to 3 do
              ignore (run_round cache);
              Spectrum.drop_memory cache
            done;
            F.injections ()))
  in
  let a = run () and b = run () in
  guard plan (fun () ->
      if List.length a = 0 then fail_plan plan "schedule never fired";
      if a <> b then
        fail_plan plan
          "two runs of the same plan injected different sequences (%d vs %d fires)"
          (List.length a) (List.length b))

(* ======================================================================
   Pool chaos: task-level injected exceptions
   ====================================================================== *)

let test_pool_task_injection () =
  let plan = "pool.task:nth=1" in
  Graphio_par.Pool.with_pool ~size:4 (fun pool ->
      let jobs = Array.init 8 (fun i () -> i * i) in
      guard plan (fun () ->
          F.with_plan plan (fun () ->
              match Graphio_par.Pool.run_all pool jobs with
              | _ -> fail_plan plan "run_all swallowed the injected task death"
              | exception F.Injected "pool.task" -> ()));
      (* the pool survives a dead task: the next batch is correct *)
      let r = Graphio_par.Pool.run_all pool jobs in
      Alcotest.(check (array int))
        "pool recovered after injected task death"
        (Array.init 8 (fun i -> i * i))
        r)

(* ======================================================================
   Server chaos
   ====================================================================== *)

open Graphio_server

let socket_path () =
  let path = Filename.temp_file "graphio_chaos" ".sock" in
  Sys.remove path;
  path

(* Like test_server's [with_server], plus: the fault plan is installed
   only while [f] runs (shutdown happens fault-free), and a crash of the
   server domain is captured and reported with the replay line instead of
   being swallowed by [Domain.join]. *)
let with_chaos_server ?(pool_size = 3) ?timeout_s plan f =
  let path = socket_path () in
  let transport = Server.Unix_socket path in
  let cfg =
    { Server.transport; pool_size; cache = Spectrum.disabled; timeout_s;
      h = 16; dense_threshold = Some 24; closed_form = true;
      warm_start = false; filter_degree = Graphio_la.Filtered.Auto;
      portfolio = None }
  in
  let listening = Atomic.make false in
  let crashed = Atomic.make "" in
  let server =
    Domain.spawn (fun () ->
        try Server.run ~ready:(fun () -> Atomic.set listening true) cfg
        with e -> Atomic.set crashed (Printexc.to_string e))
  in
  let deadline = Unix.gettimeofday () +. 10.0 in
  while (not (Atomic.get listening)) && Unix.gettimeofday () < deadline do
    Thread.yield ()
  done;
  Fun.protect
    ~finally:(fun () ->
      F.clear ();
      (try
         let c = Client.connect transport in
         ignore (Client.rpc c {|{"op":"shutdown"}|});
         Client.close c
       with _ -> ());
      Domain.join server;
      if Sys.file_exists path then Sys.remove path)
    (fun () ->
      guard plan (fun () -> F.with_plan plan (fun () -> f transport path)));
  guard plan (fun () ->
      match Atomic.get crashed with
      | "" -> ()
      | msg -> fail_plan plan "server domain crashed: %s" msg)

let get name json =
  match Jsonx.member name json with
  | Some v -> v
  | None -> Alcotest.failf "reply missing %S: %s" name (Jsonx.to_string json)

let get_float name json =
  match get name json with
  | Jsonx.Float f -> f
  | Jsonx.Int i -> float_of_int i
  | _ -> Alcotest.failf "reply field %S not a number" name

(* Fault-free reference bound for one (spec, m) under the server's solver
   configuration (h = 16, dense_threshold = 24). *)
let expected_bound =
  let memo = Hashtbl.create 16 in
  fun spec m ->
    match Hashtbl.find_opt memo (spec, m) with
    | Some b -> b
    | None ->
        let g =
          match Graphio_workloads.Spec.parse spec with
          | Ok g -> g
          | Error e -> Alcotest.fail e
        in
        let b =
          (Solver.bound_cached ~cache:Spectrum.disabled ~h:16
             ~dense_threshold:24 (Solver.job g ~m))
            .Solver.outcome.Solver.result.Spectral_bound.bound
        in
        Hashtbl.add memo (spec, m) b;
        b

let server_queries = [ ("fft:3", 4); ("fft:4", 8); ("bhk:4", 8); ("inner:8", 4) ]

(* rpc every query on one connection; each reply must be ok and
   bitwise-equal to the fault-free solve *)
let check_strict_replies plan transport =
  let c = Client.connect transport in
  Fun.protect
    ~finally:(fun () -> Client.close c)
    (fun () ->
      List.iteri
        (fun i (spec, m) ->
          let req = Printf.sprintf {|{"spec":%S,"m":%d,"id":%d}|} spec m i in
          let reply = Jsonx.of_string (Client.rpc c req) in
          (match get "ok" reply with
          | Jsonx.Bool true -> ()
          | _ ->
              fail_plan plan "query %s m=%d got error reply %s" spec m
                (Jsonx.to_string reply));
          let b = get_float "bound" reply in
          if not (same_float b (expected_bound spec m)) then
            fail_plan plan "query %s m=%d bound %h differs from fault-free %h"
              spec m b (expected_bound spec m))
        server_queries)

let test_server_read_partial () =
  let plan =
    Printf.sprintf "server.sock.read:p=0.6:seed=%d:kind=partial" chaos_seed
  in
  with_chaos_server plan (fun transport _path ->
      check_strict_replies plan transport)

let test_server_write_partial () =
  let plan =
    Printf.sprintf "server.sock.write:p=0.7:seed=%d:kind=partial" chaos_seed
  in
  with_chaos_server plan (fun transport _path ->
      check_strict_replies plan transport)

(* combo: torn reads + torn writes + dropped accept rounds + reply-path
   jitter, all at once; replies must still be bitwise-correct *)
let test_server_combo_partial () =
  let s = chaos_seed in
  let plan =
    Printf.sprintf
      "server.sock.read:p=0.4:seed=%d:kind=partial,server.sock.write:p=0.4:seed=%d:kind=partial,server.accept:p=0.5:seed=%d,server.deadline:p=1:seed=%d:kind=delay:ms=1"
      s (s + 1) (s + 2) (s + 3)
  in
  with_chaos_server plan (fun transport _path ->
      check_strict_replies plan transport)

(* mid-request disconnect: the first socket read fires -> the server drops
   the connection without replying; the client observes EOF, the server
   survives, and the next connection is answered correctly *)
let test_server_read_disconnect () =
  let plan = "server.sock.read:nth=1" in
  let before = counter_of "fault.injected.server.sock.read" in
  with_chaos_server plan (fun transport _path ->
      let c = Client.connect transport in
      (match Client.rpc c {|{"spec":"fft:3","m":4}|} with
      | reply -> fail_plan plan "expected a dropped connection, got %s" reply
      | exception End_of_file -> ()
      | exception (Sys_error _ | Unix.Unix_error _) ->
          (* dropping a connection with unread request bytes sends RST,
             so the client may see ECONNRESET instead of clean EOF *)
          ());
      (try Client.close c with _ -> ());
      if counter_of "fault.injected.server.sock.read" <> before + 1 then
        fail_plan plan "server.sock.read did not fire exactly once";
      (* nth=1 is exhausted: a fresh connection gets the real answer *)
      check_strict_replies plan transport)

(* dead write side: the first flush fires -> reply dropped, peer closed;
   later connections are unaffected *)
let test_server_write_fail () =
  let plan = "server.sock.write:nth=1" in
  let before = counter_of "fault.injected.server.sock.write" in
  with_chaos_server plan (fun transport _path ->
      let c = Client.connect transport in
      (match Client.rpc c {|{"spec":"fft:3","m":4}|} with
      | reply -> fail_plan plan "expected a dropped reply, got %s" reply
      | exception End_of_file -> ());
      (try Client.close c with _ -> ());
      if counter_of "fault.injected.server.sock.write" <> before + 1 then
        fail_plan plan "server.sock.write did not fire exactly once";
      check_strict_replies plan transport)

(* a fired accept skips the round; the connection waits in the kernel
   backlog and is accepted on the next loop iteration *)
let test_server_accept_skip () =
  let plan = "server.accept:nth=1" in
  let before = counter_of "fault.injected.server.accept" in
  with_chaos_server plan (fun transport _path ->
      check_strict_replies plan transport;
      if counter_of "fault.injected.server.accept" <= before then
        fail_plan plan "server.accept never fired")

(* Regression (latent bug found by the injector): a reply composed after
   the deadline passed used to be sent as a late success, because the
   deadline was only checked before the solve and per eigensolver sweep.
   Injected jitter between solve and reply must yield the structured
   timeout instead. *)
let test_server_deadline_jitter () =
  let plan = "server.deadline:nth=1:kind=delay:ms=120" in
  let before = counter_of "fault.injected.server.deadline" in
  with_chaos_server ~timeout_s:0.05 plan (fun transport _path ->
      let c = Client.connect transport in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          let reply = Jsonx.of_string (Client.rpc c {|{"spec":"fft:3","m":4}|}) in
          (match get "ok" reply with
          | Jsonx.Bool false -> ()
          | _ ->
              fail_plan plan "late reply sent as success: %s"
                (Jsonx.to_string reply));
          (match get "code" reply with
          | Jsonx.String "timeout" -> ()
          | j ->
              fail_plan plan "expected code timeout, got %s" (Jsonx.to_string j));
          if counter_of "fault.injected.server.deadline" <= before then
            fail_plan plan "server.deadline never fired"))

(* ------------------------- raw-socket helpers ------------------------- *)

let raw_connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let rec go n =
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> ()
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
      when n > 0 ->
        Unix.sleepf 0.05;
        go (n - 1)
  in
  go 100;
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.0;
  fd

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then go (off + Unix.write_substring fd s off (n - off))
  in
  go 0

(* read lines until EOF (or the receive timeout) *)
let read_lines_until_eof fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  (try
     let rec go () =
       match Unix.read fd chunk 0 (Bytes.length chunk) with
       | 0 -> ()
       | n ->
           Buffer.add_subbytes buf chunk 0 n;
           go ()
     in
     go ()
   with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ());
  String.split_on_char '\n' (Buffer.contents buf)
  |> List.filter (fun l -> String.trim l <> "")

(* Pipelined dispatch through the domain pool: >1 request in one socket
   write lands in one select round, so the tasks go through Pool.run_all
   together.  The injected task death makes run_all raise; the server must
   fall back, answer every request, and keep running — the historical
   behavior was a server crash. *)
let test_server_pool_task_death () =
  let plan = "pool.task:nth=1" in
  let before = counter_of "fault.injected.pool.task" in
  with_chaos_server ~pool_size:3 plan (fun _transport path ->
      let fd = raw_connect path in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let ms = [ 4; 5; 6; 7 ] in
          let reqs =
            List.mapi
              (fun i m -> Printf.sprintf {|{"spec":"fft:3","m":%d,"id":%d}|} m i)
              ms
          in
          write_all fd (String.concat "\n" reqs ^ "\n");
          Unix.shutdown fd Unix.SHUTDOWN_SEND;
          let replies = read_lines_until_eof fd in
          if List.length replies <> List.length ms then
            fail_plan plan "expected %d replies, got %d: %s" (List.length ms)
              (List.length replies)
              (String.concat " | " replies);
          List.iteri
            (fun i line ->
              let reply = Jsonx.of_string line in
              (match get "id" reply with
              | Jsonx.Int id when id = i -> ()
              | _ -> fail_plan plan "reply %d out of order: %s" i line);
              match get "ok" reply with
              | Jsonx.Bool true ->
                  let b = get_float "bound" reply in
                  let e = expected_bound "fft:3" (List.nth ms i) in
                  if not (same_float b e) then
                    fail_plan plan "reply %d bound %h differs from fault-free %h"
                      i b e
              | Jsonx.Bool false -> (
                  (* a structured error is acceptable — but only the
                     internal-error shape, never a silent wrong bound *)
                  match get "code" reply with
                  | Jsonx.String "internal" -> ()
                  | j ->
                      fail_plan plan "reply %d unexpected error code %s"
                        i (Jsonx.to_string j))
              | _ -> fail_plan plan "reply %d malformed: %s" i line)
            replies;
          if counter_of "fault.injected.pool.task" <= before then
            fail_plan plan "pool.task never fired"))

(* Read-side byte flips can rewrite a request into a different-but-valid
   one, so the bitwise oracle does not apply (and such plans are excluded
   from the strict schedules above).  The surviving invariants: the server
   never crashes, every reply line is well-formed JSON with an ok field,
   and the server still drains cleanly afterwards. *)
let test_server_read_flip_survival () =
  let plan =
    Printf.sprintf "server.sock.read:p=0.5:seed=%d:kind=flip" chaos_seed
  in
  with_chaos_server plan (fun _transport path ->
      for i = 0 to 5 do
        let fd = raw_connect path in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            write_all fd
              (Printf.sprintf {|{"spec":"fft:3","m":%d,"id":%d}|} (4 + i) i
              ^ "\n");
            Unix.shutdown fd Unix.SHUTDOWN_SEND;
            List.iter
              (fun line ->
                match Jsonx.of_string line with
                | exception _ ->
                    fail_plan plan "connection %d: reply not JSON: %s" i line
                | reply -> (
                    match Jsonx.member "ok" reply with
                    | Some (Jsonx.Bool _) -> ()
                    | _ ->
                        fail_plan plan "connection %d: reply missing ok: %s" i
                          line))
              (read_lines_until_eof fd))
      done)

(* ======================================================================
   Store chaos: binary CSR files under injected damage
   ====================================================================== *)

module Store = Graphio_store.Store

(* Oracle: under any store.* schedule, write-then-load either raises a
   structured [Store.Error] or yields exactly the graph that was written
   (fingerprint-equal) — never a silently different graph.  Torn and
   flipped writes are deliberately published (the checksums, not the
   writer, are the trust boundary), so those schedules must surface as
   load-time errors. *)
let store_graph =
  lazy
    (Graphio_graph.Dag.replicate
       (Graphio_graph.Dag.of_edges ~n:4
          ~labels:[| "a"; ""; "b c"; "" |]
          [ (0, 1); (0, 2); (1, 3); (2, 3) ])
       ~copies:3)

let store_plans () =
  let s = chaos_seed in
  [
    Printf.sprintf "store.file.write:p=0.7:seed=%d" s;
    Printf.sprintf "store.file.write:p=0.7:seed=%d:kind=partial" (s + 1);
    Printf.sprintf "store.file.write:p=0.7:seed=%d:kind=flip" (s + 2);
    Printf.sprintf "store.file.read:p=0.7:seed=%d" (s + 3);
    Printf.sprintf "store.file.read:p=0.7:seed=%d:kind=partial" (s + 4);
    Printf.sprintf "store.file.read:p=0.7:seed=%d:kind=flip" (s + 5);
    Printf.sprintf "store.file.rename:p=0.7:seed=%d" (s + 6);
    Printf.sprintf "store.checksum:p=0.6:seed=%d" (s + 7);
    Printf.sprintf
      "store.*:p=0.3:seed=%d:kind=partial,store.file.rename:p=0.4:seed=%d"
      (s + 8) (s + 9);
  ]

let store_round plan dir round =
  let g = Lazy.force store_graph in
  let path = Filename.concat dir (Printf.sprintf "g%d.gcsr" round) in
  match Store.write path g with
  | exception Store.Error _ ->
      (* a failed publish must not leave a half-written target *)
      if Sys.file_exists path then
        fail_plan plan "round %d: failed write left %s behind" round path
  | () -> (
      match Store.load path with
      | exception Store.Error _ -> ()
      | t ->
          if not (Int64.equal (Store.fingerprint t) (Graphio_graph.Dag.fingerprint g))
          then
            fail_plan plan
              "round %d: load returned a different graph under faults" round)

let test_store_chaos_matrix () =
  List.iter
    (fun plan ->
      let dir = fresh_dir "graphio_chaos_store" in
      Fun.protect
        ~finally:(fun () -> rm_rf dir)
        (fun () ->
          guard plan (fun () ->
              F.with_plan plan (fun () ->
                  for round = 1 to 4 do
                    store_round plan dir round
                  done);
              (* plan removed: fault-free write/load round-trips, and no
                 temp file from any failed publish is left behind *)
              let g = Lazy.force store_graph in
              let path = Filename.concat dir "recovery.gcsr" in
              Store.write path g;
              if
                not
                  (Int64.equal
                     (Store.fingerprint (Store.load path))
                     (Graphio_graph.Dag.fingerprint g))
              then fail_plan plan "recovery roundtrip changed the graph";
              assert_no_leaked_tmp plan dir)))
    (store_plans ())

let test_store_sites_fire () =
  List.iter
    (fun (site, on_read_path) ->
      let plan = site ^ ":nth=1" in
      let dir = fresh_dir "graphio_chaos_store_fire" in
      Fun.protect
        ~finally:(fun () -> rm_rf dir)
        (fun () ->
          guard plan (fun () ->
              let g = Lazy.force store_graph in
              let path = Filename.concat dir "g.gcsr" in
              if on_read_path then Store.write path g;
              let before = counter_of ("fault.injected." ^ site) in
              F.with_plan plan (fun () ->
                  store_round plan dir 1;
                  if on_read_path then (
                    match Store.load path with
                    | exception Store.Error _ -> ()
                    | t ->
                        if
                          not
                            (Int64.equal (Store.fingerprint t)
                               (Graphio_graph.Dag.fingerprint g))
                        then fail_plan plan "faulted load changed the graph");
                  if F.injected_total () < 1 then
                    fail_plan plan "site %s never fired" site);
              if counter_of ("fault.injected." ^ site) <= before then
                fail_plan plan "fault.injected.%s did not increment" site)))
    [
      ("store.file.write", false);
      ("store.file.rename", false);
      ("store.file.read", true);
      ("store.checksum", true);
    ]

(* ======================================================================= *)

let () =
  Alcotest.run "graphio_chaos"
    [
      ( "fault",
        [
          Alcotest.test_case "parse ok" `Quick test_parse_ok;
          Alcotest.test_case "parse errors" `Quick test_parse_err;
          Alcotest.test_case "inert without plan" `Quick test_inert_without_plan;
          Alcotest.test_case "nth semantics" `Quick test_nth_semantics;
          Alcotest.test_case "count cap" `Quick test_count_cap;
          Alcotest.test_case "probabilistic replay" `Quick test_prob_replay;
          Alcotest.test_case "kind outcomes" `Quick test_kind_outcomes;
          Alcotest.test_case "wildcard per-site streams" `Quick
            test_wildcard_per_site;
          Alcotest.test_case "step raises Injected" `Quick test_step_raises;
          Alcotest.test_case "fires are metered" `Quick test_fire_metrics;
          Alcotest.test_case "with_plan restores" `Quick test_with_plan_restores;
        ] );
      ( "replay",
        [ Alcotest.test_case "same plan+seed, same injections" `Quick
            test_replay_determinism ] );
      ( "cache",
        [
          Alcotest.test_case "chaos matrix: bounds bitwise-stable" `Quick
            test_cache_chaos_matrix;
          Alcotest.test_case "every site fires (nth=1)" `Quick
            test_cache_sites_fire;
        ] );
      ( "store",
        [
          Alcotest.test_case "chaos matrix: fail closed or faithful" `Quick
            test_store_chaos_matrix;
          Alcotest.test_case "every site fires (nth=1)" `Quick
            test_store_sites_fire;
        ] );
      ( "pool",
        [ Alcotest.test_case "injected task death" `Quick
            test_pool_task_injection ] );
      ( "server",
        [
          Alcotest.test_case "torn reads: strict replies" `Quick
            test_server_read_partial;
          Alcotest.test_case "torn writes: strict replies" `Quick
            test_server_write_partial;
          Alcotest.test_case "combo schedule: strict replies" `Quick
            test_server_combo_partial;
          Alcotest.test_case "mid-request disconnect" `Quick
            test_server_read_disconnect;
          Alcotest.test_case "dead write side" `Quick test_server_write_fail;
          Alcotest.test_case "accept round skipped" `Quick
            test_server_accept_skip;
          Alcotest.test_case "deadline jitter -> structured timeout" `Quick
            test_server_deadline_jitter;
          Alcotest.test_case "pooled task death mid-batch" `Quick
            test_server_pool_task_death;
          Alcotest.test_case "read flips: survival" `Quick
            test_server_read_flip_survival;
        ] );
    ]
