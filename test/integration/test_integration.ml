(* Cross-library invariants: every lower bound in the repository must sit
   below every feasible schedule's simulated I/O.  These "sandwich" checks
   tie the whole system together: graph builders, Laplacians, eigensolvers,
   the spectral maximization, the convex min-cut baseline, and the pebble
   simulator all have to agree for them to pass. *)

open Graphio_core
open Graphio_graph
open Graphio_workloads
open Graphio_pebble

let spectral g ~m =
  (Solver.bound g ~m).Solver.result.Spectral_bound.bound

let spectral_std g ~m =
  (Solver.bound ~method_:Solver.Standard g ~m).Solver.result.Spectral_bound.bound

let upper g ~m = (Simulator.best_upper_bound g ~m).Simulator.io

let sandwich name g ~m =
  let u = float_of_int (upper g ~m) in
  let l4 = spectral g ~m in
  let l5 = spectral_std g ~m in
  let cm = float_of_int (Graphio_flow.Convex_mincut.bound g ~m) in
  let vb = float_of_int (Visit_bound.bound g ~m) in
  Alcotest.(check bool) (name ^ ": thm4 <= simulated") true (l4 <= u +. 1e-6);
  Alcotest.(check bool) (name ^ ": thm5 <= simulated") true (l5 <= u +. 1e-6);
  Alcotest.(check bool) (name ^ ": mincut <= simulated") true (cm <= u +. 1e-6);
  Alcotest.(check bool) (name ^ ": visit <= simulated") true (vb <= u +. 1e-6)

let test_sandwich_fft () =
  List.iter (fun (l, m) -> sandwich (Printf.sprintf "fft l=%d M=%d" l m) (Fft.build l) ~m)
    [ (3, 4); (4, 4); (5, 8); (6, 4); (6, 16) ]

let test_sandwich_bhk () =
  List.iter (fun (l, m) -> sandwich (Printf.sprintf "bhk l=%d M=%d" l m) (Bhk.build l) ~m)
    [ (4, 8); (5, 8); (6, 8); (7, 16) ]

let test_sandwich_matmul () =
  List.iter
    (fun (n, m) -> sandwich (Printf.sprintf "matmul n=%d M=%d" n m) (Matmul.build n) ~m)
    [ (2, 4); (3, 8); (4, 8) ]

let test_sandwich_strassen () =
  List.iter
    (fun (n, m) -> sandwich (Printf.sprintf "strassen n=%d M=%d" n m) (Strassen.build n) ~m)
    [ (2, 8); (4, 8) ]

let test_sandwich_inner_product () =
  sandwich "inner product" (Inner_product.build 8) ~m:4

let test_sandwich_er_random () =
  for seed = 1 to 8 do
    let g = Er.gnp ~n:60 ~p:0.12 ~seed in
    let m = max 4 (Simulator.min_feasible_m g) in
    sandwich (Printf.sprintf "er seed=%d" seed) g ~m
  done

let test_sandwich_traced_programs () =
  (* Bound the graphs extracted by the tracer, simulate them, sandwich. *)
  let open Graphio_trace in
  let ctx = Trace.create () in
  let _ = Programs.walsh_hadamard ctx (Array.init 16 float_of_int) in
  sandwich "traced wht" (Trace.graph ctx) ~m:4;
  let ctx2 = Trace.create () in
  let _ = Programs.matmul ctx2 (Array.make_matrix 3 3 1.0) (Array.make_matrix 3 3 2.0) in
  sandwich "traced matmul" (Trace.graph ctx2) ~m:8

(* ------------------------------------------------------------------ *)
(* Dense vs Lanczos backends agree on real workloads                   *)
(* ------------------------------------------------------------------ *)

let test_backends_agree_on_fft () =
  let g = Fft.build 6 in
  (* force both numeric paths over the same Laplacian (closed_form:false:
     the recognizer would otherwise answer before either backend runs) *)
  let dense =
    (Solver.bound ~dense_threshold:100_000 ~closed_form:false g ~m:8)
      .Solver.result
  in
  let lanczos =
    (Solver.bound ~dense_threshold:10 ~closed_form:false g ~m:8).Solver.result
  in
  Alcotest.(check (float 1.0)) "bounds agree"
    dense.Spectral_bound.bound lanczos.Spectral_bound.bound

let test_backends_agree_on_bhk () =
  let g = Bhk.build 9 in
  let dense =
    (Solver.bound ~dense_threshold:100_000 ~closed_form:false g ~m:8)
      .Solver.result
  in
  let lanczos =
    (Solver.bound ~dense_threshold:10 ~closed_form:false g ~m:8).Solver.result
  in
  Alcotest.(check (float 1.0)) "bounds agree"
    dense.Spectral_bound.bound lanczos.Spectral_bound.bound

let test_closed_form_vs_lanczos_butterfly () =
  (* Theorem 5 numerics via Lanczos vs exact closed-form spectrum. *)
  let l = 7 in
  let g = Fft.build l in
  let lanczos =
    (Solver.bound ~method_:Solver.Standard ~dense_threshold:10
       ~closed_form:false g ~m:8)
      .Solver.result
  in
  let closed =
    Solver.bound_of_spectrum
      ~spectrum:(Graphio_spectra.Butterfly_spectra.spectrum l)
      ~scale:0.5 ~n:(Dag.n_vertices g) ~m:8 ()
  in
  Alcotest.(check (float 1.0)) "lanczos matches closed form"
    closed.Spectral_bound.bound lanczos.Spectral_bound.bound

(* ------------------------------------------------------------------ *)
(* The paper's headline comparison: spectral vs convex min-cut          *)
(* ------------------------------------------------------------------ *)

let test_spectral_beats_mincut_on_large_instances () =
  (* Section 6.4: the spectral bound is tighter than convex min-cut on all
     four workloads once the graphs are big enough for the bound to be
     non-trivial.  Representative mid-size instances: *)
  List.iter
    (fun (name, g, m) ->
      let s = spectral g ~m in
      let c = float_of_int (Graphio_flow.Convex_mincut.bound g ~m) in
      Alcotest.(check bool) (name ^ ": spectral >= mincut") true (s >= c))
    [
      ("fft l=9 M=4", Fft.build 9, 4);
      ("bhk l=10 M=16", Bhk.build 10, 16);
    ]

let test_mincut_partitioned_trivial () =
  (* The paper found the 2M-partitioned variant trivial on complex graphs. *)
  List.iter
    (fun (name, g, m) ->
      let b = Graphio_flow.Convex_mincut.bound_partitioned g ~m ~part_size:(2 * m) in
      Alcotest.(check int) name 0 b)
    [
      ("fft", Fft.build 5, 8);
      ("matmul", Matmul.build 4, 8);
    ]

(* ------------------------------------------------------------------ *)
(* Exact sandwich: lower bounds vs the TRUE optimum                    *)
(* ------------------------------------------------------------------ *)

(* On graphs small enough for Exact.optimal_io, the whole lattice of
   quantities must order correctly:

     spectral (Thm 4 and 5)  <=  J*_G  <=  best simulated schedule

   and, per topological order X (the chain behind Theorems 2-4):

     spectral best_raw  <=  partition bound(X)  <=  J_G(X) = simulate(X).

   Note what is NOT asserted: partition(X) vs J*_G is unordered in
   general (the partition bound constrains one schedule, the optimum
   minimizes over all of them), so the two chains are checked separately. *)
let test_exact_sandwich () =
  let eps = 1e-6 in
  let checked = ref 0 in
  for seed = 1 to 30 do
    let n = 6 + (seed * 5 mod 9) in
    let p = 0.10 +. (0.05 *. float_of_int (seed mod 5)) in
    let g = Er.gnp ~n ~p ~seed:(1000 + seed) in
    let mf = Simulator.min_feasible_m g in
    let ms = if n <= 10 then [ mf; mf + 1; mf + 3 ] else [ mf; mf + 2 ] in
    List.iter
      (fun m ->
        (* the state cap keeps one pathological instance from dominating
           the suite; capped-out instances are skipped, and the final
           count assertion keeps the battery honest *)
        match Exact.optimal_io ~max_states:200_000 g ~m with
        | exception Exact.Too_large _ -> ()
        | exact ->
            incr checked;
            let name = Printf.sprintf "seed=%d n=%d M=%d" seed n m in
            let fexact = float_of_int exact in
            let u = upper g ~m in
            Alcotest.(check bool) (name ^ ": exact <= best simulated") true
              (exact <= u);
            let o4 = (Solver.bound g ~m).Solver.result in
            (* every portfolio member — and the portfolio itself — must sit
               below the true optimum; the failure message names the method
               and the instance so a soundness bug is immediately
               attributable *)
            List.iter
              (fun method_ ->
                let b = (Solver.bound ~method_ g ~m).Solver.result in
                Alcotest.(check bool)
                  (Printf.sprintf "%s method=%s: bound <= exact" name
                     (Method.to_string method_))
                  true
                  (b.Spectral_bound.bound <= fexact +. eps))
              Method.all;
            List.iter
              (fun (oname, order) ->
                let _, pv = Partition_bound.best g ~order ~m in
                let sim = (Simulator.simulate g ~order ~m).Simulator.io in
                Alcotest.(check bool)
                  (Printf.sprintf "%s %s: spectral raw <= partition" name oname)
                  true
                  (o4.Spectral_bound.best_raw <= pv +. eps);
                Alcotest.(check bool)
                  (Printf.sprintf "%s %s: partition <= simulated" name oname)
                  true
                  (Float.max 0.0 pv <= float_of_int sim +. eps))
              [
                ("natural", Topo.natural g);
                ("kahn", Topo.kahn g);
                ("dfs", Topo.dfs g);
              ])
      ms
  done;
  (* the battery is vacuous if Too_large ate everything *)
  Alcotest.(check bool)
    (Printf.sprintf "enough exact instances solved (%d)" !checked)
    true (!checked >= 40)

let test_exact_sandwich_structured () =
  (* Same lattice on the structured workloads that fit under the exact
     solver's 20-vertex cap. *)
  let eps = 1e-6 in
  List.iter
    (fun (name, g) ->
      let mf = Simulator.min_feasible_m g in
      List.iter
        (fun m ->
          match Exact.optimal_io ~max_states:200_000 g ~m with
          | exception Exact.Too_large _ -> ()
          | exact ->
              let u = upper g ~m in
              Alcotest.(check bool)
                (Printf.sprintf "%s M=%d: exact <= simulated" name m)
                true (exact <= u);
              List.iter
                (fun method_ ->
                  let b = (Solver.bound ~method_ g ~m).Solver.result in
                  Alcotest.(check bool)
                    (Printf.sprintf "%s M=%d method=%s: bound <= exact" name m
                       (Method.to_string method_))
                    true
                    (b.Spectral_bound.bound <= float_of_int exact +. eps))
                Method.all)
        [ mf; mf + 2 ])
    [
      ("fft l=2", Fft.build 2);
      ("fft l=3", Fft.build 3);
      ("inner d=4", Inner_product.build 4);
      ("inner d=8", Inner_product.build 8);
      ("diamond chain", Dag.of_edges ~n:8
         [ (0, 1); (0, 2); (1, 3); (2, 3); (3, 4); (3, 5); (4, 6); (5, 6); (6, 7) ]);
    ]

(* ------------------------------------------------------------------ *)
(* Parallel exact sandwich: Theorem 6 vs simulated parallel schedules  *)
(* ------------------------------------------------------------------ *)

(* The paper leaves Theorem 6 analytic; here it is sandwiched
   empirically: for every feasible parallel execution (an assignment of
   vertices to p processors plus a global topological order), the
   simulated max-per-processor I/O must dominate the p-processor
   spectral lower bound.  Small graphs only — the simulator enumerates
   concrete schedules, not the optimum, so the oracle is "bound below
   EVERY schedule we can build", minimized over orders x assignments. *)
let test_parallel_sandwich () =
  let eps = 1e-6 in
  let checked = ref 0 in
  let graphs =
    [
      ("fft l=2", Fft.build 2);
      ("fft l=3", Fft.build 3);
      ("inner d=4", Inner_product.build 4);
      ("diamond chain", Dag.of_edges ~n:8
         [ (0, 1); (0, 2); (1, 3); (2, 3); (3, 4); (3, 5); (4, 6); (5, 6); (6, 7) ]);
    ]
    @ List.map
        (fun seed ->
          (Printf.sprintf "er seed=%d" seed, Er.gnp ~n:(12 + (seed mod 8)) ~p:0.2 ~seed))
        [ 1; 2; 3; 4 ]
  in
  List.iter
    (fun (name, g) ->
      let m = max 4 (Simulator.min_feasible_m g) in
      List.iter
        (fun p ->
          let lower =
            (Solver.bound ~p g ~m).Solver.result.Spectral_bound.bound
          in
          let best = ref infinity in
          List.iter
            (fun order ->
              List.iter
                (fun assignment_of ->
                  match
                    Parallel_sim.simulate g
                      ~assignment:(assignment_of g ~order ~p)
                      ~order ~p ~m
                  with
                  | exception Invalid_argument _ ->
                      (* m below this assignment's per-processor
                         feasibility floor: not a legal schedule, so it
                         cannot witness the sandwich *)
                      ()
                  | r ->
                      incr checked;
                      best := Float.min !best (float_of_int r.Parallel_sim.max_io))
                [ Parallel_sim.block_assignment; Parallel_sim.round_robin_assignment ])
            [ Topo.natural g; Topo.kahn g; Topo.dfs g ];
          if !best < infinity then
            Alcotest.(check bool)
              (Printf.sprintf "%s p=%d M=%d: thm6 %.3f <= parallel sim %.3f" name p m
                 lower !best)
              true
              (lower <= !best +. eps))
        [ 2; 4 ])
    graphs;
  Alcotest.(check bool)
    (Printf.sprintf "enough parallel schedules simulated (%d)" !checked)
    true (!checked >= 40)

(* ------------------------------------------------------------------ *)
(* Edgelist round trip through the solver                              *)
(* ------------------------------------------------------------------ *)

let test_serialized_graph_same_bound () =
  let g = Fft.build 5 in
  let g' = Edgelist.of_string (Edgelist.to_string g) in
  Alcotest.(check (float 1e-6)) "same bound" (spectral g ~m:8) (spectral g' ~m:8)

(* ------------------------------------------------------------------ *)
(* Properties: random DAGs through the full pipeline                   *)
(* ------------------------------------------------------------------ *)

let prop_sandwich_random =
  QCheck2.Test.make ~name:"lower bounds below simulated upper (random dags)"
    ~count:20
    QCheck2.Gen.(
      let* n = int_range 10 50 in
      let* seed = int_range 0 10_000 in
      let* p = float_range 0.05 0.3 in
      return (Er.gnp ~n ~p ~seed))
    (fun g ->
      let m = max 4 (Simulator.min_feasible_m g) in
      let u = float_of_int (upper g ~m) in
      spectral g ~m <= u +. 1e-6
      && spectral_std g ~m <= u +. 1e-6
      && float_of_int (Graphio_flow.Convex_mincut.bound g ~m) <= u +. 1e-6)

let prop_thm5_below_thm4 =
  QCheck2.Test.make ~name:"thm5 never exceeds thm4 (random dags)" ~count:25
    QCheck2.Gen.(
      let* n = int_range 5 60 in
      let* seed = int_range 0 10_000 in
      return (Er.gnp ~n ~p:0.2 ~seed))
    (fun g ->
      let m = 4 in
      spectral_std g ~m <= spectral g ~m +. 1e-6)

let props =
  List.map QCheck_alcotest.to_alcotest [ prop_sandwich_random; prop_thm5_below_thm4 ]

let () =
  Alcotest.run "graphio_integration"
    [
      ( "sandwich",
        [
          Alcotest.test_case "fft" `Quick test_sandwich_fft;
          Alcotest.test_case "bhk" `Quick test_sandwich_bhk;
          Alcotest.test_case "matmul" `Quick test_sandwich_matmul;
          Alcotest.test_case "strassen" `Quick test_sandwich_strassen;
          Alcotest.test_case "inner product" `Quick test_sandwich_inner_product;
          Alcotest.test_case "er random" `Quick test_sandwich_er_random;
          Alcotest.test_case "traced programs" `Quick test_sandwich_traced_programs;
        ] );
      ( "exact-sandwich",
        [
          Alcotest.test_case "random dags vs true optimum" `Quick test_exact_sandwich;
          Alcotest.test_case "structured workloads vs true optimum" `Quick
            test_exact_sandwich_structured;
          Alcotest.test_case "parallel bound vs simulated schedules" `Quick
            test_parallel_sandwich;
        ] );
      ( "backends",
        [
          Alcotest.test_case "dense = lanczos (fft)" `Quick test_backends_agree_on_fft;
          Alcotest.test_case "dense = lanczos (bhk)" `Quick test_backends_agree_on_bhk;
          Alcotest.test_case "closed form = lanczos" `Quick
            test_closed_form_vs_lanczos_butterfly;
        ] );
      ( "paper-comparisons",
        [
          Alcotest.test_case "spectral beats mincut" `Slow
            test_spectral_beats_mincut_on_large_instances;
          Alcotest.test_case "partitioned mincut trivial" `Quick
            test_mincut_partitioned_trivial;
        ] );
      ( "serialization",
        [ Alcotest.test_case "bound stable over roundtrip" `Quick
            test_serialized_graph_same_bound ] );
      ("properties", props);
    ]
