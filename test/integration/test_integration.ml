(* Cross-library invariants: every lower bound in the repository must sit
   below every feasible schedule's simulated I/O.  These "sandwich" checks
   tie the whole system together: graph builders, Laplacians, eigensolvers,
   the spectral maximization, the convex min-cut baseline, and the pebble
   simulator all have to agree for them to pass. *)

open Graphio_core
open Graphio_graph
open Graphio_workloads
open Graphio_pebble

let spectral g ~m =
  (Solver.bound g ~m).Solver.result.Spectral_bound.bound

let spectral_std g ~m =
  (Solver.bound ~method_:Solver.Standard g ~m).Solver.result.Spectral_bound.bound

let upper g ~m = (Simulator.best_upper_bound g ~m).Simulator.io

let sandwich name g ~m =
  let u = float_of_int (upper g ~m) in
  let l4 = spectral g ~m in
  let l5 = spectral_std g ~m in
  let cm = float_of_int (Graphio_flow.Convex_mincut.bound g ~m) in
  Alcotest.(check bool) (name ^ ": thm4 <= simulated") true (l4 <= u +. 1e-6);
  Alcotest.(check bool) (name ^ ": thm5 <= simulated") true (l5 <= u +. 1e-6);
  Alcotest.(check bool) (name ^ ": mincut <= simulated") true (cm <= u +. 1e-6)

let test_sandwich_fft () =
  List.iter (fun (l, m) -> sandwich (Printf.sprintf "fft l=%d M=%d" l m) (Fft.build l) ~m)
    [ (3, 4); (4, 4); (5, 8); (6, 4); (6, 16) ]

let test_sandwich_bhk () =
  List.iter (fun (l, m) -> sandwich (Printf.sprintf "bhk l=%d M=%d" l m) (Bhk.build l) ~m)
    [ (4, 8); (5, 8); (6, 8); (7, 16) ]

let test_sandwich_matmul () =
  List.iter
    (fun (n, m) -> sandwich (Printf.sprintf "matmul n=%d M=%d" n m) (Matmul.build n) ~m)
    [ (2, 4); (3, 8); (4, 8) ]

let test_sandwich_strassen () =
  List.iter
    (fun (n, m) -> sandwich (Printf.sprintf "strassen n=%d M=%d" n m) (Strassen.build n) ~m)
    [ (2, 8); (4, 8) ]

let test_sandwich_inner_product () =
  sandwich "inner product" (Inner_product.build 8) ~m:4

let test_sandwich_er_random () =
  for seed = 1 to 8 do
    let g = Er.gnp ~n:60 ~p:0.12 ~seed in
    let m = max 4 (Simulator.min_feasible_m g) in
    sandwich (Printf.sprintf "er seed=%d" seed) g ~m
  done

let test_sandwich_traced_programs () =
  (* Bound the graphs extracted by the tracer, simulate them, sandwich. *)
  let open Graphio_trace in
  let ctx = Trace.create () in
  let _ = Programs.walsh_hadamard ctx (Array.init 16 float_of_int) in
  sandwich "traced wht" (Trace.graph ctx) ~m:4;
  let ctx2 = Trace.create () in
  let _ = Programs.matmul ctx2 (Array.make_matrix 3 3 1.0) (Array.make_matrix 3 3 2.0) in
  sandwich "traced matmul" (Trace.graph ctx2) ~m:8

(* ------------------------------------------------------------------ *)
(* Dense vs Lanczos backends agree on real workloads                   *)
(* ------------------------------------------------------------------ *)

let test_backends_agree_on_fft () =
  let g = Fft.build 6 in
  (* force both paths over the same Laplacian *)
  let dense = (Solver.bound ~dense_threshold:100_000 g ~m:8).Solver.result in
  let lanczos = (Solver.bound ~dense_threshold:10 g ~m:8).Solver.result in
  Alcotest.(check (float 1.0)) "bounds agree"
    dense.Spectral_bound.bound lanczos.Spectral_bound.bound

let test_backends_agree_on_bhk () =
  let g = Bhk.build 9 in
  let dense = (Solver.bound ~dense_threshold:100_000 g ~m:8).Solver.result in
  let lanczos = (Solver.bound ~dense_threshold:10 g ~m:8).Solver.result in
  Alcotest.(check (float 1.0)) "bounds agree"
    dense.Spectral_bound.bound lanczos.Spectral_bound.bound

let test_closed_form_vs_lanczos_butterfly () =
  (* Theorem 5 numerics via Lanczos vs exact closed-form spectrum. *)
  let l = 7 in
  let g = Fft.build l in
  let lanczos =
    (Solver.bound ~method_:Solver.Standard ~dense_threshold:10 g ~m:8).Solver.result
  in
  let closed =
    Solver.bound_of_spectrum
      ~spectrum:(Graphio_spectra.Butterfly_spectra.spectrum l)
      ~scale:0.5 ~n:(Dag.n_vertices g) ~m:8 ()
  in
  Alcotest.(check (float 1.0)) "lanczos matches closed form"
    closed.Spectral_bound.bound lanczos.Spectral_bound.bound

(* ------------------------------------------------------------------ *)
(* The paper's headline comparison: spectral vs convex min-cut          *)
(* ------------------------------------------------------------------ *)

let test_spectral_beats_mincut_on_large_instances () =
  (* Section 6.4: the spectral bound is tighter than convex min-cut on all
     four workloads once the graphs are big enough for the bound to be
     non-trivial.  Representative mid-size instances: *)
  List.iter
    (fun (name, g, m) ->
      let s = spectral g ~m in
      let c = float_of_int (Graphio_flow.Convex_mincut.bound g ~m) in
      Alcotest.(check bool) (name ^ ": spectral >= mincut") true (s >= c))
    [
      ("fft l=9 M=4", Fft.build 9, 4);
      ("bhk l=10 M=16", Bhk.build 10, 16);
    ]

let test_mincut_partitioned_trivial () =
  (* The paper found the 2M-partitioned variant trivial on complex graphs. *)
  List.iter
    (fun (name, g, m) ->
      let b = Graphio_flow.Convex_mincut.bound_partitioned g ~m ~part_size:(2 * m) in
      Alcotest.(check int) name 0 b)
    [
      ("fft", Fft.build 5, 8);
      ("matmul", Matmul.build 4, 8);
    ]

(* ------------------------------------------------------------------ *)
(* Edgelist round trip through the solver                              *)
(* ------------------------------------------------------------------ *)

let test_serialized_graph_same_bound () =
  let g = Fft.build 5 in
  let g' = Edgelist.of_string (Edgelist.to_string g) in
  Alcotest.(check (float 1e-6)) "same bound" (spectral g ~m:8) (spectral g' ~m:8)

(* ------------------------------------------------------------------ *)
(* Properties: random DAGs through the full pipeline                   *)
(* ------------------------------------------------------------------ *)

let prop_sandwich_random =
  QCheck2.Test.make ~name:"lower bounds below simulated upper (random dags)"
    ~count:20
    QCheck2.Gen.(
      let* n = int_range 10 50 in
      let* seed = int_range 0 10_000 in
      let* p = float_range 0.05 0.3 in
      return (Er.gnp ~n ~p ~seed))
    (fun g ->
      let m = max 4 (Simulator.min_feasible_m g) in
      let u = float_of_int (upper g ~m) in
      spectral g ~m <= u +. 1e-6
      && spectral_std g ~m <= u +. 1e-6
      && float_of_int (Graphio_flow.Convex_mincut.bound g ~m) <= u +. 1e-6)

let prop_thm5_below_thm4 =
  QCheck2.Test.make ~name:"thm5 never exceeds thm4 (random dags)" ~count:25
    QCheck2.Gen.(
      let* n = int_range 5 60 in
      let* seed = int_range 0 10_000 in
      return (Er.gnp ~n ~p:0.2 ~seed))
    (fun g ->
      let m = 4 in
      spectral_std g ~m <= spectral g ~m +. 1e-6)

let props =
  List.map QCheck_alcotest.to_alcotest [ prop_sandwich_random; prop_thm5_below_thm4 ]

let () =
  Alcotest.run "graphio_integration"
    [
      ( "sandwich",
        [
          Alcotest.test_case "fft" `Quick test_sandwich_fft;
          Alcotest.test_case "bhk" `Quick test_sandwich_bhk;
          Alcotest.test_case "matmul" `Quick test_sandwich_matmul;
          Alcotest.test_case "strassen" `Quick test_sandwich_strassen;
          Alcotest.test_case "inner product" `Quick test_sandwich_inner_product;
          Alcotest.test_case "er random" `Quick test_sandwich_er_random;
          Alcotest.test_case "traced programs" `Quick test_sandwich_traced_programs;
        ] );
      ( "backends",
        [
          Alcotest.test_case "dense = lanczos (fft)" `Quick test_backends_agree_on_fft;
          Alcotest.test_case "dense = lanczos (bhk)" `Quick test_backends_agree_on_bhk;
          Alcotest.test_case "closed form = lanczos" `Quick
            test_closed_form_vs_lanczos_butterfly;
        ] );
      ( "paper-comparisons",
        [
          Alcotest.test_case "spectral beats mincut" `Slow
            test_spectral_beats_mincut_on_large_instances;
          Alcotest.test_case "partitioned mincut trivial" `Quick
            test_mincut_partitioned_trivial;
        ] );
      ( "serialization",
        [ Alcotest.test_case "bound stable over roundtrip" `Quick
            test_serialized_graph_same_bound ] );
      ("properties", props);
    ]
