(* The two-tier spectrum cache's contract: a cached answer is bitwise
   indistinguishable from the solve that produced it, the memory tier
   never exceeds its entry bound, and the disk tier never trusts a
   corrupt record. *)

open Graphio_cache
open Graphio_graph
open Graphio_core

let temp_dir () =
  let path = Filename.temp_file "graphio_cache" "" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  path

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let with_temp_dir f =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let bits_equal a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
       a b

let key i =
  { Spectrum.fingerprint = Int64.of_int (0x5EED + i); method_tag = 'n'; h = 8;
    params = 0L }

let entry vals = { Spectrum.eigenvalues = vals; dense = true }

(* tricky bit patterns: negative zero, subnormal, huge, tiny, nan *)
let tricky =
  [| 0.0; -0.0; 0.1; 1e-300; 4e-324; max_float; min_float; nan; 1.0 /. 3.0 |]

(* ------------------------------------------------------------------ *)
(* Lru                                                                 *)
(* ------------------------------------------------------------------ *)

let test_lru_basic () =
  let c = Lru.create ~capacity:2 () in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  Alcotest.(check (option int)) "find a" (Some 1) (Lru.find c "a");
  (* "a" is now MRU, so inserting "c" evicts "b" *)
  Lru.add c "c" 3;
  Alcotest.(check (option int)) "b evicted" None (Lru.find c "b");
  Alcotest.(check (option int)) "a survives" (Some 1) (Lru.find c "a");
  Alcotest.(check int) "one eviction" 1 (Lru.evictions c);
  Alcotest.(check int) "length" 2 (Lru.length c)

let test_lru_replace_promotes () =
  let c = Lru.create ~capacity:2 () in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  Lru.add c "a" 10;
  Lru.add c "c" 3;
  Alcotest.(check (option int)) "replaced value" (Some 10) (Lru.find c "a");
  Alcotest.(check (option int)) "b was lru" None (Lru.find c "b")

let test_lru_zero_capacity () =
  let c = Lru.create ~capacity:0 () in
  Lru.add c "a" 1;
  Alcotest.(check int) "stores nothing" 0 (Lru.length c);
  Alcotest.(check (option int)) "finds nothing" None (Lru.find c "a")

let test_lru_on_evict () =
  let evicted = ref [] in
  let c = Lru.create ~on_evict:(fun k v -> evicted := (k, v) :: !evicted) ~capacity:1 () in
  Lru.add c 1 "x";
  Lru.add c 2 "y";
  Lru.remove c 2;
  Alcotest.(check (list (pair int string))) "only capacity evictions" [ (1, "x") ]
    !evicted

(* Model check: against a naive association-list LRU, under a random
   operation stream the real structure must agree on every lookup and
   never exceed capacity. *)
let prop_lru_matches_model =
  QCheck2.Test.make ~name:"lru agrees with naive model" ~count:200
    QCheck2.Gen.(
      pair (int_range 1 5)
        (list_size (int_range 0 60) (pair (int_range 0 8) (int_range 0 2))))
    (fun (cap, ops) ->
      let c = Lru.create ~capacity:cap () in
      let model = ref [] in (* MRU first *)
      List.for_all
        (fun (k, op) ->
          match op with
          | 0 ->
              Lru.add c k k;
              model := (k, k) :: List.remove_assoc k !model;
              if List.length !model > cap then
                model := List.filteri (fun i _ -> i < cap) !model;
              true
          | 1 ->
              let expected = List.assoc_opt k !model in
              if expected <> None then
                model := (k, k) :: List.remove_assoc k !model;
              Lru.find c k = expected && Lru.length c <= cap
          | _ ->
              Lru.remove c k;
              model := List.remove_assoc k !model;
              Lru.length c = List.length !model)
        ops
      && Lru.to_list c = !model)

(* ------------------------------------------------------------------ *)
(* Spectrum cache: memory tier                                         *)
(* ------------------------------------------------------------------ *)

let test_memory_roundtrip () =
  let c = Spectrum.create ~capacity:4 () in
  Spectrum.add c (key 1) (entry tricky);
  match Spectrum.find c (key 1) with
  | None -> Alcotest.fail "expected a hit"
  | Some e ->
      Alcotest.(check bool) "bitwise identical" true
        (bits_equal tricky e.Spectrum.eigenvalues)

let test_memory_entry_bound () =
  let c = Spectrum.create ~capacity:3 () in
  for i = 1 to 10 do
    Spectrum.add c (key i) (entry [| float_of_int i |])
  done;
  Alcotest.(check int) "bounded" 3 (Spectrum.length c);
  Alcotest.(check bool) "old entry gone" true (Spectrum.find c (key 1) = None);
  Alcotest.(check bool) "recent entry kept" true (Spectrum.find c (key 10) <> None)

let test_key_discriminates () =
  let c = Spectrum.create () in
  Spectrum.add c (key 1) (entry [| 1.0 |]);
  Alcotest.(check bool) "different h misses" true
    (Spectrum.find c { (key 1) with Spectrum.h = 9 } = None);
  Alcotest.(check bool) "different method misses" true
    (Spectrum.find c { (key 1) with Spectrum.method_tag = 's' } = None);
  Alcotest.(check bool) "different params miss" true
    (Spectrum.find c { (key 1) with Spectrum.params = 7L } = None)

let test_disabled_cache () =
  Spectrum.add Spectrum.disabled (key 1) (entry [| 1.0 |]);
  Alcotest.(check bool) "never answers" true
    (Spectrum.find Spectrum.disabled (key 1) = None)

let test_params_digest_discriminates () =
  let d ?dense_threshold ?tol ?seed ?filter_degree () =
    Spectrum.params_digest ~dense_threshold ~tol ~seed ~filter_degree
  in
  let base = d () in
  Alcotest.(check bool) "dense_threshold changes digest" true
    (d ~dense_threshold:24 () <> base);
  Alcotest.(check bool) "tol changes digest" true
    (d ~tol:1e-9 () <> base);
  Alcotest.(check bool) "seed changes digest" true
    (d ~seed:3 () <> base);
  Alcotest.(check bool) "fixed filter degree changes digest" true
    (d ~filter_degree:12 () <> base);
  Alcotest.(check bool) "digest is stable" true (d () = base)

(* ------------------------------------------------------------------ *)
(* Spectrum cache: disk tier                                           *)
(* ------------------------------------------------------------------ *)

let test_disk_roundtrip_bitwise () =
  with_temp_dir @@ fun dir ->
  let c = Spectrum.create ~dir () in
  Spectrum.add c (key 2) { Spectrum.eigenvalues = tricky; dense = false };
  Spectrum.drop_memory c;
  match Spectrum.find c (key 2) with
  | None -> Alcotest.fail "expected a disk hit"
  | Some e ->
      Alcotest.(check bool) "bitwise identical through disk" true
        (bits_equal tricky e.Spectrum.eigenvalues);
      Alcotest.(check bool) "backend flag preserved" false e.Spectrum.dense

let test_disk_shared_between_caches () =
  with_temp_dir @@ fun dir ->
  let writer = Spectrum.create ~dir () in
  Spectrum.add writer (key 3) (entry [| 0.5; 0.25 |]);
  let reader = Spectrum.create ~dir () in
  Alcotest.(check bool) "second cache reads the first's entry" true
    (Spectrum.find reader (key 3) <> None)

let corrupt_byte path pos =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let len = (Unix.fstat fd).Unix.st_size in
      let pos = ((pos mod len) + len) mod len in
      ignore (Unix.lseek fd pos Unix.SEEK_SET);
      let b = Bytes.create 1 in
      ignore (Unix.read fd b 0 1);
      Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x40));
      ignore (Unix.lseek fd pos Unix.SEEK_SET);
      ignore (Unix.write fd b 0 1))

let test_disk_corruption_rejected () =
  with_temp_dir @@ fun dir ->
  let c = Spectrum.create ~dir () in
  (* flip a byte at several positions: magic, key, payload, checksum *)
  List.iteri
    (fun i pos ->
      let k = key (100 + i) in
      Spectrum.add c k (entry tricky);
      let path = Spectrum.file_of_key ~dir k in
      corrupt_byte path pos;
      Spectrum.drop_memory c;
      Alcotest.(check bool)
        (Printf.sprintf "corrupt byte at %d rejected" pos)
        true
        (Spectrum.find c k = None);
      Alcotest.(check bool)
        (Printf.sprintf "corrupt file at %d evicted" pos)
        false (Sys.file_exists path);
      (* after recomputation (add), the entry must be served again *)
      Spectrum.add c k (entry tricky);
      Spectrum.drop_memory c;
      Alcotest.(check bool)
        (Printf.sprintf "recomputed entry at %d served" pos)
        true
        (Spectrum.find c k <> None))
    [ 0; 10; 40; -1 ]

let test_disk_truncation_rejected () =
  with_temp_dir @@ fun dir ->
  let c = Spectrum.create ~dir () in
  let k = key 7 in
  Spectrum.add c k (entry tricky);
  let path = Spectrum.file_of_key ~dir k in
  Unix.truncate path 20;
  Spectrum.drop_memory c;
  Alcotest.(check bool) "truncated record rejected" true (Spectrum.find c k = None);
  Alcotest.(check bool) "truncated file evicted" false (Sys.file_exists path)

let test_disk_wrong_key_rejected () =
  (* a record renamed onto another key's path embeds the wrong key and
     must not be served for it *)
  with_temp_dir @@ fun dir ->
  let c = Spectrum.create ~dir () in
  let k1 = key 11 and k2 = key 12 in
  Spectrum.add c k1 (entry [| 1.0 |]);
  let p1 = Spectrum.file_of_key ~dir k1 and p2 = Spectrum.file_of_key ~dir k2 in
  Sys.rename p1 p2;
  Spectrum.drop_memory c;
  Alcotest.(check bool) "stale record rejected" true (Spectrum.find c k2 = None)

(* ------------------------------------------------------------------ *)
(* End to end through the solver                                       *)
(* ------------------------------------------------------------------ *)

let solve ?cache ?on_missing job =
  ignore on_missing;
  Solver.bound_cached
    ?cache:(Some (Option.value cache ~default:Spectrum.disabled))
    ~h:16 ~dense_threshold:24 job

let outcome_bits (r : Solver.batch_result) =
  (r.Solver.outcome.Solver.eigenvalues,
   r.Solver.outcome.Solver.result.Spectral_bound.bound)

let check_identical name cold warm =
  let ev_c, b_c = outcome_bits cold and ev_w, b_w = outcome_bits warm in
  Alcotest.(check bool) (name ^ ": eigenvalues bitwise identical") true
    (bits_equal ev_c ev_w);
  Alcotest.(check bool) (name ^ ": bound bitwise identical") true
    (Int64.equal (Int64.bits_of_float b_c) (Int64.bits_of_float b_w))

let test_solver_memory_hit_identical () =
  List.iter
    (fun (name, g) ->
      let job = Solver.job g ~m:8 in
      let cold = solve job in
      let cache = Spectrum.create () in
      let miss = solve ~cache job in
      let hit = solve ~cache job in
      Alcotest.(check bool) (name ^ ": first is a miss") false miss.Solver.cache_hit;
      Alcotest.(check bool) (name ^ ": second is a hit") true hit.Solver.cache_hit;
      check_identical name cold hit)
    [
      ("fft", Graphio_workloads.Fft.build 4);
      (* n=48 > dense_threshold: exercises the sparse backend *)
      ("er sparse", Er.gnp ~n:48 ~p:0.15 ~seed:5);
      ("er dense path", Er.gnp ~n:20 ~p:0.3 ~seed:6);
    ]

let test_solver_disk_hit_identical () =
  with_temp_dir @@ fun dir ->
  List.iter
    (fun (name, g) ->
      let job = Solver.job ~method_:Solver.Standard g ~m:4 in
      let cold = solve job in
      let cache = Spectrum.create ~dir () in
      let _ = solve ~cache job in
      Spectrum.drop_memory cache;
      let hit = solve ~cache job in
      Alcotest.(check bool) (name ^ ": disk answer is a hit") true
        hit.Solver.cache_hit;
      check_identical name cold hit)
    [
      ("fft std", Graphio_workloads.Fft.build 4);
      ("er std", Er.gnp ~n:40 ~p:0.2 ~seed:9);
    ]

let test_solver_corrupt_disk_recomputes () =
  with_temp_dir @@ fun dir ->
  let g = Er.gnp ~n:30 ~p:0.2 ~seed:11 in
  let job = Solver.job g ~m:8 in
  let cold = solve job in
  let cache = Spectrum.create ~dir () in
  let _ = solve ~cache job in
  (* corrupt the only record on disk, drop memory: the next solve must
     reject it, recompute, and still produce bit-identical results *)
  (match Sys.readdir dir with
  | [||] -> Alcotest.fail "expected a disk record"
  | files -> Array.iter (fun f -> corrupt_byte (Filename.concat dir f) 40) files);
  Spectrum.drop_memory cache;
  let recomputed = solve ~cache job in
  Alcotest.(check bool) "recomputed, not served" false recomputed.Solver.cache_hit;
  check_identical "recomputed" cold recomputed

let test_solver_params_not_conflated () =
  let g = Er.gnp ~n:40 ~p:0.2 ~seed:13 in
  let job = Solver.job g ~m:8 in
  let cache = Spectrum.create () in
  let a = Solver.bound_cached ~cache ~h:16 ~dense_threshold:24 job in
  (* same graph/method/h, different solver knob: must NOT be served from
     the first entry *)
  let b = Solver.bound_cached ~cache ~h:16 ~dense_threshold:200 job in
  Alcotest.(check bool) "different dense_threshold misses" false
    b.Solver.cache_hit;
  ignore a

let prop_batch_warm_equals_cold =
  (* bound_batch over a random job mix: warm (second run, same cache)
     results must be bitwise identical to the cold run's. *)
  QCheck2.Test.make ~name:"warm batch bitwise-equal to cold batch" ~count:15
    QCheck2.Gen.(
      let* seeds = list_size (int_range 1 5) (int_range 0 1000) in
      let* m = int_range 2 32 in
      return (seeds, m))
    (fun (seeds, m) ->
      let jobs =
        Array.of_list
          (List.concat_map
             (fun seed ->
               let g = Er.gnp ~n:(20 + (seed mod 20)) ~p:0.2 ~seed in
               [ Solver.job g ~m; Solver.job ~method_:Solver.Standard g ~m ])
             seeds)
      in
      let run cache = Solver.bound_batch ~cache ~h:12 ~dense_threshold:24 jobs in
      let cold = run Spectrum.disabled in
      let cache = Spectrum.create () in
      let _warmup = run cache in
      let warm = run cache in
      Array.for_all2
        (fun (c : Solver.batch_result) (w : Solver.batch_result) ->
          w.Solver.cache_hit
          && bits_equal c.Solver.outcome.Solver.eigenvalues
               w.Solver.outcome.Solver.eigenvalues
          && Int64.equal
               (Int64.bits_of_float c.Solver.outcome.Solver.result.Spectral_bound.bound)
               (Int64.bits_of_float w.Solver.outcome.Solver.result.Spectral_bound.bound))
        cold warm)

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_lru_matches_model; prop_batch_warm_equals_cold ]

let () =
  Alcotest.run "graphio_cache"
    [
      ( "lru",
        [
          Alcotest.test_case "basic eviction order" `Quick test_lru_basic;
          Alcotest.test_case "replace promotes" `Quick test_lru_replace_promotes;
          Alcotest.test_case "zero capacity" `Quick test_lru_zero_capacity;
          Alcotest.test_case "on_evict" `Quick test_lru_on_evict;
        ] );
      ( "memory-tier",
        [
          Alcotest.test_case "roundtrip bitwise" `Quick test_memory_roundtrip;
          Alcotest.test_case "entry bound" `Quick test_memory_entry_bound;
          Alcotest.test_case "key discriminates" `Quick test_key_discriminates;
          Alcotest.test_case "disabled cache" `Quick test_disabled_cache;
          Alcotest.test_case "params digest" `Quick test_params_digest_discriminates;
        ] );
      ( "disk-tier",
        [
          Alcotest.test_case "roundtrip bitwise" `Quick test_disk_roundtrip_bitwise;
          Alcotest.test_case "shared between caches" `Quick test_disk_shared_between_caches;
          Alcotest.test_case "corruption rejected and evicted" `Quick
            test_disk_corruption_rejected;
          Alcotest.test_case "truncation rejected" `Quick test_disk_truncation_rejected;
          Alcotest.test_case "wrong key rejected" `Quick test_disk_wrong_key_rejected;
        ] );
      ( "solver",
        [
          Alcotest.test_case "memory hit identical to cold solve" `Quick
            test_solver_memory_hit_identical;
          Alcotest.test_case "disk hit identical to cold solve" `Quick
            test_solver_disk_hit_identical;
          Alcotest.test_case "corrupt record recomputed" `Quick
            test_solver_corrupt_disk_recomputes;
          Alcotest.test_case "solver params not conflated" `Quick
            test_solver_params_not_conflated;
        ] );
      ("properties", props);
    ]
