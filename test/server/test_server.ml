(* graphio serve, exercised in-process: the server runs in its own domain,
   clients are threads hammering the same socket.  The load-bearing check
   is determinism — N concurrent clients must get answers bitwise-equal to
   a sequential Solver.bound_batch over the same jobs. *)

open Graphio_server
open Graphio_obs
open Graphio_core

let socket_path () =
  let path = Filename.temp_file "graphio_serve" ".sock" in
  Sys.remove path;
  path

(* Run [f client_factory] against a live server, then shut it down. *)
let with_server ?(pool_size = 3) ?timeout_s ?(cache = Graphio_cache.Spectrum.disabled)
    f =
  let path = socket_path () in
  let transport = Server.Unix_socket path in
  let cfg =
    (* warm_start off: these tests pin exact reply bytes, and warm-started
       solves match cold ones only to tolerance, not bitwise *)
    { Server.transport; pool_size; cache; timeout_s; h = 16;
      dense_threshold = Some 24; closed_form = true;
      warm_start = false; filter_degree = Graphio_la.Filtered.Auto;
      portfolio = None }
  in
  let listening = Atomic.make false in
  let server =
    Domain.spawn (fun () ->
        Server.run ~ready:(fun () -> Atomic.set listening true) cfg)
  in
  let deadline = Unix.gettimeofday () +. 10.0 in
  while (not (Atomic.get listening)) && Unix.gettimeofday () < deadline do
    Thread.yield ()
  done;
  Fun.protect
    ~finally:(fun () ->
      (try
         let c = Client.connect transport in
         ignore (Client.rpc c {|{"op":"shutdown"}|});
         Client.close c
       with _ -> ());
      Domain.join server;
      if Sys.file_exists path then Sys.remove path)
    (fun () -> f transport)

let get name json =
  match Jsonx.member name json with
  | Some v -> v
  | None -> Alcotest.failf "reply missing %S: %s" name (Jsonx.to_string json)

let get_float name json =
  match get name json with
  | Jsonx.Float f -> f
  | Jsonx.Int i -> float_of_int i
  | _ -> Alcotest.failf "reply field %S not a number" name

(* ------------------------------------------------------------------ *)

let specs =
  [| ("fft:4", 4); ("fft:4", 8); ("bhk:5", 8); ("inner:12", 4);
     ("er:40:0.15:3", 8); ("er:40:0.15:3", 16); ("matmul:3", 8) |]

let expected_bounds () =
  let jobs =
    Array.map
      (fun (spec, m) ->
        match Graphio_workloads.Spec.parse spec with
        | Ok g -> Solver.job g ~m
        | Error e -> Alcotest.fail e)
      specs
  in
  Array.map
    (fun (r : Solver.batch_result) ->
      r.Solver.outcome.Solver.result.Spectral_bound.bound)
    (Solver.bound_batch ~cache:Graphio_cache.Spectrum.disabled ~h:16
       ~dense_threshold:24 jobs)

let test_concurrent_clients_match_sequential () =
  let expected = expected_bounds () in
  with_server ~cache:(Graphio_cache.Spectrum.create ()) @@ fun transport ->
  let n_clients = 6 in
  let results = Array.make_matrix n_clients (Array.length specs) nan in
  let errors = Atomic.make [] in
  let client_loop ci =
    try
      let c = Client.connect transport in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          Array.iteri
            (fun qi (spec, m) ->
              let req =
                Printf.sprintf {|{"spec":%S,"m":%d,"id":%d}|} spec m qi
              in
              let reply = Jsonx.of_string (Client.rpc c req) in
              (match get "ok" reply with
              | Jsonx.Bool true -> ()
              | _ -> Alcotest.failf "client %d query %d failed: %s" ci qi
                       (Jsonx.to_string reply));
              (match get "id" reply with
              | Jsonx.Int id when id = qi -> ()
              | _ -> Alcotest.failf "client %d: wrong id echo" ci);
              results.(ci).(qi) <- get_float "bound" reply)
            specs)
    with e ->
      Atomic.set errors (Printexc.to_string e :: Atomic.get errors)
  in
  let threads = List.init n_clients (fun ci -> Thread.create client_loop ci) in
  List.iter Thread.join threads;
  (match Atomic.get errors with
  | [] -> ()
  | e :: _ -> Alcotest.failf "client error: %s" e);
  Array.iteri
    (fun ci row ->
      Array.iteri
        (fun qi bound ->
          Alcotest.(check bool)
            (Printf.sprintf "client %d query %d bitwise-equal to bound_batch" ci qi)
            true
            (Int64.equal (Int64.bits_of_float bound)
               (Int64.bits_of_float expected.(qi))))
        row)
    results

let test_pipelined_replies_in_order () =
  with_server @@ fun transport ->
  let c = Client.connect transport in
  Fun.protect
    ~finally:(fun () -> Client.close c)
    (fun () ->
      (* fire all requests before reading any reply; replies must come
         back in request order (ids echo the order) *)
      for i = 0 to 9 do
        Client.send c
          (Printf.sprintf {|{"spec":"fft:3","m":%d,"id":%d}|} (2 + i) i)
      done;
      for i = 0 to 9 do
        let reply = Jsonx.of_string (Client.recv c) in
        match get "id" reply with
        | Jsonx.Int id ->
            Alcotest.(check int) (Printf.sprintf "reply %d in order" i) i id
        | _ -> Alcotest.fail "missing id"
      done)

let test_malformed_requests_survive () =
  with_server @@ fun transport ->
  let c = Client.connect transport in
  Fun.protect
    ~finally:(fun () -> Client.close c)
    (fun () ->
      let expect_error ?code req =
        let reply = Jsonx.of_string (Client.rpc c req) in
        (match get "ok" reply with
        | Jsonx.Bool false -> ()
        | _ -> Alcotest.failf "expected error for %s" req);
        match code with
        | None -> ()
        | Some expected -> (
            match get "code" reply with
            | Jsonx.String c -> Alcotest.(check string) "code" expected c
            | _ -> Alcotest.fail "missing code")
      in
      expect_error ~code:"bad_request" "garbage";
      expect_error ~code:"bad_request" "[1,2]";
      expect_error ~code:"bad_request" {|{"m":8}|};
      expect_error ~code:"bad_request" {|{"spec":"fft:4"}|};
      expect_error ~code:"bad_request" {|{"spec":"fft:4","m":0}|};
      expect_error ~code:"bad_request" {|{"spec":"fft:4","m":8,"typo":1}|};
      expect_error ~code:"bad_request" {|{"spec":"fft:4","edgelist":"x","m":8}|};
      expect_error ~code:"bad_request" {|{"spec":"fft:4","m":8,"method":"qr"}|};
      expect_error ~code:"bad_request" {|{"spec":"nope:3","m":8}|};
      expect_error ~code:"bad_request"
        {|{"edgelist":"graphio 1\nn 2 m 1\ne 0 5\n","m":8}|};
      expect_error ~code:"timeout" {|{"spec":"fft:4","m":8,"timeout_s":0}|};
      (* ... and the connection still answers real queries afterwards *)
      let reply = Jsonx.of_string (Client.rpc c {|{"spec":"fft:3","m":4}|}) in
      match get "ok" reply with
      | Jsonx.Bool true -> ()
      | _ -> Alcotest.fail "server no longer answers after bad requests")

let test_stats_and_ping () =
  with_server @@ fun transport ->
  let c = Client.connect transport in
  Fun.protect
    ~finally:(fun () -> Client.close c)
    (fun () ->
      let ping = Jsonx.of_string (Client.rpc c {|{"op":"ping","id":"p1"}|}) in
      (match (get "ok" ping, get "id" ping) with
      | Jsonx.Bool true, Jsonx.String "p1" -> ()
      | _ -> Alcotest.fail "ping reply wrong");
      ignore (Client.rpc c {|{"spec":"fft:3","m":4}|});
      let stats = Jsonx.of_string (Client.rpc c {|{"op":"stats"}|}) in
      let metrics = Metrics.of_json (get "metrics" stats) in
      match Metrics.find metrics "server.requests" with
      | Some (Metrics.Counter n) ->
          Alcotest.(check bool) "requests counted" true (n >= 1)
      | _ -> Alcotest.fail "server.requests missing from stats")

let test_edgelist_queries () =
  with_server @@ fun transport ->
  let c = Client.connect transport in
  Fun.protect
    ~finally:(fun () -> Client.close c)
    (fun () ->
      let g = Graphio_workloads.Fft.build 3 in
      let doc = Graphio_graph.Edgelist.to_string g in
      let req =
        Jsonx.to_string
          (Jsonx.Obj
             [ ("edgelist", Jsonx.String doc); ("m", Jsonx.Int 4);
               ("method", Jsonx.String "standard") ])
      in
      let reply = Jsonx.of_string (Client.rpc c req) in
      (match get "ok" reply with
      | Jsonx.Bool true -> ()
      | _ -> Alcotest.failf "edgelist query failed: %s" (Jsonx.to_string reply));
      let expected =
        (Solver.bound_cached ~cache:Graphio_cache.Spectrum.disabled ~h:16
           ~dense_threshold:24
           (Solver.job ~method_:Solver.Standard g ~m:4))
          .Solver.outcome.Solver.result.Spectral_bound.bound
      in
      Alcotest.(check bool) "edgelist bound matches direct solve" true
        (Int64.equal
           (Int64.bits_of_float (get_float "bound" reply))
           (Int64.bits_of_float expected)))

let test_cache_warms_across_clients () =
  with_server ~cache:(Graphio_cache.Spectrum.create ()) @@ fun transport ->
  let ask () =
    let c = Client.connect transport in
    Fun.protect
      ~finally:(fun () -> Client.close c)
      (fun () -> Jsonx.of_string (Client.rpc c {|{"spec":"bhk:6","m":8}|}))
  in
  let first = ask () and second = ask () in
  (match get "cache_hit" second with
  | Jsonx.Bool true -> ()
  | _ -> Alcotest.fail "second client should hit the warm cache");
  Alcotest.(check bool) "warm answer identical" true
    (Int64.equal
       (Int64.bits_of_float (get_float "bound" first))
       (Int64.bits_of_float (get_float "bound" second)))

(* A recognized graph served twice over a shared cache: both replies come
   from the closed-form tier, echo their own request id, carry distinct
   server-side rids, the second is a cache hit, and the bound is bitwise
   identical across the two serves. *)
let test_closed_form_served_twice () =
  with_server ~cache:(Graphio_cache.Spectrum.create ()) @@ fun transport ->
  let ask id =
    let c = Client.connect transport in
    Fun.protect
      ~finally:(fun () -> Client.close c)
      (fun () ->
        Jsonx.of_string
          (Client.rpc c
             (Printf.sprintf
                {|{"spec":"fft:5","m":8,"method":"standard","id":"%s"}|} id)))
  in
  let first = ask "cf1" and second = ask "cf2" in
  List.iter
    (fun (name, reply) ->
      match get "tier" reply with
      | Jsonx.String "closed-form" -> ()
      | _ -> Alcotest.failf "%s reply not closed-form: %s" name (Jsonx.to_string reply))
    [ ("first", first); ("second", second) ];
  (match (get "id" first, get "id" second) with
  | Jsonx.String "cf1", Jsonx.String "cf2" -> ()
  | _ -> Alcotest.fail "request ids not echoed");
  let rid reply =
    match get "rid" reply with
    | Jsonx.String r -> r
    | _ -> Alcotest.fail "reply carries no rid"
  in
  Alcotest.(check bool) "rids are per-request" true (rid first <> rid second);
  (match get "cache_hit" second with
  | Jsonx.Bool true -> ()
  | _ -> Alcotest.fail "second serve should hit the warm cache");
  Alcotest.(check bool) "closed-form bound bitwise stable" true
    (Int64.equal
       (Int64.bits_of_float (get_float "bound" first))
       (Int64.bits_of_float (get_float "bound" second)))

(* A full telemetry round trip over the wire: the success reply carries a
   request id, and {"op":"metrics"} exposes non-zero latency quantiles, a
   Prometheus rendering, and freshly sampled GC gauges — live, without
   restarting the server. *)
let test_metrics_exposition () =
  with_server @@ fun transport ->
  let c = Client.connect transport in
  Fun.protect
    ~finally:(fun () -> Client.close c)
    (fun () ->
      let reply = Jsonx.of_string (Client.rpc c {|{"spec":"fft:4","m":4}|}) in
      (match get "rid" reply with
      | Jsonx.String rid ->
          Alcotest.(check bool) "rid has the req- prefix" true
            (String.length rid > 4 && String.sub rid 0 4 = "req-")
      | _ -> Alcotest.fail "success reply carries no rid");
      let m = Jsonx.of_string (Client.rpc c {|{"op":"metrics","id":"m1"}|}) in
      (match (get "ok" m, get "id" m, get "op" m) with
      | Jsonx.Bool true, Jsonx.String "m1", Jsonx.String "metrics" -> ()
      | _ -> Alcotest.failf "metrics reply wrong: %s" (Jsonx.to_string m));
      let latency = get "latency" m in
      let count =
        match get "count" latency with
        | Jsonx.Int n -> n
        | _ -> Alcotest.fail "latency.count not an int"
      in
      Alcotest.(check bool) "at least one observation" true (count >= 1);
      List.iter
        (fun q ->
          let v = get_float q latency in
          Alcotest.(check bool) (q ^ " is positive") true (v > 0.0))
        [ "p50_s"; "p95_s"; "p99_s" ];
      (match get "prometheus" m with
      | Jsonx.String text ->
          let has needle =
            let nh = String.length text and nn = String.length needle in
            let rec scan i =
              i + nn <= nh && (String.sub text i nn = needle || scan (i + 1))
            in
            scan 0
          in
          Alcotest.(check bool) "histogram exposed" true
            (has "# TYPE server_request_seconds histogram");
          Alcotest.(check bool) "+Inf bucket present" true
            (has "server_request_seconds_bucket{le=\"+Inf\"}");
          Alcotest.(check bool) "gc gauges sampled" true
            (has "runtime_gc_heap_words")
      | _ -> Alcotest.fail "no prometheus rendering");
      let snap = Metrics.of_json (get "metrics" m) in
      match Metrics.find snap "runtime.gc.heap_words" with
      | Some (Metrics.Gauge words) ->
          Alcotest.(check bool) "heap gauge non-zero" true (words > 0.0)
      | _ -> Alcotest.fail "runtime gauges missing from snapshot")

(* ------------------------------------------------------------------ *)
(* Protocol parsing (no server needed)                                 *)
(* ------------------------------------------------------------------ *)

let test_protocol_errors_carry_id () =
  match Protocol.request_of_line {|{"id":42,"m":"eight","spec":"fft:3"}|} with
  | Error (Some (Jsonx.Int 42), msg) ->
      Alcotest.(check bool) "message names the field" true
        (String.length msg > 0)
  | Error (_, _) -> Alcotest.fail "id not preserved"
  | Ok _ -> Alcotest.fail "should not parse"

let test_protocol_accepts_full_query () =
  match
    Protocol.request_of_line
      {|{"spec":"fft:6","m":8,"p":2,"method":"standard","h":64,"timeout_s":1.5,"id":7}|}
  with
  | Ok (Protocol.Query q) ->
      Alcotest.(check int) "m" 8 q.Protocol.m;
      Alcotest.(check (option int)) "p" (Some 2) q.Protocol.p;
      Alcotest.(check (option int)) "h" (Some 64) q.Protocol.h;
      Alcotest.(check bool) "method" true (q.Protocol.method_ = Solver.Standard);
      Alcotest.(check (option (float 0.0))) "timeout" (Some 1.5) q.Protocol.timeout_s
  | _ -> Alcotest.fail "full query should parse"

let () =
  Alcotest.run "graphio_server"
    [
      ( "serve",
        [
          Alcotest.test_case "concurrent clients match sequential batch" `Quick
            test_concurrent_clients_match_sequential;
          Alcotest.test_case "pipelined replies in order" `Quick
            test_pipelined_replies_in_order;
          Alcotest.test_case "malformed requests survive" `Quick
            test_malformed_requests_survive;
          Alcotest.test_case "stats and ping" `Quick test_stats_and_ping;
          Alcotest.test_case "edgelist queries" `Quick test_edgelist_queries;
          Alcotest.test_case "metrics exposition" `Quick test_metrics_exposition;
          Alcotest.test_case "closed form served twice" `Quick
            test_closed_form_served_twice;
          Alcotest.test_case "cache warms across clients" `Quick
            test_cache_warms_across_clients;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "errors carry id" `Quick test_protocol_errors_carry_id;
          Alcotest.test_case "full query parses" `Quick test_protocol_accepts_full_query;
        ] );
    ]
