open Graphio_la

let check_float = Alcotest.(check (float 1e-9))

let check_float_tol tol = Alcotest.(check (float tol))

let float_array_approx tol =
  Alcotest.testable
    (fun fmt a -> Vec.pp fmt a)
    (fun a b -> Vec.approx_equal ~tol a b)

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_float_range () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let x = Rng.float r in
    Alcotest.(check bool) "in [0,1)" true (x >= 0.0 && x < 1.0)
  done

let test_rng_int_range () =
  let r = Rng.create 9 in
  for _ = 1 to 1000 do
    let x = Rng.int r 17 in
    Alcotest.(check bool) "in [0,17)" true (x >= 0 && x < 17)
  done

let test_rng_split_independent () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  let xa = Rng.int64 a and xb = Rng.int64 b in
  Alcotest.(check bool) "streams differ" true (xa <> xb)

let test_rng_unit_vector () =
  let r = Rng.create 11 in
  for n = 1 to 20 do
    let v = Rng.unit_vector r n in
    check_float "unit norm" 1.0 (Vec.norm2 v)
  done

let test_rng_gaussian_moments () =
  let r = Rng.create 13 in
  let n = 20000 in
  let sum = ref 0.0 and sumsq = ref 0.0 in
  for _ = 1 to n do
    let x = Rng.gaussian r in
    sum := !sum +. x;
    sumsq := !sumsq +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
  check_float_tol 0.05 "mean ~ 0" 0.0 mean;
  check_float_tol 0.1 "var ~ 1" 1.0 var

(* ------------------------------------------------------------------ *)
(* Vec                                                                 *)
(* ------------------------------------------------------------------ *)

let test_vec_dot () =
  check_float "dot" 32.0 (Vec.dot [| 1.; 2.; 3. |] [| 4.; 5.; 6. |]);
  check_float "dot empty" 0.0 (Vec.dot [||] [||])

let test_vec_dot_mismatch () =
  Alcotest.check_raises "mismatch" (Invalid_argument "Vec.dot: length mismatch (2 vs 3)")
    (fun () -> ignore (Vec.dot [| 1.; 2. |] [| 1.; 2.; 3. |]))

let test_vec_norm2 () =
  check_float "3-4-5" 5.0 (Vec.norm2 [| 3.; 4. |]);
  check_float "zero" 0.0 (Vec.norm2 [| 0.; 0.; 0. |]);
  (* overflow-safe scaling *)
  let big = 1e200 in
  check_float_tol 1e185 "huge" (big *. sqrt 2.0) (Vec.norm2 [| big; big |])

let test_vec_axpy () =
  let y = [| 1.; 1.; 1. |] in
  Vec.axpy 2.0 [| 1.; 2.; 3. |] y;
  Alcotest.check (float_array_approx 1e-12) "axpy" [| 3.; 5.; 7. |] y

let test_vec_normalize () =
  let v = Vec.normalize [| 3.; 4. |] in
  Alcotest.check (float_array_approx 1e-12) "normalize" [| 0.6; 0.8 |] v;
  Alcotest.check_raises "zero vector" (Invalid_argument "Vec.normalize: zero vector")
    (fun () -> ignore (Vec.normalize [| 0.; 0. |]))

let test_vec_orthogonalize () =
  let e1 = [| 1.; 0.; 0. |] and e2 = [| 0.; 1.; 0. |] in
  let v = [| 3.; 4.; 5. |] in
  Vec.orthogonalize_against [| e1; e2 |] v;
  Alcotest.check (float_array_approx 1e-12) "residual" [| 0.; 0.; 5. |] v

let test_vec_minmax () =
  check_float "max" 7.0 (Vec.max_elt [| 3.; 7.; -2. |]);
  check_float "min" (-2.0) (Vec.min_elt [| 3.; 7.; -2. |]);
  check_float "sum" 8.0 (Vec.sum [| 3.; 7.; -2. |])

(* ------------------------------------------------------------------ *)
(* Mat                                                                 *)
(* ------------------------------------------------------------------ *)

let test_mat_mul () =
  let a = [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let b = [| [| 5.; 6. |]; [| 7.; 8. |] |] in
  let c = Mat.mul a b in
  Alcotest.(check bool) "product" true
    (Mat.approx_equal c [| [| 19.; 22. |]; [| 43.; 50. |] |])

let test_mat_identity_mul () =
  let a = [| [| 1.; 2.; -1. |]; [| 0.; 3.; 2. |]; [| 4.; -2.; 1. |] |] in
  Alcotest.(check bool) "I*a = a" true (Mat.approx_equal (Mat.mul (Mat.identity 3) a) a);
  Alcotest.(check bool) "a*I = a" true (Mat.approx_equal (Mat.mul a (Mat.identity 3)) a)

let test_mat_transpose () =
  let a = [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |] in
  let t = Mat.transpose a in
  Alcotest.(check (pair int int)) "dims" (3, 2) (Mat.dims t);
  check_float "entry" 6.0 t.(2).(1)

let test_mat_matvec () =
  let a = [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  Alcotest.check (float_array_approx 1e-12) "matvec" [| 5.; 11. |]
    (Mat.matvec a [| 1.; 2. |])

let test_mat_symmetric () =
  Alcotest.(check bool) "sym" true (Mat.is_symmetric [| [| 1.; 2. |]; [| 2.; 1. |] |]);
  Alcotest.(check bool) "not sym" false (Mat.is_symmetric [| [| 1.; 2. |]; [| 3.; 1. |] |]);
  let s = Mat.symmetrize [| [| 1.; 2. |]; [| 4.; 1. |] |] in
  check_float "symmetrized" 3.0 s.(0).(1)

let test_mat_trace () =
  check_float "trace" 5.0 (Mat.trace [| [| 1.; 2. |]; [| 3.; 4. |] |])

(* ------------------------------------------------------------------ *)
(* Dense eigensolvers                                                  *)
(* ------------------------------------------------------------------ *)

let random_symmetric rng n =
  let a = Mat.init n n (fun _ _ -> Rng.gaussian rng) in
  Mat.symmetrize a

let test_tridiag_preserves_spectrum () =
  let rng = Rng.create 3 in
  let a = random_symmetric rng 12 in
  let t = Tridiag.reduce a in
  let from_tridiag = Tql.eigenvalues ~d:t.Tridiag.d ~e:t.Tridiag.e in
  let from_jacobi = Jacobi.eigenvalues a in
  Alcotest.check (float_array_approx 1e-8) "spectra agree" from_jacobi from_tridiag

let test_tridiag_q_orthogonal () =
  let rng = Rng.create 4 in
  let a = random_symmetric rng 10 in
  let t = Tridiag.reduce ~with_q:true a in
  match t.Tridiag.q with
  | None -> Alcotest.fail "expected q"
  | Some q ->
      let qtq = Mat.mul (Mat.transpose q) q in
      Alcotest.(check bool) "QtQ = I" true
        (Mat.approx_equal ~tol:1e-10 qtq (Mat.identity 10))

let test_tridiag_reconstruction () =
  let rng = Rng.create 5 in
  let a = random_symmetric rng 9 in
  let t = Tridiag.reduce ~with_q:true a in
  match t.Tridiag.q with
  | None -> Alcotest.fail "expected q"
  | Some q ->
      let reconstructed = Mat.mul q (Mat.mul (Tridiag.to_dense t) (Mat.transpose q)) in
      Alcotest.(check bool) "Q T Qt = A" true (Mat.approx_equal ~tol:1e-9 reconstructed a)

let test_tql_dirichlet_closed_form () =
  List.iter
    (fun n ->
      let expected = Toeplitz.dirichlet_laplacian_eigenvalues ~n in
      let d = Array.make n 2.0 in
      let e = Array.make n (-1.0) in
      e.(0) <- 0.0;
      let got = Tql.eigenvalues ~d ~e in
      Alcotest.check (float_array_approx 1e-9) "dirichlet spectrum" expected got)
    [ 1; 2; 3; 5; 17; 64 ]

let test_tql_vs_jacobi_random () =
  let rng = Rng.create 6 in
  List.iter
    (fun n ->
      let a = random_symmetric rng n in
      let ql = Tql.symmetric_eigenvalues a in
      let jc = Jacobi.eigenvalues a in
      Alcotest.check (float_array_approx 1e-7) "ql = jacobi" jc ql)
    [ 1; 2; 3; 8; 20; 40 ]

let test_eigensystem_residuals () =
  let rng = Rng.create 8 in
  let n = 15 in
  let a = random_symmetric rng n in
  let values, vectors = Tql.symmetric_eigensystem a in
  for j = 0 to n - 1 do
    let v = Array.init n (fun i -> vectors.(i).(j)) in
    check_float_tol 1e-8 "unit eigenvector" 1.0 (Vec.norm2 v);
    let av = Mat.matvec a v in
    let lv = Vec.scale values.(j) v in
    Alcotest.(check bool) "A v = lambda v" true (Vec.approx_equal ~tol:1e-8 av lv)
  done

let test_eigenvalue_sum_is_trace () =
  let rng = Rng.create 9 in
  let a = random_symmetric rng 25 in
  let values = Tql.symmetric_eigenvalues a in
  check_float_tol 1e-8 "sum = trace" (Mat.trace a) (Vec.sum values)

let test_jacobi_eigensystem () =
  let a = [| [| 2.; -1.; 0. |]; [| -1.; 2.; -1. |]; [| 0.; -1.; 2. |] |] in
  let values, vectors = Jacobi.eigensystem a in
  let expected = Toeplitz.dirichlet_laplacian_eigenvalues ~n:3 in
  Alcotest.check (float_array_approx 1e-10) "values" expected values;
  for j = 0 to 2 do
    let v = Array.init 3 (fun i -> vectors.(i).(j)) in
    let av = Mat.matvec a v in
    Alcotest.(check bool) "residual" true
      (Vec.approx_equal ~tol:1e-9 av (Vec.scale values.(j) v))
  done

let test_diag_matrix_eigenvalues () =
  let a = Mat.init 5 5 (fun i j -> if i = j then float_of_int i else 0.0) in
  let values = Tql.symmetric_eigenvalues a in
  Alcotest.check (float_array_approx 1e-12) "diag" [| 0.; 1.; 2.; 3.; 4. |] values

let test_empty_and_one () =
  Alcotest.(check int) "n=0" 0 (Array.length (Tql.symmetric_eigenvalues [||]));
  let one = Tql.symmetric_eigenvalues [| [| 42.0 |] |] in
  Alcotest.check (float_array_approx 1e-12) "n=1" [| 42.0 |] one

(* ------------------------------------------------------------------ *)
(* Csr                                                                 *)
(* ------------------------------------------------------------------ *)

let test_csr_roundtrip () =
  let rng = Rng.create 10 in
  let a =
    Mat.init 8 6 (fun _ _ -> if Rng.float rng < 0.3 then Rng.gaussian rng else 0.0)
  in
  let m = Csr.of_dense a in
  Alcotest.(check bool) "roundtrip" true (Mat.approx_equal ~tol:0.0 (Csr.to_dense m) a)

let test_csr_duplicate_summing () =
  let m = Csr.of_triplets ~rows:2 ~cols:2 [ (0, 1, 1.0); (0, 1, 2.5); (1, 0, -1.0) ] in
  check_float "summed" 3.5 (Csr.get m 0 1);
  check_float "other" (-1.0) (Csr.get m 1 0);
  check_float "absent" 0.0 (Csr.get m 0 0);
  Alcotest.(check int) "nnz" 2 (Csr.nnz m)

let test_csr_out_of_range () =
  Alcotest.(check_raises) "bad triplet"
    (Invalid_argument "Csr.of_triplets: entry (2,0) out of 2x2") (fun () ->
      ignore (Csr.of_triplets ~rows:2 ~cols:2 [ (2, 0, 1.0) ]))

let test_csr_matvec_matches_dense () =
  let rng = Rng.create 12 in
  List.iter
    (fun (r, c) ->
      let a =
        Mat.init r c (fun _ _ -> if Rng.float rng < 0.25 then Rng.gaussian rng else 0.0)
      in
      let m = Csr.of_dense a in
      let x = Array.init c (fun _ -> Rng.gaussian rng) in
      Alcotest.check (float_array_approx 1e-10) "matvec" (Mat.matvec a x) (Csr.matvec m x))
    [ (1, 1); (5, 3); (10, 10); (40, 17) ]

let test_csr_transpose () =
  let m = Csr.of_triplets ~rows:3 ~cols:2 [ (0, 1, 2.0); (2, 0, -1.0) ] in
  let t = Csr.transpose m in
  Alcotest.(check (pair int int)) "dims" (2, 3) (Csr.dims t);
  check_float "entry" 2.0 (Csr.get t 1 0);
  check_float "entry2" (-1.0) (Csr.get t 0 2)

let test_csr_symmetric () =
  let sym = Csr.of_triplets ~rows:2 ~cols:2 [ (0, 1, 1.0); (1, 0, 1.0) ] in
  Alcotest.(check bool) "sym" true (Csr.is_symmetric sym);
  let asym = Csr.of_triplets ~rows:2 ~cols:2 [ (0, 1, 1.0) ] in
  Alcotest.(check bool) "asym" false (Csr.is_symmetric asym)

let test_csr_prune () =
  let m = Csr.of_triplets ~rows:2 ~cols:2 [ (0, 0, 1e-15); (0, 1, 1.0) ] in
  let p = Csr.prune ~tol:1e-12 m in
  Alcotest.(check int) "pruned" 1 (Csr.nnz p)

let test_csr_gershgorin () =
  (* 2x2 Laplacian of a single edge: eigenvalues 0, 2; gershgorin = 2. *)
  let m = Csr.of_triplets ~rows:2 ~cols:2 [ (0, 0, 1.0); (1, 1, 1.0); (0, 1, -1.0); (1, 0, -1.0) ] in
  check_float "bound" 2.0 (Csr.gershgorin_upper m)

let test_csr_scale () =
  let m = Csr.of_triplets ~rows:2 ~cols:2 [ (0, 1, 2.0) ] in
  check_float "scaled" 6.0 (Csr.get (Csr.scale 3.0 m) 0 1)

(* ------------------------------------------------------------------ *)
(* Csr.Ba (unboxed Bigarray matvec kernel)                             *)
(* ------------------------------------------------------------------ *)

let bitwise_equal a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
       a b

let test_ba_matvec_edge_shapes () =
  (* The shapes that break blocked kernels: empty rows (NaN-poisoned
     scratch must still come out 0.0), 1x1, all-empty, dangling columns. *)
  List.iter
    (fun (rows, cols, trips) ->
      let m = Csr.of_triplets ~rows ~cols trips in
      let rng = Rng.create 3 in
      let x = Array.init cols (fun _ -> Rng.gaussian rng) in
      let y_ref = Csr.matvec m x in
      let y_ba = Csr.Ba.matvec (Csr.Ba.of_csr m) x in
      Alcotest.(check bool)
        (Printf.sprintf "bitwise %dx%d nnz=%d" rows cols (List.length trips))
        true (bitwise_equal y_ref y_ba))
    [
      (1, 1, []);
      (1, 1, [ (0, 0, 2.5) ]);
      (4, 4, [ (0, 1, 1.0); (0, 2, -2.0) ]);
      (3, 7, [ (2, 6, 1.0) ]);
      (5, 5, []);
    ]

let test_ba_of_csr_int32_guard () =
  (* A CSR with more columns than int32 can index must be rejected at
     conversion, not silently wrapped into negative indices. *)
  let wide = Csr.of_triplets ~rows:1 ~cols:0x8000_0000 [] in
  match Csr.Ba.of_csr wide with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument msg ->
      Alcotest.(check string) "guard message prefix" "Csr.Ba.of_csr"
        (String.sub msg 0 13)

let test_ba_dims_nnz () =
  let m = Csr.of_triplets ~rows:3 ~cols:5 [ (0, 1, 1.0); (2, 4, -1.0) ] in
  let b = Csr.Ba.of_csr m in
  Alcotest.(check (pair int int)) "dims" (3, 5) (Csr.Ba.dims b);
  Alcotest.(check int) "nnz" 2 (Csr.Ba.nnz b)

(* ------------------------------------------------------------------ *)
(* Lanczos                                                             *)
(* ------------------------------------------------------------------ *)

let laplacian_path n =
  (* path graph Laplacian: tridiagonal (1,2,...,2,1 / -1) *)
  let triplets = ref [] in
  for i = 0 to n - 1 do
    let deg = (if i > 0 then 1 else 0) + if i < n - 1 then 1 else 0 in
    triplets := (i, i, float_of_int deg) :: !triplets;
    if i < n - 1 then triplets := (i, i + 1, -1.0) :: (i + 1, i, -1.0) :: !triplets
  done;
  Csr.of_triplets ~rows:n ~cols:n !triplets

let test_lanczos_path_graph () =
  let n = 300 in
  let m = laplacian_path n in
  let h = 12 in
  let result = Lanczos.smallest_csr m ~h in
  Alcotest.(check bool) "converged" true result.Lanczos.converged;
  let dense = Tql.symmetric_eigenvalues (Csr.to_dense m) in
  let expected = Array.sub dense 0 h in
  Alcotest.check (float_array_approx 1e-6) "smallest match dense" expected
    result.Lanczos.values

let test_lanczos_multiplicities () =
  (* Disjoint union of 6 single edges: eigenvalue 0 with multiplicity 6 and
     eigenvalue 2 with multiplicity 6.  Plain Lanczos sees each eigenvalue
     once; the locking restarts must find all copies. *)
  let triplets = ref [] in
  for c = 0 to 5 do
    let a = 2 * c and b = (2 * c) + 1 in
    triplets :=
      (a, a, 1.0) :: (b, b, 1.0) :: (a, b, -1.0) :: (b, a, -1.0) :: !triplets
  done;
  let m = Csr.of_triplets ~rows:12 ~cols:12 !triplets in
  let result = Lanczos.smallest_csr m ~h:12 in
  Alcotest.(check bool) "converged" true result.Lanczos.converged;
  let expected = Array.append (Array.make 6 0.0) (Array.make 6 2.0) in
  Alcotest.check (float_array_approx 1e-7) "multiplicity recovered" expected
    result.Lanczos.values

let test_lanczos_vs_dense_random () =
  let rng = Rng.create 21 in
  let n = 120 in
  let a = random_symmetric rng n in
  (* sparsify to ~20% fill, keep symmetric *)
  let masked =
    Mat.init n n (fun i j ->
        if i <= j && Float.abs a.(i).(j) < 1.0 then 0.0 else a.(i).(j))
  in
  let sym = Mat.symmetrize (Mat.init n n (fun i j -> if i <= j then masked.(i).(j) else masked.(j).(i))) in
  let m = Csr.of_dense sym in
  let h = 15 in
  let result = Lanczos.smallest_csr m ~h ~tol:1e-9 in
  let dense = Tql.symmetric_eigenvalues sym in
  Alcotest.check (float_array_approx 1e-5) "lanczos = dense" (Array.sub dense 0 h)
    result.Lanczos.values

let test_lanczos_h_ge_n () =
  let m = laplacian_path 10 in
  let result = Lanczos.smallest_csr m ~h:50 in
  Alcotest.(check int) "clamped to n" 10 (Array.length result.Lanczos.values);
  let dense = Tql.symmetric_eigenvalues (Csr.to_dense m) in
  Alcotest.check (float_array_approx 1e-6) "full spectrum" dense result.Lanczos.values

let test_lanczos_vectors () =
  let n = 60 in
  let m = laplacian_path n in
  let result = Lanczos.smallest_csr m ~h:5 ~want_vectors:true in
  match result.Lanczos.vectors with
  | None -> Alcotest.fail "expected vectors"
  | Some vecs ->
      Array.iteri
        (fun i v ->
          let av = Csr.matvec m v in
          let lv = Vec.scale result.Lanczos.values.(i) v in
          Alcotest.(check bool)
            (Printf.sprintf "residual %d" i)
            true
            (Vec.approx_equal ~tol:1e-5 av lv))
        vecs

let test_lanczos_deterministic () =
  let m = laplacian_path 100 in
  let r1 = Lanczos.smallest_csr m ~h:8 ~seed:99 in
  let r2 = Lanczos.smallest_csr m ~h:8 ~seed:99 in
  Alcotest.check (float_array_approx 0.0) "same seed same values" r1.Lanczos.values
    r2.Lanczos.values

(* ------------------------------------------------------------------ *)
(* Filtered (Chebyshev block subspace iteration)                       *)
(* ------------------------------------------------------------------ *)

let test_filtered_path_graph () =
  let n = 300 in
  let m = laplacian_path n in
  let h = 12 in
  let result = Filtered.smallest_csr m ~h in
  Alcotest.(check bool) "converged" true result.Filtered.converged;
  let dense = Tql.symmetric_eigenvalues (Csr.to_dense m) in
  Alcotest.check (float_array_approx 1e-5) "smallest match dense"
    (Array.sub dense 0 h) result.Filtered.values

let test_filtered_multiplicities () =
  (* Same disjoint-edges construction as the Lanczos test: eigenvalue 0 and
     2, each with multiplicity 6 — the block must capture whole clusters. *)
  let triplets = ref [] in
  for c = 0 to 5 do
    let a = 2 * c and b = (2 * c) + 1 in
    triplets :=
      (a, a, 1.0) :: (b, b, 1.0) :: (a, b, -1.0) :: (b, a, -1.0) :: !triplets
  done;
  let m = Csr.of_triplets ~rows:12 ~cols:12 !triplets in
  let result = Filtered.smallest_csr m ~h:12 in
  Alcotest.(check bool) "converged" true result.Filtered.converged;
  let expected = Array.append (Array.make 6 0.0) (Array.make 6 2.0) in
  Alcotest.check (float_array_approx 1e-6) "multiplicities" expected
    result.Filtered.values

let test_filtered_vs_dense_random () =
  let rng = Rng.create 77 in
  let n = 150 in
  let a = random_symmetric rng n in
  let sym = Mat.mul (Mat.transpose a) a in
  (* PSD *)
  let m = Csr.of_dense sym in
  let h = 20 in
  let result = Filtered.smallest_csr m ~h ~tol:1e-8 in
  Alcotest.(check bool) "converged" true result.Filtered.converged;
  let dense = Tql.symmetric_eigenvalues sym in
  Alcotest.check (float_array_approx 1e-4) "matches dense" (Array.sub dense 0 h)
    result.Filtered.values

let test_filtered_h_ge_n () =
  let m = laplacian_path 30 in
  let result = Filtered.smallest_csr m ~h:50 in
  Alcotest.(check int) "clamped" 30 (Array.length result.Filtered.values);
  let dense = Tql.symmetric_eigenvalues (Csr.to_dense m) in
  Alcotest.check (float_array_approx 1e-6) "full spectrum" dense result.Filtered.values

let test_filtered_vectors () =
  let n = 200 in
  let m = laplacian_path n in
  let result = Filtered.smallest_csr m ~h:6 ~want_vectors:true ~tol:1e-8 in
  match result.Filtered.vectors with
  | None -> Alcotest.fail "expected vectors"
  | Some vecs ->
      Array.iteri
        (fun i v ->
          let av = Csr.matvec m v in
          let lv = Vec.scale result.Filtered.values.(i) v in
          Alcotest.(check bool)
            (Printf.sprintf "residual %d" i)
            true
            (Vec.approx_equal ~tol:1e-4 av lv))
        vecs

let test_filtered_deterministic () =
  let m = laplacian_path 120 in
  let a = Filtered.smallest_csr m ~h:8 ~seed:3 in
  let b = Filtered.smallest_csr m ~h:8 ~seed:3 in
  Alcotest.check (float_array_approx 0.0) "same seed" a.Filtered.values
    b.Filtered.values

let test_filtered_warm_start_accuracy () =
  (* Seeding from a donor solve at a different h must not change what the
     solver converges to — only how fast.  Both directions: a smaller
     donor block is padded with the usual random columns, a larger one is
     truncated. *)
  let m = laplacian_path 300 in
  let donor = Filtered.smallest_csr m ~h:6 ~want_vectors:true ~tol:1e-8 in
  let init =
    match donor.Filtered.vectors with
    | Some v -> v
    | None -> Alcotest.fail "donor vectors missing"
  in
  let cold_up = Filtered.smallest_csr m ~h:10 ~tol:1e-8 in
  let warm_up = Filtered.smallest_csr m ~h:10 ~tol:1e-8 ~init in
  Alcotest.(check bool) "padded warm converged" true warm_up.Filtered.converged;
  Alcotest.check (float_array_approx 1e-6) "padded warm matches cold"
    cold_up.Filtered.values warm_up.Filtered.values;
  let cold_down = Filtered.smallest_csr m ~h:4 ~tol:1e-8 in
  let warm_down = Filtered.smallest_csr m ~h:4 ~tol:1e-8 ~init in
  Alcotest.(check bool) "truncated warm converged" true
    warm_down.Filtered.converged;
  Alcotest.check (float_array_approx 1e-6) "truncated warm matches cold"
    cold_down.Filtered.values warm_down.Filtered.values

let test_filtered_hypercube_multiplicity_wall () =
  (* The stress case that defeats single-vector Krylov methods: the
     out-degree-normalized hypercube Laplacian has eigenvalue clusters far
     wider than any Krylov chain discovers per restart. *)
  let l = 8 in
  let n = 1 lsl l in
  let triplets = ref [] in
  for mask = 0 to n - 1 do
    for bit = 0 to l - 1 do
      if mask land (1 lsl bit) = 0 then begin
        let v = mask lor (1 lsl bit) in
        let popcount = ref 0 in
        for b2 = 0 to l - 1 do
          if mask land (1 lsl b2) <> 0 then incr popcount
        done;
        let w = 1.0 /. float_of_int (l - !popcount) in
        triplets :=
          (mask, mask, w) :: (v, v, w) :: (mask, v, -.w) :: (v, mask, -.w)
          :: !triplets
      end
    done
  done;
  let m = Csr.of_triplets ~rows:n ~cols:n !triplets in
  let result = Filtered.smallest_csr m ~h:60 in
  Alcotest.(check bool) "converged" true result.Filtered.converged;
  let dense = Tql.symmetric_eigenvalues (Csr.to_dense m) in
  Alcotest.check (float_array_approx 1e-5) "matches dense" (Array.sub dense 0 60)
    result.Filtered.values

(* ------------------------------------------------------------------ *)
(* Eigen driver                                                        *)
(* ------------------------------------------------------------------ *)

let test_eigen_backend_selection () =
  let small = laplacian_path 50 in
  let s = Eigen.smallest ~h:5 small in
  Alcotest.(check bool) "dense backend" true (s.Eigen.backend = Eigen.Dense);
  let big = laplacian_path 1500 in
  let b = Eigen.smallest ~h:5 big in
  Alcotest.(check bool) "sparse backend" true (b.Eigen.backend = Eigen.Sparse_filtered)

let test_eigen_paths_agree () =
  let m = laplacian_path 200 in
  let dense = Eigen.smallest ~h:10 ~dense_threshold:10_000 m in
  let sparse = Eigen.smallest ~h:10 ~dense_threshold:10 m in
  Alcotest.check (float_array_approx 1e-6) "agree" dense.Eigen.values sparse.Eigen.values

let test_eigen_pooled_path_bitwise () =
  (* low dense_threshold forces the filtered backend; the pooled matvec
     must leave its eigenvalues bitwise unchanged *)
  let m = laplacian_path 300 in
  let seq = Eigen.smallest ~h:8 ~dense_threshold:0 ~seed:3 m in
  Alcotest.(check bool) "sparse backend" true
    (seq.Eigen.backend = Eigen.Sparse_filtered);
  Graphio_par.Pool.with_pool ~size:2 (fun pool ->
      let par = Eigen.smallest ~h:8 ~dense_threshold:0 ~seed:3 ~pool m in
      Alcotest.(check bool) "bitwise equal" true
        (Array.for_all2
           (fun a b -> Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b))
           seq.Eigen.values par.Eigen.values))

(* ------------------------------------------------------------------ *)
(* Toeplitz                                                            *)
(* ------------------------------------------------------------------ *)

let test_toeplitz_closed_form_vs_dense () =
  List.iter
    (fun (n, diag, off) ->
      let expected = Toeplitz.eigenvalues ~n ~diag ~off in
      let got = Tql.symmetric_eigenvalues (Toeplitz.matrix ~n ~diag ~off) in
      Alcotest.check (float_array_approx 1e-9) "toeplitz spectrum" expected got)
    [ (1, 2.0, -1.0); (4, 2.0, -1.0); (9, 4.0, -2.0); (33, 1.0, 0.5) ]

(* ------------------------------------------------------------------ *)
(* Property-based tests                                                *)
(* ------------------------------------------------------------------ *)

let small_vec_gen =
  QCheck2.Gen.(
    let* n = int_range 1 12 in
    array_size (return n) (float_range (-100.0) 100.0))

let prop_dot_commutative =
  QCheck2.Test.make ~name:"dot is commutative" ~count:200
    QCheck2.Gen.(pair small_vec_gen small_vec_gen)
    (fun (x, y) ->
      let n = min (Array.length x) (Array.length y) in
      let x = Array.sub x 0 n and y = Array.sub y 0 n in
      Float.abs (Vec.dot x y -. Vec.dot y x) <= 1e-6 *. (1.0 +. Float.abs (Vec.dot x y)))

let prop_norm_triangle =
  QCheck2.Test.make ~name:"triangle inequality" ~count:200
    QCheck2.Gen.(pair small_vec_gen small_vec_gen)
    (fun (x, y) ->
      let n = min (Array.length x) (Array.length y) in
      let x = Array.sub x 0 n and y = Array.sub y 0 n in
      Vec.norm2 (Vec.add x y) <= Vec.norm2 x +. Vec.norm2 y +. 1e-9)

let sym_mat_gen =
  QCheck2.Gen.(
    let* n = int_range 1 10 in
    let* seed = int_range 0 1_000_000 in
    return
      (let rng = Rng.create seed in
       random_symmetric rng n))

let prop_spectrum_sum_trace =
  QCheck2.Test.make ~name:"eigenvalue sum equals trace" ~count:60 sym_mat_gen
    (fun a ->
      let values = Tql.symmetric_eigenvalues a in
      Float.abs (Vec.sum values -. Mat.trace a)
      <= 1e-7 *. (1.0 +. Float.abs (Mat.trace a)))

let prop_ql_matches_jacobi =
  QCheck2.Test.make ~name:"QL matches Jacobi" ~count:40 sym_mat_gen (fun a ->
      let ql = Tql.symmetric_eigenvalues a in
      let jc = Jacobi.eigenvalues a in
      Vec.approx_equal ~tol:1e-6 ql jc)

let prop_gram_matrix_psd =
  QCheck2.Test.make ~name:"Gram matrices are PSD" ~count:60 sym_mat_gen (fun b ->
      let g = Mat.mul (Mat.transpose b) b in
      let values = Tql.symmetric_eigenvalues g in
      Array.for_all (fun l -> l >= -1e-7 *. (1.0 +. Mat.max_abs g)) values)

let prop_csr_matvec_linear =
  QCheck2.Test.make ~name:"CSR matvec is linear" ~count:100
    QCheck2.Gen.(triple (int_range 0 1_000_000) small_vec_gen small_vec_gen)
    (fun (seed, x, y) ->
      let n = min (Array.length x) (Array.length y) in
      let x = Array.sub x 0 n and y = Array.sub y 0 n in
      let rng = Rng.create seed in
      let a =
        Mat.init n n (fun _ _ -> if Rng.float rng < 0.4 then Rng.gaussian rng else 0.0)
      in
      let m = Csr.of_dense a in
      let lhs = Csr.matvec m (Vec.add x y) in
      let rhs = Vec.add (Csr.matvec m x) (Csr.matvec m y) in
      Vec.approx_equal ~tol:1e-6 lhs rhs)

let prop_ba_matvec_bitwise =
  QCheck2.Test.make ~name:"Bigarray kernel bitwise-equal to array kernel"
    ~count:150
    QCheck2.Gen.(triple (int_range 1 40) (int_range 1 40) (int_range 0 1_000_000))
    (fun (rows, cols, seed) ->
      let rng = Rng.create seed in
      let triplets = ref [] in
      for i = 0 to rows - 1 do
        (* leave ~25% of rows empty; unreferenced columns come for free *)
        if Rng.float rng > 0.25 then
          for j = 0 to cols - 1 do
            if Rng.float rng < 0.2 then begin
              (* wide magnitude spread makes the accumulation order visible
                 in the low bits, so reordering would be caught *)
              let scale = Float.of_int (1 lsl Rng.int rng 20) in
              triplets := (i, j, Rng.gaussian rng *. scale) :: !triplets
            end
          done
      done;
      let m = Csr.of_triplets ~rows ~cols !triplets in
      let x = Array.init cols (fun _ -> Rng.gaussian rng) in
      bitwise_equal (Csr.matvec m x) (Csr.Ba.matvec (Csr.Ba.of_csr m) x))

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_dot_commutative;
      prop_norm_triangle;
      prop_spectrum_sum_trace;
      prop_ql_matches_jacobi;
      prop_gram_matrix_psd;
      prop_csr_matvec_linear;
      prop_ba_matvec_bitwise;
    ]

let () =
  Alcotest.run "graphio_la"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "unit vector" `Quick test_rng_unit_vector;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
        ] );
      ( "vec",
        [
          Alcotest.test_case "dot" `Quick test_vec_dot;
          Alcotest.test_case "dot mismatch" `Quick test_vec_dot_mismatch;
          Alcotest.test_case "norm2" `Quick test_vec_norm2;
          Alcotest.test_case "axpy" `Quick test_vec_axpy;
          Alcotest.test_case "normalize" `Quick test_vec_normalize;
          Alcotest.test_case "orthogonalize" `Quick test_vec_orthogonalize;
          Alcotest.test_case "min/max/sum" `Quick test_vec_minmax;
        ] );
      ( "mat",
        [
          Alcotest.test_case "mul" `Quick test_mat_mul;
          Alcotest.test_case "identity mul" `Quick test_mat_identity_mul;
          Alcotest.test_case "transpose" `Quick test_mat_transpose;
          Alcotest.test_case "matvec" `Quick test_mat_matvec;
          Alcotest.test_case "symmetric" `Quick test_mat_symmetric;
          Alcotest.test_case "trace" `Quick test_mat_trace;
        ] );
      ( "dense-eigen",
        [
          Alcotest.test_case "tridiag preserves spectrum" `Quick
            test_tridiag_preserves_spectrum;
          Alcotest.test_case "tridiag q orthogonal" `Quick test_tridiag_q_orthogonal;
          Alcotest.test_case "tridiag reconstruction" `Quick test_tridiag_reconstruction;
          Alcotest.test_case "tql dirichlet closed form" `Quick
            test_tql_dirichlet_closed_form;
          Alcotest.test_case "tql vs jacobi random" `Quick test_tql_vs_jacobi_random;
          Alcotest.test_case "eigensystem residuals" `Quick test_eigensystem_residuals;
          Alcotest.test_case "eigenvalue sum = trace" `Quick test_eigenvalue_sum_is_trace;
          Alcotest.test_case "jacobi eigensystem" `Quick test_jacobi_eigensystem;
          Alcotest.test_case "diagonal matrix" `Quick test_diag_matrix_eigenvalues;
          Alcotest.test_case "empty and 1x1" `Quick test_empty_and_one;
        ] );
      ( "csr",
        [
          Alcotest.test_case "roundtrip" `Quick test_csr_roundtrip;
          Alcotest.test_case "duplicate summing" `Quick test_csr_duplicate_summing;
          Alcotest.test_case "out of range" `Quick test_csr_out_of_range;
          Alcotest.test_case "matvec vs dense" `Quick test_csr_matvec_matches_dense;
          Alcotest.test_case "transpose" `Quick test_csr_transpose;
          Alcotest.test_case "symmetric check" `Quick test_csr_symmetric;
          Alcotest.test_case "prune" `Quick test_csr_prune;
          Alcotest.test_case "gershgorin" `Quick test_csr_gershgorin;
          Alcotest.test_case "scale" `Quick test_csr_scale;
        ] );
      ( "csr-ba",
        [
          Alcotest.test_case "edge shapes bitwise" `Quick
            test_ba_matvec_edge_shapes;
          Alcotest.test_case "int32 overflow guard" `Quick
            test_ba_of_csr_int32_guard;
          Alcotest.test_case "dims and nnz" `Quick test_ba_dims_nnz;
        ] );
      ( "lanczos",
        [
          Alcotest.test_case "path graph" `Quick test_lanczos_path_graph;
          Alcotest.test_case "multiplicities via locking" `Quick
            test_lanczos_multiplicities;
          Alcotest.test_case "vs dense random" `Quick test_lanczos_vs_dense_random;
          Alcotest.test_case "h >= n" `Quick test_lanczos_h_ge_n;
          Alcotest.test_case "eigenvectors" `Quick test_lanczos_vectors;
          Alcotest.test_case "deterministic" `Quick test_lanczos_deterministic;
        ] );
      ( "filtered",
        [
          Alcotest.test_case "path graph" `Quick test_filtered_path_graph;
          Alcotest.test_case "multiplicities" `Quick test_filtered_multiplicities;
          Alcotest.test_case "vs dense random PSD" `Quick test_filtered_vs_dense_random;
          Alcotest.test_case "h >= n" `Quick test_filtered_h_ge_n;
          Alcotest.test_case "eigenvectors" `Quick test_filtered_vectors;
          Alcotest.test_case "deterministic" `Quick test_filtered_deterministic;
          Alcotest.test_case "warm start accuracy" `Quick
            test_filtered_warm_start_accuracy;
          Alcotest.test_case "hypercube multiplicity wall" `Slow
            test_filtered_hypercube_multiplicity_wall;
        ] );
      ( "eigen-driver",
        [
          Alcotest.test_case "backend selection" `Quick test_eigen_backend_selection;
          Alcotest.test_case "paths agree" `Quick test_eigen_paths_agree;
          Alcotest.test_case "pooled path bitwise" `Quick
            test_eigen_pooled_path_bitwise;
        ] );
      ( "toeplitz",
        [
          Alcotest.test_case "closed form vs dense" `Quick
            test_toeplitz_closed_form_vs_dense;
        ] );
      ("properties", props);
    ]
