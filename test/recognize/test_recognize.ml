(* The differential battery behind the closed-form dispatch tier.

   The recognizer ends in a full structural verification, so a false
   positive is impossible by construction — what this battery pins down
   empirically is everything else:

   - completeness: every builder instance of every family, over the whole
     solver-feasible size range, IS recognized (sweep + QCheck relabeling);
   - agreement: the closed-form spectrum and bound match the numeric
     pipeline on every instance, for both Theorems 4 and 5;
   - zero work: a recognized bound performs no eigensolve at all (matvec
     and solve counters are flat);
   - no misrecognition: one-edge perturbations of family instances are
     rejected (QCheck negatives), as are the non-family workloads. *)

open Graphio_core
open Graphio_workloads
module R = Graphio_recognize.Recognize
module Metrics = Graphio_obs.Metrics
module Dag = Graphio_graph.Dag
module Er = Graphio_graph.Er

let family : R.family Alcotest.testable = Alcotest.testable R.pp R.equal

let path n = Sequences.independent_chains ~count:1 ~length:n

(* ------------------------------------------------------------------ *)
(* Recognition of builder instances                                    *)
(* ------------------------------------------------------------------ *)

let test_recognize_families () =
  (* B_1's support is C_4 = Q_2 and Q_1 = P_2: on coinciding instances the
     earlier recognizer wins, and the spectra agree because the graphs are
     equal (checked in the sweep below). *)
  let cases =
    [ ("fft 1", Fft.build 1, R.Hypercube 2);
      ("fft 2", Fft.build 2, R.Butterfly 2);
      ("fft 5", Fft.build 5, R.Butterfly 5);
      ("bhk 1", Bhk.build 1, R.Path 2);
      ("bhk 2", Bhk.build 2, R.Hypercube 2);
      ("bhk 6", Bhk.build 6, R.Hypercube 6);
      ("path 1", path 1, R.Path 1);
      ("path 2", path 2, R.Path 2);
      ("path 17", path 17, R.Path 17);
      ("grid 2x3", Stencil.grid ~rows:2 ~cols:3, R.Grid (2, 3));
      ("grid 5x3", Stencil.grid ~rows:5 ~cols:3, R.Grid (3, 5));
      ("grid 4x4", Stencil.grid ~rows:4 ~cols:4, R.Grid (4, 4)) ]
  in
  List.iter
    (fun (name, g, expected) ->
      Alcotest.(check (option family)) name (Some expected) (R.recognize g))
    cases

let test_rejects_non_families () =
  let cases =
    [ ("matmul 3", Matmul.build 3);
      ("strassen 2", Strassen.build 2);
      ("inner 8", Inner_product.build 8);
      ("er 30", Er.gnp ~n:30 ~p:0.2 ~seed:3);
      ("3-point stencil", Stencil.build ~width:5 ~steps:3 ());
      ("pyramid", Stencil.pyramid 5);
      ("two chains", Sequences.independent_chains ~count:2 ~length:5);
      ("edgeless", Dag.of_edges ~n:10 []);
      ("empty", Dag.of_edges ~n:0 []) ]
  in
  List.iter
    (fun (name, g) ->
      Alcotest.(check (option family)) name None (R.recognize g))
    cases

let test_reciprocal_edges_rejected () =
  (* a reciprocal pair doubles the support weight, which no closed form
     models — must not be recognized even though the support looks like P_3
     (of_edges would reject the cycle, so drive the builder directly) *)
  let b = Dag.Builder.create () in
  for _ = 0 to 2 do
    ignore (Dag.Builder.add_vertex b)
  done;
  Dag.Builder.add_edge b 0 1;
  Dag.Builder.add_edge b 1 0;
  Dag.Builder.add_edge b 1 2;
  let g = Dag.Builder.build ~verify_acyclic:false b in
  Alcotest.(check (option family)) "reciprocal pair" None (R.recognize g)

let test_uniform_out_degree () =
  Alcotest.(check (option int)) "fft" (Some 2) (R.uniform_out_degree (Fft.build 3));
  Alcotest.(check (option int)) "chain" (Some 1) (R.uniform_out_degree (path 9));
  Alcotest.(check (option int)) "bhk not uniform" None
    (R.uniform_out_degree (Bhk.build 3));
  Alcotest.(check (option int)) "edgeless" None
    (R.uniform_out_degree (Dag.of_edges ~n:4 []))

(* ------------------------------------------------------------------ *)
(* Differential sweep: closed form vs numeric                          *)
(* ------------------------------------------------------------------ *)

(* Every butterfly, hypercube, path and grid instance the numeric solver
   can comfortably diagonalize.  The dense backend is forced on the
   numeric side so the comparison tolerance reflects dense eigensolver
   accuracy, not iterative convergence. *)
let sweep_instances () =
  List.concat
    [ List.map (fun k -> (Printf.sprintf "fft %d" k, Fft.build k)) [ 1; 2; 3; 4; 5; 6 ];
      List.map (fun l -> (Printf.sprintf "bhk %d" l, Bhk.build l)) [ 1; 2; 3; 4; 5; 6; 7 ];
      List.map (fun n -> (Printf.sprintf "path %d" n, path n)) [ 1; 2; 3; 5; 17; 64 ];
      List.map
        (fun (r, c) -> (Printf.sprintf "grid %dx%d" r c, Stencil.grid ~rows:r ~cols:c))
        [ (2, 3); (3, 3); (3, 5); (4, 6); (5, 5) ] ]

let check_closed_vs_numeric name ~method_ ~require_closed g =
  let m = 8 and h = 24 in
  let closed = Solver.bound ~method_ ~h g ~m in
  let numeric =
    Solver.bound ~method_ ~h ~dense_threshold:1_000_000 ~closed_form:false g ~m
  in
  Alcotest.(check bool) (name ^ ": numeric tier") true
    (numeric.Solver.tier = Solver.Numeric);
  match closed.Solver.tier with
  | Solver.Numeric ->
      if require_closed then
        Alcotest.failf "%s: expected the closed-form tier to answer" name
  | Solver.Closed_form _ ->
      let ev_c = closed.Solver.eigenvalues
      and ev_n = numeric.Solver.eigenvalues in
      Alcotest.(check int) (name ^ ": eigenvalue count") (Array.length ev_n)
        (Array.length ev_c);
      Array.iteri
        (fun i c ->
          if Float.abs (c -. ev_n.(i)) > 1e-8 then
            Alcotest.failf "%s: eigenvalue %d: closed %.12g vs numeric %.12g"
              name i c ev_n.(i))
        ev_c;
      let b_c = closed.Solver.result.Spectral_bound.bound
      and b_n = numeric.Solver.result.Spectral_bound.bound in
      if Float.abs (b_c -. b_n) > 1e-6 *. Float.max 1.0 (Float.abs b_n) then
        Alcotest.failf "%s: bound: closed %.12g vs numeric %.12g" name b_c b_n;
      Alcotest.(check int) (name ^ ": best_k")
        numeric.Solver.result.Spectral_bound.best_k
        closed.Solver.result.Spectral_bound.best_k

let test_sweep_standard () =
  (* Theorem 5's closed form applies to every recognized graph *)
  List.iter
    (fun (name, g) ->
      check_closed_vs_numeric name ~method_:Solver.Standard ~require_closed:true g)
    (sweep_instances ())

let test_sweep_normalized () =
  (* Theorem 4's closed form needs a uniform out-degree: true for the
     butterflies (d = 2) and chains (d = 1), false for BHK and the grid
     diamond DAG — those must fall back to the (always correct) numeric
     tier, which the sweep still cross-checks *)
  List.iter
    (fun (name, g) ->
      let require_closed = R.uniform_out_degree g <> None in
      check_closed_vs_numeric name ~method_:Solver.Normalized ~require_closed g)
    (sweep_instances ())

let test_normalized_fallback_is_numeric () =
  let g = Bhk.build 4 in
  let o = Solver.bound ~method_:Solver.Normalized g ~m:8 in
  Alcotest.(check bool) "bhk normalized falls back" true
    (o.Solver.tier = Solver.Numeric);
  let o = Solver.bound ~method_:Solver.Standard g ~m:8 in
  Alcotest.(check bool) "bhk standard stays closed" true
    (match o.Solver.tier with Solver.Closed_form _ -> true | _ -> false)

(* ------------------------------------------------------------------ *)
(* Zero eigensolver work on the closed path                            *)
(* ------------------------------------------------------------------ *)

let test_closed_form_zero_matvecs () =
  let matvecs = Metrics.counter "la.csr.matvecs" in
  let dense = Metrics.counter "la.eigen.dense_solves" in
  let sparse = Metrics.counter "la.eigen.sparse_solves" in
  let hits = Metrics.counter "core.solver.closed_form_hits" in
  List.iter
    (fun (name, g) ->
      let mv0 = Metrics.counter_value matvecs
      and d0 = Metrics.counter_value dense
      and s0 = Metrics.counter_value sparse
      and h0 = Metrics.counter_value hits in
      (* dense_threshold 0 would route a numeric solve through the matvec
         counter, so a flat counter proves the eigensolver never ran *)
      let o = Solver.bound ~method_:Solver.Standard ~dense_threshold:0 g ~m:8 in
      Alcotest.(check bool) (name ^ ": closed tier") true
        (match o.Solver.tier with Solver.Closed_form _ -> true | _ -> false);
      Alcotest.(check bool) (name ^ ": no solve stats") true
        (o.Solver.solve_stats = None);
      Alcotest.(check int) (name ^ ": zero matvecs") mv0
        (Metrics.counter_value matvecs);
      Alcotest.(check int) (name ^ ": zero dense solves") d0
        (Metrics.counter_value dense);
      Alcotest.(check int) (name ^ ": zero sparse solves") s0
        (Metrics.counter_value sparse);
      Alcotest.(check int) (name ^ ": hit counted") (h0 + 1)
        (Metrics.counter_value hits))
    [ ("fft 5", Fft.build 5); ("path 40", path 40);
      ("grid 6x7", Stencil.grid ~rows:6 ~cols:7) ]

(* ------------------------------------------------------------------ *)
(* QCheck: relabeling invariance and perturbation rejection            *)
(* ------------------------------------------------------------------ *)

(* a deterministic permutation of [0, n) from a seed (Fisher–Yates over a
   splitmix-ish stream — no Random state shared with QCheck) *)
let permutation ~seed n =
  let s = ref (Int64.of_int (seed lxor 0x9e3779b9)) in
  let next () =
    s := Int64.mul (Int64.add !s 0x9e3779b97f4a7c15L) 0xbf58476d1ce4e5b9L;
    Int64.to_int (Int64.shift_right_logical !s 33)
  in
  let p = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = next () mod (i + 1) in
    let t = p.(i) in
    p.(i) <- p.(j);
    p.(j) <- t
  done;
  p

(* Relabeled copy.  Directed structure is preserved, so the result is the
   same DAG under a different vertex numbering. *)
let relabel ~seed g =
  let n = Dag.n_vertices g in
  let p = permutation ~seed n in
  Dag.of_edges ~n (List.map (fun (u, v) -> (p.(u), p.(v))) (Dag.edges g))

(* Family instances whose names are unambiguous (B_1, Q_1, Q_2 coincide
   with other families and are covered by the unit cases above). *)
let gen_instance =
  QCheck2.Gen.(
    oneof
      [ (let* k = int_range 2 4 in
         return (R.Butterfly k, Fft.build k));
        (let* l = int_range 3 6 in
         return (R.Hypercube l, Bhk.build l));
        (let* n = int_range 3 48 in
         return (R.Path n, path n));
        (let* r = int_range 2 6 in
         let* c = int_range 3 6 in
         if r * c < 6 then assert false
         else return (R.Grid (min r c, max r c), Stencil.grid ~rows:r ~cols:c)) ])

let prop_relabeled_still_recognized =
  QCheck2.Test.make ~name:"relabeled instances stay recognized" ~count:60
    QCheck2.Gen.(pair gen_instance (int_range 0 10_000))
    (fun ((fam, g), seed) -> R.recognize (relabel ~seed g) = Some fam)

(* Perturbations stay DAGs: builder vertex order is topological for every
   generator above, so adding u -> v with u < v cannot close a cycle. *)
let add_one_edge ~seed g =
  let n = Dag.n_vertices g in
  let s = ref (seed lxor 0x5bd1e995) in
  let next bound =
    s := (!s * 1103515245) + 12345;
    (!s lsr 7) mod bound
  in
  let rec pick tries =
    if tries = 0 then None
    else
      let u = next n and v = next n in
      let u, v = (min u v, max u v) in
      if u <> v && (not (Dag.has_edge g u v)) && not (Dag.has_edge g v u) then
        Some (Dag.of_edges ~n ((u, v) :: Dag.edges g))
      else pick (tries - 1)
  in
  pick 64

let remove_one_edge ~seed g =
  let edges = Dag.edges g in
  let m = List.length edges in
  if m = 0 then None
  else
    let drop = (seed * 7919) mod m in
    Some (Dag.of_edges ~n:(Dag.n_vertices g)
            (List.filteri (fun i _ -> i <> drop) edges))

let perturbation_prop ~count name gen perturb =
  QCheck2.Test.make ~name ~count
    QCheck2.Gen.(pair gen (int_range 0 100_000))
    (fun (g, seed) ->
      match perturb ~seed g with
      | None -> QCheck2.assume_fail ()
      | Some g' -> R.recognize g' = None)

(* The size floors below exclude the coinciding tiny instances for which a
   one-edge perturbation legitimately IS another family (e.g. Q_2 minus an
   edge is P_4, and P_4 plus the closing chord is C_4 = Q_2). *)

let prop_butterfly_perturbed_rejected =
  perturbation_prop ~count:40 "butterfly +/- one edge is not recognized"
    QCheck2.Gen.(
      let* k = int_range 2 4 in
      return (Fft.build k))
    (fun ~seed g ->
      if seed land 1 = 0 then add_one_edge ~seed g else remove_one_edge ~seed g)

let prop_hypercube_perturbed_rejected =
  perturbation_prop ~count:40 "hypercube +/- one edge is not recognized"
    QCheck2.Gen.(
      let* l = int_range 3 6 in
      return (Bhk.build l))
    (fun ~seed g ->
      if seed land 1 = 0 then add_one_edge ~seed g else remove_one_edge ~seed g)

let prop_path_with_chord_rejected =
  perturbation_prop ~count:40 "path plus a chord is not recognized"
    QCheck2.Gen.(
      let* n = int_range 5 48 in
      return (path n))
    add_one_edge

let prop_grid_minus_edge_rejected =
  perturbation_prop ~count:40 "grid minus one edge is not recognized"
    QCheck2.Gen.(
      let* r = int_range 2 6 in
      let* c = int_range 3 6 in
      return (Stencil.grid ~rows:r ~cols:c))
    remove_one_edge

(* closed-form and numeric agree on relabeled instances too: recognition is
   what dispatches, so the differential must survive renumbering *)
let prop_relabeled_bound_agrees =
  QCheck2.Test.make ~name:"relabeled closed-form bound matches numeric" ~count:20
    QCheck2.Gen.(pair gen_instance (int_range 0 10_000))
    (fun ((_, g), seed) ->
      let g = relabel ~seed g in
      let closed = Solver.bound ~method_:Solver.Standard ~h:16 g ~m:8 in
      let numeric =
        Solver.bound ~method_:Solver.Standard ~h:16 ~dense_threshold:1_000_000
          ~closed_form:false g ~m:8
      in
      (match closed.Solver.tier with
      | Solver.Closed_form _ -> true
      | Solver.Numeric -> false)
      &&
      let b_c = closed.Solver.result.Spectral_bound.bound
      and b_n = numeric.Solver.result.Spectral_bound.bound in
      Float.abs (b_c -. b_n) <= 1e-6 *. Float.max 1.0 (Float.abs b_n))

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_relabeled_still_recognized;
      prop_butterfly_perturbed_rejected;
      prop_hypercube_perturbed_rejected;
      prop_path_with_chord_rejected;
      prop_grid_minus_edge_rejected;
      prop_relabeled_bound_agrees ]

let () =
  Alcotest.run "graphio_recognize"
    [
      ( "recognize",
        [
          Alcotest.test_case "builder families recognized" `Quick
            test_recognize_families;
          Alcotest.test_case "non-families rejected" `Quick
            test_rejects_non_families;
          Alcotest.test_case "reciprocal edges rejected" `Quick
            test_reciprocal_edges_rejected;
          Alcotest.test_case "uniform out-degree" `Quick test_uniform_out_degree;
        ] );
      ( "differential",
        [
          Alcotest.test_case "standard sweep" `Quick test_sweep_standard;
          Alcotest.test_case "normalized sweep" `Quick test_sweep_normalized;
          Alcotest.test_case "normalized fallback" `Quick
            test_normalized_fallback_is_numeric;
          Alcotest.test_case "zero matvecs" `Quick test_closed_form_zero_matvecs;
        ] );
      ("properties", props);
    ]
