open Graphio_trace
open Graphio_graph

(* ------------------------------------------------------------------ *)
(* Trace primitives                                                    *)
(* ------------------------------------------------------------------ *)

let test_trace_arithmetic_payloads () =
  let ctx = Trace.create () in
  let a = Trace.input ctx 3.0 and b = Trace.input ctx 4.0 in
  Alcotest.(check (float 1e-12)) "add" 7.0 (Trace.payload (Trace.add a b));
  Alcotest.(check (float 1e-12)) "sub" (-1.0) (Trace.payload (Trace.sub a b));
  Alcotest.(check (float 1e-12)) "mul" 12.0 (Trace.payload (Trace.mul a b));
  Alcotest.(check (float 1e-12)) "div" 0.75 (Trace.payload (Trace.div a b));
  Alcotest.(check (float 1e-12)) "neg" (-3.0) (Trace.payload (Trace.neg a))

let test_trace_infix () =
  let ctx = Trace.create () in
  let a = Trace.input ctx 2.0 and b = Trace.input ctx 5.0 in
  let open Trace.Infix in
  Alcotest.(check (float 1e-12)) "expr" 9.0 (Trace.payload ((a * b) - (a / a)))

let test_trace_graph_structure () =
  let ctx = Trace.create () in
  let a = Trace.input ctx 1.0 and b = Trace.input ctx 2.0 in
  let c = Trace.add a b in
  let d = Trace.mul c c in
  (* c*c: repeated operand, single dependency edge *)
  let g = Trace.graph ctx in
  Alcotest.(check int) "vertices" 4 (Dag.n_vertices g);
  Alcotest.(check int) "edges" 3 (Dag.n_edges g);
  Alcotest.(check int) "d in-degree 1 (dedup)" 1 (Dag.in_degree g (Trace.id d));
  Alcotest.(check (float 1e-12)) "payload" 9.0 (Trace.payload d)

let test_trace_custom () =
  let ctx = Trace.create () in
  let xs = List.init 5 (fun i -> Trace.input ctx (float_of_int i)) in
  let s = Trace.custom ~label:"sum" ~f:(Array.fold_left ( +. ) 0.0) xs in
  Alcotest.(check (float 1e-12)) "payload" 10.0 (Trace.payload s);
  let g = Trace.graph ctx in
  Alcotest.(check int) "arity" 5 (Dag.in_degree g (Trace.id s));
  Alcotest.(check (option string)) "label" (Some "sum") (Dag.label g (Trace.id s))

let test_trace_mixed_contexts_rejected () =
  let c1 = Trace.create () and c2 = Trace.create () in
  let a = Trace.input c1 1.0 and b = Trace.input c2 2.0 in
  Alcotest.check_raises "mixed"
    (Invalid_argument "Trace: operands belong to different contexts") (fun () ->
      ignore (Trace.add a b))

let test_trace_empty_custom_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Trace: operation with no operands")
    (fun () -> ignore (Trace.custom ~label:"x" ~f:(fun _ -> 0.0) []))

let test_trace_n_operations () =
  let ctx = Trace.create () in
  Alcotest.(check int) "empty" 0 (Trace.n_operations ctx);
  let a = Trace.input ctx 1.0 in
  let _ = Trace.neg a in
  Alcotest.(check int) "two ops" 2 (Trace.n_operations ctx)

let test_trace_incremental_graph () =
  let ctx = Trace.create () in
  let a = Trace.input ctx 1.0 in
  let g1 = Trace.graph ctx in
  let _ = Trace.neg a in
  let g2 = Trace.graph ctx in
  Alcotest.(check int) "first snapshot" 1 (Dag.n_vertices g1);
  Alcotest.(check int) "second snapshot" 2 (Dag.n_vertices g2)

(* ------------------------------------------------------------------ *)
(* Traced programs vs reference results                                *)
(* ------------------------------------------------------------------ *)

let test_inner_product_value () =
  let ctx = Trace.create () in
  let r = Programs.inner_product ctx [| 1.; 2.; 3. |] [| 4.; 5.; 6. |] in
  Alcotest.(check (float 1e-12)) "value" 32.0 (Trace.payload r)

let test_inner_product_graph_matches_builder () =
  let ctx = Trace.create () in
  let _ = Programs.inner_product ctx [| 1.; 2. |] [| 3.; 4. |] in
  let traced = Trace.graph ctx in
  let built = Graphio_workloads.Inner_product.build 2 in
  Alcotest.(check int) "n" (Dag.n_vertices built) (Dag.n_vertices traced);
  Alcotest.(check (list (pair int int))) "edges" (Dag.edges built) (Dag.edges traced)

let test_walsh_hadamard_values () =
  let rng = Graphio_la.Rng.create 77 in
  List.iter
    (fun l ->
      let n = 1 lsl l in
      let input = Array.init n (fun _ -> Graphio_la.Rng.gaussian rng) in
      let ctx = Trace.create () in
      let traced = Programs.walsh_hadamard ctx input in
      let reference = Programs.reference_walsh_hadamard input in
      Array.iteri
        (fun i v ->
          Alcotest.(check (float 1e-9))
            (Printf.sprintf "out %d" i)
            reference.(i) (Trace.payload v))
        traced)
    [ 0; 1; 2; 3; 5 ]

let test_walsh_hadamard_graph_is_butterfly () =
  List.iter
    (fun l ->
      let n = 1 lsl l in
      let ctx = Trace.create () in
      let _ = Programs.walsh_hadamard ctx (Array.make n 1.0) in
      let traced = Trace.graph ctx in
      let butterfly = Graphio_workloads.Fft.build l in
      Alcotest.(check int) "n" (Dag.n_vertices butterfly) (Dag.n_vertices traced);
      Alcotest.(check (list (pair int int)))
        "identical edges"
        (Dag.edges butterfly) (Dag.edges traced))
    [ 1; 2; 3; 4 ]

let test_walsh_hadamard_parseval () =
  (* The (unnormalized) WHT scales energy by 2^l. *)
  let l = 4 in
  let n = 1 lsl l in
  let rng = Graphio_la.Rng.create 5 in
  let input = Array.init n (fun _ -> Graphio_la.Rng.gaussian rng) in
  let out = Programs.reference_walsh_hadamard input in
  let energy v = Array.fold_left (fun a x -> a +. (x *. x)) 0.0 v in
  Alcotest.(check (float 1e-6)) "parseval"
    (float_of_int n *. energy input)
    (energy out)

let test_matmul_values () =
  let a = [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let b = [| [| 5.; 6. |]; [| 7.; 8. |] |] in
  let ctx = Trace.create () in
  let c = Programs.matmul ctx a b in
  let expected = [| [| 19.; 22. |]; [| 43.; 50. |] |] in
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j v ->
          Alcotest.(check (float 1e-12))
            (Printf.sprintf "c%d%d" i j)
            expected.(i).(j) (Trace.payload v))
        row)
    c

let test_matmul_graph_matches_builder () =
  List.iter
    (fun n ->
      let a = Array.make_matrix n n 1.0 in
      let ctx = Trace.create () in
      let _ = Programs.matmul ctx a a in
      let traced = Trace.graph ctx in
      let built = Graphio_workloads.Matmul.build n in
      Alcotest.(check int) "n" (Dag.n_vertices built) (Dag.n_vertices traced);
      Alcotest.(check (list (pair int int))) "edges" (Dag.edges built) (Dag.edges traced))
    [ 1; 2; 3; 4 ]

let test_strassen_values () =
  let rng = Graphio_la.Rng.create 99 in
  List.iter
    (fun n ->
      let a = Array.init n (fun _ -> Array.init n (fun _ -> Graphio_la.Rng.gaussian rng)) in
      let b = Array.init n (fun _ -> Array.init n (fun _ -> Graphio_la.Rng.gaussian rng)) in
      let ctx = Trace.create () in
      let c = Programs.strassen ctx a b in
      (* reference: plain triple loop *)
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          let expected = ref 0.0 in
          for k = 0 to n - 1 do
            expected := !expected +. (a.(i).(k) *. b.(k).(j))
          done;
          Alcotest.(check (float 1e-9))
            (Printf.sprintf "c%d%d n=%d" i j n)
            !expected
            (Trace.payload c.(i).(j))
        done
      done)
    [ 1; 2; 4; 8 ]

let test_strassen_graph_matches_builder () =
  List.iter
    (fun n ->
      let a = Array.make_matrix n n 1.5 in
      let ctx = Trace.create () in
      let _ = Programs.strassen ctx a a in
      let traced = Trace.graph ctx in
      let built = Graphio_workloads.Strassen.build n in
      Alcotest.(check int) "n" (Dag.n_vertices built) (Dag.n_vertices traced);
      Alcotest.(check (list (pair int int))) "edges" (Dag.edges built) (Dag.edges traced))
    [ 1; 2; 4 ]

let random_symmetric_distances rng l =
  let d = Array.make_matrix l l 0.0 in
  for i = 0 to l - 1 do
    for j = i + 1 to l - 1 do
      let v = 1.0 +. Graphio_la.Rng.float rng in
      d.(i).(j) <- v;
      d.(j).(i) <- v
    done
  done;
  d

let test_held_karp_vs_brute_force () =
  let rng = Graphio_la.Rng.create 123 in
  List.iter
    (fun l ->
      let dist = random_symmetric_distances rng l in
      let ctx = Trace.create () in
      let traced = Programs.held_karp ctx dist in
      let brute = Programs.brute_force_shortest_path dist in
      Alcotest.(check (float 1e-9)) (Printf.sprintf "l=%d" l) brute (Trace.payload traced);
      Alcotest.(check (float 1e-9)) "reference agrees" brute
        (Programs.reference_held_karp dist))
    [ 2; 3; 4; 5; 6; 7 ]

let test_held_karp_graph_is_hypercube () =
  List.iter
    (fun l ->
      let rng = Graphio_la.Rng.create (l * 31) in
      let dist = random_symmetric_distances rng l in
      let ctx = Trace.create () in
      let _ = Programs.held_karp ctx dist in
      let traced = Trace.graph ctx in
      let built = Graphio_workloads.Bhk.build l in
      Alcotest.(check int) "n" (Dag.n_vertices built) (Dag.n_vertices traced);
      Alcotest.(check (list (pair int int))) "edges" (Dag.edges built) (Dag.edges traced))
    [ 1; 2; 3; 4; 5 ]

let test_program_input_validation () =
  let ctx = Trace.create () in
  Alcotest.(check_raises) "inner mismatch"
    (Invalid_argument "Programs.inner_product: bad dimensions") (fun () ->
      ignore (Programs.inner_product ctx [| 1.0 |] [| 1.0; 2.0 |]));
  Alcotest.(check_raises) "wht non power"
    (Invalid_argument "Programs.walsh_hadamard: length must be a power of two")
    (fun () -> ignore (Programs.walsh_hadamard ctx (Array.make 3 0.0)));
  Alcotest.(check_raises) "matmul ragged"
    (Invalid_argument "Programs.matmul: ragged input") (fun () ->
      ignore (Programs.matmul ctx [| [| 1.0; 2.0 |]; [| 3.0 |] |] [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |]))

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_traced_graphs_acyclic =
  QCheck2.Test.make ~name:"traced graphs natural-order topological" ~count:30
    QCheck2.Gen.(pair (int_range 1 5) (int_range 0 1000))
    (fun (depth, seed) ->
      let rng = Graphio_la.Rng.create seed in
      let ctx = Trace.create () in
      (* random expression dag *)
      let pool = ref [ Trace.input ctx 1.0; Trace.input ctx 2.0 ] in
      for _ = 1 to depth * 4 do
        let pick () = List.nth !pool (Graphio_la.Rng.int rng (List.length !pool)) in
        let v =
          match Graphio_la.Rng.int rng 3 with
          | 0 -> Trace.add (pick ()) (pick ())
          | 1 -> Trace.mul (pick ()) (pick ())
          | _ -> Trace.neg (pick ())
        in
        pool := v :: !pool
      done;
      let g = Trace.graph ctx in
      Topo.is_valid g (Topo.natural g))

let prop_wht_linear =
  QCheck2.Test.make ~name:"WHT is linear" ~count:30
    QCheck2.Gen.(pair (int_range 0 4) (int_range 0 10000))
    (fun (l, seed) ->
      let n = 1 lsl l in
      let rng = Graphio_la.Rng.create seed in
      let x = Array.init n (fun _ -> Graphio_la.Rng.gaussian rng) in
      let y = Array.init n (fun _ -> Graphio_la.Rng.gaussian rng) in
      let xy = Array.init n (fun i -> x.(i) +. y.(i)) in
      let wx = Programs.reference_walsh_hadamard x in
      let wy = Programs.reference_walsh_hadamard y in
      let wxy = Programs.reference_walsh_hadamard xy in
      let ok = ref true in
      for i = 0 to n - 1 do
        if Float.abs (wxy.(i) -. (wx.(i) +. wy.(i))) > 1e-9 then ok := false
      done;
      !ok)

let props =
  List.map QCheck_alcotest.to_alcotest [ prop_traced_graphs_acyclic; prop_wht_linear ]

let () =
  Alcotest.run "graphio_trace"
    [
      ( "primitives",
        [
          Alcotest.test_case "arithmetic payloads" `Quick test_trace_arithmetic_payloads;
          Alcotest.test_case "infix" `Quick test_trace_infix;
          Alcotest.test_case "graph structure" `Quick test_trace_graph_structure;
          Alcotest.test_case "custom ops" `Quick test_trace_custom;
          Alcotest.test_case "mixed contexts rejected" `Quick test_trace_mixed_contexts_rejected;
          Alcotest.test_case "empty custom rejected" `Quick test_trace_empty_custom_rejected;
          Alcotest.test_case "incremental snapshots" `Quick test_trace_incremental_graph;
          Alcotest.test_case "operation count" `Quick test_trace_n_operations;
        ] );
      ( "programs",
        [
          Alcotest.test_case "inner product value" `Quick test_inner_product_value;
          Alcotest.test_case "inner product graph" `Quick test_inner_product_graph_matches_builder;
          Alcotest.test_case "WHT values" `Quick test_walsh_hadamard_values;
          Alcotest.test_case "WHT graph = butterfly" `Quick test_walsh_hadamard_graph_is_butterfly;
          Alcotest.test_case "WHT parseval" `Quick test_walsh_hadamard_parseval;
          Alcotest.test_case "matmul values" `Quick test_matmul_values;
          Alcotest.test_case "matmul graph" `Quick test_matmul_graph_matches_builder;
          Alcotest.test_case "strassen values" `Quick test_strassen_values;
          Alcotest.test_case "strassen graph" `Quick test_strassen_graph_matches_builder;
          Alcotest.test_case "held-karp vs brute force" `Quick test_held_karp_vs_brute_force;
          Alcotest.test_case "held-karp graph = hypercube" `Quick test_held_karp_graph_is_hypercube;
          Alcotest.test_case "input validation" `Quick test_program_input_validation;
        ] );
      ("properties", props);
    ]
