open Graphio_spectra
open Graphio_la

let float_array_approx tol =
  Alcotest.testable
    (fun fmt a -> Vec.pp fmt a)
    (fun a b -> Vec.approx_equal ~tol a b)

(* ------------------------------------------------------------------ *)
(* Multiset                                                            *)
(* ------------------------------------------------------------------ *)

let test_multiset_basic () =
  let m = Multiset.of_list [ (2.0, 3); (0.0, 1); (1.0, 2) ] in
  Alcotest.(check int) "total" 6 (Multiset.total m);
  Alcotest.(check int) "distinct" 3 (Multiset.distinct m);
  Alcotest.(check (float 0.0)) "min" 0.0 (Multiset.min_value m);
  Alcotest.(check (float 0.0)) "max" 2.0 (Multiset.max_value m);
  Alcotest.check (float_array_approx 0.0) "smallest 4" [| 0.0; 1.0; 1.0; 2.0 |]
    (Multiset.smallest m ~h:4);
  Alcotest.(check (float 1e-12)) "sum 4" 4.0 (Multiset.smallest_sum m ~k:4);
  Alcotest.(check (float 1e-12)) "sum 0" 0.0 (Multiset.smallest_sum m ~k:0)

let test_multiset_merging_values () =
  let m = Multiset.of_list [ (1.0, 1); (1.0 +. 1e-12, 2) ] in
  Alcotest.(check int) "merged" 1 (Multiset.distinct m);
  Alcotest.(check int) "total kept" 3 (Multiset.total m)

let test_multiset_drops_zero_mult () =
  let m = Multiset.of_list [ (1.0, 0); (2.0, 1) ] in
  Alcotest.(check int) "dropped" 1 (Multiset.distinct m)

let test_multiset_rejects_negative () =
  Alcotest.check_raises "negative"
    (Invalid_argument "Multiset.of_list: negative multiplicity") (fun () ->
      ignore (Multiset.of_list [ (1.0, -1) ]))

let test_multiset_rejects_nan () =
  (* NaN would sort unpredictably under the tolerance merge, producing a
     structurally valid but silently wrong multiset *)
  Alcotest.check_raises "nan"
    (Invalid_argument "Multiset.of_list: NaN eigenvalue") (fun () ->
      ignore (Multiset.of_list [ (1.0, 1); (Float.nan, 2) ]))

let test_multiset_of_array_roundtrip () =
  let values = [| 3.0; 1.0; 2.0; 1.0 |] in
  let m = Multiset.of_array values in
  Alcotest.check (float_array_approx 0.0) "sorted expansion" [| 1.0; 1.0; 2.0; 3.0 |]
    (Multiset.to_array m)

let test_multiset_merge_scale () =
  let a = Multiset.of_list [ (1.0, 1) ] and b = Multiset.of_list [ (1.0, 2); (3.0, 1) ] in
  let m = Multiset.merge a b in
  Alcotest.(check int) "merged total" 4 (Multiset.total m);
  let s = Multiset.scale 2.0 m in
  Alcotest.(check (float 0.0)) "scaled max" 6.0 (Multiset.max_value s)

let test_multiset_sum_exceeds () =
  let m = Multiset.of_list [ (1.0, 2) ] in
  Alcotest.check_raises "too many"
    (Invalid_argument "Multiset.smallest_sum: k exceeds total") (fun () ->
      ignore (Multiset.smallest_sum m ~k:3))

(* ------------------------------------------------------------------ *)
(* Path spectra (Lemma 11)                                             *)
(* ------------------------------------------------------------------ *)

let test_paths_closed_form_vs_numeric () =
  for i = 1 to 12 do
    Alcotest.check (float_array_approx 1e-8)
      (Printf.sprintf "P_%d" i)
      (Tql.symmetric_eigenvalues (Path_spectra.p_laplacian i))
      (Path_spectra.p i);
    Alcotest.check (float_array_approx 1e-8)
      (Printf.sprintf "P'_%d" i)
      (Tql.symmetric_eigenvalues (Path_spectra.p'_laplacian i))
      (Path_spectra.p' i);
    Alcotest.check (float_array_approx 1e-8)
      (Printf.sprintf "P''_%d" i)
      (Tql.symmetric_eigenvalues (Path_spectra.p''_laplacian i))
      (Path_spectra.p'' i)
  done

let test_p_has_zero_eigenvalue () =
  (* P_i is a genuine (weighted) graph Laplacian: nullspace of ones. *)
  for i = 1 to 8 do
    Alcotest.(check (float 1e-12)) "lambda_1 = 0" 0.0 (Path_spectra.p i).(0)
  done

let test_p'_strictly_positive () =
  (* P'_i has a vertex weight: no zero eigenvalue. *)
  for i = 1 to 8 do
    Alcotest.(check bool) "positive" true ((Path_spectra.p' i).(0) > 0.0)
  done

let test_p''_matches_toeplitz () =
  (* L(P''_i) is exactly the tridiagonal Toeplitz (4, -2). *)
  for i = 1 to 10 do
    Alcotest.check (float_array_approx 1e-10)
      (Printf.sprintf "toeplitz %d" i)
      (Toeplitz.eigenvalues ~n:i ~diag:4.0 ~off:(-2.0))
      (Path_spectra.p'' i)
  done

let test_p'_interlaces_p2i1 () =
  (* The P' eigenvalues are the odd-indexed eigenvalues of P_{2i+1}
     (the reduction used in the paper's Lemma 11 proof). *)
  let i = 6 in
  let big = Path_spectra.p ((2 * i) + 1) in
  let odd = Array.init i (fun j -> big.((2 * j) + 1)) in
  Alcotest.check (float_array_approx 1e-9) "odd extraction" odd (Path_spectra.p' i)

(* ------------------------------------------------------------------ *)
(* Hypercube spectra                                                   *)
(* ------------------------------------------------------------------ *)

let test_binomial () =
  Alcotest.(check int) "C(5,2)" 10 (Hypercube_spectra.binomial 5 2);
  Alcotest.(check int) "C(10,0)" 1 (Hypercube_spectra.binomial 10 0);
  Alcotest.(check int) "C(10,10)" 1 (Hypercube_spectra.binomial 10 10);
  Alcotest.(check int) "C(4,7)" 0 (Hypercube_spectra.binomial 4 7);
  Alcotest.(check int) "C(7,-1)" 0 (Hypercube_spectra.binomial 7 (-1));
  Alcotest.(check int) "C(30,15)" 155117520 (Hypercube_spectra.binomial 30 15)

let test_pascal_identity () =
  for n = 1 to 20 do
    for k = 1 to n - 1 do
      Alcotest.(check int) "pascal"
        (Hypercube_spectra.binomial (n - 1) (k - 1)
        + Hypercube_spectra.binomial (n - 1) k)
        (Hypercube_spectra.binomial n k)
    done
  done

let test_hypercube_total () =
  for l = 0 to 15 do
    Alcotest.(check int) "2^l" (1 lsl l) (Multiset.total (Hypercube_spectra.spectrum l))
  done

let test_hypercube_vs_numeric () =
  for l = 0 to 6 do
    let g = Graphio_workloads.Bhk.build l in
    let numeric = Tql.symmetric_eigenvalues (Graphio_graph.Laplacian.standard_dense g) in
    Alcotest.check (float_array_approx 1e-8)
      (Printf.sprintf "Q_%d" l)
      numeric
      (Multiset.to_array (Hypercube_spectra.spectrum l))
  done

let test_hypercube_trace_identity () =
  (* Eigenvalue sum = trace = sum of degrees = l * 2^l. *)
  for l = 1 to 12 do
    let s = Hypercube_spectra.spectrum l in
    Alcotest.(check (float 1e-6)) "trace"
      (float_of_int (l * (1 lsl l)))
      (Multiset.smallest_sum s ~k:(Multiset.total s))
  done

(* ------------------------------------------------------------------ *)
(* Butterfly spectra (Theorem 7)                                       *)
(* ------------------------------------------------------------------ *)

let test_butterfly_total () =
  for k = 0 to 14 do
    Alcotest.(check int) "(k+1)2^k"
      (Butterfly_spectra.n_vertices k)
      (Multiset.total (Butterfly_spectra.spectrum k))
  done

let test_butterfly_vs_numeric () =
  (* The central validation of Theorem 7: closed form equals the numeric
     spectrum of the actually-built FFT graph. *)
  for k = 0 to 5 do
    let g = Graphio_workloads.Fft.build k in
    let numeric = Tql.symmetric_eigenvalues (Graphio_graph.Laplacian.standard_dense g) in
    Alcotest.check (float_array_approx 1e-8)
      (Printf.sprintf "B_%d" k)
      numeric
      (Multiset.to_array (Butterfly_spectra.spectrum k))
  done

let test_butterfly_single_zero () =
  (* B_k is connected: eigenvalue 0 has multiplicity exactly 1. *)
  for k = 1 to 10 do
    let s = Multiset.smallest (Butterfly_spectra.spectrum k) ~h:2 in
    Alcotest.(check (float 1e-12)) "zero" 0.0 s.(0);
    Alcotest.(check bool) "gap" true (s.(1) > 1e-9)
  done

let test_butterfly_second_smallest () =
  for k = 1 to 10 do
    let s = Multiset.smallest (Butterfly_spectra.spectrum k) ~h:2 in
    Alcotest.(check (float 1e-12)) "fiedler value"
      (Butterfly_spectra.second_smallest k)
      s.(1)
  done

let test_butterfly_trace_identity () =
  (* Eigenvalue sum = trace = sum of degrees = 2 * #edges = 2 * l * 2^l *)
  for k = 1 to 12 do
    let s = Butterfly_spectra.spectrum k in
    Alcotest.(check (float 1e-5)) "trace"
      (float_of_int (2 * (k * (1 lsl k)) * 2))
      (Multiset.smallest_sum s ~k:(Multiset.total s))
  done

let test_butterfly_bounded_by_8 () =
  for k = 1 to 12 do
    Alcotest.(check bool) "max < 8" true
      (Multiset.max_value (Butterfly_spectra.spectrum k) < 8.0 +. 1e-9)
  done

(* ------------------------------------------------------------------ *)
(* Basic spectra                                                       *)
(* ------------------------------------------------------------------ *)

let laplacian_of_edges n edges =
  Graphio_graph.Laplacian.standard_dense (Graphio_graph.Dag.of_edges ~n edges)

let test_basic_path_vs_numeric () =
  for n = 1 to 12 do
    let edges = List.init (n - 1) (fun i -> (i, i + 1)) in
    Alcotest.check (float_array_approx 1e-9)
      (Printf.sprintf "path %d" n)
      (Tql.symmetric_eigenvalues (laplacian_of_edges n edges))
      (Multiset.to_array (Basic_spectra.path n))
  done

let test_basic_cycle_vs_numeric () =
  for n = 3 to 12 do
    let edges = List.init (n - 1) (fun i -> (i, i + 1)) @ [ (0, n - 1) ] in
    Alcotest.check (float_array_approx 1e-9)
      (Printf.sprintf "cycle %d" n)
      (Tql.symmetric_eigenvalues (laplacian_of_edges n edges))
      (Multiset.to_array (Basic_spectra.cycle n))
  done

let test_basic_complete_vs_numeric () =
  for n = 1 to 10 do
    let edges = ref [] in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        edges := (i, j) :: !edges
      done
    done;
    Alcotest.check (float_array_approx 1e-8)
      (Printf.sprintf "K%d" n)
      (Tql.symmetric_eigenvalues (laplacian_of_edges n !edges))
      (Multiset.to_array (Basic_spectra.complete n))
  done

let test_basic_bipartite_vs_numeric () =
  List.iter
    (fun (a, b) ->
      let edges = ref [] in
      for i = 0 to a - 1 do
        for j = 0 to b - 1 do
          edges := (i, a + j) :: !edges
        done
      done;
      Alcotest.check (float_array_approx 1e-8)
        (Printf.sprintf "K%d,%d" a b)
        (Tql.symmetric_eigenvalues (laplacian_of_edges (a + b) !edges))
        (Multiset.to_array (Basic_spectra.complete_bipartite a b)))
    [ (1, 1); (1, 5); (2, 3); (4, 4); (3, 7) ]

let test_star_is_bipartite () =
  Alcotest.check (float_array_approx 0.0) "star = K_{1,b}"
    (Multiset.to_array (Basic_spectra.complete_bipartite 1 6))
    (Multiset.to_array (Basic_spectra.star 6))

(* ------------------------------------------------------------------ *)
(* Product spectra                                                     *)
(* ------------------------------------------------------------------ *)

let test_product_hypercube_rederived () =
  (* The l-fold product of K2 re-derives the hypercube spectrum. *)
  for l = 0 to 12 do
    Alcotest.check (float_array_approx 1e-9)
      (Printf.sprintf "Q%d" l)
      (Multiset.smallest (Hypercube_spectra.spectrum l) ~h:200)
      (Multiset.smallest (Product_spectra.hypercube l) ~h:200)
  done

let test_product_grid_vs_numeric () =
  List.iter
    (fun (rows, cols) ->
      let idx r c = (r * cols) + c in
      let edges = ref [] in
      for r = 0 to rows - 1 do
        for c = 0 to cols - 1 do
          if c + 1 < cols then edges := (idx r c, idx r (c + 1)) :: !edges;
          if r + 1 < rows then edges := (idx r c, idx (r + 1) c) :: !edges
        done
      done;
      Alcotest.check (float_array_approx 1e-8)
        (Printf.sprintf "grid %dx%d" rows cols)
        (Tql.symmetric_eigenvalues (laplacian_of_edges (rows * cols) !edges))
        (Multiset.to_array (Product_spectra.grid rows cols)))
    [ (1, 1); (2, 2); (3, 4); (5, 5) ]

let test_product_torus_vs_numeric () =
  let rows = 4 and cols = 5 in
  let idx r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let e a b = if not (List.mem (a, b) !edges || List.mem (b, a) !edges) then edges := (min a b, max a b) :: !edges in
      e (idx r c) (idx r ((c + 1) mod cols));
      e (idx r c) (idx ((r + 1) mod rows) c)
    done
  done;
  Alcotest.check (float_array_approx 1e-8) "torus 4x5"
    (Tql.symmetric_eigenvalues (laplacian_of_edges (rows * cols) !edges))
    (Multiset.to_array (Product_spectra.torus rows cols))

let test_product_total_multiplies () =
  let a = Basic_spectra.path 5 and b = Basic_spectra.cycle 7 in
  Alcotest.(check int) "total" 35 (Multiset.total (Product_spectra.cartesian_sum a b))

let test_product_power_consistency () =
  let s = Basic_spectra.path 3 in
  let direct = Product_spectra.cartesian_sum (Product_spectra.cartesian_sum s s) s in
  Alcotest.check (float_array_approx 1e-9) "power 3"
    (Multiset.to_array direct)
    (Multiset.to_array (Product_spectra.power s 3))

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_multiset_smallest_sorted =
  QCheck2.Test.make ~name:"multiset expansion is sorted" ~count:100
    QCheck2.Gen.(list_size (int_range 1 20) (pair (float_range (-10.0) 10.0) (int_range 1 5)))
    (fun pairs ->
      let m = Multiset.of_list pairs in
      let a = Multiset.to_array m in
      let ok = ref true in
      for i = 1 to Array.length a - 1 do
        if a.(i) < a.(i - 1) then ok := false
      done;
      !ok && Array.length a = Multiset.total m)

let prop_multiset_sum_prefix =
  QCheck2.Test.make ~name:"smallest_sum equals prefix sum" ~count:100
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 15) (pair (float_range 0.0 10.0) (int_range 1 4)))
        (int_range 0 20))
    (fun (pairs, k) ->
      let m = Multiset.of_list pairs in
      let k = min k (Multiset.total m) in
      let a = Multiset.to_array m in
      let direct = Array.fold_left ( +. ) 0.0 (Array.sub a 0 k) in
      Float.abs (Multiset.smallest_sum m ~k -. direct) < 1e-9)

(* Random undirected simple graph on [n] vertices as a DAG edge list
   (u < v), dense enough to usually be interesting, from a deterministic
   QCheck-driven coin per candidate edge. *)
let gen_graph =
  QCheck2.Gen.(
    int_range 1 6 >>= fun n ->
    list_repeat (n * (n - 1) / 2) (int_range 0 2) >>= fun coins ->
    let edges = ref [] and i = ref 0 in
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        if List.nth coins !i > 0 then edges := (u, v) :: !edges;
        incr i
      done
    done;
    return (n, !edges))

let prop_cartesian_sum_is_kronecker_sum =
  (* Product_spectra.cartesian_sum must agree with the numerically
     diagonalized Kronecker sum L_A (x) I + I (x) L_B — the identity the
     grid/torus/hypercube closed forms all lean on. *)
  QCheck2.Test.make ~name:"cartesian_sum equals Kronecker-sum spectrum"
    ~count:100
    QCheck2.Gen.(pair gen_graph gen_graph)
    (fun ((na, ea), (nb, eb)) ->
      let la = laplacian_of_edges na ea and lb = laplacian_of_edges nb eb in
      let kron =
        Mat.init (na * nb) (na * nb) (fun i j ->
            let ia = i / nb and ib = i mod nb in
            let ja = j / nb and jb = j mod nb in
            (if ib = jb then la.(ia).(ja) else 0.0)
            +. if ia = ja then lb.(ib).(jb) else 0.0)
      in
      let numeric = Tql.symmetric_eigenvalues kron in
      let closed =
        Multiset.to_array
          (Product_spectra.cartesian_sum
             (Multiset.of_array (Tql.symmetric_eigenvalues la))
             (Multiset.of_array (Tql.symmetric_eigenvalues lb)))
      in
      Array.length closed = Array.length numeric
      && Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-7) closed numeric)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_multiset_smallest_sorted;
      prop_multiset_sum_prefix;
      prop_cartesian_sum_is_kronecker_sum;
    ]

let () =
  Alcotest.run "graphio_spectra"
    [
      ( "multiset",
        [
          Alcotest.test_case "basic" `Quick test_multiset_basic;
          Alcotest.test_case "merging close values" `Quick test_multiset_merging_values;
          Alcotest.test_case "drops zero multiplicity" `Quick test_multiset_drops_zero_mult;
          Alcotest.test_case "rejects negative" `Quick test_multiset_rejects_negative;
          Alcotest.test_case "rejects NaN" `Quick test_multiset_rejects_nan;
          Alcotest.test_case "of_array roundtrip" `Quick test_multiset_of_array_roundtrip;
          Alcotest.test_case "merge and scale" `Quick test_multiset_merge_scale;
          Alcotest.test_case "sum bounds" `Quick test_multiset_sum_exceeds;
        ] );
      ( "paths",
        [
          Alcotest.test_case "closed form vs numeric" `Quick test_paths_closed_form_vs_numeric;
          Alcotest.test_case "P has zero eigenvalue" `Quick test_p_has_zero_eigenvalue;
          Alcotest.test_case "P' strictly positive" `Quick test_p'_strictly_positive;
          Alcotest.test_case "P'' is Toeplitz" `Quick test_p''_matches_toeplitz;
          Alcotest.test_case "P' odd extraction" `Quick test_p'_interlaces_p2i1;
        ] );
      ( "hypercube",
        [
          Alcotest.test_case "binomial" `Quick test_binomial;
          Alcotest.test_case "pascal identity" `Quick test_pascal_identity;
          Alcotest.test_case "total multiplicity" `Quick test_hypercube_total;
          Alcotest.test_case "closed form vs numeric" `Quick test_hypercube_vs_numeric;
          Alcotest.test_case "trace identity" `Quick test_hypercube_trace_identity;
        ] );
      ( "butterfly",
        [
          Alcotest.test_case "total multiplicity" `Quick test_butterfly_total;
          Alcotest.test_case "closed form vs numeric (Thm 7)" `Quick test_butterfly_vs_numeric;
          Alcotest.test_case "single zero eigenvalue" `Quick test_butterfly_single_zero;
          Alcotest.test_case "second smallest" `Quick test_butterfly_second_smallest;
          Alcotest.test_case "trace identity" `Quick test_butterfly_trace_identity;
          Alcotest.test_case "bounded by 8" `Quick test_butterfly_bounded_by_8;
        ] );
      ( "basic",
        [
          Alcotest.test_case "path vs numeric" `Quick test_basic_path_vs_numeric;
          Alcotest.test_case "cycle vs numeric" `Quick test_basic_cycle_vs_numeric;
          Alcotest.test_case "complete vs numeric" `Quick test_basic_complete_vs_numeric;
          Alcotest.test_case "bipartite vs numeric" `Quick test_basic_bipartite_vs_numeric;
          Alcotest.test_case "star" `Quick test_star_is_bipartite;
        ] );
      ( "product",
        [
          Alcotest.test_case "hypercube re-derived" `Quick test_product_hypercube_rederived;
          Alcotest.test_case "grid vs numeric" `Quick test_product_grid_vs_numeric;
          Alcotest.test_case "torus vs numeric" `Quick test_product_torus_vs_numeric;
          Alcotest.test_case "total multiplies" `Quick test_product_total_multiplies;
          Alcotest.test_case "power consistency" `Quick test_product_power_consistency;
        ] );
      ("properties", props);
    ]
