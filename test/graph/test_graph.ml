open Graphio_graph
open Graphio_la

let diamond () =
  (* 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3 *)
  Dag.of_edges ~n:4 [ (0, 1); (0, 2); (1, 3); (2, 3) ]

let chain n = Dag.of_edges ~n (List.init (n - 1) (fun i -> (i, i + 1)))

(* ------------------------------------------------------------------ *)
(* Dag                                                                 *)
(* ------------------------------------------------------------------ *)

let test_dag_basic () =
  let g = diamond () in
  Alcotest.(check int) "n" 4 (Dag.n_vertices g);
  Alcotest.(check int) "m" 4 (Dag.n_edges g);
  Alcotest.(check (array int)) "succ 0" [| 1; 2 |] (Dag.succ g 0);
  Alcotest.(check (array int)) "pred 3" [| 1; 2 |] (Dag.pred g 3);
  Alcotest.(check int) "out deg" 2 (Dag.out_degree g 0);
  Alcotest.(check int) "in deg" 2 (Dag.in_degree g 3);
  Alcotest.(check int) "deg 1" 2 (Dag.degree g 1);
  Alcotest.(check int) "max out" 2 (Dag.max_out_degree g);
  Alcotest.(check int) "max in" 2 (Dag.max_in_degree g);
  Alcotest.(check int) "max deg" 2 (Dag.max_degree g)

let test_dag_sources_sinks () =
  let g = diamond () in
  Alcotest.(check (array int)) "sources" [| 0 |] (Dag.sources g);
  Alcotest.(check (array int)) "sinks" [| 3 |] (Dag.sinks g);
  let empty = Dag.of_edges ~n:0 [] in
  Alcotest.(check (array int)) "empty sources" [||] (Dag.sources empty)

let test_dag_has_edge () =
  let g = diamond () in
  Alcotest.(check bool) "has 0->1" true (Dag.has_edge g 0 1);
  Alcotest.(check bool) "no 1->0" false (Dag.has_edge g 1 0);
  Alcotest.(check bool) "no 0->3" false (Dag.has_edge g 0 3)

let test_dag_edges_roundtrip () =
  let edges = [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  let g = Dag.of_edges ~n:4 edges in
  Alcotest.(check (list (pair int int))) "edges" edges (Dag.edges g)

let test_dag_labels () =
  let g = Dag.of_edges ~labels:[| "a"; "b" |] ~n:3 [ (0, 1) ] in
  Alcotest.(check (option string)) "label 0" (Some "a") (Dag.label g 0);
  Alcotest.(check (option string)) "label 2" None (Dag.label g 2)

let test_dag_rejects_cycle () =
  Alcotest.check_raises "cycle" (Invalid_argument "Dag.build: graph has a cycle")
    (fun () -> ignore (Dag.of_edges ~n:2 [ (0, 1); (1, 0) ]))

let test_dag_rejects_self_loop () =
  Alcotest.check_raises "self loop" (Invalid_argument "Dag.add_edge: self-loop")
    (fun () -> ignore (Dag.of_edges ~n:2 [ (1, 1) ]))

let test_dag_rejects_duplicate_edge () =
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Dag.add_edge: duplicate edge (0 -> 1)") (fun () ->
      ignore (Dag.of_edges ~n:2 [ (0, 1); (0, 1) ]))

let test_dag_rejects_bad_vertex () =
  Alcotest.check_raises "out of range"
    (Invalid_argument "Dag.add_edge: vertex out of range (0 -> 5)") (fun () ->
      ignore (Dag.of_edges ~n:2 [ (0, 5) ]))

let test_dag_reverse () =
  let g = diamond () in
  let r = Dag.reverse g in
  Alcotest.(check (array int)) "succ 3 reversed" [| 1; 2 |] (Dag.succ r 3);
  Alcotest.(check (array int)) "sinks" [| 0 |] (Dag.sinks r)

let test_dag_induced_subgraph () =
  let g = diamond () in
  let sub, mapping = Dag.induced_subgraph g [| 0; 1; 3 |] in
  Alcotest.(check int) "sub n" 3 (Dag.n_vertices sub);
  Alcotest.(check int) "sub m" 2 (Dag.n_edges sub);
  Alcotest.(check (array int)) "mapping" [| 0; 1; 3 |] mapping;
  Alcotest.(check bool) "0->1 kept" true (Dag.has_edge sub 0 1);
  Alcotest.(check bool) "1->3 kept as 1->2" true (Dag.has_edge sub 1 2)

let test_dag_fold_edges () =
  let g = diamond () in
  Alcotest.(check int) "count" 4 (Dag.fold_edges g ~init:0 ~f:(fun acc _ _ -> acc + 1))

(* ------------------------------------------------------------------ *)
(* Topo                                                                *)
(* ------------------------------------------------------------------ *)

let test_topo_kahn_valid () =
  let g = diamond () in
  Alcotest.(check bool) "kahn valid" true (Topo.is_valid g (Topo.kahn g));
  Alcotest.(check bool) "dfs valid" true (Topo.is_valid g (Topo.dfs g));
  Alcotest.(check bool) "natural valid" true (Topo.is_valid g (Topo.natural g))

let test_topo_invalid_orders () =
  let g = diamond () in
  Alcotest.(check bool) "reversed invalid" false (Topo.is_valid g [| 3; 2; 1; 0 |]);
  Alcotest.(check bool) "repeat invalid" false (Topo.is_valid g [| 0; 0; 1; 2 |]);
  Alcotest.(check bool) "short invalid" false (Topo.is_valid g [| 0; 1 |])

let test_topo_random_valid () =
  let g = Er.gnp ~n:60 ~p:0.1 ~seed:5 in
  for seed = 0 to 9 do
    Alcotest.(check bool) "random valid" true
      (Topo.is_valid g (Topo.random ~seed g))
  done

let test_topo_random_varies () =
  let g = Er.gnp ~n:40 ~p:0.05 ~seed:7 in
  let a = Topo.random ~seed:1 g and b = Topo.random ~seed:2 g in
  Alcotest.(check bool) "different orders" true (a <> b)

let test_topo_position_of () =
  let order = [| 2; 0; 1 |] in
  Alcotest.(check (array int)) "positions" [| 1; 2; 0 |] (Topo.position_of order)

let test_topo_natural_rejects () =
  (* 1 -> 0 makes creation order non-topological *)
  let b = Dag.Builder.create () in
  let v0 = Dag.Builder.add_vertex b in
  let v1 = Dag.Builder.add_vertex b in
  Dag.Builder.add_edge b v1 v0;
  let g = Dag.Builder.build b in
  Alcotest.check_raises "natural"
    (Invalid_argument "Topo.natural: creation order is not topological for this graph")
    (fun () -> ignore (Topo.natural g))

(* ------------------------------------------------------------------ *)
(* Laplacian                                                           *)
(* ------------------------------------------------------------------ *)

let test_laplacian_standard_chain () =
  let g = chain 3 in
  let l = Laplacian.standard_dense g in
  let expected = [| [| 1.; -1.; 0. |]; [| -1.; 2.; -1. |]; [| 0.; -1.; 1. |] |] in
  Alcotest.(check bool) "chain laplacian" true (Mat.approx_equal l expected)

let test_laplacian_normalized_diamond () =
  let g = diamond () in
  let l = Laplacian.normalized_dense g in
  (* dout(0)=2 so edges (0,1),(0,2) weigh 1/2; dout(1)=dout(2)=1. *)
  let expected =
    [|
      [| 1.0; -0.5; -0.5; 0.0 |];
      [| -0.5; 1.5; 0.0; -1.0 |];
      [| -0.5; 0.0; 1.5; -1.0 |];
      [| 0.0; -1.0; -1.0; 2.0 |];
    |]
  in
  Alcotest.(check bool) "normalized laplacian" true (Mat.approx_equal l expected)

let test_laplacian_psd_and_nullspace () =
  let g = Er.gnp ~n:40 ~p:0.15 ~seed:11 in
  List.iter
    (fun lap ->
      let eigs = Tql.symmetric_eigenvalues (Csr.to_dense lap) in
      Alcotest.(check bool) "psd" true (Array.for_all (fun l -> l >= -1e-8) eigs);
      (* multiplicity of eigenvalue 0 = number of connected components *)
      let zeros = Array.length (Array.of_list (List.filter (fun l -> Float.abs l < 1e-7) (Array.to_list eigs))) in
      Alcotest.(check int) "nullity = components" (Component.count g) zeros)
    [ Laplacian.standard g; Laplacian.normalized g ]

let test_laplacian_quadratic_form_standard () =
  (* x^T L x = |boundary(S)| (Equation 3, unweighted version) *)
  let g = Er.gnp ~n:30 ~p:0.2 ~seed:13 in
  let rng = Rng.create 17 in
  for _ = 1 to 20 do
    let member = Array.init 30 (fun _ -> Rng.bool rng) in
    let x = Array.map (fun b -> if b then 1.0 else 0.0) member in
    let l = Laplacian.standard g in
    let quad = Vec.dot x (Csr.matvec l x) in
    Alcotest.(check (float 1e-9)) "xLx = |dS|"
      (float_of_int (Laplacian.boundary_size g member))
      quad
  done

let test_laplacian_quadratic_form_normalized () =
  (* x^T L~ x = sum over boundary edges of 1/dout(u) (Equation 3) *)
  let g = Er.gnp ~n:30 ~p:0.2 ~seed:19 in
  let rng = Rng.create 23 in
  for _ = 1 to 20 do
    let member = Array.init 30 (fun _ -> Rng.bool rng) in
    let x = Array.map (fun b -> if b then 1.0 else 0.0) member in
    let l = Laplacian.normalized g in
    let quad = Vec.dot x (Csr.matvec l x) in
    Alcotest.(check (float 1e-9)) "xL~x = boundary weight"
      (Laplacian.boundary_weight g member)
      quad
  done

let test_laplacian_symmetric () =
  let g = Er.gnp ~n:50 ~p:0.1 ~seed:29 in
  Alcotest.(check bool) "L sym" true (Csr.is_symmetric (Laplacian.standard g));
  Alcotest.(check bool) "L~ sym" true (Csr.is_symmetric (Laplacian.normalized g))

let test_laplacian_row_sums_zero () =
  let g = Er.gnp ~n:25 ~p:0.3 ~seed:31 in
  List.iter
    (fun lap ->
      let ones = Array.make 25 1.0 in
      let r = Csr.matvec lap ones in
      Alcotest.(check bool) "L 1 = 0" true (Vec.norm_inf r < 1e-10))
    [ Laplacian.standard g; Laplacian.normalized g ]

(* ------------------------------------------------------------------ *)
(* Component                                                           *)
(* ------------------------------------------------------------------ *)

let test_component_counts () =
  let g = Dag.of_edges ~n:6 [ (0, 1); (2, 3) ] in
  Alcotest.(check int) "three components + isolated" 4 (Component.count g);
  Alcotest.(check bool) "not connected" false (Component.is_connected g);
  let c = Component.components g in
  Alcotest.(check int) "0 and 1 together" c.(0) c.(1);
  Alcotest.(check bool) "0 and 2 apart" true (c.(0) <> c.(2))

let test_component_connected () =
  Alcotest.(check bool) "chain connected" true (Component.is_connected (chain 10));
  Alcotest.(check bool) "empty connected" true
    (Component.is_connected (Dag.of_edges ~n:0 []))

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_stats_diamond () =
  let s = Stats.compute (diamond ()) in
  Alcotest.(check int) "n" 4 s.Stats.n_vertices;
  Alcotest.(check int) "m" 4 s.Stats.n_edges;
  Alcotest.(check int) "sources" 1 s.Stats.n_sources;
  Alcotest.(check int) "sinks" 1 s.Stats.n_sinks;
  Alcotest.(check int) "depth" 3 s.Stats.depth;
  Alcotest.(check int) "width" 2 s.Stats.max_level_width;
  Alcotest.(check int) "components" 1 s.Stats.components

let test_stats_chain () =
  let s = Stats.compute (chain 7) in
  Alcotest.(check int) "depth = n" 7 s.Stats.depth;
  Alcotest.(check int) "width 1" 1 s.Stats.max_level_width

let test_stats_edgeless () =
  let s = Stats.compute (Dag.of_edges ~n:5 []) in
  Alcotest.(check int) "depth" 1 s.Stats.depth;
  Alcotest.(check int) "width" 5 s.Stats.max_level_width;
  Alcotest.(check int) "components" 5 s.Stats.components;
  let empty = Stats.compute (Dag.of_edges ~n:0 []) in
  Alcotest.(check int) "empty depth" 0 empty.Stats.depth

let test_stats_levels_longest_path () =
  (* levels must reflect the LONGEST path: 0->2 and 0->1->2 puts 2 at
     level 2, not 1. *)
  let g = Dag.of_edges ~n:3 [ (0, 1); (0, 2); (1, 2) ] in
  Alcotest.(check (array int)) "levels" [| 0; 1; 2 |] (Stats.levels g)

(* ------------------------------------------------------------------ *)
(* Er                                                                  *)
(* ------------------------------------------------------------------ *)

let test_er_extremes () =
  let empty = Er.gnp ~n:20 ~p:0.0 ~seed:1 in
  Alcotest.(check int) "p=0 no edges" 0 (Dag.n_edges empty);
  let full = Er.gnp ~n:20 ~p:1.0 ~seed:1 in
  Alcotest.(check int) "p=1 complete" (20 * 19 / 2) (Dag.n_edges full)

let test_er_deterministic () =
  let a = Er.gnp ~n:50 ~p:0.3 ~seed:9 and b = Er.gnp ~n:50 ~p:0.3 ~seed:9 in
  Alcotest.(check (list (pair int int))) "same seed same graph" (Dag.edges a) (Dag.edges b)

let test_er_edge_count_concentrates () =
  let n = 100 in
  let p = 0.2 in
  let g = Er.gnp ~n ~p ~seed:33 in
  let expected = p *. float_of_int (n * (n - 1) / 2) in
  let got = float_of_int (Dag.n_edges g) in
  Alcotest.(check bool) "within 20%" true (Float.abs (got -. expected) < 0.2 *. expected)

let test_er_acyclic_orientation () =
  let g = Er.gnp ~n:40 ~p:0.4 ~seed:41 in
  Dag.iter_edges g (fun u v ->
      Alcotest.(check bool) "i < j" true (u < v))

let test_er_connected_resamples () =
  let g = Er.gnp_connected ~n:30 ~p:0.2 ~seed:3 ~max_attempts:50 in
  Alcotest.(check bool) "connected" true (Component.is_connected g)

let test_er_regime_p () =
  let p = Er.connectivity_regime_p ~n:100 ~p0:8.0 in
  Alcotest.(check (float 1e-12)) "formula" (8.0 *. log 100.0 /. 99.0) p

(* ------------------------------------------------------------------ *)
(* Dot / Edgelist                                                      *)
(* ------------------------------------------------------------------ *)

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let test_dot_output () =
  let g = diamond () in
  let s = Dot.to_string ~name:"d" g in
  Alcotest.(check bool) "digraph" true (String.length s > 0 && String.sub s 0 7 = "digraph");
  Alcotest.(check bool) "edge present" true (contains s "v0 -> v1")

let test_dot_partition_and_order () =
  let g = diamond () in
  let order = Topo.kahn g in
  let partition = [| 0; 0; 1; 1 |] in
  let s = Dot.to_string ~order ~partition g in
  Alcotest.(check bool) "time annotation" true (contains s "t=0");
  Alcotest.(check bool) "fill color" true (contains s "fillcolor=\"#");
  (* labels escaped *)
  let g2 = Dag.of_edges ~labels:[| "a\"b" |] ~n:1 [] in
  Alcotest.(check bool) "escaped quote" true
    (contains (Dot.to_string g2) "a\\\"b")

let test_edgelist_roundtrip () =
  let g = Dag.of_edges ~labels:[| "a b"; "c%d" |] ~n:5 [ (0, 1); (1, 2); (0, 4) ] in
  let g' = Edgelist.of_string (Edgelist.to_string g) in
  Alcotest.(check int) "n" (Dag.n_vertices g) (Dag.n_vertices g');
  Alcotest.(check (list (pair int int))) "edges" (Dag.edges g) (Dag.edges g');
  Alcotest.(check (option string)) "label 0" (Some "a b") (Dag.label g' 0);
  Alcotest.(check (option string)) "label 1" (Some "c%d") (Dag.label g' 1)

let test_edgelist_file_roundtrip () =
  let g = Dag.of_edges ~labels:[| "in"; "out" |] ~n:3 [ (0, 2); (1, 2) ] in
  let path = Filename.temp_file "graphio" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Edgelist.to_file path g;
      let g' = Edgelist.of_file path in
      Alcotest.(check (list (pair int int))) "edges" (Dag.edges g) (Dag.edges g');
      Alcotest.(check (option string)) "label" (Some "in") (Dag.label g' 0))

let test_dot_file_write () =
  let g = diamond () in
  let path = Filename.temp_file "graphio" ".dot" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Dot.to_file path g;
      let ic = open_in path in
      let content = In_channel.input_all ic in
      close_in ic;
      Alcotest.(check bool) "content written" true (String.length content > 20))

let test_edgelist_rejects_garbage () =
  List.iter
    (fun (name, text) ->
      match Edgelist.of_string text with
      | exception Failure _ -> ()
      | _ -> Alcotest.failf "%s should have been rejected" name)
    [
      ("empty", "");
      ("bad header", "nope");
      ("missing size", "graphio 1");
      ("bad edge", "graphio 1\nn 2 m 1\ne 0 5");
      ("count mismatch", "graphio 1\nn 2 m 2\ne 0 1");
      ("cycle", "graphio 1\nn 2 m 2\ne 0 1\ne 1 0");
    ]

let test_edgelist_error_messages () =
  (* Malformed-input corpus: every rejection names the offending line, so
     a bad line deep in a generated file is findable. *)
  List.iter
    (fun (text, expected) ->
      Alcotest.check_raises expected (Failure expected) (fun () ->
          ignore (Edgelist.of_string text)))
    [
      ( "graphio 1\nn -1 m 0\n",
        "Edgelist: line 2: negative counts" );
      ( "graphio 1\nn 2 m 1\ne 0 5\n",
        "Edgelist: line 3: edge 0 -> 5: vertex out of range [0, 2)" );
      ( "graphio 1\nn 2 m 1\ne -1 1\n",
        "Edgelist: line 3: edge -1 -> 1: vertex out of range [0, 2)" );
      ( "graphio 1\n# a comment\nn 3 m 3\ne 0 1\ne 1 2\ne 0 1\n",
        "Edgelist: line 6: duplicate edge 0 -> 1 (first on line 4)" );
      ( "graphio 1\nn 2 m 1\ne 1 1\n",
        "Edgelist: line 3: Dag.add_edge: self-loop" );
      ( "graphio 1\nn 3 m 1\nl 7 far\ne 0 1\n",
        "Edgelist: line 3: label vertex out of range" );
      ( "graphio 1\nn 2 m 2\ne 0 1\n",
        "Edgelist: edge count mismatch (declared 2, found 1)" );
      ( "graphio 1\nn 2 m 2\ne 0 1\ne 1 0\n",
        "Edgelist: Dag.build: graph has a cycle" );
    ]

let test_edgelist_of_file_prefixes_path () =
  let path = Filename.temp_file "graphio_bad" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_text path (fun oc ->
          output_string oc "graphio 1\nn 2 m 1\ne 0 5\n");
      let expected =
        path ^ ": Edgelist: line 3: edge 0 -> 5: vertex out of range [0, 2)"
      in
      Alcotest.check_raises "path prefixed" (Failure expected) (fun () ->
          ignore (Edgelist.of_file path)))

(* ------------------------------------------------------------------ *)
(* Binary store roundtrip                                              *)
(* ------------------------------------------------------------------ *)

module Store = Graphio_store.Store

let with_tmp_store f =
  let path = Filename.temp_file "graphio_store" ".gcsr" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let check_same_graph msg g g' =
  Alcotest.(check int) (msg ^ ": n") (Dag.n_vertices g) (Dag.n_vertices g');
  Alcotest.(check (list (pair int int)))
    (msg ^ ": edges") (Dag.edges g) (Dag.edges g');
  List.iter
    (fun v ->
      Alcotest.(check (option string))
        (Printf.sprintf "%s: label %d" msg v)
        (Dag.label g v) (Dag.label g' v))
    (List.init (Dag.n_vertices g) Fun.id);
  Alcotest.(check int64)
    (msg ^ ": fingerprint") (Dag.fingerprint g) (Dag.fingerprint g')

let test_store_roundtrip_labeled () =
  let g =
    Dag.of_edges ~n:4
      ~labels:[| "in 0"; "50%"; ""; "x\xffy" |]
      [ (0, 1); (0, 2); (1, 3); (2, 3) ]
  in
  with_tmp_store (fun path ->
      Store.write path g;
      Alcotest.(check bool) "sniffs as store" true (Store.is_store_file path);
      let t = Store.load path in
      Alcotest.(check int) "n" 4 (Store.n_vertices t);
      Alcotest.(check int) "m" 4 (Store.n_edges t);
      Alcotest.(check int) "out_degree 0" 2 (Store.out_degree t 0);
      Alcotest.(check int) "max_out_degree" 2 (Store.max_out_degree t);
      Alcotest.(check (option string)) "label 1" (Some "50%") (Store.label t 1);
      Alcotest.(check (option string)) "label 2" (Some "") (Store.label t 2);
      Alcotest.(check int64)
        "store fingerprint = dag fingerprint" (Dag.fingerprint g)
        (Store.fingerprint t);
      let seen = ref [] in
      Store.iter_edges t (fun u v -> seen := (u, v) :: !seen);
      Alcotest.(check (list (pair int int)))
        "iter_edges in CSR order" (Dag.edges g) (List.rev !seen);
      check_same_graph "to_dag" g (Store.to_dag t))

let test_store_roundtrip_degenerate () =
  List.iter
    (fun (name, g) ->
      with_tmp_store (fun path ->
          Store.write path g;
          check_same_graph name g (Store.to_dag (Store.load path))))
    [
      ("empty graph", Dag.of_edges ~n:0 []);
      ("single vertex", Dag.of_edges ~n:1 []);
      (* dangling ids: vertices that no edge touches must survive *)
      ("isolated vertices", Dag.of_edges ~n:5 [ (1, 3) ]);
      ("edgeless labeled", Dag.of_edges ~n:2 ~labels:[| "a"; "" |] []);
    ]

let test_store_sniff_rejects_text () =
  let path = Filename.temp_file "graphio_store" ".el" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_text path (fun oc ->
          output_string oc "graphio 1\nn 1 m 0\n");
      Alcotest.(check bool) "text file is not a store" false
        (Store.is_store_file path);
      Alcotest.(check bool) "missing file is not a store" false
        (Store.is_store_file (path ^ ".does-not-exist")))

let test_store_component_dags () =
  let g = Dag.replicate (diamond ()) ~copies:3 in
  with_tmp_store (fun path ->
      Store.write path g;
      let t = Store.load path in
      Alcotest.(check int) "component count" 3 (Store.component_count t);
      let from_store = Store.component_dags t in
      let from_split = Component.split (Store.to_dag t) in
      Alcotest.(check int) "same part count" (Array.length from_split)
        (Array.length from_store);
      Array.iteri
        (fun i (part, back) ->
          let part', back' = from_split.(i) in
          Alcotest.(check int64)
            (Printf.sprintf "part %d fingerprint" i)
            (Dag.fingerprint part') (Dag.fingerprint part);
          Alcotest.(check (array int))
            (Printf.sprintf "part %d id mapping" i)
            back' back)
        from_store)

(* The int32 overflow guard must trip on the declared sizes, before any
   allocation proportional to them. *)
let test_store_int32_guard () =
  List.iter
    (fun (name, header) ->
      let input = Filename.temp_file "graphio_store" ".el" in
      Fun.protect
        ~finally:(fun () -> Sys.remove input)
        (fun () ->
          Out_channel.with_open_text input (fun oc -> output_string oc header);
          with_tmp_store (fun output ->
              match Graphio_store.Convert.convert ~input ~output with
              | _ -> Alcotest.failf "%s: guard did not trip" name
              | exception Store.Error (Store.Too_large _) -> ())))
    [
      ("n at int32 max", "graphio 1\nn 2147483647 m 0\n");
      ("m beyond int32 max", "graphio 1\nn 2 m 2147483648\n");
    ]

let prop_store_roundtrip =
  QCheck2.Test.make ~name:"binary store roundtrip" ~count:40
    QCheck2.Gen.(
      let* n = int_range 2 40 in
      let* seed = int_range 0 100000 in
      let* p = float_range 0.05 0.5 in
      return (Er.gnp ~n ~p ~seed))
    (fun g ->
      with_tmp_store (fun path ->
          Store.write path g;
          let t = Store.load path in
          let g' = Store.to_dag t in
          Store.fingerprint t = Dag.fingerprint g
          && Dag.fingerprint g' = Dag.fingerprint g
          && Dag.edges g' = Dag.edges g
          && Dag.n_vertices g' = Dag.n_vertices g))

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let er_gen =
  QCheck2.Gen.(
    let* n = int_range 2 40 in
    let* seed = int_range 0 100000 in
    let* p = float_range 0.05 0.5 in
    return (Er.gnp ~n ~p ~seed))

let prop_topo_orders_valid =
  QCheck2.Test.make ~name:"kahn and dfs orders are valid" ~count:60 er_gen (fun g ->
      Topo.is_valid g (Topo.kahn g) && Topo.is_valid g (Topo.dfs g))

let prop_laplacian_trace_is_degree_sum =
  QCheck2.Test.make ~name:"tr L = 2m" ~count:60 er_gen (fun g ->
      let l = Csr.to_dense (Laplacian.standard g) in
      Float.abs (Mat.trace l -. float_of_int (2 * Dag.n_edges g)) < 1e-9)

let prop_normalized_trace =
  QCheck2.Test.make ~name:"tr L~ = 2 * sum of edge weights" ~count:60 er_gen
    (fun g ->
      let l = Csr.to_dense (Laplacian.normalized g) in
      let wsum =
        Dag.fold_edges g ~init:0.0 ~f:(fun acc u _ ->
            acc +. (1.0 /. float_of_int (Dag.out_degree g u)))
      in
      Float.abs (Mat.trace l -. (2.0 *. wsum)) < 1e-9)

let prop_edgelist_roundtrip =
  QCheck2.Test.make ~name:"edgelist roundtrip" ~count:40 er_gen (fun g ->
      let g' = Edgelist.of_string (Edgelist.to_string g) in
      Dag.edges g = Dag.edges g' && Dag.n_vertices g = Dag.n_vertices g')

(* Labels exercise the percent-escaping: spaces, percent signs, quotes,
   newlines and raw bytes must all survive the text format byte-exactly. *)
let label_gen =
  QCheck2.Gen.(
    string_size ~gen:(oneofl [ 'a'; 'z'; ' '; '%'; '"'; ':'; '\n'; '\xff'; '0' ])
      (int_range 0 12))

let labeled_er_gen =
  QCheck2.Gen.(
    let* g = er_gen in
    let* labels = array_size (return (Dag.n_vertices g)) label_gen in
    return (Dag.of_edges ~labels ~n:(Dag.n_vertices g) (Dag.edges g)))

let prop_edgelist_label_roundtrip =
  QCheck2.Test.make ~name:"edgelist roundtrip preserves labels" ~count:60
    labeled_er_gen (fun g ->
      let g' = Edgelist.of_string (Edgelist.to_string g) in
      Dag.edges g = Dag.edges g'
      && Dag.n_vertices g = Dag.n_vertices g'
      && List.for_all
           (fun v -> Dag.label g v = Dag.label g' v)
           (List.init (Dag.n_vertices g) Fun.id))

let prop_reverse_involution =
  QCheck2.Test.make ~name:"reverse twice is identity" ~count:40 er_gen (fun g ->
      Dag.edges (Dag.reverse (Dag.reverse g)) = Dag.edges g)

(* Labels take the same percent-escape gauntlet through the binary store
   as through the text edgelist — byte-exact both ways. *)
let prop_store_label_roundtrip =
  QCheck2.Test.make ~name:"binary store roundtrip preserves labels" ~count:40
    labeled_er_gen (fun g ->
      with_tmp_store (fun path ->
          Store.write path g;
          let g' = Store.to_dag (Store.load path) in
          Dag.fingerprint g' = Dag.fingerprint g
          && List.for_all
               (fun v -> Dag.label g v = Dag.label g' v)
               (List.init (Dag.n_vertices g) Fun.id)))

let prop_store_union_components =
  QCheck2.Test.make ~name:"store recovers replicated components" ~count:20
    QCheck2.Gen.(pair er_gen (int_range 2 4))
    (fun (g, copies) ->
      let u = Dag.replicate g ~copies in
      with_tmp_store (fun path ->
          Store.write path u;
          let t = Store.load path in
          let parts = Store.component_dags t in
          let split = Component.split u in
          Store.component_count t = Component.count u
          && Store.fingerprint t = Dag.fingerprint u
          && Array.length parts = Array.length split
          && Array.for_all2
               (fun (a, _) (b, _) -> Dag.fingerprint a = Dag.fingerprint b)
               parts split))

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_topo_orders_valid;
      prop_laplacian_trace_is_degree_sum;
      prop_normalized_trace;
      prop_edgelist_roundtrip;
      prop_edgelist_label_roundtrip;
      prop_reverse_involution;
      prop_store_roundtrip;
      prop_store_label_roundtrip;
      prop_store_union_components;
    ]

let () =
  Alcotest.run "graphio_graph"
    [
      ( "dag",
        [
          Alcotest.test_case "basic accessors" `Quick test_dag_basic;
          Alcotest.test_case "sources and sinks" `Quick test_dag_sources_sinks;
          Alcotest.test_case "has_edge" `Quick test_dag_has_edge;
          Alcotest.test_case "edges roundtrip" `Quick test_dag_edges_roundtrip;
          Alcotest.test_case "labels" `Quick test_dag_labels;
          Alcotest.test_case "rejects cycle" `Quick test_dag_rejects_cycle;
          Alcotest.test_case "rejects self-loop" `Quick test_dag_rejects_self_loop;
          Alcotest.test_case "rejects duplicate edge" `Quick test_dag_rejects_duplicate_edge;
          Alcotest.test_case "rejects bad vertex" `Quick test_dag_rejects_bad_vertex;
          Alcotest.test_case "reverse" `Quick test_dag_reverse;
          Alcotest.test_case "induced subgraph" `Quick test_dag_induced_subgraph;
          Alcotest.test_case "fold_edges" `Quick test_dag_fold_edges;
        ] );
      ( "topo",
        [
          Alcotest.test_case "standard orders valid" `Quick test_topo_kahn_valid;
          Alcotest.test_case "invalid orders rejected" `Quick test_topo_invalid_orders;
          Alcotest.test_case "random orders valid" `Quick test_topo_random_valid;
          Alcotest.test_case "random orders vary" `Quick test_topo_random_varies;
          Alcotest.test_case "position_of" `Quick test_topo_position_of;
          Alcotest.test_case "natural rejects non-topological" `Quick test_topo_natural_rejects;
        ] );
      ( "laplacian",
        [
          Alcotest.test_case "standard chain" `Quick test_laplacian_standard_chain;
          Alcotest.test_case "normalized diamond" `Quick test_laplacian_normalized_diamond;
          Alcotest.test_case "psd and nullspace" `Quick test_laplacian_psd_and_nullspace;
          Alcotest.test_case "quadratic form standard" `Quick test_laplacian_quadratic_form_standard;
          Alcotest.test_case "quadratic form normalized" `Quick test_laplacian_quadratic_form_normalized;
          Alcotest.test_case "symmetric" `Quick test_laplacian_symmetric;
          Alcotest.test_case "row sums zero" `Quick test_laplacian_row_sums_zero;
        ] );
      ( "component",
        [
          Alcotest.test_case "counts" `Quick test_component_counts;
          Alcotest.test_case "connected" `Quick test_component_connected;
        ] );
      ( "stats",
        [
          Alcotest.test_case "diamond" `Quick test_stats_diamond;
          Alcotest.test_case "chain" `Quick test_stats_chain;
          Alcotest.test_case "edgeless and empty" `Quick test_stats_edgeless;
          Alcotest.test_case "levels use longest path" `Quick test_stats_levels_longest_path;
        ] );
      ( "er",
        [
          Alcotest.test_case "extremes" `Quick test_er_extremes;
          Alcotest.test_case "deterministic" `Quick test_er_deterministic;
          Alcotest.test_case "edge count concentrates" `Quick test_er_edge_count_concentrates;
          Alcotest.test_case "acyclic orientation" `Quick test_er_acyclic_orientation;
          Alcotest.test_case "connected resampling" `Quick test_er_connected_resamples;
          Alcotest.test_case "regime p formula" `Quick test_er_regime_p;
        ] );
      ( "serialization",
        [
          Alcotest.test_case "dot output" `Quick test_dot_output;
          Alcotest.test_case "dot partition and order" `Quick test_dot_partition_and_order;
          Alcotest.test_case "edgelist roundtrip" `Quick test_edgelist_roundtrip;
          Alcotest.test_case "edgelist file roundtrip" `Quick test_edgelist_file_roundtrip;
          Alcotest.test_case "dot file write" `Quick test_dot_file_write;
          Alcotest.test_case "edgelist rejects garbage" `Quick test_edgelist_rejects_garbage;
          Alcotest.test_case "edgelist error messages are line-numbered" `Quick
            test_edgelist_error_messages;
          Alcotest.test_case "edgelist of_file prefixes path" `Quick
            test_edgelist_of_file_prefixes_path;
        ] );
      ( "store",
        [
          Alcotest.test_case "labeled roundtrip" `Quick
            test_store_roundtrip_labeled;
          Alcotest.test_case "degenerate graphs roundtrip" `Quick
            test_store_roundtrip_degenerate;
          Alcotest.test_case "sniff rejects text" `Quick
            test_store_sniff_rejects_text;
          Alcotest.test_case "component extraction matches split" `Quick
            test_store_component_dags;
          Alcotest.test_case "int32 overflow guard" `Quick
            test_store_int32_guard;
        ] );
      ("properties", props);
    ]
