open Graphio_core
open Graphio_graph
open Graphio_workloads
open Graphio_spectra

(* ------------------------------------------------------------------ *)
(* Spectral_bound (the k-maximization)                                 *)
(* ------------------------------------------------------------------ *)

let test_value_for_k_formula () =
  (* Hand-check: n=100, M=2, eigenvalues 0, 0.1, 0.2, 0.3:
     k=2: floor(100/2)*(0+0.1) - 2*2*2 = 5 - 8 = -3
     k=3: floor(100/3)*(0.3) - 12 = 9.9 - 12 = -2.1
     k=4: 25*0.6 - 16 = -1. *)
  let eigenvalues = [| 0.0; 0.1; 0.2; 0.3 |] in
  Alcotest.(check (float 1e-9)) "k=2" (-3.0)
    (Spectral_bound.value_for_k ~n:100 ~m:2 ~eigenvalues 2);
  Alcotest.(check (float 1e-9)) "k=3" (-2.1)
    (Spectral_bound.value_for_k ~n:100 ~m:2 ~eigenvalues 3);
  Alcotest.(check (float 1e-9)) "k=4" (-1.0)
    (Spectral_bound.value_for_k ~n:100 ~m:2 ~eigenvalues 4)

let test_compute_picks_best_k () =
  let eigenvalues = [| 0.0; 0.1; 0.2; 0.3 |] in
  let t = Spectral_bound.compute ~n:100 ~m:2 ~eigenvalues () in
  Alcotest.(check int) "best k" 4 t.Spectral_bound.best_k;
  Alcotest.(check (float 1e-9)) "raw" (-1.0) t.Spectral_bound.best_raw;
  Alcotest.(check (float 1e-9)) "clamped" 0.0 t.Spectral_bound.bound

let test_compute_positive_case () =
  let eigenvalues = [| 0.0; 1.0; 1.0 |] in
  (* k=2: floor(10/2)*1 - 4 = 1; k=3: 3*2 - 6 = 0 *)
  let t = Spectral_bound.compute ~n:10 ~m:1 ~eigenvalues () in
  Alcotest.(check (float 1e-9)) "bound" 1.0 t.Spectral_bound.bound;
  Alcotest.(check int) "k" 2 t.Spectral_bound.best_k

let test_parallel_scaling () =
  let eigenvalues = [| 0.0; 1.0; 2.0; 3.0 |] in
  (* Theorem 6: floor(n/(k p)) replaces floor(n/k); p=1 dominates p=2 etc. *)
  let b1 = Spectral_bound.compute ~n:64 ~m:2 ~eigenvalues () in
  let b2 = Spectral_bound.compute ~n:64 ~m:2 ~p:2 ~eigenvalues () in
  let b4 = Spectral_bound.compute ~n:64 ~m:2 ~p:4 ~eigenvalues () in
  Alcotest.(check bool) "monotone in p" true
    (b1.Spectral_bound.bound >= b2.Spectral_bound.bound
    && b2.Spectral_bound.bound >= b4.Spectral_bound.bound);
  (* exact check for p=2, k=2: floor(64/4)*1 - 8 = 8 *)
  Alcotest.(check (float 1e-9)) "p=2 k=2" 8.0
    (Spectral_bound.value_for_k ~n:64 ~m:2 ~p:2 ~eigenvalues 2)

let test_negative_eigenvalue_clamped () =
  let eigenvalues = [| -1e-12; 0.5 |] in
  let v = Spectral_bound.value_for_k ~n:10 ~m:0 ~eigenvalues 2 in
  Alcotest.(check (float 1e-9)) "clamped" 2.5 v

let test_validation_errors () =
  Alcotest.check_raises "descending"
    (Invalid_argument "Spectral_bound: eigenvalues must be ascending") (fun () ->
      ignore (Spectral_bound.compute ~n:5 ~m:1 ~eigenvalues:[| 1.0; 0.5 |] ()));
  Alcotest.check_raises "bad p" (Invalid_argument "Spectral_bound: p must be >= 1")
    (fun () ->
      ignore (Spectral_bound.compute ~n:5 ~m:1 ~p:0 ~eigenvalues:[| 0.0 |] ()))

let test_per_k_shape () =
  let eigenvalues = Array.init 10 (fun i -> float_of_int i /. 10.0) in
  let pk = Spectral_bound.per_k ~n:100 ~m:2 ~eigenvalues () in
  Alcotest.(check int) "count" 9 (Array.length pk);
  Alcotest.(check int) "first k" 2 (fst pk.(0));
  Alcotest.(check int) "last k" 10 (fst pk.(8));
  (* compute agrees with per_k max *)
  let t = Spectral_bound.compute ~n:100 ~m:2 ~eigenvalues () in
  let best = Array.fold_left (fun acc (_, v) -> Float.max acc v) neg_infinity pk in
  Alcotest.(check (float 1e-9)) "agree" best t.Spectral_bound.best_raw

let test_empty_and_tiny () =
  let t = Spectral_bound.compute ~n:0 ~m:4 ~eigenvalues:[||] () in
  Alcotest.(check (float 0.0)) "empty" 0.0 t.Spectral_bound.bound;
  let t1 = Spectral_bound.compute ~n:1 ~m:4 ~eigenvalues:[| 0.0 |] () in
  Alcotest.(check (float 0.0)) "single" 0.0 t1.Spectral_bound.bound

(* ------------------------------------------------------------------ *)
(* Solver end-to-end                                                   *)
(* ------------------------------------------------------------------ *)

let test_solver_thm5_not_tighter_than_thm4 () =
  (* Theorem 5 is the loosening of Theorem 4 (same partitions, coarser
     degree bound): on every graph its bound must not exceed Thm 4's. *)
  List.iter
    (fun (g, m) ->
      let b4 = (Solver.bound ~method_:Solver.Normalized g ~m).Solver.result in
      let b5 = (Solver.bound ~method_:Solver.Standard g ~m).Solver.result in
      Alcotest.(check bool) "thm5 <= thm4" true
        (b5.Spectral_bound.bound <= b4.Spectral_bound.bound +. 1e-6))
    [
      (Fft.build 7, 4);
      (Fft.build 7, 16);
      (Bhk.build 9, 16);
      (Matmul.build 6, 40);
      (Strassen.build 4, 8);
    ]

let test_solver_monotone_in_m () =
  let g = Fft.build 8 in
  let bounds =
    List.map
      (fun m -> (Solver.bound g ~m).Solver.result.Spectral_bound.bound)
      [ 4; 8; 16; 32 ]
  in
  let rec monotone = function
    | a :: b :: rest -> a >= b -. 1e-9 && monotone (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool) "decreasing in M" true (monotone bounds)

let test_solver_closed_form_agrees_with_numeric () =
  (* Closed-form butterfly spectrum through bound_of_spectrum must equal
     the numeric Theorem 5 pipeline (both use L and divide by max dout). *)
  List.iter
    (fun l ->
      let g = Fft.build l in
      let numeric =
        (Solver.bound ~method_:Solver.Standard ~closed_form:false g ~m:8)
          .Solver.result
      in
      let closed =
        Solver.bound_of_spectrum
          ~spectrum:(Butterfly_spectra.spectrum l)
          ~scale:(1.0 /. float_of_int (Dag.max_out_degree g))
          ~n:(Dag.n_vertices g) ~m:8 ()
      in
      Alcotest.(check (float 1e-5))
        (Printf.sprintf "l=%d" l)
        numeric.Spectral_bound.bound closed.Spectral_bound.bound)
    [ 2; 4; 6 ]

let test_solver_hypercube_closed_form () =
  List.iter
    (fun l ->
      let g = Bhk.build l in
      let numeric =
        (Solver.bound ~method_:Solver.Standard ~closed_form:false g ~m:4)
          .Solver.result
      in
      let closed =
        Solver.bound_of_spectrum
          ~spectrum:(Hypercube_spectra.spectrum l)
          ~scale:(1.0 /. float_of_int l)
          ~n:(1 lsl l) ~m:4 ()
      in
      Alcotest.(check (float 1e-5))
        (Printf.sprintf "l=%d" l)
        numeric.Spectral_bound.bound closed.Spectral_bound.bound)
    [ 3; 5; 7 ]

let test_solver_empty_graph () =
  let g = Dag.of_edges ~n:0 [] in
  let o = Solver.bound g ~m:4 in
  Alcotest.(check (float 0.0)) "zero" 0.0 o.Solver.result.Spectral_bound.bound

let test_solver_edgeless_graph () =
  let g = Dag.of_edges ~n:10 [] in
  let o = Solver.bound g ~m:2 in
  Alcotest.(check (float 0.0)) "zero" 0.0 o.Solver.result.Spectral_bound.bound

let test_solver_parallel_weaker () =
  let g = Fft.build 8 in
  let b1 = (Solver.bound g ~m:4).Solver.result.Spectral_bound.bound in
  let b4 = (Solver.bound ~p:4 g ~m:4).Solver.result.Spectral_bound.bound in
  Alcotest.(check bool) "parallel bound weaker" true (b4 <= b1 +. 1e-9)

let test_solver_sparse_path_agrees_with_dense () =
  (* low dense_threshold routes the whole pipeline through the
     Chebyshev-filtered solver: the bound must match the dense default *)
  let g = Fft.build 6 in
  let dense = Solver.bound ~h:16 ~closed_form:false g ~m:8 in
  let sparse = Solver.bound ~h:16 ~dense_threshold:0 ~closed_form:false g ~m:8 in
  Alcotest.(check bool) "dense backend default" true
    (dense.Solver.backend = Graphio_la.Eigen.Dense);
  Alcotest.(check bool) "sparse backend forced" true
    (sparse.Solver.backend = Graphio_la.Eigen.Sparse_filtered);
  Alcotest.(check (float 1e-4))
    "bounds agree" dense.Solver.result.Spectral_bound.bound
    sparse.Solver.result.Spectral_bound.bound;
  (* and through a domain pool, bitwise against the sequential sparse run *)
  Graphio_par.Pool.with_pool ~size:2 (fun pool ->
      let pooled =
        Solver.bound ~h:16 ~dense_threshold:0 ~closed_form:false ~pool g ~m:8
      in
      Alcotest.(check bool) "pooled bitwise equal" true
        (Array.for_all2
           (fun a b -> Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b))
           sparse.Solver.eigenvalues pooled.Solver.eigenvalues))

let test_solver_warm_start_accuracy () =
  (* Ritz vectors cached by a donor solve at one h seed solves at other
     h's on the same graph.  Warm bounds must agree with cold ones to
     solver tolerance, the provenance bit must report the seeding, and
     both directions of the donor-size mismatch (pad and truncate) must
     work. *)
  List.iter
    (fun g ->
      let cache = Graphio_cache.Spectrum.create () in
      let solve ?(cache = cache) ~h ~warm_start () =
        Solver.bound_cached ~cache ~h ~dense_threshold:0 ~warm_start
          ~closed_form:false (Solver.job g ~m:8)
      in
      let cold_bound ~h =
        (solve ~cache:Graphio_cache.Spectrum.disabled ~h ~warm_start:false ())
          .Solver.outcome.Solver.result.Spectral_bound.bound
      in
      let donor = solve ~h:16 ~warm_start:true () in
      Alcotest.(check bool) "donor is cold" false
        donor.Solver.outcome.Solver.warm_start;
      List.iter
        (fun h ->
          let warm = solve ~h ~warm_start:true () in
          Alcotest.(check bool)
            (Printf.sprintf "h=%d seeded" h)
            true warm.Solver.outcome.Solver.warm_start;
          let wb = warm.Solver.outcome.Solver.result.Spectral_bound.bound in
          let cb = cold_bound ~h in
          Alcotest.(check bool)
            (Printf.sprintf "h=%d warm bound agrees with cold" h)
            true
            (Float.abs (wb -. cb) <= 1e-5 *. (1.0 +. Float.abs cb)))
        [ 24 (* donor padded *); 8 (* donor truncated *) ])
    [ Fft.build 6; Bhk.build 7; Er.gnp ~n:200 ~p:0.05 ~seed:11 ]

(* ------------------------------------------------------------------ *)
(* Analytic (Section 5)                                                *)
(* ------------------------------------------------------------------ *)

let test_hypercube_alpha1_matches_paper_formula () =
  (* alpha=1 specialization equals the displayed formula. *)
  List.iter
    (fun (l, m) ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "l=%d m=%d" l m)
        ((float_of_int (1 lsl (l + 1)) /. float_of_int (l + 1))
        -. (2.0 *. float_of_int (m * (l + 1))))
        (Analytic.hypercube_alpha1 ~l ~m))
    [ (5, 2); (10, 16); (15, 64) ]

let test_hypercube_general_alpha1_close_to_special () =
  (* hypercube ~alpha:1 and the displayed alpha1 formula differ only by
     floor effects; they agree asymptotically.  Check the exact-k relation:
     with alpha=1, k = 1 + l. *)
  let l = 10 and m = 4 in
  let general = Analytic.hypercube ~l ~m ~alpha:1 in
  let special = Analytic.hypercube_alpha1 ~l ~m in
  Alcotest.(check bool) "within floor slack" true
    (Float.abs (general -. special) <= float_of_int (2 * (l + 1)))

let test_hypercube_best_at_least_alpha_choices () =
  let l = 12 and m = 8 in
  let best, alpha = Analytic.hypercube_best ~l ~m in
  Alcotest.(check bool) "alpha in range" true (alpha >= 0 && alpha < l);
  for a = 0 to l - 1 do
    Alcotest.(check bool) "best is max" true (best >= Analytic.hypercube ~l ~m ~alpha:a)
  done

let test_hypercube_nontrivial_threshold () =
  (* The alpha=1 bound is positive iff M < 2^l/(l+1)^2 (strictly). *)
  let l = 10 in
  let threshold = Analytic.hypercube_nontrivial_m ~l in
  let below = int_of_float threshold - 1 in
  let above = int_of_float threshold + 1 in
  Alcotest.(check bool) "below positive" true (Analytic.hypercube_alpha1 ~l ~m:below > 0.0);
  Alcotest.(check bool) "above negative" true (Analytic.hypercube_alpha1 ~l ~m:above < 0.0)

let test_fft_analytic_le_numeric_truth () =
  (* The analytic FFT bound discards eigenvalues (sets them to 0), so it
     can never exceed the exact closed-form-spectrum bound at the same k;
     sanity-check against the full spectral maximization. *)
  List.iter
    (fun (l, m) ->
      let analytic, _ = Analytic.fft_best ~l ~m in
      let exact =
        Solver.bound_of_spectrum
          ~h:(1 lsl l)
          ~spectrum:(Butterfly_spectra.spectrum l)
          ~scale:0.5
          ~n:((l + 1) * (1 lsl l))
          ~m ()
      in
      Alcotest.(check bool)
        (Printf.sprintf "l=%d m=%d" l m)
        true
        (analytic <= exact.Spectral_bound.bound +. 1e-6 || analytic <= 0.0))
    [ (6, 4); (8, 4); (10, 8); (12, 16) ]

let test_fft_default_alpha () =
  Alcotest.(check int) "l=10 M=16" (10 - 4) (Analytic.fft_default_alpha ~l:10 ~m:16);
  Alcotest.(check int) "clamps at 0" 0 (Analytic.fft_default_alpha ~l:3 ~m:1024);
  Alcotest.(check int) "clamps at l-1" (9) (Analytic.fft_default_alpha ~l:10 ~m:1)

let test_fft_hong_kung_formula () =
  Alcotest.(check (float 1e-9)) "l=10 M=16"
    (float_of_int (10 * 1024) /. 4.0)
    (Analytic.fft_hong_kung ~l:10 ~m:16)

let test_fft_gap_to_hong_kung () =
  (* §5.2's final display: J* >= (l+1) 2^l (pi^2/(8 log2^2 M) - 4/(l+1))
     once l is large enough relative to (2 log2 M + 1)^2 (the paper's
     "M << l" regime).  Check the optimized analytic bound dominates this
     expression (with a 0.9 fudge for the small-angle approximation), and
     never exceeds the asymptotically tight Hong-Kung shape by much. *)
  List.iter
    (fun (l, m) ->
      let spectral, _ = Analytic.fft_best ~l ~m in
      let hk = Analytic.fft_hong_kung ~l ~m in
      Alcotest.(check bool) "spectral positive" true (spectral > 0.0);
      Alcotest.(check bool) "not above tight bound" true (spectral <= 1.2 *. hk);
      let log2m = log (float_of_int m) /. log 2.0 in
      let paper_display =
        float_of_int (l + 1) *. Float.pow 2.0 (float_of_int l)
        *. ((0.9 *. Float.pi *. Float.pi /. (8.0 *. log2m *. log2m))
           -. (4.0 /. float_of_int (l + 1)))
      in
      Alcotest.(check bool)
        (Printf.sprintf "dominates paper display (l=%d M=%d)" l m)
        true
        (spectral >= paper_display))
    [ (50, 4); (50, 8); (40, 4) ]

let test_er_formulas () =
  (* leading terms *)
  Alcotest.(check (float 1e-9)) "dense" ((500.0 /. 2.0) -. 16.0)
    (Analytic.er_dense ~n:500 ~m:4);
  let v = Analytic.er_sparse ~n:1000 ~p0:8.0 ~m:4 in
  let expected =
    (1000.0 /. (1.0 +. sqrt (6.0 /. 8.0)) *. (1.0 -. sqrt (2.0 /. 8.0))) -. 16.0
  in
  Alcotest.(check (float 1e-9)) "sparse" expected v;
  Alcotest.check_raises "p0 small" (Invalid_argument "Analytic.er_sparse: p0 must exceed 6")
    (fun () -> ignore (Analytic.er_sparse ~n:10 ~p0:5.0 ~m:1))

(* ------------------------------------------------------------------ *)
(* All-k closed-form optimization                                      *)
(* ------------------------------------------------------------------ *)

let test_all_k_matches_brute_force () =
  (* Small spectra: exhaustive k-search must agree (all-k evaluates run
     boundaries and stationary points; on small inputs that covers every
     k or at least never wins/loses vs brute force by more than floor
     jitter — here multiplicity runs are small enough for exact match). *)
  List.iter
    (fun (spectrum, scale, n, m) ->
      let all_k = Solver.bound_of_spectrum_all_k ~spectrum ~scale ~n ~m () in
      let brute = Solver.bound_of_spectrum ~h:n ~spectrum ~scale ~n ~m () in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d m=%d" n m)
        true
        (all_k.Spectral_bound.bound >= brute.Spectral_bound.bound -. 1e-6))
    [
      (Hypercube_spectra.spectrum 6, 1.0 /. 6.0, 64, 2);
      (Hypercube_spectra.spectrum 8, 1.0 /. 8.0, 256, 4);
      (Butterfly_spectra.spectrum 5, 0.5, 192, 4);
      (Butterfly_spectra.spectrum 7, 0.5, 1024, 2);
    ]

let test_all_k_sound_vs_exhaustive () =
  (* soundness: the all-k result equals the value of its own reported k
     computed independently, and never exceeds the true exhaustive max *)
  let spectrum = Hypercube_spectra.spectrum 8 in
  let scale = 1.0 /. 8.0 and n = 256 and m = 3 in
  let r = Solver.bound_of_spectrum_all_k ~spectrum ~scale ~n ~m () in
  let eigs =
    Multiset.smallest spectrum ~h:n |> Array.map (fun l -> scale *. Float.max l 0.0)
  in
  (* exhaustive max *)
  let best = ref neg_infinity in
  for k = 2 to n do
    best := Float.max !best (Spectral_bound.value_for_k ~n ~m ~eigenvalues:eigs k)
  done;
  Alcotest.(check (float 1e-9)) "reported k's value"
    (Spectral_bound.value_for_k ~n ~m ~eigenvalues:eigs r.Spectral_bound.best_k)
    r.Spectral_bound.best_raw;
  Alcotest.(check bool) "not above exhaustive max" true
    (r.Spectral_bound.best_raw <= !best +. 1e-9);
  Alcotest.(check bool) "equals exhaustive max here" true
    (Float.abs (r.Spectral_bound.best_raw -. !best) <= 1e-9)

let test_all_k_dominates_capped () =
  let spectrum = Hypercube_spectra.spectrum 16 in
  let n = 1 lsl 16 and m = 16 in
  let capped = Solver.bound_of_spectrum ~h:100 ~spectrum ~scale:(1.0 /. 16.0) ~n ~m () in
  let all_k = Solver.bound_of_spectrum_all_k ~spectrum ~scale:(1.0 /. 16.0) ~n ~m () in
  Alcotest.(check bool) "uncapped >= capped" true
    (all_k.Spectral_bound.bound >= capped.Spectral_bound.bound -. 1e-6);
  (* and it must dominate the section 5.1 analytic bound it generalizes *)
  let analytic, _ = Analytic.hypercube_best ~l:16 ~m in
  Alcotest.(check bool) "dominates section 5.1" true
    (all_k.Spectral_bound.bound >= analytic -. 1e-6)

(* ------------------------------------------------------------------ *)
(* Partition_bound (Theorems 2-3 made executable)                      *)
(* ------------------------------------------------------------------ *)

let test_segments_shape () =
  Alcotest.(check (array int)) "10/3" [| 0; 0; 0; 0; 1; 1; 1; 2; 2; 2 |]
    (Partition_bound.segments ~n:10 ~k:3);
  Alcotest.(check (array int)) "4/4" [| 0; 1; 2; 3 |] (Partition_bound.segments ~n:4 ~k:4);
  Alcotest.(check (array int)) "5/1" [| 0; 0; 0; 0; 0 |] (Partition_bound.segments ~n:5 ~k:1)

let test_partition_cost_hand_checked () =
  (* Chain 0->1->2->3 in natural order, k=2: segments {0,1},{2,3}; the only
     crossing edge is (1,2), dout(1)=1, counted for both segments: 2. *)
  let g = Dag.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3) ] in
  let order = Topo.natural g in
  Alcotest.(check (float 1e-12)) "chain k=2" 2.0
    (Partition_bound.segment_cost g ~order ~k:2);
  (* k=4: all three edges cross, each counted twice. *)
  Alcotest.(check (float 1e-12)) "chain k=4" 6.0
    (Partition_bound.segment_cost g ~order ~k:4)

let test_partition_cost_equals_trace_form () =
  (* Theorem 3: segment cost = tr(X^T L~ X W(k)) with X the permutation
     matrix of the order and W(k) the block-diagonal partition indicator.
     Check on random small graphs against explicit dense algebra. *)
  let open Graphio_la in
  let rng = Rng.create 55 in
  for trial = 1 to 10 do
    let n = 5 + Rng.int rng 8 in
    let g = Er.gnp ~n ~p:0.4 ~seed:(trial * 7) in
    let order = Topo.random ~seed:trial g in
    let k = 2 + Rng.int rng (n - 2) in
    (* X_{t, v} = 1 iff v evaluated at time t (rows = time steps) *)
    let pos = Topo.position_of order in
    let x = Mat.init n n (fun t v -> if order.(t) = v then 1.0 else 0.0) in
    ignore pos;
    let seg = Partition_bound.segments ~n ~k in
    let w = Mat.init n n (fun i j -> if seg.(i) = seg.(j) then 1.0 else 0.0) in
    let ltilde = Laplacian.normalized_dense g in
    (* tr(X L~ X^T W): with our row convention, (X L~ X^T)_{st} couples the
       vertices evaluated at times s and t. *)
    let m1 = Mat.mul x (Mat.mul ltilde (Mat.transpose x)) in
    let trace_form = Mat.trace (Mat.mul m1 w) in
    Alcotest.(check (float 1e-9))
      (Printf.sprintf "trial %d" trial)
      trace_form
      (Partition_bound.segment_cost g ~order ~k)
  done

let test_partition_dominates_spectral_relaxation () =
  (* Theorem 4 is the orthogonal relaxation: for every topological order
     and every k, the concrete partition value must be >= the spectral
     value at that k. *)
  List.iter
    (fun (g, m) ->
      let eigs, _ = Solver.spectrum g in
      let n = Dag.n_vertices g in
      List.iter
        (fun order ->
          List.iter
            (fun k ->
              if k <= Array.length eigs && k <= n then begin
                let spectral =
                  Spectral_bound.value_for_k ~n ~m ~eigenvalues:eigs k
                in
                let concrete = Partition_bound.value g ~order ~k ~m in
                Alcotest.(check bool)
                  (Printf.sprintf "k=%d" k)
                  true
                  (concrete >= spectral -. 1e-6)
              end)
            [ 2; 3; 5; 8; 13 ])
        [ Topo.natural g; Topo.kahn g; Topo.dfs g; Topo.random ~seed:3 g ])
    [ (Fft.build 5, 4); (Bhk.build 6, 8); (Matmul.build 4, 16) ]

let test_partition_bound_below_simulated () =
  (* Lemma 1: for a given order, max_k partition value lower-bounds that
     schedule's I/O (vertex-count form is weakened to the edge form, so
     the inequality holds a fortiori). *)
  List.iter
    (fun (g, m) ->
      let order = Topo.natural g in
      let _, v = Partition_bound.best g ~order ~m in
      let sim = Graphio_pebble.Simulator.simulate g ~order ~m in
      Alcotest.(check bool) "below schedule io" true
        (v <= float_of_int sim.Graphio_pebble.Simulator.io +. 1e-9))
    [ (Fft.build 6, 4); (Bhk.build 7, 8); (Matmul.build 4, 8); (Strassen.build 4, 8) ]

let test_partition_best_picks_max () =
  let g = Fft.build 5 in
  let order = Topo.natural g in
  let k, v = Partition_bound.best ~k_max:20 g ~order ~m:4 in
  Alcotest.(check bool) "k in range" true (k >= 2 && k <= 20);
  for k' = 2 to 20 do
    Alcotest.(check bool) "max" true (v >= Partition_bound.value g ~order ~k:k' ~m:4 -. 1e-12)
  done

let test_partition_rejects_bad_order () =
  let g = Dag.of_edges ~n:2 [ (0, 1) ] in
  Alcotest.check_raises "invalid order"
    (Invalid_argument "Partition_bound: order is not a valid topological order")
    (fun () -> ignore (Partition_bound.segment_cost g ~order:[| 1; 0 |] ~k:2))

(* ------------------------------------------------------------------ *)
(* Report                                                              *)
(* ------------------------------------------------------------------ *)

let test_report_rendering () =
  let r = Report.create ~title:"t" ~columns:[ "a"; "bb" ] in
  Report.add_row r [ "1"; "2" ];
  Report.add_float_row r [ 3.5; 4.25 ];
  Report.note r "hello";
  let s = Report.to_string r in
  Alcotest.(check bool) "title" true (String.length s > 0);
  List.iter
    (fun needle ->
      let contains =
        let hl = String.length s and nl = String.length needle in
        let rec go i = i + nl <= hl && (String.sub s i nl = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) needle true contains)
    [ "== t =="; "a"; "bb"; "3.5"; "4.25"; "note: hello" ]

let test_report_arity_check () =
  let r = Report.create ~title:"t" ~columns:[ "a" ] in
  Alcotest.check_raises "arity" (Invalid_argument "Report.add_row: expected 1 cells, got 2")
    (fun () -> Report.add_row r [ "1"; "2" ])

let test_report_csv () =
  let r = Report.create ~title:"t" ~columns:[ "x"; "y" ] in
  Report.add_row r [ "a,b"; "c\"d" ];
  let csv = Report.to_csv r in
  Alcotest.(check string) "csv" "x,y\n\"a,b\",\"c\"\"d\"\n" csv

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let eigs_gen =
  QCheck2.Gen.(
    let* h = int_range 2 30 in
    let* raw = array_size (return h) (float_range 0.0 4.0) in
    let sorted = Array.copy raw in
    Array.sort Float.compare sorted;
    return sorted)

let prop_bound_nonnegative =
  QCheck2.Test.make ~name:"bound is nonnegative" ~count:100
    QCheck2.Gen.(triple eigs_gen (int_range 1 1000) (int_range 0 64))
    (fun (eigenvalues, n, m) ->
      let t = Spectral_bound.compute ~n ~m ~eigenvalues () in
      t.Spectral_bound.bound >= 0.0)

let prop_bound_monotone_m =
  QCheck2.Test.make ~name:"bound monotone decreasing in M" ~count:100
    QCheck2.Gen.(triple eigs_gen (int_range 1 1000) (int_range 0 32))
    (fun (eigenvalues, n, m) ->
      let a = Spectral_bound.compute ~n ~m ~eigenvalues () in
      let b = Spectral_bound.compute ~n ~m:(m + 1) ~eigenvalues () in
      a.Spectral_bound.bound >= b.Spectral_bound.bound -. 1e-9)

let prop_bound_monotone_in_eigs =
  QCheck2.Test.make ~name:"bound monotone in eigenvalues" ~count:100
    QCheck2.Gen.(triple eigs_gen (int_range 1 1000) (int_range 0 32))
    (fun (eigenvalues, n, m) ->
      let bigger = Array.map (fun l -> l *. 1.5) eigenvalues in
      let a = Spectral_bound.compute ~n ~m ~eigenvalues () in
      let b = Spectral_bound.compute ~n ~m ~eigenvalues:bigger () in
      b.Spectral_bound.bound >= a.Spectral_bound.bound -. 1e-9)

let prop_parallel_monotone =
  QCheck2.Test.make ~name:"bound monotone decreasing in p" ~count:100
    QCheck2.Gen.(triple eigs_gen (int_range 1 1000) (int_range 1 8))
    (fun (eigenvalues, n, p) ->
      let a = Spectral_bound.compute ~n ~m:4 ~p ~eigenvalues () in
      let b = Spectral_bound.compute ~n ~m:4 ~p:(p + 1) ~eigenvalues () in
      a.Spectral_bound.bound >= b.Spectral_bound.bound -. 1e-9)

(* Multiplicity-heavy random spectra (few distinct values, large runs):
   the regime where the segment-endpoint search in
   [bound_of_spectrum_all_k] has to be exact, and where the old
   boundary-only heuristic missed interior maxima (including k = 2 inside
   a first run of multiplicity >= 2). *)
let multiset_gen =
  QCheck2.Gen.(
    let* n_runs = int_range 1 8 in
    list_size (return n_runs) (pair (float_range 0.0 3.0) (int_range 1 40)))

let prop_all_k_matches_brute_force =
  QCheck2.Test.make
    ~name:"all-k search equals brute force over every k in [2, k_max]" ~count:200
    QCheck2.Gen.(
      quad multiset_gen (int_range 0 20) (int_range 1 4) (float_range 0.0 2.0))
    (fun (pairs, m, p, scale) ->
      let spectrum = Multiset.of_list pairs in
      let total = Multiset.total spectrum in
      let n = total + ((m * 7) mod 31) in
      let eigs =
        Multiset.smallest spectrum ~h:total
        |> Array.map (fun l -> scale *. Float.max l 0.0)
      in
      let prefix = Array.make (total + 1) 0.0 in
      for i = 0 to total - 1 do
        prefix.(i + 1) <- prefix.(i) +. eigs.(i)
      done;
      let k_max = min n total in
      let best = ref neg_infinity in
      for k = 2 to k_max do
        let v =
          (float_of_int (n / (k * p)) *. prefix.(k))
          -. (2.0 *. float_of_int (k * m))
        in
        if v > !best then best := v
      done;
      let r = Solver.bound_of_spectrum_all_k ~p ~spectrum ~scale ~n ~m () in
      if k_max < 2 then r.Spectral_bound.best_k = 0
      else
        Float.abs (r.Spectral_bound.best_raw -. !best)
        <= 1e-6 *. (1.0 +. Float.abs !best))

(* ------------------------------------------------------------------ *)
(* Metamorphic properties on whole graphs: transform the DAG (not the   *)
(* spectrum) and assert what the bound must do.                         *)
(* ------------------------------------------------------------------ *)

let methods = [ Solver.Normalized; Solver.Standard ]

let graph_bound ~method_ ?h g ~m =
  (Solver.bound ~method_ ?h g ~m).Solver.result.Spectral_bound.bound

let dag_gen =
  QCheck2.Gen.(
    let* n = int_range 6 20 in
    let* p10 = int_range 2 5 in
    let* seed = int_range 0 10_000 in
    return (Er.gnp ~n ~p:(float_of_int p10 /. 10.0) ~seed))

(* The bound depends only on graph structure, not on how vertices happen
   to be numbered: an isomorphic relabeling must give the same value (to
   eigensolver rounding). *)
let relabel_case_gen =
  QCheck2.Gen.(
    let* g = dag_gen in
    let* perm = shuffle_a (Array.init (Dag.n_vertices g) Fun.id) in
    let* m = int_range 1 16 in
    return (g, perm, m))

let permute_dag g perm =
  Dag.of_edges ~n:(Dag.n_vertices g)
    (List.map (fun (u, v) -> (perm.(u), perm.(v))) (Dag.edges g))

let prop_relabel_invariance =
  (* every spectral method: the spectrum (hence the bound) depends only on
     graph structure.  Visit is excluded by design — its anchor chains are
     picked by an id-dependent critical-path heuristic, so the value may
     legitimately differ across isomorphic labelings (each labeling's
     value is still a sound lower bound; soundness is what the
     exact-sandwich battery pins). *)
  QCheck2.Test.make ~name:"bound invariant under vertex relabeling" ~count:40
    relabel_case_gen
    (fun (g, perm, m) ->
      Dag.n_edges g = 0
      || List.for_all
           (fun method_ ->
             let h = Dag.n_vertices g in
             let a = graph_bound ~method_ ~h g ~m in
             let b = graph_bound ~method_ ~h (permute_dag g perm) ~m in
             Float.abs (a -. b)
             <= 1e-6 *. (1.0 +. Float.max (Float.abs a) (Float.abs b)))
           (List.filter Method.is_spectral Method.all))

(* More fast memory can only weaken a lower bound on I/O — for every
   method in the portfolio (the portfolio itself is a max of monotones). *)
let prop_graph_monotone_m =
  QCheck2.Test.make ~name:"graph bound non-increasing in M" ~count:40
    QCheck2.Gen.(pair dag_gen (int_range 1 16))
    (fun (g, m) ->
      Dag.n_edges g = 0
      || List.for_all
           (fun method_ ->
             let h = Dag.n_vertices g in
             let b m = graph_bound ~method_ ~h g ~m in
             b m >= b (m + 1) -. 1e-9 && b (m + 1) >= b (2 * m) -. 1e-9)
           Method.all)

(* Disjoint self-union: c independent copies of G need at least as much
   I/O as one copy.  The heterogeneous form bound(A ⊔ B) >= max(bound A,
   bound B) is FALSE for this relaxation (spectrum dilution: B's low
   eigenvalues drag down every prefix sum of the merged spectrum), so the
   metamorphic relation is stated for copies of the same graph, where it
   is provable: the union's spectrum is each eigenvalue with multiplicity
   c, so value_{cG}(c·k) = c·value_G(k) because ⌊cn/(ck)⌋ = ⌊n/k⌋. *)
let union_copies g c =
  let n = Dag.n_vertices g in
  Dag.of_edges ~n:(c * n)
    (List.concat
       (List.init c (fun k ->
            List.map (fun (u, v) -> (u + (k * n), v + (k * n))) (Dag.edges g))))

let prop_self_union =
  QCheck2.Test.make ~name:"self-union bound >= single-copy bound" ~count:30
    QCheck2.Gen.(triple dag_gen (int_range 2 3) (int_range 1 12))
    (fun (g, c, m) ->
      Dag.n_edges g = 0
      || List.for_all
           (fun method_ ->
             let n = Dag.n_vertices g in
             let one = graph_bound ~method_ ~h:n g ~m in
             let many = graph_bound ~method_ ~h:(c * n) (union_copies g c) ~m in
             many >= one -. (1e-6 *. (1.0 +. one)))
           methods)

(* ------------------------------------------------------------------ *)
(* Component decomposition differentials                               *)
(* ------------------------------------------------------------------ *)

(* The Laplacian of a disjoint union is block-diagonal, so the union's
   spectrum is the multiset union of the per-component spectra: solving
   per component and merging must reproduce the whole-graph bound to
   eigensolver tolerance.  That equation is the oracle for the entire
   out-of-core path. *)

let close ?(tol = 1e-6) a b =
  Float.abs (a -. b) <= tol *. (1.0 +. Float.max (Float.abs a) (Float.abs b))

let test_decompose_differential () =
  let g1 = Fft.build 3 in
  let g2 = Er.gnp ~n:17 ~p:0.3 ~seed:11 in
  let u = Dag.disjoint_union g1 g2 in
  let h = Dag.n_vertices u in
  List.iter
    (fun method_ ->
      List.iter
        (fun m ->
          let whole = Solver.bound ~method_ ~h ~decompose:false u ~m in
          let split = Solver.bound ~method_ ~h u ~m in
          Alcotest.(check bool)
            (Printf.sprintf "whole %f = decomposed %f (m=%d)"
               whole.Solver.result.Spectral_bound.bound
               split.Solver.result.Spectral_bound.bound m)
            true
            (close whole.Solver.result.Spectral_bound.bound
               split.Solver.result.Spectral_bound.bound);
          Alcotest.(check int)
            "whole-graph path reports no components" 0
            (Array.length whole.Solver.components);
          Alcotest.(check int)
            "decomposed path reports both components" 2
            (Array.length split.Solver.components);
          Alcotest.(check int)
            "component sizes partition the union"
            (Dag.n_vertices u)
            (Array.fold_left
               (fun acc c -> acc + c.Solver.comp_n)
               0 split.Solver.components))
        [ 1; 4; 9 ])
    methods

(* One closed-form component (a path: recognized, analytic spectrum) next
   to one numeric component — the merge must mix tiers without bias. *)
let test_decompose_mixed_tiers () =
  let path = Sequences.independent_chains ~count:1 ~length:24 in
  let rand = Er.gnp ~n:15 ~p:0.35 ~seed:5 in
  let u = Dag.disjoint_union path rand in
  let h = Dag.n_vertices u in
  let whole = Solver.bound ~h ~decompose:false u ~m:4 in
  let split = Solver.bound ~h u ~m:4 in
  Alcotest.(check bool)
    "mixed-tier decomposed bound matches whole graph" true
    (close whole.Solver.result.Spectral_bound.bound
       split.Solver.result.Spectral_bound.bound);
  (match split.Solver.components with
  | [| a; b |] ->
      (match a.Solver.comp_tier with
      | Solver.Closed_form _ -> ()
      | _ -> Alcotest.fail "path component not recognized closed-form");
      (match b.Solver.comp_tier with
      | Solver.Numeric -> ()
      | _ -> Alcotest.fail "random component not numeric")
  | c -> Alcotest.failf "expected 2 components, got %d" (Array.length c));
  (* the merged outcome is flagged numeric (weakest tier wins) *)
  match split.Solver.tier with
  | Solver.Numeric -> ()
  | _ -> Alcotest.fail "merged tier should be numeric"

(* [bound_parts] — the out-of-core entry point fed by the binary store's
   per-component extraction — must agree bitwise with [bound] on the
   materialized union: both routes dedup and solve the same flat unit
   list. *)
let test_bound_parts_matches_union () =
  let g1 = Fft.build 3 in
  let g2 = Er.gnp ~n:12 ~p:0.3 ~seed:3 in
  let g3 = Sequences.independent_chains ~count:1 ~length:9 in
  let u = Dag.disjoint_union (Dag.disjoint_union g1 g2) g3 in
  let h = Dag.n_vertices u in
  List.iter
    (fun method_ ->
      let via_parts =
        Solver.bound_parts ~method_ ~h [| g1; g2; g3 |] ~m:4
      in
      let via_union = Solver.bound ~method_ ~h u ~m:4 in
      Alcotest.(check (float 0.0))
        "bound_parts bitwise-equal to bound on the union"
        via_union.Solver.result.Spectral_bound.bound
        via_parts.Solver.result.Spectral_bound.bound;
      Alcotest.(check int) "same component count"
        (Array.length via_union.Solver.components)
        (Array.length via_parts.Solver.components))
    methods

(* Identical components must be solved once: the decomposed evaluation
   dedups by spectrum key, so a c-fold self-union reports c components
   with every copy after the first marked shared. *)
let test_decompose_dedups_copies () =
  let g = Er.gnp ~n:14 ~p:0.3 ~seed:9 in
  let u = Dag.replicate g ~copies:4 in
  let out = Solver.bound ~h:(Dag.n_vertices u) u ~m:4 in
  Alcotest.(check int) "four components" 4 (Array.length out.Solver.components);
  let shared =
    Array.fold_left
      (fun acc c -> if c.Solver.comp_cache_hit then acc + 1 else acc)
      0 out.Solver.components
  in
  Alcotest.(check int) "three of four shared the one solve" 3 shared

let prop_decompose_differential =
  QCheck2.Test.make
    ~name:"decomposed union bound = whole-graph bound" ~count:25
    QCheck2.Gen.(triple dag_gen dag_gen (int_range 1 12))
    (fun (g1, g2, m) ->
      let u = Dag.disjoint_union g1 g2 in
      let h = Dag.n_vertices u in
      List.for_all
        (fun method_ ->
          let whole =
            (Solver.bound ~method_ ~h ~decompose:false u ~m).Solver.result
              .Spectral_bound.bound
          in
          let split =
            (Solver.bound ~method_ ~h u ~m).Solver.result.Spectral_bound.bound
          in
          close whole split)
        methods)

(* Metamorphic extension of [prop_self_union]: the same relation, but the
   union is evaluated through the decomposed path (and [Dag.replicate],
   the spec-level union builder) rather than a hand-rolled edge list. *)
let prop_self_union_decomposed =
  QCheck2.Test.make
    ~name:"decomposed self-union bound >= single-copy bound" ~count:25
    QCheck2.Gen.(triple dag_gen (int_range 2 3) (int_range 1 12))
    (fun (g, c, m) ->
      Dag.n_edges g = 0
      || List.for_all
           (fun method_ ->
             let n = Dag.n_vertices g in
             let one = graph_bound ~method_ ~h:n g ~m in
             let u = Dag.replicate g ~copies:c in
             let out = Solver.bound ~method_ ~h:(c * n) u ~m in
             let many = out.Solver.result.Spectral_bound.bound in
             (* g itself may be disconnected: each copy contributes its
                own component count *)
             Array.length out.Solver.components = c * Component.count g
             && many >= one -. (1e-6 *. (1.0 +. one)))
           methods)

(* ------------------------------------------------------------------ *)
(* Portfolio metamorphic properties                                    *)
(* ------------------------------------------------------------------ *)

(* Self-union monotonicity for EVERY portfolio method: c disjoint copies
   of G (via [Dag.replicate], the decomposed path) need at least as much
   I/O as one copy.  For the spectral methods this is the multiplicity
   argument of [prop_self_union]; for Visit the decomposed evaluation
   sums per-copy profiles, and the portfolio is a max of monotones. *)
let prop_self_union_all_methods =
  QCheck2.Test.make
    ~name:"self-union bound >= single copy (every portfolio method)"
    ~count:20
    QCheck2.Gen.(triple dag_gen (int_range 2 3) (int_range 1 12))
    (fun (g, c, m) ->
      Dag.n_edges g = 0
      || List.for_all
           (fun method_ ->
             let n = Dag.n_vertices g in
             let one = graph_bound ~method_ ~h:n g ~m in
             let many =
               graph_bound ~method_ ~h:(c * n) (Dag.replicate g ~copies:c) ~m
             in
             many >= one -. (1e-6 *. (1.0 +. one)))
           Method.all)

(* The portfolio is exactly the max of its members: the headline bound
   equals (bitwise) the largest per-member bound, the winner's recorded
   value is that max, and every member appears in canonical order. *)
let prop_portfolio_is_member_max =
  QCheck2.Test.make ~name:"portfolio bound = max over member bounds"
    ~count:20
    QCheck2.Gen.(pair dag_gen (int_range 1 12))
    (fun (g, m) ->
      let h = Dag.n_vertices g in
      let o = Solver.bound ~method_:Solver.Portfolio ~h g ~m in
      let mvs = o.Solver.methods in
      let max_member =
        Array.fold_left
          (fun acc mv -> Float.max acc mv.Solver.mv_bound)
          neg_infinity mvs
      in
      let winner_value =
        match o.Solver.winner with
        | None -> nan
        | Some w ->
            let mv =
              Array.to_list mvs
              |> List.find (fun mv -> mv.Solver.mv_method = w)
            in
            mv.Solver.mv_bound
      in
      Array.length mvs = List.length Method.concrete
      && Array.to_list mvs
         |> List.map (fun mv -> mv.Solver.mv_method)
         = Method.concrete
      && o.Solver.result.Spectral_bound.bound = max_member
      && winner_value = max_member)

(* Portfolio members must agree bitwise with standalone runs of the same
   method: sharing the eval pipeline across members must not perturb any
   individual value. *)
let prop_portfolio_members_match_standalone =
  QCheck2.Test.make
    ~name:"portfolio member values = standalone method values" ~count:15
    QCheck2.Gen.(pair dag_gen (int_range 1 12))
    (fun (g, m) ->
      let h = Dag.n_vertices g in
      let o = Solver.bound ~method_:Solver.Portfolio ~h g ~m in
      Array.for_all
        (fun mv ->
          let solo = graph_bound ~method_:mv.Solver.mv_method ~h g ~m in
          mv.Solver.mv_bound = solo)
        o.Solver.methods)

(* Decomposition differential for every method, portfolio included:
   [bound] on a materialized disjoint union and [bound_parts] on the
   parts run the identical decomposed pipeline and must agree bitwise
   (this is the oracle the out-of-core path relies on). *)
let prop_portfolio_decompose_differential =
  QCheck2.Test.make
    ~name:"bound on union = bound_parts on parts (every method, bitwise)"
    ~count:15
    QCheck2.Gen.(triple dag_gen dag_gen (int_range 1 12))
    (fun (g1, g2, m) ->
      let u = Dag.disjoint_union g1 g2 in
      let h = Dag.n_vertices u in
      List.for_all
        (fun method_ ->
          let via_union =
            (Solver.bound ~method_ ~h u ~m).Solver.result.Spectral_bound.bound
          in
          let via_parts =
            (Solver.bound_parts ~method_ ~h [| g1; g2 |] ~m).Solver.result
              .Spectral_bound.bound
          in
          via_union = via_parts)
        Method.all)

(* On graphs small enough for the singleton sweep (n <= 256) the visit
   profile contains every single-anchor all-counted chain, so the visit
   bound dominates the convex min-cut baseline by construction. *)
let prop_visit_dominates_mincut =
  QCheck2.Test.make ~name:"visit bound >= convex min-cut (n <= 256)"
    ~count:30
    QCheck2.Gen.(pair dag_gen (int_range 1 12))
    (fun (g, m) ->
      Visit_bound.bound g ~m >= Graphio_flow.Convex_mincut.bound g ~m)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_bound_nonnegative;
      prop_bound_monotone_m;
      prop_bound_monotone_in_eigs;
      prop_parallel_monotone;
      prop_all_k_matches_brute_force;
      prop_relabel_invariance;
      prop_graph_monotone_m;
      prop_self_union;
      prop_decompose_differential;
      prop_self_union_decomposed;
      prop_self_union_all_methods;
      prop_portfolio_is_member_max;
      prop_portfolio_members_match_standalone;
      prop_portfolio_decompose_differential;
      prop_visit_dominates_mincut;
    ]

let () =
  Alcotest.run "graphio_core"
    [
      ( "spectral-bound",
        [
          Alcotest.test_case "value_for_k formula" `Quick test_value_for_k_formula;
          Alcotest.test_case "compute picks best k" `Quick test_compute_picks_best_k;
          Alcotest.test_case "positive case" `Quick test_compute_positive_case;
          Alcotest.test_case "parallel scaling (Thm 6)" `Quick test_parallel_scaling;
          Alcotest.test_case "negative eigenvalues clamped" `Quick test_negative_eigenvalue_clamped;
          Alcotest.test_case "validation" `Quick test_validation_errors;
          Alcotest.test_case "per_k shape" `Quick test_per_k_shape;
          Alcotest.test_case "empty and tiny" `Quick test_empty_and_tiny;
        ] );
      ( "solver",
        [
          Alcotest.test_case "thm5 <= thm4" `Quick test_solver_thm5_not_tighter_than_thm4;
          Alcotest.test_case "monotone in M" `Quick test_solver_monotone_in_m;
          Alcotest.test_case "closed form = numeric (butterfly)" `Quick
            test_solver_closed_form_agrees_with_numeric;
          Alcotest.test_case "closed form = numeric (hypercube)" `Quick
            test_solver_hypercube_closed_form;
          Alcotest.test_case "empty graph" `Quick test_solver_empty_graph;
          Alcotest.test_case "edgeless graph" `Quick test_solver_edgeless_graph;
          Alcotest.test_case "parallel weaker" `Quick test_solver_parallel_weaker;
          Alcotest.test_case "sparse path agrees with dense" `Quick
            test_solver_sparse_path_agrees_with_dense;
          Alcotest.test_case "warm start accuracy" `Quick
            test_solver_warm_start_accuracy;
        ] );
      ( "decompose",
        [
          Alcotest.test_case "union differential per method" `Quick
            test_decompose_differential;
          Alcotest.test_case "mixed closed-form + numeric tiers" `Quick
            test_decompose_mixed_tiers;
          Alcotest.test_case "bound_parts = bound of union" `Quick
            test_bound_parts_matches_union;
          Alcotest.test_case "identical components solved once" `Quick
            test_decompose_dedups_copies;
        ] );
      ( "analytic",
        [
          Alcotest.test_case "hypercube alpha1 formula" `Quick
            test_hypercube_alpha1_matches_paper_formula;
          Alcotest.test_case "hypercube general vs special" `Quick
            test_hypercube_general_alpha1_close_to_special;
          Alcotest.test_case "hypercube best over alpha" `Quick
            test_hypercube_best_at_least_alpha_choices;
          Alcotest.test_case "hypercube nontrivial threshold" `Quick
            test_hypercube_nontrivial_threshold;
          Alcotest.test_case "fft analytic vs exact spectrum" `Quick
            test_fft_analytic_le_numeric_truth;
          Alcotest.test_case "fft default alpha" `Quick test_fft_default_alpha;
          Alcotest.test_case "fft hong-kung formula" `Quick test_fft_hong_kung_formula;
          Alcotest.test_case "fft gap to hong-kung" `Quick test_fft_gap_to_hong_kung;
          Alcotest.test_case "er formulas" `Quick test_er_formulas;
        ] );
      ( "all-k",
        [
          Alcotest.test_case "dominates capped brute force" `Quick
            test_all_k_matches_brute_force;
          Alcotest.test_case "sound vs exhaustive" `Quick test_all_k_sound_vs_exhaustive;
          Alcotest.test_case "dominates capped and analytic" `Quick
            test_all_k_dominates_capped;
        ] );
      ( "partition-bound",
        [
          Alcotest.test_case "segments shape" `Quick test_segments_shape;
          Alcotest.test_case "hand-checked cost" `Quick test_partition_cost_hand_checked;
          Alcotest.test_case "equals trace form (Thm 3)" `Quick
            test_partition_cost_equals_trace_form;
          Alcotest.test_case "dominates spectral relaxation" `Quick
            test_partition_dominates_spectral_relaxation;
          Alcotest.test_case "below simulated schedule" `Quick
            test_partition_bound_below_simulated;
          Alcotest.test_case "best picks max" `Quick test_partition_best_picks_max;
          Alcotest.test_case "rejects bad order" `Quick test_partition_rejects_bad_order;
        ] );
      ( "report",
        [
          Alcotest.test_case "rendering" `Quick test_report_rendering;
          Alcotest.test_case "arity check" `Quick test_report_arity_check;
          Alcotest.test_case "csv" `Quick test_report_csv;
        ] );
      ("properties", props);
    ]
