open Graphio_pebble
open Graphio_graph

let simulate ?policy g ~m = Simulator.simulate ?policy g ~order:(Topo.natural g) ~m

(* ------------------------------------------------------------------ *)
(* Model semantics                                                     *)
(* ------------------------------------------------------------------ *)

let test_inner_product_fits_in_memory () =
  (* With enough fast memory no non-trivial I/O is ever incurred. *)
  let g = Graphio_workloads.Inner_product.build 2 in
  let r = simulate g ~m:16 in
  Alcotest.(check int) "no io" 0 r.Simulator.io;
  Alcotest.(check int) "no reads" 0 r.Simulator.reads;
  Alcotest.(check int) "no writes" 0 r.Simulator.writes

let test_chain_never_spills () =
  (* A chain needs only 2 slots regardless of length. *)
  let g = Dag.of_edges ~n:50 (List.init 49 (fun i -> (i, i + 1))) in
  let r = simulate g ~m:2 in
  Alcotest.(check int) "no io" 0 r.Simulator.io;
  Alcotest.(check bool) "peak <= 2" true (r.Simulator.peak_resident <= 2)

let test_long_lived_values_force_spills () =
  (* Two long-lived hub values plus a working chain exceed M=3, so one hub
     must be spilled (one write) and read back at its late use (one read):
     h1, h2 sources; chain x0 -> x1 -> ... -> x4; f1 = g(h1, x4);
     f2 = g(h2, f1). *)
  let b = Dag.Builder.create () in
  let h1 = Dag.Builder.add_vertex b in
  let h2 = Dag.Builder.add_vertex b in
  let xs = Array.init 5 (fun _ -> Dag.Builder.add_vertex b) in
  for i = 0 to 3 do
    Dag.Builder.add_edge b xs.(i) xs.(i + 1)
  done;
  let f1 = Dag.Builder.add_vertex b in
  Dag.Builder.add_edge b h1 f1;
  Dag.Builder.add_edge b xs.(4) f1;
  let f2 = Dag.Builder.add_vertex b in
  Dag.Builder.add_edge b h2 f2;
  Dag.Builder.add_edge b f1 f2;
  let g = Dag.Builder.build b in
  let r = Simulator.simulate g ~order:(Topo.natural g) ~m:3 in
  Alcotest.(check int) "one spill" 1 r.Simulator.writes;
  Alcotest.(check int) "one reload" 1 r.Simulator.reads;
  (* with M = 4 everything fits *)
  let r4 = Simulator.simulate g ~order:(Topo.natural g) ~m:4 in
  Alcotest.(check int) "M=4 no io" 0 r4.Simulator.io

let test_min_feasible_m () =
  let g = Graphio_workloads.Matmul.build 4 in
  Alcotest.(check int) "in-degree + 1" 5 (Simulator.min_feasible_m g);
  let chain = Dag.of_edges ~n:3 [ (0, 1); (1, 2) ] in
  Alcotest.(check int) "at least 2" 2 (Simulator.min_feasible_m chain)

let test_rejects_small_m () =
  let g = Graphio_workloads.Matmul.build 4 in
  match simulate g ~m:3 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection for m below operand count"

let test_rejects_invalid_order () =
  let g = Dag.of_edges ~n:2 [ (0, 1) ] in
  match Simulator.simulate g ~order:[| 1; 0 |] ~m:4 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection of invalid order"

let test_io_monotone_in_m () =
  (* More fast memory never hurts under Belady on the same order. *)
  let g = Graphio_workloads.Fft.build 5 in
  let order = Topo.natural g in
  let prev = ref max_int in
  List.iter
    (fun m ->
      let r = Simulator.simulate g ~order ~m in
      Alcotest.(check bool) (Printf.sprintf "m=%d" m) true (r.Simulator.io <= !prev);
      prev := r.Simulator.io)
    [ 3; 4; 6; 8; 12; 16; 32; 64 ]

let test_big_memory_zero_io () =
  List.iter
    (fun g ->
      let r = simulate g ~m:(Dag.n_vertices g + 1) in
      Alcotest.(check int) "zero io with infinite memory" 0 r.Simulator.io)
    [
      Graphio_workloads.Fft.build 4;
      Graphio_workloads.Matmul.build 3;
      Graphio_workloads.Bhk.build 4;
      Graphio_workloads.Strassen.build 2;
    ]

let test_writes_bounded_by_n () =
  (* Each value is written at most once (values are immutable). *)
  let g = Graphio_workloads.Fft.build 6 in
  let r = simulate g ~m:4 in
  Alcotest.(check bool) "writes <= n" true
    (r.Simulator.writes <= Dag.n_vertices g)

let test_reads_imply_earlier_write () =
  (* reads can only touch values that were written out. *)
  let g = Graphio_workloads.Fft.build 6 in
  let r = simulate g ~m:4 in
  Alcotest.(check bool) "reads need writes" true
    (r.Simulator.writes > 0 || r.Simulator.reads = 0)

let test_belady_no_worse_than_lru () =
  List.iter
    (fun (g, m) ->
      let order = Topo.natural g in
      let belady = Simulator.simulate ~policy:Simulator.Belady g ~order ~m in
      let lru = Simulator.simulate ~policy:Simulator.Lru g ~order ~m in
      Alcotest.(check bool) "belady <= lru" true
        (belady.Simulator.io <= lru.Simulator.io))
    [
      (Graphio_workloads.Fft.build 6, 4);
      (Graphio_workloads.Fft.build 6, 8);
      (Graphio_workloads.Matmul.build 5, 8);
      (Graphio_workloads.Bhk.build 7, 8);
    ]

let test_sink_values_not_spilled () =
  (* Graph of independent 2-input sums (all sinks): results are reported
     to the user, so tiny memory still incurs no I/O when operands are
     fresh. *)
  let k = 8 in
  let b = Dag.Builder.create () in
  let pairs =
    Array.init k (fun _ ->
        let x = Dag.Builder.add_vertex b and y = Dag.Builder.add_vertex b in
        let s = Dag.Builder.add_vertex b in
        (x, y, s))
  in
  Array.iter
    (fun (x, y, s) ->
      Dag.Builder.add_edge b x s;
      Dag.Builder.add_edge b y s)
    pairs;
  let g = Dag.Builder.build b in
  let order = Array.concat (Array.to_list (Array.map (fun (x, y, s) -> [| x; y; s |]) pairs)) in
  let r = Simulator.simulate g ~order ~m:3 in
  Alcotest.(check int) "no io" 0 r.Simulator.io

let test_exact_io_small_case () =
  (* Hand-checkable: diamond 0->(1,2)->3 with M=2.
     t0: 0 computed (resident {0}).
     t1: 1 computed (resident {0,1}).
     t2: needs 0 and slot for 2: evict 1 (still needed -> write). resident {0,2}.
     t3: needs 1 (read) and 2; 0 dead: evict 0 free; read 1; resident {2,1};
         slot for 3: 3 is a sink. evict... need a slot: evict nothing? m=2,
         resident={2,1} both operands pinned -> no free slot! So M=2 raises;
         use M=3: no eviction of needed values at all -> io = 0. *)
  let g = Dag.of_edges ~n:4 [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  let r = simulate g ~m:3 in
  Alcotest.(check int) "diamond M=3 zero io" 0 r.Simulator.io;
  (* With M=2 the sum vertex needs 2 operands + result slot... but the
     result of a sink doesn't occupy a slot in our model only after
     computation; the simulator still demands in_degree + 1 <= m. *)
  match simulate g ~m:2 with
  | exception Invalid_argument _ -> ()
  | r2 -> Alcotest.(check bool) "m=2 ok if accepted" true (r2.Simulator.io >= 0)

let test_best_upper_bound_picks_min () =
  let g = Graphio_workloads.Fft.build 5 in
  let best = Simulator.best_upper_bound g ~m:4 in
  let natural = Simulator.simulate g ~order:(Topo.natural g) ~m:4 in
  Alcotest.(check bool) "best <= natural" true
    (best.Simulator.io <= natural.Simulator.io)

(* ------------------------------------------------------------------ *)
(* Schedule search                                                     *)
(* ------------------------------------------------------------------ *)

let test_search_never_worse () =
  List.iter
    (fun (g, m) ->
      let o = Schedule_search.optimize ~budget:60 g ~m in
      Alcotest.(check bool) "never worse than start" true
        (o.Schedule_search.result.Simulator.io <= o.Schedule_search.initial.Simulator.io);
      Alcotest.(check bool) "order valid" true (Topo.is_valid g o.Schedule_search.order);
      (* the reported io matches re-simulating the reported order under
         Belady... the best order seen is kept even if a later move was
         reverted, so just check io consistency bounds *)
      let re = Simulator.simulate g ~order:o.Schedule_search.order ~m in
      Alcotest.(check int) "reported io reproducible" o.Schedule_search.result.Simulator.io
        re.Simulator.io)
    [
      (Graphio_workloads.Fft.build 5, 4);
      (Graphio_workloads.Bhk.build 6, 8);
      (Graphio_workloads.Matmul.build 4, 8);
    ]

let test_search_deterministic () =
  let g = Graphio_workloads.Fft.build 5 in
  let a = Schedule_search.optimize ~seed:5 ~budget:40 g ~m:4 in
  let b = Schedule_search.optimize ~seed:5 ~budget:40 g ~m:4 in
  Alcotest.(check int) "same io" a.Schedule_search.result.Simulator.io
    b.Schedule_search.result.Simulator.io;
  Alcotest.(check bool) "same order" true
    (a.Schedule_search.order = b.Schedule_search.order)

let test_search_respects_budget () =
  let g = Graphio_workloads.Fft.build 4 in
  let o = Schedule_search.optimize ~budget:25 g ~m:4 in
  Alcotest.(check bool) "evaluations bounded" true
    (o.Schedule_search.evaluations <= 25 + 4)

let test_search_tiny_graph () =
  let g = Graphio_graph.Dag.of_edges ~n:1 [] in
  let o = Schedule_search.optimize g ~m:2 in
  Alcotest.(check int) "no io" 0 o.Schedule_search.result.Simulator.io

(* ------------------------------------------------------------------ *)
(* Spectral (Fiedler) order                                            *)
(* ------------------------------------------------------------------ *)

let test_fiedler_order_valid () =
  List.iter
    (fun g ->
      Alcotest.(check bool) "topological" true
        (Topo.is_valid g (Spectral_order.fiedler_order g)))
    [
      Graphio_workloads.Fft.build 5;
      Graphio_workloads.Bhk.build 6;
      Graphio_workloads.Matmul.build 4;
      Er.gnp ~n:40 ~p:0.2 ~seed:3;
      Dag.of_edges ~n:1 [];
      Dag.of_edges ~n:2 [ (0, 1) ];
    ]

let test_fiedler_upper_bound_sound () =
  (* just a schedule: its I/O is an upper bound, finite and >= 0 *)
  let g = Graphio_workloads.Fft.build 6 in
  let r = Spectral_order.upper_bound g ~m:4 in
  Alcotest.(check bool) "well-formed" true
    (r.Simulator.io = r.Simulator.reads + r.Simulator.writes && r.Simulator.io >= 0)

(* ------------------------------------------------------------------ *)
(* Parallel simulator                                                  *)
(* ------------------------------------------------------------------ *)

let test_parallel_p1_matches_sequential () =
  (* One processor: identical semantics to the sequential simulator. *)
  List.iter
    (fun (g, m) ->
      let order = Topo.natural g in
      let seq = Simulator.simulate g ~order ~m in
      let par =
        Parallel_sim.simulate g
          ~assignment:(Array.make (Dag.n_vertices g) 0)
          ~order ~p:1 ~m
      in
      Alcotest.(check int) "same io" seq.Simulator.io par.Parallel_sim.max_io;
      Alcotest.(check int) "no publishes" 0 par.Parallel_sim.publish_writes)
    [
      (Graphio_workloads.Fft.build 5, 4);
      (Graphio_workloads.Bhk.build 6, 8);
      (Graphio_workloads.Matmul.build 4, 8);
    ]

let test_parallel_communication_counted () =
  (* Chain split across 2 processors alternately: every edge crosses, so
     every intermediate value is published and read. *)
  let n = 10 in
  let g = Dag.of_edges ~n (List.init (n - 1) (fun i -> (i, i + 1))) in
  let order = Topo.natural g in
  let assignment = Parallel_sim.round_robin_assignment g ~order ~p:2 in
  let r = Parallel_sim.simulate g ~assignment ~order ~p:2 ~m:4 in
  Alcotest.(check int) "publish per crossing edge" (n - 1) r.Parallel_sim.publish_writes;
  Alcotest.(check bool) "reads happened" true (r.Parallel_sim.total_io >= 2 * (n - 1))

let test_parallel_block_assignment_cheaper () =
  (* Contiguous blocks communicate less than round-robin on a chain. *)
  let n = 40 in
  let g = Dag.of_edges ~n (List.init (n - 1) (fun i -> (i, i + 1))) in
  let order = Topo.natural g in
  let block = Parallel_sim.block_assignment g ~order ~p:4 in
  let rr = Parallel_sim.round_robin_assignment g ~order ~p:4 in
  let rb = Parallel_sim.simulate g ~assignment:block ~order ~p:4 ~m:4 in
  let rr_res = Parallel_sim.simulate g ~assignment:rr ~order ~p:4 ~m:4 in
  Alcotest.(check bool) "blocks cheaper" true
    (rb.Parallel_sim.total_io < rr_res.Parallel_sim.total_io);
  Alcotest.(check int) "3 crossing edges for 4 blocks" 3 rb.Parallel_sim.publish_writes

let test_parallel_thm6_sandwich () =
  (* Theorem 6: for every parallel execution, the busiest processor's I/O
     is at least the parallel spectral bound. *)
  List.iter
    (fun (g, p, m) ->
      let order = Topo.natural g in
      let bound =
        (Graphio_core.Solver.bound ~p g ~m).Graphio_core.Solver.result
          .Graphio_core.Spectral_bound.bound
      in
      List.iter
        (fun assignment ->
          let r = Parallel_sim.simulate g ~assignment ~order ~p ~m in
          Alcotest.(check bool) "thm6 sandwich" true
            (bound <= float_of_int r.Parallel_sim.max_io +. 1e-6))
        [
          Parallel_sim.block_assignment g ~order ~p;
          Parallel_sim.round_robin_assignment g ~order ~p;
        ])
    [
      (Graphio_workloads.Fft.build 6, 2, 4);
      (Graphio_workloads.Fft.build 6, 4, 4);
      (Graphio_workloads.Bhk.build 8, 2, 16);
    ]

let test_parallel_validation () =
  let g = Dag.of_edges ~n:2 [ (0, 1) ] in
  (match
     Parallel_sim.simulate g ~assignment:[| 0; 5 |] ~order:[| 0; 1 |] ~p:2 ~m:4
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "processor out of range accepted");
  match Parallel_sim.simulate g ~assignment:[| 0 |] ~order:[| 0; 1 |] ~p:1 ~m:4 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad assignment length accepted"

(* ------------------------------------------------------------------ *)
(* Exact optimal pebbling                                              *)
(* ------------------------------------------------------------------ *)

let test_exact_chain_zero () =
  let g = Dag.of_edges ~n:10 (List.init 9 (fun i -> (i, i + 1))) in
  Alcotest.(check int) "chain" 0 (Exact.optimal_io g ~m:2)

let test_exact_diamond () =
  let g = Dag.of_edges ~n:4 [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  Alcotest.(check int) "diamond M=3" 0 (Exact.optimal_io g ~m:3)

let test_exact_hub_case () =
  (* The hand-analyzed two-hub case: optimum is one write + one read. *)
  let b = Dag.Builder.create () in
  let h1 = Dag.Builder.add_vertex b in
  let h2 = Dag.Builder.add_vertex b in
  let xs = Array.init 5 (fun _ -> Dag.Builder.add_vertex b) in
  for i = 0 to 3 do
    Dag.Builder.add_edge b xs.(i) xs.(i + 1)
  done;
  let f1 = Dag.Builder.add_vertex b in
  Dag.Builder.add_edge b h1 f1;
  Dag.Builder.add_edge b xs.(4) f1;
  let f2 = Dag.Builder.add_vertex b in
  Dag.Builder.add_edge b h2 f2;
  Dag.Builder.add_edge b f1 f2;
  let g = Dag.Builder.build b in
  (* With M=3 the hubs + chain cannot coexist... but the optimal schedule
     is free to delay computing the hubs!  h2 can be computed right
     before f2, h1 right before the chain ends: run the chain first, then
     h1, f1, h2, f2 — never exceeding 3 live values.  The optimum is 0,
     strictly better than the natural-order simulation (2). *)
  Alcotest.(check int) "optimal" 0 (Exact.optimal_io g ~m:3);
  let sim = Simulator.simulate g ~order:(Topo.natural g) ~m:3 in
  Alcotest.(check bool) "simulator pays for the bad order" true (sim.Simulator.io > 0)

let test_exact_forced_io () =
  (* Complete bipartite dependence: a, b, c all feed x, y, z (each of x,y,z
     needs all of a,b,c) with M=4: working set must hold 3 operands + the
     current result; with every source needed until the last sink there is
     no spill... check against the search rather than hand analysis, and
     sandwich with bounds. *)
  let b = Dag.Builder.create () in
  let srcs = Array.init 3 (fun _ -> Dag.Builder.add_vertex b) in
  let sinks = Array.init 3 (fun _ -> Dag.Builder.add_vertex b) in
  Array.iter
    (fun s -> Array.iter (fun t -> Dag.Builder.add_edge b s t) sinks)
    srcs;
  let g = Dag.Builder.build b in
  let exact = Exact.optimal_io g ~m:4 in
  Alcotest.(check int) "all operands fit" 0 exact

let test_exact_below_simulator () =
  (* J* <= any feasible schedule's I/O. *)
  let rng = Graphio_la.Rng.create 7 in
  for trial = 1 to 15 do
    let n = 6 + Graphio_la.Rng.int rng 7 in
    let g = Er.gnp ~n ~p:0.3 ~seed:(trial * 53) in
    let m = max 3 (Simulator.min_feasible_m g) in
    let exact = Exact.optimal_io g ~m in
    let sim = (Simulator.best_upper_bound g ~m).Simulator.io in
    Alcotest.(check bool)
      (Printf.sprintf "trial %d exact<=sim" trial)
      true (exact <= sim)
  done

let test_exact_dominates_lower_bounds () =
  (* The headline property: every lower bound in the repository is below
     the true optimum. *)
  let rng = Graphio_la.Rng.create 21 in
  for trial = 1 to 10 do
    let n = 6 + Graphio_la.Rng.int rng 6 in
    let g = Er.gnp ~n ~p:0.35 ~seed:(trial * 97) in
    let m = max 3 (Simulator.min_feasible_m g) in
    let exact = float_of_int (Exact.optimal_io g ~m) in
    let spectral =
      (Graphio_core.Solver.bound g ~m).Graphio_core.Solver.result
        .Graphio_core.Spectral_bound.bound
    in
    let mincut = float_of_int (Graphio_flow.Convex_mincut.bound g ~m) in
    Alcotest.(check bool) "spectral <= J*" true (spectral <= exact +. 1e-9);
    Alcotest.(check bool) "mincut <= J*" true (mincut <= exact +. 1e-9)
  done

let test_exact_fft_small () =
  (* 4-point FFT (12 vertices), M = 3: exact optimum sandwiched. *)
  let g = Graphio_workloads.Fft.build 2 in
  let m = 3 in
  let exact = Exact.optimal_io g ~m in
  let sim = (Simulator.best_upper_bound g ~m).Simulator.io in
  Alcotest.(check bool) "positive at tiny memory" true (exact > 0);
  Alcotest.(check bool) "below simulated" true (exact <= sim)

let test_exact_guards () =
  let g = Er.gnp ~n:25 ~p:0.2 ~seed:1 in
  (match Exact.optimal_io g ~m:8 with
  | exception Exact.Too_large _ -> ()
  | _ -> Alcotest.fail "expected Too_large for 25 vertices");
  let g4 = Graphio_workloads.Matmul.build 2 in
  match Exact.optimal_io g4 ~m:2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection of infeasible m"

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let er_gen =
  QCheck2.Gen.(
    let* n = int_range 2 40 in
    let* seed = int_range 0 10000 in
    return (Er.gnp ~n ~p:0.15 ~seed))

let prop_io_nonnegative_and_consistent =
  QCheck2.Test.make ~name:"io = reads + writes >= 0" ~count:50 er_gen (fun g ->
      let m = max 4 (Simulator.min_feasible_m g) in
      let r = simulate g ~m in
      r.Simulator.io = r.Simulator.reads + r.Simulator.writes
      && r.Simulator.reads >= 0 && r.Simulator.writes >= 0)

let prop_peak_bounded_by_m =
  QCheck2.Test.make ~name:"peak occupancy <= m" ~count:50 er_gen (fun g ->
      let m = max 4 (Simulator.min_feasible_m g) in
      let r = simulate g ~m in
      r.Simulator.peak_resident <= m)

let prop_order_independent_when_memory_large =
  QCheck2.Test.make ~name:"any order gives zero io with huge memory" ~count:30 er_gen
    (fun g ->
      let m = Dag.n_vertices g + 2 in
      let r1 = Simulator.simulate g ~order:(Topo.kahn g) ~m in
      let r2 = Simulator.simulate g ~order:(Topo.dfs g) ~m in
      r1.Simulator.io = 0 && r2.Simulator.io = 0)

let prop_reads_bounded =
  QCheck2.Test.make ~name:"reads bounded by uses" ~count:40 er_gen (fun g ->
      let m = max 4 (Simulator.min_feasible_m g) in
      let r = simulate g ~m in
      (* each edge can force at most one read *)
      r.Simulator.reads <= Dag.n_edges g)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_io_nonnegative_and_consistent;
      prop_peak_bounded_by_m;
      prop_order_independent_when_memory_large;
      prop_reads_bounded;
    ]

let () =
  Alcotest.run "graphio_pebble"
    [
      ( "semantics",
        [
          Alcotest.test_case "fits in memory" `Quick test_inner_product_fits_in_memory;
          Alcotest.test_case "chain never spills" `Quick test_chain_never_spills;
          Alcotest.test_case "long-lived values spill" `Quick test_long_lived_values_force_spills;
          Alcotest.test_case "min feasible m" `Quick test_min_feasible_m;
          Alcotest.test_case "rejects small m" `Quick test_rejects_small_m;
          Alcotest.test_case "rejects invalid order" `Quick test_rejects_invalid_order;
          Alcotest.test_case "io monotone in m" `Quick test_io_monotone_in_m;
          Alcotest.test_case "big memory zero io" `Quick test_big_memory_zero_io;
          Alcotest.test_case "writes bounded" `Quick test_writes_bounded_by_n;
          Alcotest.test_case "reads imply writes" `Quick test_reads_imply_earlier_write;
          Alcotest.test_case "belady beats lru" `Quick test_belady_no_worse_than_lru;
          Alcotest.test_case "sinks not spilled" `Quick test_sink_values_not_spilled;
          Alcotest.test_case "diamond exact" `Quick test_exact_io_small_case;
          Alcotest.test_case "best upper bound" `Quick test_best_upper_bound_picks_min;
        ] );
      ( "spectral-order",
        [
          Alcotest.test_case "valid topological order" `Quick test_fiedler_order_valid;
          Alcotest.test_case "upper bound sound" `Quick test_fiedler_upper_bound_sound;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "p=1 matches sequential" `Quick
            test_parallel_p1_matches_sequential;
          Alcotest.test_case "communication counted" `Quick
            test_parallel_communication_counted;
          Alcotest.test_case "blocks beat round-robin" `Quick
            test_parallel_block_assignment_cheaper;
          Alcotest.test_case "theorem 6 sandwich" `Quick test_parallel_thm6_sandwich;
          Alcotest.test_case "validation" `Quick test_parallel_validation;
        ] );
      ( "exact",
        [
          Alcotest.test_case "chain zero" `Quick test_exact_chain_zero;
          Alcotest.test_case "diamond" `Quick test_exact_diamond;
          Alcotest.test_case "hub case beats bad order" `Quick test_exact_hub_case;
          Alcotest.test_case "bipartite fits" `Quick test_exact_forced_io;
          Alcotest.test_case "below simulator" `Quick test_exact_below_simulator;
          Alcotest.test_case "dominates lower bounds" `Quick test_exact_dominates_lower_bounds;
          Alcotest.test_case "fft small sandwich" `Quick test_exact_fft_small;
          Alcotest.test_case "guards" `Quick test_exact_guards;
        ] );
      ( "schedule-search",
        [
          Alcotest.test_case "never worse" `Quick test_search_never_worse;
          Alcotest.test_case "deterministic" `Quick test_search_deterministic;
          Alcotest.test_case "respects budget" `Quick test_search_respects_budget;
          Alcotest.test_case "tiny graph" `Quick test_search_tiny_graph;
        ] );
      ("properties", props);
    ]
