(* Tests for graphio_par and its consumers: the pool primitives, the
   differential guarantee that pooled linear algebra is bitwise-identical
   to sequential, closed-form spectral oracles through the iterative
   eigensolvers, and the determinism of Solver.bound_batch. *)

open Graphio_par
open Graphio_graph
open Graphio_workloads
open Graphio_core

(* ------------------------------------------------------------------ *)
(* Pool primitives                                                     *)
(* ------------------------------------------------------------------ *)

let test_parallel_for_each_index_once () =
  List.iter
    (fun size ->
      Pool.with_pool ~size (fun pool ->
          let n = 10_000 in
          let hits = Array.make n 0 in
          (* per-index writes race-free: each index is visited exactly once *)
          Pool.parallel_for pool ~lo:0 ~hi:n (fun i -> hits.(i) <- hits.(i) + 1);
          Alcotest.(check bool)
            (Printf.sprintf "size %d: every index exactly once" size)
            true
            (Array.for_all (( = ) 1) hits)))
    [ 1; 2; 4 ]

let test_parallel_for_empty_and_offset () =
  Pool.with_pool ~size:2 (fun pool ->
      let ran = ref false in
      Pool.parallel_for pool ~lo:5 ~hi:5 (fun _ -> ran := true);
      Alcotest.(check bool) "empty range runs nothing" false !ran;
      let seen = Array.make 20 false in
      Pool.parallel_for pool ~lo:7 ~hi:19 (fun i -> seen.(i) <- true);
      Alcotest.(check bool) "offset range covers [7,19)" true
        (Array.for_all Fun.id (Array.sub seen 7 12))
      ;
      Alcotest.(check bool) "nothing below lo" false seen.(6))

let test_parallel_for_chunk_override () =
  Pool.with_pool ~size:3 (fun pool ->
      List.iter
        (fun chunk ->
          let n = 1000 in
          let hits = Array.make n 0 in
          Pool.parallel_for ~chunk pool ~lo:0 ~hi:n (fun i ->
              hits.(i) <- hits.(i) + 1);
          Alcotest.(check bool)
            (Printf.sprintf "chunk %d correct" chunk)
            true
            (Array.for_all (( = ) 1) hits))
        [ 1; 3; 17; 64; 5000 ])

let test_parallel_for_exception () =
  Pool.with_pool ~size:4 (fun pool ->
      Alcotest.check_raises "body exception reaches the caller"
        (Failure "boom 137") (fun () ->
          Pool.parallel_for ~chunk:8 pool ~lo:0 ~hi:1000 (fun i ->
              if i = 137 then failwith "boom 137"));
      (* the pool is still usable afterwards *)
      let total =
        Pool.map_reduce pool ~lo:0 ~hi:100 ~map:Fun.id ~reduce:( + ) ~init:0
      in
      Alcotest.(check int) "pool alive after exception" 4950 total)

let test_nested_loops_no_deadlock () =
  Pool.with_pool ~size:2 (fun pool ->
      let grid = Array.make_matrix 16 16 0 in
      Pool.parallel_for ~chunk:1 pool ~lo:0 ~hi:16 (fun i ->
          Pool.parallel_for ~chunk:1 pool ~lo:0 ~hi:16 (fun j ->
              grid.(i).(j) <- grid.(i).(j) + 1));
      Alcotest.(check bool) "nested loops cover the grid" true
        (Array.for_all (Array.for_all (( = ) 1)) grid))

let test_map_reduce_matches_sequential () =
  (* FP summation: same chunking => same partials => bitwise-equal result,
     independent of pool size. *)
  let n = 4097 in
  let xs = Array.init n (fun i -> sin (float_of_int i) *. 1e3) in
  List.iter
    (fun chunk ->
      let seq = ref None in
      List.iter
        (fun size ->
          let s =
            Pool.with_pool ~size (fun pool ->
                Pool.map_reduce ~chunk pool ~lo:0 ~hi:n
                  ~map:(fun i -> xs.(i))
                  ~reduce:( +. ) ~init:0.0)
          in
          match !seq with
          | None -> seq := Some s
          | Some s0 ->
              Alcotest.(check bool)
                (Printf.sprintf "chunk %d size %d bitwise equal" chunk size)
                true
                (Int64.equal (Int64.bits_of_float s0) (Int64.bits_of_float s)))
        [ 1; 2; 4 ])
    [ 1; 3; 17; 64 ]

let test_run_all_order_and_exception () =
  Pool.with_pool ~size:3 (fun pool ->
      let r = Pool.run_all pool (Array.init 10 (fun i () -> i * i)) in
      Alcotest.(check (array int)) "results in job order"
        (Array.init 10 (fun i -> i * i))
        r;
      Alcotest.check_raises "job exception propagates" (Failure "job 3")
        (fun () ->
          ignore
            (Pool.run_all pool
               (Array.init 5 (fun i () -> if i = 3 then failwith "job 3")))))

let test_shutdown_rejects_use () =
  let pool = Pool.create ~size:2 () in
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *);
  Alcotest.check_raises "use after shutdown"
    (Invalid_argument "Pool: used after shutdown") (fun () ->
      Pool.parallel_for pool ~lo:0 ~hi:10 ignore)

let test_create_validates_size () =
  Alcotest.check_raises "size 0 rejected"
    (Invalid_argument "Pool.create: size must be >= 1") (fun () ->
      ignore (Pool.create ~size:0 ()));
  Alcotest.(check bool) "default size positive" true (Pool.default_size () >= 1)

(* ------------------------------------------------------------------ *)
(* Differential: pooled linear algebra is bitwise sequential           *)
(* ------------------------------------------------------------------ *)

let bits_equal a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
       a b

let csr_gen =
  QCheck2.Gen.(
    int_range 1 60 >>= fun n ->
    list_size (int_range 0 (4 * n))
      (triple (int_range 0 (n - 1)) (int_range 0 (n - 1))
         (float_range (-10.0) 10.0))
    >>= fun entries ->
    array_size (return n) (float_range (-5.0) 5.0) >>= fun x ->
    return (n, entries, x))

let prop_matvec_differential =
  QCheck2.Test.make ~name:"pooled CSR matvec is bitwise sequential" ~count:80
    csr_gen (fun (n, entries, x) ->
      let m = Graphio_la.Csr.of_triplets ~rows:n ~cols:n entries in
      let reference = Graphio_la.Csr.matvec m x in
      List.for_all
        (fun size ->
          Pool.with_pool ~size (fun pool ->
              bits_equal reference (Graphio_la.Csr.matvec ~pool m x)))
        [ 1; 2; Pool.default_size () ])

let prop_bound_differential =
  (* the full pipeline through the iterative eigensolver: identical bound
     and eigenvalues with and without a pool *)
  QCheck2.Test.make ~name:"Solver.bound via pool is bitwise sequential"
    ~count:8
    QCheck2.Gen.(pair (int_range 30 60) (int_range 1 1000))
    (fun (n, seed) ->
      let g = Er.gnp ~n ~p:0.15 ~seed in
      let reference =
        Solver.bound ~h:10 ~dense_threshold:0 ~closed_form:false g ~m:4
      in
      Pool.with_pool ~size:2 (fun pool ->
          let pooled =
            Solver.bound ~h:10 ~dense_threshold:0 ~closed_form:false ~pool g
              ~m:4
          in
          reference.Solver.result = pooled.Solver.result
          && bits_equal reference.Solver.eigenvalues pooled.Solver.eigenvalues))

(* ------------------------------------------------------------------ *)
(* Oracles: iterative spectra vs closed forms                          *)
(* ------------------------------------------------------------------ *)

let check_against_closed_form ~msg ~tol closed values =
  Alcotest.(check int) (msg ^ ": count") (Array.length closed) (Array.length values);
  Array.iteri
    (fun i v ->
      if Float.abs (v -. closed.(i)) > tol then
        Alcotest.failf "%s: eigenvalue %d: %.8g vs closed form %.8g" msg i v
          closed.(i))
    values

(* Eigen.smallest forced onto the Chebyshev-filtered sparse backend
   (dense_threshold 0) against the Section 5 closed forms, sequentially and
   through a pool.  h stops at a multiplicity-cluster boundary so the block
   solver can lock whole eigenspaces. *)
let filtered_oracle ~msg ~lap ~closed ~h () =
  let seq = Graphio_la.Eigen.smallest ~h ~dense_threshold:0 ~seed:7 lap in
  Alcotest.(check bool) (msg ^ ": sparse backend") true
    (seq.Graphio_la.Eigen.backend = Graphio_la.Eigen.Sparse_filtered);
  (match seq.Graphio_la.Eigen.stats with
  | Some s -> Alcotest.(check int) (msg ^ ": no padding") 0 s.Graphio_la.Eigen.padded
  | None -> Alcotest.fail "iterative path must report stats");
  check_against_closed_form ~msg:(msg ^ " (sequential)") ~tol:1e-4 closed
    seq.Graphio_la.Eigen.values;
  Pool.with_pool ~size:2 (fun pool ->
      let par = Graphio_la.Eigen.smallest ~h ~dense_threshold:0 ~seed:7 ~pool lap in
      Alcotest.(check bool) (msg ^ ": pooled run bitwise equal") true
        (bits_equal seq.Graphio_la.Eigen.values par.Graphio_la.Eigen.values))

let test_hypercube_oracle () =
  let l = 7 in
  let g = Bhk.build l in
  (* the undirected support of BHK_l is the hypercube Q_l: L eigenvalue 2i
     with multiplicity C(l,i); h = 1 + l covers the {0} and {2} clusters *)
  let closed =
    Graphio_spectra.Multiset.smallest (Graphio_spectra.Hypercube_spectra.spectrum l)
      ~h:(1 + l)
  in
  filtered_oracle ~msg:"hypercube l=7" ~lap:(Laplacian.standard g) ~closed
    ~h:(1 + l) ()

let test_butterfly_oracle () =
  let k = 4 in
  let g = Fft.build k in
  let h = 12 in
  let closed =
    Graphio_spectra.Multiset.smallest (Graphio_spectra.Butterfly_spectra.spectrum k)
      ~h
  in
  filtered_oracle ~msg:"butterfly k=4" ~lap:(Laplacian.standard g) ~closed ~h ()

let test_lanczos_oracle () =
  let k = 3 in
  let g = Fft.build k in
  let h = 6 in
  let closed =
    Graphio_spectra.Multiset.smallest (Graphio_spectra.Butterfly_spectra.spectrum k)
      ~h
  in
  let lap = Laplacian.standard g in
  let seq = Graphio_la.Lanczos.smallest_csr ~seed:5 lap ~h in
  Alcotest.(check bool) "lanczos converged" true seq.Graphio_la.Lanczos.converged;
  check_against_closed_form ~msg:"lanczos butterfly k=3" ~tol:1e-5 closed
    seq.Graphio_la.Lanczos.values;
  Pool.with_pool ~size:2 (fun pool ->
      let par = Graphio_la.Lanczos.smallest_csr ~seed:5 ~pool lap ~h in
      Alcotest.(check bool) "pooled lanczos bitwise equal" true
        (bits_equal seq.Graphio_la.Lanczos.values par.Graphio_la.Lanczos.values))

(* ------------------------------------------------------------------ *)
(* bound_batch determinism and caching                                 *)
(* ------------------------------------------------------------------ *)

let batch_jobs () =
  let fft3 = Fft.build 3 and fft4 = Fft.build 4 and bhk4 = Bhk.build 4 in
  [|
    Solver.job fft3 ~m:4;
    Solver.job fft3 ~m:8 (* cache hit: same graph, method, h *);
    Solver.job ~method_:Solver.Standard fft3 ~m:4;
    Solver.job fft4 ~m:8;
    Solver.job ~p:4 fft4 ~m:8 (* cache hit: p only affects maximization *);
    Solver.job bhk4 ~m:4;
    Solver.job ~method_:Solver.Standard bhk4 ~m:4;
    Solver.job fft3 ~m:16 (* third user of the first spectrum *);
  |]

(* dense_threshold 24 sends bhk4 (n=16) dense and the ffts (n>=32) through
   the iterative path, covering both backends in one batch *)
(* the explicit disabled cache keeps these in-batch-dedup assertions
   hermetic even when GRAPHIO_CACHE_DIR is exported; closed_form:false keeps
   the recognized fft/bhk jobs on the numeric eigensolve path these
   dedup/determinism assertions exist to exercise *)
let run_batch ?pool jobs =
  Solver.bound_batch ~cache:Graphio_cache.Spectrum.disabled ?pool ~h:8
    ~dense_threshold:24 ~closed_form:false jobs

let same_outcome msg (a : Solver.batch_result) (b : Solver.batch_result) =
  Alcotest.(check bool) (msg ^ ": same result") true
    (a.Solver.outcome.Solver.result = b.Solver.outcome.Solver.result);
  Alcotest.(check bool) (msg ^ ": same backend") true
    (a.Solver.outcome.Solver.backend = b.Solver.outcome.Solver.backend);
  Alcotest.(check bool) (msg ^ ": bitwise eigenvalues") true
    (bits_equal a.Solver.outcome.Solver.eigenvalues
       b.Solver.outcome.Solver.eigenvalues)

let test_batch_pool_independent () =
  let jobs = batch_jobs () in
  let baseline = run_batch jobs in
  List.iter
    (fun size ->
      let pooled = Pool.with_pool ~size (fun pool -> run_batch ~pool jobs) in
      Array.iteri
        (fun i r ->
          same_outcome (Printf.sprintf "job %d, pool size %d" i size)
            baseline.(i) r)
        pooled)
    [ 1; 2; 4 ]

let test_batch_order_independent () =
  let jobs = batch_jobs () in
  let baseline = run_batch jobs in
  let n = Array.length jobs in
  (* a fixed derangement-ish permutation, no randomness *)
  let perm = Array.init n (fun i -> (i + 3) mod n) in
  let shuffled = Array.map (fun i -> jobs.(i)) perm in
  let results = Pool.with_pool ~size:2 (fun pool -> run_batch ~pool shuffled) in
  Array.iteri
    (fun pos i ->
      same_outcome (Printf.sprintf "job %d shuffled to %d" i pos) baseline.(i)
        results.(pos))
    perm

let test_batch_cache_shares_physically () =
  let jobs = batch_jobs () in
  let results = run_batch jobs in
  let ev i = results.(i).Solver.outcome.Solver.eigenvalues in
  Alcotest.(check bool) "jobs 0/1 share one spectrum array" true (ev 0 == ev 1);
  Alcotest.(check bool) "jobs 0/7 share one spectrum array" true (ev 0 == ev 7);
  Alcotest.(check bool) "jobs 3/4 share one spectrum array" true (ev 3 == ev 4);
  Alcotest.(check bool) "different method does not share" true (ev 0 != ev 2);
  Alcotest.(check bool) "first occurrence is the miss" true
    ((not results.(0).Solver.cache_hit)
    && results.(1).Solver.cache_hit
    && results.(4).Solver.cache_hit
    && results.(7).Solver.cache_hit);
  (* independently-built structurally-equal graph also shares (fingerprint
     keying, not physical graph identity) *)
  let again = Solver.job (Fft.build 3) ~m:4 in
  let r2 = run_batch [| jobs.(0); again |] in
  Alcotest.(check bool) "rebuilt graph hits the cache" true
    r2.(1).Solver.cache_hit

let test_batch_matches_single_bounds () =
  let jobs = batch_jobs () in
  let results = Pool.with_pool ~size:2 (fun pool -> run_batch ~pool jobs) in
  Array.iter
    (fun r ->
      let j = r.Solver.job in
      let single =
        Solver.bound ~method_:j.Solver.method_ ~h:8 ~dense_threshold:24
          ~closed_form:false ?p:j.Solver.p j.Solver.dag ~m:j.Solver.m
      in
      Alcotest.(check bool) "batch result equals Solver.bound" true
        (single.Solver.result = r.Solver.outcome.Solver.result))
    results

let test_fingerprint () =
  let a = Fft.build 4 and b = Fft.build 4 and c = Fft.build 5 in
  Alcotest.(check bool) "equal graphs hash equal" true
    (Int64.equal (Dag.fingerprint a) (Dag.fingerprint b));
  Alcotest.(check bool) "different graphs hash different" false
    (Int64.equal (Dag.fingerprint a) (Dag.fingerprint c));
  (* edge direction matters *)
  let g1 = Dag.of_edges ~n:2 [ (0, 1) ] and g2 = Dag.of_edges ~n:2 [ (1, 0) ] in
  Alcotest.(check bool) "reversed edge hashes different" false
    (Int64.equal (Dag.fingerprint g1) (Dag.fingerprint g2))

(* ------------------------------------------------------------------ *)

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_matvec_differential; prop_bound_differential ]

let () =
  Alcotest.run "graphio_par"
    [
      ( "pool",
        [
          Alcotest.test_case "each index exactly once" `Quick
            test_parallel_for_each_index_once;
          Alcotest.test_case "empty and offset ranges" `Quick
            test_parallel_for_empty_and_offset;
          Alcotest.test_case "chunk override" `Quick test_parallel_for_chunk_override;
          Alcotest.test_case "exception propagation" `Quick
            test_parallel_for_exception;
          Alcotest.test_case "nested loops no deadlock" `Quick
            test_nested_loops_no_deadlock;
          Alcotest.test_case "map_reduce bitwise across sizes" `Quick
            test_map_reduce_matches_sequential;
          Alcotest.test_case "run_all order + exception" `Quick
            test_run_all_order_and_exception;
          Alcotest.test_case "shutdown rejects use" `Quick test_shutdown_rejects_use;
          Alcotest.test_case "create validates size" `Quick test_create_validates_size;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "hypercube closed form (filtered)" `Quick
            test_hypercube_oracle;
          Alcotest.test_case "butterfly closed form (filtered)" `Quick
            test_butterfly_oracle;
          Alcotest.test_case "butterfly closed form (lanczos)" `Quick
            test_lanczos_oracle;
        ] );
      ( "batch",
        [
          Alcotest.test_case "pool-size independent" `Quick
            test_batch_pool_independent;
          Alcotest.test_case "order independent" `Quick test_batch_order_independent;
          Alcotest.test_case "cache shares physically" `Quick
            test_batch_cache_shares_physically;
          Alcotest.test_case "matches Solver.bound" `Quick
            test_batch_matches_single_bounds;
          Alcotest.test_case "dag fingerprint" `Quick test_fingerprint;
        ] );
      ("properties", props);
    ]
