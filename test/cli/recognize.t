Recognized graphs are served from the closed-form spectrum tier; the
escape hatch --no-closed-form forces the numeric eigensolver.  The bound
line must be identical either way:

  $ ../../bin/graphio.exe bound -g fft:6 -m 4 | tail -1 > closed.txt
  $ ../../bin/graphio.exe bound -g fft:6 -m 4 --no-closed-form | tail -1 > numeric.txt
  $ diff closed.txt numeric.txt

Only the spectrum provenance line differs:

  $ ../../bin/graphio.exe bound -g fft:6 -m 4 | grep spectrum:
  spectrum: closed form, recognized butterfly B_6 (h=100)
  $ ../../bin/graphio.exe bound -g fft:6 -m 4 --no-closed-form | grep "eigen backend:"
  eigen backend: dense Householder+QL (h=100)

Every recognized family dispatches closed-form under the standard method:

  $ ../../bin/graphio.exe bound -g bhk:6 -m 8 --method standard | grep spectrum:
  spectrum: closed form, recognized hypercube Q_6 (h=64)
  $ ../../bin/graphio.exe bound -g path:40 -m 3 --method standard | grep spectrum:
  spectrum: closed form, recognized path P_40 (h=40)
  $ ../../bin/graphio.exe bound -g grid:5:9 -m 4 --method standard | grep spectrum:
  spectrum: closed form, recognized grid 5x9 (h=45)

The hypercube and grid have non-uniform out-degree, so the normalized
Laplacian has no exact closed form and those queries fall back to the
numeric tier:

  $ ../../bin/graphio.exe bound -g bhk:6 -m 8 | grep "eigen backend:"
  eigen backend: dense Householder+QL (h=64)

--metrics proves the dispatch: the closed-form run counts a hit and pays
zero eigensolver work, the numeric run pays a dense solve and no hit:

  $ ../../bin/graphio.exe bound -g fft:5 -m 4 --metrics 2>&1 >/dev/null \
  >   | grep -E "closed_form_hits|la.eigen.dense_solves|la.csr.matvecs"
  core.solver.closed_form_hits    1
  la.csr.matvecs                  0
  la.eigen.dense_solves           0
  $ ../../bin/graphio.exe bound -g fft:5 -m 4 --no-closed-form --metrics 2>&1 >/dev/null \
  >   | grep -E "closed_form_hits|la.eigen.dense_solves"
  core.solver.closed_form_hits    0
  la.eigen.dense_solves           1

An unrecognized graph never counts a hit, with or without the flag:

  $ ../../bin/graphio.exe bound -g strassen:2 -m 4 --metrics 2>&1 >/dev/null \
  >   | grep closed_form_hits
  core.solver.closed_form_hits    0
