The telemetry plane end-to-end: a served bound request is
reconstructable from its request id alone.  The server runs with a
structured event log and a Chrome span trace; the reply carries the
request id, the metrics op exposes live quantiles and a Prometheus
rendering, and graphio top renders a one-shot dashboard over the same
snapshot.

  $ unset GRAPHIO_CACHE_DIR
  $ ../../bin/graphio.exe serve --socket tel.sock -j 2 --dense-threshold 24 \
  >   --log events.ndjson --log-level debug --trace trace.json 2>/dev/null &

A bound request; the success reply carries the request id minted at
dispatch:

  $ printf '{"spec":"bhk:6","m":2,"method":"standard","id":1}\n' \
  >   | ../../bin/graphio.exe client --socket tel.sock > reply.json
  $ RID=$(sed -E 's/.*"rid":"([^"]+)".*/\1/' reply.json)
  $ echo "$RID" | sed -E 's/req-[0-9]+/req-N/'
  req-N

The metrics op answers without a restart: latency quantiles are
non-zero once a request has been served, and the same reply embeds a
Prometheus text rendering plus the full snapshot:

  $ printf '{"op":"metrics","id":"m1"}\n' \
  >   | ../../bin/graphio.exe client --socket tel.sock > metrics.json
  $ grep -c '"op":"metrics"' metrics.json
  1
  $ grep -q '"p50_s":0,' metrics.json || echo p50 nonzero
  p50 nonzero
  $ grep -q '"p99_s":0,' metrics.json || echo p99 nonzero
  p99 nonzero
  $ grep -o '# TYPE server_request_seconds histogram' metrics.json
  # TYPE server_request_seconds histogram
  $ grep -q 'server_request_seconds_bucket{le=' metrics.json && echo has buckets
  has buckets
  $ grep -q '+Inf' metrics.json && echo has +Inf bucket
  has +Inf bucket
  $ grep -o '"server.requests"' metrics.json | head -n 1
  "server.requests"

graphio top polls the same op and renders a dashboard; one iteration
with --no-clear is pipeline-friendly:

  $ ../../bin/graphio.exe top --socket tel.sock --iterations 1 --no-clear > top.out
  $ grep -c 'graphio top' top.out
  1
  $ grep -Eo '^(requests|latency|cache|solver|pool|gc)' top.out
  requests
  latency
  cache
  solver
  pool
  gc

Drain the server so the trace and log files are flushed on exit:

  $ printf '{"op":"shutdown"}\n' | ../../bin/graphio.exe client --socket tel.sock
  {"ok":true,"op":"shutdown"}
  $ wait

The request id from the reply indexes the event log: dispatch, the
solver's answer, and the reply record all carry it.

  $ grep '"rid":"'$RID'"' events.ndjson | grep -c '"event":"server.request"'
  1
  $ grep '"rid":"'$RID'"' events.ndjson | grep -c '"event":"solver.bound"'
  1
  $ grep '"rid":"'$RID'"' events.ndjson | grep -c '"event":"server.reply"'
  1

The same id lands in the span trace (Chrome trace args), so the
per-request timeline is replayable in a trace viewer:

  $ grep -q '"rid":"'$RID'"' trace.json && echo rid in trace
  rid in trace

The event log is NDJSON: every line parses as a JSON object with a
timestamp, level, and event name:

  $ grep -Ecv '^\{"ts_ns":[0-9]+,"level":"[a-z]+","event":"[a-z._]+"' events.ndjson
  0
  [1]
