The bound portfolio runs several lower-bound methods on one graph and
reports the max.  Human output grows a per-member block plus a winner
line; batch and serve replies grow a "methods" array and a "winner"
field.  Wall times are masked -- they are the only nondeterministic
field.

  $ unset GRAPHIO_CACHE_DIR

The full default portfolio.  bhk:8 is recognized (hypercube Q_8), so
the Theorem-5 family answers from the closed-form tier while the
normalized method -- the winner here -- runs the numeric pipeline:

  $ ../../bin/graphio.exe bound -g bhk:8 -m 2 --method portfolio
  graph: n=256 m_edges=1024 max_out_degree=8
  method: portfolio (max over member methods)
  methods:
    normalized: bound=86.7869 (best k = 16, numeric)
    standard: bound=32 (best k = 4, closed form hypercube Q_8)
    adjacency: bound=32 (best k = 4, closed form hypercube Q_8)
    signless: bound=32 (best k = 4, closed form hypercube Q_8)
    visit: bound=60 (counted-cut chains)
  winner: normalized
  lower bound on non-trivial I/O: 86.7869 (best k = 16, raw = 86.7869)

The member set is configurable; members are deduped and reported in
canonical order regardless of flag order:

  $ ../../bin/graphio.exe bound -g bhk:8 -m 2 --method portfolio --portfolio-methods visit,standard,standard
  graph: n=256 m_edges=1024 max_out_degree=8
  method: portfolio (max over member methods)
  methods:
    standard: bound=32 (best k = 4, closed form hypercube Q_8)
    visit: bound=60 (counted-cut chains)
  winner: visit
  lower bound on non-trivial I/O: 60 (best k = 0, raw = 60)

A single-method run is unchanged -- no methods block, no winner:

  $ ../../bin/graphio.exe bound -g bhk:8 -m 2 --method standard
  graph: n=256 m_edges=1024 max_out_degree=8
  method: standard (Theorem 5)
  spectrum: closed form, recognized hypercube Q_8 (h=100)
  lower bound on non-trivial I/O: 32 (best k = 4, raw = 32)

The method vocabulary is one module shared by every surface, so the CLI
flag, the jobs file and the server reject an unknown method with the
same expected-list text:

  $ ../../bin/graphio.exe bound -g fft:4 -m 4 --method qr
  graphio: unknown method "qr" (expected normalized, standard, adjacency, signless, visit or portfolio)
  [1]

  $ printf 'fft:4 m=4 method=qr\n' > bad.txt
  $ ../../bin/graphio.exe batch bad.txt
  graphio: bad.txt:1: method="qr": expected normalized, standard, adjacency, signless, visit or portfolio
  [1]

  $ ../../bin/graphio.exe serve --socket srv.sock --dense-threshold 24 2>/dev/null &
  $ printf '%s\n' \
  >   '{"spec":"fft:4","m":4,"method":"qr"}' \
  >   '{"spec":"bhk:6","m":2,"method":"portfolio","id":7}' \
  >   '{"op":"shutdown"}' \
  >   | ../../bin/graphio.exe client --socket srv.sock \
  >   | sed -E 's/"wall_s":[0-9.e+-]+/"wall_s":_/; s/"rid":"[^"]*"/"rid":_/'
  {"ok":false,"code":"bad_request","error":"field \"method\": expected normalized, standard, adjacency, signless, visit or portfolio, got \"qr\""}
  {"id":7,"ok":true,"rid":_,"n":64,"edges":192,"m":2,"p":1,"method":"portfolio","h":0,"bound":22,"best_k":0,"best_raw":22,"backend":"dense","tier":"numeric","cache_hit":false,"warm_start":false,"wall_s":_,"methods":[{"method":"normalized","bound":11.249632996423834,"best_k":3,"tier":"numeric","cache_hit":false,"warm_start":false},{"method":"standard","bound":2.6666666666666661,"best_k":2,"tier":"closed-form","cache_hit":false,"warm_start":false},{"method":"adjacency","bound":2.6666666666666661,"best_k":2,"tier":"closed-form","cache_hit":false,"warm_start":false},{"method":"signless","bound":2.6666666666666661,"best_k":2,"tier":"closed-form","cache_hit":false,"warm_start":false},{"method":"visit","bound":22,"best_k":0,"tier":"numeric","cache_hit":false,"warm_start":false}],"winner":"visit"}
  {"ok":true,"op":"shutdown"}
  $ wait

Batch jobs can ask for the portfolio per job; the reply keeps the flat
single-method schema for plain jobs byte-identical and appends the
methods/winner block only for portfolio jobs:

  $ cat > jobs.txt <<'EOF'
  > bhk:8 m=2 method=portfolio
  > bhk:8 m=2 method=standard
  > fft:5 m=4 method=portfolio
  > EOF
  $ ../../bin/graphio.exe batch jobs.txt -j 1 | sed -E 's/"wall_s":[0-9.e+-]+/"wall_s":_/'
  {"spec":"bhk:8","n":256,"edges":1024,"m":2,"p":1,"method":"portfolio","h":100,"bound":86.786913617826286,"best_k":16,"best_raw":86.786913617826286,"backend":"dense","tier":"numeric","cache_hit":false,"warm_start":false,"wall_s":_,"methods":[{"method":"normalized","bound":86.786913617826286,"best_k":16,"tier":"numeric","cache_hit":false,"warm_start":false},{"method":"standard","bound":32,"best_k":4,"tier":"closed-form","cache_hit":false,"warm_start":false},{"method":"adjacency","bound":32,"best_k":4,"tier":"closed-form","cache_hit":false,"warm_start":false},{"method":"signless","bound":32,"best_k":4,"tier":"closed-form","cache_hit":false,"warm_start":false},{"method":"visit","bound":60,"best_k":0,"tier":"numeric","cache_hit":false,"warm_start":false}],"winner":"normalized"}
  {"spec":"bhk:8","n":256,"edges":1024,"m":2,"p":1,"method":"standard","h":100,"bound":32,"best_k":4,"best_raw":32,"backend":"dense","tier":"closed-form","cache_hit":true,"warm_start":false,"wall_s":_}
  {"spec":"fft:5","n":192,"edges":320,"m":4,"p":1,"method":"portfolio","h":100,"bound":0,"best_k":2,"best_raw":-8.2226509339834948,"backend":"dense","tier":"closed-form","cache_hit":false,"warm_start":false,"wall_s":_,"methods":[{"method":"normalized","bound":0,"best_k":2,"tier":"closed-form","cache_hit":false,"warm_start":false},{"method":"standard","bound":0,"best_k":2,"tier":"closed-form","cache_hit":false,"warm_start":false},{"method":"adjacency","bound":0,"best_k":2,"tier":"numeric","cache_hit":false,"warm_start":false},{"method":"signless","bound":0,"best_k":2,"tier":"numeric","cache_hit":false,"warm_start":false},{"method":"visit","bound":0,"best_k":0,"tier":"numeric","cache_hit":false,"warm_start":false}],"winner":"normalized"}

graphio report tabulates the portfolio over a jobs file (any method=
keys are ignored -- report always compares) and tallies the winners:

  $ ../../bin/graphio.exe report jobs.txt -j 1
  == bound portfolio ==
  job    m  normalized  standard  adjacency  signless  visit  winner    
  -----  -  ----------  --------  ---------  --------  -----  ----------
  bhk:8  2  86.7869     32        32         32        60     normalized
  bhk:8  2  86.7869     32        32         32        60     normalized
  fft:5  4  0           0         0          0         0      normalized
  note: winners: normalized x3
