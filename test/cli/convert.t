The convert subcommand streams a text edgelist into the binary CSR
store format in bounded memory; bound sniffs the GIOCSR magic and
accepts either format transparently.

  $ ../../bin/graphio.exe generate union:3:fft:4 -o u.el
  wrote 240 vertices, 384 edges to u.el
  $ ../../bin/graphio.exe convert u.el
  converted 240 vertices, 384 edges to u.gcsr

The two formats produce bitwise-identical bound reports, including the
per-component provenance block (the copies after the first share the
first copy's eigensolve):

  $ ../../bin/graphio.exe bound -f u.el -m 4 > text.out
  $ ../../bin/graphio.exe bound -f u.gcsr -m 4 > bin.out
  $ diff text.out bin.out
  $ cat bin.out
  graph: n=240 m_edges=384 max_out_degree=2
  method: normalized (Theorem 4)
  components: 3 (merged spectrum h=100)
    component 0: n=80 edges=128 closed form butterfly B_4
    component 1: n=80 edges=128 closed form butterfly B_4 (shared)
    component 2: n=80 edges=128 closed form butterfly B_4 (shared)
  lower bound on non-trivial I/O: 0 (best k = 2, raw = -16)

Re-converting the same input is byte-identical — the output is fully
deterministic, so convert is idempotent:

  $ ../../bin/graphio.exe convert u.el -o u2.gcsr
  converted 240 vertices, 384 edges to u2.gcsr
  $ cmp u.gcsr u2.gcsr

Malformed edgelists fail with one path:line-prefixed message and exit
code 1 — nothing is published:

  $ printf 'graphio 1\nn 2 m 1\ne 0 5\n' > bad.el
  $ ../../bin/graphio.exe convert bad.el
  graphio: bad.el: line 3: edge 0 -> 5: vertex out of range [0, 2)
  [1]
  $ test ! -e bad.gcsr

  $ printf 'graphio 1\nn 2 m 2\ne 0 1\ne 0 1\n' > dup.el
  $ ../../bin/graphio.exe convert dup.el
  graphio: dup.el: line 4: duplicate edge 0 -> 1 (first on line 3)
  [1]

  $ printf 'graphio 1\nn 2 m 2\ne 0 1\ne 1 0\n' > cyc.el
  $ ../../bin/graphio.exe convert cyc.el
  graphio: cyc.el: graph has a cycle
  [1]

  $ ../../bin/graphio.exe convert missing.el
  graphio: missing.el: No such file or directory
  [1]

A damaged store file always fails closed with a structured error, never
a wrong graph:

  $ head -c 40 u.gcsr > trunc.gcsr
  $ ../../bin/graphio.exe bound -f trunc.gcsr -m 4
  graphio: store: truncated file (need 4456 bytes, have 40)
  [1]

  $ cp u.gcsr flip.gcsr
  $ printf '\xff' | dd of=flip.gcsr bs=1 seek=100 conv=notrunc 2>/dev/null
  $ ../../bin/graphio.exe bound -f flip.gcsr -m 4
  graphio: store: body checksum mismatch (corrupt file)
  [1]
