The CLI computes spectral bounds on generated graphs:

  $ ../../bin/graphio.exe bound -g fft:6 -m 4
  graph: n=448 m_edges=768 max_out_degree=2
  method: normalized (Theorem 4)
  spectrum: closed form, recognized butterfly B_6 (h=100)
  lower bound on non-trivial I/O: 0 (best k = 2, raw = -2.98193)

Theorem 5 (standard Laplacian divided by max out-degree) is looser:

  $ ../../bin/graphio.exe bound -g bhk:8 -m 4 --method standard
  graph: n=256 m_edges=1024 max_out_degree=8
  method: standard (Theorem 5)
  spectrum: closed form, recognized hypercube Q_8 (h=100)
  lower bound on non-trivial I/O: 18.5 (best k = 3, raw = 18.5)

The convex min-cut baseline:

  $ ../../bin/graphio.exe baseline -g inner:4 -m 2
  convex min-cut lower bound: 0 (max wavefront 1 at vertex 0)

Schedule simulation in the two-level memory model:

  $ ../../bin/graphio.exe simulate -g fft:5 -m 4 --order natural --policy belady
  schedule: natural, eviction: belady, M=4
  non-trivial I/O: 411 (reads 254, writes 157, peak resident 4)

Spectra of known graphs:

  $ ../../bin/graphio.exe spectrum -g bhk:3 --eigenvalues 4
  # standard Laplacian, 4 smallest eigenvalues (dense backend)
  -3.538835891e-16
  2
  2
  2

Generation round-trips through files:

  $ ../../bin/graphio.exe generate inner:2 -o g.txt
  wrote 7 vertices, 6 edges to g.txt
  $ ../../bin/graphio.exe bound -f g.txt -m 3 | tail -1
  lower bound on non-trivial I/O: 0 (best k = 2, raw = -11.1962)

Errors are reported cleanly, with exit code 1:

  $ ../../bin/graphio.exe bound -g nope:3 -m 4 2>&1 | head -2
  graphio: unknown graph spec "nope:3" (expected fft:L, bhk:L, path:N, grid:R:C, matmul:N, matmul-binary:N, strassen:N, inner:D, er:N:P[:SEED], union:K:SPEC)

  $ ../../bin/graphio.exe simulate -g matmul:8 -m 4 2>&1 | head -1
  graphio: Simulator.simulate: fast memory 4 too small for max in-degree 8

  $ ../../bin/graphio.exe bound -f does-not-exist.txt -m 4
  graphio: does-not-exist.txt: No such file or directory
  [1]

  $ ../../bin/graphio.exe bound -g fft:x -m 4
  graphio: graph spec "fft:x": level count "x" is not an integer
  [1]

  $ printf 'not an edge list\n' > bad.txt
  $ ../../bin/graphio.exe bound -f bad.txt -m 4
  graphio: bad.txt: Edgelist: line 1: expected header 'graphio 1'
  [1]

Observability: --metrics prints the counter table to stderr (stdout stays
byte-identical), and --trace writes Chrome trace-event JSON:

(fft:4 is recognized, so --no-closed-form keeps the eigensolver in play):

  $ ../../bin/graphio.exe bound -g fft:4 -m 4 --no-closed-form --metrics --trace trace.json 2>&1 >/dev/null | grep -c "la.eigen"
  7
  $ ../../bin/graphio.exe bound -g fft:4 -m 4 --metrics 2>&1 >/dev/null | head -1
  == metrics ==
  $ head -c 15 trace.json
  {"traceEvents":
  $ grep -c "solver.eigensolve" trace.json
  1

--metrics-out writes the same table to a file instead, keeping both
stdout and stderr clean for pipelines:

  $ ../../bin/graphio.exe bound -g fft:4 -m 4 --metrics-out metrics.txt 2>&1 >/dev/null | wc -l | tr -d ' '
  0
  $ head -1 metrics.txt
  == metrics ==
  $ grep -c "la.eigen" metrics.txt
  7

DOT export:

  $ ../../bin/graphio.exe export -g inner:2 | head -4
  digraph "G" {
    rankdir=TB;
    node [shape=circle, style=filled, fillcolor=white];
    v0 [label="x0"];

Combined analysis:

  $ ../../bin/graphio.exe analyze -g inner:4 -m 4 | head -6
  == analysis (n=15, edges=14, M=4) ==
  quantity                           value
  ---------------------------------  -----
  depth (critical path)              5    
  max level width                    8    
  components                         1    

Memory sweeps emit CSV:

  $ ../../bin/graphio.exe sweep -g bhk:8 --from 2 --to 8
  M,thm4,thm5
  2,86.7869,32
  4,51.9989,18.5
  8,25.2825,0

Disconnected graphs are decomposed per weakly-connected component — the
spectra are merged, and the report shows per-component provenance:

  $ ../../bin/graphio.exe bound -g union:2:grid:3:4 -m 3
  graph: n=24 m_edges=34 max_out_degree=2
  method: normalized (Theorem 4)
  components: 2 (merged spectrum h=24)
    component 0: n=12 edges=17 numeric (dense)
    component 1: n=12 edges=17 numeric (dense) (shared)
  lower bound on non-trivial I/O: 0 (best k = 2, raw = -12)
