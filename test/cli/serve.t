graphio serve is a long-lived bound service on a Unix-domain socket
speaking newline-delimited JSON; graphio client drives it from stdin,
one reply line per request line.  Wall times are masked -- they are the
only nondeterministic field.

  $ unset GRAPHIO_CACHE_DIR
  $ ../../bin/graphio.exe serve --socket srv.sock --dense-threshold 24 -j 2 2>/dev/null &

Round trips.  The second identical query is answered from the spectrum
cache (bitwise-identical bound, cache_hit flips); an inline edge list
works as the graph source:

  $ printf '%s\n' \
  >   '{"spec":"bhk:6","m":2,"method":"standard","id":1}' \
  >   '{"spec":"bhk:6","m":2,"method":"standard","id":2}' \
  >   '{"edgelist":"graphio 1\nn 3 m 2\ne 0 1\ne 1 2\n","m":2,"method":"standard"}' \
  >   | ../../bin/graphio.exe client --socket srv.sock \
  >   | sed -E 's/"wall_s":[0-9.e+-]+/"wall_s":_/; s/"rid":"[^"]*"/"rid":_/'
  {"id":1,"ok":true,"rid":_,"n":64,"edges":192,"m":2,"p":1,"method":"standard","h":64,"bound":2.6666666666666661,"best_k":2,"best_raw":2.6666666666666661,"backend":"dense","tier":"closed-form","cache_hit":false,"warm_start":false,"wall_s":_}
  {"id":2,"ok":true,"rid":_,"n":64,"edges":192,"m":2,"p":1,"method":"standard","h":64,"bound":2.6666666666666661,"best_k":2,"best_raw":2.6666666666666661,"backend":"dense","tier":"closed-form","cache_hit":true,"warm_start":false,"wall_s":_}
  {"ok":true,"rid":_,"n":3,"edges":2,"m":2,"p":1,"method":"standard","h":3,"bound":0,"best_k":2,"best_raw":-7,"backend":"dense","tier":"closed-form","cache_hit":false,"warm_start":false,"wall_s":_}

Malformed requests get structured errors -- and the server survives them
all, still answering on the same connection (the ping at the end):

  $ printf '%s\n' \
  >   'garbage' \
  >   '{"spec":"fft:4"}' \
  >   '{"spec":"nope:1","m":4}' \
  >   '{"spec":"fft:4","m":8,"typo":1}' \
  >   '{"spec":"bhk:6","m":2,"method":"standard","timeout_s":0,"id":9}' \
  >   '{"op":"ping"}' \
  >   | ../../bin/graphio.exe client --socket srv.sock
  {"ok":false,"code":"bad_request","error":"malformed JSON: Jsonx: at offset 0: unexpected character 'g'"}
  {"ok":false,"code":"bad_request","error":"missing field \"m\""}
  {"ok":false,"code":"bad_request","error":"unknown graph spec \"nope:1\" (expected fft:L, bhk:L, path:N, grid:R:C, matmul:N, matmul-binary:N, strassen:N, inner:D, er:N:P[:SEED], union:K:SPEC)"}
  {"ok":false,"code":"bad_request","error":"unknown field \"typo\""}
  {"id":9,"ok":false,"code":"timeout","error":"deadline of 0s exceeded"}
  {"ok":true,"op":"ping"}

The shutdown op drains and removes the socket:

  $ printf '{"op":"shutdown"}\n' | ../../bin/graphio.exe client --socket srv.sock
  {"ok":true,"op":"shutdown"}
  $ wait
  $ test -e srv.sock || echo socket removed
  socket removed

SIGTERM does the same -- graceful drain, socket unlinked, clean exit:

  $ ../../bin/graphio.exe serve --socket sig.sock -j 1 2>/dev/null &
  $ SRV=$!
  $ printf '{"op":"ping"}\n' | ../../bin/graphio.exe client --socket sig.sock
  {"ok":true,"op":"ping"}
  $ kill -TERM $SRV
  $ wait $SRV
  $ test -e sig.sock || echo socket removed
  socket removed

The disk tier outlives the process: a fresh server has never computed
this spectrum, yet answers it as a cache hit from the directory the
previous server (or a batch run) populated:

  $ ../../bin/graphio.exe serve --socket d1.sock --cache-dir spectra -j 1 2>/dev/null &
  $ printf '{"spec":"bhk:5","m":4,"method":"standard"}\n' \
  >   | ../../bin/graphio.exe client --socket d1.sock \
  >   | sed -E 's/"wall_s":[0-9.e+-]+/"wall_s":_/; s/"rid":"[^"]*"/"rid":_/'
  {"ok":true,"rid":_,"n":32,"edges":80,"m":4,"p":1,"method":"standard","h":32,"bound":0,"best_k":2,"best_raw":-9.6,"backend":"dense","tier":"closed-form","cache_hit":false,"warm_start":false,"wall_s":_}
  $ printf '{"op":"shutdown"}\n' | ../../bin/graphio.exe client --socket d1.sock
  {"ok":true,"op":"shutdown"}
  $ wait
  $ ls spectra | wc -l | tr -d ' '
  1
  $ ../../bin/graphio.exe serve --socket d2.sock --cache-dir spectra -j 1 2>/dev/null &
  $ printf '{"spec":"bhk:5","m":4,"method":"standard"}\n' \
  >   | ../../bin/graphio.exe client --socket d2.sock \
  >   | sed -E 's/"wall_s":[0-9.e+-]+/"wall_s":_/; s/"rid":"[^"]*"/"rid":_/'
  {"ok":true,"rid":_,"n":32,"edges":80,"m":4,"p":1,"method":"standard","h":32,"bound":0,"best_k":2,"best_raw":-9.6,"backend":"dense","tier":"closed-form","cache_hit":true,"warm_start":false,"wall_s":_}
  $ printf '{"op":"shutdown"}\n' | ../../bin/graphio.exe client --socket d2.sock
  {"ok":true,"op":"shutdown"}
  $ wait

Disconnected graphs decompose, and the reply carries per-component
provenance:

  $ ../../bin/graphio.exe serve --socket u.sock -j 1 2>/dev/null &
  $ printf '{"spec":"union:2:path:6","m":2}\n' \
  >   | ../../bin/graphio.exe client --socket u.sock \
  >   | sed -E 's/"wall_s":[0-9.e+-]+/"wall_s":_/; s/"rid":"[^"]*"/"rid":_/'
  {"ok":true,"rid":_,"n":12,"edges":10,"m":2,"p":1,"method":"normalized","h":12,"bound":0,"best_k":2,"best_raw":-8,"backend":"dense","tier":"closed-form","cache_hit":false,"warm_start":false,"wall_s":_,"components":[{"n":6,"edges":5,"tier":"closed-form","cache_hit":false},{"n":6,"edges":5,"tier":"closed-form","cache_hit":true}]}
  $ printf '{"op":"shutdown"}\n' | ../../bin/graphio.exe client --socket u.sock
  {"ok":true,"op":"shutdown"}
  $ wait
