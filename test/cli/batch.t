The batch subcommand evaluates a jobs file concurrently and emits one JSON
record per job, in input order.  Jobs sharing (graph, method) pay for one
eigensolve: only the first is a cache miss.  Wall times are masked — they
are the only nondeterministic field.

  $ unset GRAPHIO_CACHE_DIR
  $ cat > jobs.txt <<'EOF'
  > # one spectrum, three memory sizes (the last two hit the cache)
  > bhk:8 m=2 method=standard
  > bhk:8 m=4 method=standard
  > bhk:8 m=8 method=standard
  > # Theorem 6 variant (p only changes the maximization) and a second graph
  > bhk:8 m=4 p=4 method=standard
  > fft:5 m=4
  > EOF
  $ ../../bin/graphio.exe batch jobs.txt -j 2 | sed -E 's/"wall_s":[0-9.e+-]+/"wall_s":_/'
  {"spec":"bhk:8","n":256,"edges":1024,"m":2,"p":1,"method":"standard","h":100,"bound":32,"best_k":4,"best_raw":32,"backend":"dense","tier":"closed-form","cache_hit":false,"warm_start":false,"wall_s":_}
  {"spec":"bhk:8","n":256,"edges":1024,"m":4,"p":1,"method":"standard","h":100,"bound":18.5,"best_k":3,"best_raw":18.5,"backend":"dense","tier":"closed-form","cache_hit":true,"warm_start":false,"wall_s":_}
  {"spec":"bhk:8","n":256,"edges":1024,"m":8,"p":1,"method":"standard","h":100,"bound":0,"best_k":2,"best_raw":0,"backend":"dense","tier":"closed-form","cache_hit":true,"warm_start":false,"wall_s":_}
  {"spec":"bhk:8","n":256,"edges":1024,"m":4,"p":4,"method":"standard","h":100,"bound":0,"best_k":2,"best_raw":-8,"backend":"dense","tier":"closed-form","cache_hit":true,"warm_start":false,"wall_s":_}
  {"spec":"fft:5","n":192,"edges":320,"m":4,"p":1,"method":"normalized","h":100,"bound":0,"best_k":2,"best_raw":-8.2226509339834948,"backend":"dense","tier":"closed-form","cache_hit":false,"warm_start":false,"wall_s":_}

The output is identical with a sequential run (-j 1):

  $ ../../bin/graphio.exe batch jobs.txt -j 2 | sed -E 's/"wall_s":[0-9.e+-]+/_/' > par.out
  $ ../../bin/graphio.exe batch jobs.txt -j 1 | sed -E 's/"wall_s":[0-9.e+-]+/_/' > seq.out
  $ diff seq.out par.out

Malformed jobs files fail with one clean line and exit code 1:

  $ printf 'fft:4 m=4\nfft:4 mm=4\n' > bad.txt
  $ ../../bin/graphio.exe batch bad.txt
  graphio: bad.txt:2: unknown key "mm"
  [1]

  $ printf 'fft:4\n' > bad2.txt
  $ ../../bin/graphio.exe batch bad2.txt
  graphio: bad2.txt:1: missing m=M
  [1]

  $ printf 'nope:3 m=4\n' > bad3.txt
  $ ../../bin/graphio.exe batch bad3.txt 2>&1 | head -1
  graphio: bad3.txt:1: unknown graph spec "nope:3" (expected fft:L, bhk:L, path:N, grid:R:C, matmul:N, matmul-binary:N, strassen:N, inner:D, er:N:P[:SEED], union:K:SPEC)

  $ printf '# only comments\n\n' > empty.txt
  $ ../../bin/graphio.exe batch empty.txt
  graphio: empty.txt: no jobs
  [1]

--metrics exposes the batch cache and the domain pool (deterministic
counters only; steal counts depend on scheduling):

  $ ../../bin/graphio.exe batch jobs.txt -j 2 --metrics 2>&1 >/dev/null | grep -E "batch_cache|par.pool.(loops|size|created)"
  core.solver.batch_cache_hits    3
  core.solver.batch_cache_misses  2
  par.pool.created                1
  par.pool.loops                  1
  par.pool.size                   2

--cache-dir adds the persistent tier.  A cold run computes the two
spectra and writes one record each; a second process finds them on disk,
so every job is a hit — and the answers are bitwise-identical:

  $ ../../bin/graphio.exe batch jobs.txt --cache-dir spectra \
  >   | sed -E 's/"wall_s":[0-9.e+-]+/_/' > cold.out
  $ grep -c '"cache_hit":true' cold.out
  3
  $ ls spectra | wc -l | tr -d ' '
  2
  $ ../../bin/graphio.exe batch jobs.txt --cache-dir spectra \
  >   | sed -E 's/"wall_s":[0-9.e+-]+/_/' > warm.out
  $ grep -c '"cache_hit":true' warm.out
  5
  $ sed 's/"cache_hit":[a-z]*/_/' cold.out > cold.norm
  $ sed 's/"cache_hit":[a-z]*/_/' warm.out > warm.norm
  $ diff cold.norm warm.norm

Corrupt records are detected by checksum, evicted, and recomputed — a
damaged cache can slow the batch down but never change an answer:

  $ for f in spectra/*.bin; do
  >   printf 'X' | dd of="$f" bs=1 seek=5 conv=notrunc status=none
  > done
  $ ../../bin/graphio.exe batch jobs.txt --cache-dir spectra \
  >   | sed -E 's/"wall_s":[0-9.e+-]+/_/' > healed.out
  $ grep -c '"cache_hit":true' healed.out
  3
  $ sed 's/"cache_hit":[a-z]*/_/' healed.out > healed.norm
  $ diff cold.norm healed.norm

The rewritten records serve again:

  $ ../../bin/graphio.exe batch jobs.txt --cache-dir spectra | grep -c '"cache_hit":true'
  5

Disconnected graphs decompose: one record per job still, but carrying a
components array with per-component provenance (copies after the first
share the first copy's eigensolve):

  $ printf 'union:2:fft:4 m=4\nfft:6 m=4\n' > union.txt
  $ ../../bin/graphio.exe batch union.txt | sed -E 's/"wall_s":[0-9.e+-]+/"wall_s":_/'
  {"spec":"union:2:fft:4","n":160,"edges":256,"m":4,"p":1,"method":"normalized","h":100,"bound":0,"best_k":2,"best_raw":-16,"backend":"dense","tier":"closed-form","cache_hit":false,"warm_start":false,"wall_s":_,"components":[{"n":80,"edges":128,"tier":"closed-form","cache_hit":false},{"n":80,"edges":128,"tier":"closed-form","cache_hit":true}]}
  {"spec":"fft:6","n":448,"edges":768,"m":4,"p":1,"method":"normalized","h":100,"bound":0,"best_k":2,"best_raw":-2.9819342068713013,"backend":"dense","tier":"closed-form","cache_hit":false,"warm_start":false,"wall_s":_}
