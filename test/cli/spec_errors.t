Graph specs have ONE grammar and ONE set of error messages, produced by
Workloads.Spec and quoted verbatim by every surface.  These pins keep
the CLI text and the server's structured error field from drifting
apart (the unit suite in test/workloads checks the same strings against
Spec.grammar itself).

The CLI, through generate -- the thinnest path into Spec.parse:

  $ ../../bin/graphio.exe generate nope:3 -o g.txt
  graphio: unknown graph spec "nope:3" (expected fft:L, bhk:L, path:N, grid:R:C, matmul:N, matmul-binary:N, strassen:N, inner:D, er:N:P[:SEED], union:K:SPEC)
  [1]

  $ ../../bin/graphio.exe generate fft:x -o g.txt
  graphio: graph spec "fft:x": level count "x" is not an integer
  [1]

  $ ../../bin/graphio.exe generate matmul: -o g.txt
  graphio: graph spec "matmul:": size "" is not an integer
  [1]

  $ ../../bin/graphio.exe generate er:10:zz -o g.txt
  graphio: graph spec "er:10:zz": edge probability "zz" is not a number
  [1]

  $ ../../bin/graphio.exe generate er:10:0.1:abc -o g.txt
  graphio: graph spec "er:10:0.1:abc": seed "abc" is not an integer
  [1]

The server embeds the SAME text in the error field of a bad_request
reply -- same parser, same message, different transport:

  $ unset GRAPHIO_CACHE_DIR
  $ ../../bin/graphio.exe serve --socket spec.sock -j 1 2>/dev/null &
  $ printf '%s\n' \
  >   '{"spec":"nope:3","m":4}' \
  >   '{"spec":"fft:x","m":4}' \
  >   '{"spec":"matmul:","m":4}' \
  >   '{"spec":"er:10:zz","m":4}' \
  >   '{"spec":"er:10:0.1:abc","m":4}' \
  >   | ../../bin/graphio.exe client --socket spec.sock
  {"ok":false,"code":"bad_request","error":"unknown graph spec \"nope:3\" (expected fft:L, bhk:L, path:N, grid:R:C, matmul:N, matmul-binary:N, strassen:N, inner:D, er:N:P[:SEED], union:K:SPEC)"}
  {"ok":false,"code":"bad_request","error":"graph spec \"fft:x\": level count \"x\" is not an integer"}
  {"ok":false,"code":"bad_request","error":"graph spec \"matmul:\": size \"\" is not an integer"}
  {"ok":false,"code":"bad_request","error":"graph spec \"er:10:zz\": edge probability \"zz\" is not a number"}
  {"ok":false,"code":"bad_request","error":"graph spec \"er:10:0.1:abc\": seed \"abc\" is not an integer"}
  $ printf '{"op":"shutdown"}\n' | ../../bin/graphio.exe client --socket spec.sock
  {"ok":true,"op":"shutdown"}
  $ wait
