(* Corruption corpus for the binary CSR store.

   Oracle: a damaged store file is NEVER half-loaded.  Every corpus entry
   takes a known-good file, applies one class of damage — truncation,
   flipped bytes in each region, version/magic rewrites, checksum-valid
   structural corruption, torn or flipped writes injected through
   lib/fault — and asserts that [Store.load] raises the matching
   structured {!Store.error} constructor (fail closed, not a crash, not a
   wrong graph).

   The checksum-valid entries re-seal the body CRC after patching, so
   they prove the *structural* validation tier (pointer monotonicity,
   index range, acyclicity) independently of the checksum tier. *)

open Graphio_graph
module Store = Graphio_store.Store
module Convert = Graphio_store.Convert
module F = Graphio_fault

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L
let header_len = 28
let crc_len = 8

let fnv1a_bytes acc b pos len =
  let acc = ref acc in
  for i = pos to pos + len - 1 do
    acc :=
      Int64.mul
        (Int64.logxor !acc (Int64.of_int (Char.code (Bytes.get b i))))
        fnv_prime
  done;
  !acc

let read_file path =
  In_channel.with_open_bin path (fun ic ->
      let n = in_channel_length ic in
      let b = Bytes.create n in
      really_input ic b 0 n;
      b)

let write_file path b =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc b)

(* Reference graph: labeled, multi-component, rows with several entries
   (so sortedness is checkable), one isolated vertex. *)
let reference () =
  Dag.of_edges ~n:7
    ~labels:[| "src"; ""; "x y"; "100%"; ""; ""; "" |]
    [ (0, 1); (0, 2); (1, 3); (2, 3); (4, 5) ]

let in_tmp_dir f =
  let dir = Filename.temp_file "graphio_store_test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun e -> Sys.remove (Filename.concat dir e))
        (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

let with_reference_file f =
  in_tmp_dir (fun dir ->
      let path = Filename.concat dir "ref.gcsr" in
      Store.write path (reference ());
      f path)

let error_of_load path =
  match Store.load path with
  | _ -> Alcotest.fail "corrupt file loaded successfully"
  | exception Store.Error e -> e

let check_error name expected path =
  let got = error_of_load path in
  Alcotest.(check bool)
    (Printf.sprintf "%s: %s" name (Store.error_message got))
    true (expected got)

(* --------------------------- damage helpers --------------------------- *)

let truncate_to path k =
  let b = read_file path in
  write_file path (Bytes.sub b 0 (min k (Bytes.length b)))

let flip_byte path off =
  let b = read_file path in
  Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0x40));
  write_file path b

(* Patch a body word (int32, word 0 = first word after the header) and
   re-seal the body CRC so only the structural tier can object. *)
let patch_body_word path word v =
  let b = read_file path in
  Bytes.set_int32_le b (header_len + (4 * word)) (Int32.of_int v);
  let body_len = Bytes.length b - header_len - crc_len in
  Bytes.set_int64_le b
    (Bytes.length b - crc_len)
    (fnv1a_bytes fnv_offset b header_len body_len);
  write_file path b

(* ----------------------------- the corpus ----------------------------- *)

let test_truncated () =
  List.iter
    (fun k ->
      with_reference_file (fun path ->
          truncate_to path k;
          check_error
            (Printf.sprintf "truncated to %d" k)
            (function Store.Truncated _ -> true | _ -> false)
            path))
    [ 0; 5; 10; 27; 40 ]

let test_bad_magic () =
  with_reference_file (fun path ->
      flip_byte path 2;
      check_error "flipped magic byte"
        (function Store.Bad_magic -> true | _ -> false)
        path)

let test_bad_version () =
  with_reference_file (fun path ->
      let b = read_file path in
      Bytes.set b 7 '\x09';
      write_file path b;
      check_error "future version"
        (function Store.Bad_version { found = 9 } -> true | _ -> false)
        path)

let test_header_flip () =
  (* every header byte after the version — the counts and the stored CRC
     itself — must trip the header checksum *)
  List.iter
    (fun off ->
      with_reference_file (fun path ->
          flip_byte path off;
          check_error
            (Printf.sprintf "flipped header byte %d" off)
            (function
              | Store.Checksum_mismatch { region = "header" } -> true
              | _ -> false)
            path))
    [ 8; 13; 16; 20; 27 ]

let test_body_flip () =
  with_reference_file (fun path ->
      let size = Bytes.length (read_file path) in
      List.iter
        (fun off ->
          with_reference_file (fun path ->
              flip_byte path off;
              check_error
                (Printf.sprintf "flipped body byte %d" off)
                (function
                  | Store.Checksum_mismatch { region = "body" } -> true
                  | _ -> false)
                path))
        [ header_len; header_len + 9; size - crc_len; size - 1 ];
      ignore path)

(* Checksums pass; the structure is the lie.  n = 7, m = 5: body words
   0..7 are succ_ptr, words 8..12 are succ_idx. *)
let test_malformed_structure () =
  let cases =
    [
      ("out-of-range index", 8, 12, "range");
      ("non-monotone pointers", 1, 6, "monotone");
      ("self-loop breaks acyclicity", 8, 0, "cycle");
      ("unsorted row", 9, 1, "sorted");
    ]
  in
  List.iter
    (fun (name, word, v, _) ->
      with_reference_file (fun path ->
          patch_body_word path word v;
          check_error name
            (function Store.Malformed _ -> true | _ -> false)
            path))
    cases

(* ------------------------- injected write damage ---------------------- *)

let no_tmp_leak dir =
  Array.iter
    (fun f ->
      if f <> "ref.gcsr" then
        Alcotest.failf "unexpected file %s left in store dir" f)
    (Sys.readdir dir)

let test_torn_write_fails_closed () =
  List.iter
    (fun kind ->
      in_tmp_dir (fun dir ->
          let path = Filename.concat dir "ref.gcsr" in
          F.with_plan
            (Printf.sprintf "store.file.write:kind=%s:seed=7" kind)
            (fun () -> Store.write path (reference ()));
          (* the damaged record is deliberately published: the checksums,
             not the writer, are the trust boundary *)
          match Store.load path with
          | _ ->
              Alcotest.failf "%s-damaged write loaded successfully" kind
          | exception Store.Error e -> (
              match e with
              | Store.Truncated _ | Store.Checksum_mismatch _
              | Store.Bad_magic | Store.Bad_version _ ->
                  ()
              | e ->
                  Alcotest.failf "%s write: unexpected error %s" kind
                    (Store.error_message e))))
    [ "partial"; "flip" ]

let test_failed_write_and_rename () =
  in_tmp_dir (fun dir ->
      let path = Filename.concat dir "ref.gcsr" in
      (match
         F.with_plan "store.file.write" (fun () ->
             Store.write path (reference ()))
       with
      | _ -> Alcotest.fail "injected write failure did not raise"
      | exception Store.Error (Store.Io_error _) -> ());
      Alcotest.(check bool) "no file published" false (Sys.file_exists path);
      (match
         F.with_plan "store.file.rename" (fun () ->
             Store.write path (reference ()))
       with
      | _ -> Alcotest.fail "injected rename failure did not raise"
      | exception Store.Error (Store.Io_error _) -> ());
      Alcotest.(check bool) "no file after failed rename" false
        (Sys.file_exists path);
      no_tmp_leak dir)

let test_injected_read_faults () =
  List.iter
    (fun (plan, expected) ->
      with_reference_file (fun path ->
          F.with_plan plan (fun () ->
              let got = error_of_load path in
              Alcotest.(check bool)
                (Printf.sprintf "%s: %s" plan (Store.error_message got))
                true (expected got))))
    [
      ( "store.file.read",
        function Store.Io_error _ -> true | _ -> false );
      ( "store.file.read:kind=partial",
        function
        | Store.Checksum_mismatch { region = "body" } -> true | _ -> false );
      ( "store.file.read:kind=flip",
        function
        | Store.Checksum_mismatch { region = "body" } -> true | _ -> false );
      ( "store.checksum",
        function
        | Store.Checksum_mismatch { region = "body" } -> true | _ -> false );
    ]

(* ------------------------- converter interop -------------------------- *)

(* The streaming converter and the in-memory writer must produce the
   same bytes — the idempotence and text/binary bitwise differentials
   both rest on this. *)
let test_convert_matches_write () =
  in_tmp_dir (fun dir ->
      let g = reference () in
      let text = Filename.concat dir "g.el" in
      let from_convert = Filename.concat dir "g.gcsr" in
      let from_write = Filename.concat dir "w.gcsr" in
      Edgelist.to_file text g;
      let n, m = Convert.convert ~input:text ~output:from_convert in
      Alcotest.(check int) "n" (Dag.n_vertices g) n;
      Alcotest.(check int) "m" (Dag.n_edges g) m;
      Store.write from_write g;
      Alcotest.(check bool) "byte-identical output" true
        (read_file from_convert = read_file from_write))

let test_convert_line_errors () =
  List.iter
    (fun (name, body, fragment) ->
      in_tmp_dir (fun dir ->
          let input = Filename.concat dir "bad.el" in
          Out_channel.with_open_text input (fun oc ->
              Out_channel.output_string oc body);
          match
            Convert.convert ~input ~output:(Filename.concat dir "bad.gcsr")
          with
          | _ -> Alcotest.failf "%s: converted successfully" name
          | exception Failure msg ->
              let contains hay needle =
                let nh = String.length hay and nn = String.length needle in
                let rec go i =
                  i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
                in
                nn = 0 || go 0
              in
              Alcotest.(check bool)
                (Printf.sprintf "%s: %S mentions %S" name msg fragment)
                true
                (contains msg fragment)))
    [
      ("bad header", "graphio 2\n", "expected header");
      ("missing sizes", "graphio 1\n", "missing size line");
      ("bad edge", "graphio 1\nn 2 m 1\ne 0\n", "line 3: malformed edge");
      ( "range",
        "graphio 1\nn 2 m 1\ne 0 5\n",
        "line 3: edge 0 -> 5: vertex out of range [0, 2)" );
      ( "duplicate",
        "graphio 1\nn 2 m 2\ne 0 1\ne 0 1\n",
        "line 4: duplicate edge 0 -> 1 (first on line 3)" );
      ("cycle", "graphio 1\nn 2 m 2\ne 0 1\ne 1 0\n", "cycle");
      ( "count mismatch",
        "graphio 1\nn 2 m 3\ne 0 1\n",
        "edge count mismatch (declared 3, found 1)" );
    ]

let () =
  Alcotest.run "graphio_store"
    [
      ( "corpus",
        [
          Alcotest.test_case "truncated" `Quick test_truncated;
          Alcotest.test_case "bad magic" `Quick test_bad_magic;
          Alcotest.test_case "bad version" `Quick test_bad_version;
          Alcotest.test_case "header flips" `Quick test_header_flip;
          Alcotest.test_case "body flips" `Quick test_body_flip;
          Alcotest.test_case "checksum-valid structural damage" `Quick
            test_malformed_structure;
        ] );
      ( "faults",
        [
          Alcotest.test_case "torn and flipped writes fail closed" `Quick
            test_torn_write_fails_closed;
          Alcotest.test_case "failed write and rename leave nothing" `Quick
            test_failed_write_and_rename;
          Alcotest.test_case "injected read faults" `Quick
            test_injected_read_faults;
        ] );
      ( "convert",
        [
          Alcotest.test_case "byte-identical to Store.write" `Quick
            test_convert_matches_write;
          Alcotest.test_case "line-numbered errors" `Quick
            test_convert_line_errors;
        ] );
    ]
