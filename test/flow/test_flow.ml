open Graphio_flow
open Graphio_graph

(* ------------------------------------------------------------------ *)
(* Dinic                                                               *)
(* ------------------------------------------------------------------ *)

let test_dinic_single_edge () =
  let net = Dinic.create 2 in
  Dinic.add_edge net ~src:0 ~dst:1 ~cap:5;
  Alcotest.(check int) "flow" 5 (Dinic.max_flow net ~s:0 ~sink:1)

let test_dinic_series_bottleneck () =
  let net = Dinic.create 3 in
  Dinic.add_edge net ~src:0 ~dst:1 ~cap:7;
  Dinic.add_edge net ~src:1 ~dst:2 ~cap:3;
  Alcotest.(check int) "bottleneck" 3 (Dinic.max_flow net ~s:0 ~sink:2)

let test_dinic_parallel_paths () =
  let net = Dinic.create 4 in
  Dinic.add_edge net ~src:0 ~dst:1 ~cap:2;
  Dinic.add_edge net ~src:0 ~dst:2 ~cap:3;
  Dinic.add_edge net ~src:1 ~dst:3 ~cap:2;
  Dinic.add_edge net ~src:2 ~dst:3 ~cap:4;
  Alcotest.(check int) "sum" 5 (Dinic.max_flow net ~s:0 ~sink:3)

let test_dinic_classic_textbook () =
  (* The classic CLRS network with max flow 23. *)
  let net = Dinic.create 6 in
  let edges =
    [ (0, 1, 16); (0, 2, 13); (1, 2, 10); (2, 1, 4); (1, 3, 12); (3, 2, 9);
      (2, 4, 14); (4, 3, 7); (3, 5, 20); (4, 5, 4) ]
  in
  List.iter (fun (src, dst, cap) -> Dinic.add_edge net ~src ~dst ~cap) edges;
  Alcotest.(check int) "clrs" 23 (Dinic.max_flow net ~s:0 ~sink:5)

let test_dinic_disconnected () =
  let net = Dinic.create 4 in
  Dinic.add_edge net ~src:0 ~dst:1 ~cap:9;
  Dinic.add_edge net ~src:2 ~dst:3 ~cap:9;
  Alcotest.(check int) "no path" 0 (Dinic.max_flow net ~s:0 ~sink:3)

let test_dinic_mincut_matches_flow () =
  let net = Dinic.create 6 in
  let edges =
    [ (0, 1, 16); (0, 2, 13); (1, 2, 10); (2, 1, 4); (1, 3, 12); (3, 2, 9);
      (2, 4, 14); (4, 3, 7); (3, 5, 20); (4, 5, 4) ]
  in
  List.iter (fun (src, dst, cap) -> Dinic.add_edge net ~src ~dst ~cap) edges;
  let flow = Dinic.max_flow net ~s:0 ~sink:5 in
  let side = Dinic.min_cut_side net ~s:0 in
  Alcotest.(check bool) "s in side" true side.(0);
  Alcotest.(check bool) "t out of side" false side.(5);
  Alcotest.(check int) "cut = flow" flow (Dinic.cut_value net side)

let test_dinic_zero_capacity () =
  let net = Dinic.create 2 in
  Dinic.add_edge net ~src:0 ~dst:1 ~cap:0;
  Alcotest.(check int) "zero" 0 (Dinic.max_flow net ~s:0 ~sink:1)

let test_dinic_parallel_edges () =
  let net = Dinic.create 2 in
  Dinic.add_edge net ~src:0 ~dst:1 ~cap:2;
  Dinic.add_edge net ~src:0 ~dst:1 ~cap:3;
  Alcotest.(check int) "summed" 5 (Dinic.max_flow net ~s:0 ~sink:1)

let test_dinic_validation () =
  let net = Dinic.create 2 in
  Alcotest.check_raises "same node" (Invalid_argument "Dinic.max_flow: source equals sink")
    (fun () -> ignore (Dinic.max_flow net ~s:0 ~sink:0));
  Alcotest.check_raises "negative cap" (Invalid_argument "Dinic.add_edge: negative capacity")
    (fun () -> Dinic.add_edge net ~src:0 ~dst:1 ~cap:(-1));
  Alcotest.check_raises "bad node" (Invalid_argument "Dinic.add_edge: node out of range")
    (fun () -> Dinic.add_edge net ~src:0 ~dst:7 ~cap:1)

(* Brute-force min cut over all vertex bipartitions, for cross-checking. *)
let brute_force_min_cut n edges ~s ~sink =
  let best = ref max_int in
  for mask = 0 to (1 lsl n) - 1 do
    if mask land (1 lsl s) <> 0 && mask land (1 lsl sink) = 0 then begin
      let cut =
        List.fold_left
          (fun acc (u, v, c) ->
            if mask land (1 lsl u) <> 0 && mask land (1 lsl v) = 0 then acc + c
            else acc)
          0 edges
      in
      if cut < !best then best := cut
    end
  done;
  !best

let test_dinic_vs_brute_force_random () =
  let rng = Graphio_la.Rng.create 31 in
  for trial = 1 to 30 do
    let n = 4 + Graphio_la.Rng.int rng 5 in
    let edges = ref [] in
    for u = 0 to n - 1 do
      for v = 0 to n - 1 do
        if u <> v && Graphio_la.Rng.float rng < 0.4 then
          edges := (u, v, 1 + Graphio_la.Rng.int rng 9) :: !edges
      done
    done;
    let net = Dinic.create n in
    List.iter (fun (src, dst, cap) -> Dinic.add_edge net ~src ~dst ~cap) !edges;
    let flow = Dinic.max_flow net ~s:0 ~sink:(n - 1) in
    let brute = brute_force_min_cut n !edges ~s:0 ~sink:(n - 1) in
    Alcotest.(check int) (Printf.sprintf "trial %d" trial) brute flow
  done

(* ------------------------------------------------------------------ *)
(* Partition                                                           *)
(* ------------------------------------------------------------------ *)

let test_partition_sizes () =
  let g = Graphio_workloads.Fft.build 4 in
  let part = Partition.balanced g ~part_size:10 in
  Alcotest.(check int) "labelled all" (Dag.n_vertices g) (Array.length part);
  for p = 0 to Partition.count part - 1 do
    Alcotest.(check bool) "size cap" true (Array.length (Partition.members part p) <= 10)
  done;
  (* every vertex in exactly one part *)
  let total =
    List.init (Partition.count part) (fun p -> Array.length (Partition.members part p))
    |> List.fold_left ( + ) 0
  in
  Alcotest.(check int) "total" (Dag.n_vertices g) total

let test_partition_part_size_one () =
  let g = Graphio_workloads.Inner_product.build 3 in
  let part = Partition.balanced g ~part_size:1 in
  Alcotest.(check int) "n parts" (Dag.n_vertices g) (Partition.count part)

let test_partition_rejects_zero () =
  let g = Graphio_workloads.Inner_product.build 2 in
  Alcotest.check_raises "zero" (Invalid_argument "Partition.balanced: part_size must be >= 1")
    (fun () -> ignore (Partition.balanced g ~part_size:0))

(* ------------------------------------------------------------------ *)
(* Convex min-cut                                                      *)
(* ------------------------------------------------------------------ *)

let test_wavefront_chain () =
  (* On a simple chain every non-sink vertex has wavefront exactly 1. *)
  let g = Dag.of_edges ~n:5 (List.init 4 (fun i -> (i, i + 1))) in
  for v = 0 to 3 do
    Alcotest.(check int) "chain wavefront" 1 (Convex_mincut.min_wavefront g v)
  done;
  Alcotest.(check int) "sink" 0 (Convex_mincut.min_wavefront g 4)

let test_wavefront_diamond () =
  let g = Dag.of_edges ~n:4 [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  (* after evaluating 1 (and forced ancestor 0): S = {0,1}; both 0 and 1
     have edges out -> wavefront 2; no smaller convex choice exists. *)
  Alcotest.(check int) "after 1" 2 (Convex_mincut.min_wavefront g 1);
  (* after 0: S can be just {0}: wavefront 1. *)
  Alcotest.(check int) "after 0" 1 (Convex_mincut.min_wavefront g 0);
  Alcotest.(check int) "sink" 0 (Convex_mincut.min_wavefront g 3)

let test_wavefront_wide_fanin () =
  (* k independent sources feeding one sink: after source i is evaluated
     the minimal S is {i} alone -> wavefront 1. *)
  let k = 6 in
  let g = Dag.of_edges ~n:(k + 1) (List.init k (fun i -> (i, k))) in
  for v = 0 to k - 1 do
    Alcotest.(check int) "source wavefront" 1 (Convex_mincut.min_wavefront g v)
  done

let test_wavefront_grid_middle () =
  (* A 2-row ladder forces a wide wavefront in the middle:
     0 -> 1 -> 2 -> 3 (top row), 4 -> 5 -> 6 -> 7 (bottom row),
     plus rungs i -> i+4.  After evaluating 3 (whole top row computed),
     every top vertex with a pending rung contributes. *)
  let top = List.init 3 (fun i -> (i, i + 1)) in
  let bottom = List.init 3 (fun i -> (i + 4, i + 5)) in
  let rungs = List.init 4 (fun i -> (i, i + 4)) in
  let g = Dag.of_edges ~n:8 (top @ bottom @ rungs) in
  (* after 3: minimal downward-closed S containing {0,1,2,3}; can include
     bottom prefix. If S = {0..3}: wavefront = 4 rungs... but including
     bottom vertices closes some rungs: S = {0,1,2,3,4}: 4 still has edge
     to 5: wavefront {1,2,3 rungs} + {4->5} = 4. Exhaustively the minimum
     is 4 (vertex 3 itself is a sink-free?). 3 -> 7 rung pending, etc. *)
  let c = Convex_mincut.min_wavefront g 3 in
  Alcotest.(check bool) "wide middle" true (c >= 2)

(* Brute-force C(v): enumerate all downward-closed sets containing v and
   excluding descendants; minimize boundary vertices. *)
let brute_force_wavefront g v =
  let n = Dag.n_vertices g in
  if Dag.out_degree g v = 0 then 0
  else begin
    let best = ref max_int in
    for mask = 0 to (1 lsl n) - 1 do
      if mask land (1 lsl v) <> 0 then begin
        (* downward-closed? *)
        let ok = ref true in
        Dag.iter_edges g (fun u w ->
            if mask land (1 lsl w) <> 0 && mask land (1 lsl u) = 0 then ok := false);
        (* v's descendants excluded?  (they can't be evaluated before v) *)
        let desc_ok = ref true in
        let rec visit u =
          Dag.iter_succ g u (fun w ->
              if mask land (1 lsl w) <> 0 then desc_ok := false;
              visit w)
        in
        visit v;
        if !ok && !desc_ok then begin
          let boundary = ref 0 in
          for u = 0 to n - 1 do
            if mask land (1 lsl u) <> 0 then begin
              let has_out = ref false in
              Dag.iter_succ g u (fun w ->
                  if mask land (1 lsl w) = 0 then has_out := true);
              if !has_out then incr boundary
            end
          done;
          if !boundary < !best then best := !boundary
        end
      end
    done;
    !best
  end

let test_wavefront_vs_brute_force () =
  let rng = Graphio_la.Rng.create 91 in
  for trial = 1 to 25 do
    let n = 4 + Graphio_la.Rng.int rng 6 in
    let g = Er.gnp ~n ~p:0.35 ~seed:(trial * 101) in
    for v = 0 to n - 1 do
      Alcotest.(check int)
        (Printf.sprintf "trial %d vertex %d" trial v)
        (brute_force_wavefront g v)
        (Convex_mincut.min_wavefront g v)
    done
  done

let test_bound_formula () =
  let g = Dag.of_edges ~n:4 [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  (* max wavefront is 2 (vertex 1 or 2); bound = max(0, 2*(2 - M)) *)
  Alcotest.(check int) "M=1" 2 (Convex_mincut.bound g ~m:1);
  Alcotest.(check int) "M=2" 0 (Convex_mincut.bound g ~m:2);
  Alcotest.(check int) "M=5" 0 (Convex_mincut.bound g ~m:5)

let test_bound_detailed () =
  let g = Dag.of_edges ~n:4 [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  let value, best = Convex_mincut.bound_detailed g ~m:1 in
  Alcotest.(check int) "value" 2 value;
  Alcotest.(check int) "wavefront" 2 best.Convex_mincut.wavefront

let test_bound_monotone_in_m () =
  let g = Graphio_workloads.Fft.build 4 in
  let b4 = Convex_mincut.bound g ~m:4 in
  let b8 = Convex_mincut.bound g ~m:8 in
  let b16 = Convex_mincut.bound g ~m:16 in
  Alcotest.(check bool) "monotone" true (b4 >= b8 && b8 >= b16)

let test_bound_partitioned_often_trivial () =
  (* Reproduces the paper's observation: with the suggested 2M part size
     the partitioned baseline is trivial on complex graphs. *)
  let g = Graphio_workloads.Matmul.build 4 in
  let m = 8 in
  let b = Convex_mincut.bound_partitioned g ~m ~part_size:(2 * m) in
  Alcotest.(check int) "trivial" 0 b

let test_empty_graph_bound () =
  let g = Dag.of_edges ~n:0 [] in
  Alcotest.(check int) "empty" 0 (Convex_mincut.bound g ~m:4)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let er_gen =
  QCheck2.Gen.(
    let* n = int_range 2 12 in
    let* seed = int_range 0 10000 in
    return (Er.gnp ~n ~p:0.3 ~seed))

let prop_wavefront_bounded =
  QCheck2.Test.make ~name:"wavefront bounded by n" ~count:50 er_gen (fun g ->
      let ok = ref true in
      for v = 0 to Dag.n_vertices g - 1 do
        let c = Convex_mincut.min_wavefront g v in
        if c < 0 || c > Dag.n_vertices g then ok := false;
        (* a vertex with successors is itself on the wavefront *)
        if Dag.out_degree g v > 0 && c < 1 then ok := false
      done;
      !ok)

let prop_mincut_brute_small =
  QCheck2.Test.make ~name:"convex min-cut matches brute force" ~count:25
    QCheck2.Gen.(
      let* n = int_range 3 9 in
      let* seed = int_range 0 10000 in
      return (Er.gnp ~n ~p:0.4 ~seed))
    (fun g ->
      let ok = ref true in
      for v = 0 to Dag.n_vertices g - 1 do
        if brute_force_wavefront g v <> Convex_mincut.min_wavefront g v then
          ok := false
      done;
      !ok)

let props =
  List.map QCheck_alcotest.to_alcotest [ prop_wavefront_bounded; prop_mincut_brute_small ]

let () =
  Alcotest.run "graphio_flow"
    [
      ( "dinic",
        [
          Alcotest.test_case "single edge" `Quick test_dinic_single_edge;
          Alcotest.test_case "series bottleneck" `Quick test_dinic_series_bottleneck;
          Alcotest.test_case "parallel paths" `Quick test_dinic_parallel_paths;
          Alcotest.test_case "textbook network" `Quick test_dinic_classic_textbook;
          Alcotest.test_case "disconnected" `Quick test_dinic_disconnected;
          Alcotest.test_case "min cut matches flow" `Quick test_dinic_mincut_matches_flow;
          Alcotest.test_case "zero capacity" `Quick test_dinic_zero_capacity;
          Alcotest.test_case "parallel edges" `Quick test_dinic_parallel_edges;
          Alcotest.test_case "validation" `Quick test_dinic_validation;
          Alcotest.test_case "vs brute force" `Quick test_dinic_vs_brute_force_random;
        ] );
      ( "partition",
        [
          Alcotest.test_case "balanced sizes" `Quick test_partition_sizes;
          Alcotest.test_case "part size one" `Quick test_partition_part_size_one;
          Alcotest.test_case "rejects zero" `Quick test_partition_rejects_zero;
        ] );
      ( "convex-mincut",
        [
          Alcotest.test_case "chain wavefronts" `Quick test_wavefront_chain;
          Alcotest.test_case "diamond wavefronts" `Quick test_wavefront_diamond;
          Alcotest.test_case "wide fan-in" `Quick test_wavefront_wide_fanin;
          Alcotest.test_case "ladder middle" `Quick test_wavefront_grid_middle;
          Alcotest.test_case "vs brute force" `Quick test_wavefront_vs_brute_force;
          Alcotest.test_case "bound formula" `Quick test_bound_formula;
          Alcotest.test_case "bound detailed" `Quick test_bound_detailed;
          Alcotest.test_case "monotone in M" `Quick test_bound_monotone_in_m;
          Alcotest.test_case "partitioned variant trivial" `Quick
            test_bound_partitioned_often_trivial;
          Alcotest.test_case "empty graph" `Quick test_empty_graph_bound;
        ] );
      ("properties", props);
    ]
