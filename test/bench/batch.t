The bench batch section runs the same job sweep through Solver.bound_batch
twice — sequentially and on a -j N domain pool — and records the speedup in
the --json trajectory.  Wall-clock values are machine-dependent, so only
the deterministic lines and JSON fields are checked.

  $ ../../bench/main.exe --quick -j 2 --json bench.json batch | grep -E "^(jobs|spectrum)" | sed -E 's/ +$//'
  jobs                  24
  spectrum cache hits   12

  $ grep -o '"section":"batch"' bench.json
  "section":"batch"
  $ grep -o '"jobs":24' bench.json
  "jobs":24
  $ grep -o '"j":2' bench.json
  "j":2
  $ grep -oE '"(ncores|seq_s|par_s|speedup)":' bench.json | sort
  "ncores":
  "par_s":
  "seq_s":
  "speedup":

The section forces the numeric tier, so the recorded matvec counts are
real work — and the pool changes who runs the matvecs, never how many
run, so the sequential and pooled counts must agree exactly:

  $ seq=$(grep -o '"seq_matvecs":[0-9]*' bench.json | cut -d: -f2)
  $ par=$(grep -o '"par_matvecs":[0-9]*' bench.json | cut -d: -f2)
  $ test -n "$seq" && test "$seq" -gt 0 && test "$seq" = "$par" && echo "equal and nonzero"
  equal and nonzero

-j rejects garbage:

  $ ../../bench/main.exe -j nope batch
  bench: -j requires a positive integer
  [2]
