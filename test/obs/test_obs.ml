open Graphio_obs

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)
(* ------------------------------------------------------------------ *)

let test_clock_monotone () =
  let a = Clock.now_ns () in
  let b = Clock.now_ns () in
  Alcotest.(check bool) "non-decreasing" true (b >= a);
  Alcotest.(check bool) "plausible magnitude" true (a > 0);
  let x, dt = Clock.time (fun () -> Sys.opaque_identity 42) in
  Alcotest.(check int) "value passed through" 42 x;
  Alcotest.(check bool) "duration non-negative" true (dt >= 0.0)

(* ------------------------------------------------------------------ *)
(* Jsonx                                                               *)
(* ------------------------------------------------------------------ *)

let test_jsonx_round_trip () =
  let doc =
    Jsonx.Obj
      [
        ("s", Jsonx.String "a \"quoted\"\nline");
        ("i", Jsonx.Int (-42));
        ("f", Jsonx.Float 0.125);
        ("b", Jsonx.Bool true);
        ("null", Jsonx.Null);
        ("l", Jsonx.List [ Jsonx.Int 1; Jsonx.Float 2.5; Jsonx.String "x" ]);
        ("o", Jsonx.Obj [ ("nested", Jsonx.Bool false) ]);
      ]
  in
  let reparsed = Jsonx.of_string (Jsonx.to_string doc) in
  Alcotest.(check bool) "round-trips" true (reparsed = doc);
  Alcotest.(check bool) "member" true
    (Jsonx.member "i" doc = Some (Jsonx.Int (-42)));
  Alcotest.(check bool) "absent member" true (Jsonx.member "zzz" doc = None)

let test_jsonx_malformed () =
  List.iter
    (fun s ->
      match Jsonx.of_string s with
      | exception Failure _ -> ()
      | v -> Alcotest.failf "parsed %S as %s" s (Jsonx.to_string v))
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2" ]

let test_jsonx_non_finite () =
  Alcotest.(check string) "nan is null" "null" (Jsonx.to_string (Jsonx.Float Float.nan));
  Alcotest.(check string) "inf is null" "null"
    (Jsonx.to_string (Jsonx.Float Float.infinity))

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_counters () =
  Metrics.reset ();
  let c = Metrics.counter "test.counter" in
  Metrics.incr c;
  Metrics.add c 41;
  Alcotest.(check int) "accumulates" 42 (Metrics.counter_value c);
  (* handles registered under the same name share state *)
  let c' = Metrics.counter "test.counter" in
  Metrics.incr c';
  Alcotest.(check int) "shared handle" 43 (Metrics.counter_value c);
  Alcotest.check_raises "negative add"
    (Invalid_argument "Metrics.add: negative delta on \"test.counter\"")
    (fun () -> Metrics.add c (-1));
  (match Metrics.gauge "test.counter" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind clash not rejected");
  Metrics.reset ();
  Alcotest.(check int) "reset zeroes" 0 (Metrics.counter_value c)

let test_histograms () =
  Metrics.reset ();
  let h = Metrics.histogram ~buckets:[| 1.0; 10.0; 100.0 |] "test.hist" in
  List.iter (Metrics.observe h) [ 0.5; 5.0; 5.0; 50.0; 5000.0 ];
  (match Metrics.find (Metrics.snapshot ()) "test.hist" with
  | Some (Metrics.Histogram { buckets; counts; sum; count }) ->
      Alcotest.(check (array (float 0.0))) "bucket bounds" [| 1.0; 10.0; 100.0 |] buckets;
      Alcotest.(check (array int)) "bucket counts" [| 1; 2; 1; 1 |] counts;
      Alcotest.(check (float 1e-9)) "sum" 5060.5 sum;
      Alcotest.(check int) "count" 5 count
  | _ -> Alcotest.fail "histogram missing from snapshot");
  (match Metrics.histogram ~buckets:[| 3.0; 2.0 |] "test.hist.bad" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unsorted buckets not rejected");
  let timed = Metrics.time h (fun () -> "done") in
  Alcotest.(check string) "time passes value" "done" timed

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1)) in
  scan 0

let test_metrics_json_round_trip () =
  Metrics.reset ();
  let c = Metrics.counter "test.rt.counter" in
  Metrics.add c 7;
  Metrics.set (Metrics.gauge "test.rt.gauge") 2.5;
  Metrics.observe (Metrics.histogram "test.rt.hist") 0.003;
  let snap = Metrics.snapshot () in
  let reparsed =
    Metrics.of_json (Jsonx.of_string (Jsonx.to_string (Metrics.to_json snap)))
  in
  Alcotest.(check bool) "snapshot round-trips through JSON text" true
    (Metrics.equal snap reparsed);
  let rendered = Metrics.render_text snap in
  Alcotest.(check bool) "render mentions the counter" true
    (contains rendered "test.rt.counter");
  Alcotest.(check bool) "render mentions its value" true (contains rendered "7")

(* Shared handles, hammered from several domains at once: every update
   must land (atomics for counters/gauges, a mutex per histogram) —
   lost increments would silently understate served traffic. *)
let test_metrics_domain_safety () =
  Metrics.reset ();
  let c = Metrics.counter "test.hammer.counter" in
  let h = Metrics.histogram ~buckets:[| 1.0; 2.0 |] "test.hammer.hist" in
  let domains = 4 and per_domain = 50_000 in
  let workers =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              Metrics.incr c;
              if i mod 100 = 0 then
                Metrics.observe h (float_of_int ((d + i) mod 3))
            done))
  in
  List.iter Domain.join workers;
  Alcotest.(check int) "no lost counter increments" (domains * per_domain)
    (Metrics.counter_value c);
  match Metrics.find (Metrics.snapshot ()) "test.hammer.hist" with
  | Some (Metrics.Histogram { count; counts; _ }) ->
      Alcotest.(check int) "no lost observations"
        (domains * (per_domain / 100))
        count;
      Alcotest.(check int) "bucket counts sum to count" count
        (Array.fold_left ( + ) 0 counts)
  | _ -> Alcotest.fail "hammered histogram missing"

(* ------------------------------------------------------------------ *)
(* Quantiles                                                           *)
(* ------------------------------------------------------------------ *)

let test_quantile_edges () =
  Metrics.reset ();
  let h = Metrics.histogram ~buckets:[| 1.0; 2.0; 4.0 |] "test.q.hist" in
  Alcotest.(check bool) "empty histogram has no quantiles" true
    (Metrics.quantile h 0.5 = None);
  (match Metrics.quantile h 1.5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "q > 1 not rejected");
  (match Metrics.quantile h Float.nan with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "nan q not rejected");
  (* one observation in (1, 2]: every quantile interpolates inside it *)
  Metrics.observe h 1.5;
  (match Metrics.quantile h 0.5 with
  | Some v -> Alcotest.(check bool) "inside its bucket" true (v > 1.0 && v <= 2.0)
  | None -> Alcotest.fail "non-empty histogram");
  (* overflow observations clamp to the last finite bound *)
  Metrics.reset ();
  Metrics.observe h 100.0;
  Alcotest.(check (option (float 1e-9))) "overflow clamps" (Some 4.0)
    (Metrics.quantile h 0.99);
  (* uniform fill: the median of 1..100 over buckets [25;50;75;100] must
     land in the (25, 50] bucket *)
  Metrics.reset ();
  let h2 = Metrics.histogram ~buckets:[| 25.0; 50.0; 75.0; 100.0 |] "test.q.u" in
  for i = 1 to 100 do
    Metrics.observe h2 (float_of_int i)
  done;
  match Metrics.quantile h2 0.5 with
  | Some v -> Alcotest.(check bool) "median in median bucket" true (v > 25.0 && v <= 50.0)
  | None -> Alcotest.fail "non-empty histogram"

(* Property: the interpolated quantile always lands in the bucket holding
   the exact sorted-sample quantile (rank ceil(q*n), 1-based).  Oracle is
   a sort of the raw samples — the thing the histogram approximates. *)
let quantile_vs_oracle_prop =
  let buckets = [| 0.001; 0.01; 0.1; 1.0; 10.0 |] in
  let bucket_index v =
    let i = ref 0 in
    while !i < Array.length buckets && v > buckets.(!i) do
      incr i
    done;
    !i
  in
  let gen =
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 200) (float_range 0.0001 20.0))
        (float_range 0.0 1.0))
  in
  QCheck2.Test.make ~name:"quantile lands in the oracle's bucket" ~count:200 gen
    (fun (samples, q) ->
      Metrics.reset ();
      let h = Metrics.histogram ~buckets "test.q.prop" in
      List.iter (Metrics.observe h) samples;
      let est =
        match Metrics.quantile h q with
        | Some v -> v
        | None -> QCheck2.Test.fail_report "empty quantile on non-empty data"
      in
      let sorted = List.sort compare samples |> Array.of_list in
      let n = Array.length sorted in
      let rank =
        max 0 (int_of_float (Float.ceil (q *. float_of_int n)) - 1)
      in
      let oracle = sorted.(min rank (n - 1)) in
      let oi = bucket_index oracle in
      if oi >= Array.length buckets then
        (* oracle overflows: the estimate clamps to the last bound *)
        est = buckets.(Array.length buckets - 1)
      else
        let lo = if oi = 0 then 0.0 else buckets.(oi - 1) in
        est >= lo && est <= buckets.(oi))

(* ------------------------------------------------------------------ *)
(* Prometheus exposition                                               *)
(* ------------------------------------------------------------------ *)

(* One line of the text exposition format: a comment (# HELP / # TYPE) or
   [name[{labels}] value] with a sanitized metric name. *)
let prometheus_line_ok line =
  let is_name_char c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_' || c = ':'
  in
  if line = "" then true
  else if String.length line >= 2 && String.sub line 0 2 = "# " then
    contains line "# HELP " || contains line "# TYPE "
  else
    match String.index_opt line ' ' with
    | None -> false
    | Some sp ->
        let name_part = String.sub line 0 sp in
        let name_end =
          match String.index_opt name_part '{' with
          | Some b -> String.ends_with ~suffix:"}" name_part && b > 0
          | None -> String.for_all is_name_char name_part
        in
        let value = String.sub line (sp + 1) (String.length line - sp - 1) in
        name_end && (value = "+Inf" || Float.of_string_opt value <> None)

let test_prometheus_render () =
  Metrics.reset ();
  let c = Metrics.counter ~help:"a counter" "test.prom.counter" in
  Metrics.add c 5;
  Metrics.set (Metrics.gauge "test.prom.gauge") 1.25;
  let h = Metrics.histogram ~buckets:[| 0.1; 1.0 |] "test.prom.hist" in
  List.iter (Metrics.observe h) [ 0.05; 0.5; 0.5; 3.0 ];
  let text = Metrics.render_prometheus (Metrics.snapshot ()) in
  List.iteri
    (fun i line ->
      if not (prometheus_line_ok line) then
        Alcotest.failf "line %d violates the exposition grammar: %S" (i + 1) line)
    (String.split_on_char '\n' text);
  Alcotest.(check bool) "names are sanitized" true
    (contains text "test_prom_counter 5");
  Alcotest.(check bool) "help rendered" true
    (contains text "# HELP test_prom_counter a counter");
  Alcotest.(check bool) "type rendered" true
    (contains text "# TYPE test_prom_hist histogram");
  (* histogram buckets are cumulative, and +Inf carries the total *)
  Alcotest.(check bool) "le=0.1 cumulative" true
    (contains text "test_prom_hist_bucket{le=\"0.1\"} 1");
  Alcotest.(check bool) "le=1 cumulative" true
    (contains text "test_prom_hist_bucket{le=\"1\"} 3");
  Alcotest.(check bool) "+Inf is the count" true
    (contains text "test_prom_hist_bucket{le=\"+Inf\"} 4");
  Alcotest.(check bool) "sum" true (contains text "test_prom_hist_sum 4.05");
  Alcotest.(check bool) "count" true (contains text "test_prom_hist_count 4")

(* ------------------------------------------------------------------ *)
(* Ctx and Log                                                         *)
(* ------------------------------------------------------------------ *)

let test_ctx () =
  Alcotest.(check bool) "no ambient id by default" true (Ctx.rid () = None);
  let a = Ctx.fresh () and b = Ctx.fresh () in
  Alcotest.(check bool) "fresh ids are distinct" true (a <> b);
  Alcotest.(check bool) "prefix respected" true
    (String.length (Ctx.fresh ~prefix:"conn" ()) > 5
    && String.sub (Ctx.fresh ~prefix:"conn" ()) 0 5 = "conn-");
  let seen = ref [] in
  Ctx.with_rid "outer" (fun () ->
      seen := Ctx.rid () :: !seen;
      Ctx.with_rid "inner" (fun () -> seen := Ctx.rid () :: !seen);
      seen := Ctx.rid () :: !seen);
  Alcotest.(check bool) "nesting restores" true
    (!seen = [ Some "outer"; Some "inner"; Some "outer" ]);
  Alcotest.(check bool) "restored to none" true (Ctx.rid () = None);
  (match Ctx.with_rid "boom" (fun () -> failwith "x") with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "exception swallowed");
  Alcotest.(check bool) "restored after raise" true (Ctx.rid () = None);
  (* domain-local: a spawned domain does not see the parent's id *)
  Ctx.with_rid "parent" (fun () ->
      let child = Domain.spawn (fun () -> Ctx.rid ()) in
      Alcotest.(check bool) "child domain starts clean" true
        (Domain.join child = None))

let read_lines path = In_channel.with_open_text path In_channel.input_lines

let test_log_emit () =
  let path = Filename.temp_file "graphio_log" ".ndjson" in
  Fun.protect
    ~finally:(fun () ->
      Log.close ();
      Log.set_level Log.Info;
      Sys.remove path)
    (fun () ->
      Log.open_file path;
      Log.set_level Log.Info;
      Log.emit "test.plain" [ ("k", Jsonx.Int 1) ];
      Ctx.with_rid "req-test" (fun () ->
          Log.emit "test.with_rid" [ ("k", Jsonx.Int 2) ]);
      Log.emit ~level:Log.Debug "test.filtered" [];
      Alcotest.(check bool) "debug disabled at info" false (Log.enabled Log.Debug);
      Log.set_level Log.Debug;
      Log.emit ~level:Log.Debug "test.debug" [];
      Log.close ();
      match read_lines path with
      | [ l1; l2; l3 ] ->
          let j1 = Jsonx.of_string l1 and j2 = Jsonx.of_string l2 in
          Alcotest.(check bool) "event name" true
            (Jsonx.member "event" j1 = Some (Jsonx.String "test.plain"));
          Alcotest.(check bool) "level stamped" true
            (Jsonx.member "level" j1 = Some (Jsonx.String "info"));
          Alcotest.(check bool) "ts_ns present" true
            (match Jsonx.member "ts_ns" j1 with Some (Jsonx.Int t) -> t > 0 | _ -> false);
          Alcotest.(check bool) "no rid without ambient id" true
            (Jsonx.member "rid" j1 = None);
          Alcotest.(check bool) "ambient rid attached" true
            (Jsonx.member "rid" j2 = Some (Jsonx.String "req-test"));
          Alcotest.(check bool) "field payload" true
            (Jsonx.member "k" j2 = Some (Jsonx.Int 2));
          Alcotest.(check bool) "debug after level change" true
            (Jsonx.member "event" (Jsonx.of_string l3)
            = Some (Jsonx.String "test.debug"))
      | ls -> Alcotest.failf "expected 3 log lines, got %d" (List.length ls))

let test_log_no_sink_noop () =
  Log.close ();
  (* must be a no-op, not a crash, when no sink is installed *)
  Log.emit "test.nowhere" [ ("x", Jsonx.Int 1) ];
  Alcotest.(check bool) "disabled without sink" false (Log.enabled Log.Error)

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let test_spans_disabled_hot_path () =
  Span.set_enabled false;
  Span.clear ();
  let m =
    Graphio_la.Csr.of_triplets ~rows:2 ~cols:2 [ (0, 0, 2.0); (1, 1, 3.0) ]
  in
  let matvec_counter = Metrics.counter "la.csr.matvecs" in
  let before = Metrics.counter_value matvec_counter in
  for _ = 1 to 100 do
    ignore (Graphio_la.Csr.matvec m [| 1.0; 1.0 |])
  done;
  (* the span-instrumented dense eigenpath, still with tracing disabled *)
  ignore (Graphio_la.Eigen.smallest ~h:2 m);
  Alcotest.(check int) "no span records while disabled" 0 (Span.record_count ());
  Alcotest.(check bool) "counters still count" true
    (Metrics.counter_value matvec_counter - before >= 100)

let test_spans_nested () =
  Span.set_enabled true;
  Span.clear ();
  let r =
    Span.with_ "outer" (fun () ->
        Span.with_ "inner" (fun () -> Sys.opaque_identity 7))
  in
  Span.set_enabled false;
  Alcotest.(check int) "value through spans" 7 r;
  match Span.records () with
  | [ inner; outer ] ->
      Alcotest.(check string) "inner completes first" "inner" inner.Span.name;
      Alcotest.(check string) "outer completes last" "outer" outer.Span.name;
      Alcotest.(check int) "inner depth" 1 inner.Span.depth;
      Alcotest.(check int) "outer depth" 0 outer.Span.depth;
      Alcotest.(check bool) "inner starts within outer" true
        (inner.Span.start_ns >= outer.Span.start_ns);
      Alcotest.(check bool) "inner ends within outer" true
        (inner.Span.start_ns + inner.Span.dur_ns
        <= outer.Span.start_ns + outer.Span.dur_ns)
  | rs -> Alcotest.failf "expected 2 records, got %d" (List.length rs)

let test_spans_exception_safe () =
  Span.set_enabled true;
  Span.clear ();
  (match Span.with_ "boom" (fun () -> failwith "expected") with
  | exception Failure msg -> Alcotest.(check string) "re-raised" "expected" msg
  | _ -> Alcotest.fail "exception swallowed");
  Span.set_enabled false;
  Alcotest.(check int) "span recorded despite raise" 1 (Span.record_count ());
  Span.clear ()

let test_trace_event_export () =
  Span.set_enabled true;
  Span.clear ();
  Span.with_ "parent" (fun () ->
      Span.with_ "child" (fun () -> ignore (Sys.opaque_identity 1)));
  Span.set_enabled false;
  let doc = Span.to_trace_json () in
  (* must survive its own printer/parser: what we write to disk is valid *)
  let reparsed = Jsonx.of_string (Jsonx.to_string doc) in
  (match Jsonx.member "traceEvents" reparsed with
  | Some (Jsonx.List events) ->
      Alcotest.(check int) "two events" 2 (List.length events);
      List.iter
        (fun ev ->
          Alcotest.(check bool) "complete-event phase" true
            (Jsonx.member "ph" ev = Some (Jsonx.String "X"));
          (match Jsonx.member "name" ev with
          | Some (Jsonx.String ("parent" | "child")) -> ()
          | other ->
              Alcotest.failf "unexpected name field: %s"
                (match other with Some v -> Jsonx.to_string v | None -> "absent"));
          (match Jsonx.member "ts" ev with
          | Some (Jsonx.Float ts) ->
              Alcotest.(check bool) "ts non-negative" true (ts >= 0.0)
          | Some (Jsonx.Int ts) ->
              Alcotest.(check bool) "ts non-negative" true (ts >= 0)
          | _ -> Alcotest.fail "missing ts");
          match Jsonx.member "dur" ev with
          | Some (Jsonx.Float _ | Jsonx.Int _) -> ()
          | _ -> Alcotest.fail "missing dur")
        events
  | _ -> Alcotest.fail "no traceEvents array");
  Span.clear ()

let test_span_rid () =
  Span.set_enabled true;
  Span.clear ();
  Ctx.with_rid "req-span" (fun () ->
      Span.with_ "correlated" (fun () -> ignore (Sys.opaque_identity 1)));
  Span.with_ "uncorrelated" (fun () -> ignore (Sys.opaque_identity 2));
  Span.set_enabled false;
  (match Span.records () with
  | [ a; b ] ->
      Alcotest.(check bool) "ambient rid captured" true
        (a.Span.rid = Some "req-span");
      Alcotest.(check bool) "no rid without ambient id" true (b.Span.rid = None)
  | rs -> Alcotest.failf "expected 2 records, got %d" (List.length rs));
  let doc = Jsonx.to_string (Span.to_trace_json ()) in
  Alcotest.(check bool) "rid exported in trace args" true
    (contains doc "\"rid\":\"req-span\"");
  Span.clear ()

let () =
  Alcotest.run "graphio_obs"
    [
      ("clock", [ Alcotest.test_case "monotone" `Quick test_clock_monotone ]);
      ( "jsonx",
        [
          Alcotest.test_case "round trip" `Quick test_jsonx_round_trip;
          Alcotest.test_case "malformed rejected" `Quick test_jsonx_malformed;
          Alcotest.test_case "non-finite floats" `Quick test_jsonx_non_finite;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "histograms" `Quick test_histograms;
          Alcotest.test_case "snapshot JSON round trip" `Quick
            test_metrics_json_round_trip;
          Alcotest.test_case "multi-domain hammer" `Quick
            test_metrics_domain_safety;
        ] );
      ( "quantiles",
        [
          Alcotest.test_case "edge cases" `Quick test_quantile_edges;
          QCheck_alcotest.to_alcotest quantile_vs_oracle_prop;
        ] );
      ( "prometheus",
        [ Alcotest.test_case "exposition grammar" `Quick test_prometheus_render ] );
      ( "ctx-log",
        [
          Alcotest.test_case "ambient request id" `Quick test_ctx;
          Alcotest.test_case "event log emit" `Quick test_log_emit;
          Alcotest.test_case "no sink is a no-op" `Quick test_log_no_sink_noop;
        ] );
      ( "spans",
        [
          Alcotest.test_case "disabled: zero records on hot path" `Quick
            test_spans_disabled_hot_path;
          Alcotest.test_case "nested spans" `Quick test_spans_nested;
          Alcotest.test_case "exception safety" `Quick test_spans_exception_safe;
          Alcotest.test_case "chrome trace export" `Quick test_trace_event_export;
          Alcotest.test_case "request id on spans" `Quick test_span_rid;
        ] );
    ]
