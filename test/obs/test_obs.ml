open Graphio_obs

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)
(* ------------------------------------------------------------------ *)

let test_clock_monotone () =
  let a = Clock.now_ns () in
  let b = Clock.now_ns () in
  Alcotest.(check bool) "non-decreasing" true (b >= a);
  Alcotest.(check bool) "plausible magnitude" true (a > 0);
  let x, dt = Clock.time (fun () -> Sys.opaque_identity 42) in
  Alcotest.(check int) "value passed through" 42 x;
  Alcotest.(check bool) "duration non-negative" true (dt >= 0.0)

(* ------------------------------------------------------------------ *)
(* Jsonx                                                               *)
(* ------------------------------------------------------------------ *)

let test_jsonx_round_trip () =
  let doc =
    Jsonx.Obj
      [
        ("s", Jsonx.String "a \"quoted\"\nline");
        ("i", Jsonx.Int (-42));
        ("f", Jsonx.Float 0.125);
        ("b", Jsonx.Bool true);
        ("null", Jsonx.Null);
        ("l", Jsonx.List [ Jsonx.Int 1; Jsonx.Float 2.5; Jsonx.String "x" ]);
        ("o", Jsonx.Obj [ ("nested", Jsonx.Bool false) ]);
      ]
  in
  let reparsed = Jsonx.of_string (Jsonx.to_string doc) in
  Alcotest.(check bool) "round-trips" true (reparsed = doc);
  Alcotest.(check bool) "member" true
    (Jsonx.member "i" doc = Some (Jsonx.Int (-42)));
  Alcotest.(check bool) "absent member" true (Jsonx.member "zzz" doc = None)

let test_jsonx_malformed () =
  List.iter
    (fun s ->
      match Jsonx.of_string s with
      | exception Failure _ -> ()
      | v -> Alcotest.failf "parsed %S as %s" s (Jsonx.to_string v))
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2" ]

let test_jsonx_non_finite () =
  Alcotest.(check string) "nan is null" "null" (Jsonx.to_string (Jsonx.Float Float.nan));
  Alcotest.(check string) "inf is null" "null"
    (Jsonx.to_string (Jsonx.Float Float.infinity))

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_counters () =
  Metrics.reset ();
  let c = Metrics.counter "test.counter" in
  Metrics.incr c;
  Metrics.add c 41;
  Alcotest.(check int) "accumulates" 42 (Metrics.counter_value c);
  (* handles registered under the same name share state *)
  let c' = Metrics.counter "test.counter" in
  Metrics.incr c';
  Alcotest.(check int) "shared handle" 43 (Metrics.counter_value c);
  Alcotest.check_raises "negative add"
    (Invalid_argument "Metrics.add: negative delta on \"test.counter\"")
    (fun () -> Metrics.add c (-1));
  (match Metrics.gauge "test.counter" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind clash not rejected");
  Metrics.reset ();
  Alcotest.(check int) "reset zeroes" 0 (Metrics.counter_value c)

let test_histograms () =
  Metrics.reset ();
  let h = Metrics.histogram ~buckets:[| 1.0; 10.0; 100.0 |] "test.hist" in
  List.iter (Metrics.observe h) [ 0.5; 5.0; 5.0; 50.0; 5000.0 ];
  (match Metrics.find (Metrics.snapshot ()) "test.hist" with
  | Some (Metrics.Histogram { buckets; counts; sum; count }) ->
      Alcotest.(check (array (float 0.0))) "bucket bounds" [| 1.0; 10.0; 100.0 |] buckets;
      Alcotest.(check (array int)) "bucket counts" [| 1; 2; 1; 1 |] counts;
      Alcotest.(check (float 1e-9)) "sum" 5060.5 sum;
      Alcotest.(check int) "count" 5 count
  | _ -> Alcotest.fail "histogram missing from snapshot");
  (match Metrics.histogram ~buckets:[| 3.0; 2.0 |] "test.hist.bad" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unsorted buckets not rejected");
  let timed = Metrics.time h (fun () -> "done") in
  Alcotest.(check string) "time passes value" "done" timed

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1)) in
  scan 0

let test_metrics_json_round_trip () =
  Metrics.reset ();
  let c = Metrics.counter "test.rt.counter" in
  Metrics.add c 7;
  Metrics.set (Metrics.gauge "test.rt.gauge") 2.5;
  Metrics.observe (Metrics.histogram "test.rt.hist") 0.003;
  let snap = Metrics.snapshot () in
  let reparsed =
    Metrics.of_json (Jsonx.of_string (Jsonx.to_string (Metrics.to_json snap)))
  in
  Alcotest.(check bool) "snapshot round-trips through JSON text" true
    (Metrics.equal snap reparsed);
  let rendered = Metrics.render_text snap in
  Alcotest.(check bool) "render mentions the counter" true
    (contains rendered "test.rt.counter");
  Alcotest.(check bool) "render mentions its value" true (contains rendered "7")

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let test_spans_disabled_hot_path () =
  Span.set_enabled false;
  Span.clear ();
  let m =
    Graphio_la.Csr.of_triplets ~rows:2 ~cols:2 [ (0, 0, 2.0); (1, 1, 3.0) ]
  in
  let matvec_counter = Metrics.counter "la.csr.matvecs" in
  let before = Metrics.counter_value matvec_counter in
  for _ = 1 to 100 do
    ignore (Graphio_la.Csr.matvec m [| 1.0; 1.0 |])
  done;
  (* the span-instrumented dense eigenpath, still with tracing disabled *)
  ignore (Graphio_la.Eigen.smallest ~h:2 m);
  Alcotest.(check int) "no span records while disabled" 0 (Span.record_count ());
  Alcotest.(check bool) "counters still count" true
    (Metrics.counter_value matvec_counter - before >= 100)

let test_spans_nested () =
  Span.set_enabled true;
  Span.clear ();
  let r =
    Span.with_ "outer" (fun () ->
        Span.with_ "inner" (fun () -> Sys.opaque_identity 7))
  in
  Span.set_enabled false;
  Alcotest.(check int) "value through spans" 7 r;
  match Span.records () with
  | [ inner; outer ] ->
      Alcotest.(check string) "inner completes first" "inner" inner.Span.name;
      Alcotest.(check string) "outer completes last" "outer" outer.Span.name;
      Alcotest.(check int) "inner depth" 1 inner.Span.depth;
      Alcotest.(check int) "outer depth" 0 outer.Span.depth;
      Alcotest.(check bool) "inner starts within outer" true
        (inner.Span.start_ns >= outer.Span.start_ns);
      Alcotest.(check bool) "inner ends within outer" true
        (inner.Span.start_ns + inner.Span.dur_ns
        <= outer.Span.start_ns + outer.Span.dur_ns)
  | rs -> Alcotest.failf "expected 2 records, got %d" (List.length rs)

let test_spans_exception_safe () =
  Span.set_enabled true;
  Span.clear ();
  (match Span.with_ "boom" (fun () -> failwith "expected") with
  | exception Failure msg -> Alcotest.(check string) "re-raised" "expected" msg
  | _ -> Alcotest.fail "exception swallowed");
  Span.set_enabled false;
  Alcotest.(check int) "span recorded despite raise" 1 (Span.record_count ());
  Span.clear ()

let test_trace_event_export () =
  Span.set_enabled true;
  Span.clear ();
  Span.with_ "parent" (fun () ->
      Span.with_ "child" (fun () -> ignore (Sys.opaque_identity 1)));
  Span.set_enabled false;
  let doc = Span.to_trace_json () in
  (* must survive its own printer/parser: what we write to disk is valid *)
  let reparsed = Jsonx.of_string (Jsonx.to_string doc) in
  (match Jsonx.member "traceEvents" reparsed with
  | Some (Jsonx.List events) ->
      Alcotest.(check int) "two events" 2 (List.length events);
      List.iter
        (fun ev ->
          Alcotest.(check bool) "complete-event phase" true
            (Jsonx.member "ph" ev = Some (Jsonx.String "X"));
          (match Jsonx.member "name" ev with
          | Some (Jsonx.String ("parent" | "child")) -> ()
          | other ->
              Alcotest.failf "unexpected name field: %s"
                (match other with Some v -> Jsonx.to_string v | None -> "absent"));
          (match Jsonx.member "ts" ev with
          | Some (Jsonx.Float ts) ->
              Alcotest.(check bool) "ts non-negative" true (ts >= 0.0)
          | Some (Jsonx.Int ts) ->
              Alcotest.(check bool) "ts non-negative" true (ts >= 0)
          | _ -> Alcotest.fail "missing ts");
          match Jsonx.member "dur" ev with
          | Some (Jsonx.Float _ | Jsonx.Int _) -> ()
          | _ -> Alcotest.fail "missing dur")
        events
  | _ -> Alcotest.fail "no traceEvents array");
  Span.clear ()

let () =
  Alcotest.run "graphio_obs"
    [
      ("clock", [ Alcotest.test_case "monotone" `Quick test_clock_monotone ]);
      ( "jsonx",
        [
          Alcotest.test_case "round trip" `Quick test_jsonx_round_trip;
          Alcotest.test_case "malformed rejected" `Quick test_jsonx_malformed;
          Alcotest.test_case "non-finite floats" `Quick test_jsonx_non_finite;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "histograms" `Quick test_histograms;
          Alcotest.test_case "snapshot JSON round trip" `Quick
            test_metrics_json_round_trip;
        ] );
      ( "spans",
        [
          Alcotest.test_case "disabled: zero records on hot path" `Quick
            test_spans_disabled_hot_path;
          Alcotest.test_case "nested spans" `Quick test_spans_nested;
          Alcotest.test_case "exception safety" `Quick test_spans_exception_safe;
          Alcotest.test_case "chrome trace export" `Quick test_trace_event_export;
        ] );
    ]
