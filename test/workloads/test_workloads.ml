open Graphio_workloads
open Graphio_graph

(* ------------------------------------------------------------------ *)
(* FFT / butterfly                                                     *)
(* ------------------------------------------------------------------ *)

let test_fft_sizes () =
  List.iter
    (fun l ->
      let g = Fft.build l in
      Alcotest.(check int) "vertices" ((l + 1) * (1 lsl l)) (Dag.n_vertices g);
      Alcotest.(check int) "edges" (2 * l * (1 lsl l)) (Dag.n_edges g))
    [ 0; 1; 2; 3; 4; 7 ]

let test_fft_degrees () =
  let l = 4 in
  let g = Fft.build l in
  Alcotest.(check int) "max in" 2 (Dag.max_in_degree g);
  Alcotest.(check int) "max out" 2 (Dag.max_out_degree g);
  (* column 0 vertices are sources, column l sinks *)
  Alcotest.(check int) "sources" (1 lsl l) (Array.length (Dag.sources g));
  Alcotest.(check int) "sinks" (1 lsl l) (Array.length (Dag.sinks g))

let test_fft_wiring () =
  let l = 3 in
  let g = Fft.build l in
  (* vertex (c, r) has parents (c-1, r) and (c-1, r xor 2^{c-1}) *)
  for c = 1 to l do
    for r = 0 to (1 lsl l) - 1 do
      let v = Fft.vertex ~l ~col:c ~row:r in
      let p1 = Fft.vertex ~l ~col:(c - 1) ~row:r in
      let p2 = Fft.vertex ~l ~col:(c - 1) ~row:(r lxor (1 lsl (c - 1))) in
      Alcotest.(check bool) "parent same row" true (Dag.has_edge g p1 v);
      Alcotest.(check bool) "parent xor row" true (Dag.has_edge g p2 v)
    done
  done

let test_fft_topological_creation () =
  let g = Fft.build 5 in
  Alcotest.(check bool) "natural order valid" true
    (Topo.is_valid g (Topo.natural g))

let test_fft_b1_is_c4 () =
  (* B_1 is the 4-cycle. *)
  let g = Fft.build 1 in
  Alcotest.(check int) "n" 4 (Dag.n_vertices g);
  Alcotest.(check int) "m" 4 (Dag.n_edges g);
  for v = 0 to 3 do
    Alcotest.(check int) "degree 2" 2 (Dag.degree g v)
  done

let test_fft_vertex_bounds () =
  Alcotest.check_raises "bad col" (Invalid_argument "Fft.vertex: column out of range")
    (fun () -> ignore (Fft.vertex ~l:3 ~col:4 ~row:0));
  Alcotest.check_raises "bad row" (Invalid_argument "Fft.vertex: row out of range")
    (fun () -> ignore (Fft.vertex ~l:3 ~col:0 ~row:8))

let test_fft_connected () =
  for l = 1 to 6 do
    Alcotest.(check bool) "connected" true (Component.is_connected (Fft.build l))
  done

(* ------------------------------------------------------------------ *)
(* BHK / hypercube                                                     *)
(* ------------------------------------------------------------------ *)

let test_bhk_sizes () =
  List.iter
    (fun l ->
      let g = Bhk.build l in
      Alcotest.(check int) "vertices" (1 lsl l) (Dag.n_vertices g);
      (* each vertex has out-degree l - popcount; total edges = l 2^{l-1} *)
      Alcotest.(check int) "edges" (l * (1 lsl (max 0 (l - 1)))) (Dag.n_edges g))
    [ 0; 1; 2; 3; 5; 8 ]

let test_bhk_degrees () =
  let l = 5 in
  let g = Bhk.build l in
  for mask = 0 to (1 lsl l) - 1 do
    let pc = Bhk.popcount mask in
    Alcotest.(check int) "out = l - popcount" (l - pc) (Dag.out_degree g mask);
    Alcotest.(check int) "in = popcount" pc (Dag.in_degree g mask);
    Alcotest.(check int) "total = l" l (Dag.degree g mask)
  done

let test_bhk_edge_semantics () =
  let l = 4 in
  let g = Bhk.build l in
  Dag.iter_edges g (fun u v ->
      let diff = u lxor v in
      Alcotest.(check bool) "one bit set" true (diff land (diff - 1) = 0 && diff <> 0);
      Alcotest.(check bool) "adds a bit" true (v = u lor diff))

let test_bhk_source_sink () =
  let g = Bhk.build 4 in
  Alcotest.(check (array int)) "source = empty mask" [| 0 |] (Dag.sources g);
  Alcotest.(check (array int)) "sink = full mask" [| 15 |] (Dag.sinks g)

let test_bhk_popcount () =
  Alcotest.(check int) "0" 0 (Bhk.popcount 0);
  Alcotest.(check int) "255" 8 (Bhk.popcount 255);
  Alcotest.(check int) "0b1010" 2 (Bhk.popcount 0b1010)

let test_bhk_natural_topological () =
  let g = Bhk.build 6 in
  Alcotest.(check bool) "natural valid" true (Topo.is_valid g (Topo.natural g))

let test_bhk_figure4 () =
  (* Figure 4: 3-city graph is the 3-cube with 8 vertices and 12 edges. *)
  let g = Bhk.build 3 in
  Alcotest.(check int) "n" 8 (Dag.n_vertices g);
  Alcotest.(check int) "m" 12 (Dag.n_edges g)

(* ------------------------------------------------------------------ *)
(* Naive matmul                                                        *)
(* ------------------------------------------------------------------ *)

let test_matmul_sizes () =
  List.iter
    (fun n ->
      let g = Matmul.build n in
      Alcotest.(check int) "vertices" (Matmul.n_vertices n) (Dag.n_vertices g);
      (* products have 2 in-edges, sums n *)
      Alcotest.(check int) "edges" ((2 * n * n * n) + (n * n * n)) (Dag.n_edges g))
    [ 1; 2; 3; 4; 6 ]

let test_matmul_degrees () =
  let n = 4 in
  let g = Matmul.build n in
  Alcotest.(check int) "max in = n (the n-ary sums)" n (Dag.max_in_degree g);
  (* every A entry feeds n products *)
  Alcotest.(check int) "max out = n" n (Dag.max_out_degree g);
  Alcotest.(check int) "inputs" (2 * n * n) (Array.length (Dag.sources g));
  Alcotest.(check int) "outputs" (n * n) (Array.length (Dag.sinks g))

let test_matmul_binary_sums () =
  let n = 4 in
  let g = Matmul.build_binary_sums n in
  Alcotest.(check int) "vertices" ((2 * n * n) + (n * n * n) + (n * n * (n - 1)))
    (Dag.n_vertices g);
  Alcotest.(check int) "max in 2" 2 (Dag.max_in_degree g);
  Alcotest.(check int) "outputs" (n * n) (Array.length (Dag.sinks g))

let test_matmul_n1 () =
  let g = Matmul.build 1 in
  (* 2 inputs, 1 product, 1 unary sum *)
  Alcotest.(check int) "n=1 vertices" 4 (Dag.n_vertices g);
  let g2 = Matmul.build_binary_sums 1 in
  Alcotest.(check int) "n=1 binary vertices" 4 (Dag.n_vertices g2)

let test_matmul_natural_topological () =
  Alcotest.(check bool) "natural valid" true
    (Topo.is_valid (Matmul.build 5) (Topo.natural (Matmul.build 5)))

let test_matmul_structure () =
  (* Every sink is an n-ary sum over products of matching row/col. *)
  let n = 3 in
  let g = Matmul.build n in
  Array.iter
    (fun s ->
      Alcotest.(check int) "sum arity" n (Dag.in_degree g s);
      Array.iter
        (fun p ->
          Alcotest.(check int) "product arity" 2 (Dag.in_degree g p);
          Array.iter
            (fun input ->
              Alcotest.(check int) "input is source" 0 (Dag.in_degree g input))
            (Dag.pred g p))
        (Dag.pred g s))
    (Dag.sinks g)

(* ------------------------------------------------------------------ *)
(* Strassen                                                            *)
(* ------------------------------------------------------------------ *)

let test_strassen_sizes () =
  List.iter
    (fun n ->
      let g = Strassen.build n in
      Alcotest.(check int)
        (Printf.sprintf "vertices n=%d" n)
        (Strassen.n_vertices n) (Dag.n_vertices g))
    [ 1; 2; 4; 8; 16 ]

let test_strassen_rejects_non_power () =
  List.iter
    (fun n ->
      Alcotest.check_raises
        (Printf.sprintf "n=%d" n)
        (Invalid_argument "Strassen.build: n must be a positive power of two")
        (fun () -> ignore (Strassen.build n)))
    [ 0; 3; 5; 6; 7; 12 ]

let test_strassen_degrees () =
  let g = Strassen.build 4 in
  Alcotest.(check int) "max in = 4 (C11/C22 combines)" 4 (Dag.max_in_degree g);
  Alcotest.(check int) "inputs" 32 (Array.length (Dag.sources g))

let test_strassen_n1 () =
  let g = Strassen.build 1 in
  (* two inputs and one multiply *)
  Alcotest.(check int) "n" 3 (Dag.n_vertices g);
  Alcotest.(check int) "sinks" 1 (Array.length (Dag.sinks g))

let test_strassen_seven_multiplies () =
  (* n=2: exactly 7 scalar multiplies (vertices labelled "*"). *)
  let g = Strassen.build 2 in
  let mults = ref 0 in
  for v = 0 to Dag.n_vertices g - 1 do
    if Dag.label g v = Some "*" then incr mults
  done;
  Alcotest.(check int) "7 multiplies" 7 !mults;
  (* and 4 output quadrant entries: C11, C12, C21, C22 *)
  Alcotest.(check int) "4 outputs" 4 (Array.length (Dag.sinks g))

let test_strassen_mult_count_recursive () =
  (* n=4: 49 multiplies. *)
  let g = Strassen.build 4 in
  let mults = ref 0 in
  for v = 0 to Dag.n_vertices g - 1 do
    if Dag.label g v = Some "*" then incr mults
  done;
  Alcotest.(check int) "49 multiplies" 49 !mults

let test_strassen_natural_topological () =
  let g = Strassen.build 8 in
  Alcotest.(check bool) "natural valid" true (Topo.is_valid g (Topo.natural g))

let test_strassen_connected () =
  Alcotest.(check bool) "connected" true (Component.is_connected (Strassen.build 4))

(* ------------------------------------------------------------------ *)
(* Inner product                                                       *)
(* ------------------------------------------------------------------ *)

let test_inner_product_figure1 () =
  let g = Inner_product.build 2 in
  Alcotest.(check int) "7 vertices" 7 (Dag.n_vertices g);
  Alcotest.(check int) "6 edges" 6 (Dag.n_edges g);
  Alcotest.(check int) "4 inputs" 4 (Array.length (Dag.sources g));
  Alcotest.(check int) "1 output" 1 (Array.length (Dag.sinks g))

let test_inner_product_general () =
  List.iter
    (fun d ->
      let g = Inner_product.build d in
      Alcotest.(check int) "vertices" ((3 * d) + (d - 1)) (Dag.n_vertices g);
      Alcotest.(check int) "max in" 2 (Dag.max_in_degree g))
    [ 1; 2; 3; 8 ]

let test_figure2 () =
  let g, partition = Inner_product.figure2 () in
  Alcotest.(check int) "7 vertices" 7 (Dag.n_vertices g);
  Alcotest.(check int) "3 segments" 3 (Array.fold_left max 0 partition + 1);
  Alcotest.(check bool) "natural topological" true (Topo.is_valid g (Topo.natural g));
  (* segments are contiguous in the natural order *)
  let ok = ref true in
  for v = 1 to 6 do
    if partition.(v) < partition.(v - 1) then ok := false
  done;
  Alcotest.(check bool) "contiguous" true !ok

(* ------------------------------------------------------------------ *)
(* Reduction                                                           *)
(* ------------------------------------------------------------------ *)

let test_reduction_binary () =
  List.iter
    (fun n ->
      let g = Reduction.build n in
      Alcotest.(check int) "vertices" (Reduction.n_vertices n) (Dag.n_vertices g);
      Alcotest.(check int) "one output" 1 (Array.length (Dag.sinks g));
      Alcotest.(check int) "n inputs" n (Array.length (Dag.sources g));
      Alcotest.(check bool) "max in <= 2" true (Dag.max_in_degree g <= 2);
      Alcotest.(check bool) "natural topo" true (Topo.is_valid g (Topo.natural g)))
    [ 1; 2; 3; 7; 8; 17 ]

let test_reduction_power_of_two_count () =
  (* binary reduction of 2^k leaves has 2^{k+1} - 1 vertices *)
  List.iter
    (fun k ->
      Alcotest.(check int)
        (Printf.sprintf "k=%d" k)
        ((1 lsl (k + 1)) - 1)
        (Reduction.n_vertices (1 lsl k)))
    [ 0; 1; 2; 3; 6 ]

let test_reduction_arity () =
  let g = Reduction.build ~arity:4 16 in
  (* 16 -> 4 -> 1: 21 vertices *)
  Alcotest.(check int) "vertices" 21 (Dag.n_vertices g);
  Alcotest.(check int) "max in" 4 (Dag.max_in_degree g);
  Alcotest.check_raises "arity 1" (Invalid_argument "Reduction.build: arity must be >= 2")
    (fun () -> ignore (Reduction.build ~arity:1 4))

(* ------------------------------------------------------------------ *)
(* Stencil                                                             *)
(* ------------------------------------------------------------------ *)

let test_stencil_shape () =
  let width = 10 and steps = 4 in
  let g = Stencil.build ~width ~steps () in
  Alcotest.(check int) "vertices" ((steps + 1) * width) (Dag.n_vertices g);
  Alcotest.(check int) "inputs" width (Array.length (Dag.sources g));
  Alcotest.(check int) "outputs" width (Array.length (Dag.sinks g));
  Alcotest.(check int) "interior in-degree 3" 3 (Dag.max_in_degree g);
  Alcotest.(check bool) "natural topo" true (Topo.is_valid g (Topo.natural g));
  (* border cells have in-degree 2 *)
  Alcotest.(check int) "border" 2
    (Dag.in_degree g (Stencil.vertex ~width ~step:1 ~cell:0))

let test_stencil_radius () =
  let g0 = Stencil.build ~radius:0 ~width:5 ~steps:3 () in
  (* radius 0: disjoint chains *)
  Alcotest.(check int) "radius 0 edges" (5 * 3) (Dag.n_edges g0);
  Alcotest.(check int) "components" 5 (Component.count g0);
  let g2 = Stencil.build ~radius:2 ~width:7 ~steps:1 () in
  Alcotest.(check int) "radius 2 in-degree" 5 (Dag.max_in_degree g2)

let test_pyramid () =
  List.iter
    (fun base ->
      let g = Stencil.pyramid base in
      Alcotest.(check int) "vertices" (base * (base + 1) / 2) (Dag.n_vertices g);
      Alcotest.(check int) "inputs" base (Array.length (Dag.sources g));
      Alcotest.(check int) "apex" 1 (Array.length (Dag.sinks g));
      if base > 1 then Alcotest.(check int) "in-degree 2" 2 (Dag.max_in_degree g);
      Alcotest.(check bool) "natural topo" true (Topo.is_valid g (Topo.natural g)))
    [ 1; 2; 3; 8; 20 ]

(* ------------------------------------------------------------------ *)
(* Bitonic                                                             *)
(* ------------------------------------------------------------------ *)

let test_bitonic_shape () =
  List.iter
    (fun l ->
      let g = Bitonic.build l in
      Alcotest.(check int) "stages" (l * (l + 1) / 2) (Bitonic.n_stages l);
      Alcotest.(check int) "vertices" (Bitonic.n_vertices l) (Dag.n_vertices g);
      Alcotest.(check int) "inputs" (1 lsl l) (Array.length (Dag.sources g));
      Alcotest.(check int) "outputs" (1 lsl l) (Array.length (Dag.sinks g));
      if l >= 1 then begin
        Alcotest.(check int) "in-degree 2" 2 (Dag.max_in_degree g);
        Alcotest.(check int) "out-degree 2" 2 (Dag.max_out_degree g)
      end;
      Alcotest.(check bool) "natural topo" true (Topo.is_valid g (Topo.natural g)))
    [ 0; 1; 2; 3; 4 ]

let test_bitonic_l1_is_fft_l1 () =
  (* One stage on two wires: same shape as B_1. *)
  let b = Bitonic.build 1 and f = Fft.build 1 in
  Alcotest.(check int) "n" (Dag.n_vertices f) (Dag.n_vertices b);
  Alcotest.(check (list (pair int int))) "edges" (Dag.edges f) (Dag.edges b)

let test_bitonic_deeper_than_fft () =
  (* l(l+1)/2 columns vs l columns: strictly more vertices for l >= 2. *)
  for l = 2 to 6 do
    Alcotest.(check bool) "bigger" true
      (Dag.n_vertices (Bitonic.build l) > Dag.n_vertices (Fft.build l))
  done

(* ------------------------------------------------------------------ *)
(* Sequences                                                           *)
(* ------------------------------------------------------------------ *)

let test_horner () =
  let d = 5 in
  let g = Sequences.horner d in
  Alcotest.(check int) "vertices" ((3 * d) + 2) (Dag.n_vertices g);
  (* x feeds every multiply *)
  Alcotest.(check int) "x out-degree" d (Dag.out_degree g 0);
  Alcotest.(check int) "one output" 1 (Array.length (Dag.sinks g));
  Alcotest.(check bool) "natural topo" true (Topo.is_valid g (Topo.natural g))

let test_prefix_sum () =
  let n = 8 in
  let g = Sequences.prefix_sum n in
  Alcotest.(check int) "vertices" ((2 * n) - 1) (Dag.n_vertices g);
  Alcotest.(check int) "inputs" n (Array.length (Dag.sources g));
  Alcotest.(check bool) "natural topo" true (Topo.is_valid g (Topo.natural g))

let test_independent_chains () =
  let g = Sequences.independent_chains ~count:4 ~length:6 in
  Alcotest.(check int) "vertices" 24 (Dag.n_vertices g);
  Alcotest.(check int) "components" 4 (Component.count g);
  Alcotest.(check bool) "natural topo" true (Topo.is_valid g (Topo.natural g))

(* ------------------------------------------------------------------ *)
(* Spec grammar                                                        *)
(* ------------------------------------------------------------------ *)

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* [Spec.grammar] is the single source of truth quoted in CLI and server
   error messages, so every form it advertises must actually parse.  The
   test derives its cases FROM the grammar string: adding a family to
   the parser without updating the grammar (or vice versa) fails here. *)
let test_spec_grammar_forms_parse () =
  let subst =
    [ ("L", "3"); ("N", "2"); ("R", "2"); ("C", "3"); ("D", "4");
      ("P", "0.2"); ("SEED", "7"); ("K", "2"); ("SPEC", "path:2") ]
  in
  let expand form =
    (* "er:N:P[:SEED]" -> both the bare and the optional-suffix form *)
    match String.index_opt form '[' with
    | None -> [ form ]
    | Some i ->
        let base = String.sub form 0 i in
        let opt = String.sub form i (String.length form - i) in
        Alcotest.(check bool) (form ^ ": optional suffix shape") true
          (String.length opt >= 3 && opt.[String.length opt - 1] = ']');
        [ base; base ^ String.sub opt 1 (String.length opt - 2) ]
  in
  let instantiate form =
    String.split_on_char ':' form
    |> List.map (fun tok ->
           match List.assoc_opt tok subst with Some v -> v | None -> tok)
    |> String.concat ":"
  in
  let forms =
    String.split_on_char ',' Spec.grammar |> List.map String.trim
    |> List.concat_map expand
  in
  Alcotest.(check bool) "grammar advertises several forms" true
    (List.length forms >= 7);
  List.iter
    (fun form ->
      let spec = instantiate form in
      match Spec.parse spec with
      | Ok g ->
          Alcotest.(check bool) (spec ^ ": non-empty graph") true
            (Dag.n_vertices g > 0)
      | Error e -> Alcotest.failf "grammar form %S (as %S) rejected: %s" form spec e)
    forms

let test_spec_malformed_one_line () =
  List.iter
    (fun (spec, fragment) ->
      match Spec.parse spec with
      | Ok _ -> Alcotest.failf "%S unexpectedly parsed" spec
      | Error e ->
          Alcotest.(check bool) (spec ^ ": error is one line") false
            (String.contains e '\n');
          Alcotest.(check bool)
            (Printf.sprintf "%s: %S mentions %S" spec e fragment)
            true (contains_substring e fragment))
    [
      ("nope:3", "unknown graph spec \"nope:3\"");
      ("fft", "unknown graph spec");
      ("fft:3:4", "unknown graph spec");
      ("", "unknown graph spec");
      ("fft:x", "level count \"x\" is not an integer");
      ("bhk:2.5", "level count \"2.5\" is not an integer");
      ("matmul:", "size \"\" is not an integer");
      ("strassen:two", "size \"two\" is not an integer");
      ("inner:x", "dimension \"x\" is not an integer");
      ("er:ten:0.1", "size \"ten\" is not an integer");
      ("er:10:zz", "edge probability \"zz\" is not a number");
      ("er:10:0.1:abc", "seed \"abc\" is not an integer");
    ]

let test_spec_unknown_embeds_grammar () =
  (* The "expected ..." tail IS the grammar constant, verbatim: the text
     users see from the CLI and the server error field cannot drift. *)
  match Spec.parse "nope:3" with
  | Ok _ -> Alcotest.fail "nope:3 parsed"
  | Error e ->
      Alcotest.(check string) "exact message"
        (Printf.sprintf "unknown graph spec \"nope:3\" (expected %s)" Spec.grammar)
        e;
      Alcotest.(check bool) "grammar quoted verbatim" true
        (contains_substring e Spec.grammar)

let test_spec_deterministic () =
  (* er defaults seed to 1 and equals the explicit-seed form *)
  match (Spec.parse "er:20:0.3", Spec.parse "er:20:0.3:1") with
  | Ok a, Ok b -> Alcotest.(check (list (pair int int))) "same graph"
      (Dag.edges a) (Dag.edges b)
  | _ -> Alcotest.fail "er specs did not parse"

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_fft_acyclic_and_layered =
  QCheck2.Test.make ~name:"fft natural order topological" ~count:8
    QCheck2.Gen.(int_range 0 7)
    (fun l ->
      let g = Fft.build l in
      Topo.is_valid g (Topo.natural g))

let prop_bhk_monotone_masks =
  QCheck2.Test.make ~name:"bhk edges increase popcount by 1" ~count:8
    QCheck2.Gen.(int_range 1 9)
    (fun l ->
      let g = Bhk.build l in
      Dag.fold_edges g ~init:true ~f:(fun acc u v ->
          acc && Bhk.popcount v = Bhk.popcount u + 1))

let prop_matmul_vertex_count =
  QCheck2.Test.make ~name:"matmul vertex count formula" ~count:6
    QCheck2.Gen.(int_range 1 6)
    (fun n -> Dag.n_vertices (Matmul.build n) = (2 * n * n) + (n * n * n) + (n * n))

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_fft_acyclic_and_layered; prop_bhk_monotone_masks; prop_matmul_vertex_count ]

let () =
  Alcotest.run "graphio_workloads"
    [
      ( "fft",
        [
          Alcotest.test_case "sizes" `Quick test_fft_sizes;
          Alcotest.test_case "degrees" `Quick test_fft_degrees;
          Alcotest.test_case "wiring" `Quick test_fft_wiring;
          Alcotest.test_case "topological creation" `Quick test_fft_topological_creation;
          Alcotest.test_case "B1 is C4" `Quick test_fft_b1_is_c4;
          Alcotest.test_case "vertex bounds" `Quick test_fft_vertex_bounds;
          Alcotest.test_case "connected" `Quick test_fft_connected;
        ] );
      ( "bhk",
        [
          Alcotest.test_case "sizes" `Quick test_bhk_sizes;
          Alcotest.test_case "degrees" `Quick test_bhk_degrees;
          Alcotest.test_case "edge semantics" `Quick test_bhk_edge_semantics;
          Alcotest.test_case "source and sink" `Quick test_bhk_source_sink;
          Alcotest.test_case "popcount" `Quick test_bhk_popcount;
          Alcotest.test_case "natural topological" `Quick test_bhk_natural_topological;
          Alcotest.test_case "figure 4" `Quick test_bhk_figure4;
        ] );
      ( "matmul",
        [
          Alcotest.test_case "sizes" `Quick test_matmul_sizes;
          Alcotest.test_case "degrees" `Quick test_matmul_degrees;
          Alcotest.test_case "binary sums variant" `Quick test_matmul_binary_sums;
          Alcotest.test_case "n=1" `Quick test_matmul_n1;
          Alcotest.test_case "natural topological" `Quick test_matmul_natural_topological;
          Alcotest.test_case "structure" `Quick test_matmul_structure;
        ] );
      ( "strassen",
        [
          Alcotest.test_case "sizes" `Quick test_strassen_sizes;
          Alcotest.test_case "rejects non-powers" `Quick test_strassen_rejects_non_power;
          Alcotest.test_case "degrees" `Quick test_strassen_degrees;
          Alcotest.test_case "n=1" `Quick test_strassen_n1;
          Alcotest.test_case "seven multiplies" `Quick test_strassen_seven_multiplies;
          Alcotest.test_case "49 multiplies at n=4" `Quick test_strassen_mult_count_recursive;
          Alcotest.test_case "natural topological" `Quick test_strassen_natural_topological;
          Alcotest.test_case "connected" `Quick test_strassen_connected;
        ] );
      ( "inner-product",
        [
          Alcotest.test_case "figure 1" `Quick test_inner_product_figure1;
          Alcotest.test_case "general d" `Quick test_inner_product_general;
          Alcotest.test_case "figure 2" `Quick test_figure2;
        ] );
      ( "reduction",
        [
          Alcotest.test_case "binary" `Quick test_reduction_binary;
          Alcotest.test_case "power-of-two counts" `Quick test_reduction_power_of_two_count;
          Alcotest.test_case "arity" `Quick test_reduction_arity;
        ] );
      ( "stencil",
        [
          Alcotest.test_case "shape" `Quick test_stencil_shape;
          Alcotest.test_case "radius" `Quick test_stencil_radius;
          Alcotest.test_case "pyramid" `Quick test_pyramid;
        ] );
      ( "bitonic",
        [
          Alcotest.test_case "shape" `Quick test_bitonic_shape;
          Alcotest.test_case "l=1 equals fft l=1" `Quick test_bitonic_l1_is_fft_l1;
          Alcotest.test_case "deeper than fft" `Quick test_bitonic_deeper_than_fft;
        ] );
      ( "sequences",
        [
          Alcotest.test_case "horner" `Quick test_horner;
          Alcotest.test_case "prefix sum" `Quick test_prefix_sum;
          Alcotest.test_case "independent chains" `Quick test_independent_chains;
        ] );
      ( "spec",
        [
          Alcotest.test_case "every grammar form parses" `Quick
            test_spec_grammar_forms_parse;
          Alcotest.test_case "malformed specs give one-line errors" `Quick
            test_spec_malformed_one_line;
          Alcotest.test_case "unknown spec embeds grammar verbatim" `Quick
            test_spec_unknown_embeds_grammar;
          Alcotest.test_case "er default seed" `Quick test_spec_deterministic;
        ] );
      ("properties", props);
    ]
