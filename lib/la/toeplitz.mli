(** Closed-form spectra of symmetric tridiagonal Toeplitz matrices.

    A tridiagonal Toeplitz matrix with diagonal [a] and off-diagonal [b] has
    eigenvalues [a + 2 b cos(k pi / (n+1))], [k = 1..n]  (Noschese, Pasquini
    & Reichel, 2013 — reference [19] in the paper).  Lemma 11's path-graph
    spectra are derived from these and from the odd-index extraction trick
    the paper uses for [P'_i]; those graph-specific forms live in
    {!module:Graphio_spectra}, this module provides the raw matrix facts and
    constructors used to verify them numerically. *)

val eigenvalues : n:int -> diag:float -> off:float -> float array
(** Closed-form spectrum, ascending, of the [n x n] tridiagonal Toeplitz
    matrix.  [n] must be positive. *)

val matrix : n:int -> diag:float -> off:float -> Mat.t
(** Dense realization of the same matrix (for cross-checks). *)

val dirichlet_laplacian_eigenvalues : n:int -> float array
(** Spectrum of the [n x n] second-difference matrix (2 on the diagonal,
    -1 off): [2 - 2 cos(k pi/(n+1))], ascending — the classic discrete
    Dirichlet Laplacian, used as an independent sanity anchor for the
    eigensolvers. *)
