(** Chebyshev-filtered block subspace iteration for the smallest
    eigenvalues of a large symmetric PSD operator.

    The production sparse eigenpath (thick-restart {!Lanczos} is kept as a
    reference implementation).  Graph Laplacians in this project need many
    ([h = 100]) smallest eigenvalues {e with multiplicity} — hypercubes
    carry binomial multiplicities, butterflies the Theorem 7 families —
    which single-vector Krylov methods only reach one copy at a time.  A
    block of [h + guard] vectors iterated together captures whole
    eigenspace clusters at once:

    {v
    repeat:
      Rayleigh-Ritz on span(X)  ->  rotate X to Ritz vectors
      converged := prefix of Ritz pairs with small residual
      X <- T_d( (A - c I)/e ) X   (Chebyshev filter damping [cut, up])
      orthonormalize X
    v}

    where [up] is a Gershgorin upper bound on the spectrum, [cut] is the
    current first guard Ritz value, and [T_d] is the degree-[d] Chebyshev
    polynomial — uniformly small on [[cut, up]] and exponentially large
    below [cut], so every unwanted component is damped by a factor
    [~e^{-d sqrt(gap)}] per iteration across the whole block. *)

type result = {
  values : float array;  (** ascending, [min h n] entries *)
  vectors : float array array option;
  iterations : int;
  matvecs : int;
  converged : bool;  (** every reported value passed its residual check *)
  padded : int;
      (** number of trailing entries of [values] that did {e not} converge
          and were replaced by the last converged value.  Eigenvalues
          ascend, so the padded spectrum is a pointwise {e lower} bound on
          the true one — exactly what the I/O bounds need — and it is
          exact whenever the unresolved region is a flat multiplicity
          cluster (the situation that causes padding in the first place:
          giant clusters straddling the block boundary give the Chebyshev
          filter no gap to exploit). *)
}

type degree = Auto | Fixed of int
(** Chebyshev filter degree policy.  [Fixed d] uses [d] for every sweep;
    [Auto] (the default) retunes each sweep from the current Ritz-value
    spread and the observed residual-decay rate — clamped to [[4, 80]],
    deterministic for a fixed seed and operator, logged via
    [solver.filter_degree] debug events and the [la.eigen.filter_degree]
    gauge (docs/PERFORMANCE.md). *)

val degree_name : degree -> string

val degree_of_string : string -> degree option
(** ["auto"] or an integer [>= 2] (the CLI [--filter-degree] grammar). *)

val smallest :
  ?tol:float ->
  ?max_iterations:int ->
  ?degree:degree ->
  ?guard:int ->
  ?seed:int ->
  ?want_vectors:bool ->
  ?init:float array array ->
  ?on_iteration:Convergence.callback ->
  matvec:(float array -> float array -> unit) ->
  upper_bound:float ->
  n:int ->
  h:int ->
  unit ->
  result
(** [smallest ~matvec ~upper_bound ~n ~h ()] returns the [h] smallest
    eigenvalues of the symmetric operator.

    - [matvec x y] writes [A x] into [y];
    - [upper_bound] must dominate the largest eigenvalue (Gershgorin for
      CSR matrices: {!Csr.gershgorin_upper});
    - [tol] is the residual threshold relative to [upper_bound]
      (default [1e-6]);
    - [degree] is the Chebyshev filter degree policy (default [Auto]);
    - [guard] extra block vectors beyond [h] (default [max 16 (h/3)]);
    - [max_iterations] defaults to 300;
    - [init] seeds the leading block columns (warm start): extra donor
      columns are truncated, missing ones padded with the usual random
      draws, then the whole block is re-orthonormalized.  A warm-started
      run converges to the same spectrum but takes a different FP path,
      so bitwise determinism holds only among runs with the same [init];
    - [on_iteration] is invoked once per filter sweep with a
      {!Convergence.progress} snapshot (sweep index, cumulative matvecs,
      converged Ritz prefix, first blocking residual).

    Raises [Invalid_argument] on non-positive [n]/[h], a non-finite
    [upper_bound], or [Fixed d] with [d < 2]. *)

val smallest_csr :
  ?tol:float ->
  ?max_iterations:int ->
  ?degree:degree ->
  ?guard:int ->
  ?seed:int ->
  ?want_vectors:bool ->
  ?init:float array array ->
  ?on_iteration:Convergence.callback ->
  ?pool:Graphio_par.Pool.t ->
  ?kernel:Csr.kernel ->
  Csr.t ->
  h:int ->
  result
(** Wrapper over a symmetric CSR matrix (upper bound via Gershgorin).
    [pool] parallelizes the matvecs row-chunked across domains and
    [kernel] selects the matvec kernel ({!Csr.default_kernel} when
    omitted); neither changes any result bitwise ({!Csr.matvec_fn}). *)
