exception No_convergence

let off_diagonal_mass a n =
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      acc := !acc +. (a.(i).(j) *. a.(i).(j))
    done
  done;
  sqrt (2.0 *. !acc)

(* One cyclic sweep of Jacobi rotations over the strict upper triangle. *)
let sweep a v n =
  for p = 0 to n - 2 do
    for q = p + 1 to n - 1 do
      let apq = a.(p).(q) in
      if apq <> 0.0 then begin
        let app = a.(p).(p) and aqq = a.(q).(q) in
        let theta = (aqq -. app) /. (2.0 *. apq) in
        (* stable tangent of the rotation angle *)
        let t =
          let sign = if theta >= 0.0 then 1.0 else -1.0 in
          sign /. (Float.abs theta +. sqrt ((theta *. theta) +. 1.0))
        in
        let c = 1.0 /. sqrt ((t *. t) +. 1.0) in
        let s = t *. c in
        let tau = s /. (1.0 +. c) in
        a.(p).(p) <- app -. (t *. apq);
        a.(q).(q) <- aqq +. (t *. apq);
        a.(p).(q) <- 0.0;
        a.(q).(p) <- 0.0;
        let rotate m i1 j1 i2 j2 =
          let g = m.(i1).(j1) and h = m.(i2).(j2) in
          m.(i1).(j1) <- g -. (s *. (h +. (tau *. g)));
          m.(i2).(j2) <- h +. (s *. (g -. (tau *. h)))
        in
        for k = 0 to p - 1 do
          rotate a k p k q
        done;
        for k = p + 1 to q - 1 do
          rotate a p k k q
        done;
        for k = q + 1 to n - 1 do
          rotate a p k q k
        done;
        (* Only the upper triangle is read anywhere (rotations and the
           off-diagonal mass), so the lower triangle may go stale. *)
        match v with
        | Some v ->
            for k = 0 to n - 1 do
              rotate v k p k q
            done
        | None -> ()
      end
    done
  done

let run ?(tol = 1e-12) a with_vectors =
  let rows, cols = Mat.dims a in
  if rows <> cols then invalid_arg "Jacobi: matrix not square";
  if not (Mat.is_symmetric ~tol:1e-8 a) then
    invalid_arg "Jacobi: matrix not symmetric";
  let n = rows in
  let a = Mat.symmetrize a in
  let v = if with_vectors then Some (Mat.identity n) else None in
  let scale = Float.max (Mat.frobenius_norm a) 1e-300 in
  let sweeps = ref 0 in
  while off_diagonal_mass a n > tol *. scale do
    if !sweeps >= 100 then raise No_convergence;
    sweep a v n;
    incr sweeps
  done;
  let d = Array.init n (fun i -> a.(i).(i)) in
  let idx = Array.init n (fun i -> i) in
  Array.sort (fun x y -> Float.compare d.(x) d.(y)) idx;
  let values = Array.init n (fun j -> d.(idx.(j))) in
  let vectors =
    match v with
    | Some v -> Some (Mat.init n n (fun i j -> v.(i).(idx.(j))))
    | None -> None
  in
  (values, vectors)

let eigenvalues ?tol a = fst (run ?tol a false)

let eigensystem ?tol a =
  match run ?tol a true with
  | values, Some vectors -> (values, vectors)
  | _ -> assert false
