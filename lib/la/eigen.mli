(** Unified driver for "give me the [h] smallest eigenvalues of this
    symmetric matrix", selecting the numerical backend by problem size.

    Policy (see DESIGN.md §5):
    - small/medium dense problems go through Householder + implicit QL and
      return the exact full spectrum truncated to [h] (exact multiplicity
      handling);
    - larger problems go through Chebyshev-filtered block subspace
      iteration ({!Filtered}) on the CSR representation — the block
      approach is required because graph-Laplacian spectra here carry
      heavy multiplicities ({!Lanczos} remains available as a reference
      single-vector iterative solver).

    The crossover is overridable for testing both paths on the same input.

    Observability: both paths run inside {!Graphio_obs.Span} spans
    ([eigen.dense] / [eigen.filtered]) and bump the
    [la.eigen.dense_solves] / [la.eigen.sparse_solves] counters; the
    iterative path additionally reports its work in {!type:stats} rather
    than dropping it. *)

type backend = Dense | Sparse_filtered

type stats = {
  matvecs : int;  (** operator applications spent by the iterative solver *)
  iterations : int;  (** outer filter sweeps / restart cycles *)
  locked : int;  (** eigenvalues that genuinely converged *)
  padded : int;
      (** trailing entries replaced by the last converged value when the
          solver stalled on a flat multiplicity cluster (see
          {!Filtered.result}) *)
}

type spectrum = {
  values : float array;  (** ascending, [min h n] entries *)
  backend : backend;  (** which path computed them *)
  exact : bool;  (** dense full decomposition (true) vs iterative (false) *)
  stats : stats option;
      (** iterative-solver work summary; [None] on the dense path, which
          has no iteration structure to report *)
  vectors : float array array option;
      (** Ritz vectors matching [values], materialized only when
          [want_vectors] was set on the sparse path ([None] otherwise and
          always on the dense path) — the warm-start donor block *)
}

val default_dense_threshold : int
(** Largest [n] routed to the dense path by default (1024). *)

val smallest :
  ?h:int ->
  ?dense_threshold:int ->
  ?tol:float ->
  ?seed:int ->
  ?filter_degree:Filtered.degree ->
  ?kernel:Csr.kernel ->
  ?init:float array array ->
  ?want_vectors:bool ->
  ?on_iteration:Convergence.callback ->
  ?pool:Graphio_par.Pool.t ->
  Csr.t ->
  spectrum
(** [smallest ?h m] returns the [h] (default 100, the paper's §6.1 choice)
    smallest eigenvalues of symmetric [m], clamping tiny negative numerical
    noise up to [0.] for positive semi-definite inputs is left to callers —
    values are reported as computed.  [on_iteration] receives a
    {!Convergence.progress} snapshot per sweep when the sparse path is
    taken (the dense path never calls it).  [pool] parallelizes the sparse
    path's matvecs across domains and [kernel] selects the matvec kernel —
    bitwise-identical values either way; the dense path ignores both.
    [filter_degree], [init] (warm-start donor block) and [want_vectors]
    are forwarded to {!Filtered.smallest_csr} on the sparse path and
    ignored on the dense one.  Raises [Invalid_argument] if [m] is not
    square. *)

val smallest_dense : ?h:int -> Mat.t -> spectrum
(** Force the dense path on a dense symmetric matrix. *)
