type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let next_raw t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 = next_raw

let split t =
  let s = next_raw t in
  { state = s }

let float t =
  (* 53 high bits -> [0,1) *)
  let bits = Int64.shift_right_logical (next_raw t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Top 62 bits keep the value within OCaml's native positive int range;
     modulo bias is negligible for bound << 2^62 and irrelevant to the
     experiments' statistics. *)
  let v = Int64.to_int (Int64.shift_right_logical (next_raw t) 2) in
  v mod bound

let bool t = Int64.logand (next_raw t) 1L = 1L

let gaussian t =
  let rec draw () =
    let u1 = float t in
    if u1 <= 1e-300 then draw ()
    else
      let u2 = float t in
      sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)
  in
  draw ()

let unit_vector t n =
  if n < 1 then invalid_arg "Rng.unit_vector: n must be >= 1";
  let rec attempt () =
    let v = Array.init n (fun _ -> gaussian t) in
    let nrm = sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 v) in
    if nrm < 1e-12 then attempt ()
    else (
      for i = 0 to n - 1 do
        v.(i) <- v.(i) /. nrm
      done;
      v)
  in
  attempt ()
