(** Per-iteration convergence telemetry shared by the iterative
    eigensolvers ({!Lanczos} restart cycles, {!Filtered} filter
    iterations).

    Solvers accept an optional [?on_iteration] callback and invoke it once
    per outer iteration with a {!progress} snapshot, so callers can watch a
    long eigensolve converge (CLI progress, adaptive tolerance policies,
    test assertions on solver behavior) without the solver committing to
    any output format. *)

type progress = {
  iteration : int;  (** outer iteration: Lanczos restart cycle / filter sweep *)
  matvecs : int;  (** cumulative operator applications so far *)
  locked : int;  (** converged-and-locked eigenpairs (Lanczos) / converged
                     Ritz prefix (Filtered) *)
  residual : float;
      (** exact residual norm of the first unconverged pair at this
          iteration; [0.] when everything inspected so far converged *)
}

type callback = progress -> unit
