type result = {
  values : float array;
  vectors : float array array option;
  iterations : int;
  matvecs : int;
  converged : bool;
  padded : int;
}

type degree = Auto | Fixed of int

let degree_name = function
  | Auto -> "auto"
  | Fixed d -> string_of_int d

let degree_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "auto" -> Some Auto
  | s -> ( match int_of_string_opt s with
      | Some d when d >= 2 -> Some (Fixed d)
      | _ -> None)

(* Degree-[d] Chebyshev filter applied to one vector, in place:
   x <- T_d((A - c I)/e) x  with  c = (up + cut)/2, e = (up - cut)/2.
   T_d is <= 1 in magnitude on [cut, up] and grows like
   cosh(d arccosh(|t|)) below cut, so wanted components dominate after
   filtering.  Columns are renormalized when they grow huge; the caller
   re-orthonormalizes afterwards anyway. *)
let chebyshev_apply ~matvec ~matvec_count ~c ~e ~degree x =
  let n = Array.length x in
  let t0 = Array.copy x in
  let t1 = Array.make n 0.0 in
  let av = Array.make n 0.0 in
  matvec t0 av;
  incr matvec_count;
  for i = 0 to n - 1 do
    t1.(i) <- (av.(i) -. (c *. t0.(i))) /. e
  done;
  let t2 = Array.make n 0.0 in
  let t0 = ref t0 and t1 = ref t1 and t2 = ref t2 in
  for _ = 2 to degree do
    matvec !t1 av;
    incr matvec_count;
    let a = !t0 and b = !t1 and out = !t2 in
    for i = 0 to n - 1 do
      out.(i) <- (2.0 /. e *. (av.(i) -. (c *. b.(i)))) -. a.(i)
    done;
    (* guard against overflow of the unnormalized polynomial *)
    let nrm = Vec.norm_inf out in
    if nrm > 1e120 then begin
      let s = 1.0 /. nrm in
      Vec.scale_inplace s out;
      Vec.scale_inplace s b
    end;
    t0 := b;
    t1 := out;
    t2 := a
  done;
  !t1

(* Orthonormalize the block in place (two-pass modified Gram-Schmidt);
   columns that collapse are replaced by fresh random directions
   orthogonalized against everything already accepted. *)
let orthonormalize_block rng block =
  let b = Array.length block in
  for j = 0 to b - 1 do
    let accepted = Array.sub block 0 j in
    let rec fix attempts v =
      Vec.orthogonalize_against accepted v;
      let nv = Vec.norm2 v in
      if nv > 1e-10 then begin
        Vec.scale_inplace (1.0 /. nv) v;
        v
      end
      else if attempts <= 0 then begin
        (* keep a deterministic fallback direction *)
        Vec.scale_inplace 0.0 v;
        v.(j mod Array.length v) <- 1.0;
        Vec.orthogonalize_against accepted v;
        Vec.normalize_inplace v;
        v
      end
      else fix (attempts - 1) (Rng.unit_vector rng (Array.length v))
    in
    block.(j) <- fix 3 block.(j)
  done

let c_matvecs = Graphio_obs.Metrics.counter "la.eigen.matvecs"
let c_restarts = Graphio_obs.Metrics.counter "la.eigen.restarts"
let c_locked = Graphio_obs.Metrics.counter "la.eigen.locked"
let c_padded = Graphio_obs.Metrics.counter "la.eigen.padded"
let g_degree = Graphio_obs.Metrics.gauge "la.eigen.filter_degree"

let min_auto_degree = 4
let max_auto_degree = 80

(* Auto-tuned filter degree for the next sweep.

   Every sweep costs b*(1 + d) matvecs (Rayleigh-Ritz plus filter) and
   the Chebyshev log-damping of the blocking component is linear in d
   (cosh(d arccosh t) for t = (c - theta)/e > 1), so damping per matvec
   is a constant of t: stretching the same total damping over more
   sweeps only adds Rayleigh-Ritz overhead, while overshooting past the
   lock threshold wastes whole multiples of it.  The tuner therefore
   right-sizes each sweep to the damping that remains: solve
   cosh(d arccosh t) = rho for rho = blocking_res / threshold (the decay
   still needed to lock the blocking vector), i.e.
   d = arccosh(2 rho) / arccosh t.

   A correction from the previous sweep absorbs what the
   single-component bound misses (clustered spectra damp slower; interval
   estimates from a random block flatter t): the sweep promised
   rho_pred = cosh(d_prev arccosh t_prev) but delivered r_prev/r, and
   the ratio of the two log-decays rescales the estimate, clamped to
   [0.5, 3].

   Both estimates are unreliable on the first sweep — Ritz values of a
   random block overestimate badly, and a weakly filtered guard zone
   makes the cut selection land inside clusters (collapsing t), so an
   under-sized opening filter sends the whole solve into a thrashing
   regime the single-component bound cannot predict.  The opening filter
   is therefore pinned at [first_degree_cap], the old fixed default,
   which empirically cleans the block enough for the gap scan; each
   subsequent sweep may at most triple its predecessor.  The adaptive
   win comes from the later sweeps: once the blocking residual is close
   to the lock threshold, the remaining damping is small and the
   right-sized closing filters are far shallower than a fixed degree
   keeps paying.

   A warm-started block (seeded from a donor solve's locked Ritz
   vectors) is the exception to the opening pin: its first Rayleigh-Ritz
   already locks a prefix, the guard zone is genuinely separated, and
   the spread estimate is honest — so when anything is locked before the
   first filter, d_need is trusted immediately.

   A residual that grew across a sweep normally asks for a deeper
   filter, but when the spread has also collapsed (t below
   [collapsed_spread]) it is evidence of cluster thrash: the cut sits
   inside an eigenvalue cluster straddling the block boundary, no degree
   separates what the interval cannot, and deep filters only rotate the
   basis and bounce the residual further.  The tuner retreats to the
   opening degree there — frequent Rayleigh-Ritz rounds give the gap
   scan (and ultimately the stall detector) their chance at minimal
   cost.

   The result is clamped to [min_auto_degree, max_auto_degree] and is a
   pure function of the solve trajectory — deterministic for a fixed
   seed and operator (docs/PERFORMANCE.md). *)
let first_degree_cap = 20

let collapsed_spread = 1.05

let auto_degree ~prev ~locked ~blocking_res ~threshold ~c ~e ~theta_block =
  let t = Float.max ((c -. theta_block) /. e) (1.0 +. 1e-9) in
  let rho = Float.max (blocking_res /. Float.max threshold 1e-300) 2.0 in
  let d_need = Float.acosh (4.0 *. rho) /. Float.acosh t in
  let scale, cap =
    match prev with
    | Some (d_prev, t_prev, r_prev)
      when blocking_res > 0.0 && r_prev > 0.0 && Float.is_finite r_prev ->
        let actual = r_prev /. blocking_res in
        if actual > 1.0 then
          let predicted =
            Float.cosh (float_of_int d_prev *. Float.acosh t_prev)
          in
          let scale =
            Float.min 3.0 (Float.max 0.5 (log predicted /. log actual))
          in
          (scale, 3 * d_prev)
        else if t < collapsed_spread then
          (1.0, first_degree_cap) (* cluster thrash: retreat, let RR work *)
        else (3.0, 3 * d_prev) (* residual refused to shrink: filter much deeper *)
    | Some (d_prev, _, _) -> (1.0, 3 * d_prev)
    | None when locked > 0 -> (1.0, max_auto_degree) (* warm start: trust d_need *)
    | None -> (infinity, first_degree_cap) (* pin the opening filter at the cap *)
  in
  let d = int_of_float (Float.ceil (Float.min (d_need *. scale) 1e6)) in
  (max min_auto_degree (min max_auto_degree (min cap d)), t)

let smallest ?(tol = 1e-6) ?(max_iterations = 300) ?(degree = Auto) ?guard
    ?(seed = 0x5eed) ?(want_vectors = false) ?init ?on_iteration ~matvec
    ~upper_bound ~n ~h () =
  if n <= 0 then invalid_arg "Filtered.smallest: n must be positive";
  if h <= 0 then invalid_arg "Filtered.smallest: h must be positive";
  if not (Float.is_finite upper_bound) then
    invalid_arg "Filtered.smallest: upper_bound must be finite";
  (match degree with
  | Fixed d when d < 2 -> invalid_arg "Filtered.smallest: degree must be >= 2"
  | _ -> ());
  let h = min h n in
  let guard = match guard with Some g -> max 2 g | None -> max 16 (h / 3) in
  let b = min n (h + guard) in
  let rng = Rng.create seed in
  let matvec_count = ref 0 in
  let up = Float.max upper_bound 1e-300 *. (1.0 +. 1e-10) in
  (* Warm-start: seed leading columns from caller-provided vectors (locked
     Ritz vectors of a related solve).  A larger donor block is truncated
     to [b]; a smaller one is padded with the random tail.  Columns of the
     wrong length are ignored rather than rejected — the donor may come
     from a different graph revision via a stale cache. *)
  let block =
    Array.init b (fun j ->
        match init with
        | Some vs when j < Array.length vs && Array.length vs.(j) = n ->
            Array.copy vs.(j)
        | _ -> Rng.unit_vector rng n)
  in
  orthonormalize_block rng block;
  let ax = Array.init b (fun _ -> Array.make n 0.0) in
  let theta = ref [||] in
  let ritz = ref (Mat.identity b) in
  let converged_prefix = ref 0 in
  let iterations = ref 0 in
  let threshold = Float.max (tol *. up) 1e-13 in
  let finished = ref false in
  (* Stall detection: giant eigenvalue clusters straddling the block
     boundary (ubiquitous in matmul / hypercube Laplacians) leave the
     filter with no gap to exploit, so boundary copies converge extremely
     slowly.  When the converged prefix stops improving we give up on the
     tail and *pad* it with the last converged value — sound for every
     consumer here because eigenvalues ascend (the padded spectrum is a
     pointwise lower bound), and exact whenever the cluster is flat. *)
  (* Checkpoint-based stall detection: every [stall_window] iterations the
     run must either have advanced the converged prefix or have shrunk the
     first blocking residual by at least 2x.  Healthy geometric convergence
     clears that bar easily; the no-gap cluster regime (residual decaying
     by ~1% per iteration) does not and is cut off with padding. *)
  let stall_window = 25 in
  let checkpoint_prefix = ref (-1) in
  let checkpoint_res = ref infinity in
  let stalled = ref false in
  (* (degree, t, blocking residual) of the previous sweep, for the
     observed-decay correction of the auto-tuner. *)
  let prev_sweep = ref None in
  while (not !finished) && !iterations < max_iterations do
    incr iterations;
    (* Rayleigh-Ritz data: AX, H = X^T A X, G = (AX)^T AX. *)
    for j = 0 to b - 1 do
      matvec block.(j) ax.(j);
      incr matvec_count
    done;
    let hmat = Mat.create b b and gmat = Mat.create b b in
    for i = 0 to b - 1 do
      for j = i to b - 1 do
        let hij = Vec.dot block.(i) ax.(j) in
        hmat.(i).(j) <- hij;
        hmat.(j).(i) <- hij;
        let gij = Vec.dot ax.(i) ax.(j) in
        gmat.(i).(j) <- gij;
        gmat.(j).(i) <- gij
      done
    done;
    let th, s = Tql.symmetric_eigensystem hmat in
    theta := th;
    ritz := s;
    (* Converged prefix by residual norms computed in the small basis:
       ||A y_i - th_i y_i||^2 = s_i^T G s_i - th_i^2  (X orthonormal). *)
    let gs = Array.make b 0.0 in
    let prefix = ref 0 in
    let stop = ref false in
    let blocking_res = ref 0.0 in
    while (not !stop) && !prefix < min h b do
      let j = !prefix in
      for i = 0 to b - 1 do
        let acc = ref 0.0 in
        for k2 = 0 to b - 1 do
          acc := !acc +. (gmat.(i).(k2) *. s.(k2).(j))
        done;
        gs.(i) <- !acc
      done;
      let sgs = ref 0.0 in
      for i = 0 to b - 1 do
        sgs := !sgs +. (s.(i).(j) *. gs.(i))
      done;
      let res2 = Float.max 0.0 (!sgs -. (th.(j) *. th.(j))) in
      let res = sqrt res2 in
      if res <= threshold then incr prefix
      else begin
        blocking_res := res;
        stop := true
      end
    done;
    converged_prefix := !prefix;
    (match on_iteration with
    | None -> ()
    | Some f ->
        f
          {
            Convergence.iteration = !iterations;
            matvecs = !matvec_count;
            locked = !prefix;
            residual = !blocking_res;
          });
    if !iterations mod stall_window = 0 then begin
      if !prefix <= !checkpoint_prefix && !blocking_res > 0.5 *. !checkpoint_res
      then stalled := true
      else begin
        checkpoint_prefix := !prefix;
        checkpoint_res := !blocking_res
      end
    end;
    if !prefix >= h || b >= n || (!stalled && !prefix > 0) then finished := true
    else begin
      (* Filter interval: damp [cut, up] where cut sits just above the
         wanted part of the current Ritz spectrum.  Prefer a genuine gap
         inside the guard zone: if the cut landed inside a multiplicity
         cluster straddling position h, the boundary members would sit on
         the edge of the damped region and never converge — so scan for
         the first guard Ritz value clearly above th.(h-1), falling back
         to the top of the block (weakest but safe filter). *)
      let cut_raw =
        let base = min (b - 1) h in
        let chosen = ref (b - 1) in
        (try
           for j = base to b - 1 do
             if th.(j) -. th.(max 0 (h - 1)) > 1e-4 *. up then begin
               chosen := j;
               raise Exit
             end
           done
         with Exit -> ());
        th.(!chosen)
      in
      let lo = Float.max th.(0) 0.0 in
      let cut = Float.min (Float.max cut_raw (lo +. (1e-6 *. up))) (0.95 *. up) in
      let c = (up +. cut) /. 2.0
      and e = Float.max ((up -. cut) /. 2.0) (1e-12 *. up) in
      let d, t =
        match degree with
        | Fixed d -> (d, Float.max ((c -. th.(!prefix)) /. e) (1.0 +. 1e-9))
        | Auto ->
            auto_degree ~prev:!prev_sweep ~locked:!prefix
              ~blocking_res:!blocking_res ~threshold ~c ~e
              ~theta_block:th.(!prefix)
      in
      Graphio_obs.Metrics.set g_degree (float_of_int d);
      if Graphio_obs.Log.enabled Graphio_obs.Log.Debug then
        Graphio_obs.Log.emit ~level:Graphio_obs.Log.Debug "solver.filter_degree"
          [
            ("sweep", Graphio_obs.Jsonx.Int !iterations);
            ("degree", Graphio_obs.Jsonx.Int d);
            ("locked", Graphio_obs.Jsonx.Int !prefix);
            ("residual", Graphio_obs.Jsonx.Float !blocking_res);
            ("spread", Graphio_obs.Jsonx.Float t);
          ];
      prev_sweep := Some (d, t, !blocking_res);
      for j = 0 to b - 1 do
        block.(j) <-
          chebyshev_apply ~matvec ~matvec_count ~c ~e ~degree:d block.(j)
      done;
      orthonormalize_block rng block
    end
  done;
  let take = min h (min b (Array.length !theta)) in
  let full = !converged_prefix >= take || b >= n in
  let padded = if full then 0 else take - max !converged_prefix 0 in
  let values =
    if full || !converged_prefix = 0 then Array.sub !theta 0 take
    else begin
      let filler = !theta.(!converged_prefix - 1) in
      Array.init take (fun i -> if i < !converged_prefix then !theta.(i) else filler)
    end
  in
  let converged = full in
  let vectors =
    if want_vectors then begin
      (* One final rotation X S to materialize the Ritz vectors. *)
      let s = !ritz in
      Some
        (Array.init take (fun j ->
             let y = Array.make n 0.0 in
             for i = 0 to b - 1 do
               let sij = s.(i).(j) in
               if sij <> 0.0 then Vec.axpy sij block.(i) y
             done;
             y))
    end
    else None
  in
  let padded = if !converged_prefix = 0 then take else padded in
  Graphio_obs.Metrics.add c_matvecs !matvec_count;
  Graphio_obs.Metrics.add c_restarts !iterations;
  Graphio_obs.Metrics.add c_locked !converged_prefix;
  Graphio_obs.Metrics.add c_padded padded;
  { values; vectors; iterations = !iterations; matvecs = !matvec_count; converged; padded }

let smallest_csr ?tol ?max_iterations ?degree ?guard ?seed ?want_vectors ?init
    ?on_iteration ?pool ?kernel m ~h =
  let rows, cols = Csr.dims m in
  if rows <> cols then invalid_arg "Filtered.smallest_csr: matrix not square";
  smallest ?tol ?max_iterations ?degree ?guard ?seed ?want_vectors ?init
    ?on_iteration
    ~matvec:(Csr.matvec_fn ?pool ?kernel m)
    ~upper_bound:(Csr.gershgorin_upper m)
    ~n:rows ~h ()
