(** Dense matrices stored row-major as [float array array].

    Used for small/medium problems (n up to a few thousand): building dense
    Laplacians, the Householder/QL eigensolver path, and cross-checks of the
    sparse code.  Rows are independent arrays, so [m.(i).(j)] addresses row
    [i], column [j]. *)

type t = float array array

val create : int -> int -> t
(** [create rows cols] is the zero matrix. *)

val identity : int -> t

val init : int -> int -> (int -> int -> float) -> t

val dims : t -> int * int
(** [(rows, cols)]; rows are validated to have uniform length. *)

val copy : t -> t

val transpose : t -> t

val mul : t -> t -> t
(** Matrix product; inner dimensions must agree. *)

val matvec : t -> float array -> float array

val add : t -> t -> t

val sub : t -> t -> t

val scale : float -> t -> t

val is_symmetric : ?tol:float -> t -> bool

val symmetrize : t -> t
(** [(A + Aᵀ)/2]. *)

val trace : t -> float

val frobenius_norm : t -> float

val max_abs : t -> float

val approx_equal : ?tol:float -> t -> t -> bool

val pp : Format.formatter -> t -> unit
