exception No_convergence of int

let pythag a b = Float.hypot a b

(* Implicit-shift QL with Wilkinson shift, following the classic tqli
   routine.  [d] and [e] are mutated in place; [e] uses the tqli internal
   convention after the initial left-shift ([e.(i)] couples rows i,i+1).
   [z], when present, accumulates the rotations applied column-wise. *)
let solve_inplace d e (z : Mat.t option) =
  let n = Array.length d in
  if Array.length e <> n then invalid_arg "Tql: d/e length mismatch";
  if n > 1 then begin
    for i = 1 to n - 1 do
      e.(i - 1) <- e.(i)
    done;
    e.(n - 1) <- 0.0;
    let eps = epsilon_float in
    for l = 0 to n - 1 do
      let iter = ref 0 in
      let finished = ref false in
      while not !finished do
        (* Find the first m >= l where the off-diagonal is negligible. *)
        let m = ref l in
        let searching = ref true in
        while !searching && !m < n - 1 do
          let dd = Float.abs d.(!m) +. Float.abs d.(!m + 1) in
          if Float.abs e.(!m) <= eps *. dd then searching := false
          else incr m
        done;
        if !m = l then finished := true
        else begin
          incr iter;
          if !iter > 50 then raise (No_convergence l);
          let g0 = (d.(l + 1) -. d.(l)) /. (2.0 *. e.(l)) in
          let r0 = pythag g0 1.0 in
          let g = ref (d.(!m) -. d.(l) +. (e.(l) /. (g0 +. Float.copy_sign r0 g0))) in
          let s = ref 1.0 and c = ref 1.0 and p = ref 0.0 in
          let i = ref (!m - 1) in
          let underflow = ref false in
          while !i >= l && not !underflow do
            let f = !s *. e.(!i) in
            let b = !c *. e.(!i) in
            let r = pythag f !g in
            e.(!i + 1) <- r;
            if r = 0.0 then begin
              d.(!i + 1) <- d.(!i + 1) -. !p;
              e.(!m) <- 0.0;
              underflow := true
            end
            else begin
              s := f /. r;
              c := !g /. r;
              let gg = d.(!i + 1) -. !p in
              let rr = ((d.(!i) -. gg) *. !s) +. (2.0 *. !c *. b) in
              p := !s *. rr;
              d.(!i + 1) <- gg +. !p;
              g := (!c *. rr) -. b;
              (match z with
              | Some z ->
                  let ii = !i in
                  for k = 0 to n - 1 do
                    let f = z.(k).(ii + 1) in
                    z.(k).(ii + 1) <- (!s *. z.(k).(ii)) +. (!c *. f);
                    z.(k).(ii) <- (!c *. z.(k).(ii)) -. (!s *. f)
                  done
              | None -> ());
              decr i
            end
          done;
          if not !underflow then begin
            d.(l) <- d.(l) -. !p;
            e.(l) <- !g;
            e.(!m) <- 0.0
          end
        end
      done
    done
  end

let sort_permutation d =
  let n = Array.length d in
  let idx = Array.init n (fun i -> i) in
  Array.sort (fun a b -> Float.compare d.(a) d.(b)) idx;
  idx

let eigenvalues ~d ~e =
  let d = Array.copy d and e = Array.copy e in
  solve_inplace d e None;
  Array.sort Float.compare d;
  d

let eigensystem ~d ~e ?z () =
  let n = Array.length d in
  let z = match z with Some z -> Mat.copy z | None -> Mat.identity n in
  let zr, zc = Mat.dims z in
  if zc <> n then invalid_arg "Tql.eigensystem: z column count mismatch";
  let d = Array.copy d and e = Array.copy e in
  solve_inplace d e (Some z);
  let idx = sort_permutation d in
  let values = Array.init n (fun j -> d.(idx.(j))) in
  let vectors = Mat.init zr n (fun i j -> z.(i).(idx.(j))) in
  (values, vectors)

let symmetric_eigenvalues a =
  let { Tridiag.d; e; _ } = Tridiag.reduce ~with_q:false a in
  eigenvalues ~d ~e

let symmetric_eigensystem a =
  let { Tridiag.d; e; q } = Tridiag.reduce ~with_q:true a in
  let z = match q with Some q -> q | None -> assert false in
  eigensystem ~d ~e ~z ()
