type stats = {
  matvecs : int;
  restarts : int;
  locked : int;
}

type result = {
  values : float array;
  vectors : float array array option;
  stats : stats;
  converged : bool;
}

(* Thick-restart Lanczos with locking, implemented as Rayleigh-Ritz on an
   explicitly orthonormalized basis:

   - the active basis V grows one vector at a time; each new vector is the
     fully reorthogonalized complement of A v_last (two Gram-Schmidt
     passes against the locked vectors and V), and the projected matrix
     H = V^T A V is assembled from explicit dot products, so H is exact
     for whatever basis we have — no three-term-recurrence drift, no
     ghost eigenvalues;
   - at the end of a cycle H (dense symmetric, at most [krylov_dim] wide)
     is eigendecomposed and converged Ritz pairs are locked from the
     smallest value upward (a *prefix*, so no smaller eigenvalue can be
     skipped); every lock is verified with an exact residual
     ||A y - theta y|| (one matvec), which keeps locking sound no matter
     how the basis was assembled;
   - the next cycle restarts "thick": it keeps the best unconverged Ritz
     vectors (progress on clustered eigenvalues is never thrown away),
     re-appends the current residual direction, and *injects a few fresh
     random directions*.  The Krylov space of a single start vector
     contains exactly one direction per eigenspace, so multiple
     eigenvalues (ubiquitous in graph Laplacians: hypercube binomials,
     butterfly families) are only discoverable through new random
     directions — the injections make each cycle reach the next few
     copies of every eigenspace;
   - everything locked is deflated by explicit orthogonalization, so the
     iteration converges to the next copy rather than rediscovering the
     old one. *)

let c_matvecs = Graphio_obs.Metrics.counter "la.eigen.matvecs"
let c_restarts = Graphio_obs.Metrics.counter "la.eigen.restarts"
let c_locked = Graphio_obs.Metrics.counter "la.eigen.locked"

let smallest ?(tol = 1e-7) ?(max_restarts = 300) ?krylov_dim ?(seed = 0x5eed)
    ?(want_vectors = false) ?on_iteration ~matvec ~n ~h () =
  if n <= 0 then invalid_arg "Lanczos.smallest: n must be positive";
  if h <= 0 then invalid_arg "Lanczos.smallest: h must be positive";
  let h = min h n in
  let m_cap =
    match krylov_dim with
    | Some m ->
        if m < 2 then invalid_arg "Lanczos.smallest: krylov_dim must be >= 2";
        min m n
    | None -> min n (max 60 ((2 * h) + 20))
  in
  let rng = Rng.create seed in
  let locked_vals = ref [] and locked_vecs = ref [] and locked_count = ref 0 in
  let locked_array = ref [||] in
  let refresh_locked_array () = locked_array := Array.of_list !locked_vecs in
  let matvec_count = ref 0 and cycle_count = ref 0 in
  (* exact residual of the first Ritz pair that failed its lock check this
     cycle; 0 when every inspected pair locked *)
  let blocking_residual = ref 0.0 in
  let breakdown_tol = 1e-10 in
  let basis = Array.make m_cap [||] in
  let hmat = Array.init m_cap (fun _ -> Array.make m_cap 0.0) in
  let bsize = ref 0 in
  let residual = Array.make n 0.0 in
  let residual_norm = ref 0.0 in
  let av = Array.make n 0.0 in
  let apply x =
    matvec x av;
    incr matvec_count
  in
  (* Norm estimate for relative thresholds, refreshed from Ritz values. *)
  let norm_est = ref 1e-300 in
  (* Lock a few eigenpairs beyond [h]: with heavy multiplicities a copy of
     a small eigenvalue can be discovered after a slightly larger value
     has already been locked; the buffer plus the final ascending sort
     makes the reported prefix insensitive to such inversions. *)
  let h_target = min n (h + 8) in
  let finished () = !locked_count >= h_target in
  let space_exhausted = ref false in
  (* Random unit vector orthogonal to locked + current basis; None if the
     complement is numerically exhausted. *)
  let fresh_direction () =
    let rec attempt tries =
      if tries = 0 then None
      else begin
        let v = Rng.unit_vector rng n in
        Vec.orthogonalize_against !locked_array v;
        Vec.orthogonalize_against (Array.sub basis 0 !bsize) v;
        let nv = Vec.norm2 v in
        if nv < 1e-6 then attempt (tries - 1)
        else begin
          Vec.scale_inplace (1.0 /. nv) v;
          Some v
        end
      end
    in
    attempt 4
  in
  (* Append unit vector [v] (orthogonal to locked and basis) and update H
     and the residual of A v. *)
  let extend v =
    let j = !bsize in
    basis.(j) <- v;
    bsize := j + 1;
    apply v;
    for i = 0 to j do
      let d = Vec.dot basis.(i) av in
      hmat.(i).(j) <- d;
      hmat.(j).(i) <- d
    done;
    Array.blit av 0 residual 0 n;
    Vec.orthogonalize_against !locked_array residual;
    Vec.orthogonalize_against (Array.sub basis 0 (j + 1)) residual;
    residual_norm := Vec.norm2 residual
  in
  while (not (finished ())) && (not !space_exhausted) && !cycle_count < max_restarts do
    incr cycle_count;
    blocking_residual := 0.0;
    (* Inject fresh random directions: they open up the next copies of
       multiple eigenvalues (see module comment).  The first cycle starts
       from scratch this way too. *)
    let injections = if !bsize = 0 then 1 else min 8 (max 2 ((h - !locked_count) / 8)) in
    let injected = ref 0 in
    while !injected < injections && !bsize < m_cap && not !space_exhausted do
      (match fresh_direction () with
      | None ->
          space_exhausted := !bsize = 0
          (* with a non-empty basis we may still make progress this cycle *)
      | Some v -> extend v);
      incr injected
    done;
    if (not !space_exhausted) && !bsize > 0 then begin
      (* Grow the basis to the cap, residual-driven. *)
      let growing = ref true in
      while !growing && !bsize < m_cap do
        if !residual_norm >= breakdown_tol then begin
          let v = Vec.scale (1.0 /. !residual_norm) residual in
          extend v
        end
        else begin
          match fresh_direction () with
          | None -> growing := false
          | Some v -> extend v
        end
      done;
      let m = !bsize in
      (* Rayleigh-Ritz on the exact projected matrix. *)
      let hsub = Mat.init m m (fun i j -> hmat.(i).(j)) in
      let theta, s = Tql.symmetric_eigensystem hsub in
      Array.iter (fun t -> norm_est := Float.max !norm_est (Float.abs t)) theta;
      let threshold = Float.max (tol *. !norm_est) 1e-13 in
      let ritz_vector i =
        let y = Array.make n 0.0 in
        for jj = 0 to m - 1 do
          Vec.axpy s.(jj).(i) basis.(jj) y
        done;
        Vec.orthogonalize_against !locked_array y;
        let ny = Vec.norm2 y in
        if ny < 1e-8 then None
        else begin
          Vec.scale_inplace (1.0 /. ny) y;
          Some y
        end
      in
      (* Lock the maximal prefix of ascending Ritz values whose *exact*
         residual passes the threshold. *)
      let prefix = ref 0 in
      let stop = ref false in
      while (not !stop) && !prefix < m && not (finished ()) do
        match ritz_vector !prefix with
        | None ->
            (* Degenerate Ritz vector (fully inside the locked space —
               numerically possible when an eigenvalue is exhausted);
               skip it without locking. *)
            incr prefix
        | Some y ->
            apply y;
            let res = ref 0.0 in
            for i = 0 to n - 1 do
              let d = av.(i) -. (theta.(!prefix) *. y.(i)) in
              res := !res +. (d *. d)
            done;
            let res = sqrt !res in
            if res <= threshold then begin
              locked_vals := theta.(!prefix) :: !locked_vals;
              locked_vecs := y :: !locked_vecs;
              incr locked_count;
              refresh_locked_array ();
              incr prefix
            end
            else begin
              blocking_residual := res;
              stop := true
            end
      done;
      if not (finished ()) then begin
        (* Thick restart: keep the best unconverged Ritz vectors plus the
           residual direction (exactness of H is restored by explicit dot
           products as vectors are appended). *)
        let remaining = h_target - !locked_count in
        let keep = min (min (remaining + 8) (m_cap - 12)) (m - !prefix) in
        let keep = max keep 0 in
        let kept = ref [] in
        let i = ref (!prefix + keep - 1) in
        while !i >= !prefix do
          (match ritz_vector !i with
          | Some y -> kept := (theta.(!i), y) :: !kept
          | None -> ());
          decr i
        done;
        let kept = Array.of_list !kept in
        (* Re-orthonormalize defensively. *)
        let ok = ref [] in
        Array.iter
          (fun (t, y) ->
            Vec.orthogonalize_against !locked_array y;
            Vec.orthogonalize_against (Array.of_list (List.map snd !ok)) y;
            let ny = Vec.norm2 y in
            if ny > 1e-8 then begin
              Vec.scale_inplace (1.0 /. ny) y;
              ok := (t, y) :: !ok
            end)
          kept;
        let kept = Array.of_list (List.rev !ok) in
        let q = Array.length kept in
        Array.iteri
          (fun i (t, y) ->
            basis.(i) <- y;
            for j = 0 to q - 1 do
              hmat.(i).(j) <- (if i = j then t else 0.0)
            done)
          kept;
        bsize := q;
        if q > 0 && !residual_norm >= breakdown_tol then begin
          (* Re-append the residual direction to keep convergence momentum;
             its H couplings are recomputed on append. *)
          let w = Vec.scale (1.0 /. !residual_norm) residual in
          Vec.orthogonalize_against !locked_array w;
          Vec.orthogonalize_against (Array.sub basis 0 q) w;
          let nw = Vec.norm2 w in
          if nw > 1e-8 then begin
            Vec.scale_inplace (1.0 /. nw) w;
            extend w
          end
        end
        else if q = 0 then residual_norm := 0.0
      end
    end;
    match on_iteration with
    | None -> ()
    | Some f ->
        f
          {
            Convergence.iteration = !cycle_count;
            matvecs = !matvec_count;
            locked = !locked_count;
            residual = !blocking_residual;
          }
  done;
  let pairs =
    List.combine !locked_vals !locked_vecs
    |> List.sort (fun (a, _) (b, _) -> Float.compare a b)
    |> Array.of_list
  in
  let take = min h (Array.length pairs) in
  let values = Array.init take (fun i -> fst pairs.(i)) in
  let vectors =
    if want_vectors then Some (Array.init take (fun i -> snd pairs.(i))) else None
  in
  Graphio_obs.Metrics.add c_matvecs !matvec_count;
  Graphio_obs.Metrics.add c_restarts !cycle_count;
  Graphio_obs.Metrics.add c_locked (Array.length pairs);
  {
    values;
    vectors;
    stats =
      { matvecs = !matvec_count; restarts = !cycle_count; locked = Array.length pairs };
    converged = take >= h;
  }

let smallest_csr ?tol ?max_restarts ?krylov_dim ?seed ?want_vectors ?on_iteration
    ?pool ?kernel m ~h =
  let rows, cols = Csr.dims m in
  if rows <> cols then invalid_arg "Lanczos.smallest_csr: matrix not square";
  smallest ?tol ?max_restarts ?krylov_dim ?seed ?want_vectors ?on_iteration
    ~matvec:(Csr.matvec_fn ?pool ?kernel m)
    ~n:rows ~h ()
