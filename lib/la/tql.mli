(** Implicit-shift QL eigensolver for symmetric tridiagonal matrices.

    Second half of the dense symmetric eigenpath (the classic [tqli]
    routine): given the tridiagonal [d]/[e] produced by {!Tridiag.reduce},
    computes all eigenvalues, and optionally eigenvectors by rotating an
    initial matrix (identity for the tridiagonal eigenvectors, or the
    Householder accumulation [Q] for eigenvectors of the original matrix). *)

exception No_convergence of int
(** Raised (with the stuck row index) if an eigenvalue fails to converge in
    50 implicit QL sweeps — practically unreachable for real symmetric
    input. *)

val eigenvalues : d:float array -> e:float array -> float array
(** [eigenvalues ~d ~e] returns all eigenvalues in ascending order.
    [d] is the diagonal (length [n]); [e] the sub-diagonal with [e.(0)]
    ignored (the {!Tridiag.reduce} convention).  Inputs are not mutated. *)

val eigensystem :
  d:float array -> e:float array -> ?z:Mat.t -> unit -> float array * Mat.t
(** [eigensystem ~d ~e ~z ()] additionally accumulates eigenvectors into the
    columns of [z] (default: identity).  Returns [(values, vectors)] with
    values ascending and [vectors] column-aligned: column [j] (i.e.
    [(fun i -> vectors.(i).(j))]) is the eigenvector for [values.(j)].
    If [z] is the Householder [q] from {!Tridiag.reduce}, the columns are
    eigenvectors of the original dense matrix. *)

val symmetric_eigenvalues : Mat.t -> float array
(** Full spectrum of a dense symmetric matrix (Householder + QL), ascending. *)

val symmetric_eigensystem : Mat.t -> float array * Mat.t
(** Full eigendecomposition of a dense symmetric matrix; vectors in columns,
    aligned with the ascending eigenvalues. *)
