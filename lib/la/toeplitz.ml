let eigenvalues ~n ~diag ~off =
  if n <= 0 then invalid_arg "Toeplitz.eigenvalues: n must be positive";
  let vals =
    Array.init n (fun i ->
        let k = float_of_int (i + 1) in
        diag +. (2.0 *. off *. cos (k *. Float.pi /. float_of_int (n + 1))))
  in
  Array.sort Float.compare vals;
  vals

let matrix ~n ~diag ~off =
  if n <= 0 then invalid_arg "Toeplitz.matrix: n must be positive";
  Mat.init n n (fun i j ->
      if i = j then diag else if abs (i - j) = 1 then off else 0.0)

let dirichlet_laplacian_eigenvalues ~n = eigenvalues ~n ~diag:2.0 ~off:(-1.0)
