(** Dense vector operations on [float array].

    All functions are allocation-explicit: operations suffixed with
    [_inplace] mutate their first argument, everything else returns a fresh
    array.  Dimensions are validated and mismatches raise [Invalid_argument]. *)

val create : int -> float array
(** Zero vector of the given length. *)

val init : int -> (int -> float) -> float array

val copy : float array -> float array

val dot : float array -> float array -> float
(** Inner product; lengths must agree. *)

val norm2 : float array -> float
(** Euclidean norm, computed with overflow-safe scaling. *)

val norm_inf : float array -> float

val scale : float -> float array -> float array

val scale_inplace : float -> float array -> unit

val add : float array -> float array -> float array

val sub : float array -> float array -> float array

val axpy : float -> float array -> float array -> unit
(** [axpy a x y] sets [y <- a*x + y]. *)

val normalize : float array -> float array
(** Unit-norm copy; raises [Invalid_argument] on the zero vector. *)

val normalize_inplace : float array -> unit

val orthogonalize_against : float array array -> float array -> unit
(** [orthogonalize_against basis v] removes from [v] (in place) its
    components along each vector of [basis] using two passes of classical
    Gram–Schmidt ("twice is enough").  The basis vectors are assumed
    orthonormal. *)

val sum : float array -> float

val max_elt : float array -> float
(** Maximum element; raises on empty input. *)

val min_elt : float array -> float

val approx_equal : ?tol:float -> float array -> float array -> bool
(** Component-wise comparison with absolute tolerance (default [1e-9]). *)

val pp : Format.formatter -> float array -> unit
