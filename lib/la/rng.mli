(** Deterministic pseudo-random number generation.

    A small, fast, splittable PRNG (splitmix64) used everywhere randomness is
    needed (Lanczos starting vectors, Erdős–Rényi graphs, property tests'
    auxiliary data).  Being fully deterministic under an explicit seed keeps
    every experiment in the repository reproducible bit-for-bit. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed.  Two
    generators created from the same seed produce identical streams. *)

val copy : t -> t
(** [copy t] duplicates the state; the copy evolves independently. *)

val split : t -> t
(** [split t] advances [t] and returns a new, statistically independent
    generator (splitmix64 split). *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform float in [[0,1)]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [[0, bound)]. [bound] must be positive. *)

val bool : t -> bool
(** Fair coin. *)

val gaussian : t -> float
(** Standard normal variate (Box–Muller). *)

val unit_vector : t -> int -> float array
(** [unit_vector t n] is a uniformly random point on the unit sphere in
    R^n (n >= 1). *)
