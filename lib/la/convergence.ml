type progress = {
  iteration : int;
  matvecs : int;
  locked : int;
  residual : float;
}

type callback = progress -> unit
