let create n = Array.make n 0.0

let init = Array.init

let copy = Array.copy

let check_same_length name x y =
  if Array.length x <> Array.length y then
    invalid_arg
      (Printf.sprintf "Vec.%s: length mismatch (%d vs %d)" name
         (Array.length x) (Array.length y))

let dot x y =
  check_same_length "dot" x y;
  let acc = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    acc := !acc +. (x.(i) *. y.(i))
  done;
  !acc

let norm2 x =
  (* Scaled to avoid overflow/underflow for extreme magnitudes. *)
  let scale = ref 0.0 and ssq = ref 1.0 in
  Array.iter
    (fun xi ->
      if xi <> 0.0 then begin
        let absxi = Float.abs xi in
        if !scale < absxi then begin
          let r = !scale /. absxi in
          ssq := 1.0 +. (!ssq *. r *. r);
          scale := absxi
        end
        else begin
          let r = absxi /. !scale in
          ssq := !ssq +. (r *. r)
        end
      end)
    x;
  !scale *. sqrt !ssq

let norm_inf x = Array.fold_left (fun acc xi -> Float.max acc (Float.abs xi)) 0.0 x

let scale a x = Array.map (fun xi -> a *. xi) x

let scale_inplace a x =
  for i = 0 to Array.length x - 1 do
    x.(i) <- a *. x.(i)
  done

let add x y =
  check_same_length "add" x y;
  Array.init (Array.length x) (fun i -> x.(i) +. y.(i))

let sub x y =
  check_same_length "sub" x y;
  Array.init (Array.length x) (fun i -> x.(i) -. y.(i))

let axpy a x y =
  check_same_length "axpy" x y;
  for i = 0 to Array.length x - 1 do
    y.(i) <- (a *. x.(i)) +. y.(i)
  done

let normalize x =
  let n = norm2 x in
  if n <= 0.0 then invalid_arg "Vec.normalize: zero vector";
  scale (1.0 /. n) x

let normalize_inplace x =
  let n = norm2 x in
  if n <= 0.0 then invalid_arg "Vec.normalize_inplace: zero vector";
  scale_inplace (1.0 /. n) x

let orthogonalize_against basis v =
  let pass () =
    Array.iter
      (fun b ->
        let c = dot b v in
        if c <> 0.0 then axpy (-.c) b v)
      basis
  in
  pass ();
  pass ()

let sum x = Array.fold_left ( +. ) 0.0 x

let max_elt x =
  if Array.length x = 0 then invalid_arg "Vec.max_elt: empty";
  Array.fold_left Float.max x.(0) x

let min_elt x =
  if Array.length x = 0 then invalid_arg "Vec.min_elt: empty";
  Array.fold_left Float.min x.(0) x

let approx_equal ?(tol = 1e-9) x y =
  Array.length x = Array.length y
  &&
  let ok = ref true in
  for i = 0 to Array.length x - 1 do
    if Float.abs (x.(i) -. y.(i)) > tol then ok := false
  done;
  !ok

let pp fmt x =
  Format.fprintf fmt "[|%a|]"
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.fprintf f "; ")
       (fun f v -> Format.fprintf f "%g" v))
    (Array.to_list x)
