type t = {
  d : float array;
  e : float array;
  q : Mat.t option;
}

(* Householder tridiagonalization following the classic tred2 routine
   (Numerical Recipes / EISPACK lineage).  The working matrix [z] is
   destroyed; when [with_q] is set it ends up holding the orthogonal
   accumulation Q with A = Q T Q^T. *)
let reduce ?(with_q = false) a =
  let rows, cols = Mat.dims a in
  if rows <> cols then invalid_arg "Tridiag.reduce: matrix not square";
  if not (Mat.is_symmetric ~tol:1e-8 a) then
    invalid_arg "Tridiag.reduce: matrix not symmetric";
  let n = rows in
  let z = Mat.copy a in
  let d = Array.make n 0.0 and e = Array.make n 0.0 in
  if n = 0 then { d; e; q = (if with_q then Some [||] else None) }
  else begin
    for i = n - 1 downto 1 do
      let l = i - 1 in
      let h = ref 0.0 and scale = ref 0.0 in
      if l > 0 then begin
        for k = 0 to l do
          scale := !scale +. Float.abs z.(i).(k)
        done;
        if !scale = 0.0 then e.(i) <- z.(i).(l)
        else begin
          for k = 0 to l do
            z.(i).(k) <- z.(i).(k) /. !scale;
            h := !h +. (z.(i).(k) *. z.(i).(k))
          done;
          let f = z.(i).(l) in
          let g = if f >= 0.0 then -.sqrt !h else sqrt !h in
          e.(i) <- !scale *. g;
          h := !h -. (f *. g);
          z.(i).(l) <- f -. g;
          let fsum = ref 0.0 in
          for j = 0 to l do
            if with_q then z.(j).(i) <- z.(i).(j) /. !h;
            let g = ref 0.0 in
            for k = 0 to j do
              g := !g +. (z.(j).(k) *. z.(i).(k))
            done;
            for k = j + 1 to l do
              g := !g +. (z.(k).(j) *. z.(i).(k))
            done;
            e.(j) <- !g /. !h;
            fsum := !fsum +. (e.(j) *. z.(i).(j))
          done;
          let hh = !fsum /. (!h +. !h) in
          for j = 0 to l do
            let f = z.(i).(j) in
            let g = e.(j) -. (hh *. f) in
            e.(j) <- g;
            for k = 0 to j do
              z.(j).(k) <- z.(j).(k) -. ((f *. e.(k)) +. (g *. z.(i).(k)))
            done
          done
        end
      end
      else e.(i) <- z.(i).(l);
      d.(i) <- !h
    done;
    if with_q then d.(0) <- 0.0;
    e.(0) <- 0.0;
    for i = 0 to n - 1 do
      if with_q then begin
        if d.(i) <> 0.0 then
          for j = 0 to i - 1 do
            let g = ref 0.0 in
            for k = 0 to i - 1 do
              g := !g +. (z.(i).(k) *. z.(k).(j))
            done;
            for k = 0 to i - 1 do
              z.(k).(j) <- z.(k).(j) -. (!g *. z.(k).(i))
            done
          done;
        d.(i) <- z.(i).(i);
        z.(i).(i) <- 1.0;
        for j = 0 to i - 1 do
          z.(j).(i) <- 0.0;
          z.(i).(j) <- 0.0
        done
      end
      else d.(i) <- z.(i).(i)
    done;
    { d; e; q = (if with_q then Some z else None) }
  end

let to_dense { d; e; _ } =
  let n = Array.length d in
  Mat.init n n (fun i j ->
      if i = j then d.(i)
      else if i = j + 1 then e.(i)
      else if j = i + 1 then e.(j)
      else 0.0)
