type t = {
  rows : int;
  cols : int;
  row_ptr : int array;
  col_idx : int array;
  values : float array;
}

let dims m = (m.rows, m.cols)

let nnz m = Array.length m.values

let of_triplets_array ~rows ~cols triplets =
  if rows < 0 || cols < 0 then invalid_arg "Csr.of_triplets: negative dimension";
  Array.iter
    (fun (i, j, _) ->
      if i < 0 || i >= rows || j < 0 || j >= cols then
        invalid_arg
          (Printf.sprintf "Csr.of_triplets: entry (%d,%d) out of %dx%d" i j rows cols))
    triplets;
  let triplets = Array.copy triplets in
  Array.sort
    (fun (i1, j1, _) (i2, j2, _) ->
      match compare i1 i2 with 0 -> compare j1 j2 | c -> c)
    triplets;
  (* merge duplicates *)
  let merged_i = ref [] and merged_j = ref [] and merged_v = ref [] in
  let count = ref 0 in
  let push i j v =
    merged_i := i :: !merged_i;
    merged_j := j :: !merged_j;
    merged_v := v :: !merged_v;
    incr count
  in
  let m = Array.length triplets in
  let idx = ref 0 in
  while !idx < m do
    let i, j, _ = triplets.(!idx) in
    let acc = ref 0.0 in
    while
      !idx < m
      &&
      let i', j', _ = triplets.(!idx) in
      i' = i && j' = j
    do
      let _, _, v = triplets.(!idx) in
      acc := !acc +. v;
      incr idx
    done;
    push i j !acc
  done;
  let n = !count in
  let is = Array.make n 0 and js = Array.make n 0 and vs = Array.make n 0.0 in
  let rec fill k li lj lv =
    match (li, lj, lv) with
    | i :: li', j :: lj', v :: lv' ->
        is.(k) <- i;
        js.(k) <- j;
        vs.(k) <- v;
        fill (k - 1) li' lj' lv'
    | [], [], [] -> ()
    | _ -> assert false
  in
  fill (n - 1) !merged_i !merged_j !merged_v;
  let row_ptr = Array.make (rows + 1) 0 in
  Array.iter (fun i -> row_ptr.(i + 1) <- row_ptr.(i + 1) + 1) is;
  for i = 0 to rows - 1 do
    row_ptr.(i + 1) <- row_ptr.(i + 1) + row_ptr.(i)
  done;
  { rows; cols; row_ptr; col_idx = js; values = vs }

let of_triplets ~rows ~cols triplets =
  of_triplets_array ~rows ~cols (Array.of_list triplets)

let of_dense a =
  let rows, cols = Mat.dims a in
  let triplets = ref [] in
  for i = rows - 1 downto 0 do
    for j = cols - 1 downto 0 do
      if a.(i).(j) <> 0.0 then triplets := (i, j, a.(i).(j)) :: !triplets
    done
  done;
  of_triplets ~rows ~cols !triplets

let to_dense m =
  let out = Mat.create m.rows m.cols in
  for i = 0 to m.rows - 1 do
    for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
      out.(i).(m.col_idx.(k)) <- out.(i).(m.col_idx.(k)) +. m.values.(k)
    done
  done;
  out

let get m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg "Csr.get: index out of range";
  let lo = ref m.row_ptr.(i) and hi = ref (m.row_ptr.(i + 1) - 1) in
  let result = ref 0.0 in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = m.col_idx.(mid) in
    if c = j then begin
      result := m.values.(mid);
      lo := !hi + 1
    end
    else if c < j then lo := mid + 1
    else hi := mid - 1
  done;
  !result

(* Hot-path instrumentation is counters only (one unboxed increment per
   call): the matvec is the inner loop of every sparse eigensolve, so no
   span, no clock read, no allocation may happen here. *)
let c_matvecs = Graphio_obs.Metrics.counter "la.csr.matvecs"
let c_flops = Graphio_obs.Metrics.counter "la.csr.fma_flops"

(* One row is always accumulated left-to-right by a single participant, so
   the parallel path is bitwise identical to the sequential one: chunking
   decides only which domain owns a row, never the FP summation order
   within it (docs/PARALLELISM.md). *)
let row_range m x y lo hi =
  for i = lo to hi - 1 do
    let acc = ref 0.0 in
    for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
      acc := !acc +. (m.values.(k) *. x.(m.col_idx.(k)))
    done;
    y.(i) <- !acc
  done

let matvec_into ?pool m x y =
  if Array.length x <> m.cols || Array.length y <> m.rows then
    invalid_arg "Csr.matvec: dimension mismatch";
  Graphio_obs.Metrics.incr c_matvecs;
  Graphio_obs.Metrics.add c_flops (Array.length m.values);
  match pool with
  | None -> row_range m x y 0 m.rows
  | Some pool ->
      (* chunk by rows; the per-index body is one whole row *)
      Graphio_par.Pool.parallel_for pool ~lo:0 ~hi:m.rows (fun i ->
          row_range m x y i (i + 1))

let matvec ?pool m x =
  let y = Array.make m.rows 0.0 in
  matvec_into ?pool m x y;
  y

(* Unboxed Bigarray mirror of the CSR layout.  Values stay float64; the
   two index arrays drop to int32, halving index-memory traffic on the
   matvec, and every access in the inner loop is unchecked.  The per-row
   accumulation is the same left-to-right order as [row_range] above, so
   both kernels produce bitwise-identical results (docs/PERFORMANCE.md). *)
module Ba = struct
  type mat = {
    rows : int;
    cols : int;
    row_ptr : (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t;
    col_idx : (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t;
    values : (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t;
  }

  let dims m = (m.rows, m.cols)
  let nnz m = Bigarray.Array1.dim m.values
  let int32_limit = Int32.to_int Int32.max_int

  let of_csr (m : t) =
    let n = Array.length m.values in
    if n > int32_limit then
      invalid_arg
        (Printf.sprintf
           "Csr.Ba.of_csr: %d stored entries overflow int32 indexing (max %d)"
           n int32_limit);
    if m.cols > int32_limit then
      invalid_arg
        (Printf.sprintf
           "Csr.Ba.of_csr: %d columns overflow int32 indexing (max %d)" m.cols
           int32_limit);
    let row_ptr =
      Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout (m.rows + 1)
    in
    let col_idx = Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout n in
    let values = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n in
    for i = 0 to m.rows do
      Bigarray.Array1.unsafe_set row_ptr i (Int32.of_int m.row_ptr.(i))
    done;
    for k = 0 to n - 1 do
      Bigarray.Array1.unsafe_set col_idx k (Int32.of_int m.col_idx.(k));
      Bigarray.Array1.unsafe_set values k m.values.(k)
    done;
    { rows = m.rows; cols = m.cols; row_ptr; col_idx; values }

  let row_range m x y lo hi =
    for i = lo to hi - 1 do
      let k0 = Int32.to_int (Bigarray.Array1.unsafe_get m.row_ptr i) in
      let k1 = Int32.to_int (Bigarray.Array1.unsafe_get m.row_ptr (i + 1)) in
      let acc = ref 0.0 in
      for k = k0 to k1 - 1 do
        let j = Int32.to_int (Bigarray.Array1.unsafe_get m.col_idx k) in
        acc :=
          !acc
          +. (Bigarray.Array1.unsafe_get m.values k *. Array.unsafe_get x j)
      done;
      Array.unsafe_set y i !acc
    done

  (* Sequential cache block: a fixed row count, so chunk geometry is a
     function of the row count alone — the same contract the pool keeps. *)
  let block_rows = 256

  let matvec_into ?pool m x y =
    if Array.length x <> m.cols || Array.length y <> m.rows then
      invalid_arg "Csr.Ba.matvec: dimension mismatch";
    Graphio_obs.Metrics.incr c_matvecs;
    Graphio_obs.Metrics.add c_flops (nnz m);
    match pool with
    | None ->
        let i = ref 0 in
        while !i < m.rows do
          row_range m x y !i (min m.rows (!i + block_rows));
          i := !i + block_rows
        done
    | Some pool ->
        Graphio_par.Pool.parallel_for pool ~lo:0 ~hi:m.rows (fun i ->
            row_range m x y i (i + 1))

  let matvec ?pool m x =
    let y = Array.make m.rows 0.0 in
    matvec_into ?pool m x y;
    y
end

type kernel = Arrays | Bigarray_blocked

let default_kernel = Bigarray_blocked
let kernel_name = function Arrays -> "arrays" | Bigarray_blocked -> "bigarray"

(* Close over the selected kernel once: the Bigarray conversion happens a
   single time per solve, not per matvec. *)
let matvec_fn ?pool ?(kernel = default_kernel) m =
  match kernel with
  | Arrays -> fun x y -> matvec_into ?pool m x y
  | Bigarray_blocked ->
      let ba = Ba.of_csr m in
      fun x y -> Ba.matvec_into ?pool ba x y

let scale c m = { m with values = Array.map (fun v -> c *. v) m.values }

let transpose m =
  let triplets = ref [] in
  for i = m.rows - 1 downto 0 do
    for k = m.row_ptr.(i + 1) - 1 downto m.row_ptr.(i) do
      triplets := (m.col_idx.(k), i, m.values.(k)) :: !triplets
    done
  done;
  of_triplets ~rows:m.cols ~cols:m.rows !triplets

let is_symmetric ?(tol = 1e-12) m =
  m.rows = m.cols
  &&
  let ok = ref true in
  for i = 0 to m.rows - 1 do
    for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
      let j = m.col_idx.(k) in
      if Float.abs (m.values.(k) -. get m j i) > tol then ok := false
    done
  done;
  !ok

let prune ?(tol = 0.0) m =
  let triplets = ref [] in
  for i = m.rows - 1 downto 0 do
    for k = m.row_ptr.(i + 1) - 1 downto m.row_ptr.(i) do
      if Float.abs m.values.(k) > tol then
        triplets := (i, m.col_idx.(k), m.values.(k)) :: !triplets
    done
  done;
  of_triplets ~rows:m.rows ~cols:m.cols !triplets

let gershgorin_upper m =
  let best = ref 0.0 in
  for i = 0 to m.rows - 1 do
    let radius = ref 0.0 in
    for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
      radius := !radius +. Float.abs m.values.(k)
    done;
    if !radius > !best then best := !radius
  done;
  !best

let row_iter m i f =
  if i < 0 || i >= m.rows then invalid_arg "Csr.row_iter: row out of range";
  for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
    f m.col_idx.(k) m.values.(k)
  done

let pp fmt m =
  Format.fprintf fmt "@[<v>csr %dx%d (nnz=%d)@," m.rows m.cols (nnz m);
  for i = 0 to min (m.rows - 1) 19 do
    Format.fprintf fmt "row %d:" i;
    row_iter m i (fun j v -> Format.fprintf fmt " (%d,%g)" j v);
    Format.fprintf fmt "@,"
  done;
  if m.rows > 20 then Format.fprintf fmt "...@,";
  Format.fprintf fmt "@]"
