type t = {
  rows : int;
  cols : int;
  row_ptr : int array;
  col_idx : int array;
  values : float array;
}

let dims m = (m.rows, m.cols)

let nnz m = Array.length m.values

let of_triplets_array ~rows ~cols triplets =
  if rows < 0 || cols < 0 then invalid_arg "Csr.of_triplets: negative dimension";
  Array.iter
    (fun (i, j, _) ->
      if i < 0 || i >= rows || j < 0 || j >= cols then
        invalid_arg
          (Printf.sprintf "Csr.of_triplets: entry (%d,%d) out of %dx%d" i j rows cols))
    triplets;
  let triplets = Array.copy triplets in
  Array.sort
    (fun (i1, j1, _) (i2, j2, _) ->
      match compare i1 i2 with 0 -> compare j1 j2 | c -> c)
    triplets;
  (* merge duplicates *)
  let merged_i = ref [] and merged_j = ref [] and merged_v = ref [] in
  let count = ref 0 in
  let push i j v =
    merged_i := i :: !merged_i;
    merged_j := j :: !merged_j;
    merged_v := v :: !merged_v;
    incr count
  in
  let m = Array.length triplets in
  let idx = ref 0 in
  while !idx < m do
    let i, j, _ = triplets.(!idx) in
    let acc = ref 0.0 in
    while
      !idx < m
      &&
      let i', j', _ = triplets.(!idx) in
      i' = i && j' = j
    do
      let _, _, v = triplets.(!idx) in
      acc := !acc +. v;
      incr idx
    done;
    push i j !acc
  done;
  let n = !count in
  let is = Array.make n 0 and js = Array.make n 0 and vs = Array.make n 0.0 in
  let rec fill k li lj lv =
    match (li, lj, lv) with
    | i :: li', j :: lj', v :: lv' ->
        is.(k) <- i;
        js.(k) <- j;
        vs.(k) <- v;
        fill (k - 1) li' lj' lv'
    | [], [], [] -> ()
    | _ -> assert false
  in
  fill (n - 1) !merged_i !merged_j !merged_v;
  let row_ptr = Array.make (rows + 1) 0 in
  Array.iter (fun i -> row_ptr.(i + 1) <- row_ptr.(i + 1) + 1) is;
  for i = 0 to rows - 1 do
    row_ptr.(i + 1) <- row_ptr.(i + 1) + row_ptr.(i)
  done;
  { rows; cols; row_ptr; col_idx = js; values = vs }

let of_triplets ~rows ~cols triplets =
  of_triplets_array ~rows ~cols (Array.of_list triplets)

let of_dense a =
  let rows, cols = Mat.dims a in
  let triplets = ref [] in
  for i = rows - 1 downto 0 do
    for j = cols - 1 downto 0 do
      if a.(i).(j) <> 0.0 then triplets := (i, j, a.(i).(j)) :: !triplets
    done
  done;
  of_triplets ~rows ~cols !triplets

let to_dense m =
  let out = Mat.create m.rows m.cols in
  for i = 0 to m.rows - 1 do
    for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
      out.(i).(m.col_idx.(k)) <- out.(i).(m.col_idx.(k)) +. m.values.(k)
    done
  done;
  out

let get m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg "Csr.get: index out of range";
  let lo = ref m.row_ptr.(i) and hi = ref (m.row_ptr.(i + 1) - 1) in
  let result = ref 0.0 in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = m.col_idx.(mid) in
    if c = j then begin
      result := m.values.(mid);
      lo := !hi + 1
    end
    else if c < j then lo := mid + 1
    else hi := mid - 1
  done;
  !result

(* Hot-path instrumentation is counters only (one unboxed increment per
   call): the matvec is the inner loop of every sparse eigensolve, so no
   span, no clock read, no allocation may happen here. *)
let c_matvecs = Graphio_obs.Metrics.counter "la.csr.matvecs"
let c_flops = Graphio_obs.Metrics.counter "la.csr.fma_flops"

(* One row is always accumulated left-to-right by a single participant, so
   the parallel path is bitwise identical to the sequential one: chunking
   decides only which domain owns a row, never the FP summation order
   within it (docs/PARALLELISM.md). *)
let row_range m x y lo hi =
  for i = lo to hi - 1 do
    let acc = ref 0.0 in
    for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
      acc := !acc +. (m.values.(k) *. x.(m.col_idx.(k)))
    done;
    y.(i) <- !acc
  done

let matvec_into ?pool m x y =
  if Array.length x <> m.cols || Array.length y <> m.rows then
    invalid_arg "Csr.matvec: dimension mismatch";
  Graphio_obs.Metrics.incr c_matvecs;
  Graphio_obs.Metrics.add c_flops (Array.length m.values);
  match pool with
  | None -> row_range m x y 0 m.rows
  | Some pool ->
      (* chunk by rows; the per-index body is one whole row *)
      Graphio_par.Pool.parallel_for pool ~lo:0 ~hi:m.rows (fun i ->
          row_range m x y i (i + 1))

let matvec ?pool m x =
  let y = Array.make m.rows 0.0 in
  matvec_into ?pool m x y;
  y

let scale c m = { m with values = Array.map (fun v -> c *. v) m.values }

let transpose m =
  let triplets = ref [] in
  for i = m.rows - 1 downto 0 do
    for k = m.row_ptr.(i + 1) - 1 downto m.row_ptr.(i) do
      triplets := (m.col_idx.(k), i, m.values.(k)) :: !triplets
    done
  done;
  of_triplets ~rows:m.cols ~cols:m.rows !triplets

let is_symmetric ?(tol = 1e-12) m =
  m.rows = m.cols
  &&
  let ok = ref true in
  for i = 0 to m.rows - 1 do
    for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
      let j = m.col_idx.(k) in
      if Float.abs (m.values.(k) -. get m j i) > tol then ok := false
    done
  done;
  !ok

let prune ?(tol = 0.0) m =
  let triplets = ref [] in
  for i = m.rows - 1 downto 0 do
    for k = m.row_ptr.(i + 1) - 1 downto m.row_ptr.(i) do
      if Float.abs m.values.(k) > tol then
        triplets := (i, m.col_idx.(k), m.values.(k)) :: !triplets
    done
  done;
  of_triplets ~rows:m.rows ~cols:m.cols !triplets

let gershgorin_upper m =
  let best = ref 0.0 in
  for i = 0 to m.rows - 1 do
    let radius = ref 0.0 in
    for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
      radius := !radius +. Float.abs m.values.(k)
    done;
    if !radius > !best then best := !radius
  done;
  !best

let row_iter m i f =
  if i < 0 || i >= m.rows then invalid_arg "Csr.row_iter: row out of range";
  for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
    f m.col_idx.(k) m.values.(k)
  done

let pp fmt m =
  Format.fprintf fmt "@[<v>csr %dx%d (nnz=%d)@," m.rows m.cols (nnz m);
  for i = 0 to min (m.rows - 1) 19 do
    Format.fprintf fmt "row %d:" i;
    row_iter m i (fun j v -> Format.fprintf fmt " (%d,%g)" j v);
    Format.fprintf fmt "@,"
  done;
  if m.rows > 20 then Format.fprintf fmt "...@,";
  Format.fprintf fmt "@]"
