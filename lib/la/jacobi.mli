(** Cyclic Jacobi eigensolver for dense symmetric matrices.

    Slower than the Householder/QL path ({!Tql.symmetric_eigenvalues}) but
    simple and extremely robust; kept as an independent implementation used
    to cross-validate the primary dense solver in the test suite, and for
    tiny matrices where its simplicity wins. *)

exception No_convergence
(** Raised if the off-diagonal mass fails to vanish in 100 sweeps. *)

val eigenvalues : ?tol:float -> Mat.t -> float array
(** All eigenvalues of a symmetric matrix, ascending.  [tol] bounds the
    final off-diagonal Frobenius mass relative to the matrix norm
    (default [1e-12]). *)

val eigensystem : ?tol:float -> Mat.t -> float array * Mat.t
(** [(values, vectors)] with vectors in columns aligned to ascending
    values. *)
