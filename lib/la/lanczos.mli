(** Lanczos iteration with full reorthogonalization, locking and restarts,
    for the smallest eigenvalues of a large symmetric (sparse) operator.

    This is the sparse eigenpath of the spectral I/O bound (Section 6.1 of
    the paper computes the first [h = 100] Laplacian eigenvalues).  Plain
    Lanczos only discovers one Ritz copy per distinct eigenvalue, but graph
    Laplacians in this project have heavily multiple eigenvalues (hypercube:
    binomial multiplicities; butterfly: Theorem 7), so the solver locks each
    converged eigenvector and restarts with a random vector orthogonal to
    everything locked — the restarted Krylov space then converges to the
    next copy of the eigenspace.  Full (two-pass) reorthogonalization keeps
    the basis numerically orthogonal so no spurious ghost eigenvalues
    appear. *)

type stats = {
  matvecs : int;  (** total operator applications *)
  restarts : int;  (** number of Lanczos restarts performed *)
  locked : int;  (** eigenpairs locked as converged *)
}

type result = {
  values : float array;
      (** ascending; length [min h n] when [converged], possibly shorter
          otherwise *)
  vectors : float array array option;
      (** locked eigenvectors aligned with [values] when requested *)
  stats : stats;
  converged : bool;
}

val smallest :
  ?tol:float ->
  ?max_restarts:int ->
  ?krylov_dim:int ->
  ?seed:int ->
  ?want_vectors:bool ->
  ?on_iteration:Convergence.callback ->
  matvec:(float array -> float array -> unit) ->
  n:int ->
  h:int ->
  unit ->
  result
(** [smallest ~matvec ~n ~h ()] returns (approximately) the [h] smallest
    eigenvalues of the symmetric operator [matvec] on R^n.

    - [matvec x y] must write [A x] into [y];
    - [tol] is the residual tolerance relative to a norm estimate of [A]
      (default [1e-7]);
    - [krylov_dim] caps the Krylov dimension per restart (default
      [min n (max 60 (2h + 20))]);
    - [max_restarts] defaults to [200];
    - [seed] makes the starting vectors deterministic (default [0x5eed]);
    - [on_iteration] is invoked once per restart cycle with a
      {!Convergence.progress} snapshot (cycle index, cumulative matvecs,
      locked pairs, residual of the first pair that failed to lock).

    For tiny problems ([n <= 3]) or when [h >= n] the routine still works:
    it simply locks all [n] eigenpairs.  Raises [Invalid_argument] for
    non-positive [n] or [h]. *)

val smallest_csr :
  ?tol:float ->
  ?max_restarts:int ->
  ?krylov_dim:int ->
  ?seed:int ->
  ?want_vectors:bool ->
  ?on_iteration:Convergence.callback ->
  ?pool:Graphio_par.Pool.t ->
  ?kernel:Csr.kernel ->
  Csr.t ->
  h:int ->
  result
(** Convenience wrapper over a symmetric CSR matrix; the tolerance is scaled
    by the Gershgorin norm bound of the matrix.  [pool] parallelizes the
    matvecs (bitwise-identical results, see {!Csr.matvec_into}). *)
