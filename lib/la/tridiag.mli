(** Householder reduction of a real symmetric matrix to tridiagonal form.

    This is the first half of the dense symmetric eigensolver (the classic
    [tred2] reduction): a symmetric [n x n] matrix [A] is transformed by a
    sequence of Householder reflections into a symmetric tridiagonal matrix
    with diagonal [d] and sub-diagonal [e], optionally accumulating the
    orthogonal transformation [Q] such that [A = Q T Qᵀ]. *)

type t = {
  d : float array;  (** diagonal, length [n] *)
  e : float array;  (** sub/super-diagonal, length [n]; [e.(0)] is unused and 0 *)
  q : Mat.t option;  (** accumulated transform when requested *)
}

val reduce : ?with_q:bool -> Mat.t -> t
(** [reduce a] tridiagonalizes symmetric [a] (the input is copied, not
    mutated).  Raises [Invalid_argument] if [a] is not square or not
    symmetric to a loose tolerance.  With [~with_q:true] (default [false])
    the orthogonal accumulation is returned for eigenvector recovery. *)

val to_dense : t -> Mat.t
(** Rebuild the tridiagonal matrix [T] as a dense matrix (for testing). *)
