type t = float array array

let create rows cols =
  if rows < 0 || cols < 0 then invalid_arg "Mat.create: negative dimension";
  Array.init rows (fun _ -> Array.make cols 0.0)

let identity n =
  Array.init n (fun i ->
      Array.init n (fun j -> if i = j then 1.0 else 0.0))

let init rows cols f = Array.init rows (fun i -> Array.init cols (fun j -> f i j))

let dims m =
  let rows = Array.length m in
  if rows = 0 then (0, 0)
  else begin
    let cols = Array.length m.(0) in
    Array.iter
      (fun r ->
        if Array.length r <> cols then invalid_arg "Mat.dims: ragged matrix")
      m;
    (rows, cols)
  end

let copy m = Array.map Array.copy m

let transpose m =
  let rows, cols = dims m in
  init cols rows (fun i j -> m.(j).(i))

let mul a b =
  let ra, ca = dims a and rb, cb = dims b in
  if ca <> rb then
    invalid_arg (Printf.sprintf "Mat.mul: dimension mismatch (%dx%d * %dx%d)" ra ca rb cb);
  let out = create ra cb in
  for i = 0 to ra - 1 do
    let ai = a.(i) and oi = out.(i) in
    for k = 0 to ca - 1 do
      let aik = ai.(k) in
      if aik <> 0.0 then begin
        let bk = b.(k) in
        for j = 0 to cb - 1 do
          oi.(j) <- oi.(j) +. (aik *. bk.(j))
        done
      end
    done
  done;
  out

let matvec m x =
  let rows, cols = dims m in
  if cols <> Array.length x then invalid_arg "Mat.matvec: dimension mismatch";
  Array.init rows (fun i -> Vec.dot m.(i) x)

let map2 name f a b =
  let ra, ca = dims a and rb, cb = dims b in
  if ra <> rb || ca <> cb then invalid_arg ("Mat." ^ name ^ ": dimension mismatch");
  init ra ca (fun i j -> f a.(i).(j) b.(i).(j))

let add a b = map2 "add" ( +. ) a b

let sub a b = map2 "sub" ( -. ) a b

let scale c m = Array.map (Array.map (fun x -> c *. x)) m

let is_symmetric ?(tol = 1e-12) m =
  let rows, cols = dims m in
  rows = cols
  &&
  let ok = ref true in
  for i = 0 to rows - 1 do
    for j = i + 1 to rows - 1 do
      if Float.abs (m.(i).(j) -. m.(j).(i)) > tol then ok := false
    done
  done;
  !ok

let symmetrize m =
  let rows, cols = dims m in
  if rows <> cols then invalid_arg "Mat.symmetrize: not square";
  init rows rows (fun i j -> 0.5 *. (m.(i).(j) +. m.(j).(i)))

let trace m =
  let rows, cols = dims m in
  if rows <> cols then invalid_arg "Mat.trace: not square";
  let acc = ref 0.0 in
  for i = 0 to rows - 1 do
    acc := !acc +. m.(i).(i)
  done;
  !acc

let frobenius_norm m =
  sqrt (Array.fold_left (fun acc row -> acc +. Vec.dot row row) 0.0 m)

let max_abs m =
  Array.fold_left (fun acc row -> Float.max acc (Vec.norm_inf row)) 0.0 m

let approx_equal ?(tol = 1e-9) a b =
  let ra, ca = dims a and rb, cb = dims b in
  ra = rb && ca = cb
  &&
  let ok = ref true in
  for i = 0 to ra - 1 do
    for j = 0 to ca - 1 do
      if Float.abs (a.(i).(j) -. b.(i).(j)) > tol then ok := false
    done
  done;
  !ok

let pp fmt m =
  Format.fprintf fmt "@[<v>";
  Array.iter (fun row -> Format.fprintf fmt "%a@," Vec.pp row) m;
  Format.fprintf fmt "@]"
