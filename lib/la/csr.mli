(** Compressed sparse row (CSR) matrices.

    The storage is the classic three-array layout: [row_ptr] of length
    [rows+1], and parallel [col_idx]/[values] arrays of length [nnz].
    Symmetric matrices (all graph Laplacians in this project) store both
    triangles so that the matvec is a single forward pass.

    Construction goes through a coordinate-triplet builder that sorts and
    sums duplicates, so callers can emit [(i, j, v)] contributions in any
    order — exactly what the Laplacian assembly does. *)

type t = private {
  rows : int;
  cols : int;
  row_ptr : int array;
  col_idx : int array;
  values : float array;
}

val of_triplets : rows:int -> cols:int -> (int * int * float) list -> t
(** Build from coordinate triplets; duplicates are summed; entries that sum
    to exactly [0.] are kept (callers may [prune] if desired).  Raises
    [Invalid_argument] on out-of-range indices. *)

val of_triplets_array : rows:int -> cols:int -> (int * int * float) array -> t

val of_dense : Mat.t -> t
(** Sparsify a dense matrix, dropping exact zeros. *)

val to_dense : t -> Mat.t

val nnz : t -> int

val dims : t -> int * int

val get : t -> int -> int -> float
(** [get m i j] — binary search within row [i]; absent entries are [0.]. *)

val matvec : ?pool:Graphio_par.Pool.t -> t -> float array -> float array

val matvec_into : ?pool:Graphio_par.Pool.t -> t -> float array -> float array -> unit
(** [matvec_into m x y] writes [m x] into pre-allocated [y].  With [pool]
    the rows are computed in parallel, row-chunked across the pool's
    domains; each row keeps its sequential left-to-right accumulation
    order, so the result is bitwise identical to the pool-less path. *)

val scale : float -> t -> t

val transpose : t -> t

val is_symmetric : ?tol:float -> t -> bool

val prune : ?tol:float -> t -> t
(** Drop stored entries with [|v| <= tol] (default [0.], i.e. exact zeros). *)

val gershgorin_upper : t -> float
(** Upper bound on the spectral radius of a symmetric matrix:
    [max_i (|a_ii| + sum_{j<>i} |a_ij|)].  Used to scale Lanczos
    tolerances. *)

val row_iter : t -> int -> (int -> float -> unit) -> unit
(** [row_iter m i f] applies [f col value] over the stored entries of row
    [i]. *)

val pp : Format.formatter -> t -> unit

(** Unboxed Bigarray CSR kernel: float64 values, int32 row pointers and
    column indices, unchecked inner-loop accesses, sequential path
    cache-blocked in fixed-size row chunks.  Per-row summation order is
    identical to the [float array] kernel, so results are bitwise equal
    (the old kernel stays available as the reference oracle). *)
module Ba : sig
  type mat

  val of_csr : t -> mat
  (** Raises [Invalid_argument] when the entry count or column count
      exceeds int32 indexing range, instead of silently wrapping. *)

  val dims : mat -> int * int
  val nnz : mat -> int

  val matvec_into : ?pool:Graphio_par.Pool.t -> mat -> float array -> float array -> unit
  (** Same contract as {!matvec_into}: bitwise identical across pool
      sizes and to the [float array] kernel. *)

  val matvec : ?pool:Graphio_par.Pool.t -> mat -> float array -> float array
end

type kernel = Arrays | Bigarray_blocked
(** Matvec kernel selector threaded through the eigensolvers: [Arrays] is
    the original [float array] path (reference oracle), [Bigarray_blocked]
    the unboxed kernel above.  Both produce bitwise-identical spectra. *)

val default_kernel : kernel
(** [Bigarray_blocked]. *)

val kernel_name : kernel -> string

val matvec_fn :
  ?pool:Graphio_par.Pool.t -> ?kernel:kernel -> t ->
  (float array -> float array -> unit)
(** Specialise a matvec closure for [m] under the chosen kernel; the
    Bigarray conversion (if any) happens once, here, not per matvec. *)
