type backend = Dense | Sparse_filtered

type stats = {
  matvecs : int;
  iterations : int;
  locked : int;
  padded : int;
}

type spectrum = {
  values : float array;
  backend : backend;
  exact : bool;
  stats : stats option;
  vectors : float array array option;
}

let default_dense_threshold = 1024

let c_dense = Graphio_obs.Metrics.counter "la.eigen.dense_solves"
let c_sparse = Graphio_obs.Metrics.counter "la.eigen.sparse_solves"

let smallest_dense ?(h = 100) a =
  let rows, cols = Mat.dims a in
  if rows <> cols then invalid_arg "Eigen.smallest_dense: matrix not square";
  Graphio_obs.Span.with_ "eigen.dense" (fun () ->
      let values = Tql.symmetric_eigenvalues a in
      Graphio_obs.Metrics.incr c_dense;
      let take = min h rows in
      {
        values = Array.sub values 0 take;
        backend = Dense;
        exact = true;
        stats = None;
        vectors = None;
      })

let smallest ?(h = 100) ?(dense_threshold = default_dense_threshold) ?tol ?seed
    ?filter_degree ?kernel ?init ?want_vectors ?on_iteration ?pool m =
  let rows, cols = Csr.dims m in
  if rows <> cols then invalid_arg "Eigen.smallest: matrix not square";
  if rows = 0 then
    { values = [||]; backend = Dense; exact = true; stats = None; vectors = None }
  else if rows <= dense_threshold then smallest_dense ~h (Csr.to_dense m)
  else
    Graphio_obs.Span.with_ "eigen.filtered" (fun () ->
        (* Chebyshev-filtered block subspace iteration: the block captures
           whole eigenspace clusters at once, which graph-Laplacian
           multiplicities demand (see Filtered).  [tol] stays relative; the
           default 1e-5 keeps eigenvalue errors far below anything visible in
           an I/O bound while shortening the convergence tail on clustered
           spectra. *)
        let tol = match tol with Some t -> t | None -> 1e-5 in
        let result =
          Filtered.smallest_csr ?seed ?degree:filter_degree ?kernel ?init
            ?want_vectors ?on_iteration ?pool ~tol m ~h
        in
        Graphio_obs.Metrics.incr c_sparse;
        {
          values = result.Filtered.values;
          backend = Sparse_filtered;
          exact = false;
          stats =
            Some
              {
                matvecs = result.Filtered.matvecs;
                iterations = result.Filtered.iterations;
                locked =
                  Array.length result.Filtered.values - result.Filtered.padded;
                padded = result.Filtered.padded;
              };
          vectors = result.Filtered.vectors;
        })
