type backend = Dense | Sparse_filtered

type spectrum = {
  values : float array;
  backend : backend;
  exact : bool;
}

let default_dense_threshold = 1024

let smallest_dense ?(h = 100) a =
  let rows, cols = Mat.dims a in
  if rows <> cols then invalid_arg "Eigen.smallest_dense: matrix not square";
  let values = Tql.symmetric_eigenvalues a in
  let take = min h rows in
  { values = Array.sub values 0 take; backend = Dense; exact = true }

let smallest ?(h = 100) ?(dense_threshold = default_dense_threshold) ?tol ?seed m =
  let rows, cols = Csr.dims m in
  if rows <> cols then invalid_arg "Eigen.smallest: matrix not square";
  if rows = 0 then { values = [||]; backend = Dense; exact = true }
  else if rows <= dense_threshold then smallest_dense ~h (Csr.to_dense m)
  else begin
    (* Chebyshev-filtered block subspace iteration: the block captures
       whole eigenspace clusters at once, which graph-Laplacian
       multiplicities demand (see Filtered).  [tol] stays relative; the
       default 1e-5 keeps eigenvalue errors far below anything visible in
       an I/O bound while shortening the convergence tail on clustered
       spectra. *)
    let tol = match tol with Some t -> t | None -> 1e-5 in
    let result = Filtered.smallest_csr ?seed ~tol m ~h in
    { values = result.Filtered.values; backend = Sparse_filtered; exact = false }
  end
