(** Two-tier spectrum cache.

    Eigensolves dominate the cost of every bound query, and their result —
    the [h] smallest (scaled) Laplacian eigenvalues of a fixed graph — is a
    pure function of [(graph structure, method, h, solver parameters)].
    This cache memoizes exactly that function behind two tiers:

    - an in-memory LRU ({!Lru}) with a configurable entry bound, shared by
      every request of one process ([graphio serve], [graphio batch],
      {!Graphio_core.Solver.bound_batch});
    - an optional on-disk tier (one file per entry under [dir]) that
      survives the process, so a CLI batch run warms the cache a later
      server answers from.

    {2 Disk format and trust}

    Disk entries are versioned binary records: an 8-byte magic that bakes
    in the format version, the full key (fingerprint, method tag, [h],
    parameter digest), the eigenvalue count, each eigenvalue as its IEEE
    bit pattern (bitwise round-trip — a disk hit is indistinguishable from
    the solve that produced it), and a trailing FNV-1a checksum over
    everything before it.  Records are written to a temp file and renamed
    into place, so concurrent writers never expose partial records.

    Disk entries are {e never trusted blindly}: a record whose magic,
    length, embedded key or checksum disagrees is treated as absent,
    counted in [cache.disk_errors], and unlinked (evicted) so it is
    recomputed and rewritten rather than consulted again.

    {2 Keying}

    The primary key is [Dag.fingerprint × method × h].  Because numerics
    also depend on solver parameters (dense/sparse crossover, tolerance,
    iteration seed), a digest of those parameters is folded into the key:
    entries computed under non-default parameters never answer queries
    made under different ones — returning a bitwise-different spectrum
    from a cache hit would violate the cache-consistency contract.

    {2 Observability}

    [cache.hits] / [cache.misses] (memory tier outcome of {!find}),
    [cache.evictions] (LRU), [cache.disk_hits] / [cache.disk_misses] /
    [cache.disk_errors] / [cache.disk_writes].  All operations are
    serialized by an internal mutex: the cache may be shared by the
    server's concurrent request handlers. *)

type key = {
  fingerprint : int64;  (** {!Graphio_graph.Dag.fingerprint} *)
  method_tag : char;  (** ['n'] (normalized, Thm 4) or ['s'] (standard, Thm 5) *)
  h : int;  (** eigenvalue-count cap the spectrum was requested with *)
  params : int64;  (** {!params_digest} of the remaining solver knobs *)
}

type entry = {
  eigenvalues : float array;
      (** the clamped, scaled spectrum exactly as the solver returned it *)
  dense : bool;  (** which eigensolver backend produced it *)
}

type ritz_key = {
  fingerprint : int64;
  method_tag : char;
  params : int64;  (** {!params_digest}, same as the spectrum key *)
}
(** Warm-start key: deliberately {e without} [h], so a solve at one [h]
    can seed its initial block from the locked Ritz vectors of a solve at
    a different [h] on the same graph/method/params
    (docs/PERFORMANCE.md). *)

type ritz = {
  n : int;  (** vector length (graph vertex count) *)
  h : int;  (** the [h] of the donor solve *)
  vectors : float array array;  (** locked Ritz vectors, ascending *)
}

type t

val create : ?capacity:int -> ?dir:string -> unit -> t
(** [create ()] — a fresh cache.  [capacity] bounds the memory tier
    (default 128 entries; 0 disables it).  [dir] enables the disk tier
    (the directory is created if missing).  Raises [Invalid_argument] on
    negative capacity; disk-tier I/O errors are swallowed (the cache is
    best-effort), surfacing only as [cache.disk_errors]. *)

val disabled : t
(** A cache that never stores and never answers — the explicit
    "no caching" argument ({!find} is [None], {!add} a no-op). *)

val ambient : unit -> t option
(** The process-wide cache configured by the environment, or [None] when
    caching is not requested: [GRAPHIO_CACHE_DIR] enables it (disk tier at
    that directory) and [GRAPHIO_CACHE_CAP] overrides the memory-tier
    capacity.  Evaluated once, at first use. *)

val params_digest :
  dense_threshold:int option ->
  tol:float option ->
  seed:int option ->
  filter_degree:int option ->
  int64
(** Digest of the solver parameters that influence the computed spectrum
    bits beyond [(graph, method, h)].  [None] means the solver default, so
    all default-parameter callers share entries.  [filter_degree] is the
    Chebyshev degree when fixed ([None] for the default [Auto] policy —
    the auto-tuner is deterministic, so all [Auto] callers share
    entries). *)

val find : t -> key -> entry option
(** Memory tier first (promoting on hit), then the disk tier (promoting
    the decoded entry into memory).  [None] on a full miss — and on
    corrupt or stale disk records, which are evicted. *)

val add : t -> key -> entry -> unit
(** Insert into the memory tier and (when configured) persist to disk. *)

val find_ritz : t -> ritz_key -> ritz option
(** Warm-start lookup: the dedicated (small) memory tier first, then the
    disk tier — same trust policy as {!find} (checksummed records,
    corrupt/stale evicted).  Counted in [cache.ritz_hits] /
    [cache.ritz_misses]. *)

val add_ritz : t -> ritz_key -> ritz -> unit
(** Store a donor block under keep-max-h: an existing record with the same
    [n] and an [h] at least as large is kept (a bigger block is strictly
    more useful; the consumer truncates or pads).  Counted in
    [cache.ritz_writes]. *)

val length : t -> int
(** Memory-tier entry count (test hook). *)

val drop_memory : t -> unit
(** Clear the memory tier only — forces the next {!find} to the disk tier
    (test hook for exercising the disk path in-process). *)

val capacity : t -> int
val dir : t -> string option

val file_of_key : dir:string -> key -> string
(** Path the disk tier uses for [key] (test hook for corruption
    fixtures). *)
