type key = {
  fingerprint : int64;
  method_tag : char;
  h : int;
  params : int64;
}

type entry = { eigenvalues : float array; dense : bool }

(* Warm-start records deliberately drop [h] from the key: the whole point
   is that a solve at one [h] can seed a solve at another.  One record per
   (fingerprint, method, params) triple, holding the locked Ritz vectors
   of the largest-h solve seen (keep-max-h: a bigger donor block is
   strictly more useful — the consumer truncates or pads as needed). *)
type ritz_key = { fingerprint : int64; method_tag : char; params : int64 }
type ritz = { n : int; h : int; vectors : float array array }

type t = {
  mutex : Mutex.t;
  mem : (key, entry) Lru.t;
  ritz_mem : (ritz_key, ritz) Lru.t;
  dir : string option;
  disabled : bool;
}

(* ------------------------------ metrics ------------------------------ *)

let c_hits = Graphio_obs.Metrics.counter "cache.hits"
let c_misses = Graphio_obs.Metrics.counter "cache.misses"
let c_evictions = Graphio_obs.Metrics.counter "cache.evictions"
let c_disk_hits = Graphio_obs.Metrics.counter "cache.disk_hits"
let c_disk_misses = Graphio_obs.Metrics.counter "cache.disk_misses"
let c_disk_errors = Graphio_obs.Metrics.counter "cache.disk_errors"
let c_disk_writes = Graphio_obs.Metrics.counter "cache.disk_writes"

(* --------------------------- fault sites ----------------------------- *)

(* Chaos battery hooks (inert without a fault plan, see Graphio_fault):
   every disk interaction the cache's correctness story depends on is
   injectable — failed/torn/corrupted reads and writes, failed renames,
   and checksum rejection.  The invariant under any of them: a record
   that cannot be trusted end-to-end is never served; it is evicted and
   recomputed. *)
let f_disk_read = Graphio_fault.site "cache.disk.read"
let f_disk_write = Graphio_fault.site "cache.disk.write"
let f_disk_rename = Graphio_fault.site "cache.disk.rename"
let f_checksum = Graphio_fault.site "cache.checksum"

(* --------------------------- key utilities --------------------------- *)

(* FNV-1a over bytes, the same hash family Dag.fingerprint uses; good
   enough to key cache records, not cryptographic. *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv1a_byte acc b =
  Int64.mul (Int64.logxor acc (Int64.of_int (b land 0xff))) fnv_prime

let fnv1a_bytes bytes len =
  let acc = ref fnv_offset in
  for i = 0 to len - 1 do
    acc := fnv1a_byte !acc (Char.code (Bytes.get bytes i))
  done;
  !acc

let fnv1a_int64 acc v =
  let acc = ref acc in
  for shift = 0 to 7 do
    acc := fnv1a_byte !acc (Int64.to_int (Int64.shift_right_logical v (shift * 8)))
  done;
  !acc

let params_digest ~dense_threshold ~tol ~seed ~filter_degree =
  let acc = fnv_offset in
  let acc =
    fnv1a_int64 acc
      (match dense_threshold with
      | None -> -1L
      | Some d -> Int64.of_int d)
  in
  let acc =
    fnv1a_int64 acc
      (match tol with None -> -1L | Some t -> Int64.bits_of_float t)
  in
  let acc =
    fnv1a_int64 acc (match seed with None -> -1L | Some s -> Int64.of_int s)
  in
  fnv1a_int64 acc
    (match filter_degree with None -> -1L | Some d -> Int64.of_int d)

(* ---------------------------- disk format ---------------------------- *)

(* Record layout (little-endian; version baked into the magic):
     0  magic   "GIOSPC\x00\x01"
     8  fingerprint : int64
    16  params      : int64
    24  method_tag  : byte
    25  dense       : byte (0 | 1)
    26  h           : int32
    30  count       : int32
    34  count * 8 bytes of IEEE-754 bit patterns
    end checksum    : int64 (FNV-1a over bytes [0, end)) *)
let magic = "GIOSPC\x00\x01"
let header_len = 34

let encode (key : key) entry =
  let count = Array.length entry.eigenvalues in
  let len = header_len + (8 * count) + 8 in
  let b = Bytes.create len in
  Bytes.blit_string magic 0 b 0 8;
  Bytes.set_int64_le b 8 key.fingerprint;
  Bytes.set_int64_le b 16 key.params;
  Bytes.set b 24 key.method_tag;
  Bytes.set b 25 (if entry.dense then '\x01' else '\x00');
  Bytes.set_int32_le b 26 (Int32.of_int key.h);
  Bytes.set_int32_le b 30 (Int32.of_int count);
  Array.iteri
    (fun i v ->
      Bytes.set_int64_le b (header_len + (8 * i)) (Int64.bits_of_float v))
    entry.eigenvalues;
  Bytes.set_int64_le b (len - 8) (fnv1a_bytes b (len - 8));
  b

(* Returns [None] for any record that cannot be trusted end-to-end:
   truncated, wrong magic/version, checksum mismatch, or a key that does
   not match the query (a renamed or stale file). *)
let decode (key : key) b =
  let len = Bytes.length b in
  if len < header_len + 8 then None
  else if Bytes.sub_string b 0 8 <> magic then None
  else
    let stored_sum = Bytes.get_int64_le b (len - 8) in
    if not (Int64.equal stored_sum (fnv1a_bytes b (len - 8))) then None
    else if Graphio_fault.hit f_checksum <> Graphio_fault.Pass then
      (* injected checksum rejection: the record verifies but is treated
         as untrustworthy, exercising the evict-and-recompute path *)
      None
    else
      let count = Int32.to_int (Bytes.get_int32_le b 30) in
      if count < 0 || len <> header_len + (8 * count) + 8 then None
      else if
        (not (Int64.equal (Bytes.get_int64_le b 8) key.fingerprint))
        || (not (Int64.equal (Bytes.get_int64_le b 16) key.params))
        || Bytes.get b 24 <> key.method_tag
        || Int32.to_int (Bytes.get_int32_le b 26) <> key.h
      then None
      else
        let dense = Bytes.get b 25 = '\x01' in
        let eigenvalues =
          Array.init count (fun i ->
              Int64.float_of_bits (Bytes.get_int64_le b (header_len + (8 * i))))
        in
        Some { eigenvalues; dense }

let file_of_key ~dir (key : key) =
  Filename.concat dir
    (Printf.sprintf "spec-%016Lx-%c-%d-%016Lx.bin" key.fingerprint
       key.method_tag key.h key.params)

(* Ritz (warm-start) record layout — same discipline as spectrum records
   (versioned magic, embedded key, trailing FNV-1a checksum, temp+rename
   publish), but keyed without [h]:
     0  magic   "GIORTZ\x00\x01"
     8  fingerprint : int64
    16  params      : int64
    24  method_tag  : byte
    25  h           : int32  (block size stored, data not key)
    29  n           : int32  (vector length)
    33  count       : int32  (number of vectors; = h today)
    37  count * n * 8 bytes of IEEE-754 bit patterns, vector-major
    end checksum    : int64 *)
let ritz_magic = "GIORTZ\x00\x01"
let ritz_header_len = 37

let encode_ritz (key : ritz_key) (r : ritz) =
  let count = Array.length r.vectors in
  let len = ritz_header_len + (8 * count * r.n) + 8 in
  let b = Bytes.create len in
  Bytes.blit_string ritz_magic 0 b 0 8;
  Bytes.set_int64_le b 8 key.fingerprint;
  Bytes.set_int64_le b 16 key.params;
  Bytes.set b 24 key.method_tag;
  Bytes.set_int32_le b 25 (Int32.of_int r.h);
  Bytes.set_int32_le b 29 (Int32.of_int r.n);
  Bytes.set_int32_le b 33 (Int32.of_int count);
  Array.iteri
    (fun j v ->
      let base = ritz_header_len + (8 * j * r.n) in
      Array.iteri
        (fun i x -> Bytes.set_int64_le b (base + (8 * i)) (Int64.bits_of_float x))
        v)
    r.vectors;
  Bytes.set_int64_le b (len - 8) (fnv1a_bytes b (len - 8));
  b

let decode_ritz (key : ritz_key) b =
  let len = Bytes.length b in
  if len < ritz_header_len + 8 then None
  else if Bytes.sub_string b 0 8 <> ritz_magic then None
  else
    let stored_sum = Bytes.get_int64_le b (len - 8) in
    if not (Int64.equal stored_sum (fnv1a_bytes b (len - 8))) then None
    else if Graphio_fault.hit f_checksum <> Graphio_fault.Pass then None
    else
      let h = Int32.to_int (Bytes.get_int32_le b 25) in
      let n = Int32.to_int (Bytes.get_int32_le b 29) in
      let count = Int32.to_int (Bytes.get_int32_le b 33) in
      if count < 0 || n < 0 || len <> ritz_header_len + (8 * count * n) + 8 then
        None
      else if
        (not (Int64.equal (Bytes.get_int64_le b 8) key.fingerprint))
        || (not (Int64.equal (Bytes.get_int64_le b 16) key.params))
        || Bytes.get b 24 <> key.method_tag
      then None
      else
        let vectors =
          Array.init count (fun j ->
              let base = ritz_header_len + (8 * j * n) in
              Array.init n (fun i ->
                  Int64.float_of_bits (Bytes.get_int64_le b (base + (8 * i)))))
        in
        Some { n; h; vectors }

let file_of_ritz_key ~dir (key : ritz_key) =
  Filename.concat dir
    (Printf.sprintf "ritz-%016Lx-%c-%016Lx.bin" key.fingerprint key.method_tag
       key.params)

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic -> (
      let bytes =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            match really_input_string ic (in_channel_length ic) with
            | s -> Some (Bytes.unsafe_of_string s)
            | exception (End_of_file | Sys_error _) -> None)
      in
      match bytes with
      | None -> None
      | Some b -> (
          (* injectable read path: a failed, torn, or bit-flipped read must
             never propagate past [decode]'s end-to-end checks *)
          match Graphio_fault.hit ~len:(Bytes.length b) f_disk_read with
          | Graphio_fault.Pass -> Some b
          | Graphio_fault.Fail -> None
          | Graphio_fault.Torn keep -> Some (Bytes.sub b 0 keep)
          | Graphio_fault.Flip (off, mask) ->
              let b = Bytes.copy b in
              Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor mask));
              Some b
          | Graphio_fault.Sleep s ->
              Unix.sleepf s;
              Some b))

(* Atomic publish: temp file + rename, so a concurrent reader never sees a
   partial record (it sees the old file or the new one). *)
let write_file path b =
  (* Injectable write path.  [Fail] models open/write errors before any
     byte lands; [Torn]/[Flip] model a crash mid-write or silent media
     corruption — the damaged record is deliberately PUBLISHED (the
     rename below still runs) because the on-disk checksum, not the
     writer, is what guarantees a corrupt record is never served. *)
  let payload =
    match Graphio_fault.hit ~len:(Bytes.length b) f_disk_write with
    | Graphio_fault.Pass -> Some b
    | Graphio_fault.Fail -> None
    | Graphio_fault.Torn keep -> Some (Bytes.sub b 0 keep)
    | Graphio_fault.Flip (off, mask) ->
        let b = Bytes.copy b in
        Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor mask));
        Some b
    | Graphio_fault.Sleep s ->
        Unix.sleepf s;
        Some b
  in
  match payload with
  | None -> false
  | Some b -> (
      let tmp =
        Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ()) (Domain.self () :> int)
      in
      match open_out_bin tmp with
      | exception Sys_error _ -> false
      | oc -> (
          let written =
            Fun.protect
              ~finally:(fun () -> close_out_noerr oc)
              (fun () ->
                match output_bytes oc b with
                | () -> true
                | exception Sys_error _ -> false)
          in
          if not written then begin
            (try Sys.remove tmp with Sys_error _ -> ());
            false
          end
          else
            (* injectable rename: a failed publish must clean up the temp
               file — a leaked temp would accumulate forever in the cache
               directory (asserted by the chaos battery) *)
            match
              (match Graphio_fault.hit f_disk_rename with
              | Graphio_fault.Pass -> ()
              | Graphio_fault.Sleep s -> Unix.sleepf s
              | Graphio_fault.Fail | Graphio_fault.Torn _ | Graphio_fault.Flip _ ->
                  raise (Sys_error "injected rename failure"));
              Sys.rename tmp path
            with
            | () -> true
            | exception Sys_error _ ->
                (try Sys.remove tmp with Sys_error _ -> ());
                false))

(* ----------------------------- lifecycle ----------------------------- *)

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with
    | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    | Unix.Unix_error _ -> ()
  end

let create ?(capacity = 128) ?dir () =
  Option.iter mkdir_p dir;
  {
    mutex = Mutex.create ();
    mem =
      Lru.create ~capacity
        ~on_evict:(fun _ _ -> Graphio_obs.Metrics.incr c_evictions)
        ();
    (* Ritz blocks weigh h*n floats each, so the memory tier stays small
       relative to the spectrum tier; the disk tier holds the rest. *)
    ritz_mem = Lru.create ~capacity:(max 2 (capacity / 16)) ();
    dir;
    disabled = false;
  }

let disabled =
  {
    mutex = Mutex.create ();
    mem = Lru.create ~capacity:0 ();
    ritz_mem = Lru.create ~capacity:0 ();
    dir = None;
    disabled = true;
  }

let ambient_cache =
  lazy
    (match Sys.getenv_opt "GRAPHIO_CACHE_DIR" with
    | None | Some "" -> None
    | Some dir ->
        let capacity =
          match Sys.getenv_opt "GRAPHIO_CACHE_CAP" with
          | Some s -> ( match int_of_string_opt s with Some c when c >= 0 -> c | _ -> 128)
          | None -> 128
        in
        Some (create ~capacity ~dir ()))

let ambient () = Lazy.force ambient_cache

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let disk_find t key =
  match t.dir with
  | None -> None
  | Some dir -> (
      let path = file_of_key ~dir key in
      if not (Sys.file_exists path) then begin
        Graphio_obs.Metrics.incr c_disk_misses;
        None
      end
      else
        match read_file path with
        | None ->
            Graphio_obs.Metrics.incr c_disk_errors;
            None
        | Some bytes -> (
            match decode key bytes with
            | Some entry ->
                Graphio_obs.Metrics.incr c_disk_hits;
                Some entry
            | None ->
                (* corrupt or stale: never trusted, evicted, recomputed *)
                Graphio_obs.Metrics.incr c_disk_errors;
                (try Sys.remove path with Sys_error _ -> ());
                None))

(* Debug-level cache events carry the key fingerprint so a request's
   cache interactions line up with its solver.spectrum event in the log. *)
let log_lookup ~tier (key : key) =
  if Graphio_obs.Log.enabled Graphio_obs.Log.Debug then
    Graphio_obs.Log.emit ~level:Graphio_obs.Log.Debug "cache.lookup"
      [
        ( "fingerprint",
          Graphio_obs.Jsonx.String (Printf.sprintf "%016Lx" key.fingerprint) );
        ("tier", Graphio_obs.Jsonx.String tier);
      ]

let find t key =
  if t.disabled then None
  else
    locked t (fun () ->
        match Lru.find t.mem key with
        | Some entry ->
            Graphio_obs.Metrics.incr c_hits;
            log_lookup ~tier:"mem" key;
            Some entry
        | None -> (
            match disk_find t key with
            | Some entry ->
                Graphio_obs.Metrics.incr c_hits;
                log_lookup ~tier:"disk" key;
                Lru.add t.mem key entry;
                Some entry
            | None ->
                Graphio_obs.Metrics.incr c_misses;
                log_lookup ~tier:"miss" key;
                None))

let add t key entry =
  if not t.disabled then
    locked t (fun () ->
        Lru.add t.mem key entry;
        match t.dir with
        | None -> ()
        | Some dir ->
            if write_file (file_of_key ~dir key) (encode key entry) then begin
              Graphio_obs.Metrics.incr c_disk_writes;
              log_lookup ~tier:"disk_write" key
            end
            else begin
              Graphio_obs.Metrics.incr c_disk_errors;
              Graphio_obs.Log.emit ~level:Graphio_obs.Log.Warn
                "cache.disk_write_error"
                [
                  ( "fingerprint",
                    Graphio_obs.Jsonx.String
                      (Printf.sprintf "%016Lx" key.fingerprint) );
                ]
            end)

(* ------------------------- warm-start records ------------------------- *)

let c_ritz_hits = Graphio_obs.Metrics.counter "cache.ritz_hits"
let c_ritz_misses = Graphio_obs.Metrics.counter "cache.ritz_misses"
let c_ritz_writes = Graphio_obs.Metrics.counter "cache.ritz_writes"

let disk_find_ritz t key =
  match t.dir with
  | None -> None
  | Some dir -> (
      let path = file_of_ritz_key ~dir key in
      if not (Sys.file_exists path) then None
      else
        match read_file path with
        | None ->
            Graphio_obs.Metrics.incr c_disk_errors;
            None
        | Some bytes -> (
            match decode_ritz key bytes with
            | Some r -> Some r
            | None ->
                (* same trust policy as spectrum records: corrupt or stale
                   is evicted and recomputed, never served *)
                Graphio_obs.Metrics.incr c_disk_errors;
                (try Sys.remove path with Sys_error _ -> ());
                None))

let find_ritz t key =
  if t.disabled then None
  else
    locked t (fun () ->
        match Lru.find t.ritz_mem key with
        | Some r ->
            Graphio_obs.Metrics.incr c_ritz_hits;
            Some r
        | None -> (
            match disk_find_ritz t key with
            | Some r ->
                Graphio_obs.Metrics.incr c_ritz_hits;
                Lru.add t.ritz_mem key r;
                Some r
            | None ->
                Graphio_obs.Metrics.incr c_ritz_misses;
                None))

let add_ritz t key r =
  if not t.disabled then
    locked t (fun () ->
        (* keep-max-h: only replace a record when the donor block grew.
           The disk tier is consulted so a fresh process never clobbers a
           larger record left by an earlier run. *)
        let existing =
          match Lru.find t.ritz_mem key with
          | Some _ as e -> e
          | None -> disk_find_ritz t key
        in
        let keep =
          match existing with
          | Some ex -> ex.n <> r.n || r.h > ex.h
          | None -> true
        in
        if keep then begin
          Lru.add t.ritz_mem key r;
          match t.dir with
          | None -> ()
          | Some dir ->
              if write_file (file_of_ritz_key ~dir key) (encode_ritz key r)
              then Graphio_obs.Metrics.incr c_ritz_writes
              else Graphio_obs.Metrics.incr c_disk_errors
        end)

let length t = locked t (fun () -> Lru.length t.mem)
let drop_memory t = locked t (fun () -> Lru.clear t.mem)
let capacity t = Lru.capacity t.mem
let dir t = t.dir
