(* Hash table + intrusive doubly-linked recency list.  [head] is the
   most-recently-used end, [tail] the eviction end.  Nodes are never
   shared between lists, so unlinking is local pointer surgery. *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option;
  mutable next : ('k, 'v) node option;
}

type ('k, 'v) t = {
  capacity : int;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option;
  mutable tail : ('k, 'v) node option;
  mutable evictions : int;
  on_evict : ('k -> 'v -> unit) option;
}

let create ?on_evict ~capacity () =
  if capacity < 0 then invalid_arg "Lru.create: negative capacity";
  {
    capacity;
    table = Hashtbl.create (max 16 capacity);
    head = None;
    tail = None;
    evictions = 0;
    on_evict;
  }

let capacity t = t.capacity
let length t = Hashtbl.length t.table
let evictions t = t.evictions

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.prev <- None;
  node.next <- t.head;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let promote t node =
  match t.head with
  | Some h when h == node -> ()
  | _ ->
      unlink t node;
      push_front t node

let find t k =
  match Hashtbl.find_opt t.table k with
  | None -> None
  | Some node ->
      promote t node;
      Some node.value

let mem t k = Hashtbl.mem t.table k

let drop_lru t =
  match t.tail with
  | None -> ()
  | Some node ->
      unlink t node;
      Hashtbl.remove t.table node.key;
      t.evictions <- t.evictions + 1;
      (match t.on_evict with Some f -> f node.key node.value | None -> ())

let add t k v =
  if t.capacity > 0 then
    match Hashtbl.find_opt t.table k with
    | Some node ->
        node.value <- v;
        promote t node
    | None ->
        if length t >= t.capacity then drop_lru t;
        let node = { key = k; value = v; prev = None; next = None } in
        Hashtbl.replace t.table k node;
        push_front t node

let remove t k =
  match Hashtbl.find_opt t.table k with
  | None -> ()
  | Some node ->
      unlink t node;
      Hashtbl.remove t.table k

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None

let to_list t =
  let rec walk acc = function
    | None -> List.rev acc
    | Some node -> walk ((node.key, node.value) :: acc) node.next
  in
  walk [] t.head
