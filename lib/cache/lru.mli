(** Bounded in-memory LRU map.

    The memory tier of the spectrum cache ({!Spectrum}): a hash table plus
    an intrusive doubly-linked recency list, so [find]/[add] are O(1) and
    the entry count never exceeds the configured capacity.  [find] promotes
    the entry to most-recently-used; inserting into a full cache evicts the
    least-recently-used entry (reported through [on_evict], which the
    spectrum cache does {e not} use to write back — the disk tier is
    written on [add], so an evicted entry is already persistent).

    Not thread-safe on its own; {!Spectrum} serializes access under one
    mutex.  A capacity of [0] is legal and makes the cache a no-op. *)

type ('k, 'v) t

val create : ?on_evict:('k -> 'v -> unit) -> capacity:int -> unit -> ('k, 'v) t
(** Raises [Invalid_argument] when [capacity < 0]. *)

val capacity : ('k, 'v) t -> int

val length : ('k, 'v) t -> int
(** Current entry count; always [<= capacity]. *)

val find : ('k, 'v) t -> 'k -> 'v option
(** Lookup and promote to most-recently-used. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Lookup without promoting. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or replace (replacement promotes).  Evicts the LRU entry when
    the cache is full; with [capacity = 0] this is a no-op. *)

val remove : ('k, 'v) t -> 'k -> unit

val evictions : ('k, 'v) t -> int
(** Capacity evictions so far ([remove] and replacement don't count). *)

val clear : ('k, 'v) t -> unit
(** Drop every entry (not counted as evictions). *)

val to_list : ('k, 'v) t -> ('k * 'v) list
(** Entries most-recently-used first (test hook). *)
