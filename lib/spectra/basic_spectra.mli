(** Closed-form Laplacian spectra of elementary (unweighted) graphs.

    Building blocks for spectral reasoning beyond the paper's three
    families: combined with {!Product_spectra} they give closed forms for
    grids, tori and (re-derived, as a cross-check) the hypercube.  All
    spectra are of the {e standard} unweighted Laplacian [L = D - A]. *)

val path : int -> Multiset.t
(** [path n]: [2 − 2 cos(k π / n)], [k = 0..n−1].  [n >= 1]. *)

val cycle : int -> Multiset.t
(** [cycle n]: [2 − 2 cos(2 π k / n)], [k = 0..n−1].  [n >= 3]. *)

val complete : int -> Multiset.t
(** [complete n]: [0] once and [n] with multiplicity [n−1].  [n >= 1]. *)

val complete_bipartite : int -> int -> Multiset.t
(** [complete_bipartite a b]: [0], [a] ([b−1] times), [b] ([a−1] times),
    [a+b].  [a, b >= 1]. *)

val star : int -> Multiset.t
(** [star leaves] = [complete_bipartite 1 leaves]. *)

val edge : Multiset.t
(** The single-edge graph [K_2]: [{0, 2}] — the hypercube's product
    factor. *)
