(** Laplacian spectrum of the boolean hypercube [Q_l] (Section 5.1).

    The [l]-dimensional hypercube has [2^l] vertices and (unweighted,
    undirected) Laplacian eigenvalues [2i] with multiplicity [C(l, i)] for
    [i = 0..l].  This is the spectrum of the undirected support of the
    Bellman–Held–Karp computation graph, i.e. the [L] of Theorem 5. *)

val binomial : int -> int -> int
(** [binomial n k] = [C(n, k)] by the multiplicative formula; exact for all
    values fitting a native int (raises [Failure] on overflow). *)

val spectrum : int -> Multiset.t
(** [spectrum l] for [l >= 0].  Total multiplicity is [2^l]. *)

val eigenvalue : int -> float
(** [eigenvalue i] = [2 i] — the value paired with multiplicity
    [C(l, i)]. *)
