(** Spectra of the weighted path graphs of Lemma 11.

    The butterfly decomposition (Appendix A) reduces [B_k] to three kinds of
    path graphs, all with edge weight 2:

    - [P_i]  — plain path on [i] vertices;
    - [P'_i] — path with one endpoint carrying vertex weight 2;
    - [P''_i] — path with both endpoints carrying vertex weight 2.

    Lemma 11 gives their weighted-Laplacian spectra in closed form; this
    module provides both the closed forms and the dense Laplacians so the
    test suite can check one against the other. *)

val p : int -> float array
(** [λ(L(P_i)) = 4 − 4 cos(π j / i)], [j = 0..i−1], ascending.  [i >= 1]. *)

val p' : int -> float array
(** [λ(L(P'_i)) = 4 − 4 cos(π (2j+1) / (2i+1))], [j = 0..i−1], ascending. *)

val p'' : int -> float array
(** [λ(L(P''_i)) = 4 − 4 cos(π j / (i+1))], [j = 1..i], ascending. *)

val p_laplacian : int -> Graphio_la.Mat.t
(** Dense weighted Laplacian of [P_i] (edge weights 2). *)

val p'_laplacian : int -> Graphio_la.Mat.t
(** As above plus vertex weight 2 on the last vertex. *)

val p''_laplacian : int -> Graphio_la.Mat.t
(** As above plus vertex weight 2 on both end vertices. *)
