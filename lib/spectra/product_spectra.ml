let cartesian_sum (a : Multiset.t) (b : Multiset.t) =
  let pairs = ref [] in
  Array.iter
    (fun (va, ma) ->
      Array.iter
        (fun (vb, mb) -> pairs := (va +. vb, ma * mb) :: !pairs)
        (b :> (float * int) array))
    (a :> (float * int) array);
  Multiset.of_list !pairs

let rec power s k =
  if k < 1 then invalid_arg "Product_spectra.power: k must be >= 1";
  if k = 1 then s
  else begin
    let half = power s (k / 2) in
    let sq = cartesian_sum half half in
    if k mod 2 = 0 then sq else cartesian_sum sq s
  end

let grid rows cols = cartesian_sum (Basic_spectra.path rows) (Basic_spectra.path cols)

let torus rows cols = cartesian_sum (Basic_spectra.cycle rows) (Basic_spectra.cycle cols)

let hypercube l =
  if l < 0 then invalid_arg "Product_spectra.hypercube: negative dimension";
  if l = 0 then Multiset.of_list [ (0.0, 1) ] else power Basic_spectra.edge l
