let check_size name i =
  if i < 1 then invalid_arg ("Path_spectra." ^ name ^ ": size must be >= 1")

let cos_family ~count ~angle =
  let vals = Array.init count (fun j -> 4.0 -. (4.0 *. cos (angle j))) in
  Array.sort Float.compare vals;
  vals

let p i =
  check_size "p" i;
  cos_family ~count:i ~angle:(fun j ->
      Float.pi *. float_of_int j /. float_of_int i)

let p' i =
  check_size "p'" i;
  cos_family ~count:i ~angle:(fun j ->
      Float.pi *. float_of_int ((2 * j) + 1) /. float_of_int ((2 * i) + 1))

let p'' i =
  check_size "p''" i;
  cos_family ~count:i ~angle:(fun j ->
      Float.pi *. float_of_int (j + 1) /. float_of_int (i + 1))

let path_laplacian ~vertex_weight i =
  let open Graphio_la in
  Mat.init i i (fun r c ->
      if r = c then begin
        let edge_part =
          2.0 *. float_of_int ((if r > 0 then 1 else 0) + if r < i - 1 then 1 else 0)
        in
        edge_part +. vertex_weight r
      end
      else if abs (r - c) = 1 then -2.0
      else 0.0)

let p_laplacian i =
  check_size "p_laplacian" i;
  path_laplacian ~vertex_weight:(fun _ -> 0.0) i

let p'_laplacian i =
  check_size "p'_laplacian" i;
  path_laplacian ~vertex_weight:(fun r -> if r = i - 1 then 2.0 else 0.0) i

let p''_laplacian i =
  check_size "p''_laplacian" i;
  (* Each endpoint contributes weight 2; for i = 1 the single vertex is
     both endpoints and carries 4 (L(P''_1) = [4], eigenvalue 4). *)
  path_laplacian
    ~vertex_weight:(fun r ->
      (if r = 0 then 2.0 else 0.0) +. if r = i - 1 then 2.0 else 0.0)
    i
