let path n =
  if n < 1 then invalid_arg "Basic_spectra.path: n must be >= 1";
  Multiset.of_list
    (List.init n (fun k ->
         (2.0 -. (2.0 *. cos (Float.pi *. float_of_int k /. float_of_int n)), 1)))

let cycle n =
  if n < 3 then invalid_arg "Basic_spectra.cycle: n must be >= 3";
  Multiset.of_list
    (List.init n (fun k ->
         ( 2.0 -. (2.0 *. cos (2.0 *. Float.pi *. float_of_int k /. float_of_int n)),
           1 )))

let complete n =
  if n < 1 then invalid_arg "Basic_spectra.complete: n must be >= 1";
  if n = 1 then Multiset.of_list [ (0.0, 1) ]
  else Multiset.of_list [ (0.0, 1); (float_of_int n, n - 1) ]

let complete_bipartite a b =
  if a < 1 || b < 1 then
    invalid_arg "Basic_spectra.complete_bipartite: sides must be >= 1";
  Multiset.of_list
    [
      (0.0, 1);
      (float_of_int a, b - 1);
      (float_of_int b, a - 1);
      (float_of_int (a + b), 1);
    ]

let star leaves = complete_bipartite 1 leaves

let edge = Multiset.of_list [ (0.0, 1); (2.0, 1) ]
