(** Eigenvalue multisets: sorted [(value, multiplicity)] pairs.

    Closed-form graph spectra come naturally with multiplicities (e.g. the
    hypercube's eigenvalue [2i] appears [C(l,i)] times); this module keeps
    them compact so bounds over graphs with millions of vertices never
    materialize million-element arrays unless asked to. *)

type t = private (float * int) array
(** Ascending by value; multiplicities positive; values distinct up to the
    merge tolerance. *)

val of_list : ?merge_tol:float -> (float * int) list -> t
(** Sorts, merges values closer than [merge_tol] (default [1e-9]), drops
    zero multiplicities.  Raises [Invalid_argument] on negative
    multiplicities and on NaN values (NaN would silently break the
    sort-merge ordering and poison every downstream prefix sum). *)

val of_array : ?merge_tol:float -> float array -> t
(** From an explicit eigenvalue array (each value multiplicity 1 before
    merging). *)

val total : t -> int
(** Total count including multiplicity (the matrix dimension). *)

val distinct : t -> int

val smallest : t -> h:int -> float array
(** The [min h total] smallest values, expanded with multiplicity,
    ascending. *)

val smallest_sum : t -> k:int -> float
(** Sum of the [k] smallest values (with multiplicity).  Raises
    [Invalid_argument] if [k > total]. *)

val to_array : t -> float array
(** Full expansion (use only for small spectra). *)

val min_value : t -> float
(** Raises on the empty multiset. *)

val max_value : t -> float

val merge : t -> t -> t

val scale : float -> t -> t
(** Multiply every value by a nonnegative factor (order preserved). *)

val pp : Format.formatter -> t -> unit
