(** Laplacian spectrum of the unwrapped butterfly graph [B_k] (Theorem 7).

    [B_k] is the computation graph of a [2^k]-point FFT: [(k+1)] columns of
    [2^k] vertices.  Appendix A decomposes its Laplacian spectrum (counting
    multiplicity) into weighted-path spectra:

    - one instance of [P_{k+1}];
    - [2^{k-i+1}] instances of [P'_i] for [i = 1..k];
    - [(k-i) 2^{k-i-1}] instances of [P''_i] for [i = 1..k-1].

    (The first family is stated in Theorem 7 as
    [4 − 4 cos(π j/(k+1)), j = 0..k] — the Section 5.2 form; the appendix
    restatement with denominator [k] is a typo, which our numeric
    cross-check in the test suite confirms.)

    To the authors' knowledge this was the first closed form with
    multiplicities for the {e unwrapped} butterfly. *)

val spectrum : int -> Multiset.t
(** [spectrum k] for [k >= 0].  Total multiplicity is [(k+1) 2^k].
    [spectrum 0] is the single-vertex graph: [{0}]. *)

val n_vertices : int -> int
(** [(k+1) 2^k]. *)

val second_smallest : int -> float
(** The smallest nonzero eigenvalue [4 − 4 cos(π/(2k+1))] (the [i = k],
    [j = 0] member of the [P'] family), used by the §5.2 closed-form
    analysis. *)
