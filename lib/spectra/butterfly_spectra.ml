let n_vertices k =
  if k < 0 then invalid_arg "Butterfly_spectra.n_vertices: negative level";
  (k + 1) * (1 lsl k)

let spectrum k =
  if k < 0 then invalid_arg "Butterfly_spectra.spectrum: negative level";
  if k = 0 then Multiset.of_list [ (0.0, 1) ]
  else begin
    let pairs = ref [] in
    let add_family values multiplicity =
      Array.iter (fun v -> pairs := (v, multiplicity) :: !pairs) values
    in
    (* One instance of P_{k+1}. *)
    add_family (Path_spectra.p (k + 1)) 1;
    (* 2^{k-i+1} instances of P'_i, i = 1..k. *)
    for i = 1 to k do
      add_family (Path_spectra.p' i) (1 lsl (k - i + 1))
    done;
    (* (k-i) 2^{k-i-1} instances of P''_i, i = 1..k-1. *)
    for i = 1 to k - 1 do
      add_family (Path_spectra.p'' i) ((k - i) * (1 lsl (k - i - 1)))
    done;
    let ms = Multiset.of_list !pairs in
    assert (Multiset.total ms = n_vertices k);
    ms
  end

let second_smallest k =
  if k < 1 then invalid_arg "Butterfly_spectra.second_smallest: level must be >= 1";
  4.0 -. (4.0 *. cos (Float.pi /. float_of_int ((2 * k) + 1)))
