(** Spectra of Cartesian graph products.

    For the Cartesian product [G □ H], the Laplacian eigenvalues are all
    pairwise sums [λ_i(G) + μ_j(H)] (with multiplicities multiplying) — the
    standard separability property.  This yields closed forms for grids
    ([path □ path]), tori ([cycle □ cycle]) and re-derives the hypercube as
    the [l]-fold product of single edges, which the test suite checks
    against {!Hypercube_spectra} and against numerically-built graphs. *)

val cartesian_sum : Multiset.t -> Multiset.t -> Multiset.t
(** All pairwise sums; total multiplicity is the product of totals.
    Intended for modest distinct counts (the result has up to
    [distinct a * distinct b] distinct values before merging). *)

val power : Multiset.t -> int -> Multiset.t
(** [power s k] — the [k]-fold Cartesian power ([k >= 1]). *)

val grid : int -> int -> Multiset.t
(** [grid rows cols] — Laplacian spectrum of the [rows x cols] grid. *)

val torus : int -> int -> Multiset.t
(** [torus rows cols] — spectrum of the discrete torus ([rows, cols >= 3]). *)

val hypercube : int -> Multiset.t
(** [l]-fold product of edges; equals
    {!Hypercube_spectra.spectrum}[ l] (tested). *)
