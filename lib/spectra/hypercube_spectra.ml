let binomial n k =
  if k < 0 || k > n then 0
  else begin
    let k = min k (n - k) in
    let acc = ref 1 in
    for i = 1 to k do
      let next_num = !acc * (n - k + i) in
      if next_num < 0 || next_num / (n - k + i) <> !acc then
        failwith "Hypercube_spectra.binomial: overflow";
      acc := next_num / i
    done;
    !acc
  end

let eigenvalue i = 2.0 *. float_of_int i

let spectrum l =
  if l < 0 then invalid_arg "Hypercube_spectra.spectrum: negative dimension";
  Multiset.of_list (List.init (l + 1) (fun i -> (eigenvalue i, binomial l i)))
