type t = (float * int) array

let of_list ?(merge_tol = 1e-9) pairs =
  List.iter
    (fun (v, m) ->
      if m < 0 then invalid_arg "Multiset.of_list: negative multiplicity";
      (* NaN is unordered under Float.compare's total order intent: it
         would sort unpredictably and defeat the tolerance merge, yielding
         a structurally valid but silently wrong multiset *)
      if Float.is_nan v then invalid_arg "Multiset.of_list: NaN eigenvalue")
    pairs;
  let pairs = List.filter (fun (_, m) -> m > 0) pairs in
  let sorted = List.sort (fun (a, _) (b, _) -> Float.compare a b) pairs in
  let rec merge_run acc = function
    | [] -> List.rev acc
    | (v, m) :: rest -> (
        match acc with
        | (v0, m0) :: acc' when Float.abs (v -. v0) <= merge_tol ->
            merge_run ((v0, m0 + m) :: acc') rest
        | _ -> merge_run ((v, m) :: acc) rest)
  in
  Array.of_list (merge_run [] sorted)

let of_array ?merge_tol values =
  of_list ?merge_tol (Array.to_list (Array.map (fun v -> (v, 1)) values))

let total t = Array.fold_left (fun acc (_, m) -> acc + m) 0 t

let distinct = Array.length

let smallest t ~h =
  if h < 0 then invalid_arg "Multiset.smallest: negative h";
  let n = min h (total t) in
  let out = Array.make n 0.0 in
  let k = ref 0 in
  Array.iter
    (fun (v, m) ->
      let take = min m (n - !k) in
      for _ = 1 to take do
        out.(!k) <- v;
        incr k
      done)
    t;
  out

let smallest_sum t ~k =
  if k < 0 then invalid_arg "Multiset.smallest_sum: negative k";
  if k > total t then invalid_arg "Multiset.smallest_sum: k exceeds total";
  let remaining = ref k and acc = ref 0.0 in
  Array.iter
    (fun (v, m) ->
      let take = min m !remaining in
      acc := !acc +. (float_of_int take *. v);
      remaining := !remaining - take)
    t;
  !acc

let to_array t = smallest t ~h:(total t)

let min_value t =
  if Array.length t = 0 then invalid_arg "Multiset.min_value: empty";
  fst t.(0)

let max_value t =
  if Array.length t = 0 then invalid_arg "Multiset.max_value: empty";
  fst t.(Array.length t - 1)

let merge a b = of_list (Array.to_list a @ Array.to_list b)

let scale c t =
  if c < 0.0 then invalid_arg "Multiset.scale: negative factor";
  Array.map (fun (v, m) -> (c *. v, m)) t

let pp fmt t =
  Format.fprintf fmt "@[<h>{";
  Array.iteri
    (fun i (v, m) ->
      if i > 0 then Format.fprintf fmt ", ";
      if m = 1 then Format.fprintf fmt "%g" v else Format.fprintf fmt "%g^%d" v m)
    t;
  Format.fprintf fmt "}@]"
