let hex = "0123456789ABCDEF"

let percent_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' | '*' | '+' | '(' | ')'
      | '[' | ']' | ',' | '^' | '=' | '/' | '<' | '>' | '@' | ':' ->
          Buffer.add_char buf c
      | c ->
          Buffer.add_char buf '%';
          Buffer.add_char buf hex.[Char.code c lsr 4];
          Buffer.add_char buf hex.[Char.code c land 0xf])
    s;
  Buffer.contents buf

let percent_unescape s =
  let buf = Buffer.create (String.length s) in
  let i = ref 0 in
  let len = String.length s in
  let hex_val c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> failwith "Edgelist: bad percent escape"
  in
  while !i < len do
    (match s.[!i] with
    | '%' ->
        if !i + 2 >= len then failwith "Edgelist: truncated percent escape";
        Buffer.add_char buf
          (Char.chr ((hex_val s.[!i + 1] lsl 4) lor hex_val s.[!i + 2]));
        i := !i + 2
    | c -> Buffer.add_char buf c);
    incr i
  done;
  Buffer.contents buf

let to_string g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "graphio 1\n";
  Buffer.add_string buf
    (Printf.sprintf "n %d m %d\n" (Dag.n_vertices g) (Dag.n_edges g));
  for v = 0 to Dag.n_vertices g - 1 do
    match Dag.label g v with
    | Some l -> Buffer.add_string buf (Printf.sprintf "l %d %s\n" v (percent_escape l))
    | None -> ()
  done;
  Dag.iter_edges g (fun u v ->
      Buffer.add_string buf (Printf.sprintf "e %d %d\n" u v));
  Buffer.contents buf

let of_string text =
  let lines = String.split_on_char '\n' text in
  let fail lineno msg = failwith (Printf.sprintf "Edgelist: line %d: %s" lineno msg) in
  let n = ref (-1) and m = ref (-1) in
  let labels = Hashtbl.create 16 in
  let edges = ref [] in
  let saw_header = ref false in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line = String.trim line in
      if line = "" || line.[0] = '#' then ()
      else if not !saw_header then begin
        if line <> "graphio 1" then fail lineno "expected header 'graphio 1'";
        saw_header := true
      end
      else if !n < 0 then begin
        try Scanf.sscanf line "n %d m %d" (fun a b ->
            if a < 0 || b < 0 then fail lineno "negative counts";
            n := a;
            m := b)
        with Scanf.Scan_failure _ | End_of_file ->
          fail lineno "expected 'n <vertices> m <edges>'"
      end
      else
        match String.index_opt line ' ' with
        | None -> fail lineno "malformed record"
        | Some _ -> (
            match line.[0] with
            | 'l' -> (
                try
                  Scanf.sscanf line "l %d %s" (fun v l ->
                      if v < 0 || v >= !n then fail lineno "label vertex out of range";
                      Hashtbl.replace labels v (percent_unescape l))
                with Scanf.Scan_failure _ | End_of_file -> fail lineno "malformed label")
            | 'e' -> (
                try
                  Scanf.sscanf line "e %d %d" (fun u v ->
                      if u < 0 || u >= !n || v < 0 || v >= !n then
                        fail lineno
                          (Printf.sprintf "edge %d -> %d: vertex out of range [0, %d)"
                             u v !n);
                      edges := (lineno, u, v) :: !edges)
                with Scanf.Scan_failure _ | End_of_file -> fail lineno "malformed edge")
            | _ -> fail lineno "unknown record type"))
    lines;
  if not !saw_header then failwith "Edgelist: empty input";
  if !n < 0 then failwith "Edgelist: missing size line";
  let edges = List.rev !edges in
  if List.length edges <> !m then
    failwith
      (Printf.sprintf "Edgelist: edge count mismatch (declared %d, found %d)" !m
         (List.length edges));
  let seen = Hashtbl.create (List.length edges) in
  List.iter
    (fun (lineno, u, v) ->
      if Hashtbl.mem seen (u, v) then
        failwith
          (Printf.sprintf
             "Edgelist: line %d: duplicate edge %d -> %d (first on line %d)"
             lineno u v (Hashtbl.find seen (u, v)));
      Hashtbl.add seen (u, v) lineno)
    edges;
  let b = Dag.Builder.create ~capacity_hint:!n () in
  for v = 0 to !n - 1 do
    ignore (Dag.Builder.add_vertex ?label:(Hashtbl.find_opt labels v) b)
  done;
  List.iter
    (fun (lineno, u, v) ->
      try Dag.Builder.add_edge b u v
      with Invalid_argument msg ->
        failwith (Printf.sprintf "Edgelist: line %d: %s" lineno msg))
    edges;
  try Dag.Builder.build b
  with Invalid_argument msg -> failwith ("Edgelist: " ^ msg)

let to_file path g =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string g))

let of_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      try of_string (In_channel.input_all ic)
      with Failure msg -> failwith (Printf.sprintf "%s: %s" path msg))
