let kahn g =
  let n = Dag.n_vertices g in
  let indeg = Array.init n (Dag.in_degree g) in
  let queue = Queue.create () in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then Queue.add v queue
  done;
  let order = Array.make n 0 in
  let t = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order.(!t) <- v;
    incr t;
    Dag.iter_succ g v (fun w ->
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then Queue.add w queue)
  done;
  if !t <> n then invalid_arg "Topo.kahn: graph has a cycle";
  order

let dfs g =
  let n = Dag.n_vertices g in
  let visited = Array.make n false in
  let postorder = ref [] in
  (* Iterative DFS emitting reverse postorder. *)
  let visit root =
    if not visited.(root) then begin
      let stack = Stack.create () in
      Stack.push (root, 0) stack;
      visited.(root) <- true;
      while not (Stack.is_empty stack) do
        let v, next = Stack.pop stack in
        let children = Dag.succ g v in
        if next < Array.length children then begin
          Stack.push (v, next + 1) stack;
          let w = children.(next) in
          if not visited.(w) then begin
            visited.(w) <- true;
            Stack.push (w, 0) stack
          end
        end
        else postorder := v :: !postorder
      done
    end
  in
  Array.iter visit (Dag.sources g);
  (* Isolated cycles would be unreachable, but builders guarantee
     acyclicity; vertices unreachable from sources cannot exist in a DAG. *)
  let order = Array.of_list !postorder in
  if Array.length order <> n then invalid_arg "Topo.dfs: graph has a cycle";
  order

let is_valid g order =
  let n = Dag.n_vertices g in
  Array.length order = n
  &&
  let pos = Array.make n (-1) in
  let ok = ref true in
  Array.iteri
    (fun t v ->
      if v < 0 || v >= n || pos.(v) <> -1 then ok := false else pos.(v) <- t)
    order;
  !ok
  &&
  let ok = ref true in
  Dag.iter_edges g (fun u v -> if pos.(u) >= pos.(v) then ok := false);
  !ok

let natural g =
  let n = Dag.n_vertices g in
  let order = Array.init n (fun i -> i) in
  let ok = ref true in
  Dag.iter_edges g (fun u v -> if u >= v then ok := false);
  if not !ok then
    invalid_arg "Topo.natural: creation order is not topological for this graph";
  order

let random ~seed g =
  let n = Dag.n_vertices g in
  let rng = Graphio_la.Rng.create seed in
  let indeg = Array.init n (Dag.in_degree g) in
  (* ready pool as a growable array with O(1) random removal *)
  let ready = Array.make n 0 in
  let ready_count = ref 0 in
  let push v =
    ready.(!ready_count) <- v;
    incr ready_count
  in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then push v
  done;
  let order = Array.make n 0 in
  for t = 0 to n - 1 do
    if !ready_count = 0 then invalid_arg "Topo.random: graph has a cycle";
    let pick = Graphio_la.Rng.int rng !ready_count in
    let v = ready.(pick) in
    ready.(pick) <- ready.(!ready_count - 1);
    decr ready_count;
    order.(t) <- v;
    Dag.iter_succ g v (fun w ->
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then push w)
  done;
  order

let position_of order =
  let n = Array.length order in
  let pos = Array.make n (-1) in
  Array.iteri (fun t v -> pos.(v) <- t) order;
  pos
