(** Topological orders on computation graphs.

    An evaluation order (the permutation [X] of Section 3.1) is represented
    as an array [order] with [order.(t)] the vertex evaluated at time-step
    [t]; validity means every vertex appears after all its predecessors. *)

val kahn : Dag.t -> int array
(** Breadth-first (Kahn) topological order: repeatedly evaluates the oldest
    ready vertex.  Deterministic (FIFO over vertex ids). *)

val dfs : Dag.t -> int array
(** Depth-first topological order (reverse postorder of an iterative DFS
    from each source, in ascending source order).  Deterministic. *)

val natural : Dag.t -> int array
(** The creation order [0..n-1], *asserted* topological: raises
    [Invalid_argument] if the graph's builder emitted a vertex before one of
    its operands.  All generators in {!module:Graphio_workloads} satisfy
    this. *)

val random : seed:int -> Dag.t -> int array
(** A uniformly-ish random topological order: Kahn with a random ready
    pick.  Used by tests and the pebble simulator to probe schedule
    sensitivity. *)

val is_valid : Dag.t -> int array -> bool
(** Checks that the array is a permutation of [0..n-1] respecting all
    edges. *)

val position_of : int array -> int array
(** [position_of order] inverts the order: [(position_of order).(v)] is the
    time-step at which [v] is evaluated. *)
