type t = {
  n : int;
  m : int;
  succ_ptr : int array;
  succ_idx : int array;
  pred_ptr : int array;
  pred_idx : int array;
  labels : string option array;
}

(* Kahn count over a frozen graph; shared by Builder.build and the raw
   CSR constructors. *)
let verify_acyclic_exn ~who g =
  let n = g.n in
  let indeg = Array.init n (fun v -> g.pred_ptr.(v + 1) - g.pred_ptr.(v)) in
  let queue = Queue.create () in
  Array.iteri (fun v d -> if d = 0 then Queue.add v queue) indeg;
  let seen = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    incr seen;
    for k = g.succ_ptr.(v) to g.succ_ptr.(v + 1) - 1 do
      let w = g.succ_idx.(k) in
      indeg.(w) <- indeg.(w) - 1;
      if indeg.(w) = 0 then Queue.add w queue
    done
  done;
  if !seen <> n then
    invalid_arg (Printf.sprintf "Dag.%s: graph has a cycle" who)

module Builder = struct

  type t = {
    mutable nv : int;
    mutable edges_rev : (int * int) list;
    mutable ne : int;
    mutable labels_rev : string option list;
    edge_set : (int * int, unit) Hashtbl.t;
  }

  let create ?(capacity_hint = 16) () =
    {
      nv = 0;
      edges_rev = [];
      ne = 0;
      labels_rev = [];
      edge_set = Hashtbl.create (max capacity_hint 16);
    }

  let add_vertex ?label b =
    let id = b.nv in
    b.nv <- id + 1;
    b.labels_rev <- label :: b.labels_rev;
    id

  let add_edge b u v =
    if u < 0 || u >= b.nv || v < 0 || v >= b.nv then
      invalid_arg (Printf.sprintf "Dag.add_edge: vertex out of range (%d -> %d)" u v);
    if u = v then invalid_arg "Dag.add_edge: self-loop";
    if Hashtbl.mem b.edge_set (u, v) then
      invalid_arg (Printf.sprintf "Dag.add_edge: duplicate edge (%d -> %d)" u v);
    Hashtbl.add b.edge_set (u, v) ();
    b.edges_rev <- (u, v) :: b.edges_rev;
    b.ne <- b.ne + 1

  let n_vertices b = b.nv

  let build ?(verify_acyclic = true) b =
    let n = b.nv and m = b.ne in
    let succ_ptr = Array.make (n + 1) 0 and pred_ptr = Array.make (n + 1) 0 in
    List.iter
      (fun (u, v) ->
        succ_ptr.(u + 1) <- succ_ptr.(u + 1) + 1;
        pred_ptr.(v + 1) <- pred_ptr.(v + 1) + 1)
      b.edges_rev;
    for i = 0 to n - 1 do
      succ_ptr.(i + 1) <- succ_ptr.(i + 1) + succ_ptr.(i);
      pred_ptr.(i + 1) <- pred_ptr.(i + 1) + pred_ptr.(i)
    done;
    let succ_idx = Array.make m 0 and pred_idx = Array.make m 0 in
    let succ_fill = Array.copy succ_ptr and pred_fill = Array.copy pred_ptr in
    (* edges_rev is reversed insertion order; filling in that order is fine
       because we sort each adjacency bucket afterwards. *)
    List.iter
      (fun (u, v) ->
        succ_idx.(succ_fill.(u)) <- v;
        succ_fill.(u) <- succ_fill.(u) + 1;
        pred_idx.(pred_fill.(v)) <- u;
        pred_fill.(v) <- pred_fill.(v) + 1)
      b.edges_rev;
    let sort_buckets ptr idx =
      for i = 0 to n - 1 do
        let lo = ptr.(i) and hi = ptr.(i + 1) in
        if hi - lo > 1 then begin
          let seg = Array.sub idx lo (hi - lo) in
          Array.sort compare seg;
          Array.blit seg 0 idx lo (hi - lo)
        end
      done
    in
    sort_buckets succ_ptr succ_idx;
    sort_buckets pred_ptr pred_idx;
    let labels = Array.make n None in
    List.iteri (fun i l -> labels.(n - 1 - i) <- l) b.labels_rev;
    let g = { n; m; succ_ptr; succ_idx; pred_ptr; pred_idx; labels } in
    if verify_acyclic then verify_acyclic_exn ~who:"build" g;
    g
end

let n_vertices g = g.n

let n_edges g = g.m

let check_vertex name g v =
  if v < 0 || v >= g.n then
    invalid_arg (Printf.sprintf "Dag.%s: vertex %d out of range" name v)

let succ g v =
  check_vertex "succ" g v;
  Array.sub g.succ_idx g.succ_ptr.(v) (g.succ_ptr.(v + 1) - g.succ_ptr.(v))

let pred g v =
  check_vertex "pred" g v;
  Array.sub g.pred_idx g.pred_ptr.(v) (g.pred_ptr.(v + 1) - g.pred_ptr.(v))

let iter_succ g v f =
  check_vertex "iter_succ" g v;
  for k = g.succ_ptr.(v) to g.succ_ptr.(v + 1) - 1 do
    f g.succ_idx.(k)
  done

let iter_pred g v f =
  check_vertex "iter_pred" g v;
  for k = g.pred_ptr.(v) to g.pred_ptr.(v + 1) - 1 do
    f g.pred_idx.(k)
  done

let iter_edges g f =
  for u = 0 to g.n - 1 do
    for k = g.succ_ptr.(u) to g.succ_ptr.(u + 1) - 1 do
      f u g.succ_idx.(k)
    done
  done

let fold_edges g ~init ~f =
  let acc = ref init in
  iter_edges g (fun u v -> acc := f !acc u v);
  !acc

(* FNV-1a over (n, m, sorted edge sequence).  The adjacency arrays are a
   canonical representation (buckets sorted at build time), so structurally
   equal graphs — however they were constructed — hash identically.  Used
   as the spectrum-cache key in Solver.bound_batch. *)
let fingerprint g =
  let h = ref 0xcbf29ce484222325L in
  let mix v =
    h := Int64.mul (Int64.logxor !h v) 0x100000001b3L
  in
  mix (Int64.of_int g.n);
  mix (Int64.of_int g.m);
  iter_edges g (fun u v ->
      mix (Int64.of_int u);
      mix (Int64.of_int v));
  !h

let out_degree g v =
  check_vertex "out_degree" g v;
  g.succ_ptr.(v + 1) - g.succ_ptr.(v)

let in_degree g v =
  check_vertex "in_degree" g v;
  g.pred_ptr.(v + 1) - g.pred_ptr.(v)

let degree g v = out_degree g v + in_degree g v

let max_over g f =
  let best = ref 0 in
  for v = 0 to g.n - 1 do
    best := max !best (f g v)
  done;
  !best

let max_out_degree g = max_over g out_degree

let max_in_degree g = max_over g in_degree

let max_degree g = max_over g degree

let label g v =
  check_vertex "label" g v;
  g.labels.(v)

let sources g =
  Array.of_seq
    (Seq.filter (fun v -> in_degree g v = 0) (Seq.init g.n (fun i -> i)))

let sinks g =
  Array.of_seq
    (Seq.filter (fun v -> out_degree g v = 0) (Seq.init g.n (fun i -> i)))

let has_edge g u v =
  check_vertex "has_edge" g u;
  check_vertex "has_edge" g v;
  let lo = ref g.succ_ptr.(u) and hi = ref (g.succ_ptr.(u + 1) - 1) in
  let found = ref false in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let w = g.succ_idx.(mid) in
    if w = v then begin
      found := true;
      lo := !hi + 1
    end
    else if w < v then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let of_edges ?labels ~n edge_list =
  let b = Builder.create ~capacity_hint:(max n 16) () in
  for i = 0 to n - 1 do
    let label = Option.bind labels (fun ls -> if i < Array.length ls then Some ls.(i) else None) in
    ignore (Builder.add_vertex ?label b)
  done;
  List.iter (fun (u, v) -> Builder.add_edge b u v) edge_list;
  Builder.build b

let edges g = List.rev (fold_edges g ~init:[] ~f:(fun acc u v -> (u, v) :: acc))

let reverse g =
  {
    g with
    succ_ptr = g.pred_ptr;
    succ_idx = g.pred_idx;
    pred_ptr = g.succ_ptr;
    pred_idx = g.succ_idx;
  }

let induced_subgraph g vs =
  let n' = Array.length vs in
  let old_to_new = Hashtbl.create n' in
  Array.iteri
    (fun i v ->
      check_vertex "induced_subgraph" g v;
      if Hashtbl.mem old_to_new v then
        invalid_arg "Dag.induced_subgraph: duplicate vertex";
      Hashtbl.add old_to_new v i)
    vs;
  let b = Builder.create ~capacity_hint:n' () in
  Array.iter (fun v -> ignore (Builder.add_vertex ?label:g.labels.(v) b)) vs;
  Array.iteri
    (fun i v ->
      iter_succ g v (fun w ->
          match Hashtbl.find_opt old_to_new w with
          | Some j -> Builder.add_edge b i j
          | None -> ()))
    vs;
  (Builder.build ~verify_acyclic:false b, Array.copy vs)

(* Raw constructor from an already-canonical CSR: every adjacency bucket
   strictly ascending.  Validates everything Builder validates (range,
   self-loops, duplicates — strictness subsumes them — and optionally
   acyclicity) in O(n + m) without the Builder's edge hashtable, so
   Graphio_store can freeze million-vertex graphs cheaply. *)
let of_sorted_csr ?labels ?(verify_acyclic = true) ~succ_ptr ~succ_idx () =
  let n = Array.length succ_ptr - 1 in
  if n < 0 then invalid_arg "Dag.of_sorted_csr: succ_ptr must be non-empty";
  let m = Array.length succ_idx in
  if succ_ptr.(0) <> 0 || succ_ptr.(n) <> m then
    invalid_arg "Dag.of_sorted_csr: succ_ptr must run from 0 to m";
  for v = 0 to n - 1 do
    let lo = succ_ptr.(v) and hi = succ_ptr.(v + 1) in
    if lo > hi then invalid_arg "Dag.of_sorted_csr: succ_ptr not monotone";
    for k = lo to hi - 1 do
      let w = succ_idx.(k) in
      if w < 0 || w >= n then
        invalid_arg
          (Printf.sprintf "Dag.of_sorted_csr: vertex %d out of range" w);
      if w = v then invalid_arg "Dag.of_sorted_csr: self-loop";
      if k > lo && succ_idx.(k - 1) >= w then
        invalid_arg "Dag.of_sorted_csr: bucket not strictly ascending"
    done
  done;
  let pred_ptr = Array.make (n + 1) 0 in
  Array.iter (fun w -> pred_ptr.(w + 1) <- pred_ptr.(w + 1) + 1) succ_idx;
  for i = 0 to n - 1 do
    pred_ptr.(i + 1) <- pred_ptr.(i + 1) + pred_ptr.(i)
  done;
  let pred_idx = Array.make m 0 in
  let fill = Array.copy pred_ptr in
  (* sources are scanned ascending, so pred buckets come out sorted *)
  for u = 0 to n - 1 do
    for k = succ_ptr.(u) to succ_ptr.(u + 1) - 1 do
      let w = succ_idx.(k) in
      pred_idx.(fill.(w)) <- u;
      fill.(w) <- fill.(w) + 1
    done
  done;
  let labels =
    match labels with
    | Some ls ->
        if Array.length ls <> n then
          invalid_arg "Dag.of_sorted_csr: labels length mismatch";
        Array.copy ls
    | None -> Array.make n None
  in
  let g =
    {
      n;
      m;
      succ_ptr = Array.copy succ_ptr;
      succ_idx = Array.copy succ_idx;
      pred_ptr;
      pred_idx;
      labels;
    }
  in
  if verify_acyclic then verify_acyclic_exn ~who:"of_sorted_csr" g;
  g

let disjoint_union a b =
  let n = a.n + b.n and m = a.m + b.m in
  let cat_ptr pa pb =
    Array.init (n + 1) (fun i ->
        if i <= a.n then pa.(i) else a.m + pb.(i - a.n))
  in
  let cat_idx ia ib =
    Array.append ia (Array.map (fun v -> v + a.n) ib)
  in
  {
    n;
    m;
    succ_ptr = cat_ptr a.succ_ptr b.succ_ptr;
    succ_idx = cat_idx a.succ_idx b.succ_idx;
    pred_ptr = cat_ptr a.pred_ptr b.pred_ptr;
    pred_idx = cat_idx a.pred_idx b.pred_idx;
    labels = Array.append a.labels b.labels;
  }

let replicate g ~copies =
  if copies < 1 then invalid_arg "Dag.replicate: copies must be >= 1";
  if copies = 1 || g.n = 0 then g
  else begin
    let n = g.n * copies and m = g.m * copies in
    let rep_ptr ptr eoff_of =
      let out = Array.make (n + 1) 0 in
      for c = 0 to copies - 1 do
        let voff = c * g.n and eoff = eoff_of c in
        for r = 0 to g.n - 1 do
          out.(voff + r) <- eoff + ptr.(r)
        done
      done;
      out.(n) <- m;
      out
    in
    let rep_idx idx =
      let out = Array.make m 0 in
      for c = 0 to copies - 1 do
        let voff = c * g.n and eoff = c * g.m in
        for k = 0 to g.m - 1 do
          out.(eoff + k) <- voff + idx.(k)
        done
      done;
      out
    in
    {
      n;
      m;
      succ_ptr = rep_ptr g.succ_ptr (fun c -> c * g.m);
      succ_idx = rep_idx g.succ_idx;
      pred_ptr = rep_ptr g.pred_ptr (fun c -> c * g.m);
      pred_idx = rep_idx g.pred_idx;
      labels = Array.init n (fun v -> g.labels.(v mod g.n));
    }
  end

let pp fmt g =
  Format.fprintf fmt "dag(n=%d, m=%d)" g.n g.m
