(** Graph Laplacians of computation graphs (Section 4.2 of the paper).

    Two Laplacians are used by the spectral bounds:

    - the {e out-degree normalized} Laplacian [L̃] of Theorem 4: each
      directed edge [(u, v)] of [G] contributes an {e undirected} edge of
      weight [1/dout(u)] to the weighted graph [G̃], and
      [L̃ = D̃ − Ã];
    - the {e standard} Laplacian [L] of Theorem 5: the unweighted Laplacian
      of the undirected support of [G].

    Both are symmetric positive semi-definite; for a one-hot vector [x] of a
    vertex subset [S],
    [xᵀ L̃ x = Σ_{(u,v) ∈ ∂S} 1/dout(u)]  and  [xᵀ L x = |∂S|]
    (Equation 3) — properties the test suite checks directly. *)

val normalized : Dag.t -> Graphio_la.Csr.t
(** The out-degree normalized Laplacian [L̃] as a symmetric CSR matrix. *)

val standard : Dag.t -> Graphio_la.Csr.t
(** The plain undirected Laplacian [L]. *)

val adjacency_shifted : Dag.t -> Graphio_la.Csr.t
(** [Δ·I − A] for the undirected support's adjacency matrix [A] and
    maximum undirected degree [Δ] — PSD by Gershgorin.  Its [i]-th
    smallest eigenvalue is [Δ − μ_(n−i+1)(A)], from which the solver
    derives the Weyl surrogate [max(0, δ − Δ + ν_i) ≤ λ_i(L)]. *)

val signless_shifted : Dag.t -> Graphio_la.Csr.t
(** [2Δ·I − Q] for the signless Laplacian [Q = D + A] — PSD by
    Gershgorin; yields the surrogate [max(0, 2δ − 2Δ + ν_i) ≤ λ_i(L)]
    via [L = 2D − Q ⪰ 2δI − Q]. *)

val normalized_dense : Dag.t -> Graphio_la.Mat.t

val standard_dense : Dag.t -> Graphio_la.Mat.t

val boundary_weight : Dag.t -> bool array -> float
(** [boundary_weight g member] is [Σ_{(u,v) ∈ ∂S} 1/dout(u)] for the subset
    [S = {v | member.(v)}], computed combinatorially (the quantity
    [xᵀ L̃ x] equals by Equation 3). *)

val boundary_size : Dag.t -> bool array -> int
(** [|∂S|]: number of directed edges with exactly one endpoint in [S]. *)
