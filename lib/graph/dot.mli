(** Graphviz (DOT) export of computation graphs.

    Used to regenerate the paper's illustration figures (Figures 1–6) and
    for ad-hoc inspection via the CLI.  Vertices are labelled with their
    builder labels when present, ids otherwise; an optional partition
    assigns fill colors per segment (Figure 2 style) and an optional
    evaluation order annotates time-steps. *)

val to_string :
  ?name:string ->
  ?order:int array ->
  ?partition:int array ->
  Dag.t ->
  string
(** [to_string g] renders the graph.  [order] maps time-step -> vertex (a
    topological order as produced by {!Topo}); [partition] maps vertex ->
    segment index (colored with a fixed palette, cycling). *)

val to_file :
  ?name:string ->
  ?order:int array ->
  ?partition:int array ->
  string ->
  Dag.t ->
  unit
(** Same, written to the given path. *)
