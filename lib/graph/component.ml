let components g =
  let n = Dag.n_vertices g in
  let comp = Array.make n (-1) in
  let next = ref 0 in
  let stack = Stack.create () in
  for v = 0 to n - 1 do
    if comp.(v) = -1 then begin
      let id = !next in
      incr next;
      Stack.push v stack;
      comp.(v) <- id;
      while not (Stack.is_empty stack) do
        let u = Stack.pop stack in
        let visit w =
          if comp.(w) = -1 then begin
            comp.(w) <- id;
            Stack.push w stack
          end
        in
        Dag.iter_succ g u visit;
        Dag.iter_pred g u visit
      done
    end
  done;
  comp

let count g =
  let comp = components g in
  Array.fold_left max (-1) comp + 1

let is_connected g = count g <= 1

let split g =
  let comp = components g in
  let count = Array.fold_left max (-1) comp + 1 in
  let sizes = Array.make count 0 in
  Array.iter (fun c -> sizes.(c) <- sizes.(c) + 1) comp;
  let members = Array.map (fun s -> Array.make s 0) sizes in
  let fill = Array.make count 0 in
  (* vertices scanned ascending, so each member list is ascending and the
     per-component vertex order (hence the extracted subgraph's structure)
     is canonical *)
  Array.iteri
    (fun v c ->
      members.(c).(fill.(c)) <- v;
      fill.(c) <- fill.(c) + 1)
    comp;
  Array.map (fun vs -> Dag.induced_subgraph g vs) members
