(** Connected components of the undirected support of a graph.

    Used by the Erdős–Rényi analysis (§5.3 assumes the regime where the
    random graph is almost surely connected) and by test invariants (the
    multiplicity of the Laplacian eigenvalue 0 equals the number of
    components). *)

val components : Dag.t -> int array
(** [components g] labels every vertex with a component id in
    [0 .. count-1]; ids are assigned in order of the smallest vertex of
    each component. *)

val count : Dag.t -> int

val is_connected : Dag.t -> bool
(** True iff the undirected support is connected ([n = 0] counts as
    connected). *)

val split : Dag.t -> (Dag.t * int array) array
(** One entry per component, in {!components} order (smallest original
    vertex first): the extracted subgraph plus the mapping from its vertex
    ids back to the original ids (ascending — relabeling is monotone, so
    structurally equal components extract to structurally equal, equally
    fingerprinted subgraphs).  Empty array for the empty graph.  The
    decomposition {!Graphio_core.Solver.bound} dispatches per-component
    jobs over. *)
