type t = {
  n_vertices : int;
  n_edges : int;
  n_sources : int;
  n_sinks : int;
  max_in_degree : int;
  max_out_degree : int;
  max_degree : int;
  depth : int;
  max_level_width : int;
  components : int;
}

let levels g =
  let n = Dag.n_vertices g in
  let level = Array.make n 0 in
  (* longest-path depth: process in topological order *)
  Array.iter
    (fun v ->
      Dag.iter_pred g v (fun u -> level.(v) <- max level.(v) (level.(u) + 1)))
    (Topo.kahn g);
  level

let compute g =
  let n = Dag.n_vertices g in
  let lv = levels g in
  let depth = if n = 0 then 0 else Array.fold_left max 0 lv + 1 in
  let width =
    if n = 0 then 0
    else begin
      let counts = Array.make depth 0 in
      Array.iter (fun l -> counts.(l) <- counts.(l) + 1) lv;
      Array.fold_left max 0 counts
    end
  in
  {
    n_vertices = n;
    n_edges = Dag.n_edges g;
    n_sources = Array.length (Dag.sources g);
    n_sinks = Array.length (Dag.sinks g);
    max_in_degree = Dag.max_in_degree g;
    max_out_degree = Dag.max_out_degree g;
    max_degree = Dag.max_degree g;
    depth;
    max_level_width = width;
    components = Component.count g;
  }

let pp fmt t =
  Format.fprintf fmt
    "@[<v>vertices: %d@,edges: %d@,sources: %d@,sinks: %d@,max in/out/total degree: %d/%d/%d@,depth: %d@,max level width: %d@,components: %d@]"
    t.n_vertices t.n_edges t.n_sources t.n_sinks t.max_in_degree t.max_out_degree
    t.max_degree t.depth t.max_level_width t.components
