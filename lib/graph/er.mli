(** Erdős–Rényi random graphs (Section 5.3).

    The paper analyses the spectral bound on [G(n, p)].  As a computation
    graph we use the canonical acyclic orientation: vertices [0..n-1],
    each unordered pair [{i, j}] ([i < j]) keeps an edge [i -> j] with
    probability [p].  The undirected support is then exactly the classical
    [G(n, p)], so the standard Laplacian [L] (Theorem 5) has the spectra
    that §5.3's probabilistic statements are about. *)

val gnp : n:int -> p:float -> seed:int -> Dag.t
(** Acyclically-oriented [G(n, p)].  Raises [Invalid_argument] unless
    [0 <= p <= 1] and [n >= 0]. *)

val gnp_connected : n:int -> p:float -> seed:int -> max_attempts:int -> Dag.t
(** Resamples (advancing the seed) until the undirected support is
    connected; raises [Failure] after [max_attempts] failures.  §5.3 only
    concerns the almost-surely-connected regime [p >= log n / n]. *)

val connectivity_regime_p : n:int -> p0:float -> float
(** The paper's sparse regime [p = p0 log n / (n - 1)] (requires [n >= 2]). *)
