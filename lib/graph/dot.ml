let palette =
  [| "#a6cee3"; "#b2df8a"; "#fdbf6f"; "#cab2d6"; "#fb9a99"; "#ffff99"; "#1f78b4"; "#33a02c" |]

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_string ?(name = "G") ?order ?partition g =
  let n = Dag.n_vertices g in
  (match order with
  | Some o when Array.length o <> n ->
      invalid_arg "Dot.to_string: order length mismatch"
  | _ -> ());
  (match partition with
  | Some p when Array.length p <> n ->
      invalid_arg "Dot.to_string: partition length mismatch"
  | _ -> ());
  let pos = Option.map Topo.position_of order in
  let buf = Buffer.create (64 * (n + 1)) in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n" (escape name));
  Buffer.add_string buf "  rankdir=TB;\n  node [shape=circle, style=filled, fillcolor=white];\n";
  for v = 0 to n - 1 do
    let base_label =
      match Dag.label g v with Some l -> l | None -> string_of_int v
    in
    let label =
      match pos with
      | Some pos -> Printf.sprintf "%s\\nt=%d" (escape base_label) pos.(v)
      | None -> escape base_label
    in
    let color =
      match partition with
      | Some p ->
          let c = palette.(((p.(v) mod Array.length palette) + Array.length palette) mod Array.length palette) in
          Printf.sprintf ", fillcolor=\"%s\"" c
      | None -> ""
    in
    Buffer.add_string buf (Printf.sprintf "  v%d [label=\"%s\"%s];\n" v label color)
  done;
  Dag.iter_edges g (fun u v ->
      Buffer.add_string buf (Printf.sprintf "  v%d -> v%d;\n" u v));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let to_file ?name ?order ?partition path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?name ?order ?partition g))
