open Graphio_la

let c_builds = Graphio_obs.Metrics.counter "graph.laplacian.builds"
let c_nnz = Graphio_obs.Metrics.counter "graph.laplacian.nnz"

let build_laplacian g weight_of_edge =
  Graphio_obs.Span.with_ "laplacian.assemble" (fun () ->
      let n = Dag.n_vertices g in
      let triplets = ref [] in
      Dag.iter_edges g (fun u v ->
          let w = weight_of_edge u v in
          triplets :=
            (u, u, w) :: (v, v, w) :: (u, v, -.w) :: (v, u, -.w) :: !triplets);
      let m = Csr.of_triplets ~rows:n ~cols:n !triplets in
      Graphio_obs.Metrics.incr c_builds;
      Graphio_obs.Metrics.add c_nnz (Csr.nnz m);
      m)

let normalized g =
  build_laplacian g (fun u _ -> 1.0 /. float_of_int (Dag.out_degree g u))

let standard g = build_laplacian g (fun _ _ -> 1.0)

let normalized_dense g = Csr.to_dense (normalized g)

let standard_dense g = Csr.to_dense (standard g)

let check_membership name g member =
  if Array.length member <> Dag.n_vertices g then
    invalid_arg ("Laplacian." ^ name ^ ": membership length mismatch")

let boundary_weight g member =
  check_membership "boundary_weight" g member;
  Dag.fold_edges g ~init:0.0 ~f:(fun acc u v ->
      if member.(u) <> member.(v) then
        acc +. (1.0 /. float_of_int (Dag.out_degree g u))
      else acc)

let boundary_size g member =
  check_membership "boundary_size" g member;
  Dag.fold_edges g ~init:0 ~f:(fun acc u v ->
      if member.(u) <> member.(v) then acc + 1 else acc)
