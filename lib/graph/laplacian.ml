open Graphio_la

let c_builds = Graphio_obs.Metrics.counter "graph.laplacian.builds"
let c_nnz = Graphio_obs.Metrics.counter "graph.laplacian.nnz"

let build_laplacian g weight_of_edge =
  Graphio_obs.Span.with_ "laplacian.assemble" (fun () ->
      let n = Dag.n_vertices g in
      let triplets = ref [] in
      Dag.iter_edges g (fun u v ->
          let w = weight_of_edge u v in
          triplets :=
            (u, u, w) :: (v, v, w) :: (u, v, -.w) :: (v, u, -.w) :: !triplets);
      let m = Csr.of_triplets ~rows:n ~cols:n !triplets in
      Graphio_obs.Metrics.incr c_builds;
      Graphio_obs.Metrics.add c_nnz (Csr.nnz m);
      m)

let normalized g =
  build_laplacian g (fun u _ -> 1.0 /. float_of_int (Dag.out_degree g u))

let standard g = build_laplacian g (fun _ _ -> 1.0)

(* Shifted spectral-variant matrices.  Both are PSD by Gershgorin (every
   row's diagonal dominates the sum of absolute off-diagonals when the
   shift is the max undirected degree), so the eigensolver's smallest-end
   machinery applies unchanged; the solver turns their spectra into
   Weyl lower bounds on the standard Laplacian spectrum. *)

let adjacency_shifted g =
  Graphio_obs.Span.with_ "laplacian.assemble" (fun () ->
      let n = Dag.n_vertices g in
      let shift = float_of_int (Dag.max_degree g) in
      let triplets = ref [] in
      for v = 0 to n - 1 do
        triplets := (v, v, shift) :: !triplets
      done;
      Dag.iter_edges g (fun u v ->
          triplets := (u, v, -1.0) :: (v, u, -1.0) :: !triplets);
      let m = Csr.of_triplets ~rows:n ~cols:n !triplets in
      Graphio_obs.Metrics.incr c_builds;
      Graphio_obs.Metrics.add c_nnz (Csr.nnz m);
      m)

let signless_shifted g =
  Graphio_obs.Span.with_ "laplacian.assemble" (fun () ->
      let n = Dag.n_vertices g in
      let shift = 2.0 *. float_of_int (Dag.max_degree g) in
      let triplets = ref [] in
      for v = 0 to n - 1 do
        triplets := (v, v, shift) :: !triplets
      done;
      Dag.iter_edges g (fun u v ->
          triplets :=
            (u, u, -1.0) :: (v, v, -1.0) :: (u, v, -1.0) :: (v, u, -1.0)
            :: !triplets);
      let m = Csr.of_triplets ~rows:n ~cols:n !triplets in
      Graphio_obs.Metrics.incr c_builds;
      Graphio_obs.Metrics.add c_nnz (Csr.nnz m);
      m)

let normalized_dense g = Csr.to_dense (normalized g)

let standard_dense g = Csr.to_dense (standard g)

let check_membership name g member =
  if Array.length member <> Dag.n_vertices g then
    invalid_arg ("Laplacian." ^ name ^ ": membership length mismatch")

let boundary_weight g member =
  check_membership "boundary_weight" g member;
  Dag.fold_edges g ~init:0.0 ~f:(fun acc u v ->
      if member.(u) <> member.(v) then
        acc +. (1.0 /. float_of_int (Dag.out_degree g u))
      else acc)

let boundary_size g member =
  check_membership "boundary_size" g member;
  Dag.fold_edges g ~init:0 ~f:(fun acc u v ->
      if member.(u) <> member.(v) then acc + 1 else acc)
