open Graphio_la

let gnp ~n ~p ~seed =
  if n < 0 then invalid_arg "Er.gnp: negative n";
  if not (p >= 0.0 && p <= 1.0) then invalid_arg "Er.gnp: p must be in [0,1]";
  let rng = Rng.create seed in
  let b = Dag.Builder.create ~capacity_hint:n () in
  for _ = 1 to n do
    ignore (Dag.Builder.add_vertex b)
  done;
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Rng.float rng < p then Dag.Builder.add_edge b i j
    done
  done;
  Dag.Builder.build ~verify_acyclic:false b

let gnp_connected ~n ~p ~seed ~max_attempts =
  let rec attempt k =
    if k >= max_attempts then
      failwith
        (Printf.sprintf
           "Er.gnp_connected: no connected sample in %d attempts (n=%d, p=%g)"
           max_attempts n p)
    else
      let g = gnp ~n ~p ~seed:(seed + (k * 7919)) in
      if Component.is_connected g then g else attempt (k + 1)
  in
  attempt 0

let connectivity_regime_p ~n ~p0 =
  if n < 2 then invalid_arg "Er.connectivity_regime_p: n must be >= 2";
  p0 *. log (float_of_int n) /. float_of_int (n - 1)
