(** Plain-text serialization of computation graphs.

    Format (line oriented, [#]-comments allowed):
    {v
    graphio 1
    n <vertices> m <edges>
    [l <vertex> <label>]*
    [e <src> <dst>]*
    v}
    Vertex labels are optional and URL-percent-escaped so they may contain
    spaces.  The loader validates counts, ranges, acyclicity and duplicate
    edges (via {!Dag.Builder}). *)

val percent_escape : string -> string
(** Escape spaces, [%], and control bytes as [%XX] — how labels are
    encoded on [l] lines.  Shared with the streaming converter so both
    parsers agree byte for byte. *)

val percent_unescape : string -> string

val to_string : Dag.t -> string

val of_string : string -> Dag.t
(** Raises [Failure] with a line-numbered message on malformed input —
    including out-of-range edge endpoints, duplicate edges (the message
    names both offending lines) and edges the DAG builder rejects
    (self-loops, cycles). *)

val to_file : string -> Dag.t -> unit

val of_file : string -> Dag.t
(** {!of_string} on the file contents; [Failure] messages are prefixed
    with the file path. *)
