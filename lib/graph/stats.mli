(** Structural statistics of computation graphs.

    Cheap summaries used by the CLI's [analyze] report and by experiment
    write-ups: sizes, degree profile, depth (critical path), level widths
    (a proxy for inherent parallelism and minimum live-set pressure). *)

type t = {
  n_vertices : int;
  n_edges : int;
  n_sources : int;
  n_sinks : int;
  max_in_degree : int;
  max_out_degree : int;
  max_degree : int;
  depth : int;
      (** number of vertices on a longest directed path ([0] for the empty
          graph, [1] for edgeless graphs) *)
  max_level_width : int;
      (** max number of vertices at equal longest-path depth — every
          schedule must sweep through each level, so wide levels hint at
          memory pressure *)
  components : int;
}

val compute : Dag.t -> t

val levels : Dag.t -> int array
(** [levels g] assigns each vertex its longest-path depth from the
    sources ([0]-based). *)

val pp : Format.formatter -> t -> unit
