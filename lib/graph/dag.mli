(** Directed computation graphs.

    A computation graph has one vertex per operation (inputs and outputs
    included); an edge [u -> v] means [v] consumes the value produced by
    [u] (Section 3 of the paper).  Graphs are built through a mutable
    {!Builder} and frozen into an immutable adjacency-array representation
    ([t]) that every analysis in this project consumes.

    Vertices are dense integers [0 .. n-1] in creation order; that creation
    order is, for every generator in {!module:Graphio_workloads}, a natural
    topological order, which the pebble-game simulator exploits. *)

type t

module Builder : sig
  type dag := t
  type t

  val create : ?capacity_hint:int -> unit -> t

  val add_vertex : ?label:string -> t -> int
  (** Returns the new vertex id ([0]-based, consecutive). *)

  val add_edge : t -> int -> int -> unit
  (** [add_edge b u v] records the dependency [u -> v].  Self-loops are
      rejected; duplicate edges are rejected (a vertex is consumed at most
      once per operand slot in our model — callers wanting multiplicity
      must model distinct operand vertices).  Raises [Invalid_argument] on
      unknown vertex ids. *)

  val n_vertices : t -> int

  val build : ?verify_acyclic:bool -> t -> dag
  (** Freeze the builder.  With [~verify_acyclic:true] (the default) a
      Kahn pass checks acyclicity and raises [Invalid_argument "Dag.build:
      graph has a cycle"] on failure. *)
end

val n_vertices : t -> int

val n_edges : t -> int

val succ : t -> int -> int array
(** Out-neighbours (fresh array). *)

val pred : t -> int -> int array
(** In-neighbours (fresh array). *)

val iter_succ : t -> int -> (int -> unit) -> unit

val iter_pred : t -> int -> (int -> unit) -> unit

val iter_edges : t -> (int -> int -> unit) -> unit
(** Iterate [(u, v)] over all directed edges. *)

val fold_edges : t -> init:'a -> f:('a -> int -> int -> 'a) -> 'a

val out_degree : t -> int -> int

val in_degree : t -> int -> int

val degree : t -> int -> int
(** Total (undirected) degree. *)

val max_out_degree : t -> int

val max_in_degree : t -> int

val max_degree : t -> int

val label : t -> int -> string option

val sources : t -> int array
(** Vertices with no predecessors (the computation's inputs), ascending. *)

val sinks : t -> int array
(** Vertices with no successors (the outputs), ascending. *)

val has_edge : t -> int -> int -> bool

val of_edges : ?labels:string array -> n:int -> (int * int) list -> t
(** Convenience constructor from an explicit edge list over vertices
    [0..n-1]. *)

val edges : t -> (int * int) list
(** All edges, ordered by source then target. *)

val fingerprint : t -> int64
(** FNV-1a hash of [(n, m, edges)] over the canonical (sorted) adjacency
    representation: structurally equal graphs hash identically regardless
    of construction order.  Collision-resistant enough to key caches
    (e.g. {!Graphio_core.Solver.bound_batch}'s spectrum cache), not
    cryptographic. *)

val reverse : t -> t
(** The graph with every edge flipped (labels preserved). *)

val induced_subgraph : t -> int array -> t * int array
(** [induced_subgraph g vs] is the subgraph on the (distinct) vertices
    [vs], together with the mapping from new ids to the original ids.
    Edges internal to [vs] are kept. *)

val of_sorted_csr :
  ?labels:string option array ->
  ?verify_acyclic:bool ->
  succ_ptr:int array ->
  succ_idx:int array ->
  unit ->
  t
(** Freeze a graph directly from canonical CSR adjacency: [succ_ptr] has
    [n + 1] monotone entries running from [0] to [m], and each bucket
    [succ_idx.(succ_ptr.(v) .. succ_ptr.(v+1) - 1)] is strictly ascending
    (strictness rules out duplicate edges).  Validates range, self-loops
    and bucket order — and acyclicity unless [~verify_acyclic:false] — in
    [O(n + m)] with no hashing, so it scales to the out-of-core loader's
    million-vertex graphs.  The arrays are copied.  Raises
    [Invalid_argument] on any violation. *)

val disjoint_union : t -> t -> t
(** [disjoint_union a b] — both graphs side by side, [b]'s vertices
    shifted up by [n_vertices a].  Labels are preserved.  [O(n + m)]
    directly on the adjacency arrays. *)

val replicate : t -> copies:int -> t
(** [replicate g ~copies] — [copies] disjoint copies of [g] (copy [c]
    occupies vertices [c*n .. (c+1)*n - 1]).  Raises [Invalid_argument]
    when [copies < 1]. *)

val pp : Format.formatter -> t -> unit
