external now_ns : unit -> int = "graphio_obs_clock_ns" [@@noalloc]

let now_s () = float_of_int (now_ns ()) *. 1e-9

let elapsed_s t0 = float_of_int (now_ns () - t0) *. 1e-9

let time f =
  let t0 = now_ns () in
  let r = f () in
  (r, elapsed_s t0)
