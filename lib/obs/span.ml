type record = {
  name : string;
  start_ns : int;
  dur_ns : int;
  depth : int;
  rid : string option;
}

let enabled_flag = ref false
let epoch = ref 0
let completed : record list ref = ref []
let completed_count = ref 0

(* Nesting depth is per-domain (each domain has its own span stack); the
   completed-record list is shared, so appends take [record_mutex].  The
   disabled path touches neither. *)
let depth_key = Domain.DLS.new_key (fun () -> ref 0)
let record_mutex = Mutex.create ()

let set_enabled b =
  if b && not !enabled_flag && !epoch = 0 then epoch := Clock.now_ns ();
  enabled_flag := b

let enabled () = !enabled_flag

let clear () =
  Mutex.lock record_mutex;
  completed := [];
  completed_count := 0;
  Domain.DLS.get depth_key := 0;
  epoch := Clock.now_ns ();
  Mutex.unlock record_mutex

let with_ name f =
  if not !enabled_flag then f ()
  else begin
    let current_depth = Domain.DLS.get depth_key in
    let d = !current_depth in
    current_depth := d + 1;
    let rid = Ctx.rid () in
    let t0 = Clock.now_ns () in
    Fun.protect
      ~finally:(fun () ->
        let t1 = Clock.now_ns () in
        current_depth := d;
        Mutex.lock record_mutex;
        completed :=
          { name; start_ns = t0 - !epoch; dur_ns = t1 - t0; depth = d; rid }
          :: !completed;
        incr completed_count;
        Mutex.unlock record_mutex)
      f
  end

let records () = List.rev !completed

let record_count () = !completed_count

let to_trace_json () =
  let events =
    records ()
    |> List.map (fun r ->
           Jsonx.Obj
             [
               ("name", Jsonx.String r.name);
               ("cat", Jsonx.String "graphio");
               ("ph", Jsonx.String "X");
               ("ts", Jsonx.Float (float_of_int r.start_ns /. 1e3));
               ("dur", Jsonx.Float (float_of_int r.dur_ns /. 1e3));
               ("pid", Jsonx.Int 1);
               ("tid", Jsonx.Int 1);
               ( "args",
                 Jsonx.Obj
                   (("depth", Jsonx.Int r.depth)
                   ::
                   (match r.rid with
                   | Some rid -> [ ("rid", Jsonx.String rid) ]
                   | None -> [])) );
             ])
  in
  Jsonx.Obj
    [ ("traceEvents", Jsonx.List events); ("displayTimeUnit", Jsonx.String "ms") ]

let write_chrome_trace path = Jsonx.to_file path (to_trace_json ())
