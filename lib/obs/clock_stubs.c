/* Monotonic clock for graphio_obs.

   Returns nanoseconds since an arbitrary epoch as a tagged OCaml int
   (63-bit on every supported platform: wraps after ~146 years), so the
   call allocates nothing — safe on hot paths and inside [@@noalloc]
   externals. */

#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value graphio_obs_clock_ns(value unit)
{
  struct timespec ts;
#ifdef CLOCK_MONOTONIC
  clock_gettime(CLOCK_MONOTONIC, &ts);
#else
  clock_gettime(CLOCK_REALTIME, &ts);
#endif
  (void)unit;
  return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
}
