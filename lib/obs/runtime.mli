(** Runtime (GC) gauges sampled from [Gc.quick_stat].

    {!sample} refreshes the [runtime.gc.*] gauges — heap words, top heap
    words, minor/major collection counts, compactions — in the
    {!Metrics} registry.  Called at metrics exposition time (the server's
    [{"op":"metrics"}]) and at bench section boundaries; cheap enough to
    call anywhere ([Gc.quick_stat] does not walk the heap). *)

val sample : unit -> unit
