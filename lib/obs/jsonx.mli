(** Minimal JSON values: just enough for metrics snapshots, Chrome
    trace-event export, and the bench perf trajectory — no external
    dependency.

    The printer emits canonical compact JSON; the parser accepts any
    RFC 8259 document (it is used by the test suite to round-trip what the
    printer emits, and by consumers of [bench --json] output). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering.  Non-finite floats (which JSON cannot represent)
    render as [null]. *)

val of_string : string -> t
(** Parse a complete JSON document.  Numbers without [.], [e] or [E]
    become [Int]; everything else [Float].  Raises [Failure] with a
    position-annotated message on malformed input. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] on absent field or non-object. *)

val to_file : string -> t -> unit
(** Write [to_string] plus a trailing newline. *)
