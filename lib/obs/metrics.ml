type counter = {
  c_name : string;
  mutable c_count : int;
}

type gauge = {
  g_name : string;
  mutable g_value : float;
}

type histogram = {
  h_name : string;
  h_buckets : float array;  (* ascending upper bounds *)
  h_counts : int array;  (* length = buckets + 1; last is overflow *)
  mutable h_sum : float;
  mutable h_count : int;
}

type metric = C of counter | G of gauge | H of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

(* help strings are kept out of the hot structs; they only matter for
   rendering *)
let helps : (string, string) Hashtbl.t = Hashtbl.create 64

let register_help name help =
  match help with
  | Some h when not (Hashtbl.mem helps name) -> Hashtbl.add helps name h
  | _ -> ()

let kind_clash name =
  invalid_arg
    (Printf.sprintf "Metrics: %S is already registered as a different metric" name)

let counter ?help name =
  register_help name help;
  match Hashtbl.find_opt registry name with
  | Some (C c) -> c
  | Some _ -> kind_clash name
  | None ->
      let c = { c_name = name; c_count = 0 } in
      Hashtbl.add registry name (C c);
      c

let gauge ?help name =
  register_help name help;
  match Hashtbl.find_opt registry name with
  | Some (G g) -> g
  | Some _ -> kind_clash name
  | None ->
      let g = { g_name = name; g_value = 0.0 } in
      Hashtbl.add registry name (G g);
      g

let default_buckets =
  [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 1.0; 10.0; 100.0 |]

let histogram ?help ?(buckets = default_buckets) name =
  register_help name help;
  if Array.length buckets = 0 then invalid_arg "Metrics.histogram: empty buckets";
  for i = 1 to Array.length buckets - 1 do
    if buckets.(i) <= buckets.(i - 1) then
      invalid_arg "Metrics.histogram: buckets must be strictly ascending"
  done;
  match Hashtbl.find_opt registry name with
  | Some (H h) ->
      if h.h_buckets <> buckets && buckets != default_buckets then
        invalid_arg
          (Printf.sprintf "Metrics: histogram %S already registered with other buckets"
             name);
      h
  | Some _ -> kind_clash name
  | None ->
      let h =
        {
          h_name = name;
          h_buckets = Array.copy buckets;
          h_counts = Array.make (Array.length buckets + 1) 0;
          h_sum = 0.0;
          h_count = 0;
        }
      in
      Hashtbl.add registry name (H h);
      h

let incr c = c.c_count <- c.c_count + 1

let add c n =
  if n < 0 then invalid_arg (Printf.sprintf "Metrics.add: negative delta on %S" c.c_name);
  c.c_count <- c.c_count + n

let counter_value c = c.c_count

let set g v = g.g_value <- v

let gauge_value g = g.g_value

let observe h v =
  let nb = Array.length h.h_buckets in
  let i = ref 0 in
  while !i < nb && v > h.h_buckets.(!i) do
    i := !i + 1
  done;
  h.h_counts.(!i) <- h.h_counts.(!i) + 1;
  h.h_sum <- h.h_sum +. v;
  h.h_count <- h.h_count + 1

let time h f =
  let t0 = Clock.now_ns () in
  let r = f () in
  observe h (Clock.elapsed_s t0);
  r

(* --------------------------- snapshots ---------------------------- *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of {
      buckets : float array;
      counts : int array;
      sum : float;
      count : int;
    }

type snapshot = (string * value) list

let snapshot () =
  Hashtbl.fold
    (fun name m acc ->
      let v =
        match m with
        | C c -> Counter c.c_count
        | G g -> Gauge g.g_value
        | H h ->
            Histogram
              {
                buckets = Array.copy h.h_buckets;
                counts = Array.copy h.h_counts;
                sum = h.h_sum;
                count = h.h_count;
              }
      in
      (name, v) :: acc)
    registry []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset () =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | C c -> c.c_count <- 0
      | G g -> g.g_value <- 0.0
      | H h ->
          Array.fill h.h_counts 0 (Array.length h.h_counts) 0;
          h.h_sum <- 0.0;
          h.h_count <- 0)
    registry

let find snap name = List.assoc_opt name snap

let render_text snap =
  let buf = Buffer.create 1024 in
  let width =
    List.fold_left (fun acc (name, _) -> max acc (String.length name)) 24 snap
  in
  Buffer.add_string buf "== metrics ==\n";
  List.iter
    (fun (name, v) ->
      let pad = String.make (width - String.length name + 2) ' ' in
      match v with
      | Counter n -> Buffer.add_string buf (Printf.sprintf "%s%s%d\n" name pad n)
      | Gauge g -> Buffer.add_string buf (Printf.sprintf "%s%s%g\n" name pad g)
      | Histogram { buckets; counts; sum; count } ->
          let mean = if count = 0 then 0.0 else sum /. float_of_int count in
          Buffer.add_string buf
            (Printf.sprintf "%s%scount=%d sum=%g mean=%g\n" name pad count sum mean);
          Array.iteri
            (fun i c ->
              if c > 0 then
                Buffer.add_string buf
                  (if i < Array.length buckets then
                     Printf.sprintf "%s  le %g: %d\n" (String.make width ' ')
                       buckets.(i) c
                   else
                     Printf.sprintf "%s  overflow: %d\n" (String.make width ' ') c))
            counts)
    snap;
  Buffer.contents buf

let to_json snap =
  Jsonx.Obj
    (List.map
       (fun (name, v) ->
         let body =
           match v with
           | Counter n -> Jsonx.Obj [ ("type", Jsonx.String "counter"); ("value", Jsonx.Int n) ]
           | Gauge g -> Jsonx.Obj [ ("type", Jsonx.String "gauge"); ("value", Jsonx.Float g) ]
           | Histogram { buckets; counts; sum; count } ->
               Jsonx.Obj
                 [
                   ("type", Jsonx.String "histogram");
                   ("buckets", Jsonx.List (Array.to_list (Array.map (fun b -> Jsonx.Float b) buckets)));
                   ("counts", Jsonx.List (Array.to_list (Array.map (fun c -> Jsonx.Int c) counts)));
                   ("sum", Jsonx.Float sum);
                   ("count", Jsonx.Int count);
                 ]
         in
         (name, body))
       snap)

let of_json json =
  let fail msg = failwith ("Metrics.of_json: " ^ msg) in
  let as_int = function
    | Jsonx.Int i -> i
    | Jsonx.Float f when Float.is_integer f -> int_of_float f
    | _ -> fail "expected integer"
  in
  let as_float = function
    | Jsonx.Float f -> f
    | Jsonx.Int i -> float_of_int i
    | _ -> fail "expected number"
  in
  let get obj k = match Jsonx.member k obj with Some v -> v | None -> fail ("missing " ^ k) in
  match json with
  | Jsonx.Obj fields ->
      List.map
        (fun (name, body) ->
          let v =
            match Jsonx.member "type" body with
            | Some (Jsonx.String "counter") -> Counter (as_int (get body "value"))
            | Some (Jsonx.String "gauge") -> Gauge (as_float (get body "value"))
            | Some (Jsonx.String "histogram") ->
                let arr f = function
                  | Jsonx.List xs -> Array.of_list (List.map f xs)
                  | _ -> fail "expected array"
                in
                Histogram
                  {
                    buckets = arr as_float (get body "buckets");
                    counts = arr as_int (get body "counts");
                    sum = as_float (get body "sum");
                    count = as_int (get body "count");
                  }
            | _ -> fail ("bad metric type for " ^ name)
          in
          (name, v))
        fields
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  | _ -> fail "expected object"

let equal (a : snapshot) (b : snapshot) = a = b
