(* Domain safety: counters and gauges are atomics (one fetch-and-add /
   exchange on the hot path — pooled matvecs bump them from every worker
   domain), histograms take a per-histogram mutex (they sit at request
   and solve granularity, never in inner loops), and the registry tables
   are guarded by a global registration mutex.  Snapshots are consistent
   per metric: each histogram is copied under its own lock. *)

type counter = {
  c_name : string;
  c_count : int Atomic.t;
}

type gauge = {
  g_name : string;
  g_value : float Atomic.t;
}

type histogram = {
  h_name : string;
  h_mutex : Mutex.t;
  h_buckets : float array;  (* ascending upper bounds *)
  h_counts : int array;  (* length = buckets + 1; last is overflow *)
  mutable h_sum : float;
  mutable h_count : int;
}

type metric = C of counter | G of gauge | H of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

(* help strings are kept out of the hot structs; they only matter for
   rendering *)
let helps : (string, string) Hashtbl.t = Hashtbl.create 64

let reg_mutex = Mutex.create ()

let register_help name help =
  match help with
  | Some h when not (Hashtbl.mem helps name) -> Hashtbl.add helps name h
  | _ -> ()

let kind_clash name =
  invalid_arg
    (Printf.sprintf "Metrics: %S is already registered as a different metric" name)

let with_registry f =
  Mutex.lock reg_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock reg_mutex) f

let counter ?help name =
  with_registry @@ fun () ->
  register_help name help;
  match Hashtbl.find_opt registry name with
  | Some (C c) -> c
  | Some _ -> kind_clash name
  | None ->
      let c = { c_name = name; c_count = Atomic.make 0 } in
      Hashtbl.add registry name (C c);
      c

let gauge ?help name =
  with_registry @@ fun () ->
  register_help name help;
  match Hashtbl.find_opt registry name with
  | Some (G g) -> g
  | Some _ -> kind_clash name
  | None ->
      let g = { g_name = name; g_value = Atomic.make 0.0 } in
      Hashtbl.add registry name (G g);
      g

let default_buckets =
  [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 1.0; 10.0; 100.0 |]

(* 1-2-5 per decade from 10us to 10s: fine enough that interpolated
   p50/p95/p99 of request latencies are meaningful, small enough that a
   snapshot stays cheap. *)
let latency_buckets =
  [|
    1e-5; 2e-5; 5e-5; 1e-4; 2e-4; 5e-4; 1e-3; 2e-3; 5e-3; 1e-2; 2e-2; 5e-2;
    0.1; 0.2; 0.5; 1.0; 2.0; 5.0; 10.0;
  |]

let histogram ?help ?(buckets = default_buckets) name =
  if Array.length buckets = 0 then invalid_arg "Metrics.histogram: empty buckets";
  for i = 1 to Array.length buckets - 1 do
    if buckets.(i) <= buckets.(i - 1) then
      invalid_arg "Metrics.histogram: buckets must be strictly ascending"
  done;
  with_registry @@ fun () ->
  register_help name help;
  match Hashtbl.find_opt registry name with
  | Some (H h) ->
      if h.h_buckets <> buckets && buckets != default_buckets then
        invalid_arg
          (Printf.sprintf "Metrics: histogram %S already registered with other buckets"
             name);
      h
  | Some _ -> kind_clash name
  | None ->
      let h =
        {
          h_name = name;
          h_mutex = Mutex.create ();
          h_buckets = Array.copy buckets;
          h_counts = Array.make (Array.length buckets + 1) 0;
          h_sum = 0.0;
          h_count = 0;
        }
      in
      Hashtbl.add registry name (H h);
      h

let incr c = Atomic.incr c.c_count

let add c n =
  if n < 0 then invalid_arg (Printf.sprintf "Metrics.add: negative delta on %S" c.c_name);
  ignore (Atomic.fetch_and_add c.c_count n)

let counter_value c = Atomic.get c.c_count

let set g v = Atomic.set g.g_value v

let gauge_value g = Atomic.get g.g_value

let observe h v =
  let nb = Array.length h.h_buckets in
  let i = ref 0 in
  while !i < nb && v > h.h_buckets.(!i) do
    i := !i + 1
  done;
  Mutex.lock h.h_mutex;
  h.h_counts.(!i) <- h.h_counts.(!i) + 1;
  h.h_sum <- h.h_sum +. v;
  h.h_count <- h.h_count + 1;
  Mutex.unlock h.h_mutex

let time h f =
  let t0 = Clock.now_ns () in
  let r = f () in
  observe h (Clock.elapsed_s t0);
  r

(* --------------------------- quantiles ---------------------------- *)

(* Fixed-bucket interpolation: with target rank r = q * count, find the
   bucket holding the r-th smallest observation (cumulative count >= r)
   and interpolate linearly inside it between its lower and upper bound
   (the first bucket's lower bound is 0 for the non-negative observations
   these histograms hold — latencies and sizes).  The estimate therefore
   always lands inside the bucket the exact sorted-sample quantile lives
   in; observations beyond the last bound clamp to it. *)
let quantile_of ~buckets ~counts ~count q =
  if not (Float.is_finite q) || q < 0.0 || q > 1.0 then
    invalid_arg "Metrics.quantile: q must be in [0, 1]";
  if count = 0 then None
  else begin
    let nb = Array.length buckets in
    let target = q *. float_of_int count in
    let rec find i cum =
      if i > nb then Some buckets.(nb - 1) (* ran past the end: clamp *)
      else
        let cum' = cum + counts.(i) in
        if counts.(i) > 0 && (float_of_int cum' >= target || i = nb) then
          if i = nb then Some buckets.(nb - 1) (* overflow bucket: clamp *)
          else begin
            let lo = if i = 0 then 0.0 else buckets.(i - 1) in
            let hi = buckets.(i) in
            let frac =
              Float.max 0.0 (target -. float_of_int cum)
              /. float_of_int counts.(i)
            in
            Some (lo +. (frac *. (hi -. lo)))
          end
        else find (i + 1) cum'
    in
    find 0 0
  end

let quantile h q =
  Mutex.lock h.h_mutex;
  let counts = Array.copy h.h_counts and count = h.h_count in
  Mutex.unlock h.h_mutex;
  quantile_of ~buckets:h.h_buckets ~counts ~count q

(* --------------------------- snapshots ---------------------------- *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of {
      buckets : float array;
      counts : int array;
      sum : float;
      count : int;
    }

type snapshot = (string * value) list

let snapshot () =
  with_registry (fun () ->
      Hashtbl.fold
        (fun name m acc ->
          let v =
            match m with
            | C c -> Counter (Atomic.get c.c_count)
            | G g -> Gauge (Atomic.get g.g_value)
            | H h ->
                Mutex.lock h.h_mutex;
                let v =
                  Histogram
                    {
                      buckets = Array.copy h.h_buckets;
                      counts = Array.copy h.h_counts;
                      sum = h.h_sum;
                      count = h.h_count;
                    }
                in
                Mutex.unlock h.h_mutex;
                v
          in
          (name, v) :: acc)
        registry [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset () =
  with_registry (fun () ->
      Hashtbl.iter
        (fun _ m ->
          match m with
          | C c -> Atomic.set c.c_count 0
          | G g -> Atomic.set g.g_value 0.0
          | H h ->
              Mutex.lock h.h_mutex;
              Array.fill h.h_counts 0 (Array.length h.h_counts) 0;
              h.h_sum <- 0.0;
              h.h_count <- 0;
              Mutex.unlock h.h_mutex)
        registry)

let find snap name = List.assoc_opt name snap

let value_quantile v q =
  match v with
  | Histogram { buckets; counts; count; _ } ->
      quantile_of ~buckets ~counts ~count q
  | Counter _ | Gauge _ -> None

let snapshot_quantile snap name q =
  match find snap name with Some v -> value_quantile v q | None -> None

let render_text snap =
  let buf = Buffer.create 1024 in
  let width =
    List.fold_left (fun acc (name, _) -> max acc (String.length name)) 24 snap
  in
  Buffer.add_string buf "== metrics ==\n";
  List.iter
    (fun (name, v) ->
      let pad = String.make (width - String.length name + 2) ' ' in
      match v with
      | Counter n -> Buffer.add_string buf (Printf.sprintf "%s%s%d\n" name pad n)
      | Gauge g -> Buffer.add_string buf (Printf.sprintf "%s%s%g\n" name pad g)
      | Histogram { buckets; counts; sum; count } ->
          let mean = if count = 0 then 0.0 else sum /. float_of_int count in
          Buffer.add_string buf
            (Printf.sprintf "%s%scount=%d sum=%g mean=%g\n" name pad count sum mean);
          Array.iteri
            (fun i c ->
              if c > 0 then
                Buffer.add_string buf
                  (if i < Array.length buckets then
                     Printf.sprintf "%s  le %g: %d\n" (String.make width ' ')
                       buckets.(i) c
                   else
                     Printf.sprintf "%s  overflow: %d\n" (String.make width ' ') c))
            counts)
    snap;
  Buffer.contents buf

(* ------------------------ Prometheus exposition ---------------------- *)

(* Text exposition format, version 0.0.4: metric names sanitized to
   [a-zA-Z0-9_:] (dots become underscores), histograms rendered as
   cumulative [_bucket{le="..."}] series plus [_sum]/[_count], a # HELP
   line whenever a help string was registered and a # TYPE line always. *)

let prom_name name =
  String.map
    (fun ch ->
      match ch with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> ch
      | _ -> '_')
    name

let prom_escape_help s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | ch -> Buffer.add_char buf ch)
    s;
  Buffer.contents buf

(* %.17g keeps the float exact; trim to %g form when shorter and lossless *)
let prom_float v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else
    let short = Printf.sprintf "%g" v in
    if float_of_string short = v then short else Printf.sprintf "%.17g" v

let render_prometheus snap =
  let help_of name = with_registry (fun () -> Hashtbl.find_opt helps name) in
  let buf = Buffer.create 2048 in
  List.iter
    (fun (name, v) ->
      let pname = prom_name name in
      (match help_of name with
      | Some h ->
          Buffer.add_string buf
            (Printf.sprintf "# HELP %s %s\n" pname (prom_escape_help h))
      | None -> ());
      match v with
      | Counter n ->
          Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" pname);
          Buffer.add_string buf (Printf.sprintf "%s %d\n" pname n)
      | Gauge g ->
          Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" pname);
          Buffer.add_string buf (Printf.sprintf "%s %s\n" pname (prom_float g))
      | Histogram { buckets; counts; sum; count } ->
          Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" pname);
          let cum = ref 0 in
          Array.iteri
            (fun i b ->
              cum := !cum + counts.(i);
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" pname (prom_float b)
                   !cum))
            buckets;
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" pname count);
          Buffer.add_string buf
            (Printf.sprintf "%s_sum %s\n" pname (prom_float sum));
          Buffer.add_string buf (Printf.sprintf "%s_count %d\n" pname count))
    snap;
  Buffer.contents buf

let to_json snap =
  Jsonx.Obj
    (List.map
       (fun (name, v) ->
         let body =
           match v with
           | Counter n -> Jsonx.Obj [ ("type", Jsonx.String "counter"); ("value", Jsonx.Int n) ]
           | Gauge g -> Jsonx.Obj [ ("type", Jsonx.String "gauge"); ("value", Jsonx.Float g) ]
           | Histogram { buckets; counts; sum; count } ->
               Jsonx.Obj
                 [
                   ("type", Jsonx.String "histogram");
                   ("buckets", Jsonx.List (Array.to_list (Array.map (fun b -> Jsonx.Float b) buckets)));
                   ("counts", Jsonx.List (Array.to_list (Array.map (fun c -> Jsonx.Int c) counts)));
                   ("sum", Jsonx.Float sum);
                   ("count", Jsonx.Int count);
                 ]
         in
         (name, body))
       snap)

let of_json json =
  let fail msg = failwith ("Metrics.of_json: " ^ msg) in
  let as_int = function
    | Jsonx.Int i -> i
    | Jsonx.Float f when Float.is_integer f -> int_of_float f
    | _ -> fail "expected integer"
  in
  let as_float = function
    | Jsonx.Float f -> f
    | Jsonx.Int i -> float_of_int i
    | _ -> fail "expected number"
  in
  let get obj k = match Jsonx.member k obj with Some v -> v | None -> fail ("missing " ^ k) in
  match json with
  | Jsonx.Obj fields ->
      List.map
        (fun (name, body) ->
          let v =
            match Jsonx.member "type" body with
            | Some (Jsonx.String "counter") -> Counter (as_int (get body "value"))
            | Some (Jsonx.String "gauge") -> Gauge (as_float (get body "value"))
            | Some (Jsonx.String "histogram") ->
                let arr f = function
                  | Jsonx.List xs -> Array.of_list (List.map f xs)
                  | _ -> fail "expected array"
                in
                Histogram
                  {
                    buckets = arr as_float (get body "buckets");
                    counts = arr as_int (get body "counts");
                    sum = as_float (get body "sum");
                    count = as_int (get body "count");
                  }
            | _ -> fail ("bad metric type for " ^ name)
          in
          (name, v))
        fields
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  | _ -> fail "expected object"

let equal (a : snapshot) (b : snapshot) = a = b
