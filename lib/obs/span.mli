(** Hierarchical span tracing over the monotonic clock.

    Tracing is {e off by default}: when disabled, {!with_} is one branch
    plus a tail call — no clock reads, no record allocation — so
    instrumentation can stay permanently in hot paths.  When enabled
    (CLI [--trace FILE]), each [with_ name f] produces one completed-span
    record (name, start, duration, nesting depth), and the accumulated
    records export to Chrome [trace_event] JSON that opens directly in
    [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}. *)

type record = {
  name : string;
  start_ns : int;  (** relative to the trace epoch (first enable / last clear) *)
  dur_ns : int;
  depth : int;  (** nesting depth at entry; 0 = top-level *)
  rid : string option;  (** ambient {!Ctx} request id at span entry *)
}

val set_enabled : bool -> unit
val enabled : unit -> bool

val with_ : string -> (unit -> 'a) -> 'a
(** [with_ name f] runs [f ()] inside a span.  The record is emitted even
    when [f] raises (the exception is re-raised).  When tracing is
    disabled this is just [f ()]. *)

val records : unit -> record list
(** Completed spans in completion order (children before parents). *)

val record_count : unit -> int
(** Number of completed span records — the smoke-test hook asserting that
    disabled tracing records nothing on hot paths. *)

val clear : unit -> unit
(** Drop accumulated records and re-anchor the trace epoch. *)

val to_trace_json : unit -> Jsonx.t
(** Chrome [trace_event] document: [{"traceEvents": [...]}] with complete
    ("ph":"X") events, timestamps and durations in microseconds; each
    event's [args] carries its nesting depth and, when one was ambient,
    the request id — so a request's spans are findable by [rid] in the
    trace viewer. *)

val write_chrome_trace : string -> unit
(** [to_trace_json] to a file. *)
