type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if not (Float.is_finite f) then "null"
  else begin
    (* shortest representation that round-trips *)
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f
  end

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape_to buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

let to_file path v =
  Out_channel.with_open_text path (fun oc ->
      output_string oc (to_string v);
      output_char oc '\n')

(* ------------------------------------------------------------------ *)
(* Parsing (recursive descent)                                         *)
(* ------------------------------------------------------------------ *)

type state = {
  text : string;
  mutable pos : int;
}

let fail st msg = failwith (Printf.sprintf "Jsonx: at offset %d: %s" st.pos msg)

let peek st = if st.pos < String.length st.text then Some st.text.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | _ -> fail st (Printf.sprintf "expected %C" c)

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.text
    && String.sub st.text st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' ->
        advance st;
        (match peek st with
        | Some '"' -> Buffer.add_char buf '"'; advance st
        | Some '\\' -> Buffer.add_char buf '\\'; advance st
        | Some '/' -> Buffer.add_char buf '/'; advance st
        | Some 'n' -> Buffer.add_char buf '\n'; advance st
        | Some 'r' -> Buffer.add_char buf '\r'; advance st
        | Some 't' -> Buffer.add_char buf '\t'; advance st
        | Some 'b' -> Buffer.add_char buf '\b'; advance st
        | Some 'f' -> Buffer.add_char buf '\012'; advance st
        | Some 'u' ->
            advance st;
            if st.pos + 4 > String.length st.text then fail st "truncated \\u escape";
            let hex = String.sub st.text st.pos 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> fail st "bad \\u escape"
            in
            st.pos <- st.pos + 4;
            (* encode the code point as UTF-8 (basic plane only) *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
        | _ -> fail st "bad escape");
        go ()
    | Some c ->
        Buffer.add_char buf c;
        advance st;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec go () =
    match peek st with
    | Some c when is_num_char c ->
        advance st;
        go ()
    | _ -> ()
  in
  go ();
  let s = String.sub st.text start (st.pos - start) in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail st (Printf.sprintf "bad number %S" s)
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> fail st (Printf.sprintf "bad number %S" s))

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some 'n' -> literal st "null" Null
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some '"' -> String (parse_string st)
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        List []
      end
      else begin
        let items = ref [] in
        let rec elems () =
          items := parse_value st :: !items;
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              elems ()
          | Some ']' -> advance st
          | _ -> fail st "expected ',' or ']'"
        in
        elems ();
        List (List.rev !items)
      end
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          fields := (k, v) :: !fields;
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              members ()
          | Some '}' -> advance st
          | _ -> fail st "expected ',' or '}'"
        in
        members ();
        Obj (List.rev !fields)
      end
  | Some ('0' .. '9' | '-') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected character %C" c)

let of_string text =
  let st = { text; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length text then fail st "trailing garbage";
  v

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None
