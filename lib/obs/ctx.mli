(** Request-scoped correlation: an ambient, domain-local request id.

    A request id minted at the edge of the system (server accept loop,
    CLI invocation) and installed with {!with_rid} is visible to every
    instrumentation point that runs inside the callback — {!Span} records
    it on each completed span, {!Log} stamps it on each emitted event —
    so one served request can be reconstructed end-to-end from telemetry
    alone.

    The id is stored in domain-local state; {!Graphio_par.Pool} loops
    re-install the submitting domain's id in helper domains, so the
    ambient id survives pooled execution. *)

val fresh : ?prefix:string -> unit -> string
(** Mint a process-unique id, [PREFIX-N] with an atomic counter
    ([prefix] defaults to ["req"]). *)

val with_rid : string -> (unit -> 'a) -> 'a
(** [with_rid r f] runs [f ()] with [r] as the ambient request id of the
    current domain, restoring the previous ambient id afterwards (also on
    exceptions).  Nesting is allowed; the innermost id wins. *)

val rid : unit -> string option
(** The current domain's ambient request id, if any. *)
