(* Gc.quick_stat is cheap (no heap walk), so sampling on demand — at
   metrics exposition, bench section ends — costs nothing on request
   paths. *)

let g_heap_words =
  Metrics.gauge ~help:"major heap size in words" "runtime.gc.heap_words"

let g_top_heap_words =
  Metrics.gauge ~help:"largest major heap size reached, in words"
    "runtime.gc.top_heap_words"

let g_minor_collections =
  Metrics.gauge ~help:"minor collections since program start"
    "runtime.gc.minor_collections"

let g_major_collections =
  Metrics.gauge ~help:"major collection cycles since program start"
    "runtime.gc.major_collections"

let g_compactions =
  Metrics.gauge ~help:"heap compactions since program start"
    "runtime.gc.compactions"

let sample () =
  let s = Gc.quick_stat () in
  Metrics.set g_heap_words (float_of_int s.Gc.heap_words);
  Metrics.set g_top_heap_words (float_of_int s.Gc.top_heap_words);
  Metrics.set g_minor_collections (float_of_int s.Gc.minor_collections);
  Metrics.set g_major_collections (float_of_int s.Gc.major_collections);
  Metrics.set g_compactions (float_of_int s.Gc.compactions)
