(** Monotonic wall clock.

    Wall-clock sources ([Unix.gettimeofday]) are not monotonic — NTP slews
    and steps move them backwards, silently corrupting benchmark numbers
    and span durations.  Everything in graphio that measures elapsed time
    goes through this module instead: [clock_gettime(CLOCK_MONOTONIC)]
    exposed as an allocation-free nanosecond counter. *)

val now_ns : unit -> int
(** Nanoseconds since an arbitrary (boot-time) epoch.  Monotone
    non-decreasing; allocation-free (the C stub returns a tagged int). *)

val now_s : unit -> float
(** [now_ns] in seconds.  Only differences are meaningful. *)

val elapsed_s : int -> float
(** [elapsed_s t0] — seconds elapsed since the tick [t0 = now_ns ()]. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result paired with the elapsed
    monotonic seconds. *)
