(* Request-scoped correlation context.

   The ambient request id is domain-local (Domain.DLS): a pool task that
   installs its request's id sees it from every instrumentation point the
   task touches — spans, the event log, cache and solver telemetry —
   without any of those layers taking an explicit parameter.  Helper
   domains executing chunks of a pooled loop inherit the submitting
   domain's id (see Graphio_par.Pool), so a request's eigensolve carries
   its id even when its matvecs are spread across the pool. *)

let counter = Atomic.make 0

let fresh ?(prefix = "req") () =
  Printf.sprintf "%s-%d" prefix (Atomic.fetch_and_add counter 1 + 1)

let key : string option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let rid () = !(Domain.DLS.get key)

let with_rid r f =
  let cell = Domain.DLS.get key in
  let saved = !cell in
  cell := Some r;
  Fun.protect ~finally:(fun () -> cell := saved) (fun () -> f ())
