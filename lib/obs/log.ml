type level = Debug | Info | Warn | Error

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

(* The sink is process-global and mutex-protected: events from pool
   domains interleave line-atomically, never byte-wise.  [`Closed] marks a
   channel we own (a file we opened) versus one we borrowed (stderr). *)
type sink = { oc : out_channel; owned : bool }

let sink : sink option ref = ref None
let threshold = ref Info
let mutex = Mutex.create ()
let c_events = Metrics.counter ~help:"structured events written" "obs.log.events"

let set_level l = threshold := l

let close () =
  Mutex.lock mutex;
  (match !sink with
  | Some s ->
      (try flush s.oc with Sys_error _ -> ());
      if s.owned then close_out_noerr s.oc
  | None -> ());
  sink := None;
  Mutex.unlock mutex

let set_channel oc =
  close ();
  Mutex.lock mutex;
  sink := Some { oc; owned = false };
  Mutex.unlock mutex

let open_file = function
  | "-" -> set_channel stderr
  | path ->
      close ();
      let oc = open_out path in
      Mutex.lock mutex;
      sink := Some { oc; owned = true };
      Mutex.unlock mutex

let enabled level = !sink <> None && severity level >= severity !threshold

let emit ?(level = Info) event fields =
  if enabled level then begin
    let record =
      Jsonx.Obj
        ([
           ("ts_ns", Jsonx.Int (Clock.now_ns ()));
           ("level", Jsonx.String (level_name level));
           ("event", Jsonx.String event);
         ]
        @ (match Ctx.rid () with
          | Some r -> [ ("rid", Jsonx.String r) ]
          | None -> [])
        @ fields)
    in
    let line = Jsonx.to_string record in
    Mutex.lock mutex;
    (match !sink with
    | Some s -> (
        Metrics.incr c_events;
        try
          output_string s.oc line;
          output_char s.oc '\n';
          flush s.oc
        with Sys_error _ -> ())
    | None -> ());
    Mutex.unlock mutex
  end
