(** Process-global metrics registry: counters, gauges and fixed-bucket
    histograms with typed handles.

    Instrumented modules obtain a handle once at module-initialization
    time ([let c = Metrics.counter "la.eigen.matvecs"]) and update it on
    the hot path with a single atomic mutation — no hashing, no
    allocation.  Handles registered under the same name are shared, so
    independent modules may safely instrument the same logical metric.

    All operations are domain-safe: counter and gauge updates are
    lock-free atomics, histogram observations take a per-histogram mutex
    (they sit at request/solve granularity, not in inner loops), and
    registration is serialized, so pool worker domains may update shared
    handles without losing increments.

    Snapshots are immutable, renderable as an aligned text table (the
    CLI's [--metrics]), as Prometheus text exposition format (the serve
    tier's [{"op":"metrics"}]) and as JSON (round-trippable through
    {!Jsonx} — the bench perf trajectory).  Histogram snapshots support
    streaming quantile estimates ({!value_quantile}) by in-bucket linear
    interpolation. *)

type counter
type gauge
type histogram

(* -------------------------- registration -------------------------- *)

val counter : ?help:string -> string -> counter
(** Register (or look up) a monotone counter.  Raises [Invalid_argument]
    if the name is already registered as a different metric kind. *)

val gauge : ?help:string -> string -> gauge
(** Register (or look up) a last-value-wins gauge. *)

val histogram : ?help:string -> ?buckets:float array -> string -> histogram
(** Register (or look up) a histogram.  [buckets] are ascending inclusive
    upper bounds; observations above the last bound land in an implicit
    overflow bucket.  The default buckets are geometric in seconds
    ([1e-6 .. 100]), suited to timing observations.  Raises
    [Invalid_argument] on unsorted or empty bucket arrays, or if the name
    clashes with an existing metric of a different kind or different
    buckets. *)

val default_buckets : float array
(** Geometric upper bounds in seconds, [1e-6 .. 100]. *)

val latency_buckets : float array
(** 1-2-5 series per decade, [10us .. 10s] — fine enough that
    interpolated p50/p95/p99 of request latencies are meaningful. *)

(* ---------------------------- updates ----------------------------- *)

val incr : counter -> unit
val add : counter -> int -> unit
(** Negative deltas are rejected with [Invalid_argument] (counters are
    monotone; use a gauge for values that go down). *)

val counter_value : counter -> int

val set : gauge -> float -> unit
val gauge_value : gauge -> float

val observe : histogram -> float -> unit

val time : histogram -> (unit -> 'a) -> 'a
(** [time h f] runs [f ()] and observes its monotonic duration in seconds. *)

val quantile : histogram -> float -> float option
(** [quantile h q] estimates the [q]-quantile ([0 <= q <= 1], else
    [Invalid_argument]) of the observations in [h] by linear
    interpolation inside the bucket holding the target rank; [None] when
    the histogram is empty.  Observations beyond the last bucket bound
    clamp to that bound.  The estimate always lies in the same bucket as
    the exact sorted-sample quantile. *)

(* --------------------------- snapshots ---------------------------- *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of {
      buckets : float array;  (** ascending upper bounds *)
      counts : int array;  (** per-bucket counts; length [buckets + 1], last = overflow *)
      sum : float;
      count : int;
    }

type snapshot = (string * value) list
(** Sorted by metric name. *)

val snapshot : unit -> snapshot

val reset : unit -> unit
(** Zero every registered metric (handles stay valid).  Used by the bench
    harness to attribute counts to sections, and by tests. *)

val find : snapshot -> string -> value option

val value_quantile : value -> float -> float option
(** {!quantile} over a snapshotted value; [None] for counters, gauges and
    empty histograms. *)

val snapshot_quantile : snapshot -> string -> float -> float option
(** [snapshot_quantile snap name q] = quantile of the named histogram in
    [snap], if present and non-empty. *)

val render_text : snapshot -> string
(** Aligned table, one metric per line; histograms render as
    [count/sum/mean] plus their non-empty buckets. *)

val render_prometheus : snapshot -> string
(** Prometheus text exposition format (version 0.0.4): names sanitized to
    [[a-zA-Z0-9_:]], a [# TYPE] line per metric, a [# HELP] line when a
    help string was registered, histograms as cumulative
    [_bucket{le="..."}] series plus [_sum]/[_count] and a [+Inf]
    bucket. *)

val to_json : snapshot -> Jsonx.t

val of_json : Jsonx.t -> snapshot
(** Inverse of {!to_json}; raises [Failure] on malformed input.  Used to
    round-trip snapshots in tests and to consume dumped metrics. *)

val equal : snapshot -> snapshot -> bool
