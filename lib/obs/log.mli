(** Leveled structured event log: newline-delimited JSON (NDJSON).

    Off by default — with no sink installed, {!emit} is one load and a
    branch, so event emission can live permanently in the serve tier, the
    solver and the cache.  With a sink (CLI [--log FILE], [-] = stderr),
    each event becomes one JSON object on one line:

    {v
    {"ts_ns":123456789,"level":"info","event":"server.reply",
     "rid":"req-7","ok":true,"cache_hit":false,"wall_s":0.0021}
    v}

    Schema: every record carries [ts_ns] (monotonic {!Clock.now_ns} — for
    ordering and correlation with span traces, not wall-clock time),
    [level], [event] (dot-separated, subsystem-prefixed), and — whenever
    the emitting domain has an ambient {!Ctx} request id — [rid].
    Remaining fields are event-specific.  Writes are mutex-serialized and
    flushed per line, so events from pool domains interleave
    line-atomically and the log is replayable alongside the
    fault-injection log (which shares the same NDJSON discipline). *)

type level = Debug | Info | Warn | Error

val level_name : level -> string
val level_of_string : string -> level option

val set_channel : out_channel -> unit
(** Install a sink the caller owns (not closed by {!close}). *)

val open_file : string -> unit
(** Open [path] (truncating) as the sink; [-] means stderr.  Replaces and
    closes any previous owned sink.  Raises [Sys_error] if the path
    cannot be opened. *)

val close : unit -> unit
(** Flush and drop the sink (closing it if {!open_file} opened it).
    Emission becomes a no-op again. *)

val set_level : level -> unit
(** Minimum level written (default [Info]). *)

val enabled : level -> bool
(** Whether an event at [level] would currently be written — guard for
    callers that would otherwise build expensive field lists. *)

val emit : ?level:level -> string -> (string * Jsonx.t) list -> unit
(** [emit name fields] writes one event record ([level] defaults to
    [Info]).  The ambient request id, if any, is attached automatically;
    [fields] should not shadow [ts_ns]/[level]/[event]/[rid]. *)
