let c_loops = Graphio_obs.Metrics.counter "par.pool.loops"
let c_chunks = Graphio_obs.Metrics.counter "par.pool.chunks"
let c_steals = Graphio_obs.Metrics.counter "par.pool.steals"
let c_helped = Graphio_obs.Metrics.counter "par.pool.helped_tasks"
let c_created = Graphio_obs.Metrics.counter "par.pool.created"
let g_size = Graphio_obs.Metrics.gauge "par.pool.size"

let g_queue_depth =
  Graphio_obs.Metrics.gauge ~help:"tasks waiting in the shared pool queue"
    "par.pool.queue_depth"

type t = {
  mutex : Mutex.t;
  cond : Condition.t;
      (* one condition for every event: task pushed, loop finished,
         shutdown — waiters re-check their own predicate *)
  queue : (unit -> unit) Queue.t;  (* tasks never raise (wrapped) *)
  mutable live : bool;
  mutable workers : unit Domain.t list;
  size : int;
}

let default_size () =
  match Sys.getenv_opt "GRAPHIO_POOL" with
  | Some "ncores" | None -> Domain.recommended_domain_count ()
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n >= 1 -> n
      | _ -> Domain.recommended_domain_count ())

let size pool = pool.size

let worker_loop pool =
  Mutex.lock pool.mutex;
  let rec go () =
    if not (Queue.is_empty pool.queue) then begin
      let task = Queue.pop pool.queue in
      Graphio_obs.Metrics.set g_queue_depth
        (float_of_int (Queue.length pool.queue));
      Mutex.unlock pool.mutex;
      task ();
      Mutex.lock pool.mutex;
      go ()
    end
    else if pool.live then begin
      Condition.wait pool.cond pool.mutex;
      go ()
    end
    else Mutex.unlock pool.mutex
  in
  go ()

let create ?size () =
  let size = match size with Some s -> s | None -> default_size () in
  if size < 1 then invalid_arg "Pool.create: size must be >= 1";
  let pool =
    {
      mutex = Mutex.create ();
      cond = Condition.create ();
      queue = Queue.create ();
      live = true;
      workers = [];
      size;
    }
  in
  pool.workers <-
    List.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  Graphio_obs.Metrics.incr c_created;
  Graphio_obs.Metrics.set g_size (float_of_int size);
  pool

let shutdown pool =
  Mutex.lock pool.mutex;
  let workers = pool.workers in
  pool.live <- false;
  pool.workers <- [];
  Condition.broadcast pool.cond;
  Mutex.unlock pool.mutex;
  List.iter Domain.join workers

let with_pool ?size f =
  let pool = create ?size () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let check_live pool =
  if not pool.live then invalid_arg "Pool: used after shutdown"

(* Run [run_chunk c] for each [c < nchunks], each exactly once, across the
   pool.  [run_chunk] must not raise.  The caller participates; while
   waiting for helper tasks to finish it drains the shared queue instead of
   sleeping, which is what makes nested/concurrent loops deadlock-free. *)
let exec_loop pool nchunks run_chunk =
  check_live pool;
  Graphio_obs.Metrics.incr c_loops;
  Graphio_obs.Metrics.add c_chunks nchunks;
  if pool.size <= 1 || nchunks <= 1 then
    for c = 0 to nchunks - 1 do
      run_chunk c
    done
  else begin
    let next = Atomic.make 0 in
    let drain ~helper =
      let mine = ref 0 in
      let rec go () =
        let c = Atomic.fetch_and_add next 1 in
        if c < nchunks then begin
          run_chunk c;
          incr mine;
          go ()
        end
      in
      go ();
      if helper && !mine > 0 then Graphio_obs.Metrics.add c_steals !mine
    in
    let helpers = min (pool.size - 1) (nchunks - 1) in
    let remaining = ref helpers in
    (* Helper domains run chunks of this loop on behalf of the submitting
       domain, so they inherit its ambient request id: spans and events
       from a pooled eigensolve stay correlated with the request that
       submitted it. *)
    let submitter_rid = Graphio_obs.Ctx.rid () in
    let helper_drain =
      match submitter_rid with
      | None -> fun () -> drain ~helper:true
      | Some r -> fun () -> Graphio_obs.Ctx.with_rid r (fun () -> drain ~helper:true)
    in
    Mutex.lock pool.mutex;
    for _ = 1 to helpers do
      Queue.push
        (fun () ->
          helper_drain ();
          Mutex.lock pool.mutex;
          decr remaining;
          if !remaining = 0 then Condition.broadcast pool.cond;
          Mutex.unlock pool.mutex)
        pool.queue
    done;
    Graphio_obs.Metrics.set g_queue_depth
      (float_of_int (Queue.length pool.queue));
    Condition.broadcast pool.cond;
    Mutex.unlock pool.mutex;
    drain ~helper:false;
    Mutex.lock pool.mutex;
    let rec wait () =
      if !remaining > 0 then
        if not (Queue.is_empty pool.queue) then begin
          let task = Queue.pop pool.queue in
          Graphio_obs.Metrics.set g_queue_depth
            (float_of_int (Queue.length pool.queue));
          Mutex.unlock pool.mutex;
          Graphio_obs.Metrics.incr c_helped;
          task ();
          Mutex.lock pool.mutex;
          wait ()
        end
        else begin
          Condition.wait pool.cond pool.mutex;
          wait ()
        end
    in
    wait ();
    Mutex.unlock pool.mutex
  end

(* Chunk geometry depends on the iteration count only — never on pool size
   — so chunk-indexed results (map_reduce partials, FP summation order) are
   reproducible across pool sizes.  At most [max_chunks] chunks keeps the
   per-chunk atomic overhead negligible while leaving enough slack for
   dynamic load balancing. *)
let max_chunks = 256

let chunk_size ?chunk count =
  match chunk with
  | Some c ->
      if c < 1 then invalid_arg "Pool: chunk must be >= 1";
      c
  | None -> max 1 ((count + max_chunks - 1) / max_chunks)

let parallel_for ?chunk pool ~lo ~hi body =
  let count = hi - lo in
  if count > 0 then begin
    let chunk = chunk_size ?chunk count in
    let nchunks = (count + chunk - 1) / chunk in
    if pool.size <= 1 || nchunks <= 1 then begin
      check_live pool;
      for i = lo to hi - 1 do
        body i
      done
    end
    else begin
      let failure = Atomic.make None in
      let run_chunk c =
        match Atomic.get failure with
        | Some _ -> () (* a chunk failed: abandon the remaining work *)
        | None -> (
            let start = lo + (c * chunk) in
            let stop = min hi (start + chunk) in
            try
              for i = start to stop - 1 do
                body i
              done
            with e ->
              let bt = Printexc.get_raw_backtrace () in
              ignore (Atomic.compare_and_set failure None (Some (e, bt))))
      in
      exec_loop pool nchunks run_chunk;
      match Atomic.get failure with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end
  end

let map_reduce ?chunk pool ~lo ~hi ~map ~reduce ~init =
  let count = hi - lo in
  if count <= 0 then init
  else begin
    let chunk = chunk_size ?chunk count in
    let nchunks = (count + chunk - 1) / chunk in
    let partials = Array.make nchunks None in
    let partial c =
      let start = lo + (c * chunk) in
      let stop = min hi (start + chunk) in
      let acc = ref (map start) in
      for i = start + 1 to stop - 1 do
        acc := reduce !acc (map i)
      done;
      partials.(c) <- Some !acc
    in
    (* one loop item per chunk: parallel_for re-chunking is the identity *)
    parallel_for ~chunk:1 pool ~lo:0 ~hi:nchunks partial;
    let acc = ref init in
    for c = 0 to nchunks - 1 do
      match partials.(c) with
      | Some p -> acc := reduce !acc p
      | None -> assert false
    done;
    !acc
  end

(* Task-level fault site: an injected fire makes the task raise
   [Graphio_fault.Injected "pool.task"], which propagates to the caller
   through [parallel_for]'s failure channel exactly like a real task
   exception would.  Callers that must survive task death (the server's
   request dispatch) are chaos-tested against this site. *)
let f_task = Graphio_fault.site "pool.task"

let run_all pool jobs =
  let n = Array.length jobs in
  let results = Array.make n None in
  parallel_for ~chunk:1 pool ~lo:0 ~hi:n (fun j ->
      Graphio_fault.step f_task;
      results.(j) <- Some (jobs.(j) ()));
  Array.map (function Some r -> r | None -> assert false) results
