(** Fixed-size OCaml 5 domain pool with chunked self-scheduling loops.

    The pool is the parallelism substrate of the bound pipeline: row-chunked
    CSR matvecs ({!Graphio_la.Csr.matvec_into}), and the batch bound driver
    ({!Graphio_core.Solver.bound_batch}).  Design points:

    - a pool of [size] {e participants}: [size - 1] worker domains plus the
      calling domain, which always takes part in its own loops (a pool of
      size 1 spawns nothing and runs everything sequentially — the exact
      fallback path);
    - loops are {e chunked and self-scheduled}: the iteration range is cut
      into fixed chunks and participants grab the next chunk through one
      atomic fetch-and-add — cheap dynamic load balancing without per-item
      queues ("work-stealing-ish");
    - a participant blocked waiting for a loop to finish {e helps}: it
      drains queued tasks instead of sleeping, so nested or concurrent
      pool use cannot deadlock;
    - determinism: chunk geometry depends only on the iteration count
      (never on [size] or on which domain runs a chunk), each index is
      executed exactly once, and {!map_reduce} combines chunk partials in
      ascending chunk order — so results are reproducible across pool
      sizes, and bitwise so when per-index work is itself deterministic
      (see docs/PARALLELISM.md).

    Observability: the pool bumps [par.pool.*] counters (loops, chunks,
    chunks executed by helper domains = "steals") and sets the
    [par.pool.size] and [par.pool.queue_depth] gauges; counter updates
    from worker domains are atomic ({!Graphio_obs.Metrics} is
    domain-safe), so counts are exact under contention.  Helper domains
    executing chunks of a loop inherit the submitting domain's ambient
    {!Graphio_obs.Ctx} request id, so telemetry emitted inside pooled
    work stays correlated with the request that submitted it. *)

type t

val default_size : unit -> int
(** Pool size selected by the [GRAPHIO_POOL] environment variable:
    a positive integer, or ["ncores"] for
    [Domain.recommended_domain_count ()] (also the default when the
    variable is unset or unparsable). *)

val create : ?size:int -> unit -> t
(** [create ()] — a pool of {!default_size} participants ([size] when
    given; [Invalid_argument] if [size < 1]).  [size - 1] domains are
    spawned immediately and live until {!shutdown}. *)

val size : t -> int
(** Number of participants (worker domains + the caller). *)

val shutdown : t -> unit
(** Join all worker domains.  Idempotent.  Outstanding tasks are drained
    first; using the pool after shutdown raises [Invalid_argument]. *)

val with_pool : ?size:int -> (t -> 'a) -> 'a
(** [create], run, [shutdown] (also on exceptions). *)

val parallel_for : ?chunk:int -> t -> lo:int -> hi:int -> (int -> unit) -> unit
(** [parallel_for pool ~lo ~hi f] runs [f i] for every [lo <= i < hi],
    each index exactly once, in parallel across the pool.  Within a chunk,
    indices run in ascending order on one domain.  [chunk] overrides the
    default chunk size (a function of [hi - lo] only).  The first
    exception raised by [f] is re-raised in the caller after the loop
    quiesces (remaining chunks are abandoned). *)

val map_reduce :
  ?chunk:int ->
  t ->
  lo:int ->
  hi:int ->
  map:(int -> 'a) ->
  reduce:('a -> 'a -> 'a) ->
  init:'a ->
  'a
(** [map_reduce pool ~lo ~hi ~map ~reduce ~init] computes
    [reduce (... (reduce init p_0) ...) p_{c-1}] where chunk partial
    [p_j] folds [map] left-to-right over chunk [j]'s indices.  Reduction
    order is fixed by chunk index, so for a given [chunk] the result is
    {e independent of pool size} — floating-point sums included.  An empty
    range returns [init]. *)

val run_all : t -> (unit -> 'a) array -> 'a array
(** [run_all pool jobs] executes the jobs concurrently (one chunk each)
    and returns their results in job order.  First exception re-raised
    after the batch quiesces. *)
