open Graphio_graph
open Graphio_la

type method_ = Method.t =
  | Normalized
  | Standard
  | Adjacency
  | Signless
  | Visit
  | Portfolio

type tier = Closed_form of Graphio_recognize.Recognize.family | Numeric

type component_info = {
  comp_n : int;
  comp_edges : int;
  comp_tier : tier;
  comp_backend : Eigen.backend;
  comp_cache_hit : bool;
  comp_warm_start : bool;
}

(* one portfolio member's value, for provenance reporting *)
type method_value = {
  mv_method : method_;
  mv_bound : float;
  mv_best_k : int;
  mv_best_raw : float;
  mv_tier : tier;
  mv_cache_hit : bool;
  mv_warm_start : bool;
  mv_wall_s : float;
}

type outcome = {
  result : Spectral_bound.t;
  method_ : method_;
  backend : Eigen.backend;
  eigenvalues : float array;
  solve_stats : Eigen.stats option;
  tier : tier;
  warm_start : bool;
  components : component_info array;
  methods : method_value array;
      (* per-member values; non-empty only for [Portfolio] *)
  winner : method_ option;  (* the member behind [result]; [Portfolio] only *)
}

let tier_name = function Closed_form _ -> "closed-form" | Numeric -> "numeric"

let c_bounds = Graphio_obs.Metrics.counter "core.solver.bounds"
let c_closed_form =
  Graphio_obs.Metrics.counter "core.solver.closed_form_hits"
let c_warm_hits = Graphio_obs.Metrics.counter "core.solver.warm_start_hits"
let h_bound_seconds = Graphio_obs.Metrics.histogram "core.solver.bound_seconds"

let min_degree g =
  let n = Dag.n_vertices g in
  if n = 0 then 0
  else begin
    let d = ref max_int in
    for v = 0 to n - 1 do
      d := min !d (Dag.degree g v)
    done;
    !d
  end

(* The constant added to each raw eigenvalue before the 0-clamp.  Zero
   for the two Laplacian methods; for the shifted variants it turns the
   shifted spectrum [nu] into the Weyl surrogate that lower-bounds the
   standard Laplacian spectrum:

   - Adjacency: [L = D - A >= delta I - A = (delta - Delta) I + S_A],
     so [lambda_i(L) >= delta - Delta + nu_i(S_A)];
   - Signless: [L = 2D - Q >= 2 delta I - Q], so
     [lambda_i(L) >= 2 delta - 2 Delta + nu_i(S_Q)].

   A constant offset keeps the sequence ascending, and clamping at 0
   only lowers the (monotone-in-each-eigenvalue) bound — both methods
   stay sound. *)
let surrogate_offset ~method_ g =
  match (method_ : method_) with
  | Normalized | Standard -> 0.0
  | Adjacency -> float_of_int (min_degree g - Dag.max_degree g)
  | Signless -> 2.0 *. float_of_int (min_degree g - Dag.max_degree g)
  | Visit | Portfolio -> 0.0

let spectrum_full ?(method_ = Normalized) ?(h = 100) ?dense_threshold ?tol ?seed
    ?filter_degree ?kernel ?init ?want_vectors ?on_iteration ?pool g =
  let laplacian =
    Graphio_obs.Span.with_ "solver.laplacian" (fun () ->
        match method_ with
        | Normalized -> Laplacian.normalized g
        | Standard -> Laplacian.standard g
        | Adjacency -> Laplacian.adjacency_shifted g
        | Signless -> Laplacian.signless_shifted g
        | Visit | Portfolio ->
            invalid_arg
              (Printf.sprintf "Solver.spectrum: method %s has no spectrum"
                 (Method.to_string method_)))
  in
  let spec =
    Graphio_obs.Span.with_ "solver.eigensolve" (fun () ->
        Eigen.smallest ~h ?dense_threshold ?tol ?seed ?filter_degree ?kernel
          ?init ?want_vectors ?on_iteration ?pool laplacian)
  in
  let scale =
    match method_ with
    | Normalized -> 1.0
    | Standard | Adjacency | Signless ->
        let dmax = Dag.max_out_degree g in
        if dmax = 0 then 1.0 else 1.0 /. float_of_int dmax
    | Visit | Portfolio -> 1.0
  in
  let offset = surrogate_offset ~method_ g in
  (* Eigenvectors are unaffected by the Theorem 5 scaling (L and L/dmax
     share them), so the warm-start donor block needs no rescaling. *)
  let values =
    if offset = 0.0 then
      Array.map (fun l -> scale *. Float.max l 0.0) spec.Eigen.values
    else
      Array.map
        (fun l -> scale *. Float.max (l +. offset) 0.0)
        spec.Eigen.values
  in
  (values, spec.Eigen.backend, spec.Eigen.stats, spec.Eigen.vectors)

let spectrum ?method_ ?h ?dense_threshold ?tol ?seed ?pool g =
  let eigenvalues, backend, _, _ =
    spectrum_full ?method_ ?h ?dense_threshold ?tol ?seed ?pool g
  in
  (eigenvalues, backend)

(* ------------------------------------------------------------------ *)
(* Closed-form dispatch tier                                           *)

(* When the graph is a recognized Section 5 family, the exact Laplacian
   spectrum comes from {!Graphio_spectra} and no eigensolve runs at all
   (zero matvecs).  [Standard] always applies (the closed forms are the
   standard [L] of the undirected support, scaled here by
   [1/max_out_degree] exactly as [spectrum_full] scales the numeric
   spectrum).  [Normalized] applies only when every vertex with outgoing
   edges shares one out-degree [d]: then [L~ = L/d] exactly; otherwise
   the query falls through to the numeric tier. *)
let closed_form_spectrum ~method_ ~h g =
  match
    Graphio_obs.Span.with_ "solver.recognize" (fun () ->
        Graphio_recognize.Recognize.recognize g)
  with
  | None -> None
  | Some family -> (
      let scale =
        match method_ with
        | Standard ->
            let dmax = Dag.max_out_degree g in
            Some (if dmax = 0 then 1.0 else 1.0 /. float_of_int dmax)
        | Normalized -> (
            match Graphio_recognize.Recognize.uniform_out_degree g with
            | Some d -> Some (1.0 /. float_of_int d)
            | None -> None)
        | Adjacency | Signless ->
            (* the Weyl surrogate offset is [delta - Delta] (twice that for
               signless); on a regular support it vanishes and the
               surrogate spectrum IS the closed-form standard spectrum
               under the Theorem-5 scaling.  Irregular recognized families
               (butterflies, paths, grids) fall through to numeric. *)
            if Dag.n_vertices g > 0 && min_degree g = Dag.max_degree g then begin
              let dmax = Dag.max_out_degree g in
              Some (if dmax = 0 then 1.0 else 1.0 /. float_of_int dmax)
            end
            else None
        | Visit | Portfolio -> None
      in
      match scale with
      | None -> None
      | Some scale ->
          let n = Dag.n_vertices g in
          let eigenvalues =
            Graphio_spectra.Multiset.smallest
              (Graphio_recognize.Recognize.spectrum family) ~h:(min h n)
            |> Array.map (fun l -> scale *. Float.max l 0.0)
          in
          Some (family, eigenvalues))

let record_closed_form ~family ~cache_hit =
  Graphio_obs.Metrics.incr c_closed_form;
  Graphio_obs.Log.emit "solver.closed_form"
    [
      ( "family",
        Graphio_obs.Jsonx.String (Graphio_recognize.Recognize.name family) );
      ("cache_hit", Graphio_obs.Jsonx.Bool cache_hit);
    ]

let bound_of_spectrum ?(h = 100) ?p ~spectrum ~scale ~n ~m () =
  if scale < 0.0 then invalid_arg "Solver.bound_of_spectrum: negative scale";
  let eigenvalues =
    Graphio_spectra.Multiset.smallest spectrum ~h:(min h n)
    |> Array.map (fun l -> scale *. Float.max l 0.0)
  in
  Spectral_bound.compute ~n ~m ?p ~eigenvalues ()

(* Above this many floor segments per run we fall back to the O(1)-per-run
   heuristic: ⌊n/(kp)⌋ takes ~2√(n/p) distinct values, so the cutoff keeps
   the exact path under a few thousand evaluations per run while the
   closed-form giants (butterfly l = 32 has n ≈ 1.4e11) stay cheap. *)
let exact_segment_limit = 1_000_000

let bound_of_spectrum_all_k ?(p = 1) ~spectrum ~scale ~n ~m () =
  if scale < 0.0 then invalid_arg "Solver.bound_of_spectrum_all_k: negative scale";
  if n < 0 then invalid_arg "Solver.bound_of_spectrum_all_k: negative n";
  if m < 0 then invalid_arg "Solver.bound_of_spectrum_all_k: negative m";
  if p < 1 then invalid_arg "Solver.bound_of_spectrum_all_k: p must be >= 1";
  let runs = (spectrum : Graphio_spectra.Multiset.t :> (float * int) array) in
  let k_max = min n (Graphio_spectra.Multiset.total spectrum) in
  (* exact objective at one k (prefix sum supplied by the caller) *)
  let value ~prefix_sum k =
    let segments = float_of_int (n / (k * p)) in
    (segments *. prefix_sum) -. (2.0 *. float_of_int (k * m))
  in
  let best_k = ref 0 and best_raw = ref neg_infinity in
  let consider ~base_sum ~base_count ~lambda k =
    if k >= 2 && k <= k_max && k > base_count then begin
      let prefix_sum = base_sum +. (float_of_int (k - base_count) *. lambda) in
      let v = value ~prefix_sum k in
      if v > !best_raw then begin
        best_raw := v;
        best_k := k
      end
    end
  in
  let exact = n / p <= exact_segment_limit in
  let base_sum = ref 0.0 and base_count = ref 0 in
  Array.iter
    (fun (raw_lambda, mult) ->
      let lambda = scale *. Float.max raw_lambda 0.0 in
      let run_end = !base_count + mult in
      let lo = max 2 (!base_count + 1) in
      let hi = min run_end k_max in
      let consider = consider ~base_sum:!base_sum ~base_count:!base_count ~lambda in
      if exact then begin
        (* Within a floor segment ⌊n/(kp)⌋ = q the objective is linear in
           k, so its maximum over the run sits at a segment endpoint;
           walking the segments intersecting [lo, hi] makes this run's
           maximization exact.  The floor function has O(√(n/p)) segments
           total, so the whole scan is cheap under the gate above. *)
        let k = ref lo in
        while !k <= hi do
          consider !k;
          let q = n / (!k * p) in
          if q = 0 then begin
            (* beyond n/p the objective is just -2kM, decreasing in k *)
            k := hi + 1
          end
          else begin
            let seg_end = min hi (n / (p * q)) in
            consider seg_end;
            k := seg_end + 1
          end
        done
      end
      else if lo <= hi then begin
        (* run boundaries (k = 2 may land mid-run when the first run is a
           multiplicity cluster, hence the clamp in [lo]) *)
        consider lo;
        consider hi;
        (* interior stationary point of the continuous relaxation
           f(k) = (n/(kp)) (S0 + (k - K0) L) - 2kM, maximised at
           k* = sqrt(n (K0 L - S0) / (2 M p)) when that quantity is
           positive *)
        let num =
          float_of_int n *. ((float_of_int !base_count *. lambda) -. !base_sum)
        in
        if num > 0.0 && m > 0 then begin
          let k_star = sqrt (num /. (2.0 *. float_of_int (m * p))) in
          let k0 = int_of_float k_star in
          for k = max lo (k0 - 2) to min hi (k0 + 2) do
            consider k
          done
        end
      end;
      base_sum := !base_sum +. (float_of_int mult *. lambda);
      base_count := run_end)
    runs;
  let best_raw = if !best_k = 0 then 0.0 else !best_raw in
  {
    Spectral_bound.bound = Float.max 0.0 best_raw;
    best_k = !best_k;
    best_raw;
    n;
    m;
    p;
    h = k_max;
  }

(* ------------------------------------------------------------------ *)
(* Spectrum cache plumbing                                             *)

let method_char = Method.cache_char

(* [Auto] is the solver default and its tuner is deterministic, so it
   shares the canonical digest slot ([None]); only a pinned [Fixed d]
   separates cache entries. *)
let degree_digest = function
  | None | Some Filtered.Auto -> None
  | Some (Filtered.Fixed d) -> Some d

let spectrum_key ?dense_threshold ?tol ?seed ?filter_degree ~h ~method_ dag =
  {
    Graphio_cache.Spectrum.fingerprint = Dag.fingerprint dag;
    method_tag = method_char method_;
    h;
    params =
      Graphio_cache.Spectrum.params_digest ~dense_threshold ~tol ~seed
        ~filter_degree:(degree_digest filter_degree);
  }

let ritz_key_of (key : Graphio_cache.Spectrum.key) : Graphio_cache.Spectrum.ritz_key =
  {
    fingerprint = key.Graphio_cache.Spectrum.fingerprint;
    method_tag = key.Graphio_cache.Spectrum.method_tag;
    params = key.Graphio_cache.Spectrum.params;
  }

(* Closed-form entries live under their own keys — the uppercase method
   tag and a canonical parameter digest (the closed form depends on none
   of the numeric solver knobs).  A [--no-closed-form] run therefore never
   reads bits a closed-form run cached, and vice versa: the differential
   battery's two tiers stay independent even under a shared disk cache. *)
let closed_form_key ~h ~method_ dag =
  {
    Graphio_cache.Spectrum.fingerprint = Dag.fingerprint dag;
    method_tag = Char.uppercase_ascii (method_char method_);
    h;
    params =
      Graphio_cache.Spectrum.params_digest ~dense_threshold:None ~tol:None
        ~seed:None ~filter_degree:None;
  }

let resolve_cache = function
  | Some cache -> cache
  | None ->
      Option.value
        (Graphio_cache.Spectrum.ambient ())
        ~default:Graphio_cache.Spectrum.disabled

(* Spectrum through the two-tier cache: a hit returns the cached
   eigenvalue array (bitwise identical to the solve that produced it —
   the disk codec round-trips IEEE bit patterns); a miss solves and
   populates both tiers.  [from_cache] tells the caller whether an
   eigensolve was paid.

   With [warm_start], a miss additionally consults the Ritz store under
   the h-less key (fingerprint, method, params): a donor block from a
   solve at a different [h] seeds the new solve's initial subspace
   (truncated or padded by Filtered), and the new solve's locked Ritz
   vectors are stored back under keep-max-h.  A warm-started solve
   converges to the same spectrum within tolerance but takes a different
   FP path than a cold one — the documented, flag-gated relaxation of
   the bitwise-determinism contract (docs/PERFORMANCE.md). *)
let spectrum_cached ~cache ?pool ?on_iteration ~h ?dense_threshold ?tol ?seed
    ?filter_degree ?kernel ?(warm_start = false) ?(closed_form = true) ~method_
    dag =
  if Dag.n_vertices dag = 0 then ([||], Eigen.Dense, None, false, Numeric, false)
  else
    match
      if closed_form then closed_form_spectrum ~method_ ~h dag else None
    with
    | Some (family, eigenvalues) -> (
        (* the closed form is recomputed (it is cheap and deterministic);
           the cache is still consulted under the closed-form key so a
           repeat query reports a cache hit and a warm disk tier keeps
           replies bitwise-stable across processes *)
        let key = closed_form_key ~h ~method_ dag in
        match Graphio_cache.Spectrum.find cache key with
        | Some e ->
            record_closed_form ~family ~cache_hit:true;
            ( e.Graphio_cache.Spectrum.eigenvalues,
              Eigen.Dense,
              None,
              true,
              Closed_form family,
              false )
        | None ->
            Graphio_cache.Spectrum.add cache key
              { Graphio_cache.Spectrum.eigenvalues; dense = true };
            record_closed_form ~family ~cache_hit:false;
            (eigenvalues, Eigen.Dense, None, false, Closed_form family, false))
    | None -> begin
    let key = spectrum_key ?dense_threshold ?tol ?seed ?filter_degree ~h ~method_ dag in
    let log_spectrum ~cache_hit ~warm =
      if Graphio_obs.Log.enabled Graphio_obs.Log.Debug then
        Graphio_obs.Log.emit ~level:Graphio_obs.Log.Debug "solver.spectrum"
          [
            ( "fingerprint",
              Graphio_obs.Jsonx.String
                (Printf.sprintf "%016Lx" key.Graphio_cache.Spectrum.fingerprint)
            );
            ( "method",
              Graphio_obs.Jsonx.String (String.make 1 (method_char method_)) );
            ("h", Graphio_obs.Jsonx.Int h);
            ("cache_hit", Graphio_obs.Jsonx.Bool cache_hit);
            ("warm_start", Graphio_obs.Jsonx.Bool warm);
          ]
    in
    match Graphio_cache.Spectrum.find cache key with
    | Some e ->
        log_spectrum ~cache_hit:true ~warm:false;
        ( e.Graphio_cache.Spectrum.eigenvalues,
          (if e.Graphio_cache.Spectrum.dense then Eigen.Dense
           else Eigen.Sparse_filtered),
          None,
          true,
          Numeric,
          false )
    | None ->
        let rkey = ritz_key_of key in
        let n = Dag.n_vertices dag in
        let init, warm =
          if warm_start then
            match Graphio_cache.Spectrum.find_ritz cache rkey with
            | Some r when r.Graphio_cache.Spectrum.n = n ->
                Graphio_obs.Metrics.incr c_warm_hits;
                (Some r.Graphio_cache.Spectrum.vectors, true)
            | _ -> (None, false)
          else (None, false)
        in
        let eigenvalues, backend, stats, vectors =
          spectrum_full ~method_ ~h ?dense_threshold ?tol ?seed ?filter_degree
            ?kernel ?init ~want_vectors:warm_start ?on_iteration ?pool dag
        in
        Graphio_cache.Spectrum.add cache key
          { Graphio_cache.Spectrum.eigenvalues; dense = backend = Eigen.Dense };
        (if warm_start then
           match (vectors, backend) with
           | Some vs, Eigen.Sparse_filtered when Array.length vs > 0 ->
               Graphio_cache.Spectrum.add_ritz cache rkey
                 { Graphio_cache.Spectrum.n; h = Array.length vs; vectors = vs }
           | _ -> ());
        log_spectrum ~cache_hit:false ~warm;
        (eigenvalues, backend, stats, false, Numeric, warm)
      end

(* ------------------------------------------------------------------ *)
(* Component decomposition                                             *)

(* The Laplacian of a disjoint union is block-diagonal, so its spectrum is
   the multiset union of the per-component spectra.  Each weakly-connected
   component is recognized, solved and cached on its own; [u_extra]
   converts the component's own Theorem-5 scaling [1/d_comp] to the
   union's [1/d_union], so per-component cache entries stay reusable
   across different unions.  Merging the scaled spectra and running one
   k-maximization over the union's [n] reproduces the whole-graph bound
   to eigensolver tolerance (exactly, for closed-form components). *)
type unit_ = { u_dag : Dag.t; u_extra : float }

let split_units ~method_ parts =
  let extra =
    match method_ with
    | Normalized -> fun _ -> 1.0
    | Standard | Adjacency | Signless ->
        (* the rescale is sound for the surrogate variants too: each
           component's scaled surrogate satisfies [s_c <= lambda(L_c)/d_c],
           so [s_c * d_c/d_union <= lambda(L_c)/d_union], and the merged
           multiset stays a pointwise lower bound on the union spectrum
           under the union's Theorem-5 scaling *)
        let d_union =
          Array.fold_left (fun acc g -> max acc (Dag.max_out_degree g)) 0 parts
        in
        fun g ->
          let d = Dag.max_out_degree g in
          if d = 0 || d = d_union then 1.0
          else float_of_int d /. float_of_int d_union
    | Visit | Portfolio ->
        invalid_arg "Solver.split_units: not a spectral method"
  in
  Array.map (fun g -> { u_dag = g; u_extra = extra g }) parts

(* one logical evaluation: the component units whose spectra it merges *)
type eval_item = {
  it_units : unit_ array;
  it_n : int;
  it_m : int;
  it_p : int option;
  it_method : method_;
}

let parts_of_dag ~decompose g =
  if decompose && Dag.n_vertices g > 0 then begin
    let split = Component.split g in
    (* connected graphs keep the original value (identical physical
       arrays, so the undecomposed pipeline is bit-for-bit unchanged) *)
    if Array.length split > 1 then Array.map fst split else [| g |]
  end
  else [| g |]

let reflatten_parts parts =
  (* a caller-supplied part may itself be disconnected (an external
     decomposer owes us no guarantee), so re-split each one — cheap next
     to any eigensolve, and it unlocks per-component closed-form
     recognition and cache sharing *)
  Array.concat
    (Array.to_list
       (Array.map
          (fun g ->
            if Dag.n_vertices g = 0 then [||]
            else
              let split = Component.split g in
              if Array.length split > 1 then Array.map fst split
              else [| g |])
          parts))

let c_decompositions = Graphio_obs.Metrics.counter "core.solver.decompositions"

(* Evaluate items against the cache.  All units of all items are flattened
   and deduplicated by spectrum key before any eigensolve — an M-sweep
   over one graph and the repeated components of a disjoint union share
   work through the same mechanism — and distinct spectra solve
   concurrently on [pool] (a single distinct spectrum instead gives the
   pool to its matvecs).  Returns per-item [(outcome, cache_hit, wall_s)]
   plus the flat unit count and the number of spectra not answered from
   cache, for the batch hit/miss counters. *)
let eval_items ~cache ?pool ?on_iteration ~h ?dense_threshold ?tol ?seed
    ?filter_degree ?kernel ?warm_start ?(closed_form = true) items =
  let n_items = Array.length items in
  let offsets = Array.make (n_items + 1) 0 in
  for i = 0 to n_items - 1 do
    offsets.(i + 1) <- offsets.(i) + Array.length items.(i).it_units
  done;
  let n_flat = offsets.(n_items) in
  let flat_units =
    Array.concat (Array.to_list (Array.map (fun it -> it.it_units) items))
  in
  let flat_method =
    Array.concat
      (Array.to_list
         (Array.map
            (fun it -> Array.map (fun _ -> it.it_method) it.it_units)
            items))
  in
  let keys =
    Array.mapi
      (fun i u ->
        spectrum_key ?dense_threshold ?tol ?seed ?filter_degree ~h
          ~method_:flat_method.(i) u.u_dag)
      flat_units
  in
  let rep_of_key = Hashtbl.create (max n_flat 16) in
  let reps = ref [] in
  Array.iteri
    (fun i k ->
      if not (Hashtbl.mem rep_of_key k) then begin
        Hashtbl.add rep_of_key k i;
        reps := i :: !reps
      end)
    keys;
  let reps = Array.of_list (List.rev !reps) in
  let n_reps = Array.length reps in
  let spectra =
    Array.make n_reps ([||], Eigen.Dense, None, false, Numeric, false, 0.0)
  in
  let solve ?pool r =
    let u = flat_units.(reps.(r)) in
    let t0 = Graphio_obs.Clock.now_ns () in
    let eigenvalues, backend, stats, from_cache, tier, warm =
      spectrum_cached ~cache ?pool ?on_iteration ~h ?dense_threshold ?tol
        ?seed ?filter_degree ?kernel ?warm_start ~closed_form
        ~method_:flat_method.(reps.(r)) u.u_dag
    in
    spectra.(r) <-
      ( eigenvalues,
        backend,
        stats,
        from_cache,
        tier,
        warm,
        Graphio_obs.Clock.elapsed_s t0 )
  in
  (match pool with
  | Some pool when n_reps > 1 ->
      Graphio_par.Pool.parallel_for ~chunk:1 pool ~lo:0 ~hi:n_reps (fun r ->
          solve r)
  | Some pool ->
      for r = 0 to n_reps - 1 do
        solve ~pool r
      done
  | None ->
      for r = 0 to n_reps - 1 do
        solve r
      done);
  let misses = ref 0 in
  Array.iter
    (fun (_, _, _, from_cache, _, _, _) -> if not from_cache then incr misses)
    spectra;
  let slot_of_rep = Hashtbl.create (max n_reps 16) in
  Array.iteri (fun slot r -> Hashtbl.add slot_of_rep r slot) reps;
  (* Finalize every item in input order: scale each unit's (physically
     shared) spectrum, merge, and run the cheap k-maximization once over
     the union.  The eigensolve wall time is attributed to the item whose
     unit actually paid for it (the first flat occurrence of each key). *)
  let finalize i =
    let it = items.(i) in
    let tstart = Graphio_obs.Clock.now_ns () in
    let nu = Array.length it.it_units in
    if nu = 0 then
      ( {
          result =
            Spectral_bound.compute ~n:it.it_n ~m:it.it_m ?p:it.it_p
              ~eigenvalues:[||] ();
          method_ = it.it_method;
          backend = Eigen.Dense;
          eigenvalues = [||];
          solve_stats = None;
          tier = Numeric;
          warm_start = false;
          components = [||];
          methods = [||];
          winner = None;
        },
        false,
        Graphio_obs.Clock.elapsed_s tstart )
    else begin
      let owned_solve_s = ref 0.0 in
      let urs =
        Array.init nu (fun k ->
            let gi = offsets.(i) + k in
            let rep = Hashtbl.find rep_of_key keys.(gi) in
            let ev, backend, stats, from_cache, tier, warm, solve_s =
              spectra.(Hashtbl.find slot_of_rep rep)
            in
            if rep = gi then owned_solve_s := !owned_solve_s +. solve_s;
            (ev, backend, stats, rep <> gi || from_cache, tier, warm))
      in
      let decomposed = nu > 1 in
      let ev0, backend0, stats0, hit0, tier0, warm0 = urs.(0) in
      let eigenvalues =
        if not decomposed then begin
          let extra = it.it_units.(0).u_extra in
          if extra = 1.0 then ev0 else Array.map (fun l -> extra *. l) ev0
        end
        else begin
          let merged =
            Array.concat
              (Array.to_list
                 (Array.mapi
                    (fun k (ev, _, _, _, _, _) ->
                      let extra = it.it_units.(k).u_extra in
                      if extra = 1.0 then ev
                      else Array.map (fun l -> extra *. l) ev)
                    urs))
          in
          Array.sort Float.compare merged;
          Array.sub merged 0 (min (min h it.it_n) (Array.length merged))
        end
      in
      let result =
        Spectral_bound.compute ~n:it.it_n ~m:it.it_m ?p:it.it_p ~eigenvalues ()
      in
      let backend =
        if not decomposed then backend0
        else if
          Array.exists
            (fun (_, b, _, _, _, _) -> b = Eigen.Sparse_filtered)
            urs
        then Eigen.Sparse_filtered
        else Eigen.Dense
      in
      let tier =
        if not decomposed then tier0
        else if
          Array.exists
            (fun (_, _, _, _, t, _) ->
              match t with Numeric -> true | Closed_form _ -> false)
            urs
        then Numeric
        else tier0
      in
      let solve_stats = if decomposed then None else stats0 in
      let warm =
        if not decomposed then warm0
        else Array.exists (fun (_, _, _, _, _, w) -> w) urs
      in
      let cache_hit =
        if not decomposed then hit0
        else Array.for_all (fun (_, _, _, ch, _, _) -> ch) urs
      in
      let components =
        if not decomposed then [||]
        else
          Array.mapi
            (fun k (_, b, _, ch, t, w) ->
              {
                comp_n = Dag.n_vertices it.it_units.(k).u_dag;
                comp_edges = Dag.n_edges it.it_units.(k).u_dag;
                comp_tier = t;
                comp_backend = b;
                comp_cache_hit = ch;
                comp_warm_start = w;
              })
            urs
      in
      if decomposed then Graphio_obs.Metrics.incr c_decompositions;
      ( {
          result;
          method_ = it.it_method;
          backend;
          eigenvalues;
          solve_stats;
          tier;
          warm_start = warm;
          components;
          methods = [||];
          winner = None;
        },
        cache_hit,
        Graphio_obs.Clock.elapsed_s tstart +. !owned_solve_s )
    end
  in
  (Array.init n_items finalize, n_flat, !misses)

(* ------------------------------------------------------------------ *)
(* Portfolio request layer                                             *)

(* A request is one user-level bound query: its (decomposed) parts plus
   the concrete member methods to evaluate.  Non-portfolio queries are
   single-member requests that reduce to exactly the old pipeline. *)
type request = {
  rq_parts : Dag.t array;
  rq_n : int;
  rq_m : int;
  rq_p : int option;
  rq_method : method_;
  rq_members : method_ array;
}

let members_of ~portfolio method_ =
  match (method_ : method_) with
  | Portfolio ->
      let ms =
        match portfolio with
        | None -> Method.default_portfolio
        | Some ms ->
            if ms = [] then
              invalid_arg "Solver: empty portfolio member list";
            if List.mem Portfolio ms then
              invalid_arg "Solver: portfolio cannot contain itself";
            (* canonicalize: dedup, in the fixed [Method.concrete] order
               (also the deterministic winner tie-break order) *)
            List.filter (fun m -> List.mem m ms) Method.concrete
      in
      Array.of_list ms
  | m -> [| m |]

let request_of_dag ~decompose ~portfolio ~method_ ~m ~p g =
  {
    rq_parts = parts_of_dag ~decompose g;
    rq_n = Dag.n_vertices g;
    rq_m = m;
    rq_p = p;
    rq_method = method_;
    rq_members = members_of ~portfolio method_;
  }

let request_of_parts ~portfolio ~method_ ~m ~p parts =
  let parts = reflatten_parts parts in
  {
    rq_parts = parts;
    rq_n = Array.fold_left (fun acc g -> acc + Dag.n_vertices g) 0 parts;
    rq_m = m;
    rq_p = p;
    rq_method = method_;
    rq_members = members_of ~portfolio method_;
  }

let h_visit_seconds = Graphio_obs.Metrics.histogram "core.solver.visit_seconds"

(* The visit bound of a (possibly decomposed) request: per-component
   bounds summed — sound because restricting a schedule of the union to
   one component is a feasible schedule of it, so
   [J*(union) >= sum_i J*(G_i)].  On [p] processors the aggregate fast
   memory is [p * M], so the counted-cut excess uses that capacity. *)
let visit_outcome ~profile_of ~n ~m ~p parts =
  let m_eff = match p with None -> m | Some p -> m * p in
  let total =
    Array.fold_left
      (fun acc g ->
        acc + Visit_bound.bound_of_profile (profile_of g) ~m:m_eff)
      0 parts
  in
  let b = float_of_int total in
  let result =
    {
      Spectral_bound.bound = b;
      best_k = 0;
      best_raw = b;
      n;
      m;
      p = (match p with None -> 1 | Some p -> p);
      h = 0;
    }
  in
  let components =
    if Array.length parts <= 1 then [||]
    else
      Array.map
        (fun g ->
          {
            comp_n = Dag.n_vertices g;
            comp_edges = Dag.n_edges g;
            comp_tier = Numeric;
            comp_backend = Eigen.Dense;
            comp_cache_hit = false;
            comp_warm_start = false;
          })
        parts
  in
  {
    result;
    method_ = Visit;
    backend = Eigen.Dense;
    eigenvalues = [||];
    solve_stats = None;
    tier = Numeric;
    warm_start = false;
    components;
    methods = [||];
    winner = None;
  }

let assemble_portfolio rq member_results =
  let nmem = Array.length rq.rq_members in
  let wi = ref 0 in
  for i = 1 to nmem - 1 do
    let o, _, _ = member_results.(i) in
    let ow, _, _ = member_results.(!wi) in
    (* strict: ties keep the earliest member in canonical order *)
    if o.result.Spectral_bound.bound > ow.result.Spectral_bound.bound then
      wi := i
  done;
  let wo, _, _ = member_results.(!wi) in
  let methods =
    Array.map2
      (fun member (o, ch, w) ->
        {
          mv_method = member;
          mv_bound = o.result.Spectral_bound.bound;
          mv_best_k = o.result.Spectral_bound.best_k;
          mv_best_raw = o.result.Spectral_bound.best_raw;
          mv_tier = o.tier;
          mv_cache_hit = ch;
          mv_warm_start = o.warm_start;
          mv_wall_s = w;
        })
      rq.rq_members member_results
  in
  (* portfolio-level cache_hit: every spectral member answered from
     cache (the visit bound is recomputed by design — it depends on M
     and lives outside the spectrum cache) *)
  let cache_hit =
    let any = ref false and all = ref true in
    Array.iteri
      (fun i member ->
        if Method.is_spectral member then begin
          any := true;
          let _, ch, _ = member_results.(i) in
          if not ch then all := false
        end)
      rq.rq_members;
    !any && !all
  in
  let wall =
    Array.fold_left (fun acc (_, _, w) -> acc +. w) 0.0 member_results
  in
  ( { wo with method_ = Portfolio; winner = Some rq.rq_members.(!wi); methods },
    cache_hit,
    wall )

(* Evaluate requests: every spectral member of every request becomes one
   {!eval_item}, and they all share a single {!eval_items} pass — so the
   members of one portfolio query, like the jobs of one batch, dedup
   their eigensolves through the flat key table.  Visit members are
   evaluated combinatorially with per-fingerprint profile memoization
   (the profile is M-independent, so an M-sweep pays for its flow
   computations once). *)
let eval_requests ~cache ?pool ?on_iteration ~h ?dense_threshold ?tol ?seed
    ?filter_degree ?kernel ?warm_start ?(closed_form = true) reqs =
  let items = ref [] and backptr = ref [] in
  Array.iteri
    (fun ri rq ->
      Array.iteri
        (fun mi member ->
          if Method.is_spectral member then begin
            items :=
              {
                it_units = split_units ~method_:member rq.rq_parts;
                it_n = rq.rq_n;
                it_m = rq.rq_m;
                it_p = rq.rq_p;
                it_method = member;
              }
              :: !items;
            backptr := (ri, mi) :: !backptr
          end)
        rq.rq_members)
    reqs;
  let items = Array.of_list (List.rev !items) in
  let backptr = Array.of_list (List.rev !backptr) in
  let spectral_results, n_flat, misses =
    eval_items ~cache ?pool ?on_iteration ~h ?dense_threshold ?tol ?seed
      ?filter_degree ?kernel ?warm_start ~closed_form items
  in
  let by_slot = Hashtbl.create 16 in
  Array.iteri
    (fun i bp -> Hashtbl.replace by_slot bp spectral_results.(i))
    backptr;
  let profile_memo = Hashtbl.create 16 in
  let profile_of g =
    let fp = Dag.fingerprint g in
    match Hashtbl.find_opt profile_memo fp with
    | Some prof -> prof
    | None ->
        let prof =
          Graphio_obs.Span.with_ "solver.visit_profile" (fun () ->
              Graphio_obs.Metrics.time h_visit_seconds (fun () ->
                  Visit_bound.profile g))
        in
        Hashtbl.add profile_memo fp prof;
        prof
  in
  let results =
    Array.mapi
      (fun ri rq ->
        let member_results =
          Array.mapi
            (fun mi member ->
              if Method.is_spectral member then Hashtbl.find by_slot (ri, mi)
              else begin
                let t0 = Graphio_obs.Clock.now_ns () in
                let o =
                  visit_outcome ~profile_of ~n:rq.rq_n ~m:rq.rq_m ~p:rq.rq_p
                    rq.rq_parts
                in
                (o, false, Graphio_obs.Clock.elapsed_s t0)
              end)
            rq.rq_members
        in
        match rq.rq_method with
        | Portfolio -> assemble_portfolio rq member_results
        | _ -> member_results.(0))
      reqs
  in
  (results, n_flat, misses)

let bound ?(method_ = Normalized) ?portfolio ?(h = 100) ?p ?dense_threshold
    ?tol ?seed ?filter_degree ?kernel ?on_iteration ?pool
    ?(closed_form = true) ?(decompose = true) g ~m =
  Graphio_obs.Metrics.time h_bound_seconds (fun () ->
      Graphio_obs.Span.with_ "solver.bound" (fun () ->
          Graphio_obs.Metrics.incr c_bounds;
          let rq = request_of_dag ~decompose ~portfolio ~method_ ~m ~p g in
          (* [disabled], not [ambient]: the plain entry point never touches
             a cache (and never moves its metrics) — in-flight dedup of
             repeated components still happens through the flat key table *)
          let results, _, _ =
            eval_requests ~cache:Graphio_cache.Spectrum.disabled ?pool
              ?on_iteration ~h ?dense_threshold ?tol ?seed ?filter_degree
              ?kernel ~closed_form [| rq |]
          in
          let outcome, _, _ = results.(0) in
          outcome))

let bound_parts ?(cache = Graphio_cache.Spectrum.disabled) ?pool
    ?(method_ = Normalized) ?portfolio ?(h = 100) ?p ?dense_threshold ?tol
    ?seed ?filter_degree ?kernel ?warm_start ?on_iteration
    ?(closed_form = true) parts ~m =
  Graphio_obs.Metrics.time h_bound_seconds (fun () ->
      Graphio_obs.Span.with_ "solver.bound" (fun () ->
          Graphio_obs.Metrics.incr c_bounds;
          let rq = request_of_parts ~portfolio ~method_ ~m ~p parts in
          let results, _, _ =
            eval_requests ~cache ?pool ?on_iteration ~h ?dense_threshold ?tol
              ?seed ?filter_degree ?kernel ?warm_start ~closed_form [| rq |]
          in
          let outcome, _, _ = results.(0) in
          outcome))

(* ------------------------------------------------------------------ *)
(* Batch driver                                                        *)

type batch_job = {
  dag : Dag.t;
  m : int;
  p : int option;
  method_ : method_;
}

let job ?(method_ = Normalized) ?p dag ~m = { dag; m; p; method_ }

type batch_result = {
  job : batch_job;
  outcome : outcome;
  cache_hit : bool;
  wall_s : float;
}

let c_batch_jobs = Graphio_obs.Metrics.counter "core.solver.batch_jobs"
let c_batch_hits = Graphio_obs.Metrics.counter "core.solver.batch_cache_hits"
let c_batch_misses = Graphio_obs.Metrics.counter "core.solver.batch_cache_misses"
let h_batch_job_seconds =
  Graphio_obs.Metrics.histogram "core.solver.batch_job_seconds"

let bound_batch ?cache ?pool ?portfolio ?(h = 100) ?dense_threshold ?tol ?seed
    ?filter_degree ?kernel ?warm_start ?(closed_form = true)
    ?(decompose = true) jobs =
  Graphio_obs.Span.with_ "solver.bound_batch" (fun () ->
      let cache = resolve_cache cache in
      (* In-batch dedup happens on the flat unit table inside
         {!eval_items}: jobs that share (graph, method, h, params) — the
         typical M- or p-sweep, or the spectral members of portfolio
         jobs — and the repeated components of decomposed jobs pay for
         each eigensolve at most once and share one physical eigenvalue
         array.  Keys hash the graph structure ({!Dag.fingerprint}), so
         structurally equal graphs built independently still share.
         Output is deterministic regardless of pool presence, pool size,
         or cache warmth (bitwise-reproducible parallel matvec, bit-exact
         cache codec). *)
      let reqs =
        Array.map
          (fun j ->
            request_of_dag ~decompose ~portfolio ~method_:j.method_ ~m:j.m
              ~p:j.p j.dag)
          jobs
      in
      let results, n_flat, misses =
        eval_requests ~cache ?pool ~h ?dense_threshold ?tol ?seed
          ?filter_degree ?kernel ?warm_start ~closed_form reqs
      in
      Graphio_obs.Metrics.add c_batch_jobs (Array.length jobs);
      Graphio_obs.Metrics.add c_batch_misses misses;
      Graphio_obs.Metrics.add c_batch_hits (n_flat - misses);
      Array.mapi
        (fun i j ->
          let outcome, cache_hit, wall_s = results.(i) in
          Graphio_obs.Metrics.observe h_batch_job_seconds wall_s;
          { job = j; outcome; cache_hit; wall_s })
        jobs)

let bound_cached ?cache ?pool ?portfolio ?(h = 100) ?dense_threshold ?tol
    ?seed ?filter_degree ?kernel ?warm_start ?on_iteration
    ?(closed_form = true) ?(decompose = true) job =
  Graphio_obs.Span.with_ "solver.bound_cached" (fun () ->
      Graphio_obs.Metrics.incr c_bounds;
      let cache = resolve_cache cache in
      let t0 = Graphio_obs.Clock.now_ns () in
      let rq =
        request_of_dag ~decompose ~portfolio ~method_:job.method_ ~m:job.m
          ~p:job.p job.dag
      in
      let results, _, _ =
        eval_requests ~cache ?pool ?on_iteration ~h ?dense_threshold ?tol
          ?seed ?filter_degree ?kernel ?warm_start ~closed_form [| rq |]
      in
      let outcome, cache_hit, _ = results.(0) in
      let wall_s = Graphio_obs.Clock.elapsed_s t0 in
      Graphio_obs.Metrics.observe h_bound_seconds wall_s;
      let fields =
        [
          ("n", Graphio_obs.Jsonx.Int (Dag.n_vertices job.dag));
          ("m", Graphio_obs.Jsonx.Int job.m);
          ( "bound",
            Graphio_obs.Jsonx.Float outcome.result.Spectral_bound.bound );
          ("cache_hit", Graphio_obs.Jsonx.Bool cache_hit);
          ("tier", Graphio_obs.Jsonx.String (tier_name outcome.tier));
          ("warm_start", Graphio_obs.Jsonx.Bool outcome.warm_start);
          ("wall_s", Graphio_obs.Jsonx.Float wall_s);
        ]
      in
      let fields =
        if Array.length outcome.components = 0 then fields
        else
          fields
          @ [
              ( "components",
                Graphio_obs.Jsonx.Int (Array.length outcome.components) );
            ]
      in
      Graphio_obs.Log.emit "solver.bound" fields;
      { job; outcome; cache_hit; wall_s })
