open Graphio_graph
open Graphio_la

type method_ = Normalized | Standard

type outcome = {
  result : Spectral_bound.t;
  method_ : method_;
  backend : Eigen.backend;
  eigenvalues : float array;
  solve_stats : Eigen.stats option;
}

let c_bounds = Graphio_obs.Metrics.counter "core.solver.bounds"
let h_bound_seconds = Graphio_obs.Metrics.histogram "core.solver.bound_seconds"

let spectrum_full ?(method_ = Normalized) ?(h = 100) ?dense_threshold ?tol ?seed
    ?on_iteration g =
  let laplacian =
    Graphio_obs.Span.with_ "solver.laplacian" (fun () ->
        match method_ with
        | Normalized -> Laplacian.normalized g
        | Standard -> Laplacian.standard g)
  in
  let spec =
    Graphio_obs.Span.with_ "solver.eigensolve" (fun () ->
        Eigen.smallest ~h ?dense_threshold ?tol ?seed ?on_iteration laplacian)
  in
  let scale =
    match method_ with
    | Normalized -> 1.0
    | Standard ->
        let dmax = Dag.max_out_degree g in
        if dmax = 0 then 1.0 else 1.0 /. float_of_int dmax
  in
  ( Array.map (fun l -> scale *. Float.max l 0.0) spec.Eigen.values,
    spec.Eigen.backend,
    spec.Eigen.stats )

let spectrum ?method_ ?h ?dense_threshold ?tol ?seed g =
  let eigenvalues, backend, _ = spectrum_full ?method_ ?h ?dense_threshold ?tol ?seed g in
  (eigenvalues, backend)

let bound ?(method_ = Normalized) ?(h = 100) ?p ?dense_threshold ?tol ?seed
    ?on_iteration g ~m =
  Graphio_obs.Metrics.time h_bound_seconds (fun () ->
      Graphio_obs.Span.with_ "solver.bound" (fun () ->
          Graphio_obs.Metrics.incr c_bounds;
          let n = Dag.n_vertices g in
          if n = 0 then
            {
              result = Spectral_bound.compute ~n:0 ~m ~eigenvalues:[||] ();
              method_;
              backend = Eigen.Dense;
              eigenvalues = [||];
              solve_stats = None;
            }
          else begin
            let eigenvalues, backend, solve_stats =
              spectrum_full ~method_ ~h ?dense_threshold ?tol ?seed ?on_iteration g
            in
            let result =
              Graphio_obs.Span.with_ "solver.maximize" (fun () ->
                  Spectral_bound.compute ~n ~m ?p ~eigenvalues ())
            in
            { result; method_; backend; eigenvalues; solve_stats }
          end))

let bound_of_spectrum ?(h = 100) ?p ~spectrum ~scale ~n ~m () =
  if scale < 0.0 then invalid_arg "Solver.bound_of_spectrum: negative scale";
  let eigenvalues =
    Graphio_spectra.Multiset.smallest spectrum ~h:(min h n)
    |> Array.map (fun l -> scale *. Float.max l 0.0)
  in
  Spectral_bound.compute ~n ~m ?p ~eigenvalues ()

(* Above this many floor segments per run we fall back to the O(1)-per-run
   heuristic: ⌊n/(kp)⌋ takes ~2√(n/p) distinct values, so the cutoff keeps
   the exact path under a few thousand evaluations per run while the
   closed-form giants (butterfly l = 32 has n ≈ 1.4e11) stay cheap. *)
let exact_segment_limit = 1_000_000

let bound_of_spectrum_all_k ?(p = 1) ~spectrum ~scale ~n ~m () =
  if scale < 0.0 then invalid_arg "Solver.bound_of_spectrum_all_k: negative scale";
  if n < 0 then invalid_arg "Solver.bound_of_spectrum_all_k: negative n";
  if m < 0 then invalid_arg "Solver.bound_of_spectrum_all_k: negative m";
  if p < 1 then invalid_arg "Solver.bound_of_spectrum_all_k: p must be >= 1";
  let runs = (spectrum : Graphio_spectra.Multiset.t :> (float * int) array) in
  let k_max = min n (Graphio_spectra.Multiset.total spectrum) in
  (* exact objective at one k (prefix sum supplied by the caller) *)
  let value ~prefix_sum k =
    let segments = float_of_int (n / (k * p)) in
    (segments *. prefix_sum) -. (2.0 *. float_of_int (k * m))
  in
  let best_k = ref 0 and best_raw = ref neg_infinity in
  let consider ~base_sum ~base_count ~lambda k =
    if k >= 2 && k <= k_max && k > base_count then begin
      let prefix_sum = base_sum +. (float_of_int (k - base_count) *. lambda) in
      let v = value ~prefix_sum k in
      if v > !best_raw then begin
        best_raw := v;
        best_k := k
      end
    end
  in
  let exact = n / p <= exact_segment_limit in
  let base_sum = ref 0.0 and base_count = ref 0 in
  Array.iter
    (fun (raw_lambda, mult) ->
      let lambda = scale *. Float.max raw_lambda 0.0 in
      let run_end = !base_count + mult in
      let lo = max 2 (!base_count + 1) in
      let hi = min run_end k_max in
      let consider = consider ~base_sum:!base_sum ~base_count:!base_count ~lambda in
      if exact then begin
        (* Within a floor segment ⌊n/(kp)⌋ = q the objective is linear in
           k, so its maximum over the run sits at a segment endpoint;
           walking the segments intersecting [lo, hi] makes this run's
           maximization exact.  The floor function has O(√(n/p)) segments
           total, so the whole scan is cheap under the gate above. *)
        let k = ref lo in
        while !k <= hi do
          consider !k;
          let q = n / (!k * p) in
          if q = 0 then begin
            (* beyond n/p the objective is just -2kM, decreasing in k *)
            k := hi + 1
          end
          else begin
            let seg_end = min hi (n / (p * q)) in
            consider seg_end;
            k := seg_end + 1
          end
        done
      end
      else if lo <= hi then begin
        (* run boundaries (k = 2 may land mid-run when the first run is a
           multiplicity cluster, hence the clamp in [lo]) *)
        consider lo;
        consider hi;
        (* interior stationary point of the continuous relaxation
           f(k) = (n/(kp)) (S0 + (k - K0) L) - 2kM, maximised at
           k* = sqrt(n (K0 L - S0) / (2 M p)) when that quantity is
           positive *)
        let num =
          float_of_int n *. ((float_of_int !base_count *. lambda) -. !base_sum)
        in
        if num > 0.0 && m > 0 then begin
          let k_star = sqrt (num /. (2.0 *. float_of_int (m * p))) in
          let k0 = int_of_float k_star in
          for k = max lo (k0 - 2) to min hi (k0 + 2) do
            consider k
          done
        end
      end;
      base_sum := !base_sum +. (float_of_int mult *. lambda);
      base_count := run_end)
    runs;
  let best_raw = if !best_k = 0 then 0.0 else !best_raw in
  {
    Spectral_bound.bound = Float.max 0.0 best_raw;
    best_k = !best_k;
    best_raw;
    n;
    m;
    p;
    h = k_max;
  }
