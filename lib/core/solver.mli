(** End-to-end spectral lower bounds on computation graphs (§6.1's solver).

    Pipeline: build the Laplacian selected by [method_], obtain its [h]
    smallest eigenvalues through the size-adaptive backend
    ({!Graphio_la.Eigen}: dense Householder/QL below the threshold,
    Chebyshev-filtered block subspace iteration above), rescale for
    Theorem 5 if applicable, and maximize over the segment count [k]
    ({!Spectral_bound.compute}).

    Defaults follow the paper: [h = 100] eigenvalues, [k ∈ {2..h}],
    sequential ([p = 1]). *)

type method_ = Method.t =
  | Normalized  (** Theorem 4: eigenvalues of the out-degree normalized [L̃] *)
  | Standard  (** Theorem 5: eigenvalues of [L], scaled by [1/max_out_degree] *)
  | Adjacency
      (** Spectral variant: eigenvalues of the shifted adjacency matrix
          [ΔI − A], turned into the Weyl surrogate
          [max(0, δ − Δ + ν_i) ≤ λ_i(L)] and scaled as Theorem 5 —
          always sound, ties [Standard] on regular supports *)
  | Signless
      (** Spectral variant: eigenvalues of [2ΔI − (D + A)] (shifted
          signless Laplacian), surrogate [max(0, 2δ − 2Δ + ν_i)] *)
  | Visit
      (** DAG-visit bound ({!Visit_bound}): counted boundary minima over
          chains of critical-path anchors; combinatorial (min-cut), no
          eigensolve, not part of the spectrum cache *)
  | Portfolio
      (** meta-method: run a member set (default {!Method.default_portfolio}),
          report the max, record per-member values in [outcome.methods] and
          the winner in [outcome.winner] *)

type tier =
  | Closed_form of Graphio_recognize.Recognize.family
      (** the spectrum came from the exact {!Graphio_spectra} multiset of a
          recognized family — no eigensolve, zero matvecs *)
  | Numeric  (** the spectrum came from a numeric eigensolve (or the cache
                 of one) *)

val tier_name : tier -> string
(** ["closed-form"] or ["numeric"] — the string used in batch JSON lines,
    server replies and [solver.bound] events. *)

type component_info = {
  comp_n : int;  (** vertices in this weakly-connected component *)
  comp_edges : int;
  comp_tier : tier;  (** dispatch tier that answered for this component *)
  comp_backend : Graphio_la.Eigen.backend;
  comp_cache_hit : bool;
      (** this component's spectrum came from the cache or from another
          structurally equal component in the same evaluation *)
  comp_warm_start : bool;
}
(** Per-component provenance of a decomposed evaluation, in
    {!Graphio_graph.Component.split} order (ids assigned by smallest
    member vertex). *)

type method_value = {
  mv_method : method_;
  mv_bound : float;
  mv_best_k : int;  (** [0] for [Visit] (no [k]-maximization) *)
  mv_best_raw : float;
  mv_tier : tier;
  mv_cache_hit : bool;
      (** this member's spectra all came from cache or in-flight dedup;
          always [false] for [Visit] (recomputed by design: its value
          depends on [M] and lives outside the spectrum cache) *)
  mv_warm_start : bool;  (** this member's eigensolve was Ritz-seeded *)
  mv_wall_s : float;
}
(** One portfolio member's value and provenance. *)

type outcome = {
  result : Spectral_bound.t;
  method_ : method_;
  backend : Graphio_la.Eigen.backend;
      (** which eigensolver produced the spectrum; reported as [Dense] (and
          meaningless) when [tier] is [Closed_form] *)
  eigenvalues : float array;  (** the (scaled) eigenvalues fed to the maximization *)
  solve_stats : Graphio_la.Eigen.stats option;
      (** iterative-eigensolver work summary (matvecs, sweeps, locked and
          padded counts); [None] when the dense path ran *)
  tier : tier;  (** which dispatch tier answered *)
  warm_start : bool;
      (** this outcome's eigensolve was seeded from cached Ritz vectors of
          a related solve (same graph/method/params, different [h]) — the
          provenance bit for the flag-gated bitwise-determinism
          relaxation; always [false] on cache hits, closed-form answers
          and cold solves *)
  components : component_info array;
      (** non-empty iff the evaluation decomposed: the graph had two or
          more weakly-connected components (and decomposition was not
          turned off), each solved on its own and merged.  [[||]] for
          connected graphs, whatever their size. *)
  methods : method_value array;
      (** per-member values of a [Portfolio] evaluation, in canonical
          member order; [[||]] for every other method *)
  winner : method_ option;
      (** the member whose value [result] (and [backend], [tier], ...)
          were taken from — the max, earliest member winning ties;
          [Some _] iff [method_] is [Portfolio] *)
}

val bound :
  ?method_:method_ ->
  ?portfolio:method_ list ->
  ?h:int ->
  ?p:int ->
  ?dense_threshold:int ->
  ?tol:float ->
  ?seed:int ->
  ?filter_degree:Graphio_la.Filtered.degree ->
  ?kernel:Graphio_la.Csr.kernel ->
  ?on_iteration:Graphio_la.Convergence.callback ->
  ?pool:Graphio_par.Pool.t ->
  ?closed_form:bool ->
  ?decompose:bool ->
  Graphio_graph.Dag.t ->
  m:int ->
  outcome
(** [bound g ~m] — the spectral lower bound on non-trivial I/O.  Default
    method is [Normalized] (the paper's main Theorem 4 instrument).
    Graphs with no edges yield a 0 bound.

    With [decompose] (default [true]), a graph with two or more
    weakly-connected components is solved component-wise: the Laplacian of
    a disjoint union is block-diagonal, so each component's spectrum is
    computed (and recognized, and deduplicated against structurally equal
    siblings) independently, rescaled to the union's Theorem-5
    normalization where applicable, merged, and fed to a single
    k-maximization over the union's [n].  The result equals the
    whole-graph bound to eigensolver tolerance (exactly for closed-form
    components), [outcome.components] reports per-component provenance,
    and the [core.solver.decompositions] counter increments.  Connected
    graphs take the identical pipeline as before, bit for bit.

    With [closed_form] (default [true]), graphs recognized by
    {!Graphio_recognize.Recognize} answer from the exact
    {!Graphio_spectra} multiset instead of a numeric eigensolve —
    [outcome.tier] reports which tier ran, the
    [core.solver.closed_form_hits] counter increments, and a
    [solver.closed_form] event is emitted.  For [Normalized] the closed
    form additionally requires a uniform out-degree over non-sink vertices
    (then [L~ = L/d] exactly); other recognized graphs fall through to the
    numeric tier.  Pass [closed_form:false] (the CLI's
    [--no-closed-form]) to force the numeric pipeline.

    The whole pipeline runs inside nested {!Graphio_obs.Span} spans
    ([solver.bound] over [solver.recognize], [solver.laplacian],
    [solver.eigensolve], [solver.maximize]) and is timed into the
    [core.solver.bound_seconds] histogram; [on_iteration] streams
    eigensolver convergence progress when the sparse path is taken.
    [pool] parallelizes the sparse eigensolve's matvecs across domains;
    the result is bitwise-identical with or without it (see
    {!Graphio_la.Csr.matvec_into}).

    With [method_:Portfolio], every member (the [portfolio] list when
    given — deduplicated into canonical {!Method.concrete} order — else
    {!Method.default_portfolio}) is evaluated on the same decomposed
    parts; spectral members share eigensolves through the flat dedup
    table, the [Visit] member computes its M-independent counted-cut
    profile once per distinct component.  [result] (and [backend],
    [tier], [eigenvalues], ...) come from the winning member — the
    maximal bound, earliest member in canonical order on ties —
    [outcome.winner] names it and [outcome.methods] records every
    member's value.  Decomposed [Visit] sums per-component bounds
    (sound: a schedule of the union restricts to a schedule of each
    component), so the decomposed visit value can exceed the
    undecomposed one; spectral members merge spectra exactly as before.
    Raises [Invalid_argument] if [portfolio] is empty or contains
    [Portfolio]. *)

val bound_parts :
  ?cache:Graphio_cache.Spectrum.t ->
  ?pool:Graphio_par.Pool.t ->
  ?method_:method_ ->
  ?portfolio:method_ list ->
  ?h:int ->
  ?p:int ->
  ?dense_threshold:int ->
  ?tol:float ->
  ?seed:int ->
  ?filter_degree:Graphio_la.Filtered.degree ->
  ?kernel:Graphio_la.Csr.kernel ->
  ?warm_start:bool ->
  ?on_iteration:Graphio_la.Convergence.callback ->
  ?closed_form:bool ->
  Graphio_graph.Dag.t array ->
  m:int ->
  outcome
(** [bound_parts parts ~m] — the bound of the disjoint union of [parts]
    without ever materializing the union: the out-of-core entry point,
    fed by {!Graphio_store}'s per-component extraction so a multi-million
    vertex on-disk graph is solved one component at a time.  Each part is
    re-split into weakly-connected components first (a caller-supplied
    part may itself be disconnected), then evaluated exactly as the
    decomposed path of {!bound}: numerically equal to
    [bound (disjoint union) ~m] to eigensolver tolerance, with
    [outcome.components] in part order.  Empty parts contribute nothing.

    [cache] defaults to {!Graphio_cache.Spectrum.disabled} — like
    {!bound}, the plain entry point pays every eigensolve (in-flight
    dedup of structurally equal components still applies); pass a cache
    (or {!Graphio_cache.Spectrum.ambient}) to share spectra across
    processes. *)

val spectrum :
  ?method_:method_ ->
  ?h:int ->
  ?dense_threshold:int ->
  ?tol:float ->
  ?seed:int ->
  ?pool:Graphio_par.Pool.t ->
  Graphio_graph.Dag.t ->
  float array * Graphio_la.Eigen.backend
(** The (clamped, Theorem-5-scaled when [Standard], Weyl-surrogate
    transformed when [Adjacency]/[Signless]) smallest eigenvalues used by
    {!bound} — exposed so sweeps over many [M] (or [p]) values can pay
    for the eigensolve once and re-run only the cheap [k]-maximization
    via {!Spectral_bound.compute}.  Raises [Invalid_argument] for
    [Visit] and [Portfolio], which have no spectrum. *)

val bound_of_spectrum :
  ?h:int ->
  ?p:int ->
  spectrum:Graphio_spectra.Multiset.t ->
  scale:float ->
  n:int ->
  m:int ->
  unit ->
  Spectral_bound.t
(** Closed-form entry point: bound from an exact spectrum multiset (e.g.
    {!Graphio_spectra.Butterfly_spectra.spectrum}) whose values are first
    multiplied by [scale] (pass [1 / max_out_degree] for Theorem 5, [1.]
    if the multiset already describes [L̃]).  Works at sizes far beyond
    what any numeric eigensolver reaches; the [k]-search is capped at [h]
    (default 100, the paper's choice) — use {!bound_of_spectrum_all_k}
    when the maximizing [k] may be huge. *)

val bound_of_spectrum_all_k :
  ?p:int ->
  spectrum:Graphio_spectra.Multiset.t ->
  scale:float ->
  n:int ->
  m:int ->
  unit ->
  Spectral_bound.t
(** Like {!bound_of_spectrum} but maximizes over {e all} [k <= n] instead
    of capping at [h]: within a run of equal eigenvalues the objective
    [⌊n/(kp)⌋ Σλ − 2kM] is explicitly optimizable (the closed-form
    hypercube/butterfly analyses of Section 5 pick [k] in the thousands or
    millions, far past any sensible [h]).

    When [n/p <= 1_000_000] the maximization is {e exact}: the objective
    is linear in [k] on every floor segment [⌊n/(kp)⌋ = q], so evaluating
    the [O(√(n/p))] segment endpoints inside each run provably hits the
    discrete maximum.  Beyond that size (closed-form giant spectra) the
    search falls back to run boundaries plus the per-run stationary point
    of the continuous relaxation, in [O(distinct values)].  Every
    evaluated [k] uses the exact objective, so the result is always a
    valid lower bound. *)

(** {1 Batch evaluation}

    Many bound evaluations — an M-sweep over one graph, a benchmark over a
    graph family — share eigensolves.  {!bound_batch} deduplicates them
    in-batch, consults the shared two-tier spectrum cache
    ({!Graphio_cache.Spectrum}) across batches and processes, and runs
    distinct eigensolves concurrently on a {!Graphio_par.Pool}. *)

type batch_job = private {
  dag : Graphio_graph.Dag.t;
  m : int;  (** fast-memory size *)
  p : int option;  (** processors (Theorem 6); [None] means sequential *)
  method_ : method_;
}

val job :
  ?method_:method_ -> ?p:int -> Graphio_graph.Dag.t -> m:int -> batch_job
(** Construct one batch entry (defaults mirror {!bound}: [Normalized],
    sequential). *)

type batch_result = {
  job : batch_job;
  outcome : outcome;
  cache_hit : bool;
      (** this job did not pay an eigensolve: its spectrum came from an
          earlier job in the same batch (then [outcome.eigenvalues] is the
          {e same physical array} as the representative's) or from the
          shared spectrum cache *)
  wall_s : float;
      (** per-job latency: k-maximization time, plus the eigensolve time
          for the job that actually computed the spectrum *)
}

val bound_batch :
  ?cache:Graphio_cache.Spectrum.t ->
  ?pool:Graphio_par.Pool.t ->
  ?portfolio:method_ list ->
  ?h:int ->
  ?dense_threshold:int ->
  ?tol:float ->
  ?seed:int ->
  ?filter_degree:Graphio_la.Filtered.degree ->
  ?kernel:Graphio_la.Csr.kernel ->
  ?warm_start:bool ->
  ?closed_form:bool ->
  ?decompose:bool ->
  batch_job array ->
  batch_result array
(** [bound_batch jobs] evaluates every job and returns results in input
    order.  Jobs whose [(graph, method_)] coincide — keyed by
    {!Graphio_graph.Dag.fingerprint}, so structurally equal graphs built
    independently also match — share one eigensolve; with [pool], distinct
    eigensolves run concurrently across domains (a single distinct
    spectrum instead parallelizes its matvecs).

    Each distinct spectrum additionally flows through [cache]: hits skip
    the eigensolve entirely, misses populate it for later batches (and,
    with a disk tier, later processes — a CLI batch run warms the cache a
    server answers from).  [cache] defaults to
    {!Graphio_cache.Spectrum.ambient} — caching off unless
    [GRAPHIO_CACHE_DIR] is set; pass {!Graphio_cache.Spectrum.disabled}
    to force a cold evaluation regardless of environment.

    Output is deterministic: bounds and eigenvalues are identical
    regardless of job order, pool presence, pool size, or cache warmth
    (fixed [seed], bitwise-reproducible parallel matvec, bit-exact cache
    codec).  Only [cache_hit] / [wall_s] attribution moves with ordering
    and warmth (the first job of each spectrum class pays any solve).

    With [closed_form] (default [true]) recognized graphs answer from the
    closed-form tier exactly as in {!bound}; closed-form spectra are cached
    under their own keys (uppercase method tag, canonical parameters), so
    a [closed_form:false] run never reads them back.

    With [decompose] (default [true]) disconnected jobs are solved
    component-wise as in {!bound}; their components join the in-batch
    dedup table alongside whole connected jobs, and per-job provenance
    lands in [outcome.components].

    With [warm_start] (default [false] here; the CLI turns it on for
    [batch]/[serve]), a cache miss taking the sparse path seeds its
    initial block from locked Ritz vectors cached under the same
    (fingerprint, method, params) at a {e different} [h] — counted in
    [core.solver.warm_start_hits] and reported per result in
    [outcome.warm_start].  Warm-started solves reach the same bounds to
    solver tolerance but are {e not} bitwise-identical to cold ones; keep
    the default off where the bitwise contract matters.

    Observability: runs inside a [solver.bound_batch] span and maintains
    [core.solver.batch_jobs], [core.solver.batch_cache_hits],
    [core.solver.batch_cache_misses] and the per-job latency histogram
    [core.solver.batch_job_seconds]; the cache maintains its own
    [cache.*] metrics. *)

val bound_cached :
  ?cache:Graphio_cache.Spectrum.t ->
  ?pool:Graphio_par.Pool.t ->
  ?portfolio:method_ list ->
  ?h:int ->
  ?dense_threshold:int ->
  ?tol:float ->
  ?seed:int ->
  ?filter_degree:Graphio_la.Filtered.degree ->
  ?kernel:Graphio_la.Csr.kernel ->
  ?warm_start:bool ->
  ?on_iteration:Graphio_la.Convergence.callback ->
  ?closed_form:bool ->
  ?decompose:bool ->
  batch_job ->
  batch_result
(** One job through the same cached pipeline as {!bound_batch} — the
    server's per-request entry point.  [cache] defaults to
    {!Graphio_cache.Spectrum.ambient}; [on_iteration] fires per eigensolver
    sweep on cache misses taking the sparse path (the hook request
    deadlines cancel long solves through).  Runs inside a
    [solver.bound_cached] span; the [solver.bound] event carries a
    ["tier"] field naming the dispatch tier that answered. *)
