(** Bound-method portfolio: the closed set of lower-bound instruments the
    solver knows how to run, with centralized parsing and printing.

    Historically [Solver.method_] was a two-constructor type whose string
    forms were parsed independently by the CLI and the server, so the two
    error messages could drift.  This module is now the single source of
    truth: every surface (CLI flags, batch job files, serve requests)
    parses with {!of_string} and reports unknown methods with the shared
    {!expected} list, so the error text stays identical everywhere. *)

type t =
  | Normalized  (** Theorem 4: normalized-Laplacian spectral bound. *)
  | Standard  (** Theorem 5: standard-Laplacian spectral bound. *)
  | Adjacency
      (** Spectral variant: adjacency-shifted surrogate spectrum
          [max(0, delta - Delta + nu_i)], a Weyl lower bound on the
          standard Laplacian spectrum, scaled like Theorem 5. *)
  | Signless
      (** Spectral variant: signless-Laplacian surrogate spectrum
          [max(0, 2 delta - 2 Delta + nu_i)], likewise a Weyl lower
          bound on the standard Laplacian spectrum. *)
  | Visit
      (** DAG-visit bound (after Bilardi, arXiv 2210.01897): counted
          boundary minima over a chain of anchors on a critical path;
          each anchor contributes [2 * max(0, C_i - M)] I/Os. *)
  | Portfolio
      (** Meta-method: run a configurable set of the above and report
          the max, with per-method values and the winner recorded. *)

val all : t list
(** Every concrete method plus [Portfolio], in canonical order. *)

val default_portfolio : t list
(** The member set [Portfolio] runs when none is configured:
    every concrete method, in canonical order. *)

val concrete : t list
(** [all] without [Portfolio]. *)

val is_spectral : t -> bool
(** True for methods whose value derives from an eigensolve (and hence
    participates in the spectrum cache): Normalized, Standard,
    Adjacency, Signless. *)

val to_string : t -> string
(** Lowercase wire/CLI name: ["normalized"], ["standard"],
    ["adjacency"], ["signless"], ["visit"], ["portfolio"]. *)

val of_string : string -> t option
(** Inverse of {!to_string}; [None] on unknown names. *)

val expected : string
(** The shared expected-list fragment used in parse errors, e.g.
    ["normalized, standard, adjacency, signless, visit or portfolio"].
    CLI and server error messages must both embed this string verbatim. *)

val cache_char : t -> char
(** One-character spectrum-cache discriminator: ['n'], ['s'], ['a'],
    ['q'], ['v'], ['p'].  Only spectral methods actually appear in cache
    keys; ['v'] and ['p'] are reserved so the space stays collision-free. *)

val describe : t -> string
(** Short human label used by the CLI, e.g.
    ["standard (Theorem 5)"] or ["visit (DAG-visit counted boundary)"]. *)
