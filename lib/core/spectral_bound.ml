type t = {
  bound : float;
  best_k : int;
  best_raw : float;
  n : int;
  m : int;
  p : int;
  h : int;
}

let validate ~n ~m ~p ~eigenvalues =
  if n < 0 then invalid_arg "Spectral_bound: negative n";
  if m < 0 then invalid_arg "Spectral_bound: negative m";
  if p < 1 then invalid_arg "Spectral_bound: p must be >= 1";
  let h = Array.length eigenvalues in
  for i = 1 to h - 1 do
    if eigenvalues.(i) < eigenvalues.(i - 1) then
      invalid_arg "Spectral_bound: eigenvalues must be ascending"
  done

let clamp eigenvalues = Array.map (fun l -> Float.max l 0.0) eigenvalues

(* Raw bound value for segment count k, given the clamped prefix sums. *)
let raw_value ~n ~m ~p ~prefix ~k =
  let segments = float_of_int (n / (k * p)) in
  (segments *. prefix.(k)) -. (2.0 *. float_of_int (k * m))

let prefix_sums eigenvalues =
  let h = Array.length eigenvalues in
  let prefix = Array.make (h + 1) 0.0 in
  for i = 0 to h - 1 do
    prefix.(i + 1) <- prefix.(i) +. eigenvalues.(i)
  done;
  prefix

let value_for_k ~n ~m ?(p = 1) ~eigenvalues k =
  validate ~n ~m ~p ~eigenvalues;
  let h = Array.length eigenvalues in
  if k < 1 || k > min h n then
    invalid_arg (Printf.sprintf "Spectral_bound.value_for_k: k=%d out of range" k);
  let prefix = prefix_sums (clamp eigenvalues) in
  raw_value ~n ~m ~p ~prefix ~k

let per_k ~n ~m ?(p = 1) ~eigenvalues () =
  validate ~n ~m ~p ~eigenvalues;
  let h = min (Array.length eigenvalues) n in
  let prefix = prefix_sums (clamp eigenvalues) in
  if h < 2 then [||]
  else
    Array.init (h - 1) (fun i ->
        let k = i + 2 in
        (k, raw_value ~n ~m ~p ~prefix ~k))

let compute ~n ~m ?(p = 1) ~eigenvalues () =
  validate ~n ~m ~p ~eigenvalues;
  let h = min (Array.length eigenvalues) n in
  let prefix = prefix_sums (clamp eigenvalues) in
  let best_k = ref 0 and best_raw = ref neg_infinity in
  for k = 2 to h do
    let v = raw_value ~n ~m ~p ~prefix ~k in
    if v > !best_raw then begin
      best_raw := v;
      best_k := k
    end
  done;
  let best_raw = if !best_k = 0 then 0.0 else !best_raw in
  {
    bound = Float.max 0.0 best_raw;
    best_k = !best_k;
    best_raw;
    n;
    m;
    p;
    h;
  }

let pp fmt t =
  Format.fprintf fmt
    "@[spectral bound %.6g (raw %.6g at k=%d; n=%d, M=%d, p=%d, h=%d)@]" t.bound
    t.best_raw t.best_k t.n t.m t.p t.h
