type t = {
  title : string;
  columns : string list;
  mutable rows : string list list;  (* reversed *)
  mutable notes : string list;  (* reversed *)
}

let create ~title ~columns = { title; columns; rows = []; notes = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg
      (Printf.sprintf "Report.add_row: expected %d cells, got %d"
         (List.length t.columns) (List.length row));
  t.rows <- row :: t.rows

let cell_int = string_of_int

let cell_float v = Printf.sprintf "%.6g" v

let add_float_row t row = add_row t (List.map cell_float row)

let note t s = t.notes <- s :: t.notes

let to_string t =
  let rows = List.rev t.rows in
  let all = t.columns :: rows in
  let widths =
    List.fold_left
      (fun acc row -> List.map2 (fun w c -> max w (String.length c)) acc row)
      (List.map (fun _ -> 0) t.columns)
      all
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  let render_row row =
    List.iteri
      (fun i (w, c) ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf c;
        Buffer.add_string buf (String.make (w - String.length c) ' '))
      (List.combine widths row);
    Buffer.add_char buf '\n'
  in
  render_row t.columns;
  render_row (List.map (fun w -> String.make w '-') widths);
  List.iter render_row rows;
  List.iter
    (fun n -> Buffer.add_string buf ("note: " ^ n ^ "\n"))
    (List.rev t.notes);
  Buffer.contents buf

let print t = print_string (to_string t)

let csv_escape c =
  if String.exists (fun ch -> ch = ',' || ch = '"' || ch = '\n') c then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' c) ^ "\""
  else c

let to_csv t =
  let buf = Buffer.create 1024 in
  let render_row row =
    Buffer.add_string buf (String.concat "," (List.map csv_escape row));
    Buffer.add_char buf '\n'
  in
  render_row t.columns;
  List.iter render_row (List.rev t.rows);
  Buffer.contents buf
