open Graphio_spectra

let check_alpha name ~l ~alpha =
  if alpha < 0 || alpha >= l then
    invalid_arg (Printf.sprintf "Analytic.%s: alpha=%d out of [0, %d)" name alpha l)

(* --- Hypercube (Section 5.1) --- *)

let hypercube ~l ~m ~alpha =
  if l < 1 then invalid_arg "Analytic.hypercube: l must be >= 1";
  if l > 57 then invalid_arg "Analytic.hypercube: l too large for exact integer arithmetic";
  check_alpha "hypercube" ~l ~alpha;
  let k = ref 0 and weighted = ref 0 in
  for i = 0 to alpha do
    let c = Hypercube_spectra.binomial l i in
    k := !k + c;
    weighted := !weighted + (2 * i * c)
  done;
  let n = 1 lsl l in
  let segments = float_of_int (n / !k) in
  (segments *. float_of_int !weighted /. float_of_int l)
  -. (2.0 *. float_of_int (!k * m))

let hypercube_alpha1 ~l ~m =
  if l < 1 then invalid_arg "Analytic.hypercube_alpha1: l must be >= 1";
  (float_of_int (1 lsl (l + 1)) /. float_of_int (l + 1))
  -. (2.0 *. float_of_int (m * (l + 1)))

let hypercube_best ~l ~m =
  if l < 1 then invalid_arg "Analytic.hypercube_best: l must be >= 1";
  let best = ref neg_infinity and best_alpha = ref 0 in
  for alpha = 0 to l - 1 do
    let v = hypercube ~l ~m ~alpha in
    if v > !best then begin
      best := v;
      best_alpha := alpha
    end
  done;
  (!best, !best_alpha)

let hypercube_nontrivial_m ~l =
  float_of_int (1 lsl l) /. float_of_int ((l + 1) * (l + 1))

(* --- Butterfly / FFT (Section 5.2) --- *)

let fft ~l ~m ~alpha =
  if l < 1 then invalid_arg "Analytic.fft: l must be >= 1";
  if l > 57 then invalid_arg "Analytic.fft: l too large for exact integer arithmetic";
  check_alpha "fft" ~l ~alpha;
  let n = (l + 1) * (1 lsl l) in
  let k = 1 lsl (alpha + 1) in
  let lambda = 4.0 -. (4.0 *. cos (Float.pi /. float_of_int ((2 * (l - alpha)) + 1))) in
  (* 2^alpha eigenvalues at lambda, the rest assumed 0; divide by the
     maximal out-degree 2 (Theorem 5). *)
  let sum_scaled = float_of_int (1 lsl alpha) *. lambda /. 2.0 in
  (float_of_int (n / k) *. sum_scaled) -. (2.0 *. float_of_int (k * m))

let log2_int_ceil x =
  if x < 1 then invalid_arg "Analytic: log2 of non-positive";
  let rec go acc v = if v >= x then acc else go (acc + 1) (v * 2) in
  go 0 1

let fft_default_alpha ~l ~m =
  if m < 1 then invalid_arg "Analytic.fft_default_alpha: m must be >= 1";
  max 0 (min (l - 1) (l - log2_int_ceil m))

let fft_best ~l ~m =
  if l < 1 then invalid_arg "Analytic.fft_best: l must be >= 1";
  let best = ref neg_infinity and best_alpha = ref 0 in
  for alpha = 0 to l - 1 do
    let v = fft ~l ~m ~alpha in
    if v > !best then begin
      best := v;
      best_alpha := alpha
    end
  done;
  (!best, !best_alpha)

let fft_hong_kung ~l ~m =
  if m < 2 then invalid_arg "Analytic.fft_hong_kung: m must be >= 2";
  if l < 1 || l > 57 then invalid_arg "Analytic.fft_hong_kung: l out of range";
  float_of_int (l * (1 lsl l)) /. (log (float_of_int m) /. log 2.0)

(* --- Erdős–Rényi (Section 5.3) --- *)

let er_sparse ~n ~p0 ~m =
  if p0 <= 6.0 then invalid_arg "Analytic.er_sparse: p0 must exceed 6";
  if n < 2 then invalid_arg "Analytic.er_sparse: n must be >= 2";
  (float_of_int n /. (1.0 +. sqrt (6.0 /. p0)) *. (1.0 -. sqrt (2.0 /. p0)))
  -. (4.0 *. float_of_int m)

let er_dense ~n ~m =
  if n < 1 then invalid_arg "Analytic.er_dense: n must be >= 1";
  (float_of_int n /. 2.0) -. (4.0 *. float_of_int m)
