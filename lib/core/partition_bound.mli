(** The partition bound of Theorems 2–3, evaluated exactly for a concrete
    schedule.

    For an evaluation order [X] and segment count [k], split the order
    into [k] as-equal-as-possible contiguous segments [P(X, k)] (the first
    [n mod k] segments one longer).  Lemma 1 / Theorem 2 give

    [J_G(X) >= Σ_{S ∈ P} Σ_{(u,v) ∈ ∂S} 1/dout(u) − 2 k M,]

    which equals the quadratic form [tr(Xᵀ L̃ X W(k)) − 2kM] of Theorem 3
    (the test suite verifies the two agree on explicit matrices).

    The spectral method (Theorem 4) is the relaxation of this quantity
    over {e orthogonal} [X]; evaluating it here for real topological
    orders quantifies the relaxation gap — for every valid order and
    every [k]:

    [partition value(X, k) >= ⌊n/k⌋ Σ_{i<=k} λ_i(L̃) − 2kM.]

    Like the spectral bound, the maximum over [k] lower-bounds [J_G(X)]
    for that particular schedule (not [J*_G], unless minimized over all
    schedules). *)

val segments : n:int -> k:int -> int array
(** [segments ~n ~k] maps position -> segment id for the equal
    [k]-partition ([1 <= k <= n]). *)

val segment_cost : Graphio_graph.Dag.t -> order:int array -> k:int -> float
(** [Σ_S Σ_{(u,v) ∈ ∂S} 1/dout(u)] — each crossing edge contributes to
    both of its segments.  Raises if [order] is not a valid topological
    order or [k] out of range. *)

val value : Graphio_graph.Dag.t -> order:int array -> k:int -> m:int -> float
(** [segment_cost − 2 k M] (possibly negative). *)

val best : ?k_max:int -> Graphio_graph.Dag.t -> order:int array -> m:int -> int * float
(** Maximizing [(k, value)] over [k ∈ 2 .. min k_max n] (default
    [k_max = 100], the paper's [h]).  The graph must have [n >= 2]. *)
