type t = Normalized | Standard | Adjacency | Signless | Visit | Portfolio

let all = [ Normalized; Standard; Adjacency; Signless; Visit; Portfolio ]
let concrete = [ Normalized; Standard; Adjacency; Signless; Visit ]
let default_portfolio = concrete

let is_spectral = function
  | Normalized | Standard | Adjacency | Signless -> true
  | Visit | Portfolio -> false

let to_string = function
  | Normalized -> "normalized"
  | Standard -> "standard"
  | Adjacency -> "adjacency"
  | Signless -> "signless"
  | Visit -> "visit"
  | Portfolio -> "portfolio"

let of_string = function
  | "normalized" -> Some Normalized
  | "standard" -> Some Standard
  | "adjacency" -> Some Adjacency
  | "signless" -> Some Signless
  | "visit" -> Some Visit
  | "portfolio" -> Some Portfolio
  | _ -> None

let expected =
  (* "a, b, c, d, e or f" — every surface embeds this fragment verbatim. *)
  let names = List.map to_string all in
  match List.rev names with
  | last :: (_ :: _ as rest) ->
      String.concat ", " (List.rev rest) ^ " or " ^ last
  | _ -> String.concat ", " names

let cache_char = function
  | Normalized -> 'n'
  | Standard -> 's'
  | Adjacency -> 'a'
  | Signless -> 'q'
  | Visit -> 'v'
  | Portfolio -> 'p'

let describe = function
  | Normalized -> "normalized (Theorem 4)"
  | Standard -> "standard (Theorem 5)"
  | Adjacency -> "adjacency (Weyl surrogate, Theorem 5 scaling)"
  | Signless -> "signless (Weyl surrogate, Theorem 5 scaling)"
  | Visit -> "visit (DAG-visit counted boundary)"
  | Portfolio -> "portfolio (max over member methods)"
