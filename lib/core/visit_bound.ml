open Graphio_graph
open Graphio_flow

type profile = { chains : int array array }

let n_chains p = Array.length p.chains

let descendants g v =
  let n = Dag.n_vertices g in
  let seen = Array.make n false in
  let stack = Stack.create () in
  Dag.iter_succ g v (fun w ->
      if not seen.(w) then begin
        seen.(w) <- true;
        Stack.push w stack
      end);
  while not (Stack.is_empty stack) do
    let u = Stack.pop stack in
    Dag.iter_succ g u (fun w ->
        if not seen.(w) then begin
          seen.(w) <- true;
          Stack.push w stack
        end)
  done;
  seen

(* Min over downward-closed P (v in P, P disjoint from desc_v) of the
   number of counted boundary vertices of P: the Convex_mincut network
   with the unit vertex capacity kept only on counted vertices. *)
let counted_min_cut g ~counted ~desc_v v =
  if Dag.out_degree g v = 0 then 0
  else begin
    let n = Dag.n_vertices g in
    (* Node layout: u_in = 2u, u_out = 2u + 1, s = 2n, t = 2n + 1. *)
    let net = Dinic.create ((2 * n) + 2) in
    let s = 2 * n and t = (2 * n) + 1 in
    let node_in u = 2 * u and node_out u = (2 * u) + 1 in
    for u = 0 to n - 1 do
      if counted.(u) then
        Dinic.add_edge net ~src:(node_in u) ~dst:(node_out u) ~cap:1
    done;
    Dag.iter_edges g (fun u w ->
        (* u interior => w in S *)
        Dinic.add_edge net ~src:(node_out u) ~dst:(node_in w) ~cap:Dinic.inf_cap;
        (* downward closure: w in S => u in S *)
        Dinic.add_edge net ~src:(node_in w) ~dst:(node_in u) ~cap:Dinic.inf_cap);
    Dinic.add_edge net ~src:s ~dst:(node_in v) ~cap:Dinic.inf_cap;
    for d = 0 to n - 1 do
      if desc_v.(d) then
        Dinic.add_edge net ~src:(node_in d) ~dst:t ~cap:Dinic.inf_cap
    done;
    Dinic.max_flow net ~s ~sink:t
  end

(* One longest path, source to deepest sink, by walking levels backwards
   (deterministic: deepest vertex of smallest id, then the smallest-id
   predecessor one level up). *)
let critical_path g =
  let levels = Stats.levels g in
  let n = Array.length levels in
  if n = 0 then [||]
  else begin
    let vmax = ref 0 in
    for v = 1 to n - 1 do
      if levels.(v) > levels.(!vmax) then vmax := v
    done;
    let path = ref [ !vmax ] in
    let cur = ref !vmax in
    while levels.(!cur) > 0 do
      let best = ref (-1) in
      Dag.iter_pred g !cur (fun u ->
          if levels.(u) = levels.(!cur) - 1 && (!best < 0 || u < !best) then
            best := u);
      cur := !best;
      path := !cur :: !path
    done;
    Array.of_list !path
  end

let max_anchors = 16
let singleton_sweep_limit = 256

let subsample arr k =
  let len = Array.length arr in
  if len <= k then arr
  else Array.init k (fun i -> arr.(i * (len - 1) / (k - 1)))

let profile g =
  let n = Dag.n_vertices g in
  if n = 0 then { chains = [||] }
  else begin
    let desc_memo = Hashtbl.create 64 in
    let desc v =
      match Hashtbl.find_opt desc_memo v with
      | Some d -> d
      | None ->
          let d = descendants g v in
          Hashtbl.add desc_memo v d;
          d
    in
    let all_counted = Array.make n true in
    let flow_memo = Hashtbl.create 64 in
    let counted_cut ~prev v =
      match Hashtbl.find_opt flow_memo (prev, v) with
      | Some c -> c
      | None ->
          let counted = if prev < 0 then all_counted else desc prev in
          let c = counted_min_cut g ~counted ~desc_v:(desc v) v in
          Hashtbl.add flow_memo (prev, v) c;
          c
    in
    let eval_chain anchors =
      Array.mapi
        (fun i v ->
          let prev = if i = 0 then -1 else anchors.(i - 1) in
          counted_cut ~prev v)
        anchors
    in
    let candidates = subsample (critical_path g) max_anchors in
    let chains = ref [] in
    List.iter
      (fun stride ->
        let c =
          Array.of_list
            (List.filteri
               (fun i _ -> i mod stride = 0)
               (Array.to_list candidates))
        in
        if Array.length c > 0 then chains := c :: !chains)
      [ 1; 2; 4 ];
    Array.iter (fun v -> chains := [| v |] :: !chains) candidates;
    if n <= singleton_sweep_limit then
      for v = 0 to n - 1 do
        chains := [| v |] :: !chains
      done;
    { chains = Array.map eval_chain (Array.of_list (List.rev !chains)) }
  end

let bound_of_profile { chains } ~m =
  if m < 0 then invalid_arg "Visit_bound.bound: negative memory size";
  let best = ref 0 in
  Array.iter
    (fun chain ->
      let s =
        Array.fold_left (fun acc c -> acc + max 0 (c - m)) 0 chain
      in
      if s > !best then best := s)
    chains;
  2 * !best

let bound g ~m = bound_of_profile (profile g) ~m
