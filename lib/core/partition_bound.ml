open Graphio_graph

let segments ~n ~k =
  if k < 1 || k > n then invalid_arg "Partition_bound.segments: k out of range";
  let base = n / k and extra = n mod k in
  let seg = Array.make n 0 in
  let pos = ref 0 in
  for s = 0 to k - 1 do
    let len = base + if s < extra then 1 else 0 in
    for _ = 1 to len do
      seg.(!pos) <- s;
      incr pos
    done
  done;
  seg

let segment_of g ~order ~k =
  let n = Dag.n_vertices g in
  if not (Topo.is_valid g order) then
    invalid_arg "Partition_bound: order is not a valid topological order";
  let seg_by_pos = segments ~n ~k in
  let pos = Topo.position_of order in
  Array.init n (fun v -> seg_by_pos.(pos.(v)))

let segment_cost g ~order ~k =
  let seg = segment_of g ~order ~k in
  (* each edge crossing segments is in the boundary of both endpoints'
     segments, so it contributes twice *)
  Dag.fold_edges g ~init:0.0 ~f:(fun acc u v ->
      if seg.(u) <> seg.(v) then
        acc +. (2.0 /. float_of_int (Dag.out_degree g u))
      else acc)

let value g ~order ~k ~m =
  if m < 0 then invalid_arg "Partition_bound.value: negative memory size";
  segment_cost g ~order ~k -. (2.0 *. float_of_int (k * m))

let best ?(k_max = 100) g ~order ~m =
  let n = Dag.n_vertices g in
  if n < 2 then invalid_arg "Partition_bound.best: need at least two vertices";
  let best_k = ref 2 and best_v = ref neg_infinity in
  for k = 2 to min k_max n do
    let v = value g ~order ~k ~m in
    if v > !best_v then begin
      best_v := v;
      best_k := k
    end
  done;
  (!best_k, !best_v)
