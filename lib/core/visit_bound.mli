(** DAG-visit lower bound on I/O (after Bilardi, arXiv 2210.01897).

    For a chain of anchors [v_1 < v_2 < ... < v_r] along a critical path,
    let [C_i] be the minimum, over downward-closed vertex sets [P]
    containing [v_i] and disjoint from [desc(v_i)], of the number of
    boundary vertices of [P] that are strict descendants of [v_(i-1)]
    (all boundary vertices count for [i = 1]).  At the moment [v_i] is
    computed the realized computed set is such a [P], and the counted
    boundary values are pairwise disjoint across [i] (each is sandwiched
    strictly between consecutive anchors), so each value not resident in
    fast memory accounts for one write and one later read:

    {v J* >= 2 * sum_i max(0, C_i - M) v}

    Each [C_i] is a vertex-capacitated min cut (capacity 1 on counted
    vertices, 0 otherwise) computed with Dinic on the same
    downward-closure network as [Convex_mincut].  With a single anchor
    and all vertices counted this degenerates to the convex min-cut
    bound, and the profile always includes that sweep on small graphs,
    so the visit bound dominates the min-cut baseline there.

    The profile (per-chain count arrays) is independent of the fast
    memory size [M]; {!bound_of_profile} folds a given [M] over it, so
    callers can evaluate one graph at many [M] for the price of one set
    of flow computations. *)

type profile

val profile : Graphio_graph.Dag.t -> profile
(** Computes counted-cut chains: the critical path subsampled to at most
    16 anchors at strides 1, 2 and 4, each anchor as a singleton chain,
    and (when [n <= 256]) a singleton sweep over every vertex. *)

val n_chains : profile -> int
(** Number of candidate chains evaluated (for tests and telemetry). *)

val bound_of_profile : profile -> m:int -> int
(** [2 * max] over chains of [sum_i max(0, C_i - m)].  Raises
    [Invalid_argument] on negative [m]. *)

val bound : Graphio_graph.Dag.t -> m:int -> int
(** [bound_of_profile (profile g) ~m]. *)
