(** Closed-form analytic bounds of Section 5.

    These are the pencil-and-paper instantiations of the spectral method:
    Theorem 5 applied to graphs with known spectra, keeping the paper's
    choices of [k].  They are deliberately looser than the numeric solver
    (they zero out eigenvalues the derivation discards) — the evaluation
    compares growth {e shapes}, not exact values. *)

(** {1 Hypercube — Bellman–Held–Karp (§5.1)} *)

val hypercube : l:int -> m:int -> alpha:int -> float
(** Theorem 5 on [Q_l] with [k = Σ_{i<=α} C(l,i)] eigenvalue classes:
    [(1/l) · ⌊2^l / k⌋ · Σ_{i<=α} 2 i C(l,i) − 2 k M].
    Requires [0 <= alpha < l]. *)

val hypercube_alpha1 : l:int -> m:int -> float
(** The paper's displayed [α = 1] simplification:
    [2^{l+1}/(l+1) − 2 M (l+1)]. *)

val hypercube_best : l:int -> m:int -> float * int
(** Maximum of {!hypercube} over [α], with the maximizer. *)

val hypercube_nontrivial_m : l:int -> float
(** The threshold [2^l / (l+1)^2] below which the [α = 1] bound is
    positive ("nontrivial as long as M <= 2^l/(l+1)^2"). *)

(** {1 Butterfly — FFT (§5.2)} *)

val fft : l:int -> m:int -> alpha:int -> float
(** Theorem 5 on [B_l] with [k = 2^{α+1}]: keeps the [2^α] eigenvalues
    [4 − 4 cos(π/(2(l−α)+1))], zeroes the rest, divides by the maximal
    out-degree 2:
    [⌊n/k⌋ · 2^α · 2 (1 − cos(π/(2(l−α)+1))) − 2 k M]  with
    [n = (l+1) 2^l].  Requires [0 <= alpha < l]. *)

val fft_default_alpha : l:int -> m:int -> int
(** The paper's choice [α = l − log2 M], clamped into [[0, l−1]]. *)

val fft_best : l:int -> m:int -> float * int
(** Maximum of {!fft} over [α], with the maximizer. *)

val fft_hong_kung : l:int -> m:int -> float
(** The published asymptotically tight bound shape [l·2^l / log2 M]
    (Hong & Kung, by [S]-partitions), as the comparison series used when
    the paper says the spectral bound is at most a [1/log M] factor off. *)

(** {1 Erdős–Rényi (§5.3)} *)

val er_sparse : n:int -> p0:float -> m:int -> float
(** Leading term of the sparse-regime bound ([p = p0 log n/(n−1)],
    [p0 > 6]):
    [n/(1+√(6/p0)) · (1 − √(2/p0)) − 4 M]  (Theorem 5 with [k = 2],
    [λ_2 ≈ p0 log n (1 − √(2/p0))], [d_max ≈ (1+√(6/p0)) p0 log n],
    dropping the vanishing error terms). *)

val er_dense : n:int -> m:int -> float
(** Leading term in the dense regime [np/log n → ∞]:
    [n/2 − 4 M]. *)
