(** Plain-text table rendering for experiment output.

    Every bench and example prints through this module so that
    EXPERIMENTS.md, the bench harness, and the CLI all share one look:
    a title line, aligned columns, and an optional trailing note.  A CSV
    emitter is provided for downstream plotting. *)

type t

val create : title:string -> columns:string list -> t

val add_row : t -> string list -> unit
(** Raises [Invalid_argument] on arity mismatch with [columns]. *)

val add_float_row : t -> float list -> unit
(** Convenience: renders each cell with [%.6g]. *)

val note : t -> string -> unit
(** Appends a free-form note printed under the table. *)

val to_string : t -> string

val print : t -> unit
(** [to_string] to stdout. *)

val to_csv : t -> string
(** Header + rows, comma-separated with minimal quoting. *)

val cell_int : int -> string

val cell_float : float -> string
(** [%.6g]. *)
