(** The spectral I/O lower bound (Theorems 4, 5 and 6).

    Given the [h] smallest eigenvalues [λ_1 <= ... <= λ_h] of a Laplacian
    and fast-memory size [M], every segment count [k <= n] yields a valid
    lower bound on the optimal I/O; on [p] processors the same holds with
    [⌊n/(kp)⌋] (Theorem 6):

    [J*_G >= ⌊n/(kp)⌋ · Σ_{i=1..k} λ_i − 2 k M.]

    This module performs the [k]-maximization and records how the winning
    bound was obtained.  Which Laplacian the eigenvalues come from decides
    the theorem instance:

    - eigenvalues of [L̃] (out-degree normalized): Theorem 4 (and 6);
    - eigenvalues of [L] pre-scaled by [1 / max_out_degree]: Theorem 5.

    Eigenvalue clamping: symmetric PSD solvers can return tiny negative
    noise for the zero eigenvalue; inputs are clamped at 0 (a Laplacian
    has no genuinely negative eigenvalues, and clamping only lowers — i.e.
    never invalidates — the bound). *)

type t = {
  bound : float;  (** [max(0, best_k value)] — the reported lower bound *)
  best_k : int;  (** the maximizing segment count ([0] iff no [k] was tried) *)
  best_raw : float;  (** the un-clamped maximal value (may be negative) *)
  n : int;  (** graph size the bound refers to *)
  m : int;  (** fast-memory size *)
  p : int;  (** processor count (1 = sequential Theorem 4/5) *)
  h : int;  (** number of eigenvalues available to the maximization *)
}

val compute : n:int -> m:int -> ?p:int -> eigenvalues:float array -> unit -> t
(** [compute ~n ~m ~eigenvalues ()] maximizes over [k = 2 .. min h n].
    [eigenvalues] must be ascending (checked) and are clamped at [0].
    Raises [Invalid_argument] for [n < 0], [m < 0], [p < 1], or a
    descending input. *)

val value_for_k : n:int -> m:int -> ?p:int -> eigenvalues:float array -> int -> float
(** [value_for_k ~n ~m ~eigenvalues k] — the raw (possibly negative) bound
    value for one specific [k] ([1 <= k <= min h n]); the quantity whose
    [k]-profile §6.5 discusses. *)

val per_k : n:int -> m:int -> ?p:int -> eigenvalues:float array -> unit -> (int * float) array
(** All [(k, value)] pairs for [k = 2 .. min h n]. *)

val pp : Format.formatter -> t -> unit
