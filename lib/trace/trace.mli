(** Tracing DSL: run ordinary-looking arithmetic, get the computation graph.

    The paper's evaluation uses a solver that "traces operations during a
    Python computation and thus extracts a computation graph" and
    "inter-operates with standard arithmetic operations and supports the
    inclusion of custom operations" (§6.1).  This module is the OCaml
    counterpart: a [value] is a handle carrying a real [float] payload, so
    traced programs compute genuine results (tests validate them against
    untraced reference implementations) while every operation records a
    vertex in a {!Graphio_graph.Dag.t}.

    Each operation produces a single element — the paper's memory-model
    granularity — and repeated operands contribute a single dependency
    edge (the model counts data dependencies, not syntactic operand
    slots). *)

type ctx
(** A tracing context: owns the growing graph. *)

type value
(** A traced element: payload plus vertex id, tied to its context. *)

val create : unit -> ctx

val input : ?label:string -> ctx -> float -> value
(** A source vertex (read from the user at no I/O cost per §3). *)

val payload : value -> float
(** The computed number. *)

val id : value -> int
(** The vertex id in the extracted graph. *)

val add : value -> value -> value
val sub : value -> value -> value
val mul : value -> value -> value
val div : value -> value -> value
val neg : value -> value

val custom : label:string -> f:(float array -> float) -> value list -> value
(** An [n]-ary custom operation; [f] receives the operand payloads in
    order.  Operands must belong to the same context ([Invalid_argument]
    otherwise) and the list must be non-empty. *)

val graph : ctx -> Graphio_graph.Dag.t
(** Freeze the current trace into a DAG (the context stays usable; calling
    again after more operations returns the extended graph). *)

val n_operations : ctx -> int

module Infix : sig
  val ( + ) : value -> value -> value
  val ( - ) : value -> value -> value
  val ( * ) : value -> value -> value
  val ( / ) : value -> value -> value
  val ( ~- ) : value -> value
end
