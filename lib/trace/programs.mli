(** Traced reference programs.

    Each function runs a real algorithm through the {!Trace} DSL, so both
    the numeric result and the extracted computation graph can be checked:
    results against plain reference implementations, graphs against the
    direct builders in {!module:Graphio_workloads} (same vertex counts,
    degree profiles and — for the regular generators — identical edge
    sets).  These are the "four common computation graphs" of §6.2 as a
    user of the solver front-end would produce them. *)

val inner_product : Trace.ctx -> float array -> float array -> Trace.value
(** Chained-sum inner product; the [d = 2] instance is Figure 1. *)

val walsh_hadamard : Trace.ctx -> float array -> Trace.value array
(** Iterative radix-2 butterfly network (the FFT dataflow with real
    twiddles, i.e. the Walsh–Hadamard transform — identical computation
    graph to the [2^l]-point FFT, one binary op per element per level).
    Input length must be a power of two. *)

val matmul : Trace.ctx -> float array array -> float array array -> Trace.value array array
(** Naive [C = A B] with one [n]-ary sum per output entry (the paper's
    dot-product formulation). *)

val strassen : Trace.ctx -> float array array -> float array array -> Trace.value array array
(** Recursive Strassen multiplication ([n] a power of two), mirroring
    {!Graphio_workloads.Strassen.build} operation-for-operation: quadrant
    sums as binary vertices, [C11]/[C22] as 4-ary combinations.  Payloads
    compute the real product (tests check them against plain
    multiplication) and the extracted graph is edge-identical to the
    direct builder. *)

val held_karp : Trace.ctx -> float array array -> Trace.value
(** Bellman–Held–Karp over the boolean hypercube: vertex per visited-set
    mask; the returned value's payload is the length of the shortest
    Hamiltonian path (the paper's [Y[{1}^l]] solution set, summarized by
    its cheapest member).  The distance matrix must be square ([l >= 1],
    [l <= 20]). *)

val reference_walsh_hadamard : float array -> float array
(** Untraced [O(n^2)] Walsh–Hadamard for validation. *)

val reference_held_karp : float array array -> float
(** Untraced Held–Karp (same DP, plain arrays). *)

val brute_force_shortest_path : float array array -> float
(** Exhaustive shortest Hamiltonian path (only for tiny [l]; raises above
    [l = 9]). *)
