let inner_product ctx x y =
  if Array.length x <> Array.length y || Array.length x = 0 then
    invalid_arg "Programs.inner_product: bad dimensions";
  let d = Array.length x in
  let xs = Array.mapi (fun i v -> Trace.input ~label:(Printf.sprintf "x%d" i) ctx v) x in
  let ys = Array.mapi (fun i v -> Trace.input ~label:(Printf.sprintf "y%d" i) ctx v) y in
  let prods = Array.init d (fun i -> Trace.mul xs.(i) ys.(i)) in
  let acc = ref prods.(0) in
  for i = 1 to d - 1 do
    acc := Trace.add !acc prods.(i)
  done;
  !acc

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let walsh_hadamard ctx input =
  let n = Array.length input in
  if not (is_power_of_two n) then
    invalid_arg "Programs.walsh_hadamard: length must be a power of two";
  let current =
    ref
      (Array.mapi
         (fun i v -> Trace.input ~label:(Printf.sprintf "x%d" i) ctx v)
         input)
  in
  let l = int_of_float (Float.round (Float.log2 (float_of_int n))) in
  for c = 1 to l do
    let stride = 1 lsl (c - 1) in
    let prev = !current in
    current :=
      Array.init n (fun r ->
          let partner = r lxor stride in
          (* The two operands of the butterfly; sign chosen by which half
             of the pair this row is. *)
          let f ops =
            if r land stride = 0 then ops.(0) +. ops.(1) else ops.(1) -. ops.(0)
          in
          Trace.custom ~label:(Printf.sprintf "b%d_%d" c r) ~f
            [ prev.(r); prev.(partner) ])
  done;
  !current

let reference_walsh_hadamard input =
  let n = Array.length input in
  if not (is_power_of_two n) then
    invalid_arg "Programs.reference_walsh_hadamard: length must be a power of two";
  let current = ref (Array.copy input) in
  let l = int_of_float (Float.round (Float.log2 (float_of_int n))) in
  for c = 1 to l do
    let stride = 1 lsl (c - 1) in
    let prev = !current in
    current :=
      Array.init n (fun r ->
          if r land stride = 0 then prev.(r) +. prev.(r lxor stride)
          else prev.(r lxor stride) -. prev.(r))
  done;
  !current

let matmul ctx a b =
  let n = Array.length a in
  if n = 0 || Array.length b <> n then invalid_arg "Programs.matmul: bad dimensions";
  Array.iter
    (fun row -> if Array.length row <> n then invalid_arg "Programs.matmul: ragged input")
    a;
  Array.iter
    (fun row -> if Array.length row <> n then invalid_arg "Programs.matmul: ragged input")
    b;
  let av =
    Array.init n (fun i ->
        Array.init n (fun j ->
            Trace.input ~label:(Printf.sprintf "A%d,%d" i j) ctx a.(i).(j)))
  in
  let bv =
    Array.init n (fun i ->
        Array.init n (fun j ->
            Trace.input ~label:(Printf.sprintf "B%d,%d" i j) ctx b.(i).(j)))
  in
  Array.init n (fun i ->
      Array.init n (fun j ->
          let prods = Array.to_list (Array.init n (fun k -> Trace.mul av.(i).(k) bv.(k).(j))) in
          Trace.custom
            ~label:(Printf.sprintf "C%d,%d" i j)
            ~f:(fun ops -> Array.fold_left ( +. ) 0.0 ops)
            prods))

let strassen ctx a bb =
  let n = Array.length a in
  if not (is_power_of_two n) then
    invalid_arg "Programs.strassen: n must be a positive power of two";
  if Array.length bb <> n then invalid_arg "Programs.strassen: bad dimensions";
  Array.iter
    (fun row -> if Array.length row <> n then invalid_arg "Programs.strassen: ragged input")
    a;
  Array.iter
    (fun row -> if Array.length row <> n then invalid_arg "Programs.strassen: ragged input")
    bb;
  let input name (m : float array array) =
    Array.init n (fun i ->
        Array.init n (fun j ->
            Trace.input ~label:(Printf.sprintf "%s%d,%d" name i j) ctx m.(i).(j)))
  in
  let av = input "A" a and bv = input "B" bb in
  let quadrant m ~row ~col ~size =
    Array.init size (fun i -> Array.init size (fun j -> m.(row + i).(col + j)))
  in
  let binop tag f x y =
    let size = Array.length x in
    Array.init size (fun i ->
        Array.init size (fun j ->
            Trace.custom ~label:tag ~f:(fun o -> f o.(0) o.(1)) [ x.(i).(j); y.(i).(j) ]))
  in
  let add = binop "+" ( +. ) and sub = binop "-" ( -. ) in
  let combine4 tag f w x y z =
    let size = Array.length w in
    Array.init size (fun i ->
        Array.init size (fun j ->
            Trace.custom ~label:tag
              ~f:(fun o -> f o.(0) o.(1) o.(2) o.(3))
              [ w.(i).(j); x.(i).(j); y.(i).(j); z.(i).(j) ]))
  in
  let assemble ~size c11 c12 c21 c22 =
    let half = size / 2 in
    Array.init size (fun i ->
        Array.init size (fun j ->
            match (i < half, j < half) with
            | true, true -> c11.(i).(j)
            | true, false -> c12.(i).(j - half)
            | false, true -> c21.(i - half).(j)
            | false, false -> c22.(i - half).(j - half)))
  in
  let rec multiply x y =
    let size = Array.length x in
    if size = 1 then [| [| Trace.custom ~label:"*" ~f:(fun o -> o.(0) *. o.(1)) [ x.(0).(0); y.(0).(0) ] |] |]
    else begin
      let half = size / 2 in
      let x11 = quadrant x ~row:0 ~col:0 ~size:half
      and x12 = quadrant x ~row:0 ~col:half ~size:half
      and x21 = quadrant x ~row:half ~col:0 ~size:half
      and x22 = quadrant x ~row:half ~col:half ~size:half in
      let y11 = quadrant y ~row:0 ~col:0 ~size:half
      and y12 = quadrant y ~row:0 ~col:half ~size:half
      and y21 = quadrant y ~row:half ~col:0 ~size:half
      and y22 = quadrant y ~row:half ~col:half ~size:half in
      let m1 = multiply (add x11 x22) (add y11 y22) in
      let m2 = multiply (add x21 x22) y11 in
      let m3 = multiply x11 (sub y12 y22) in
      let m4 = multiply x22 (sub y21 y11) in
      let m5 = multiply (add x11 x12) y22 in
      let m6 = multiply (sub x21 x11) (add y11 y12) in
      let m7 = multiply (sub x12 x22) (add y21 y22) in
      let c11 = combine4 "C11" (fun a b c d -> a +. b -. c +. d) m1 m4 m5 m7 in
      let c12 = binop "C12" ( +. ) m3 m5 in
      let c21 = binop "C21" ( +. ) m2 m4 in
      let c22 = combine4 "C22" (fun a b c d -> a -. b +. c +. d) m1 m2 m3 m6 in
      assemble ~size c11 c12 c21 c22
    end
  in
  multiply av bv

let check_square name dist =
  let l = Array.length dist in
  if l < 1 then invalid_arg (name ^ ": empty distance matrix");
  Array.iter
    (fun row -> if Array.length row <> l then invalid_arg (name ^ ": ragged matrix"))
    dist;
  l

(* Plain Held-Karp: best.(mask).(i) = shortest path visiting exactly the
   cities of mask, ending at city i (mask must contain i). *)
let held_karp_table dist =
  let l = check_square "Programs.held_karp" dist in
  if l > 20 then invalid_arg "Programs.held_karp: too many cities";
  let size = 1 lsl l in
  let best = Array.make_matrix size l infinity in
  for i = 0 to l - 1 do
    best.(1 lsl i).(i) <- 0.0
  done;
  for mask = 1 to size - 1 do
    for i = 0 to l - 1 do
      if mask land (1 lsl i) <> 0 && best.(mask).(i) < infinity then
        for j = 0 to l - 1 do
          if mask land (1 lsl j) = 0 then begin
            let mask' = mask lor (1 lsl j) in
            let cand = best.(mask).(i) +. dist.(i).(j) in
            if cand < best.(mask').(j) then best.(mask').(j) <- cand
          end
        done
    done
  done;
  best

let reference_held_karp dist =
  let l = check_square "Programs.reference_held_karp" dist in
  let best = held_karp_table dist in
  let full = (1 lsl l) - 1 in
  Array.fold_left Float.min infinity best.(full)

let held_karp ctx dist =
  let l = check_square "Programs.held_karp" dist in
  let best = held_karp_table dist in
  let size = 1 lsl l in
  (* One traced element per hypercube vertex: the "solution set" Y[mask],
     summarized by its cheapest member.  Mask 0 (the empty set) is the
     input vertex; every other mask is a custom op over the masks with one
     city removed — exactly the hypercube dependency structure. *)
  let values = Array.make size None in
  values.(0) <- Some (Trace.input ~label:"S0" ctx 0.0);
  for mask = 1 to size - 1 do
    let operands = ref [] in
    for i = l - 1 downto 0 do
      if mask land (1 lsl i) <> 0 then
        operands := Option.get values.(mask land lnot (1 lsl i)) :: !operands
    done;
    let summary =
      let m = Array.fold_left Float.min infinity best.(mask) in
      if m = infinity then 0.0 else m
    in
    values.(mask) <-
      Some
        (Trace.custom
           ~label:(Printf.sprintf "S%x" mask)
           ~f:(fun _ -> summary)
           !operands)
  done;
  Option.get values.(size - 1)

let brute_force_shortest_path dist =
  let l = check_square "Programs.brute_force_shortest_path" dist in
  if l > 9 then invalid_arg "Programs.brute_force_shortest_path: too many cities";
  let cities = List.init l (fun i -> i) in
  let rec permutations = function
    | [] -> [ [] ]
    | xs ->
        List.concat_map
          (fun x ->
            List.map (fun p -> x :: p) (permutations (List.filter (( <> ) x) xs)))
          xs
  in
  List.fold_left
    (fun best perm ->
      let rec cost = function
        | a :: b :: rest -> dist.(a).(b) +. cost (b :: rest)
        | _ -> 0.0
      in
      Float.min best (cost perm))
    infinity (permutations cities)
