open Graphio_graph

type ctx = { builder : Dag.Builder.t }

type value = {
  ctx : ctx;
  vid : int;
  data : float;
}

let create () = { builder = Dag.Builder.create () }

let input ?label ctx data =
  let label = Option.value label ~default:(Printf.sprintf "in%d" (Dag.Builder.n_vertices ctx.builder)) in
  { ctx; vid = Dag.Builder.add_vertex ~label ctx.builder; data }

let payload v = v.data

let id v = v.vid

let same_ctx operands =
  match operands with
  | [] -> invalid_arg "Trace: operation with no operands"
  | first :: rest ->
      List.iter
        (fun v ->
          if v.ctx != first.ctx then
            invalid_arg "Trace: operands belong to different contexts")
        rest;
      first.ctx

let dedup_ids operands =
  (* Repeated operands are a single data dependency. *)
  let seen = Hashtbl.create 8 in
  List.filter
    (fun v ->
      if Hashtbl.mem seen v.vid then false
      else begin
        Hashtbl.add seen v.vid ();
        true
      end)
    operands

let record ~label ctx operands data =
  let vid = Dag.Builder.add_vertex ~label ctx.builder in
  List.iter (fun op -> Dag.Builder.add_edge ctx.builder op.vid vid) (dedup_ids operands);
  { ctx; vid; data }

let custom ~label ~f operands =
  let ctx = same_ctx operands in
  let data = f (Array.of_list (List.map payload operands)) in
  record ~label ctx operands data

let binop label f a b =
  let ctx = same_ctx [ a; b ] in
  record ~label ctx [ a; b ] (f a.data b.data)

let add a b = binop "+" ( +. ) a b
let sub a b = binop "-" ( -. ) a b
let mul a b = binop "*" ( *. ) a b
let div a b = binop "/" ( /. ) a b

let neg a = record ~label:"neg" a.ctx [ a ] (-.a.data)

let graph ctx = Dag.Builder.build ~verify_acyclic:false ctx.builder

let n_operations ctx = Dag.Builder.n_vertices ctx.builder

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( ~- ) = neg
end
