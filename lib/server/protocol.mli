(** Wire protocol of [graphio serve]: newline-delimited JSON.

    Every request is one JSON object on one line; every reply is one JSON
    object on one line.  Bound queries reuse the batch job schema of
    [graphio batch] (spec / m / p / method), extended with an inline
    edge-list alternative, a per-request [h] and a per-request deadline:

    {v
    {"spec":"fft:6", "m":8}
    {"edgelist":"graphio 1\nn 2 m 1\ne 0 1\n", "m":4, "method":"standard"}
    {"spec":"bhk:8", "m":4, "p":2, "h":64, "timeout_s":1.5, "id":7}
    {"op":"ping"}  {"op":"stats"}  {"op":"metrics"}  {"op":"shutdown"}
    v}

    Replies always carry ["ok"] (and echo ["id"] when the request had
    one).  Successful bound replies mirror the [graphio batch] output
    fields; failures are structured instead of dropped connections:
    [{"ok":false, "code":"bad_request"|"timeout"|"internal", "error":MSG}].

    Parsing is total: any line — malformed JSON, wrong types, unknown
    fields — yields [Error] with a message the server turns into a
    [bad_request] reply, never an exception or a closed socket. *)

type source =
  | Spec of string  (** a {!Graphio_workloads.Spec} generator spec *)
  | Edgelist of string  (** inline {!Graphio_graph.Edgelist} document *)

type query = {
  id : Graphio_obs.Jsonx.t option;  (** echoed verbatim in the reply *)
  source : source;
  m : int;
  p : int option;
  method_ : Graphio_core.Solver.method_;
  h : int option;  (** per-request eigenvalue cap (server default otherwise) *)
  timeout_s : float option;  (** per-request deadline (server default otherwise) *)
}

type request =
  | Query of query
  | Ping of Graphio_obs.Jsonx.t option
  | Stats of Graphio_obs.Jsonx.t option
  | Metrics_op of Graphio_obs.Jsonx.t option
      (** live metrics exposition: the reply carries the registry snapshot
          as JSON, a Prometheus text rendering, and interpolated
          p50/p95/p99 of [server.request_seconds] *)
  | Shutdown of Graphio_obs.Jsonx.t option

val request_of_line : string -> (request, Graphio_obs.Jsonx.t option * string) result
(** Parse one request line.  [Error (id, msg)] still carries the request
    id whenever the line was an object with one, so even a rejected
    request gets a correlatable reply. *)

val method_name : Graphio_core.Solver.method_ -> string
val backend_name : Graphio_la.Eigen.backend -> string
