type t = { ic : in_channel; oc : out_channel }

let sockaddr = function
  | Server.Unix_socket path -> Unix.ADDR_UNIX path
  | Server.Tcp (host, port) ->
      let addr =
        if host = "" || host = "*" then Unix.inet_addr_loopback
        else
          try Unix.inet_addr_of_string host
          with Failure _ -> Unix.inet_addr_loopback
      in
      Unix.ADDR_INET (addr, port)

let connect ?(retries = 100) transport =
  let addr = sockaddr transport in
  let rec go attempt =
    let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () -> { ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }
    | exception
        Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) when attempt < retries
      ->
        Unix.close fd;
        Unix.sleepf 0.05;
        go (attempt + 1)
    | exception e ->
        Unix.close fd;
        raise e
  in
  go 0

let send t line =
  output_string t.oc line;
  output_char t.oc '\n';
  flush t.oc

let recv t = input_line t.ic
let rpc t line = send t line; recv t

let close t =
  (try close_out_noerr t.oc with _ -> ());
  try close_in_noerr t.ic with _ -> ()
