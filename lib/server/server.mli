(** [graphio serve] — a long-lived bound service.

    One process, one listening socket (Unix-domain by default, TCP
    optionally), newline-delimited JSON requests ({!Protocol}).  Request
    handling is batched per event-loop round and dispatched onto a
    {!Graphio_par.Pool}: every complete line read in one round is answered
    concurrently (distinct eigensolves run on separate domains; a single
    solve parallelizes its matvecs), and every spectrum flows through the
    shared two-tier {!Graphio_cache.Spectrum} cache, so repeated and
    overlapping queries are answered from memory or disk instead of
    recomputing the eigensolve.

    Robustness contract:

    - malformed requests get structured [bad_request] replies; the
      connection (and the server) survives;
    - per-request deadlines: a request whose deadline passes before or
      during its eigensolve is answered with a [timeout] reply (long
      sparse solves are cancelled cooperatively through the eigensolver's
      iteration callback; an already-running dense factorization finishes
      first and the reply still reports the timeout);
    - SIGINT/SIGTERM trigger a graceful drain: stop accepting, answer
      everything already read, flush, unlink the socket, return —
      the [{"op":"shutdown"}] admin request does the same from the wire;
    - responses to one connection are written in request order.

    Observability: [server.requests], [server.errors],
    [server.connections], [server.inflight] plus a [server.request_seconds]
    histogram over {!Graphio_obs.Metrics.latency_buckets}; each query is
    assigned a fresh request id ([req-N]) at the parse edge, installed as
    the ambient {!Graphio_obs.Ctx} id for the whole handling path — so the
    [server.request] span, every structured {!Graphio_obs.Log} event the
    request touches (cache lookups, the eigensolve, the reply), and the
    [rid] field of the success reply all correlate.  Connections get
    [conn-N] ids ([server.accept]/[server.drain] events).  The
    [{"op":"stats"}] admin request returns the full metrics snapshot as
    JSON; [{"op":"metrics"}] additionally returns a Prometheus text
    rendering, freshly sampled [runtime.gc.*] gauges and interpolated
    p50/p95/p99 request latency — live, without restarting the server
    (see docs/OBSERVABILITY.md). *)

type transport =
  | Unix_socket of string  (** path of the listening socket (unlinked on exit) *)
  | Tcp of string * int  (** host, port *)

type config = {
  transport : transport;
  pool_size : int;  (** domain-pool participants; [<= 1] runs sequentially *)
  cache : Graphio_cache.Spectrum.t;  (** shared spectrum cache (never [None]: pass
      {!Graphio_cache.Spectrum.disabled} to serve cold) *)
  timeout_s : float option;  (** default per-request deadline; [None] = no deadline *)
  h : int;  (** default eigenvalue cap (requests may override) *)
  dense_threshold : int option;  (** eigensolver crossover override (tests) *)
  closed_form : bool;
      (** dispatch recognized graphs to the closed-form spectrum tier
          (see {!Graphio_recognize.Recognize}); the reply's ["tier"] field
          reports which tier answered.  [false] forces every request
          through the numeric pipeline ([graphio serve --no-closed-form]). *)
  warm_start : bool;
      (** seed sparse eigensolves from cached Ritz vectors of related
          solves (same graph/method/params, different [h]); the reply's
          ["warm_start"] field reports per-request provenance.  Warm
          replies match cold ones to solver tolerance but not bitwise
          ([graphio serve --no-warm-start] opts out;
          docs/PERFORMANCE.md). *)
  filter_degree : Graphio_la.Filtered.degree;
      (** Chebyshev filter degree policy for sparse eigensolves
          ([graphio serve --filter-degree auto|N]). *)
  portfolio : Graphio_core.Solver.method_ list option;
      (** member set evaluated by [method=portfolio] requests
          ([graphio serve --portfolio-methods]); [None] = the solver
          default, {!Graphio_core.Method.default_portfolio}.  Replies to
          portfolio requests carry a ["methods"] array (per-member bound,
          best_k, tier, cache_hit) and a ["winner"] field. *)
}

val default_config : transport -> config
(** Pool of 1, a fresh default cache ({!Graphio_cache.Spectrum.ambient}
    when configured, else memory-only), no timeout, [h = 100], closed-form
    dispatch on, warm starts on, [Auto] filter degree. *)

val run : ?ready:(unit -> unit) -> config -> unit
(** Bind, listen, serve until a shutdown request or signal, drain, clean
    up, return.  [ready] fires once the socket is listening (test and
    bench hook).  Raises [Unix.Unix_error] if the socket cannot be bound. *)
