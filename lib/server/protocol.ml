open Graphio_obs

type source = Spec of string | Edgelist of string

type query = {
  id : Jsonx.t option;
  source : source;
  m : int;
  p : int option;
  method_ : Graphio_core.Solver.method_;
  h : int option;
  timeout_s : float option;
}

type request =
  | Query of query
  | Ping of Jsonx.t option
  | Stats of Jsonx.t option
  | Metrics_op of Jsonx.t option
  | Shutdown of Jsonx.t option

let method_name = Graphio_core.Method.to_string

let backend_name = function
  | Graphio_la.Eigen.Dense -> "dense"
  | Graphio_la.Eigen.Sparse_filtered -> "filtered"

(* Field accessors that reject wrong types instead of coercing: a request
   with "m":"4" is a client bug worth a clear message, not a guess. *)

exception Bad of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Bad msg)) fmt

let known_fields =
  [ "id"; "op"; "spec"; "edgelist"; "m"; "p"; "method"; "h"; "timeout_s" ]

let get_string name obj =
  match Jsonx.member name obj with
  | None | Some Jsonx.Null -> None
  | Some (Jsonx.String s) -> Some s
  | Some _ -> fail "field %S: expected a string" name

let get_int name obj =
  match Jsonx.member name obj with
  | None | Some Jsonx.Null -> None
  | Some (Jsonx.Int i) -> Some i
  | Some _ -> fail "field %S: expected an integer" name

let get_number name obj =
  match Jsonx.member name obj with
  | None | Some Jsonx.Null -> None
  | Some (Jsonx.Int i) -> Some (float_of_int i)
  | Some (Jsonx.Float f) -> Some f
  | Some _ -> fail "field %S: expected a number" name

let positive name = function
  | Some v when v < 1 -> fail "field %S: expected a positive integer" name
  | v -> v

let parse_query ~id obj =
  (match obj with
  | Jsonx.Obj fields ->
      List.iter
        (fun (k, _) ->
          if not (List.mem k known_fields) then fail "unknown field %S" k)
        fields
  | _ -> fail "expected a JSON object");
  let source =
    match (get_string "spec" obj, get_string "edgelist" obj) with
    | Some s, None -> Spec s
    | None, Some e -> Edgelist e
    | Some _, Some _ -> fail "provide exactly one of \"spec\" or \"edgelist\""
    | None, None -> fail "missing \"spec\" or \"edgelist\""
  in
  let m =
    match positive "m" (get_int "m" obj) with
    | Some m -> m
    | None -> fail "missing field \"m\""
  in
  let p = positive "p" (get_int "p" obj) in
  let h = positive "h" (get_int "h" obj) in
  let method_ =
    match get_string "method" obj with
    | None -> Graphio_core.Solver.Normalized
    | Some s -> (
        match Graphio_core.Method.of_string s with
        | Some m -> m
        | None ->
            fail "field \"method\": expected %s, got %S"
              Graphio_core.Method.expected s)
  in
  let timeout_s =
    match get_number "timeout_s" obj with
    | Some t when not (Float.is_finite t) || t < 0.0 ->
        fail "field \"timeout_s\": expected a non-negative finite number"
    | t -> t
  in
  Query { id; source; m; p; method_; h; timeout_s }

let request_of_line line =
  match Jsonx.of_string line with
  | exception Failure msg -> Error (None, "malformed JSON: " ^ msg)
  | json -> (
      let id = Jsonx.member "id" json in
      match
        match Jsonx.member "op" json with
        | Some (Jsonx.String "ping") -> Ping id
        | Some (Jsonx.String "stats") -> Stats id
        | Some (Jsonx.String "metrics") -> Metrics_op id
        | Some (Jsonx.String "shutdown") -> Shutdown id
        | Some (Jsonx.String other) -> fail "unknown op %S" other
        | Some _ -> fail "field \"op\": expected a string"
        | None -> parse_query ~id json
      with
      | request -> Ok request
      | exception Bad msg -> Error (id, msg))
