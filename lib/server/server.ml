open Graphio_obs
open Graphio_core

type transport = Unix_socket of string | Tcp of string * int

type config = {
  transport : transport;
  pool_size : int;
  cache : Graphio_cache.Spectrum.t;
  timeout_s : float option;
  h : int;
  dense_threshold : int option;
  closed_form : bool;
  warm_start : bool;
  filter_degree : Graphio_la.Filtered.degree;
  portfolio : Solver.method_ list option;
      (* member set for method=portfolio queries; [None] = solver default *)
}

let default_config transport =
  {
    transport;
    pool_size = 1;
    cache =
      (match Graphio_cache.Spectrum.ambient () with
      | Some c -> c
      | None -> Graphio_cache.Spectrum.create ());
    timeout_s = None;
    h = 100;
    dense_threshold = None;
    closed_form = true;
    (* warm starts are on by default in the serve tier: a long-lived
       server answering related queries at several h values is exactly
       the reuse the Ritz store exists for (CLI --no-warm-start opts
       out; see docs/PERFORMANCE.md for the determinism caveat) *)
    warm_start = true;
    filter_degree = Graphio_la.Filtered.Auto;
    portfolio = None;
  }

let c_requests = Metrics.counter "server.requests"
let c_errors = Metrics.counter "server.errors"
let c_connections = Metrics.counter "server.connections"
let g_inflight = Metrics.gauge "server.inflight"

let h_request_seconds =
  Metrics.histogram ~help:"bound query latency in seconds"
    ~buckets:Metrics.latency_buckets "server.request_seconds"

(* Fault sites (inert without a plan, see Graphio_fault): transient accept
   failures, partial/failed socket reads and writes, mid-request
   disconnects, and deadline jitter between solve and reply.  The chaos
   battery drives each and asserts the server never crashes, never emits
   a silently wrong bound, and still drains gracefully. *)
let f_accept = Graphio_fault.site "server.accept"
let f_sock_read = Graphio_fault.site "server.sock.read"
let f_sock_write = Graphio_fault.site "server.sock.write"
let f_deadline = Graphio_fault.site "server.deadline"

(* Cooperative per-request deadline: raised by the pre-solve check and by
   the eigensolver's per-sweep callback. *)
exception Deadline

(* ------------------------------ replies ------------------------------ *)

let id_field = function Some id -> [ ("id", id) ] | None -> []

let error_reply ?id ~code msg =
  Jsonx.to_string
    (Jsonx.Obj
       (id_field id
       @ [
           ("ok", Jsonx.Bool false);
           ("code", Jsonx.String code);
           ("error", Jsonx.String msg);
         ]))

let query_reply ~id ~rid (r : Solver.batch_result) =
  let j = r.Solver.job and o = r.Solver.outcome in
  let b = o.Solver.result in
  (* per-component provenance rides along only when the request's graph
     actually decomposed, so connected-graph replies are byte-stable *)
  let component_fields =
    if Array.length o.Solver.components = 0 then []
    else
      [
        ( "components",
          Jsonx.List
            (Array.to_list
               (Array.map
                  (fun c ->
                    Jsonx.Obj
                      [
                        ("n", Jsonx.Int c.Solver.comp_n);
                        ("edges", Jsonx.Int c.Solver.comp_edges);
                        ("tier", Jsonx.String (Solver.tier_name c.Solver.comp_tier));
                        ("cache_hit", Jsonx.Bool c.Solver.comp_cache_hit);
                      ])
                  o.Solver.components)) );
      ]
  in
  (* per-member values and the winner ride along only on portfolio
     queries, so every single-method reply is byte-identical to before.
     No per-member wall times here: only aggregate wall_s is wire-level
     (member walls stay available in the OCaml API). *)
  let method_fields =
    if Array.length o.Solver.methods = 0 then []
    else
      [
        ( "methods",
          Jsonx.List
            (Array.to_list
               (Array.map
                  (fun mv ->
                    Jsonx.Obj
                      [
                        ( "method",
                          Jsonx.String (Protocol.method_name mv.Solver.mv_method)
                        );
                        ("bound", Jsonx.Float mv.Solver.mv_bound);
                        ("best_k", Jsonx.Int mv.Solver.mv_best_k);
                        ("tier", Jsonx.String (Solver.tier_name mv.Solver.mv_tier));
                        ("cache_hit", Jsonx.Bool mv.Solver.mv_cache_hit);
                        ("warm_start", Jsonx.Bool mv.Solver.mv_warm_start);
                      ])
                  o.Solver.methods)) );
      ]
      @
      match o.Solver.winner with
      | Some w -> [ ("winner", Jsonx.String (Protocol.method_name w)) ]
      | None -> []
  in
  Jsonx.to_string
    (Jsonx.Obj
       (id_field id
       @ [
           ("ok", Jsonx.Bool true);
           ("rid", Jsonx.String rid);
           ("n", Jsonx.Int (Graphio_graph.Dag.n_vertices j.Solver.dag));
           ("edges", Jsonx.Int (Graphio_graph.Dag.n_edges j.Solver.dag));
           ("m", Jsonx.Int j.Solver.m);
           ("p", Jsonx.Int (Option.value j.Solver.p ~default:1));
           ("method", Jsonx.String (Protocol.method_name j.Solver.method_));
           ("h", Jsonx.Int (Array.length o.Solver.eigenvalues));
           ("bound", Jsonx.Float b.Spectral_bound.bound);
           ("best_k", Jsonx.Int b.Spectral_bound.best_k);
           ("best_raw", Jsonx.Float b.Spectral_bound.best_raw);
           ("backend", Jsonx.String (Protocol.backend_name o.Solver.backend));
           ("tier", Jsonx.String (Solver.tier_name o.Solver.tier));
           ("cache_hit", Jsonx.Bool r.Solver.cache_hit);
           ("warm_start", Jsonx.Bool o.Solver.warm_start);
           ("wall_s", Jsonx.Float r.Solver.wall_s);
         ]
       @ component_fields @ method_fields))

let build_graph = function
  | Protocol.Spec s -> (
      match Graphio_workloads.Spec.parse s with
      | Ok g -> g
      | Error msg -> invalid_arg msg)
  | Protocol.Edgelist text -> Graphio_graph.Edgelist.of_string text

let answer_query cfg ?pool ~arrival_ns ~rid (q : Protocol.query) =
  Metrics.incr c_requests;
  let t0 = Clock.now_ns () in
  (* outcome is (code, reply): code "ok" for a success, the structured
     error code otherwise — logged on the server.reply event below *)
  let code, reply =
    Span.with_ "server.request" @@ fun () ->
    let timeout_s =
      match q.Protocol.timeout_s with Some t -> Some t | None -> cfg.timeout_s
    in
    let deadline_ns =
      Option.map (fun t -> arrival_ns + int_of_float (t *. 1e9)) timeout_s
    in
    let check_deadline () =
      match deadline_ns with
      | Some d when Clock.now_ns () >= d -> raise Deadline
      | _ -> ()
    in
    let id = q.Protocol.id in
    try
      let g = build_graph q.Protocol.source in
      check_deadline ();
      let job =
        Solver.job ~method_:q.Protocol.method_ ?p:q.Protocol.p g ~m:q.Protocol.m
      in
      let h = Option.value q.Protocol.h ~default:cfg.h in
      let r =
        Solver.bound_cached ~cache:cfg.cache ?pool ?portfolio:cfg.portfolio ~h
          ?dense_threshold:cfg.dense_threshold ~closed_form:cfg.closed_form
          ~warm_start:cfg.warm_start ~filter_degree:cfg.filter_degree
          ~on_iteration:(fun _ -> check_deadline ())
          job
      in
      (* injected deadline jitter lands in the gap between the solve and the
         reply — the window the final check below exists to close *)
      (match Graphio_fault.hit f_deadline with
      | Graphio_fault.Sleep s -> Unix.sleepf s
      | _ -> ());
      (* A reply composed after the deadline has passed must be the
         structured timeout, not a late success: the per-iteration checks
         only cover the eigensolve, so a cache hit or a slow reply path
         could otherwise answer an expired request. *)
      check_deadline ();
      ("ok", query_reply ~id ~rid r)
    with
    | Deadline ->
        Metrics.incr c_errors;
        ( "timeout",
          error_reply ?id ~code:"timeout"
            (Printf.sprintf "deadline of %gs exceeded"
               (Option.value timeout_s ~default:0.0)) )
    | Invalid_argument msg | Failure msg ->
        Metrics.incr c_errors;
        ("bad_request", error_reply ?id ~code:"bad_request" msg)
    | e ->
        Metrics.incr c_errors;
        ("internal", error_reply ?id ~code:"internal" (Printexc.to_string e))
  in
  let wall_s = Clock.elapsed_s t0 in
  Metrics.observe h_request_seconds wall_s;
  Log.emit "server.reply"
    [
      ("code", Jsonx.String code);
      ("wall_s", Jsonx.Float wall_s);
    ];
  reply

(* --------------------------- client state ---------------------------- *)

(* A request line larger than this cannot be answered sanely (even inline
   edge lists of million-edge graphs stay well below); the client gets a
   structured error and the connection is closed. *)
let max_request_bytes = 16 * 1024 * 1024

type client = {
  fd : Unix.file_descr;
  cid : string;  (** connection id, [conn-N] — correlates events per peer *)
  inbuf : Buffer.t;
  mutable out : string;  (** bytes accepted but not yet written *)
  mutable eof : bool;  (** read side finished *)
  mutable broken : bool;  (** write side failed; drop without flushing *)
}

let enqueue c s = if not c.broken then c.out <- c.out ^ s ^ "\n"

let try_flush c =
  if c.out <> "" && not c.broken then begin
    let limit =
      match Graphio_fault.hit ~len:(String.length c.out) f_sock_write with
      | Graphio_fault.Pass -> String.length c.out
      | Graphio_fault.Torn k -> k (* partial write: k bytes now, rest later *)
      | Graphio_fault.Sleep s ->
          Unix.sleepf s;
          String.length c.out
      | Graphio_fault.Fail | Graphio_fault.Flip _ ->
          (* wire corruption is not modeled on the write side (a reply must
             arrive intact or not at all); both degrade to a dead peer *)
          c.broken <- true;
          0
    in
    if limit > 0 && not c.broken then
      match Unix.write_substring c.fd c.out 0 limit with
      | written -> c.out <- String.sub c.out written (String.length c.out - written)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        -> ()
      | exception Unix.Unix_error _ -> c.broken <- true
  end

(* Split off complete lines; the unterminated tail stays buffered. *)
let take_lines c =
  let data = Buffer.contents c.inbuf in
  let lines = ref [] in
  let start = ref 0 in
  String.iteri
    (fun i ch ->
      if ch = '\n' then begin
        lines := String.sub data !start (i - !start) :: !lines;
        start := i + 1
      end)
    data;
  Buffer.clear c.inbuf;
  Buffer.add_substring c.inbuf data !start (String.length data - !start);
  (* a closed read side flushes the unterminated tail as a final line *)
  if c.eof && Buffer.length c.inbuf > 0 then begin
    lines := Buffer.contents c.inbuf :: !lines;
    Buffer.clear c.inbuf
  end;
  List.rev !lines

let read_into c =
  let chunk = Bytes.create 65536 in
  let rec go () =
    (* The fault is applied to the length we ask the kernel for, so a torn
       read is a genuine short read: undelivered bytes stay queued in the
       socket and surface at the next select round — no data is invented
       or lost.  [Fail] is a mid-request disconnect; [Flip] corrupts the
       received bytes (client-side corruption the protocol answers with a
       structured parse error, since NDJSON carries no integrity check). *)
    let fault = Graphio_fault.hit ~len:(Bytes.length chunk) f_sock_read in
    match fault with
    | Graphio_fault.Fail ->
        c.broken <- true;
        c.eof <- true
    | Graphio_fault.Torn 0 -> () (* short read of nothing: retry next round *)
    | _ -> (
        (match fault with Graphio_fault.Sleep s -> Unix.sleepf s | _ -> ());
        let want =
          match fault with Graphio_fault.Torn k -> k | _ -> Bytes.length chunk
        in
        match Unix.read c.fd chunk 0 want with
        | 0 -> c.eof <- true
        | n ->
            (match fault with
            | Graphio_fault.Flip (off, mask) when off < n ->
                Bytes.set chunk off
                  (Char.chr (Char.code (Bytes.get chunk off) lxor mask))
            | _ -> ());
            Buffer.add_subbytes c.inbuf chunk 0 n;
            if Buffer.length c.inbuf > max_request_bytes then begin
              enqueue c
                (error_reply ~code:"bad_request"
                   (Printf.sprintf "request exceeds %d bytes" max_request_bytes));
              Buffer.clear c.inbuf;
              c.eof <- true
            end
            else go ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
          -> ()
        | exception Unix.Unix_error _ ->
            c.broken <- true;
            c.eof <- true)
  in
  go ()

(* ------------------------------- loop -------------------------------- *)

let bind_listener = function
  | Unix_socket path ->
      if Sys.file_exists path then (try Unix.unlink path with Unix.Unix_error _ -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      (fd, fun () -> try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp (host, port) ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      let addr =
        if host = "" || host = "*" then Unix.inet_addr_any
        else
          try Unix.inet_addr_of_string host
          with Failure _ -> (
            match Unix.gethostbyname host with
            | { Unix.h_addr_list = [||]; _ } ->
                failwith (Printf.sprintf "serve: cannot resolve host %S" host)
            | { Unix.h_addr_list; _ } -> h_addr_list.(0)
            | exception Not_found ->
                failwith (Printf.sprintf "serve: cannot resolve host %S" host))
      in
      Unix.bind fd (Unix.ADDR_INET (addr, port));
      (fd, fun () -> ())

let stop_requested = Atomic.make false

let install_signal_handlers () =
  let handler = Sys.Signal_handle (fun _ -> Atomic.set stop_requested true) in
  (try Sys.set_signal Sys.sigint handler with Invalid_argument _ -> ());
  (try Sys.set_signal Sys.sigterm handler with Invalid_argument _ -> ());
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ()

let run ?(ready = fun () -> ()) cfg =
  Atomic.set stop_requested false;
  install_signal_handlers ();
  let listen_fd, cleanup = bind_listener cfg.transport in
  let pool =
    if cfg.pool_size > 1 then Some (Graphio_par.Pool.create ~size:cfg.pool_size ())
    else None
  in
  let clients = ref [] in
  let listening = ref true in
  let draining = ref false in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) !clients;
      (if !listening then try Unix.close listen_fd with Unix.Unix_error _ -> ());
      cleanup ();
      Option.iter Graphio_par.Pool.shutdown pool)
    (fun () ->
      Unix.listen listen_fd 64;
      Unix.set_nonblock listen_fd;
      ready ();
      let accept_all () =
        let rec go () =
          (* a fired accept fault skips this round; the connection stays in
             the kernel backlog and is picked up at the next select round *)
          match Graphio_fault.hit f_accept with
          | Graphio_fault.Fail | Graphio_fault.Torn _ | Graphio_fault.Flip _ ->
              ()
          | (Graphio_fault.Pass | Graphio_fault.Sleep _) as o -> (
              (match o with Graphio_fault.Sleep s -> Unix.sleepf s | _ -> ());
              match Unix.accept listen_fd with
          | fd, _ ->
              Unix.set_nonblock fd;
              Metrics.incr c_connections;
              let cid = Ctx.fresh ~prefix:"conn" () in
              Log.emit "server.accept" [ ("cid", Jsonx.String cid) ];
              clients :=
                {
                  fd;
                  cid;
                  inbuf = Buffer.create 256;
                  out = "";
                  eof = false;
                  broken = false;
                }
                :: !clients;
              go ()
              | exception
                  Unix.Unix_error
                    ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
                -> ()
              | exception Unix.Unix_error _ -> ())
        in
        go ()
      in
      (* Answer one round's worth of lines.  Parsing and admin ops run in
         the loop; bound queries become thunks dispatched together on the
         pool, so concurrent clients' eigensolves overlap.  Responses are
         enqueued in per-client request order (thunks keep their slot). *)
      let process_lines lines =
        let arrival_ns = Clock.now_ns () in
        let tasks =
          List.filter_map
            (fun (c, line) ->
              if String.trim line = "" then None
              else
                match Protocol.request_of_line line with
                | Error (id, msg) ->
                    Metrics.incr c_errors;
                    Some (c, fun () -> error_reply ?id ~code:"bad_request" msg)
                | Ok (Protocol.Ping id) ->
                    Some
                      ( c,
                        fun () ->
                          Jsonx.to_string
                            (Jsonx.Obj
                               (id_field id
                               @ [ ("ok", Jsonx.Bool true); ("op", Jsonx.String "ping") ]))
                      )
                | Ok (Protocol.Stats id) ->
                    Some
                      ( c,
                        fun () ->
                          Jsonx.to_string
                            (Jsonx.Obj
                               (id_field id
                               @ [
                                   ("ok", Jsonx.Bool true);
                                   ("op", Jsonx.String "stats");
                                   ( "metrics",
                                     Metrics.to_json (Metrics.snapshot ()) );
                                 ])) )
                | Ok (Protocol.Metrics_op id) ->
                    Some
                      ( c,
                        fun () ->
                          (* refresh the GC gauges so the exposition is live,
                             then expose the same snapshot three ways: JSON
                             (programmatic), Prometheus text (scrapers), and
                             interpolated latency quantiles (humans/top) *)
                          Runtime.sample ();
                          let snap = Metrics.snapshot () in
                          let quant p =
                            match
                              Metrics.snapshot_quantile snap
                                "server.request_seconds" p
                            with
                            | Some v -> Jsonx.Float v
                            | None -> Jsonx.Null
                          in
                          let latency_count =
                            match Metrics.find snap "server.request_seconds" with
                            | Some (Metrics.Histogram { count; _ }) -> count
                            | _ -> 0
                          in
                          Jsonx.to_string
                            (Jsonx.Obj
                               (id_field id
                               @ [
                                   ("ok", Jsonx.Bool true);
                                   ("op", Jsonx.String "metrics");
                                   ( "latency",
                                     Jsonx.Obj
                                       [
                                         ("p50_s", quant 0.5);
                                         ("p95_s", quant 0.95);
                                         ("p99_s", quant 0.99);
                                         ("count", Jsonx.Int latency_count);
                                       ] );
                                   ( "prometheus",
                                     Jsonx.String (Metrics.render_prometheus snap)
                                   );
                                   ("metrics", Metrics.to_json snap);
                                 ])) )
                | Ok (Protocol.Shutdown id) ->
                    draining := true;
                    Log.emit "server.drain" [ ("cid", Jsonx.String c.cid) ];
                    Some
                      ( c,
                        fun () ->
                          Jsonx.to_string
                            (Jsonx.Obj
                               (id_field id
                               @ [
                                   ("ok", Jsonx.Bool true);
                                   ("op", Jsonx.String "shutdown");
                                 ])) )
                | Ok (Protocol.Query q) ->
                    (* One request id per query line, minted at the edge:
                       the thunk installs it as the ambient id, so spans,
                       structured events and the reply itself all carry
                       it — a served request is reconstructable from
                       telemetry alone. *)
                    let rid = Ctx.fresh () in
                    Log.emit "server.request"
                      [
                        ("rid", Jsonx.String rid);
                        ("cid", Jsonx.String c.cid);
                        ("m", Jsonx.Int q.Protocol.m);
                        ( "source",
                          Jsonx.String
                            (match q.Protocol.source with
                            | Protocol.Spec s -> s
                            | Protocol.Edgelist _ -> "edgelist") );
                      ];
                    Some
                      ( c,
                        fun () ->
                          Ctx.with_rid rid (fun () ->
                              answer_query cfg ?pool ~arrival_ns ~rid q) ))
            lines
        in
        match tasks with
        | [] -> ()
        | tasks ->
            let tasks = Array.of_list tasks in
            Metrics.set g_inflight (float_of_int (Array.length tasks));
            (* Task thunks are written not to raise (answer_query catches
               everything), but a task dying anyway — historically possible,
               and routinely injected via the "pool.task" fault site — must
               not take the whole server down with it: [run_all] re-raises
               the first task exception.  Fall back to inline execution
               with a per-task catch so every request still gets a reply. *)
            let run_inline () =
              Array.map
                (fun (_, f) ->
                  try f ()
                  with e ->
                    Metrics.incr c_errors;
                    error_reply ~code:"internal" (Printexc.to_string e))
                tasks
            in
            let replies =
              match pool with
              | Some pool when Array.length tasks > 1 -> (
                  try Graphio_par.Pool.run_all pool (Array.map snd tasks)
                  with _ -> run_inline ())
              | _ -> run_inline ()
            in
            Metrics.set g_inflight 0.0;
            Array.iteri (fun i reply -> enqueue (fst tasks.(i)) reply) replies
      in
      let finished () =
        !draining
        && List.for_all (fun c -> (c.out = "" || c.broken) && Buffer.length c.inbuf = 0) !clients
      in
      while not (finished ()) do
        if Atomic.get stop_requested then draining := true;
        if !draining && !listening then begin
          (try Unix.close listen_fd with Unix.Unix_error _ -> ());
          listening := false
        end;
        (* drop clients we are done with *)
        clients :=
          List.filter
            (fun c ->
              let dead = c.broken || (c.eof && c.out = "" && Buffer.length c.inbuf = 0) in
              if dead then (try Unix.close c.fd with Unix.Unix_error _ -> ());
              not dead)
            !clients;
        if not (finished ()) then begin
          let read_fds =
            (if !listening then [ listen_fd ] else [])
            @ List.filter_map
                (fun c -> if c.eof || c.broken then None else Some c.fd)
                !clients
          in
          let write_fds =
            List.filter_map
              (fun c -> if c.out <> "" && not c.broken then Some c.fd else None)
              !clients
          in
          match Unix.select read_fds write_fds [] 0.2 with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | readable, writable, _ ->
              if !listening && List.mem listen_fd readable then accept_all ();
              List.iter
                (fun c -> if List.mem c.fd readable then read_into c)
                !clients;
              let lines =
                List.concat_map
                  (fun c -> List.map (fun l -> (c, l)) (take_lines c))
                  (List.rev !clients)
              in
              process_lines lines;
              List.iter
                (fun c -> if c.out <> "" && (List.mem c.fd writable || true) then try_flush c)
                !clients
        end
      done)
