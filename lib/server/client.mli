(** Minimal blocking client for [graphio serve] — used by the tests and
    the bench harness (and handy for scripting).  One connection, one
    request line in, one reply line out. *)

type t

val connect : ?retries:int -> Server.transport -> t
(** Connect to a running server.  While the socket does not exist yet or
    refuses connections, retries every 50 ms up to [retries] times
    (default 100, i.e. ~5 s) — covers the races of a test that forks the
    server and connects immediately.  Raises [Unix.Unix_error] once the
    retries are exhausted. *)

val rpc : t -> string -> string
(** Send one request line (newline appended), block for one reply line.
    Raises [End_of_file] if the server closes the connection first. *)

val send : t -> string -> unit
(** Send one request line without waiting — for pipelined requests; pair
    with {!recv}. *)

val recv : t -> string
(** Block for the next reply line. *)

val close : t -> unit
