open Graphio_graph

type outcome = {
  order : int array;
  result : Simulator.result;
  initial : Simulator.result;
  evaluations : int;
}

let optimize ?(seed = 7) ?(budget = 200) ?(policy = Simulator.Belady) g ~m =
  let n = Dag.n_vertices g in
  let rng = Graphio_la.Rng.create seed in
  (* Starting point: best of the standard schedules. *)
  let candidates =
    (try [ Topo.natural g ] with Invalid_argument _ -> [])
    @ [ Topo.kahn g; Topo.dfs g; Topo.random ~seed g ]
  in
  let evaluations = ref 0 in
  let score order =
    incr evaluations;
    Simulator.simulate ~policy g ~order ~m
  in
  let scored = List.map (fun o -> (o, score o)) candidates in
  let start_order, start_result =
    List.fold_left
      (fun (bo, br) (o, r) ->
        if r.Simulator.io < br.Simulator.io then (o, r) else (bo, br))
      (List.hd scored) (List.tl scored)
  in
  let order = Array.copy start_order in
  let best = ref start_result in
  if n >= 2 then begin
    let remaining = max 0 (budget - !evaluations) in
    for _ = 1 to remaining do
      let i = Graphio_la.Rng.int rng (n - 1) in
      let u = order.(i) and w = order.(i + 1) in
      if not (Dag.has_edge g u w) then begin
        order.(i) <- w;
        order.(i + 1) <- u;
        let r = score order in
        if r.Simulator.io <= !best.Simulator.io then best := r
        else begin
          (* revert *)
          order.(i) <- u;
          order.(i + 1) <- w
        end
      end
    done
  end;
  { order; result = !best; initial = start_result; evaluations = !evaluations }
