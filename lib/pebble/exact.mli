(** Exact optimal I/O for small computation graphs.

    Computes [J*_G = inf_X J_G(X)] — the paper's target quantity — by
    shortest-path search over memory states, so the lower bounds can be
    measured against the {e true} optimum instead of a heuristic
    schedule's I/O (something the paper itself never had: its figures
    compare lower bounds only against each other).

    A state is [(computed, cache, written)] vertex sets with the
    normalizations that make the search finite and small:

    - values with no pending uses are dropped from the cache immediately
      (free, and never useful again — dominance);
    - sink results never occupy the cache (reported to the user);
    - a needed value evicted before being written costs its write at
      eviction time; a value is written at most once (immutability).

    Transitions: compute an enabled vertex (operands in cache, a slot
    free; cost 0), evict (cost 1 if needed-and-unwritten, else 0), load a
    written value back (cost 1).  Dial's algorithm (bucket Dijkstra) over
    these states returns the optimal non-trivial I/O.

    The state space is exponential; intended for graphs of up to ~20
    vertices (guarded), which is exactly the regime where exact tightness
    measurements are interesting. *)

exception Too_large of string
(** Raised when [n > max_vertices] or the state budget is exhausted. *)

val max_vertices : int
(** Hard cap (20). *)

val optimal_io : ?max_states:int -> Graphio_graph.Dag.t -> m:int -> int
(** [optimal_io g ~m] = [J*_G].  [max_states] (default [2_000_000])
    bounds the explored states; {!Too_large} on overflow.  Raises
    [Invalid_argument] when [m] is below {!Simulator.min_feasible_m}. *)
