open Graphio_graph

exception Too_large of string

let max_vertices = 20

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
  go 0 x

type state = {
  computed : int;
  cache : int;
  written : int;
}

let optimal_io ?(max_states = 2_000_000) g ~m =
  let n = Dag.n_vertices g in
  if n > max_vertices then
    raise (Too_large (Printf.sprintf "Exact.optimal_io: %d vertices (max %d)" n max_vertices));
  if m < Simulator.min_feasible_m g then
    invalid_arg
      (Printf.sprintf "Exact.optimal_io: fast memory %d below feasible minimum %d" m
         (Simulator.min_feasible_m g));
  if n = 0 then 0
  else begin
    let full = (1 lsl n) - 1 in
    let pred_mask = Array.make n 0 and succ_mask = Array.make n 0 in
    for v = 0 to n - 1 do
      Dag.iter_pred g v (fun u -> pred_mask.(v) <- pred_mask.(v) lor (1 lsl u));
      Dag.iter_succ g v (fun w -> succ_mask.(v) <- succ_mask.(v) lor (1 lsl w))
    done;
    (* u is needed in state c iff some successor is not yet computed *)
    let needed c u = succ_mask.(u) land lnot c <> 0 in
    let normalize c k w =
      (* drop dead values from cache and written set *)
      let alive = ref 0 in
      let rest = ref c in
      while !rest <> 0 do
        let u_bit = !rest land - !rest in
        let u = popcount (u_bit - 1) in
        if needed c u then alive := !alive lor u_bit;
        rest := !rest land lnot u_bit
      done;
      { computed = c; cache = k land !alive; written = w land !alive }
    in
    let dist : (state, int) Hashtbl.t = Hashtbl.create 4096 in
    (* Dial-style buckets keyed by cost: edge costs are 0/1 and the total
       is bounded by n (each value written at most once) plus the number
       of uses (each read serves at least one), so an array of queues
       indexed by cost gives Dijkstra order with O(1) queue operations. *)
    let max_cost = n + Dag.n_edges g + 1 in
    let buckets = Array.init (max_cost + 1) (fun _ -> Queue.create ()) in
    let start = normalize 0 0 0 in
    Hashtbl.replace dist start 0;
    Queue.add start buckets.(0);
    let best = ref None in
    let enqueue cost s =
      match Hashtbl.find_opt dist s with
      | Some d when d <= cost -> ()
      | _ ->
          if Hashtbl.length dist >= max_states then
            raise (Too_large "Exact.optimal_io: state budget exhausted");
          Hashtbl.replace dist s cost;
          if cost <= max_cost then Queue.add s buckets.(cost)
    in
    let cost_level = ref 0 in
    while !best = None && !cost_level <= max_cost do
      let q = buckets.(!cost_level) in
      if Queue.is_empty q then incr cost_level
      else begin
        let s = Queue.pop q in
        let cost = !cost_level in
        if Hashtbl.find_opt dist s = Some cost then begin
          if s.computed = full then best := Some cost
          else begin
            let cache_size = popcount s.cache in
            (* 1. compute an enabled vertex *)
            for v = 0 to n - 1 do
              if s.computed land (1 lsl v) = 0
                 && pred_mask.(v) land lnot s.cache = 0
              then begin
                let c' = s.computed lor (1 lsl v) in
                if needed c' v then begin
                  if cache_size < m then
                    enqueue cost (normalize c' (s.cache lor (1 lsl v)) s.written)
                end
                else
                  (* sink (or value consumed by nothing further): result
                     streams to the user without occupying a slot *)
                  enqueue cost (normalize c' s.cache s.written)
              end
            done;
            (* 2. evict a cached value *)
            let rest = ref s.cache in
            while !rest <> 0 do
              let u_bit = !rest land - !rest in
              rest := !rest land lnot u_bit;
              let k' = s.cache land lnot u_bit in
              if s.written land u_bit <> 0 then
                enqueue cost (normalize s.computed k' s.written)
              else
                (* needed (cache is normalized) and unwritten: pay the write *)
                enqueue (cost + 1) (normalize s.computed k' (s.written lor u_bit))
            done;
            (* 3. load a written value back *)
            if cache_size < m then begin
              let rest = ref (s.written land lnot s.cache) in
              while !rest <> 0 do
                let u_bit = !rest land - !rest in
                rest := !rest land lnot u_bit;
                enqueue (cost + 1) (normalize s.computed (s.cache lor u_bit) s.written)
              done
            end
          end
        end
      end
    done;
    match !best with
    | Some io -> io
    | None ->
        (* unreachable for feasible m: some vertex could never be computed *)
        raise (Too_large "Exact.optimal_io: no complete evaluation found")
  end
