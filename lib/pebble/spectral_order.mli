(** Spectral schedule heuristic: evaluate in Fiedler-vector order.

    The partition machinery behind the lower bounds (Theorem 2) says a
    schedule is cheap when contiguous segments have small weighted edge
    boundaries — exactly what sweep cuts of the Fiedler vector (the
    eigenvector of the second-smallest eigenvalue of [L̃]) minimize in the
    relaxation.  This heuristic turns that connection into an *upper*
    bound generator: run Kahn's algorithm but always pick the ready vertex
    with the smallest Fiedler coordinate, producing a valid topological
    order that tends to keep boundary-crossing values short-lived.

    A small empirical payoff of implementing the paper's machinery: the
    same eigenproblem that yields the lower bound also yields a competitive
    schedule. *)

val fiedler_order : ?seed:int -> Graphio_graph.Dag.t -> int array
(** A valid topological order; ties and disconnected pieces resolved by
    vertex id.  For graphs with fewer than 3 vertices this is the natural
    order. *)

val upper_bound :
  ?seed:int -> Graphio_graph.Dag.t -> m:int -> Simulator.result
(** Simulate the Fiedler order under Belady eviction. *)
