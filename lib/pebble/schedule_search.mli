(** Local search over evaluation orders to tighten the simulated upper
    bound.

    The paper frames optimal I/O as a minimization over topological orders
    (§3.1); this module explores that space with hill-climbing over
    precedence-respecting adjacent transpositions, starting from the best
    of the standard schedules.  Tighter upper bounds narrow the sandwich
    around [J*_G] reported in EXPERIMENTS.md — they never affect the lower
    bounds themselves. *)

type outcome = {
  order : int array;  (** best order found *)
  result : Simulator.result;  (** its simulated I/O *)
  initial : Simulator.result;  (** the starting schedule's I/O *)
  evaluations : int;  (** simulator calls spent *)
}

val optimize :
  ?seed:int ->
  ?budget:int ->
  ?policy:Simulator.policy ->
  Graphio_graph.Dag.t ->
  m:int ->
  outcome
(** [optimize g ~m] hill-climbs for [budget] (default 200) simulator
    evaluations under the given eviction [policy] (default Belady).
    Deterministic for a fixed [seed].  The returned order is always valid
    and the returned I/O never exceeds the initial one. *)
