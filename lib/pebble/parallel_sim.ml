open Graphio_graph

type result = {
  per_processor : Simulator.result array;
  max_io : int;
  total_io : int;
  publish_writes : int;
}

let block_assignment g ~order ~p =
  if p < 1 then invalid_arg "Parallel_sim.block_assignment: p must be >= 1";
  let n = Dag.n_vertices g in
  let assignment = Array.make n 0 in
  Array.iteri (fun t v -> assignment.(v) <- min (p - 1) (t * p / max n 1)) order;
  assignment

let round_robin_assignment g ~order ~p =
  if p < 1 then invalid_arg "Parallel_sim.round_robin_assignment: p must be >= 1";
  let assignment = Array.make (Dag.n_vertices g) 0 in
  Array.iteri (fun t v -> assignment.(v) <- t mod p) order;
  assignment

let simulate g ~assignment ~order ~p ~m =
  let n = Dag.n_vertices g in
  if p < 1 then invalid_arg "Parallel_sim.simulate: p must be >= 1";
  if p > 62 then invalid_arg "Parallel_sim.simulate: p too large";
  if Array.length assignment <> n then
    invalid_arg "Parallel_sim.simulate: assignment length mismatch";
  Array.iter
    (fun a ->
      if a < 0 || a >= p then invalid_arg "Parallel_sim.simulate: processor out of range")
    assignment;
  if not (Topo.is_valid g order) then
    invalid_arg "Parallel_sim.simulate: order is not a valid topological order";
  if m < Simulator.min_feasible_m g then
    invalid_arg
      (Printf.sprintf "Parallel_sim.simulate: fast memory %d below feasible minimum %d"
         m (Simulator.min_feasible_m g));
  let pos = Topo.position_of order in
  (* Per-processor next-use schedule: uses of u charged to processor i are
     the evaluation times of u's consumers owned by i. *)
  let uses = Array.make_matrix p n [||] in
  for u = 0 to n - 1 do
    let by_proc = Array.make p [] in
    Dag.iter_succ g u (fun w ->
        let i = assignment.(w) in
        by_proc.(i) <- pos.(w) :: by_proc.(i));
    for i = 0 to p - 1 do
      let times = Array.of_list by_proc.(i) in
      Array.sort compare times;
      uses.(i).(u) <- times
    done
  done;
  let use_ptr = Array.make_matrix p n 0 in
  let next_use i u =
    if use_ptr.(i).(u) < Array.length uses.(i).(u) then uses.(i).(u).(use_ptr.(i).(u))
    else max_int
  in
  (* any-processor pending uses, for spill accounting *)
  let remaining_uses = Array.init n (Dag.out_degree g) in
  let resident_mask = Array.make n 0 in
  let in_slow = Array.make n false in
  let pinned = Array.make n false in
  (* per-processor resident sets *)
  let resident = Array.make_matrix p m (-1) in
  let slot_of = Array.make_matrix p n (-1) in
  let resident_count = Array.make p 0 in
  let peak = Array.make p 0 in
  let reads = Array.make p 0 and writes = Array.make p 0 in
  let publish_writes = ref 0 in
  let add_resident i v =
    resident.(i).(resident_count.(i)) <- v;
    slot_of.(i).(v) <- resident_count.(i);
    resident_count.(i) <- resident_count.(i) + 1;
    resident_mask.(v) <- resident_mask.(v) lor (1 lsl i);
    if resident_count.(i) > peak.(i) then peak.(i) <- resident_count.(i)
  in
  let remove_resident i v =
    let s = slot_of.(i).(v) in
    let last = resident.(i).(resident_count.(i) - 1) in
    resident.(i).(s) <- last;
    slot_of.(i).(last) <- s;
    resident_count.(i) <- resident_count.(i) - 1;
    slot_of.(i).(v) <- -1;
    resident_mask.(v) <- resident_mask.(v) land lnot (1 lsl i)
  in
  let owner = assignment in
  let evict_one i =
    (* Belady on processor i's own trace; dead values first (free). *)
    let victim = ref (-1) and victim_key = ref min_int in
    for s = 0 to resident_count.(i) - 1 do
      let v = resident.(i).(s) in
      if not pinned.(v) then begin
        let nu = next_use i v in
        let key =
          if remaining_uses.(v) = 0 then max_int
          else if nu = max_int && (owner.(v) <> i || in_slow.(v)) then max_int - 1
          else nu
        in
        if key > !victim_key then begin
          victim_key := key;
          victim := v
        end
      end
    done;
    if !victim < 0 then
      invalid_arg "Parallel_sim.simulate: fast memory exhausted by pinned operands";
    let v = !victim in
    (* spill: only the owner of a needed, never-published value pays *)
    if remaining_uses.(v) > 0 && owner.(v) = i && not in_slow.(v) then begin
      writes.(i) <- writes.(i) + 1;
      in_slow.(v) <- true
    end;
    remove_resident i v
  in
  let ensure_one_free i = if resident_count.(i) >= m then evict_one i in
  Array.iteri
    (fun t v ->
      let i = assignment.(v) in
      let parents = Dag.pred g v in
      Array.iter
        (fun u -> if resident_mask.(u) land (1 lsl i) <> 0 then pinned.(u) <- true)
        parents;
      Array.iter
        (fun u ->
          if resident_mask.(u) land (1 lsl i) = 0 then begin
            (* remote or spilled operand: make sure a slow-memory copy
               exists (producer publishes), then read it locally *)
            if not in_slow.(u) then begin
              writes.(owner.(u)) <- writes.(owner.(u)) + 1;
              incr publish_writes;
              in_slow.(u) <- true
            end;
            ensure_one_free i;
            reads.(i) <- reads.(i) + 1;
            add_resident i u;
            pinned.(u) <- true
          end)
        parents;
      ensure_one_free i;
      add_resident i v;
      Array.iter
        (fun u ->
          pinned.(u) <- false;
          remaining_uses.(u) <- remaining_uses.(u) - 1;
          for j = 0 to p - 1 do
            while
              use_ptr.(j).(u) < Array.length uses.(j).(u)
              && uses.(j).(u).(use_ptr.(j).(u)) <= t
            do
              use_ptr.(j).(u) <- use_ptr.(j).(u) + 1
            done
          done)
        parents;
      if remaining_uses.(v) = 0 then remove_resident i v)
    order;
  let per_processor =
    Array.init p (fun i ->
        {
          Simulator.reads = reads.(i);
          writes = writes.(i);
          io = reads.(i) + writes.(i);
          peak_resident = peak.(i);
        })
  in
  let max_io = Array.fold_left (fun acc r -> max acc r.Simulator.io) 0 per_processor in
  let total_io =
    Array.fold_left (fun acc r -> acc + r.Simulator.io) 0 per_processor
  in
  { per_processor; max_io; total_io; publish_writes = !publish_writes }
