(** Parallel execution simulator for the Theorem 6 setting.

    [p] processors each own a fast memory of [M] elements and communicate
    through shared slow memory.  A parallel execution is (i) an assignment
    of every vertex to a processor and (ii) a global topological order
    (vertices execute in that order; interleaving preserves the
    dependencies).  I/O is counted per processor, as in the theorem:

    - a processor evaluating [v] must hold [v]'s operands in its local
      fast memory; operands produced on another processor must first have
      been published to slow memory (a write charged to the {e producer})
      and are then read by the consumer;
    - local spills/reloads are charged exactly as in the sequential
      {!Simulator} (Belady eviction on the processor's own trace).

    The returned per-processor maxima are feasible upper bounds, so
    [max_io] must dominate the Theorem 6 lower bound for the same [p] —
    an empirical sandwich for the parallel theorem that the paper itself
    leaves analytic (tested in the integration suite). *)

type result = {
  per_processor : Simulator.result array;
  max_io : int;  (** [max_i J(X_i)] — the quantity Theorem 6 bounds *)
  total_io : int;
  publish_writes : int;
      (** writes forced purely by cross-processor communication *)
}

val simulate :
  Graphio_graph.Dag.t ->
  assignment:int array ->
  order:int array ->
  p:int ->
  m:int ->
  result
(** [assignment.(v)] is the owning processor in [0..p-1]; [order] a valid
    topological order.  Raises [Invalid_argument] on malformed inputs or
    an [m] below the per-processor feasibility minimum. *)

val block_assignment : Graphio_graph.Dag.t -> order:int array -> p:int -> int array
(** Contiguous blocks of the order, one per processor — the simplest
    balanced assignment. *)

val round_robin_assignment : Graphio_graph.Dag.t -> order:int array -> p:int -> int array
(** Position mod [p] — the maximally-communicating strawman. *)
