open Graphio_graph
open Graphio_la

let fiedler_vector ?(seed = 0x5eed) g =
  let n = Dag.n_vertices g in
  let lap = Laplacian.normalized g in
  if n <= Eigen.default_dense_threshold then begin
    let _, vectors = Tql.symmetric_eigensystem (Csr.to_dense lap) in
    Array.init n (fun i -> vectors.(i).(min 1 (n - 1)))
  end
  else begin
    let r = Filtered.smallest_csr ~seed ~want_vectors:true lap ~h:2 in
    match r.Filtered.vectors with
    | Some vecs when Array.length vecs >= 2 -> vecs.(1)
    | _ -> Array.make n 0.0
  end

module Ready = Set.Make (struct
  type t = float * int

  let compare (a, u) (b, v) =
    match Float.compare a b with 0 -> compare u v | c -> c
end)

let fiedler_order ?seed g =
  let n = Dag.n_vertices g in
  if n < 3 then Array.init n (fun i -> i)
  else begin
    let priority = fiedler_vector ?seed g in
    let indeg = Array.init n (Dag.in_degree g) in
    let ready = ref Ready.empty in
    for v = 0 to n - 1 do
      if indeg.(v) = 0 then ready := Ready.add (priority.(v), v) !ready
    done;
    let order = Array.make n 0 in
    for t = 0 to n - 1 do
      match Ready.min_elt_opt !ready with
      | None -> invalid_arg "Spectral_order.fiedler_order: graph has a cycle"
      | Some ((_, v) as elt) ->
          ready := Ready.remove elt !ready;
          order.(t) <- v;
          Dag.iter_succ g v (fun w ->
              indeg.(w) <- indeg.(w) - 1;
              if indeg.(w) = 0 then ready := Ready.add (priority.(w), w) !ready)
    done;
    order
  end

let upper_bound ?seed g ~m =
  Simulator.simulate g ~order:(fiedler_order ?seed g) ~m
