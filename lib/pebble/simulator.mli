(** Execution simulator for the paper's two-level memory model (Section 3).

    Given a computation graph, a topological evaluation order [X] and a
    fast-memory size [M], the simulator plays the schedule under red/blue
    pebble semantics {e without recomputation} and counts the non-trivial
    I/O [J_G(X)]:

    - evaluating a vertex requires all its operands in fast memory plus a
      slot for the result, so [M >= in_degree(v) + 1] must hold for every
      vertex (the paper likewise omits configurations where operands don't
      fit);
    - a source's value materializes in fast memory for free at its
      evaluation step (inputs are read from the user directly — trivial
      I/O is not counted), and results of sinks are reported to the user
      for free;
    - evicting a value that is still needed and has never been written to
      slow memory costs one write; values are immutable, so a value
      already resident in slow memory is evicted for free;
    - loading a value from slow memory costs one read.

    Because every simulated schedule is a feasible execution, the returned
    count is an {e upper} bound on the optimal [J*_G] — the counterpart of
    the paper's lower bounds, used throughout the test suite to sandwich
    them ([lower <= J*_G <= simulated]). *)

type policy =
  | Belady  (** evict the resident value whose next use is farthest *)
  | Lru  (** least-recently-used *)

type result = {
  reads : int;  (** loads from slow into fast memory *)
  writes : int;  (** spills of still-needed values to slow memory *)
  io : int;  (** [reads + writes] = [J_G(X)] *)
  peak_resident : int;  (** max fast-memory occupancy observed *)
}

val simulate : ?policy:policy -> Graphio_graph.Dag.t -> order:int array -> m:int -> result
(** Raises [Invalid_argument] if [order] is not a valid topological order,
    if [m < 2], or if some vertex has [in_degree + 1 > m]. *)

val min_feasible_m : Graphio_graph.Dag.t -> int
(** [max 2 (max_in_degree + 1)] — the smallest fast memory the simulator
    (and the model) accepts for this graph. *)

val best_upper_bound :
  ?seed:int -> ?extra_orders:int -> Graphio_graph.Dag.t -> m:int -> result
(** Simulates the natural, Kahn, and DFS orders plus [extra_orders]
    (default 3) random topological orders under Belady eviction and
    returns the best (lowest-I/O) result — a cheap but serviceable upper
    bound on [J*_G]. *)
