open Graphio_graph

type policy = Belady | Lru

type result = {
  reads : int;
  writes : int;
  io : int;
  peak_resident : int;
}

let min_feasible_m g = max 2 (Dag.max_in_degree g + 1)

let c_runs = Graphio_obs.Metrics.counter "pebble.sim.runs"
let c_reads = Graphio_obs.Metrics.counter "pebble.sim.reads"
let c_writes = Graphio_obs.Metrics.counter "pebble.sim.writes"
let c_evictions = Graphio_obs.Metrics.counter "pebble.sim.evictions"

let simulate_impl ~policy g ~order ~m =
  if m < 2 then invalid_arg "Simulator.simulate: m must be >= 2";
  if not (Topo.is_valid g order) then
    invalid_arg "Simulator.simulate: order is not a valid topological order";
  let n = Dag.n_vertices g in
  if min_feasible_m g > m then
    invalid_arg
      (Printf.sprintf
         "Simulator.simulate: fast memory %d too small for max in-degree %d" m
         (Dag.max_in_degree g));
  let pos = Topo.position_of order in
  (* uses.(u): evaluation times of u's consumers, ascending; use_ptr.(u)
     indexes the next unconsumed use. *)
  let uses =
    Array.init n (fun u ->
        let times = Array.map (fun w -> pos.(w)) (Dag.succ g u) in
        Array.sort compare times;
        times)
  in
  let use_ptr = Array.make n 0 in
  let next_use u =
    if use_ptr.(u) < Array.length uses.(u) then uses.(u).(use_ptr.(u)) else max_int
  in
  let in_fast = Array.make n false and in_slow = Array.make n false in
  let pinned = Array.make n false in
  let last_used = Array.make n (-1) in
  (* resident set as array + slot map for O(1) removal *)
  let resident = Array.make m (-1) in
  let slot_of = Array.make n (-1) in
  let resident_count = ref 0 in
  let peak = ref 0 in
  let reads = ref 0 and writes = ref 0 in
  let add_resident v =
    resident.(!resident_count) <- v;
    slot_of.(v) <- !resident_count;
    incr resident_count;
    in_fast.(v) <- true;
    if !resident_count > !peak then peak := !resident_count
  in
  let remove_resident v =
    let s = slot_of.(v) in
    let last = resident.(!resident_count - 1) in
    resident.(s) <- last;
    slot_of.(last) <- s;
    decr resident_count;
    slot_of.(v) <- -1;
    in_fast.(v) <- false
  in
  let evict_one () =
    (* Victim selection: any dead unpinned value first (free), otherwise by
       policy among unpinned residents. *)
    let victim = ref (-1) in
    let victim_key = ref min_int in
    for s = 0 to !resident_count - 1 do
      let v = resident.(s) in
      if not pinned.(v) then begin
        let nu = next_use v in
        let key =
          match policy with
          | Belady -> if nu = max_int then max_int else nu
          | Lru -> if nu = max_int then max_int else -last_used.(v)
        in
        if key > !victim_key then begin
          victim_key := key;
          victim := v
        end
      end
    done;
    if !victim < 0 then
      invalid_arg "Simulator.simulate: fast memory exhausted by pinned operands";
    let v = !victim in
    if next_use v <> max_int && not in_slow.(v) then begin
      incr writes;
      in_slow.(v) <- true
    end;
    Graphio_obs.Metrics.incr c_evictions;
    remove_resident v
  in
  let ensure_one_free () = if !resident_count >= m then evict_one () in
  Array.iteri
    (fun t v ->
      let parents = Dag.pred g v in
      (* Pin operands already resident. *)
      Array.iter (fun u -> if in_fast.(u) then pinned.(u) <- true) parents;
      (* Load the missing ones. *)
      Array.iter
        (fun u ->
          if not in_fast.(u) then begin
            ensure_one_free ();
            assert in_slow.(u);
            incr reads;
            add_resident u;
            pinned.(u) <- true
          end)
        parents;
      (* Slot for the result. *)
      ensure_one_free ();
      add_resident v;
      (* Bookkeeping: consume the operand uses at this time-step. *)
      Array.iter
        (fun u ->
          pinned.(u) <- false;
          last_used.(u) <- t;
          while use_ptr.(u) < Array.length uses.(u) && uses.(u).(use_ptr.(u)) <= t do
            use_ptr.(u) <- use_ptr.(u) + 1
          done)
        parents;
      last_used.(v) <- t;
      (* A sink's value is reported to the user immediately; drop it so it
         never occupies memory or triggers spills. *)
      if Array.length uses.(v) = 0 then remove_resident v)
    order;
  Graphio_obs.Metrics.add c_reads !reads;
  Graphio_obs.Metrics.add c_writes !writes;
  { reads = !reads; writes = !writes; io = !reads + !writes; peak_resident = !peak }

let simulate ?(policy = Belady) g ~order ~m =
  Graphio_obs.Metrics.incr c_runs;
  Graphio_obs.Span.with_ "pebble.simulate" (fun () -> simulate_impl ~policy g ~order ~m)

let best_upper_bound ?(seed = 42) ?(extra_orders = 3) g ~m =
  let orders =
    (try [ Topo.natural g ] with Invalid_argument _ -> [])
    @ [ Topo.kahn g; Topo.dfs g ]
    @ List.init extra_orders (fun i -> Topo.random ~seed:(seed + i) g)
  in
  let results = List.map (fun order -> simulate g ~order ~m) orders in
  List.fold_left
    (fun best r -> match best with Some b when b.io <= r.io -> Some b | _ -> Some r)
    None results
  |> Option.get
