(* Two streaming passes over the text edgelist:

     pass 1  parse + validate every record, count out-degrees into an
             int32 array, buffer (sparse) labels;
     pass 2  re-parse the edge records and scatter-fill the successor
             indices through the prefix-summed pointer array.

   Peak memory is 12·(n + m) bytes of int32 scratch plus one line buffer —
   independent of the text file's size — versus Edgelist.of_file's
   hundreds of bytes per edge.  Rows are then sorted in place, duplicates
   detected on the sorted rows (with an error-path-only rescan to recover
   line numbers), acyclicity checked by Kahn over the same scratch, and
   the result streamed out in Store's record layout with running FNV-1a
   checksums. *)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv1a_bytes acc bytes off len =
  let acc = ref acc in
  for i = off to off + len - 1 do
    acc :=
      Int64.mul
        (Int64.logxor !acc (Int64.of_int (Char.code (Bytes.get bytes i))))
        fnv_prime
  done;
  !acc

let int32_max = Int32.to_int Int32.max_int

type i32 = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t

let i32_make len : i32 =
  let a = Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout (max len 1) in
  Bigarray.Array1.fill a 0l;
  a

(* Fast manual parser for the hot record: ["e U V"].  Same acceptance as
   Edgelist's [Scanf "e %d %d"] — arbitrary blanks between fields,
   trailing content ignored.  Returns [None] for anything that does not
   parse as two integers. *)
let parse_edge line =
  let len = String.length line in
  let pos = ref 1 in
  let skip_ws () =
    while !pos < len && (line.[!pos] = ' ' || line.[!pos] = '\t') do
      incr pos
    done
  in
  let int_at () =
    let neg =
      if !pos < len && line.[!pos] = '-' then begin
        incr pos;
        true
      end
      else false
    in
    let v = ref 0 and digits = ref 0 in
    while !pos < len && line.[!pos] >= '0' && line.[!pos] <= '9' do
      v := (!v * 10) + (Char.code line.[!pos] - Char.code '0');
      incr digits;
      incr pos
    done;
    if !digits = 0 then raise Exit;
    if neg then - !v else !v
  in
  match
    skip_ws ();
    let u = int_at () in
    if !pos >= len || (line.[!pos] <> ' ' && line.[!pos] <> '\t') then
      raise Exit;
    skip_ws ();
    let v = int_at () in
    (u, v)
  with
  | uv -> Some uv
  | exception Exit -> None

(* One streaming pass.  [on_sizes n m] fires once when the size line is
   parsed (before any record); [on_edge lineno u v] per validated edge;
   [on_label] is [None] on passes that do not collect labels.  Returns
   the declared sizes and the number of edge records seen. *)
let scan_file path ~on_sizes ~on_edge ~on_label =
  let ic = try open_in_bin path with Sys_error msg -> failwith msg in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let fail lineno msg =
        failwith (Printf.sprintf "%s: line %d: %s" path lineno msg)
      in
      let lineno = ref 0 in
      let saw_header = ref false in
      let sizes = ref None in
      let edges_seen = ref 0 in
      (try
         while true do
           let raw = input_line ic in
           incr lineno;
           let line = String.trim raw in
           let lineno = !lineno in
           if line = "" || line.[0] = '#' then ()
           else if not !saw_header then begin
             if line <> "graphio 1" then
               fail lineno "expected header 'graphio 1'";
             saw_header := true
           end
           else
             match !sizes with
             | None -> (
                 try
                   Scanf.sscanf line "n %d m %d" (fun a b ->
                       if a < 0 || b < 0 then fail lineno "negative counts";
                       sizes := Some (a, b);
                       on_sizes a b)
                 with Scanf.Scan_failure _ | End_of_file ->
                   fail lineno "expected 'n <vertices> m <edges>'")
             | Some (n, _) -> (
                 match line.[0] with
                 | 'e' -> (
                     match parse_edge line with
                     | None -> fail lineno "malformed edge"
                     | Some (u, v) ->
                         if u < 0 || u >= n || v < 0 || v >= n then
                           fail lineno
                             (Printf.sprintf
                                "edge %d -> %d: vertex out of range [0, %d)" u
                                v n);
                         if u = v then
                           fail lineno
                             (Printf.sprintf "edge %d -> %d: self-loop" u v);
                         incr edges_seen;
                         on_edge lineno u v)
                 | 'l' -> (
                     match on_label with
                     | None -> ()
                     | Some on_label -> (
                         try
                           Scanf.sscanf line "l %d %s" (fun v l ->
                               if v < 0 || v >= n then
                                 fail lineno "label vertex out of range";
                               on_label v
                                 (Graphio_graph.Edgelist.percent_unescape l))
                         with Scanf.Scan_failure _ | End_of_file ->
                           fail lineno "malformed label"))
                 | _ -> fail lineno "unknown record type")
         done
       with End_of_file -> ());
      if not !saw_header then failwith (Printf.sprintf "%s: empty input" path);
      match !sizes with
      | None -> failwith (Printf.sprintf "%s: missing size line" path)
      | Some (n, m) -> ((n, m), !edges_seen))

(* Error path only: rescan the input to recover the line numbers of the
   first two occurrences of a duplicate edge found on the sorted rows. *)
let duplicate_error path u v =
  let first = ref 0 and second = ref 0 in
  let _ =
    scan_file path
      ~on_sizes:(fun _ _ -> ())
      ~on_label:None
      ~on_edge:(fun lineno eu ev ->
        if eu = u && ev = v && !second = 0 then
          if !first = 0 then first := lineno else second := lineno)
  in
  failwith
    (Printf.sprintf "%s: line %d: duplicate edge %d -> %d (first on line %d)"
       path !second u v !first)

let convert ~input ~output =
  (* ---- pass 1: sizes, degrees, labels ---- *)
  let labels = Hashtbl.create 16 in
  let deg = ref (i32_make 0) in
  let (n, m), edges_seen =
    scan_file input
      ~on_sizes:(fun n m ->
        if n + 1 > int32_max || m > int32_max then
          raise (Store.Error (Store.Too_large { n; m }));
        deg := i32_make (n + 1))
      ~on_label:(Some (fun v l -> Hashtbl.replace labels v l))
      ~on_edge:(fun _ u _ ->
        let d = !deg in
        d.{u} <- Int32.add d.{u} 1l)
  in
  if edges_seen <> m then
    failwith
      (Printf.sprintf "%s: edge count mismatch (declared %d, found %d)" input m
         edges_seen);
  let deg = !deg in
  (* prefix-sum degrees into row pointers *)
  let ptr = i32_make (n + 1) in
  let acc = ref 0l in
  for v = 0 to n do
    ptr.{v} <- !acc;
    if v < n then acc := Int32.add !acc deg.{v}
  done;
  (* ---- pass 2: scatter-fill (reusing [deg] as the fill cursor) ---- *)
  let idx = i32_make m in
  let fill = deg in
  for v = 0 to n - 1 do
    fill.{v} <- ptr.{v}
  done;
  let _ =
    scan_file input
      ~on_sizes:(fun _ _ -> ())
      ~on_label:None
      ~on_edge:(fun _ u v ->
        let at = Int32.to_int fill.{u} in
        idx.{at} <- Int32.of_int v;
        fill.{u} <- Int32.add fill.{u} 1l)
  in
  (* ---- sort rows in place, detect duplicates ---- *)
  for v = 0 to n - 1 do
    let lo = Int32.to_int ptr.{v} and hi = Int32.to_int ptr.{v + 1} in
    let len = hi - lo in
    if len > 1 then begin
      let sorted = ref true in
      for k = lo + 1 to hi - 1 do
        if idx.{k - 1} >= idx.{k} then sorted := false
      done;
      if not !sorted then begin
        let row = Array.init len (fun k -> idx.{lo + k}) in
        Array.sort Int32.compare row;
        for k = 0 to len - 1 do
          idx.{lo + k} <- row.(k)
        done
      end;
      for k = lo + 1 to hi - 1 do
        if idx.{k - 1} = idx.{k} then
          duplicate_error input v (Int32.to_int idx.{k})
      done
    end
  done;
  (* ---- acyclicity (Kahn over int32 scratch) ---- *)
  let indeg = i32_make (max n 1) and queue = i32_make (max n 1) in
  for k = 0 to m - 1 do
    let w = Int32.to_int idx.{k} in
    indeg.{w} <- Int32.add indeg.{w} 1l
  done;
  let head = ref 0 and tail = ref 0 in
  for v = 0 to n - 1 do
    if indeg.{v} = 0l then begin
      queue.{!tail} <- Int32.of_int v;
      incr tail
    end
  done;
  while !head < !tail do
    let v = Int32.to_int queue.{!head} in
    incr head;
    for k = Int32.to_int ptr.{v} to Int32.to_int ptr.{v + 1} - 1 do
      let w = Int32.to_int idx.{k} in
      indeg.{w} <- Int32.sub indeg.{w} 1l;
      if indeg.{w} = 0l then begin
        queue.{!tail} <- Int32.of_int w;
        incr tail
      end
    done
  done;
  if !tail <> n then failwith (Printf.sprintf "%s: graph has a cycle" input);
  (* ---- stream out in Store's record layout ---- *)
  let label_list =
    Hashtbl.fold (fun v l acc -> (v, l) :: acc) labels []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" output (Unix.getpid ())
      (Domain.self () :> int)
  in
  let oc =
    try open_out_bin tmp
    with Sys_error msg -> raise (Store.Error (Store.Io_error msg))
  in
  let write_all () =
    let hdr = Bytes.create 28 in
    Bytes.blit_string Store.magic 0 hdr 0 6;
    Bytes.set hdr 6 '\x00';
    Bytes.set hdr 7 '\x01';
    Bytes.set_int32_le hdr 8 (Int32.of_int n);
    Bytes.set_int32_le hdr 12 (Int32.of_int m);
    Bytes.set_int32_le hdr 16 (Int32.of_int (List.length label_list));
    Bytes.set_int64_le hdr 20 (fnv1a_bytes fnv_offset hdr 0 20);
    output_bytes oc hdr;
    (* body writer: 64 KiB chunks, FNV-1a folded as bytes are flushed *)
    let crc = ref fnv_offset in
    let chunk = Bytes.create 65536 in
    let filled = ref 0 in
    let flush_chunk () =
      if !filled > 0 then begin
        crc := fnv1a_bytes !crc chunk 0 !filled;
        output_bytes oc (Bytes.sub chunk 0 !filled);
        filled := 0
      end
    in
    let put_byte c =
      if !filled = Bytes.length chunk then flush_chunk ();
      Bytes.set chunk !filled c;
      incr filled
    in
    let put_word (w : int32) =
      if !filled + 4 > Bytes.length chunk then flush_chunk ();
      Bytes.set_int32_le chunk !filled w;
      filled := !filled + 4
    in
    for v = 0 to n do
      put_word ptr.{v}
    done;
    for k = 0 to m - 1 do
      put_word idx.{k}
    done;
    List.iter
      (fun (v, l) ->
        put_word (Int32.of_int v);
        put_word (Int32.of_int (String.length l));
        String.iter put_byte l)
      label_list;
    flush_chunk ();
    let tail = Bytes.create 8 in
    Bytes.set_int64_le tail 0 !crc;
    output_bytes oc tail
  in
  (match write_all () with
  | () -> close_out oc
  | exception Sys_error msg ->
      close_out_noerr oc;
      (try Sys.remove tmp with Sys_error _ -> ());
      raise (Store.Error (Store.Io_error msg)));
  (match Sys.rename tmp output with
  | () -> ()
  | exception Sys_error msg ->
      (try Sys.remove tmp with Sys_error _ -> ());
      raise (Store.Error (Store.Io_error msg)));
  (n, m)
