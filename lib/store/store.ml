open Graphio_graph

type error =
  | Io_error of string
  | Truncated of { expected : int; actual : int }
  | Bad_magic
  | Bad_version of { found : int }
  | Checksum_mismatch of { region : string }
  | Too_large of { n : int; m : int }
  | Malformed of string

exception Error of error

let error_message = function
  | Io_error msg -> Printf.sprintf "store: I/O error: %s" msg
  | Truncated { expected; actual } ->
      Printf.sprintf "store: truncated file (need %d bytes, have %d)" expected
        actual
  | Bad_magic -> "store: not a graphio binary graph (bad magic)"
  | Bad_version { found } ->
      Printf.sprintf "store: unsupported format version %d (expected 1)" found
  | Checksum_mismatch { region } ->
      Printf.sprintf "store: %s checksum mismatch (corrupt file)" region
  | Too_large { n; m } ->
      Printf.sprintf
        "store: graph too large for int32 indices (n=%d, m=%d)" n m
  | Malformed msg -> Printf.sprintf "store: malformed file: %s" msg

let fail e = raise (Error e)

let magic = "GIOCSR"
let version = 1
let header_len = 28
let crc_len = 8

(* --------------------------- fault sites ----------------------------- *)

(* Same discipline as the spectrum cache (lib/cache/spectrum.ml): every
   disk interaction the fail-closed story depends on is injectable, and
   the invariant under any injected outcome is that a record that cannot
   be verified end-to-end is never served. *)
let f_read = Graphio_fault.site "store.file.read"
let f_write = Graphio_fault.site "store.file.write"
let f_rename = Graphio_fault.site "store.file.rename"
let f_checksum = Graphio_fault.site "store.checksum"

let c_loads = Graphio_obs.Metrics.counter "store.loads"
let c_writes = Graphio_obs.Metrics.counter "store.writes"
let c_errors = Graphio_obs.Metrics.counter "store.errors"

(* ----------------------------- checksums ----------------------------- *)

(* FNV-1a, the hash family shared by Dag.fingerprint and the cache codec. *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv1a_byte acc b =
  Int64.mul (Int64.logxor acc (Int64.of_int (b land 0xff))) fnv_prime

let fnv1a_bytes acc bytes off len =
  let acc = ref acc in
  for i = off to off + len - 1 do
    acc := fnv1a_byte !acc (Char.code (Bytes.get bytes i))
  done;
  !acc

(* ------------------------------- types ------------------------------- *)

type words =
  (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  path : string;
  n : int;
  m : int;
  words : words;  (** header + succ_ptr + succ_idx as int32 words *)
  labels : (int * string) array;  (** ascending vertex order *)
}

let body_words t = 7 + (t.n + 1) + t.m
let _ = body_words

let ptr t i = Int32.to_int t.words.{7 + i}
let idx t k = Int32.to_int t.words.{7 + t.n + 1 + k}

let path t = t.path
let n_vertices t = t.n
let n_edges t = t.m

let out_degree t v =
  if v < 0 || v >= t.n then
    invalid_arg (Printf.sprintf "Store.out_degree: vertex %d out of range" v);
  ptr t (v + 1) - ptr t v

let iter_succ t v f =
  if v < 0 || v >= t.n then
    invalid_arg (Printf.sprintf "Store.iter_succ: vertex %d out of range" v);
  for k = ptr t v to ptr t (v + 1) - 1 do
    f (idx t k)
  done

let iter_edges t f =
  for u = 0 to t.n - 1 do
    for k = ptr t u to ptr t (u + 1) - 1 do
      f u (idx t k)
    done
  done

let max_out_degree t =
  let best = ref 0 in
  for v = 0 to t.n - 1 do
    best := max !best (out_degree t v)
  done;
  !best

let label t v =
  if v < 0 || v >= t.n then
    invalid_arg (Printf.sprintf "Store.label: vertex %d out of range" v);
  let lo = ref 0 and hi = ref (Array.length t.labels - 1) in
  let found = ref None in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let u, l = t.labels.(mid) in
    if u = v then begin
      found := Some l;
      lo := !hi + 1
    end
    else if u < v then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let fingerprint t =
  let h = ref fnv_offset in
  let mix v = h := Int64.mul (Int64.logxor !h v) fnv_prime in
  (* identical mixing to Dag.fingerprint: n, m, then CSR-ordered edges,
     one whole-int64 FNV step per value *)
  mix (Int64.of_int t.n);
  mix (Int64.of_int t.m);
  iter_edges t (fun u v ->
      mix (Int64.of_int u);
      mix (Int64.of_int v));
  !h

(* ------------------------------ sniffing ------------------------------ *)

let is_store_file file =
  match open_in_bin file with
  | exception Sys_error _ -> false
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match really_input_string ic (String.length magic) with
          | s -> s = magic
          | exception End_of_file -> false)

(* ------------------------------- write ------------------------------- *)

let int32_max = Int32.to_int Int32.max_int

let write file g =
  let n = Dag.n_vertices g and m = Dag.n_edges g in
  if n + 1 > int32_max || m > int32_max then fail (Too_large { n; m });
  let labels = ref [] and label_count = ref 0 in
  for v = n - 1 downto 0 do
    match Dag.label g v with
    | Some l ->
        labels := (v, l) :: !labels;
        incr label_count
    | None -> ()
  done;
  let label_bytes =
    List.fold_left (fun acc (_, l) -> acc + 8 + String.length l) 0 !labels
  in
  let total = header_len + (4 * (n + 1)) + (4 * m) + label_bytes + crc_len in
  let b = Bytes.create total in
  Bytes.blit_string magic 0 b 0 6;
  Bytes.set b 6 '\x00';
  Bytes.set b 7 (Char.chr version);
  Bytes.set_int32_le b 8 (Int32.of_int n);
  Bytes.set_int32_le b 12 (Int32.of_int m);
  Bytes.set_int32_le b 16 (Int32.of_int !label_count);
  Bytes.set_int64_le b 20 (fnv1a_bytes fnv_offset b 0 20);
  (* succ_ptr from cumulative out-degrees, succ_idx in iteration order
     (CSR order — already sorted per row) *)
  let off = ref header_len in
  let put_word w =
    Bytes.set_int32_le b !off (Int32.of_int w);
    off := !off + 4
  in
  let acc = ref 0 in
  put_word 0;
  for v = 0 to n - 1 do
    acc := !acc + Dag.out_degree g v;
    put_word !acc
  done;
  Dag.iter_edges g (fun _ v -> put_word v);
  List.iter
    (fun (v, l) ->
      put_word v;
      put_word (String.length l);
      Bytes.blit_string l 0 b !off (String.length l);
      off := !off + String.length l)
    !labels;
  assert (!off = total - crc_len);
  Bytes.set_int64_le b (total - crc_len)
    (fnv1a_bytes fnv_offset b header_len (total - crc_len - header_len));
  (* injectable write: [Fail] models an error before any byte lands;
     [Torn]/[Flip] deliberately publish the damaged record (the rename
     below still runs) because the on-disk checksums, not the writer, are
     what guarantee a corrupt record is never served *)
  let payload =
    match Graphio_fault.hit ~len:total f_write with
    | Graphio_fault.Pass -> b
    | Graphio_fault.Fail ->
        Graphio_obs.Metrics.incr c_errors;
        fail (Io_error "injected write failure")
    | Graphio_fault.Torn keep -> Bytes.sub b 0 keep
    | Graphio_fault.Flip (off, mask) ->
        let b = Bytes.copy b in
        Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor mask));
        b
    | Graphio_fault.Sleep s ->
        Unix.sleepf s;
        b
  in
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" file (Unix.getpid ())
      (Domain.self () :> int)
  in
  (match open_out_bin tmp with
  | exception Sys_error msg ->
      Graphio_obs.Metrics.incr c_errors;
      fail (Io_error msg)
  | oc -> (
      let result =
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            match output_bytes oc payload with
            | () -> Ok ()
            | exception Sys_error msg -> Stdlib.Error msg)
      in
      match result with
      | Stdlib.Error msg ->
          (try Sys.remove tmp with Sys_error _ -> ());
          Graphio_obs.Metrics.incr c_errors;
          fail (Io_error msg)
      | Ok () -> (
          (* injectable rename: a failed publish must clean up the temp
             file rather than leak it next to the target *)
          match
            (match Graphio_fault.hit f_rename with
            | Graphio_fault.Pass -> ()
            | Graphio_fault.Sleep s -> Unix.sleepf s
            | Graphio_fault.Fail | Graphio_fault.Torn _ | Graphio_fault.Flip _
              ->
                raise (Sys_error "injected rename failure"));
            Sys.rename tmp file
          with
          | () -> ()
          | exception Sys_error msg ->
              (try Sys.remove tmp with Sys_error _ -> ());
              Graphio_obs.Metrics.incr c_errors;
              fail (Io_error msg))));
  Graphio_obs.Metrics.incr c_writes

(* -------------------------------- load ------------------------------- *)

(* Verify the body checksum by streaming the file once in bounded chunks
   (the injected read faults land here: a torn read hashes a prefix, a
   flipped read hashes a corrupted byte — either way the stored checksum
   disagrees and the load fails closed). *)
let verify_body_crc ic ~size =
  let body_len = size - header_len - crc_len in
  let fault = Graphio_fault.hit ~len:body_len f_read in
  (match fault with
  | Graphio_fault.Fail ->
      Graphio_obs.Metrics.incr c_errors;
      fail (Io_error "injected read failure")
  | Graphio_fault.Sleep s -> Unix.sleepf s
  | _ -> ());
  let readable =
    match fault with Graphio_fault.Torn keep -> keep | _ -> body_len
  in
  let flip =
    match fault with Graphio_fault.Flip (off, mask) -> Some (off, mask) | _ -> None
  in
  seek_in ic header_len;
  let chunk = Bytes.create 65536 in
  let acc = ref fnv_offset in
  let pos = ref 0 in
  (try
     while !pos < readable do
       let want = min (Bytes.length chunk) (readable - !pos) in
       really_input ic chunk 0 want;
       (match flip with
       | Some (off, mask) when off >= !pos && off < !pos + want ->
           let i = off - !pos in
           Bytes.set chunk i
             (Char.chr (Char.code (Bytes.get chunk i) lxor mask))
       | _ -> ());
       acc := fnv1a_bytes !acc chunk 0 want;
       pos := !pos + want
     done
   with End_of_file | Sys_error _ ->
     Graphio_obs.Metrics.incr c_errors;
     fail (Io_error "short read while verifying"));
  seek_in ic (size - crc_len);
  let tail = Bytes.create crc_len in
  (try really_input ic tail 0 crc_len
   with End_of_file | Sys_error _ ->
     Graphio_obs.Metrics.incr c_errors;
     fail (Io_error "short read while verifying"));
  let stored = Bytes.get_int64_le tail 0 in
  if not (Int64.equal stored !acc) then begin
    Graphio_obs.Metrics.incr c_errors;
    fail (Checksum_mismatch { region = "body" })
  end;
  if Graphio_fault.hit f_checksum <> Graphio_fault.Pass then begin
    (* injected checksum rejection: the record verifies but is treated as
       untrustworthy, exercising the fail-closed path *)
    Graphio_obs.Metrics.incr c_errors;
    fail (Checksum_mismatch { region = "body" })
  end

(* Map (or, on big-endian hosts and mmap failure, read-and-decode) the
   header + index region as int32 words.  The byte layout is
   little-endian, so the zero-copy map is only valid on little-endian
   hosts; the fallback decodes explicitly and works everywhere. *)
let map_words file ~total_words =
  let mapped =
    if Sys.big_endian then None
    else
      match Unix.openfile file [ Unix.O_RDONLY ] 0 with
      | exception Unix.Unix_error _ -> None
      | fd -> (
          match
            Unix.map_file fd Bigarray.int32 Bigarray.c_layout false
              [| total_words |]
          with
          | ga ->
              Unix.close fd;
              Some (Bigarray.array1_of_genarray ga)
          | exception _ ->
              Unix.close fd;
              None)
  in
  match mapped with
  | Some w -> w
  | None -> (
      match open_in_bin file with
      | exception Sys_error msg -> fail (Io_error msg)
      | ic ->
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () ->
              let w =
                Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout
                  total_words
              in
              let bytes = Bytes.create (4 * total_words) in
              (try really_input ic bytes 0 (4 * total_words)
               with End_of_file | Sys_error _ ->
                 fail (Io_error "short read while loading"));
              for i = 0 to total_words - 1 do
                w.{i} <- Bytes.get_int32_le bytes (4 * i)
              done;
              w))

(* Structural validation: the checksums prove the bytes are the writer's,
   this proves the writer's claims are a graph.  All O(n + m), int32
   scratch only. *)
let validate t =
  if ptr t 0 <> 0 then fail (Malformed "succ_ptr does not start at 0");
  for v = 0 to t.n - 1 do
    let lo = ptr t v and hi = ptr t (v + 1) in
    if lo > hi then fail (Malformed "succ_ptr not monotone");
    for k = lo to hi - 1 do
      let w = idx t k in
      if w < 0 || w >= t.n then
        fail (Malformed (Printf.sprintf "edge target %d out of range" w));
      if w = v then fail (Malformed (Printf.sprintf "self-loop at vertex %d" v));
      if k > lo && idx t (k - 1) >= w then
        fail (Malformed (Printf.sprintf "row %d not strictly ascending" v))
    done
  done;
  if ptr t t.n <> t.m then fail (Malformed "succ_ptr does not end at m");
  (* Kahn acyclicity over int32 scratch (no per-vertex boxing) *)
  let ba = Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout in
  let indeg = ba (max t.n 1) and queue = ba (max t.n 1) in
  Bigarray.Array1.fill indeg 0l;
  for k = 0 to t.m - 1 do
    let w = idx t k in
    indeg.{w} <- Int32.add indeg.{w} 1l
  done;
  let head = ref 0 and tail = ref 0 in
  for v = 0 to t.n - 1 do
    if indeg.{v} = 0l then begin
      queue.{!tail} <- Int32.of_int v;
      incr tail
    end
  done;
  while !head < !tail do
    let v = Int32.to_int queue.{!head} in
    incr head;
    iter_succ t v (fun w ->
        indeg.{w} <- Int32.sub indeg.{w} 1l;
        if indeg.{w} = 0l then begin
          queue.{!tail} <- Int32.of_int w;
          incr tail
        end)
  done;
  if !tail <> t.n then fail (Malformed "graph has a cycle")

let parse_labels ic ~n ~label_count ~lab_off ~lab_len =
  seek_in ic lab_off;
  let bytes = Bytes.create lab_len in
  (try really_input ic bytes 0 lab_len
   with End_of_file | Sys_error _ -> fail (Io_error "short read while loading"));
  let labels = Array.make label_count (0, "") in
  let off = ref 0 in
  let word () =
    if !off + 4 > lab_len then fail (Malformed "label region truncated");
    let w = Int32.to_int (Bytes.get_int32_le bytes !off) in
    off := !off + 4;
    w
  in
  let prev = ref (-1) in
  for i = 0 to label_count - 1 do
    let v = word () in
    let len = word () in
    if v < 0 || v >= n then fail (Malformed "label vertex out of range");
    if v <= !prev then fail (Malformed "labels not ascending");
    prev := v;
    if len < 0 || !off + len > lab_len then
      fail (Malformed "label region truncated");
    labels.(i) <- (v, Bytes.sub_string bytes !off len);
    off := !off + len
  done;
  if !off <> lab_len then fail (Malformed "trailing bytes in label region");
  labels

let load file =
  let ic =
    match open_in_bin file with
    | exception Sys_error msg ->
        Graphio_obs.Metrics.incr c_errors;
        fail (Io_error msg)
    | ic -> ic
  in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let size = in_channel_length ic in
      if size < header_len then fail (Truncated { expected = header_len; actual = size });
      let hdr = Bytes.create header_len in
      (try really_input ic hdr 0 header_len
       with End_of_file | Sys_error _ -> fail (Io_error "short read while loading"));
      if Bytes.sub_string hdr 0 6 <> magic then fail Bad_magic;
      let found =
        (Char.code (Bytes.get hdr 6) lsl 8) lor Char.code (Bytes.get hdr 7)
      in
      if found <> version then fail (Bad_version { found });
      if
        not
          (Int64.equal
             (Bytes.get_int64_le hdr 20)
             (fnv1a_bytes fnv_offset hdr 0 20))
      then begin
        Graphio_obs.Metrics.incr c_errors;
        fail (Checksum_mismatch { region = "header" })
      end;
      let n = Int32.to_int (Bytes.get_int32_le hdr 8) in
      let m = Int32.to_int (Bytes.get_int32_le hdr 12) in
      let label_count = Int32.to_int (Bytes.get_int32_le hdr 16) in
      if n < 0 || m < 0 || label_count < 0 then
        fail (Malformed "negative counts in header");
      if label_count > n then fail (Malformed "more labels than vertices");
      let idx_end = header_len + (4 * (n + 1)) + (4 * m) in
      let min_size = idx_end + (8 * label_count) + crc_len in
      if size < min_size then
        fail (Truncated { expected = min_size; actual = size });
      verify_body_crc ic ~size;
      let labels =
        parse_labels ic ~n ~label_count ~lab_off:idx_end
          ~lab_len:(size - idx_end - crc_len)
      in
      let words = map_words file ~total_words:(7 + (n + 1) + m) in
      let t = { path = file; n; m; words; labels } in
      (match validate t with
      | () -> ()
      | exception Error e ->
          Graphio_obs.Metrics.incr c_errors;
          fail e);
      Graphio_obs.Metrics.incr c_loads;
      t)

(* ------------------------------ to_dag ------------------------------- *)

let to_dag t =
  let succ_ptr = Array.init (t.n + 1) (fun i -> ptr t i) in
  let succ_idx = Array.init t.m (fun k -> idx t k) in
  let labels =
    if Array.length t.labels = 0 then None
    else begin
      let ls = Array.make t.n None in
      Array.iter (fun (v, l) -> ls.(v) <- Some l) t.labels;
      Some ls
    end
  in
  Dag.of_sorted_csr ?labels ~verify_acyclic:false ~succ_ptr ~succ_idx ()

(* ---------------------------- components ----------------------------- *)

let components t =
  let n = t.n in
  let parent = Array.init n Fun.id in
  let find i =
    let i = ref i in
    while parent.(!i) <> !i do
      parent.(!i) <- parent.(parent.(!i));
      i := parent.(!i)
    done;
    !i
  in
  iter_edges t (fun u v ->
      let ru = find u and rv = find v in
      if ru <> rv then
        (* union by smaller root: every root stays the smallest vertex of
           its component, matching Component.components id order *)
        if ru < rv then parent.(rv) <- ru else parent.(ru) <- rv);
  let comp = Array.make n (-1) in
  let next = ref 0 in
  for v = 0 to n - 1 do
    let r = find v in
    if comp.(r) = -1 then begin
      comp.(r) <- !next;
      incr next
    end;
    comp.(v) <- comp.(r)
  done;
  comp

let component_count t =
  if t.n = 0 then 0 else Array.fold_left max (-1) (components t) + 1

let component_dags t =
  let comp = components t in
  let count = Array.fold_left max (-1) comp + 1 in
  if count <= 0 then [||]
  else begin
    let sizes = Array.make count 0 and edge_counts = Array.make count 0 in
    Array.iter (fun c -> sizes.(c) <- sizes.(c) + 1) comp;
    iter_edges t (fun u _ -> edge_counts.(comp.(u)) <- edge_counts.(comp.(u)) + 1);
    let members = Array.map (fun s -> Array.make s 0) sizes in
    let new_id = Array.make t.n 0 in
    let vfill = Array.make count 0 in
    for v = 0 to t.n - 1 do
      let c = comp.(v) in
      new_id.(v) <- vfill.(c);
      members.(c).(vfill.(c)) <- v;
      vfill.(c) <- vfill.(c) + 1
    done;
    let succ_ptrs = Array.map (fun s -> Array.make (s + 1) 0) sizes in
    let succ_idxs = Array.map (fun e -> Array.make e 0) edge_counts in
    let efill = Array.make count 0 in
    for v = 0 to t.n - 1 do
      let c = comp.(v) in
      iter_succ t v (fun w ->
          (* monotone relabeling keeps every row strictly ascending *)
          succ_idxs.(c).(efill.(c)) <- new_id.(w);
          efill.(c) <- efill.(c) + 1);
      succ_ptrs.(c).(new_id.(v) + 1) <- efill.(c)
    done;
    let has_labels = Array.length t.labels > 0 in
    Array.init count (fun c ->
        let labels =
          if not has_labels then None
          else Some (Array.map (fun v -> label t v) members.(c))
        in
        ( Dag.of_sorted_csr ?labels ~verify_acyclic:false
            ~succ_ptr:succ_ptrs.(c) ~succ_idx:succ_idxs.(c) (),
          members.(c) ))
  end
