(** Binary CSR-on-disk graph storage.

    The text edgelist tops out far below the million-vertex target: parsing
    holds every line, every edge tuple and a duplicate-detection hashtable
    in memory at once.  This module stores a frozen {!Graphio_graph.Dag.t}
    as its successor CSR directly — int32 indices, little-endian, with a
    checksummed header in the style of the spectrum cache's [GIORTZ]
    records — so loading is one bounded verification pass plus an
    [Unix.map_file] of the index region into a [Bigarray] (no per-edge
    allocation at all).

    {2 Record layout (little-endian)}

    {v
     0  magic    "GIOCSR"            (6 bytes)
     6  version  0x00 0x01           (2 bytes)
     8  n            : int32
    12  m            : int32
    16  label_count  : int32
    20  header_crc   : int64  FNV-1a over bytes [0, 20)
    28  succ_ptr     : (n+1) x int32
        succ_idx     : m x int32     (each row strictly ascending)
        labels       : label_count x { vertex : int32; len : int32; bytes }
                       (ascending vertex order)
    end-8 body_crc   : int64  FNV-1a over bytes [28, end-8)
    v}

    The body starts at byte 28 — a multiple of 4 — so the header plus the
    index region map as one int32 [Bigarray.Array1].  Files are written to
    a temp name and renamed into place (atomic publish), and {e never
    trusted on read}: magic, version, both checksums, pointer monotonicity,
    index range, row sortedness and acyclicity are all verified before a
    single edge is served, and any violation raises a structured {!Error}
    (fail closed — there is no partial load).

    {2 Trust and fault injection}

    The read, write, rename and checksum paths are fault-injection sites
    ([store.file.read], [store.file.write], [store.file.rename],
    [store.checksum]; see {!Graphio_fault}), so the chaos battery can prove
    the fail-closed story end to end: a torn or bit-flipped file is always
    rejected with {!Checksum_mismatch}, never half-loaded. *)

type error =
  | Io_error of string  (** open/read/write failed before any validation *)
  | Truncated of { expected : int; actual : int }
      (** file shorter than the header (or the sizes the header declares) *)
  | Bad_magic  (** first 6 bytes are not ["GIOCSR"] *)
  | Bad_version of { found : int }
      (** recognized magic, unsupported format version *)
  | Checksum_mismatch of { region : string }
      (** ["header"] or ["body"]: stored FNV-1a disagrees with the bytes *)
  | Too_large of { n : int; m : int }
      (** int32 overflow guard: [n + 1] or [m] exceeds [Int32.max_int] *)
  | Malformed of string
      (** checksums pass but the structure is invalid: negative counts,
          non-monotone pointers, out-of-range or unsorted indices, a
          cycle, or an inconsistent label region *)

exception Error of error

val error_message : error -> string
(** One-line rendering, used verbatim in CLI errors ([graphio: ...]). *)

val magic : string
(** The 6-byte magic ["GIOCSR"] (version bytes excluded) — what
    {!is_store_file} sniffs. *)

val is_store_file : string -> bool
(** True iff the file starts with {!magic}.  Unreadable or short files are
    [false] (the caller will surface the real error through whichever
    loader it then picks). *)

type t
(** A loaded, fully verified store.  The index region stays backed by the
    mapped file; accessors read it in place. *)

val write : string -> Graphio_graph.Dag.t -> unit
(** Serialize a frozen in-memory graph (atomic temp+rename publish).
    Raises {!Error} ([Too_large] on int32 overflow, [Io_error] on write
    failure). *)

val load : string -> t
(** Verify end to end and map.  Raises {!Error} on any defect. *)

val path : t -> string

val n_vertices : t -> int

val n_edges : t -> int

val out_degree : t -> int -> int

val iter_succ : t -> int -> (int -> unit) -> unit

val iter_edges : t -> (int -> int -> unit) -> unit
(** Iterate [(u, v)] in CSR order — identical to
    {!Graphio_graph.Dag.iter_edges} on {!to_dag}. *)

val max_out_degree : t -> int

val label : t -> int -> string option

val fingerprint : t -> int64
(** Equal to [Dag.fingerprint (to_dag t)] without materializing the graph
    — the store round-trips the solver's cache keys exactly. *)

val to_dag : t -> Graphio_graph.Dag.t
(** Materialize as an ordinary in-memory graph (already validated, so no
    re-verification). *)

val components : t -> int array
(** Weakly-connected component id per vertex, in
    {!Graphio_graph.Component.components} order (ids assigned by smallest
    member vertex) — computed by union-find over the mapped edges, without
    materializing the graph. *)

val component_count : t -> int

val component_dags : t -> (Graphio_graph.Dag.t * int array) array
(** Extract every component as its own in-memory graph plus the mapping
    from component-local ids back to store ids, in {!components} order.
    Per-component vertex order is ascending, so this matches
    {!Graphio_graph.Component.split} on {!to_dag} structurally (equal
    fingerprints per part) — the property the text-vs-binary bitwise
    differential rests on.  Total allocation is one in-memory copy of the
    graph, spread across the parts. *)
