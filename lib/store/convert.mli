(** Streaming text-edgelist → binary CSR converter.

    [Edgelist.of_file] holds the whole file, an edge list and a
    duplicate-detection hashtable in memory — fine at workstation sizes,
    hopeless at the million-vertex target.  {!convert} produces the same
    graph as a {!Store} file in bounded memory: two streaming passes over
    the text (degree count, then scatter-fill), [O(n + m)] int32 scratch
    ([12·(n + m)] bytes, independent of the text size), an in-place row
    sort, duplicate/self-loop/range/acyclicity checks, and an atomic
    temp+rename publish.

    Accepts exactly the {!Graphio_graph.Edgelist} text format (header,
    size line, [l]/[e] records, [#] comments, percent-escaped labels).
    Errors carry the input path and line number ([path: line N: ...]),
    matching the repo-wide diagnostic convention; duplicate edges are
    reported with both line numbers via an error-path-only rescan.

    The output is deterministic (rows sorted, labels in ascending vertex
    order), so re-converting the same input is byte-identical — the
    idempotence the cram battery pins. *)

val convert : input:string -> output:string -> int * int
(** [convert ~input ~output] returns [(n, m)].  Raises [Failure] with a
    [path: line N:]-prefixed message on malformed input, and
    {!Store.Error} ([Too_large]) when the graph exceeds the int32 index
    guard. *)
