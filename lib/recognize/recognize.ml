open Graphio_graph

type family =
  | Butterfly of int
  | Hypercube of int
  | Path of int
  | Grid of int * int

let equal (a : family) (b : family) = a = b

let name = function
  | Butterfly k -> Printf.sprintf "butterfly B_%d" k
  | Hypercube l -> Printf.sprintf "hypercube Q_%d" l
  | Path n -> Printf.sprintf "path P_%d" n
  | Grid (r, c) -> Printf.sprintf "grid %dx%d" r c

let pp fmt f = Format.pp_print_string fmt (name f)

let n_vertices = function
  | Butterfly k -> (k + 1) * (1 lsl k)
  | Hypercube l -> 1 lsl l
  | Path n -> n
  | Grid (r, c) -> r * c

let spectrum = function
  | Butterfly k -> Graphio_spectra.Butterfly_spectra.spectrum k
  | Hypercube l -> Graphio_spectra.Hypercube_spectra.spectrum l
  | Path n -> Graphio_spectra.Basic_spectra.path n
  | Grid (r, c) -> Graphio_spectra.Product_spectra.grid r c

let uniform_out_degree g =
  let n = Dag.n_vertices g in
  let d = ref 0 in
  let ok = ref true in
  let v = ref 0 in
  while !ok && !v < n do
    let dv = Dag.out_degree g !v in
    if dv > 0 then
      if !d = 0 then d := dv else if dv <> !d then ok := false;
    incr v
  done;
  if !ok && !d > 0 then Some !d else None

(* ------------------------------------------------------------------ *)
(* Undirected support                                                  *)

(* Sorted, per-vertex undirected neighbor arrays.  [None] if the DAG
   contains a reciprocal pair u->v, v->u: the support Laplacian would then
   weight that edge 2, which none of the closed forms model (a DAG built
   through the cycle-checking builder cannot contain one, but [recognize]
   must not assume its input's provenance). *)
let undirected_adj g =
  let n = Dag.n_vertices g in
  let adj = Array.make n [||] in
  let ok = ref true in
  let v = ref 0 in
  while !ok && !v < n do
    let ns = Array.append (Dag.succ g !v) (Dag.pred g !v) in
    Array.sort compare ns;
    for i = 1 to Array.length ns - 1 do
      if ns.(i) = ns.(i - 1) then ok := false
    done;
    adj.(!v) <- ns;
    incr v
  done;
  if !ok then Some adj else None

(* BFS over the undirected support from [root]; fills [level] (-1 =
   unreached) and returns the vertices in visit order. *)
let bfs_levels adj level root =
  let order = Queue.create () in
  let out = ref [] in
  level.(root) <- 0;
  Queue.push root order;
  while not (Queue.is_empty order) do
    let v = Queue.pop order in
    out := v :: !out;
    Array.iter
      (fun w ->
        if level.(w) < 0 then begin
          level.(w) <- level.(v) + 1;
          Queue.push w order
        end)
      adj.(v)
  done;
  Array.of_list (List.rev !out)

(* ------------------------------------------------------------------ *)
(* Path P_n                                                            *)

let recognize_path g adj n =
  if n = 1 then if Dag.n_edges g = 0 then Some (Path 1) else None
  else if Dag.n_edges g <> n - 1 then None
  else begin
    (* a connected graph with n-1 edges is a tree; a tree with maximum
       degree 2 is a path *)
    let max_deg = ref 0 in
    Array.iter (fun ns -> max_deg := max !max_deg (Array.length ns)) adj;
    if !max_deg > 2 then None
    else begin
      let level = Array.make n (-1) in
      let visited = bfs_levels adj level 0 in
      if Array.length visited = n then Some (Path n) else None
    end
  end

(* ------------------------------------------------------------------ *)
(* Hypercube Q_l                                                       *)

let log2_exact n =
  let l = ref 0 in
  while 1 lsl !l < n do incr l done;
  if 1 lsl !l = n then Some !l else None

let popcount x =
  let c = ref 0 and x = ref x in
  while !x <> 0 do
    x := !x land (!x - 1);
    incr c
  done;
  !c

let recognize_hypercube g adj n =
  match log2_exact n with
  | None -> None
  | Some l ->
      if l < 1 || Dag.n_edges g <> l * (1 lsl (l - 1)) then None
      else if Array.exists (fun ns -> Array.length ns <> l) adj then None
      else begin
        let level = Array.make n (-1) in
        let visited = bfs_levels adj level 0 in
        if Array.length visited <> n then None
        else begin
          (* Greedy BFS labeling over {0,1}^l: the root is 0, its
             neighbors the singleton bits in visit order, and a deeper
             vertex ORs the labels of its lower-level neighbors.  Any
             failure (wrong lower-neighbor count, wrong popcount) aborts;
             a success is certified by the verification below, not by the
             construction. *)
          let labels = Array.make n (-1) in
          labels.(0) <- 0;
          let next_bit = ref 0 in
          let ok = ref true in
          Array.iter
            (fun v ->
              if !ok && level.(v) = 1 then begin
                labels.(v) <- 1 lsl !next_bit;
                incr next_bit
              end
              else if !ok && level.(v) >= 2 then begin
                let acc = ref 0 and cnt = ref 0 in
                Array.iter
                  (fun w ->
                    if level.(w) = level.(v) - 1 then begin
                      acc := !acc lor labels.(w);
                      incr cnt
                    end)
                  adj.(v);
                if !cnt <> level.(v) || popcount !acc <> level.(v) then
                  ok := false
                else labels.(v) <- !acc
              end)
            visited;
          if not !ok then None
          else begin
            (* verification: bijection onto {0,1}^l, every edge Hamming-1;
               with the exact edge count this pins the graph to Q_l *)
            let seen = Array.make n false in
            Array.iter
              (fun lab ->
                if lab < 0 || lab >= n || seen.(lab) then ok := false
                else seen.(lab) <- true)
              labels;
            if !ok then
              Array.iteri
                (fun v ns ->
                  Array.iter
                    (fun w ->
                      if popcount (labels.(v) lxor labels.(w)) <> 1 then
                        ok := false)
                    ns)
                adj;
            if !ok then Some (Hypercube l) else None
          end
        end
      end

(* ------------------------------------------------------------------ *)
(* Grid P_r x P_c                                                      *)

let recognize_grid g adj n =
  if n < 6 then None (* a 1xc grid is a path and 2x2 is Q_2: caught earlier *)
  else begin
    (* corner-anchored coordinates: BFS levels from a degree-2 corner are
       Manhattan distances, so a vertex's lower-level neighbors are its
       lattice predecessors *)
    let corner = ref (-1) in
    Array.iteri
      (fun v ns -> if !corner < 0 && Array.length ns = 2 then corner := v)
      adj;
    if !corner < 0 then None
    else begin
      let level = Array.make n (-1) in
      let visited = bfs_levels adj level !corner in
      if Array.length visited <> n then None
      else begin
        let ci = Array.make n (-1) and cj = Array.make n (-1) in
        ci.(!corner) <- 0;
        cj.(!corner) <- 0;
        (* the corner's two neighbors seed the two axes; which one counts
           rows vs columns is arbitrary (normalized to r <= c below) *)
        let nbrs = adj.(!corner) in
        ci.(nbrs.(0)) <- 0;
        cj.(nbrs.(0)) <- 1;
        ci.(nbrs.(1)) <- 1;
        cj.(nbrs.(1)) <- 0;
        let ok = ref true in
        Array.iter
          (fun v ->
            if !ok && level.(v) >= 2 then begin
              let lowers = ref [] in
              Array.iter
                (fun w ->
                  if level.(w) = level.(v) - 1 then lowers := w :: !lowers)
                adj.(v);
              match !lowers with
              | [ w ] ->
                  (* boundary continuation: stay on the axis of the single
                     lattice predecessor *)
                  if ci.(w) = 0 then begin
                    ci.(v) <- 0;
                    cj.(v) <- cj.(w) + 1
                  end
                  else if cj.(w) = 0 then begin
                    ci.(v) <- ci.(w) + 1;
                    cj.(v) <- 0
                  end
                  else ok := false
              | [ w1; w2 ] ->
                  (* interior fill: predecessors (i-1,j) and (i,j-1) *)
                  if abs (ci.(w1) - ci.(w2)) = 1 && abs (cj.(w1) - cj.(w2)) = 1
                  then begin
                    ci.(v) <- max ci.(w1) ci.(w2);
                    cj.(v) <- max cj.(w1) cj.(w2)
                  end
                  else ok := false
              | _ -> ok := false
            end)
          visited;
        if not !ok then None
        else begin
          let r = 1 + Array.fold_left max 0 ci
          and c = 1 + Array.fold_left max 0 cj in
          if r < 2 || c < 2 || r * c <> n then None
          else if Dag.n_edges g <> (r * (c - 1)) + (c * (r - 1)) then None
          else begin
            (* verification: (ci, cj) is a bijection onto [0,r) x [0,c)
               and every edge is lattice-adjacent; with the exact edge
               count this pins the graph to the r x c grid *)
            let seen = Array.make n false in
            for v = 0 to n - 1 do
              if ci.(v) < 0 || ci.(v) >= r || cj.(v) < 0 || cj.(v) >= c then
                ok := false
              else begin
                let slot = (ci.(v) * c) + cj.(v) in
                if seen.(slot) then ok := false else seen.(slot) <- true
              end
            done;
            if !ok then
              Array.iteri
                (fun v ns ->
                  Array.iter
                    (fun w ->
                      if abs (ci.(v) - ci.(w)) + abs (cj.(v) - cj.(w)) <> 1
                      then ok := false)
                    ns)
                adj;
            if !ok then Some (Grid (min r c, max r c)) else None
          end
        end
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* Butterfly B_k                                                       *)

(* The unwrapped butterfly is recognized on the *directed* graph: (k+1)
   levels of 2^k vertices, every non-source in-degree 2, every non-sink
   out-degree 2, consecutive levels joined by disjoint K_{2,2} blocks.
   Row labels are then constructed recursively — deleting level 0 of B_k
   leaves two disjoint copies of B_{k-1} (the two classes of row bit 0),
   stitched back through the level-0 blocks — and certified by the final
   edge-by-edge check in [recognize_butterfly]. *)

exception Reject

let butterfly_k n =
  let rec go k =
    if k > 57 then None
    else
      let nk = (k + 1) * (1 lsl k) in
      if nk = n then Some k else if nk > n then None else go (k + 1)
  in
  go 1

(* [assign_rows g rows comp member ~prescribed level_sets] labels every
   vertex of the sub-butterfly whose per-level vertex arrays are
   [level_sets] with a row in [0, 2^k), k = levels - 1.  With [prescribed]
   the level-0 vertices arrive already labeled and are left untouched.
   [comp] and [member] are caller-provided scratch over the full vertex
   space, entered and left as all -1 / all false.  Raises [Reject] when
   the structure visibly deviates; the caller re-verifies the final
   labeling edge by edge, so this construction only has to succeed on
   genuine butterflies — it need not be sound against impostors.

   Removing level 0 of B_k leaves two disjoint copies of B_{k-1} — the two
   row classes of bit 0 — joined to level 0 through the K_{2,2} blocks.  A
   block's two targets are twins taking the rows {2q, 2q+1}, and which
   target takes which is free (a source twin swap is an automorphism of
   the sub-butterfly below it), so component A can always be embedded as
   the even class.  The labeling therefore flows strictly DOWN: component
   A is labeled first (freely, or from the prescription), the blocks hand
   component B its source rows, and B recurses fully prescribed.  Nothing
   is ever stitched after the fact — reconciling two independently chosen
   labelings would have to invert an arbitrary automorphism, whose
   level-0 action is not just a translation-with-twin-swaps once k >= 4
   (halfspace translations at every scale are automorphisms too). *)
let rec assign_rows g rows comp member ~prescribed level_sets =
  let k = Array.length level_sets - 1 in
  if k = 0 then begin
    if not prescribed then rows.(level_sets.(0).(0)) <- 0
  end
  else begin
    let half = 1 lsl (k - 1) in
    (* split levels 1..k into the two sub-butterflies *)
    for c = 1 to k do
      Array.iter (fun v -> member.(v) <- true) level_sets.(c)
    done;
    let bfs_component start id =
      let q = Queue.create () in
      comp.(start) <- id;
      Queue.push start q;
      while not (Queue.is_empty q) do
        let v = Queue.pop q in
        let visit w =
          if member.(w) && comp.(w) < 0 then begin
            comp.(w) <- id;
            Queue.push w q
          end
        in
        Dag.iter_succ g v visit;
        Dag.iter_pred g v visit
      done
    in
    bfs_component level_sets.(1).(0) 0;
    (match Array.find_opt (fun v -> comp.(v) < 0) level_sets.(1) with
    | Some v -> bfs_component v 1
    | None -> raise Reject);
    let sub_levels id =
      Array.init k (fun c ->
          let vs =
            Array.of_list
              (List.filter
                 (fun v -> comp.(v) = id)
                 (Array.to_list level_sets.(c + 1)))
          in
          if Array.length vs <> half then raise Reject;
          vs)
    in
    let levels_a = sub_levels 0 and levels_b = sub_levels 1 in
    (* orient each level-0 block while the scratch still holds components *)
    let blocks =
      Array.map
        (fun u ->
          let xy = Dag.succ g u in
          if Array.length xy <> 2 then raise Reject;
          match (comp.(xy.(0)), comp.(xy.(1))) with
          | 0, 1 -> (u, xy.(0), xy.(1))
          | 1, 0 -> (u, xy.(1), xy.(0))
          | _ -> raise Reject)
        level_sets.(0)
    in
    (* release the scratch before recursing (the recursion reuses it) *)
    for c = 1 to k do
      Array.iter
        (fun v ->
          member.(v) <- false;
          comp.(v) <- -1)
        level_sets.(c)
    done;
    if prescribed then begin
      (* both targets of a block inherit their sources' sub-row *)
      Array.iter
        (fun (u, x, y) ->
          let p = rows.(u) in
          if p < 0 || p >= 2 * half then raise Reject;
          let q = p lsr 1 in
          if rows.(x) >= 0 && rows.(x) <> q then raise Reject;
          rows.(x) <- q;
          rows.(y) <- q)
        blocks;
      assign_rows g rows comp member ~prescribed:true levels_a;
      assign_rows g rows comp member ~prescribed:true levels_b
    end
    else begin
      assign_rows g rows comp member ~prescribed:false levels_a;
      (* hand B its source rows through the blocks; any per-pair choice
         extends, so take the identity *)
      Array.iter (fun (_, x, y) -> rows.(y) <- rows.(x)) blocks;
      assign_rows g rows comp member ~prescribed:true levels_b
    end;
    (* embed: component A is the even row class *)
    Array.iter
      (fun vs -> Array.iter (fun v -> rows.(v) <- 2 * rows.(v)) vs)
      levels_a;
    Array.iter
      (fun vs -> Array.iter (fun v -> rows.(v) <- (2 * rows.(v)) + 1) vs)
      levels_b;
    if not prescribed then begin
      (* label level 0: a block's two sources are twins occupying rows
         {r, r+1} in either order *)
      let taken = Array.make (1 lsl k) false in
      Array.iter
        (fun (u, x, _) ->
          let r = rows.(x) in
          if not taken.(r) then begin
            rows.(u) <- r;
            taken.(r) <- true
          end
          else if r + 1 < Array.length taken && not taken.(r + 1) then begin
            rows.(u) <- r + 1;
            taken.(r + 1) <- true
          end
          else raise Reject)
        blocks
    end
  end

let recognize_butterfly g n =
  match butterfly_k n with
  | None -> None
  | Some k ->
      let cols = 1 lsl k in
      if Dag.n_edges g <> k * (1 lsl (k + 1)) then None
      else begin
        let degrees_ok = ref true in
        for v = 0 to n - 1 do
          let din = Dag.in_degree g v and dout = Dag.out_degree g v in
          if not ((din = 0 || din = 2) && (dout = 0 || dout = 2)) then
            degrees_ok := false
        done;
        if not !degrees_ok then None
        else begin
          try
            (* levels via Kahn's algorithm; both predecessors of a vertex
               must share a level, every level must hold exactly 2^k *)
            let level = Array.make n (-1) in
            let indeg = Array.init n (fun v -> Dag.in_degree g v) in
            let q = Queue.create () in
            for v = 0 to n - 1 do
              if indeg.(v) = 0 then begin
                level.(v) <- 0;
                Queue.push v q
              end
            done;
            let processed = ref 0 in
            while not (Queue.is_empty q) do
              let v = Queue.pop q in
              incr processed;
              Dag.iter_succ g v (fun w ->
                  (match level.(w) with
                  | -1 -> level.(w) <- level.(v) + 1
                  | lw -> if lw <> level.(v) + 1 then raise Reject);
                  indeg.(w) <- indeg.(w) - 1;
                  if indeg.(w) = 0 then Queue.push w q)
            done;
            if !processed <> n then raise Reject;
            let counts = Array.make (k + 1) 0 in
            for v = 0 to n - 1 do
              let l = level.(v) in
              if l < 0 || l > k then raise Reject;
              counts.(l) <- counts.(l) + 1
            done;
            Array.iter (fun c -> if c <> cols then raise Reject) counts;
            (* sinks only at level k (sources sit at level 0 by
               construction); levels beyond k were rejected above *)
            for v = 0 to n - 1 do
              if Dag.out_degree g v = 0 && level.(v) <> k then raise Reject
            done;
            (* disjoint K_{2,2} blocks between consecutive levels *)
            for v = 0 to n - 1 do
              if Dag.out_degree g v = 2 then begin
                let xy = Dag.succ g v in
                if xy.(0) = xy.(1) then raise Reject;
                let px = Dag.pred g xy.(0) and py = Dag.pred g xy.(1) in
                if Array.length px <> 2 || Array.length py <> 2 then
                  raise Reject;
                Array.sort compare px;
                Array.sort compare py;
                if px <> py then raise Reject;
                if not (Array.mem v px) then raise Reject;
                let v' = if px.(0) = v then px.(1) else px.(0) in
                if v' = v then raise Reject;
                let xy' = Dag.succ g v' in
                if
                  not
                    ((xy'.(0) = xy.(0) && xy'.(1) = xy.(1))
                    || (xy'.(0) = xy.(1) && xy'.(1) = xy.(0)))
                then raise Reject
              end
            done;
            let level_sets =
              Array.init (k + 1) (fun c ->
                  let vs = ref [] in
                  for v = n - 1 downto 0 do
                    if level.(v) = c then vs := v :: !vs
                  done;
                  Array.of_list !vs)
            in
            let rows = Array.make n (-1) in
            let comp = Array.make n (-1) in
            let member = Array.make n false in
            assign_rows g rows comp member ~prescribed:false level_sets;
            (* verification: (level, row) is a bijection and every directed
               edge is an FFT edge; with the exact edge count this pins the
               graph to B_k *)
            let seen = Array.make n false in
            for v = 0 to n - 1 do
              let r = rows.(v) in
              if r < 0 || r >= cols then raise Reject;
              let slot = (level.(v) * cols) + r in
              if seen.(slot) then raise Reject else seen.(slot) <- true
            done;
            Dag.iter_edges g (fun u v ->
                if level.(v) <> level.(u) + 1 then raise Reject;
                let d = rows.(u) lxor rows.(v) in
                if d <> 0 && d <> 1 lsl level.(u) then raise Reject);
            Some (Butterfly k)
          with Reject -> None
        end
      end

(* ------------------------------------------------------------------ *)

let recognize g =
  let n = Dag.n_vertices g in
  if n = 0 then None
  else
    match undirected_adj g with
    | None -> None
    | Some adj -> (
        match recognize_path g adj n with
        | Some f -> Some f
        | None -> (
            match recognize_hypercube g adj n with
            | Some f -> Some f
            | None -> (
                match recognize_grid g adj n with
                | Some f -> Some f
                | None -> recognize_butterfly g n)))
