(** Structural recognition of the closed-form spectrum families.

    The paper's Section 5 families — butterfly [B_k] (Theorem 7), hypercube
    [Q_l] (Section 5.1), paths and their Cartesian products (grids) — have
    exact Laplacian spectra in {!Graphio_spectra}.  This module decides, for
    an arbitrary {!Graphio_graph.Dag.t}, whether its {e undirected support}
    is one of those graphs, so the solver can answer from the closed form
    instead of running a numeric eigensolve.

    {2 Soundness contract}

    A false positive here would silently corrupt every downstream bound, so
    each recognizer ends in a full verification pass that is independent of
    the heuristics used to construct the candidate labeling:

    - {e path}: connected + [m = n-1] + max undirected degree 2 (a tree with
      maximum degree 2 {e is} a path — no further certificate needed);
    - {e hypercube}: a BFS labeling over [{0,1}^l] is built greedily, then
      every vertex label is checked distinct and {e every} edge checked to be
      Hamming-distance 1 with the exact [l 2^(l-1)] edge count;
    - {e grid}: corner-anchored coordinates are built greedily from BFS
      levels (Manhattan distance), then the [(row, col)] map is checked to
      be a bijection onto [[0,r) × [0,c)] and {e every} edge checked
      lattice-adjacent with the exact [r(c-1) + c(r-1)] edge count;
    - {e butterfly}: the level/K_{2,2}-block structure is peeled recursively
      (removing level 0 of [B_k] leaves two disjoint [B_{k-1}]s; the first
      is labeled freely, the second inherits its source rows through the
      level-0 blocks and is labeled fully prescribed, so no after-the-fact
      stitching of independently labeled halves is needed), then the
      [(level, row)] map is checked to be a bijection and {e every} directed
      edge checked to be an FFT edge [(c, r) → (c+1, r xor b·2^c)] with the
      exact [k 2^(k+1)] edge count.

    The verification pass means heuristic failures can only produce false
    {e negatives} (the solver falls back to the numeric tier, which is
    always correct), never false positives.  The [test/recognize]
    differential battery additionally checks, via QCheck, that relabeled
    instances stay recognized and one-edge perturbations are rejected.

    {2 Overlaps}

    Small instances coincide: [P_1 = Q_0 = B_0], [P_2 = Q_1], and the
    [2×2] grid is [C_4 = Q_2] (also the support of [B_1]).  Recognition
    order is path, hypercube, grid, butterfly; since coinciding instances
    are {e equal graphs} their spectra agree, so which name wins is
    immaterial for the bound. *)

type family =
  | Butterfly of int  (** [B_k]: [(k+1) 2^k] vertices, [k >= 1] *)
  | Hypercube of int  (** [Q_l]: [2^l] vertices, [l >= 1] *)
  | Path of int  (** [P_n]: [n >= 1] vertices *)
  | Grid of int * int  (** [r × c] grid with [2 <= r <= c] *)

val recognize : Graphio_graph.Dag.t -> family option
(** [recognize g] — the family whose (undirected support / directed
    structure, for the butterfly) graph [g] is, or [None].  Cost is
    [O((n + m) log n)]; a [Some] answer is certified by the full
    verification pass described above.  DAGs containing a reciprocal edge
    pair [u→v, v→u] are never recognized (their support Laplacian would
    carry weight 2 on that edge, which the closed forms do not model). *)

val spectrum : family -> Graphio_spectra.Multiset.t
(** The exact standard-Laplacian spectrum of the family's undirected
    support, straight from {!Graphio_spectra}: butterfly from
    {!Graphio_spectra.Butterfly_spectra}, hypercube from
    {!Graphio_spectra.Hypercube_spectra}, path from
    {!Graphio_spectra.Basic_spectra}, grid from
    {!Graphio_spectra.Product_spectra}. *)

val n_vertices : family -> int
(** Vertex count of the family instance. *)

val uniform_out_degree : Graphio_graph.Dag.t -> int option
(** [Some d] when every vertex with at least one outgoing edge has
    out-degree exactly [d] (and at least one such vertex exists).  Then the
    out-degree-normalized Laplacian is exactly [L/d], so the Theorem 4
    spectrum is the closed form scaled by [1/d] — the condition under which
    the solver may answer a [Normalized] query from the closed form. *)

val name : family -> string
(** Human-readable: ["butterfly B_4"], ["hypercube Q_6"], ["path P_17"],
    ["grid 3x5"]. *)

val equal : family -> family -> bool
val pp : Format.formatter -> family -> unit
