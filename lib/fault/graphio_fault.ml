(* Process-global fault-injection registry.  Design constraints, in order:

   1. Inert by default: with no plan installed, [hit] is one atomic load.
   2. Deterministic: every decision is drawn from a per-(clause, site)
      splitmix64 stream seeded by the clause seed and the site name, so a
      plan string fully determines the injected-fault sequence given the
      sites' hit order.
   3. Observable: fires increment [fault.injected.<site>] counters
      (registered lazily, so inert processes expose no fault metrics) and
      append to a replay log. *)

type outcome =
  | Pass
  | Fail
  | Torn of int
  | Flip of int * int
  | Sleep of float

exception Injected of string

(* ------------------------------ PRNG -------------------------------- *)

(* splitmix64: tiny, well-mixed, and stable across platforms — decisions
   must not depend on Random's global state or its algorithm version. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9e3779b97f4a7c15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

(* uniform float in [0, 1) from the top 53 bits *)
let draw_float state =
  Int64.to_float (Int64.shift_right_logical (splitmix64 state) 11)
  *. (1.0 /. 9007199254740992.0)

(* uniform int in [0, bound) — bound small here, modulo bias negligible *)
let draw_int state bound =
  if bound <= 0 then 0
  else Int64.to_int (Int64.rem (Int64.shift_right_logical (splitmix64 state) 1)
                       (Int64.of_int bound))

let fnv1a_string s =
  let acc = ref 0xcbf29ce484222325L in
  String.iter
    (fun ch ->
      acc := Int64.mul (Int64.logxor !acc (Int64.of_int (Char.code ch)))
               0x100000001b3L)
    s;
  !acc

(* ------------------------------ plans ------------------------------- *)

type kind = KError | KPartial | KFlip | KDelay

(* a parsed clause, before it is instantiated against a concrete site *)
type template = {
  pattern : string;  (* exact site name, or a trailing-* prefix wildcard *)
  prob : float;
  nth : int option;
  max_fires : int option;
  seed : int;
  kind : kind;
  delay_ms : float;
}

type plan = { source : string; templates : template list }

let parse source =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let parse_clause clause =
    match String.split_on_char ':' clause |> List.map String.trim with
    | [] | [ "" ] -> fail "fault plan %S: empty clause" source
    | pattern :: settings ->
        if pattern = "" then fail "fault plan %S: clause %S names no site" source clause
        else begin
          let t =
            ref
              {
                pattern;
                prob = 1.0;
                nth = None;
                max_fires = None;
                seed = 0;
                kind = KError;
                delay_ms = 10.0;
              }
          in
          let bad = ref None in
          let set_bad fmt = Printf.ksprintf (fun m -> if !bad = None then bad := Some m) fmt in
          List.iter
            (fun s ->
              match String.index_opt s '=' with
              | None -> set_bad "fault plan %S: expected KEY=VALUE, got %S" source s
              | Some i -> (
                  let key = String.sub s 0 i in
                  let v = String.sub s (i + 1) (String.length s - i - 1) in
                  let int_v name =
                    match int_of_string_opt v with
                    | Some x -> x
                    | None ->
                        set_bad "fault plan %S: %s=%S is not an integer" source name v;
                        0
                  in
                  let float_v name =
                    match float_of_string_opt v with
                    | Some x -> x
                    | None ->
                        set_bad "fault plan %S: %s=%S is not a number" source name v;
                        0.0
                  in
                  match key with
                  | "p" ->
                      let p = float_v "p" in
                      if p < 0.0 || p > 1.0 then
                        set_bad "fault plan %S: p=%S is not in [0, 1]" source v
                      else t := { !t with prob = p }
                  | "nth" ->
                      let n = int_v "nth" in
                      if n < 1 then set_bad "fault plan %S: nth=%S must be >= 1" source v
                      else t := { !t with nth = Some n }
                  | "count" ->
                      let n = int_v "count" in
                      if n < 1 then set_bad "fault plan %S: count=%S must be >= 1" source v
                      else t := { !t with max_fires = Some n }
                  | "seed" -> t := { !t with seed = int_v "seed" }
                  | "ms" ->
                      let m = float_v "ms" in
                      if m < 0.0 then set_bad "fault plan %S: ms=%S must be >= 0" source v
                      else t := { !t with delay_ms = m }
                  | "kind" -> (
                      match v with
                      | "error" -> t := { !t with kind = KError }
                      | "partial" -> t := { !t with kind = KPartial }
                      | "flip" -> t := { !t with kind = KFlip }
                      | "delay" -> t := { !t with kind = KDelay }
                      | _ ->
                          set_bad
                            "fault plan %S: kind=%S is not error|partial|flip|delay"
                            source v)
                  | _ -> set_bad "fault plan %S: unknown key %S in clause %S" source key clause))
            settings;
          match !bad with Some m -> Error m | None -> Ok !t
        end
  in
  let clauses =
    String.split_on_char ',' source |> List.map String.trim
    |> List.filter (fun c -> c <> "")
  in
  if clauses = [] then fail "fault plan %S: no clauses" source
  else
    let rec go acc = function
      | [] -> Ok { source; templates = List.rev acc }
      | c :: rest -> (
          match parse_clause c with
          | Ok t -> go (t :: acc) rest
          | Error m -> Error m)
    in
    go [] clauses

let parse_exn s =
  match parse s with Ok p -> p | Error m -> invalid_arg m

(* ----------------------------- matching ----------------------------- *)

let matches pattern site_name =
  if pattern = site_name then true
  else
    let pl = String.length pattern in
    pl > 0
    && pattern.[pl - 1] = '*'
    && String.length site_name >= pl - 1
    && String.sub site_name 0 (pl - 1) = String.sub pattern 0 (pl - 1)

(* a template instantiated against one concrete site: private counters and
   a private PRNG stream, so wildcard clauses stay per-site deterministic *)
type clause = {
  t : template;
  mutable hits : int;
  mutable fires : int;
  rng : int64 ref;
}

let instantiate site_name t =
  {
    t;
    hits = 0;
    fires = 0;
    rng = ref (Int64.logxor (Int64.of_int t.seed) (fnv1a_string site_name));
  }

(* ------------------------------ state ------------------------------- *)

type site = {
  s_name : string;
  mutable s_epoch : int;  (* plan generation the bindings below belong to *)
  mutable s_clauses : clause list;
  mutable s_counter : Graphio_obs.Metrics.counter option;
}

let enabled = Atomic.make false
let mutex = Mutex.create ()

(* everything below is guarded by [mutex] *)
let installed : plan option ref = ref None
let epoch = ref 0
let sites : (string, site) Hashtbl.t = Hashtbl.create 32
let log : (string * int * string) list ref = ref []
let log_len = ref 0
let log_cap = 1_000_000
let fired_total = ref 0
let env_consulted = ref false

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let install_locked p =
  installed := Some p;
  incr epoch;
  log := [];
  log_len := 0;
  fired_total := 0;
  Atomic.set enabled true

let clear_locked () =
  installed := None;
  incr epoch;
  log := [];
  log_len := 0;
  fired_total := 0;
  (* a cleared plan also suppresses any later environment consultation:
     an explicit clear means "inert from here on" *)
  env_consulted := true;
  Atomic.set enabled false

let consult_env_locked () =
  if not !env_consulted then begin
    env_consulted := true;
    match Sys.getenv_opt "GRAPHIO_FAULTS" with
    | None | Some "" -> ()
    | Some s -> (
        match parse s with
        | Ok p -> install_locked p
        | Error m -> invalid_arg ("GRAPHIO_FAULTS: " ^ m))
  end

let set p = locked (fun () -> env_consulted := true; install_locked p)
let clear () = locked clear_locked

let plan_string () =
  locked (fun () ->
      consult_env_locked ();
      Option.map (fun p -> p.source) !installed)

let active () =
  Atomic.get enabled
  ||
  locked (fun () ->
      consult_env_locked ();
      !installed <> None)

let with_plan s f =
  let p = parse_exn s in
  let prev = locked (fun () -> consult_env_locked (); !installed) in
  set p;
  Fun.protect
    ~finally:(fun () ->
      locked (fun () ->
          match prev with Some p -> install_locked p | None -> clear_locked ()))
    f

let site s_name =
  if s_name = "" then invalid_arg "Fault.site: empty name";
  locked (fun () ->
      match Hashtbl.find_opt sites s_name with
      | Some s -> s
      | None ->
          let s = { s_name; s_epoch = -1; s_clauses = []; s_counter = None } in
          Hashtbl.add sites s_name s;
          s)

let name s = s.s_name

let injections () = locked (fun () -> List.rev !log)
let injected_total () = locked (fun () -> !fired_total)

(* ------------------------------ firing ------------------------------ *)

let rebind_locked s =
  let templates =
    match !installed with Some p -> p.templates | None -> []
  in
  s.s_clauses <-
    List.filter_map
      (fun t -> if matches t.pattern s.s_name then Some (instantiate s.s_name t) else None)
      templates;
  s.s_epoch <- !epoch

let record_locked s hit_index tag =
  incr fired_total;
  if !log_len < log_cap then begin
    log := (s.s_name, hit_index, tag) :: !log;
    incr log_len
  end;
  let c =
    match s.s_counter with
    | Some c -> c
    | None ->
        let c = Graphio_obs.Metrics.counter ("fault.injected." ^ s.s_name) in
        s.s_counter <- Some c;
        c
  in
  Graphio_obs.Metrics.incr c

let outcome_of_clause c ~len =
  match c.t.kind with
  | KError -> (Fail, "fail")
  | KDelay ->
      let s = c.t.delay_ms /. 1000.0 in
      (Sleep s, Printf.sprintf "sleep:%g" s)
  | KPartial ->
      if len <= 0 then (Fail, "fail")
      else
        let keep = draw_int c.rng len in
        (Torn keep, Printf.sprintf "torn:%d" keep)
  | KFlip ->
      if len <= 0 then (Fail, "fail")
      else
        let off = draw_int c.rng len in
        let mask = 1 + draw_int c.rng 255 in
        (Flip (off, mask), Printf.sprintf "flip:%d:%d" off mask)

let hit_slow ~len s =
  locked (fun () ->
      if s.s_epoch <> !epoch then rebind_locked s;
      (* Every clause sees every hit (its counters and PRNG stream advance
         independently of the others); the first clause in plan order that
         wants to fire decides the outcome. *)
      let winner = ref None in
      List.iter
        (fun c ->
          c.hits <- c.hits + 1;
          let wants_fire =
            (match c.t.max_fires with
            | Some cap -> c.fires < cap
            | None -> true)
            &&
            match c.t.nth with
            | Some n -> c.hits = n
            | None -> c.t.prob >= 1.0 || draw_float c.rng < c.t.prob
          in
          if wants_fire && !winner = None then winner := Some c)
        s.s_clauses;
      match !winner with
      | None -> Pass
      | Some c ->
          c.fires <- c.fires + 1;
          let outcome, tag = outcome_of_clause c ~len in
          record_locked s c.hits tag;
          outcome)

let hit ?(len = 0) s =
  if Atomic.get enabled then hit_slow ~len s
  else if (not !env_consulted) && active () then hit_slow ~len s
  else Pass

let step s =
  match hit s with Pass -> () | _ -> raise (Injected s.s_name)
