(** Deterministic, seeded, off-by-default fault injection.

    Code under test declares named {e sites} once at module-initialization
    time ([let f = Fault.site "cache.disk.read"]) and consults them on the
    error-prone path with {!hit}.  With no plan installed every hit
    returns {!Pass} after a single atomic load — the layer is fully inert
    in production and in ordinary test runs.

    A {e plan} — parsed from the [GRAPHIO_FAULTS] environment variable, a
    [--faults] CLI flag, or set programmatically — decides at each hit
    whether the site {e fires} and how:

    {v cache.disk.write:p=0.2:seed=7,server.sock.read:nth=3:kind=partial v}

    Clauses are comma-separated; each names a site (or a [prefix.*]
    wildcard) followed by [:key=value] settings:

    - [p=F]     fire each hit with probability [F] (default [1])
    - [nth=N]   fire exactly on the [N]-th hit (1-based; overrides [p])
    - [count=N] stop after [N] fires (default unlimited)
    - [seed=N]  per-clause PRNG seed (default [0])
    - [kind=K]  [error] (default) | [partial] | [flip] | [delay]
    - [ms=F]    delay magnitude in milliseconds for [kind=delay]
                (default [10])

    Every random decision — whether a probabilistic clause fires, how many
    bytes a torn I/O keeps, which byte a corruption flips — is drawn from
    a per-site splitmix64 stream seeded by [seed] and the site name, so a
    failing run is replayable from its plan string alone (provided the
    site's hit sequence is itself deterministic; pin pool sizes to 1 when
    asserting exact replay).

    Fires surface as [fault.injected.<site>] counters through
    {!Graphio_obs.Metrics} (registered lazily at first fire, so inert
    processes expose no fault metrics), and are appended to an in-memory
    {!injections} log for replay assertions. *)

type site
(** Handle for one named injection point. *)

val site : string -> site
(** Register (or look up) the site with this name.  Cheap; intended for
    module-initialization time.  Raises [Invalid_argument] on an empty
    name. *)

val name : site -> string

type outcome =
  | Pass  (** no fault: proceed normally *)
  | Fail  (** behave as the operation's error case *)
  | Torn of int
      (** torn / partial I/O: act on only this many of the [len] units
          offered to {!hit} (in [\[0, len)]) *)
  | Flip of int * int
      (** corrupt one byte: [(offset, xor_mask)] with [offset] in
          [\[0, len)] and [xor_mask] in [\[1, 255\]] *)
  | Sleep of float  (** injected delay in seconds *)

exception Injected of string
(** Raised by {!step}; carries the site name.  Sites that model
    task-level exceptions (e.g. [pool.task]) surface as this. *)

val hit : ?len:int -> site -> outcome
(** Record one hit at the site and decide whether a fault fires.  [len]
    is the size of the buffer (bytes, units) the caller is about to act
    on; [Torn]/[Flip] outcomes are drawn within it.  A [partial] or
    [flip] clause firing against [len <= 0] degrades to [Fail].  With no
    plan installed, always [Pass]. *)

val step : site -> unit
(** [step s] raises [Injected (name s)] if the site fires (whatever the
    clause kind); otherwise returns unit.  For sites whose only failure
    mode is an exception. *)

val active : unit -> bool
(** Whether a plan is currently installed (after consulting
    [GRAPHIO_FAULTS] on first use). *)

(* ------------------------------- plans ------------------------------ *)

type plan

val parse : string -> (plan, string) result
(** Parse a plan string.  The error message is a single line and quotes
    the offending clause. *)

val parse_exn : string -> plan
(** Like {!parse} but raises [Invalid_argument]. *)

val set : plan -> unit
(** Install a plan: all per-site clause state (hit counters, PRNG
    streams) and the {!injections} log are reset, so installing the same
    plan twice yields the same decision sequence twice. *)

val clear : unit -> unit
(** Remove any installed plan (including one loaded from the
    environment); the layer returns to inert. *)

val plan_string : unit -> string option
(** The string form of the installed plan, for replay messages. *)

val with_plan : string -> (unit -> 'a) -> 'a
(** [with_plan s f] parses and installs [s], runs [f], and restores the
    previously-installed plan (if any) even on exception.  Raises
    [Invalid_argument] on a malformed plan. *)

(* ------------------------------ replay ------------------------------ *)

val injections : unit -> (string * int * string) list
(** Chronological log of fired injections since the last {!set}/{!clear}:
    [(site, hit_index, outcome_tag)] with [hit_index] 1-based per site
    and [outcome_tag] one of ["fail" | "torn" | "flip" | "sleep"] plus
    the drawn parameters (e.g. ["torn:17"]).  Capped at one million
    entries. *)

val injected_total : unit -> int
(** Total fires since the last {!set}/{!clear} (not capped). *)
