open Graphio_graph

type per_vertex = {
  vertex : int;
  wavefront : int;
}

let descendants g v =
  let n = Dag.n_vertices g in
  let seen = Array.make n false in
  let stack = Stack.create () in
  Dag.iter_succ g v (fun w ->
      if not seen.(w) then begin
        seen.(w) <- true;
        Stack.push w stack
      end);
  while not (Stack.is_empty stack) do
    let u = Stack.pop stack in
    Dag.iter_succ g u (fun w ->
        if not seen.(w) then begin
          seen.(w) <- true;
          Stack.push w stack
        end)
  done;
  seen

let min_wavefront g v =
  if Dag.out_degree g v = 0 then 0
  else begin
    let n = Dag.n_vertices g in
    (* Node layout: u_in = 2u, u_out = 2u + 1, s = 2n, t = 2n + 1. *)
    let net = Dinic.create ((2 * n) + 2) in
    let s = 2 * n and t = (2 * n) + 1 in
    let node_in u = 2 * u and node_out u = (2 * u) + 1 in
    for u = 0 to n - 1 do
      Dinic.add_edge net ~src:(node_in u) ~dst:(node_out u) ~cap:1
    done;
    Dag.iter_edges g (fun u w ->
        (* u interior => w in S *)
        Dinic.add_edge net ~src:(node_out u) ~dst:(node_in w) ~cap:Dinic.inf_cap;
        (* downward closure: w in S => u in S *)
        Dinic.add_edge net ~src:(node_in w) ~dst:(node_in u) ~cap:Dinic.inf_cap);
    Dinic.add_edge net ~src:s ~dst:(node_in v) ~cap:Dinic.inf_cap;
    let desc = descendants g v in
    for d = 0 to n - 1 do
      if desc.(d) then Dinic.add_edge net ~src:(node_in d) ~dst:t ~cap:Dinic.inf_cap
    done;
    Dinic.max_flow net ~s ~sink:t
  end

let c_wavefronts = Graphio_obs.Metrics.counter "flow.mincut.wavefronts"

let h_wavefront_seconds =
  Graphio_obs.Metrics.histogram "flow.mincut.wavefront_seconds"

let max_wavefront g =
  Graphio_obs.Span.with_ "mincut.max_wavefront" (fun () ->
      let best = ref { vertex = -1; wavefront = 0 } in
      for v = 0 to Dag.n_vertices g - 1 do
        let c =
          Graphio_obs.Metrics.time h_wavefront_seconds (fun () ->
              min_wavefront g v)
        in
        Graphio_obs.Metrics.incr c_wavefronts;
        if c > !best.wavefront || !best.vertex < 0 then
          best := { vertex = v; wavefront = c }
      done;
      !best)

let bound_of_wavefront best ~m =
  if m < 0 then invalid_arg "Convex_mincut.bound_of_wavefront: negative memory size";
  max 0 (2 * (best.wavefront - m))

let bound_detailed g ~m =
  if m < 0 then invalid_arg "Convex_mincut.bound: negative memory size";
  let best = max_wavefront g in
  (bound_of_wavefront best ~m, best)

let bound g ~m = fst (bound_detailed g ~m)

let bound_partitioned g ~m ~part_size =
  if m < 0 then invalid_arg "Convex_mincut.bound_partitioned: negative memory size";
  let part = Partition.balanced g ~part_size in
  let total = ref 0 in
  for p = 0 to Partition.count part - 1 do
    let vs = Partition.members part p in
    let sub, _mapping = Dag.induced_subgraph g vs in
    let best = ref 0 in
    for v = 0 to Dag.n_vertices sub - 1 do
      best := max !best (min_wavefront sub v)
    done;
    total := !total + max 0 (2 * (!best - m))
  done;
  !total
