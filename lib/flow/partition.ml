open Graphio_graph

let balanced g ~part_size =
  if part_size < 1 then invalid_arg "Partition.balanced: part_size must be >= 1";
  let n = Dag.n_vertices g in
  let part = Array.make n (-1) in
  let next_part = ref 0 in
  let queue = Queue.create () in
  for start = 0 to n - 1 do
    if part.(start) = -1 then begin
      let id = !next_part in
      incr next_part;
      let size = ref 0 in
      Queue.clear queue;
      Queue.add start queue;
      part.(start) <- id;
      incr size;
      while (not (Queue.is_empty queue)) && !size < part_size do
        let u = Queue.pop queue in
        let visit w =
          if part.(w) = -1 && !size < part_size then begin
            part.(w) <- id;
            incr size;
            Queue.add w queue
          end
        in
        Dag.iter_succ g u visit;
        Dag.iter_pred g u visit
      done
    end
  done;
  part

let count part = Array.fold_left max (-1) part + 1

let members part id =
  let out = ref [] in
  for v = Array.length part - 1 downto 0 do
    if part.(v) = id then out := v :: !out
  done;
  Array.of_list !out
