(** Dinic's maximum-flow algorithm on integer capacities.

    The flow substrate behind the convex min-cut baseline: level graph BFS
    plus blocking-flow DFS, [O(V^2 E)] in general and much better on the
    unit-capacity networks we build.  Capacities use [inf_cap] as the
    "uncuttable" value; the implementation guards against overflow by
    capping augmentations at [inf_cap]. *)

type t

val inf_cap : int
(** Effectively infinite capacity ([max_int / 4]). *)

val create : int -> t
(** [create n] — a network on nodes [0 .. n-1]. *)

val add_edge : t -> src:int -> dst:int -> cap:int -> unit
(** Adds a directed edge (and its residual reverse of capacity 0).
    Capacities must be nonnegative.  Parallel edges are allowed. *)

val n_nodes : t -> int

val max_flow : t -> s:int -> sink:int -> int
(** Computes the max [s]-[sink] flow.  May be called once per network
    (flows persist); raises [Invalid_argument] if [s = sink]. *)

val min_cut_side : t -> s:int -> bool array
(** After {!max_flow}: the source side of a minimum cut (nodes reachable
    from [s] in the residual network). *)

val cut_value : t -> bool array -> int
(** Total capacity of original edges leaving the given side (checks the
    max-flow/min-cut equality in tests). *)
