(** The convex min-cut I/O lower bound — the paper's automatic baseline
    (Elango, Rastello, Pouchet, Ramanujam & Sadayappan, "Data access
    complexity: the red/blue pebble game revisited"; reference [13]).

    For a vertex [v], consider any schedule at the instant [v] has just
    been evaluated.  The set [S] of already-evaluated vertices is closed
    under predecessors ("convex" / downward-closed), contains [v] and all
    of [v]'s ancestors, and excludes all of [v]'s descendants.  Every
    vertex of [S] with an edge into [V \ S] (the {e wavefront}) holds a
    value still needed later, so at most [M] of them can sit in fast
    memory and each of the rest costs a write now and a read later:

    [J*_G >= max_v max(0, 2 (C(v, G) − M))]

    where [C(v, G)] is the {e minimum} wavefront size over all such [S].
    [C(v, G)] is computed exactly as a min [s]-[t] cut on a vertex-split
    network: vertex [u] is split into [u_in -> u_out] of capacity 1 (cut
    iff [u] is on the wavefront), infinite arcs [u_out -> w_in] and
    [w_in -> u_in] per edge [(u, w)] encode "interior implies successors
    inside" and downward closure, [s] feeds [v_in], and every descendant's
    [in]-node feeds [t].

    The whole-graph bound maximizes over all [v] ([O(n)] max-flow runs —
    the [O(n^5)] behaviour the paper measures in Figure 11).  The
    partitioned variant follows the original authors' [2M]-sub-graph
    suggestion; the paper reports (and we reproduce) that it is trivial on
    complex graphs. *)

type per_vertex = {
  vertex : int;
  wavefront : int;  (** [C(v, G)] *)
}

val min_wavefront : Graphio_graph.Dag.t -> int -> int
(** [min_wavefront g v] = [C(v, G)].  [0] when [v] has no successors. *)

val max_wavefront : Graphio_graph.Dag.t -> per_vertex
(** [max_v C(v, G)] with its maximizing vertex — the expensive part of the
    bound, independent of [M]; sweeps over many [M] values should compute
    it once and finish with {!bound_of_wavefront}. *)

val bound_of_wavefront : per_vertex -> m:int -> int
(** [max 0 (2 (C - M))]. *)

val bound : Graphio_graph.Dag.t -> m:int -> int
(** Whole-graph bound [max_v max(0, 2 (C(v,G) − M))]. *)

val bound_detailed : Graphio_graph.Dag.t -> m:int -> int * per_vertex
(** The bound together with the maximizing vertex and its wavefront. *)

val bound_partitioned : Graphio_graph.Dag.t -> m:int -> part_size:int -> int
(** [Σ_P max_{v∈P} max(0, 2 (C(v, G_P) − M))] over the BFS-balanced
    partition into parts of at most [part_size] (the original paper
    suggests [2M]). *)
