(** Balanced graph partitioning (the baseline's METIS stand-in).

    Elango et al. suggest splitting the computation graph into sub-graphs
    of at most [2M] vertices (via METIS) and running convex min-cut per
    part.  This module provides a deterministic BFS-grown balanced
    partitioner playing that role; it optimizes nothing fancy — which is
    fine, because the experiment it supports reproduces the paper's
    observation that the partitioned variant collapses to trivial bounds
    regardless. *)

val balanced : Graphio_graph.Dag.t -> part_size:int -> int array
(** [balanced g ~part_size] labels each vertex with a part id; parts are
    grown by BFS over the undirected support from the smallest unassigned
    vertex and contain at most [part_size] vertices ([>= 1]).  Part ids
    are consecutive from 0. *)

val count : int array -> int
(** Number of parts in a labelling. *)

val members : int array -> int -> int array
(** Vertices of one part, ascending. *)
