type edge = {
  dst : int;
  mutable cap : int;  (* residual capacity *)
  rev : int;  (* index of the reverse edge in adj.(dst) *)
  original_cap : int;
}

type t = {
  n : int;
  mutable proto : (int * int * int) list;  (* (src, dst, cap), reversed *)
  mutable adj : edge array array option;  (* frozen adjacency *)
}

let inf_cap = max_int / 4

let create n =
  if n < 0 then invalid_arg "Dinic.create: negative node count";
  { n; proto = []; adj = None }

let add_edge t ~src ~dst ~cap =
  if t.adj <> None then invalid_arg "Dinic.add_edge: network already frozen";
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Dinic.add_edge: node out of range";
  if cap < 0 then invalid_arg "Dinic.add_edge: negative capacity";
  t.proto <- (src, dst, cap) :: t.proto

let n_nodes t = t.n

(* The adjacency is accumulated as a list and frozen into arrays on first
   use; [rev] indices are resolved at freeze time via per-node fill
   counters (each edge occupies one slot at its source and one reverse
   slot at its destination). *)
let freeze t =
  match t.adj with
  | Some adj -> adj
  | None ->
      let edges = List.rev t.proto in
      t.proto <- [];
      let counts = Array.make t.n 0 in
      List.iter
        (fun (src, dst, _) ->
          counts.(src) <- counts.(src) + 1;
          counts.(dst) <- counts.(dst) + 1)
        edges;
      let placeholder = { dst = -1; cap = 0; rev = -1; original_cap = 0 } in
      let adj = Array.init t.n (fun i -> Array.make counts.(i) placeholder) in
      let fill = Array.make t.n 0 in
      List.iter
        (fun (src, dst, cap) ->
          let i_fwd = fill.(src) in
          fill.(src) <- i_fwd + 1;
          let i_rev = fill.(dst) in
          fill.(dst) <- i_rev + 1;
          adj.(src).(i_fwd) <- { dst; cap; rev = i_rev; original_cap = cap };
          adj.(dst).(i_rev) <- { dst = src; cap = 0; rev = i_fwd; original_cap = 0 })
        edges;
      t.adj <- Some adj;
      adj

let c_max_flows = Graphio_obs.Metrics.counter "flow.dinic.max_flows"
let c_bfs_phases = Graphio_obs.Metrics.counter "flow.dinic.bfs_phases"
let c_aug_paths = Graphio_obs.Metrics.counter "flow.dinic.augmenting_paths"

let max_flow t ~s ~sink =
  if s = sink then invalid_arg "Dinic.max_flow: source equals sink";
  if s < 0 || s >= t.n || sink < 0 || sink >= t.n then
    invalid_arg "Dinic.max_flow: node out of range";
  Graphio_obs.Metrics.incr c_max_flows;
  let adj = freeze t in
  let level = Array.make t.n (-1) in
  let iter = Array.make t.n 0 in
  let queue = Queue.create () in
  let bfs () =
    Array.fill level 0 t.n (-1);
    Queue.clear queue;
    level.(s) <- 0;
    Queue.add s queue;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      Array.iter
        (fun e ->
          if e.cap > 0 && level.(e.dst) < 0 then begin
            level.(e.dst) <- level.(u) + 1;
            Queue.add e.dst queue
          end)
        adj.(u)
    done;
    level.(sink) >= 0
  in
  let rec dfs u f =
    if u = sink then f
    else begin
      let pushed = ref 0 in
      while !pushed = 0 && iter.(u) < Array.length adj.(u) do
        let e = adj.(u).(iter.(u)) in
        if e.cap > 0 && level.(e.dst) = level.(u) + 1 then begin
          let d = dfs e.dst (min f e.cap) in
          if d > 0 then begin
            e.cap <- e.cap - d;
            let r = adj.(e.dst).(e.rev) in
            r.cap <- r.cap + d;
            pushed := d
          end
          else iter.(u) <- iter.(u) + 1
        end
        else iter.(u) <- iter.(u) + 1
      done;
      !pushed
    end
  in
  let flow = ref 0 in
  while bfs () do
    Graphio_obs.Metrics.incr c_bfs_phases;
    Array.fill iter 0 t.n 0;
    let continue_ = ref true in
    while !continue_ do
      let f = dfs s inf_cap in
      if f = 0 then continue_ := false
      else begin
        Graphio_obs.Metrics.incr c_aug_paths;
        flow := !flow + f
      end
    done
  done;
  !flow

let min_cut_side t ~s =
  let adj = freeze t in
  let side = Array.make t.n false in
  let stack = Stack.create () in
  side.(s) <- true;
  Stack.push s stack;
  while not (Stack.is_empty stack) do
    let u = Stack.pop stack in
    Array.iter
      (fun e ->
        if e.cap > 0 && not side.(e.dst) then begin
          side.(e.dst) <- true;
          Stack.push e.dst stack
        end)
      adj.(u)
  done;
  side

let cut_value t side =
  if Array.length side <> t.n then invalid_arg "Dinic.cut_value: side length mismatch";
  let adj = freeze t in
  let acc = ref 0 in
  for u = 0 to t.n - 1 do
    if side.(u) then
      Array.iter
        (fun e ->
          if e.original_cap > 0 && not side.(e.dst) then acc := !acc + e.original_cap)
        adj.(u)
  done;
  !acc
