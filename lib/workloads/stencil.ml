open Graphio_graph

let vertex ~width ~step ~cell =
  if cell < 0 || cell >= width then invalid_arg "Stencil.vertex: cell out of range";
  if step < 0 then invalid_arg "Stencil.vertex: negative step";
  (step * width) + cell

let build ?(radius = 1) ~width ~steps () =
  if width < 1 then invalid_arg "Stencil.build: width must be >= 1";
  if steps < 0 then invalid_arg "Stencil.build: steps must be >= 0";
  if radius < 0 then invalid_arg "Stencil.build: radius must be >= 0";
  let b = Dag.Builder.create ~capacity_hint:((steps + 1) * width) () in
  for t = 0 to steps do
    for i = 0 to width - 1 do
      ignore (Dag.Builder.add_vertex ~label:(Printf.sprintf "c%d_%d" t i) b)
    done
  done;
  for t = 1 to steps do
    for i = 0 to width - 1 do
      let v = vertex ~width ~step:t ~cell:i in
      for j = max 0 (i - radius) to min (width - 1) (i + radius) do
        Dag.Builder.add_edge b (vertex ~width ~step:(t - 1) ~cell:j) v
      done
    done
  done;
  Dag.Builder.build ~verify_acyclic:false b

let grid ~rows ~cols =
  if rows < 1 || cols < 1 then
    invalid_arg "Stencil.grid: rows and cols must be >= 1";
  let b = Dag.Builder.create ~capacity_hint:(rows * cols) () in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      ignore (Dag.Builder.add_vertex ~label:(Printf.sprintf "g%d_%d" i j) b)
    done
  done;
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      let v = (i * cols) + j in
      if i > 0 then Dag.Builder.add_edge b (v - cols) v;
      if j > 0 then Dag.Builder.add_edge b (v - 1) v
    done
  done;
  Dag.Builder.build ~verify_acyclic:false b

let pyramid base =
  if base < 1 then invalid_arg "Stencil.pyramid: base must be >= 1";
  let b = Dag.Builder.create ~capacity_hint:(base * (base + 1) / 2) () in
  let prev = ref (Array.init base (fun i ->
      Dag.Builder.add_vertex ~label:(Printf.sprintf "p0_%d" i) b))
  in
  for r = 1 to base - 1 do
    let width = base - r in
    let row =
      Array.init width (fun i ->
          let v = Dag.Builder.add_vertex ~label:(Printf.sprintf "p%d_%d" r i) b in
          Dag.Builder.add_edge b !prev.(i) v;
          Dag.Builder.add_edge b !prev.(i + 1) v;
          v)
    in
    prev := row
  done;
  Dag.Builder.build ~verify_acyclic:false b
