(** Stencil / dynamic-programming grid computation graphs.

    Iterative computations where timestep [t]'s cell [i] reads a
    neighbourhood of timestep [t-1] — the canonical I/O-bound scientific
    kernel, and (as the "diamond DAG") a classic object of pebble-game
    analysis since Hong & Kung.  Two shapes:

    - {!build}: a 1-D stencil of [width] cells over [steps] timesteps with
      a [radius]-neighbourhood (non-periodic: rows keep full width, border
      cells just have smaller in-degree);
    - {!pyramid}: the pyramid graph — row [r] has [base − r] vertices,
      each reading two adjacent parents below; the apex depends on the
      whole base. *)

val build : ?radius:int -> width:int -> steps:int -> unit -> Graphio_graph.Dag.t
(** [(steps + 1) * width] vertices (row 0 = inputs); [radius >= 0]
    (default 1, the 3-point stencil); creation order topological. *)

val vertex : width:int -> step:int -> cell:int -> int
(** Vertex id of cell [cell] at timestep [step]. *)

val grid : rows:int -> cols:int -> Graphio_graph.Dag.t
(** The diamond DAG on the [rows x cols] lattice: cell [(i, j)] reads
    [(i-1, j)] and [(i, j-1)] — dynamic programming over a table.  Its
    undirected support is the [rows x cols] grid graph [P_rows □ P_cols],
    so the standard-Laplacian spectrum has the
    {!Graphio_spectra.Product_spectra.grid} closed form.  [rows, cols >= 1];
    creation order topological. *)

val pyramid : int -> Graphio_graph.Dag.t
(** [pyramid base]: rows of [base, base−1, ..., 1] vertices; vertex [i] of
    row [r >= 1] has parents [i] and [i+1] of row [r−1].  [base >= 1]. *)
