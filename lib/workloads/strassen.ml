open Graphio_graph

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let rec ops n =
  if n = 1 then 1
  else begin
    let half = n / 2 in
    (* 10 quadrant-pair sums of half*half binary vertices feed the 7
       recursive products; 4 combination quadrants of half*half vertices
       rebuild C. *)
    (7 * ops half) + (14 * half * half)
  end

let n_vertices n = (2 * n * n) + ops n

(* A quadrant-addressable matrix of vertex ids. *)
type ids = int array array

let quadrant (m : ids) ~row ~col ~size : ids =
  Array.init size (fun i -> Array.init size (fun j -> m.(row + i).(col + j)))

let assemble ~size (c11 : ids) (c12 : ids) (c21 : ids) (c22 : ids) : ids =
  let half = size / 2 in
  Array.init size (fun i ->
      Array.init size (fun j ->
          match (i < half, j < half) with
          | true, true -> c11.(i).(j)
          | true, false -> c12.(i).(j - half)
          | false, true -> c21.(i - half).(j)
          | false, false -> c22.(i - half).(j - half)))

let build n =
  if not (is_power_of_two n) then
    invalid_arg "Strassen.build: n must be a positive power of two";
  let b = Dag.Builder.create ~capacity_hint:(n_vertices n) () in
  let input name =
    Array.init n (fun i ->
        Array.init n (fun j ->
            Dag.Builder.add_vertex ~label:(Printf.sprintf "%s%d,%d" name i j) b))
  in
  let a = input "A" and bb = input "B" in
  (* Element-wise binary operation on two id matrices. *)
  let binop tag (x : ids) (y : ids) : ids =
    let size = Array.length x in
    Array.init size (fun i ->
        Array.init size (fun j ->
            let v = Dag.Builder.add_vertex ~label:tag b in
            Dag.Builder.add_edge b x.(i).(j) v;
            Dag.Builder.add_edge b y.(i).(j) v;
            v))
  in
  (* Element-wise 4-ary combination. *)
  let combine4 tag (w : ids) (x : ids) (y : ids) (z : ids) : ids =
    let size = Array.length w in
    Array.init size (fun i ->
        Array.init size (fun j ->
            let v = Dag.Builder.add_vertex ~label:tag b in
            Dag.Builder.add_edge b w.(i).(j) v;
            Dag.Builder.add_edge b x.(i).(j) v;
            Dag.Builder.add_edge b y.(i).(j) v;
            Dag.Builder.add_edge b z.(i).(j) v;
            v))
  in
  let rec multiply (x : ids) (y : ids) : ids =
    let size = Array.length x in
    if size = 1 then begin
      let v = Dag.Builder.add_vertex ~label:"*" b in
      Dag.Builder.add_edge b x.(0).(0) v;
      Dag.Builder.add_edge b y.(0).(0) v;
      [| [| v |] |]
    end
    else begin
      let half = size / 2 in
      let x11 = quadrant x ~row:0 ~col:0 ~size:half
      and x12 = quadrant x ~row:0 ~col:half ~size:half
      and x21 = quadrant x ~row:half ~col:0 ~size:half
      and x22 = quadrant x ~row:half ~col:half ~size:half in
      let y11 = quadrant y ~row:0 ~col:0 ~size:half
      and y12 = quadrant y ~row:0 ~col:half ~size:half
      and y21 = quadrant y ~row:half ~col:0 ~size:half
      and y22 = quadrant y ~row:half ~col:half ~size:half in
      let m1 = multiply (binop "+" x11 x22) (binop "+" y11 y22) in
      let m2 = multiply (binop "+" x21 x22) y11 in
      let m3 = multiply x11 (binop "-" y12 y22) in
      let m4 = multiply x22 (binop "-" y21 y11) in
      let m5 = multiply (binop "+" x11 x12) y22 in
      let m6 = multiply (binop "-" x21 x11) (binop "+" y11 y12) in
      let m7 = multiply (binop "-" x12 x22) (binop "+" y21 y22) in
      let c11 = combine4 "C11" m1 m4 m5 m7 in
      let c12 = binop "C12" m3 m5 in
      let c21 = binop "C21" m2 m4 in
      let c22 = combine4 "C22" m1 m2 m3 m6 in
      assemble ~size c11 c12 c21 c22
    end
  in
  ignore (multiply a bb);
  Dag.Builder.build ~verify_acyclic:false b
