open Graphio_graph

let n_vertices n = (2 * n * n) + (n * n * n) + (n * n)

let check n = if n < 1 then invalid_arg "Matmul.build: n must be >= 1"

(* Shared layout: A entries, then B entries, then per-(i,j) products and
   sum vertices in row-major (i, j) order — a topological creation order. *)
let build_with_sums n ~make_sum =
  check n;
  let b = Dag.Builder.create ~capacity_hint:(n_vertices n) () in
  let a_id = Array.make (n * n) 0 and b_id = Array.make (n * n) 0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      a_id.((i * n) + j) <- Dag.Builder.add_vertex ~label:(Printf.sprintf "A%d,%d" i j) b
    done
  done;
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      b_id.((i * n) + j) <- Dag.Builder.add_vertex ~label:(Printf.sprintf "B%d,%d" i j) b
    done
  done;
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let products =
        Array.init n (fun k ->
            let p =
              Dag.Builder.add_vertex ~label:(Printf.sprintf "P%d,%d,%d" i j k) b
            in
            Dag.Builder.add_edge b a_id.((i * n) + k) p;
            Dag.Builder.add_edge b b_id.((k * n) + j) p;
            p)
      in
      make_sum b i j products
    done
  done;
  Dag.Builder.build ~verify_acyclic:false b

let build n =
  build_with_sums n ~make_sum:(fun b i j products ->
      let s = Dag.Builder.add_vertex ~label:(Printf.sprintf "C%d,%d" i j) b in
      Array.iter (fun p -> Dag.Builder.add_edge b p s) products)

let build_binary_sums n =
  build_with_sums n ~make_sum:(fun b i j products ->
      if Array.length products = 1 then begin
        (* n = 1: C_ij is just the single product; add a copy vertex so the
           output is still a distinct labelled vertex. *)
        let s = Dag.Builder.add_vertex ~label:(Printf.sprintf "C%d,%d" i j) b in
        Dag.Builder.add_edge b products.(0) s
      end
      else begin
        let acc = ref products.(0) in
        for k = 1 to Array.length products - 1 do
          let label =
            if k = Array.length products - 1 then Printf.sprintf "C%d,%d" i j
            else Printf.sprintf "S%d,%d,%d" i j k
          in
          let s = Dag.Builder.add_vertex ~label b in
          Dag.Builder.add_edge b !acc s;
          Dag.Builder.add_edge b products.(k) s;
          acc := s
        done
      end)
