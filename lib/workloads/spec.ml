open Graphio_graph

let grammar =
  "fft:L, bhk:L, path:N, grid:R:C, matmul:N, matmul-binary:N, strassen:N, \
   inner:D, er:N:P[:SEED], union:K:SPEC"

exception Bad of string

let rec parse spec =
  let int_param name s =
    match int_of_string_opt s with
    | Some v -> v
    | None ->
        raise
          (Bad (Printf.sprintf "graph spec %S: %s %S is not an integer" spec name s))
  in
  let float_param name s =
    match float_of_string_opt s with
    | Some v -> v
    | None ->
        raise
          (Bad (Printf.sprintf "graph spec %S: %s %S is not a number" spec name s))
  in
  match
    match String.split_on_char ':' spec with
    | [ "fft"; l ] -> Ok (Fft.build (int_param "level count" l))
    | [ "bhk"; l ] -> Ok (Bhk.build (int_param "level count" l))
    | [ "path"; n ] ->
        Ok (Sequences.independent_chains ~count:1 ~length:(int_param "length" n))
    | [ "grid"; r; c ] ->
        Ok (Stencil.grid ~rows:(int_param "rows" r) ~cols:(int_param "cols" c))
    | [ "matmul"; n ] -> Ok (Matmul.build (int_param "size" n))
    | [ "matmul-binary"; n ] ->
        Ok (Matmul.build_binary_sums (int_param "size" n))
    | [ "strassen"; n ] -> Ok (Strassen.build (int_param "size" n))
    | [ "inner"; d ] -> Ok (Inner_product.build (int_param "dimension" d))
    | [ "er"; n; p ] ->
        Ok (Er.gnp ~n:(int_param "size" n) ~p:(float_param "edge probability" p) ~seed:1)
    | [ "er"; n; p; seed ] ->
        Ok
          (Er.gnp ~n:(int_param "size" n)
             ~p:(float_param "edge probability" p)
             ~seed:(int_param "seed" seed))
    | "union" :: k :: rest when rest <> [] -> (
        (* disjoint union of K copies of the inner spec — the canonical
           multi-component input for the decomposed solver path *)
        let copies = int_param "copy count" k in
        if copies < 1 then
          raise
            (Bad
               (Printf.sprintf "graph spec %S: copy count must be >= 1" spec));
        match parse (String.concat ":" rest) with
        | Ok g -> Ok (Dag.replicate g ~copies)
        | Error _ as e -> e)
    | _ ->
        Error
          (Printf.sprintf "unknown graph spec %S (expected %s)" spec grammar)
  with
  | result -> result
  | exception Bad msg -> Error msg
