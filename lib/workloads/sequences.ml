open Graphio_graph

let horner d =
  if d < 1 then invalid_arg "Sequences.horner: degree must be >= 1";
  let b = Dag.Builder.create ~capacity_hint:((3 * d) + 2) () in
  let x = Dag.Builder.add_vertex ~label:"x" b in
  let coeffs =
    Array.init (d + 1) (fun i ->
        Dag.Builder.add_vertex ~label:(Printf.sprintf "a%d" (d - i)) b)
  in
  (* b_d = a_d; b_k = a_k + b_{k+1} * x *)
  let acc = ref coeffs.(0) in
  for k = 1 to d do
    let m = Dag.Builder.add_vertex ~label:(Printf.sprintf "m%d" k) b in
    Dag.Builder.add_edge b !acc m;
    Dag.Builder.add_edge b x m;
    let s = Dag.Builder.add_vertex ~label:(Printf.sprintf "s%d" k) b in
    Dag.Builder.add_edge b m s;
    Dag.Builder.add_edge b coeffs.(k) s;
    acc := s
  done;
  Dag.Builder.build ~verify_acyclic:false b

let prefix_sum n =
  if n < 1 then invalid_arg "Sequences.prefix_sum: n must be >= 1";
  let b = Dag.Builder.create ~capacity_hint:(2 * n) () in
  let inputs =
    Array.init n (fun i -> Dag.Builder.add_vertex ~label:(Printf.sprintf "x%d" i) b)
  in
  let acc = ref inputs.(0) in
  for i = 1 to n - 1 do
    let s = Dag.Builder.add_vertex ~label:(Printf.sprintf "s%d" i) b in
    Dag.Builder.add_edge b !acc s;
    Dag.Builder.add_edge b inputs.(i) s;
    acc := s
  done;
  Dag.Builder.build ~verify_acyclic:false b

let independent_chains ~count ~length =
  if count < 1 || length < 1 then
    invalid_arg "Sequences.independent_chains: count and length must be >= 1";
  let b = Dag.Builder.create ~capacity_hint:(count * length) () in
  for c = 0 to count - 1 do
    let prev = ref (-1) in
    for i = 0 to length - 1 do
      let v = Dag.Builder.add_vertex ~label:(Printf.sprintf "c%d_%d" c i) b in
      if i > 0 then Dag.Builder.add_edge b !prev v;
      prev := v
    done
  done;
  Dag.Builder.build ~verify_acyclic:false b
