(** Sequential computation graphs: Horner evaluation and prefix sums.

    Deliberately low-parallelism shapes that bracket the evaluation from
    the other side: long dependence chains keep working sets tiny, so
    useful lower-bound methods must (and ours do) report ~0 for them —
    a graph-aware method's "specificity" check, complementing the
    high-connectivity workloads where it must report large bounds. *)

val horner : int -> Graphio_graph.Dag.t
(** [horner d]: evaluate a degree-[d] polynomial by Horner's rule
    ([d >= 1]).  Vertices: [x], the [d+1] coefficients, and [d]
    multiply/add pairs; [x] feeds every multiply (out-degree [d]). *)

val prefix_sum : int -> Graphio_graph.Dag.t
(** [prefix_sum n]: the sequential scan of [n] inputs ([n >= 1]):
    [s_i = s_{i-1} + x_i].  [2n - 1] vertices; every prefix is an output
    (sink) except those feeding the next. *)

val independent_chains : count:int -> length:int -> Graphio_graph.Dag.t
(** [count] disjoint chains of [length] vertices each — the disconnected
    extreme (tests the bounds' behaviour on graphs with many zero
    Laplacian eigenvalues). *)
