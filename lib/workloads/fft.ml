open Graphio_graph

let n_points l = 1 lsl l

let n_vertices l = (l + 1) * n_points l

let vertex ~l ~col ~row =
  if col < 0 || col > l then invalid_arg "Fft.vertex: column out of range";
  if row < 0 || row >= n_points l then invalid_arg "Fft.vertex: row out of range";
  (col * n_points l) + row

let build l =
  if l < 0 then invalid_arg "Fft.build: negative level";
  let rows = n_points l in
  let b = Dag.Builder.create ~capacity_hint:(n_vertices l) () in
  for c = 0 to l do
    for r = 0 to rows - 1 do
      let label =
        if c = 0 then Printf.sprintf "x%d" r else Printf.sprintf "b%d_%d" c r
      in
      ignore (Dag.Builder.add_vertex ~label b)
    done
  done;
  for c = 1 to l do
    let stride = 1 lsl (c - 1) in
    for r = 0 to rows - 1 do
      let v = vertex ~l ~col:c ~row:r in
      Dag.Builder.add_edge b (vertex ~l ~col:(c - 1) ~row:r) v;
      Dag.Builder.add_edge b (vertex ~l ~col:(c - 1) ~row:(r lxor stride)) v
    done
  done;
  Dag.Builder.build ~verify_acyclic:false b
