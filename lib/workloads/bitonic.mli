(** Bitonic sorting-network computation graph.

    Batcher's bitonic sorter on [2^l] wires has [l(l+1)/2] compare-exchange
    stages; each comparator consumes two wire values and produces the
    (min, max) pair — two vertices sharing the same two parents.  The
    resulting DAG is butterfly-like but denser in columns, giving the
    evaluation a fifth "structured" family beyond the paper's four
    (bitonic networks are a standard I/O-complexity object: their depth is
    [Θ(log² n)] vs the FFT's [Θ(log n)]). *)

val build : int -> Graphio_graph.Dag.t
(** [build l]: sorting network for [2^l] values ([l >= 0]).  Vertices:
    [2^l * (1 + l(l+1))] — the input column plus two vertices per
    comparator position per wire-pair... concretely one vertex per wire
    per stage, with [l(l+1)/2] stages.  Creation order topological. *)

val n_stages : int -> int
(** [l (l+1) / 2]. *)

val n_vertices : int -> int
(** [2^l * (1 + n_stages l)]. *)
