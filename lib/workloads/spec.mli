(** Textual graph-family specs ([fft:8], [er:200:0.05], ...) shared by the
    CLI and the bound server: one grammar, one error message, wherever a
    graph is named by a string. *)

val grammar : string
(** Human-readable list of accepted forms, embedded in error messages. *)

val parse : string -> (Graphio_graph.Dag.t, string) result
(** Build the named graph.  [Error] carries a one-line description for
    unknown families and malformed parameters; generator-level failures
    (e.g. out-of-range probabilities) raise as usual. *)
