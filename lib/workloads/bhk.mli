(** Bellman–Held–Karp computation graph for the [l]-city TSP (Section 5.1 /
    Figure 4): the boolean hypercube [Q_l].

    Vertices are the [2^l] "visited cities" bitmasks; an edge goes from
    mask [k1] to [k2] when [k2] sets exactly one extra bit of [k1] (the
    dynamic program extends the optimal paths of a subset by one city).
    The source is the empty mask and the sink the full mask; in-degree of a
    mask is its popcount, out-degree [l - popcount]; the undirected support
    is the hypercube whose spectrum
    {!Graphio_spectra.Hypercube_spectra.spectrum} gives in closed form. *)

val build : int -> Graphio_graph.Dag.t
(** [build l] for [l >= 0]: vertex id = bitmask, so creation order
    (numeric) is topological. *)

val n_vertices : int -> int
(** [2^l]. *)

val popcount : int -> int
(** Bits set (exposed for tests and degree reasoning). *)
