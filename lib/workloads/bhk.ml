open Graphio_graph

let n_vertices l = 1 lsl l

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + (x land 1)) (x lsr 1) in
  go 0 x

let build l =
  if l < 0 then invalid_arg "Bhk.build: negative city count";
  if l > 25 then invalid_arg "Bhk.build: city count too large (2^l vertices)";
  let n = n_vertices l in
  let b = Dag.Builder.create ~capacity_hint:n () in
  for mask = 0 to n - 1 do
    ignore (Dag.Builder.add_vertex ~label:(Printf.sprintf "S%x" mask) b)
  done;
  for mask = 0 to n - 1 do
    for bit = 0 to l - 1 do
      if mask land (1 lsl bit) = 0 then
        Dag.Builder.add_edge b mask (mask lor (1 lsl bit))
    done
  done;
  Dag.Builder.build ~verify_acyclic:false b
