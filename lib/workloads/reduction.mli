(** Tree-reduction computation graphs.

    Combining [n] inputs with a balanced [arity]-ary operator tree (sums,
    maxima, ...).  Reductions are the cheapest-possible I/O pattern — the
    working set never exceeds the tree depth — so they anchor the
    low-connectivity end of the evaluation spectrum (the spectral bound is
    rightly trivial on them, and the simulator confirms near-zero I/O). *)

val build : ?arity:int -> int -> Graphio_graph.Dag.t
(** [build n] reduces [n] inputs ([n >= 1]) with a balanced binary tree
    (or [~arity >= 2]); vertex creation order is topological.  A single
    input yields the 1-vertex graph. *)

val n_vertices : ?arity:int -> int -> int
(** Vertex count of {!build} (inputs + internal nodes). *)
