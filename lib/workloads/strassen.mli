(** Strassen matrix-multiplication computation graph (Section 6.2, item 3).

    Classic Strassen recursion: multiplying two [n x n] matrices splits
    them into quadrants, forms 7 recursive products [M1..M7] of quadrant
    sums/differences, and combines them into the quadrants of [C].
    Element-wise quadrant additions are binary vertices; the two 4-term
    combinations ([C11 = M1 + M4 − M5 + M7], [C22 = M1 − M2 + M3 + M6])
    are single 4-ary vertices, so the maximum in-degree is 4 — matching
    the Figure 9 caption.  [n] must be a power of two (the paper evaluates
    exactly those sizes). *)

val build : int -> Graphio_graph.Dag.t
(** [build n]: raises [Invalid_argument] unless [n] is a positive power of
    two. *)

val n_vertices : int -> int
(** Closed-form vertex count of {!build} (validated in tests):
    [2n^2] inputs plus [ops(n)] where [ops(1) = 1] and
    [ops(n) = 7 ops(n/2) + 14 (n/2)^2]. *)
