open Graphio_graph

let build d =
  if d < 1 then invalid_arg "Inner_product.build: dimension must be >= 1";
  let b = Dag.Builder.create ~capacity_hint:((4 * d) - 1) () in
  let xs = Array.init d (fun i -> Dag.Builder.add_vertex ~label:(Printf.sprintf "x%d" i) b) in
  let ys = Array.init d (fun i -> Dag.Builder.add_vertex ~label:(Printf.sprintf "y%d" i) b) in
  let prods =
    Array.init d (fun i ->
        let p = Dag.Builder.add_vertex ~label:(Printf.sprintf "x%d*y%d" i i) b in
        Dag.Builder.add_edge b xs.(i) p;
        Dag.Builder.add_edge b ys.(i) p;
        p)
  in
  let acc = ref prods.(0) in
  for i = 1 to d - 1 do
    let s = Dag.Builder.add_vertex ~label:(Printf.sprintf "sum%d" i) b in
    Dag.Builder.add_edge b !acc s;
    Dag.Builder.add_edge b prods.(i) s;
    acc := s
  done;
  Dag.Builder.build ~verify_acyclic:false b

let figure2 () =
  (* Figure 2: seven vertices numbered by evaluation order (we use 0-based
     ids for the 1-based figure labels), partitioned into three contiguous
     segments: {1,2,3}, {4,5}, {6,7}. *)
  let edges =
    [ (0, 2); (1, 2); (0, 3); (2, 4); (3, 4); (2, 5); (4, 6); (5, 6) ]
  in
  let labels = Array.init 7 (fun i -> string_of_int (i + 1)) in
  let g = Dag.of_edges ~labels ~n:7 edges in
  let partition = [| 0; 0; 0; 1; 1; 2; 2 |] in
  (g, partition)
