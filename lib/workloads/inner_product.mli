(** Inner-product computation graph (Figure 1) and the Figure 2 partition
    illustration — the paper's two didactic graphs, used by the quickstart
    example and as tiny fixtures across the test suite. *)

val build : int -> Graphio_graph.Dag.t
(** [build d]: inner product of two [d]-element vectors — [2d] inputs, [d]
    product vertices and [d - 1] chained sum vertices ([d >= 1]; for
    [d = 1] the single product is the output, [3] vertices total).
    [build 2] is exactly Figure 1 (7 vertices). *)

val figure2 : unit -> Graphio_graph.Dag.t * int array
(** The 7-vertex graph of Figure 2 together with the valid 3-segment
    partition shown there (vertex -> segment index, segments contiguous in
    the natural order). *)
