(** Fast Fourier Transform computation graph (the unwrapped butterfly
    [B_l], Section 5.2 / Figure 5).

    A [2^l]-point radix-2 FFT has [(l+1)] columns of [2^l] vertices.
    Column 0 holds the inputs; vertex [(c, r)] for [c >= 1] is computed
    from [(c-1, r)] and [(c-1, r xor 2^{c-1})] — the classic butterfly
    wiring.  Every non-input vertex has in-degree 2; every non-output
    vertex has out-degree 2; the undirected support is exactly the
    butterfly graph whose spectrum {!Graphio_spectra.Butterfly_spectra}
    gives in closed form. *)

val build : int -> Graphio_graph.Dag.t
(** [build l] for [l >= 0]: the [2^l]-point FFT graph with
    [(l+1) * 2^l] vertices.  Vertex ids are column-major:
    [id = c * 2^l + r], which makes the creation order topological. *)

val vertex : l:int -> col:int -> row:int -> int
(** Vertex id of column [col] ([0..l]), row [row] ([0..2^l-1]). *)

val n_vertices : int -> int
(** [(l+1) * 2^l]. *)

val n_points : int -> int
(** [2^l]. *)
