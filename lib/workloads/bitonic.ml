open Graphio_graph

let n_stages l = l * (l + 1) / 2

let n_vertices l = (1 lsl l) * (1 + n_stages l)

(* Standard iterative bitonic network: for k = 2, 4, .., 2^l (block size)
   and j = k/2, k/4, .., 1 (stride), wires pair up as (i, i xor j) and
   every pair carries one comparator, so each stage is a full exchange
   column: every output vertex depends on both wires of its pair (the min
   and the max each read both operands).  The stage schedule — not the
   column shape — is what distinguishes the bitonic network from the FFT
   butterfly: it has l(l+1)/2 columns instead of l. *)
let build l =
  if l < 0 then invalid_arg "Bitonic.build: negative level";
  let n = 1 lsl l in
  let b = Dag.Builder.create ~capacity_hint:(n_vertices l) () in
  let current =
    ref (Array.init n (fun i -> Dag.Builder.add_vertex ~label:(Printf.sprintf "w%d" i) b))
  in
  let stage = ref 0 in
  let k = ref 2 in
  while !k <= n do
    let j = ref (!k / 2) in
    while !j >= 1 do
      incr stage;
      let prev = !current in
      current :=
        Array.init n (fun i ->
            let partner = i lxor !j in
            let v =
              Dag.Builder.add_vertex ~label:(Printf.sprintf "s%d_%d" !stage i) b
            in
            Dag.Builder.add_edge b prev.(i) v;
            Dag.Builder.add_edge b prev.(partner) v;
            v);
      j := !j / 2
    done;
    k := !k * 2
  done;
  Dag.Builder.build ~verify_acyclic:false b
