(** Naive matrix-multiplication computation graphs (Section 6.2, item 2).

    For [C = A * B] with [n x n] matrices, [C_ij] is the dot product of row
    [i] of [A] and column [j] of [B].  Two sum shapes are provided:

    - {!build} (the paper's): each dot product is [n] product vertices
      feeding a {e single} [n]-ary sum vertex — max in-degree [n], matching
      the Figure 8 caption ("Max in-degree n");
    - {!build_binary_sums}: products reduced by a chain of binary adds —
      max in-degree 2, useful for ablations on how graph shape affects the
      bound.

    Input vertices: [2 n^2] (the entries of [A] and [B]); each [A_ik] has
    out-degree [n] (used by every [C_ij] in row [i]), likewise [B_kj]. *)

val build : int -> Graphio_graph.Dag.t
(** [build n] for [n >= 1]: [2n^2 + n^3 + n^2] vertices. *)

val build_binary_sums : int -> Graphio_graph.Dag.t
(** [2n^2 + n^3 + n^2 (n-1)] vertices (for [n >= 2]); max in-degree 2. *)

val n_vertices : int -> int
(** Vertex count of {!build}. *)
