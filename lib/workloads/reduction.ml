open Graphio_graph

let check ?(arity = 2) n =
  if arity < 2 then invalid_arg "Reduction.build: arity must be >= 2";
  if n < 1 then invalid_arg "Reduction.build: n must be >= 1";
  arity

let internal_nodes ~arity n =
  (* number of internal nodes when reducing n leaves arity-at-a-time *)
  let count = ref 0 and level = ref n in
  while !level > 1 do
    let next = (!level + arity - 1) / arity in
    count := !count + next;
    level := next
  done;
  !count

let n_vertices ?arity n =
  let arity = check ?arity n in
  n + internal_nodes ~arity n

let build ?arity n =
  let arity = check ?arity n in
  let b = Dag.Builder.create ~capacity_hint:(n * 2) () in
  let current =
    ref
      (Array.init n (fun i ->
           Dag.Builder.add_vertex ~label:(Printf.sprintf "x%d" i) b))
  in
  let level = ref 0 in
  while Array.length !current > 1 do
    incr level;
    let prev = !current in
    let count = (Array.length prev + arity - 1) / arity in
    current :=
      Array.init count (fun i ->
          let v =
            Dag.Builder.add_vertex ~label:(Printf.sprintf "r%d_%d" !level i) b
          in
          let lo = i * arity in
          let hi = min (Array.length prev - 1) (lo + arity - 1) in
          for j = lo to hi do
            Dag.Builder.add_edge b prev.(j) v
          done;
          v)
  done;
  Dag.Builder.build ~verify_acyclic:false b
