#!/usr/bin/env bash
# Guard the eigensolver hot path against regressions.
#
# Reads the quick-mode eigen section of a bench --json dump and compares
# it against the committed baseline (bench/eigen_baseline.json):
#
#   - the Bigarray kernel must stay bitwise-equal to the reference
#     float-array kernel (<family>_kernel_bitwise);
#   - the spectral bounds computed from auto-degree and warm-started
#     solves must still agree with the fixed-degree cold solve
#     (<family>_accuracy_ok);
#   - the fixed-degree matvec count must not grow (it is deterministic,
#     so any growth is a solver regression, not noise);
#   - the best adaptive count, min(auto, warm), must stay within 10% of
#     the baseline — the auto-tuner and warm-start wins are the point of
#     the hot path and must not quietly erode.
#
# Matvec counts are pure function of the solver code (no wall time, no
# scheduling), so this guard is stable across machines.
#
# Usage: check_eigen_baseline.sh BENCH_JSON [BASELINE_JSON]
set -euo pipefail

bench_json=${1:?usage: check_eigen_baseline.sh BENCH_JSON [BASELINE_JSON]}
baseline=${2:-$(dirname "$0")/../bench/eigen_baseline.json}

field() { # field FILE KEY -> bare value (number or true/false)
  grep -o "\"$2\":[^,}]*" "$1" | head -n1 | cut -d: -f2
}

fail=0
for fam in bhk grid_perturbed random_dag; do
  fixed=$(field "$bench_json" "${fam}_fixed_matvecs")
  auto=$(field "$bench_json" "${fam}_auto_matvecs")
  warm=$(field "$bench_json" "${fam}_warm_matvecs")
  bitwise=$(field "$bench_json" "${fam}_kernel_bitwise")
  accurate=$(field "$bench_json" "${fam}_accuracy_ok")
  base_fixed=$(field "$baseline" "${fam}_fixed_matvecs")
  base_best=$(field "$baseline" "${fam}_best_matvecs")

  if [ -z "$fixed" ] || [ -z "$auto" ] || [ -z "$warm" ]; then
    echo "FAIL $fam: eigen section missing from $bench_json"
    fail=1
    continue
  fi
  if [ "$bitwise" != "true" ]; then
    echo "FAIL $fam: Bigarray kernel no longer bitwise-equal to the reference kernel"
    fail=1
  fi
  if [ "$accurate" != "true" ]; then
    echo "FAIL $fam: auto/warm bound disagrees with the cold fixed-degree bound"
    fail=1
  fi
  if [ "$fixed" -gt "$base_fixed" ]; then
    echo "FAIL $fam: fixed-degree matvecs regressed ($fixed > baseline $base_fixed)"
    fail=1
  fi
  best=$auto
  [ "$warm" -lt "$best" ] && best=$warm
  # 10% slack, integer arithmetic: best <= base_best * 1.10
  if [ $((best * 10)) -gt $((base_best * 11)) ]; then
    echo "FAIL $fam: best adaptive matvecs regressed ($best > baseline $base_best + 10%)"
    fail=1
  fi
  echo "ok   $fam: fixed $fixed (baseline $base_fixed), best $best (baseline $base_best), bitwise $bitwise"
done

exit $fail
