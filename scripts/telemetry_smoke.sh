#!/usr/bin/env bash
# Telemetry smoke test: boot a serve instance with the full telemetry
# plane enabled, drive one bound request and one metrics request
# through it, then assert that
#
#   1. the metrics reply embeds a Prometheus rendering that parses
#      under the text exposition format 0.0.4 grammar, and
#   2. the request id minted for the bound request appears in the
#      structured event log AND in the Chrome span trace,
#
# i.e. a served request is reconstructable end-to-end from telemetry
# alone.  Run from the repo root after `dune build`; the work dir (and
# the trace artifact CI uploads) lands in $SMOKE_DIR, default
# _smoke_telemetry/.
#
# Requires: bash, python3, a built _build/default/bin/graphio.exe
# (override with $GRAPHIO).

set -euo pipefail

GRAPHIO=${GRAPHIO:-_build/default/bin/graphio.exe}
SMOKE_DIR=${SMOKE_DIR:-_smoke_telemetry}

if [ ! -x "$GRAPHIO" ]; then
  echo "telemetry_smoke: $GRAPHIO not found or not executable (run dune build first)" >&2
  exit 2
fi
GRAPHIO=$(cd "$(dirname "$GRAPHIO")" && pwd)/$(basename "$GRAPHIO")

rm -rf "$SMOKE_DIR"
mkdir -p "$SMOKE_DIR"
cd "$SMOKE_DIR"

fail() { echo "telemetry_smoke: FAIL: $*" >&2; exit 1; }
ok() { echo "telemetry_smoke: ok: $*"; }

unset GRAPHIO_CACHE_DIR GRAPHIO_FAULTS || true

"$GRAPHIO" serve --socket tel.sock -j 2 \
  --log events.ndjson --log-level debug --trace trace.json \
  2>serve.stderr &
SRV=$!
trap 'kill "$SRV" 2>/dev/null || true' EXIT

# Wait for the socket to appear.
for _ in $(seq 1 100); do
  [ -S tel.sock ] && break
  sleep 0.1
done
[ -S tel.sock ] || fail "server socket never appeared"

# One bound request; keep the reply so we can pull the request id out.
printf '{"spec":"bhk:6","m":2,"method":"standard","id":1}\n' \
  | "$GRAPHIO" client --socket tel.sock > reply.json
grep -q '"ok":true' reply.json || fail "bound request failed: $(cat reply.json)"
RID=$(sed -E 's/.*"rid":"([^"]+)".*/\1/' reply.json)
case "$RID" in
  req-*) ok "bound reply carries rid $RID" ;;
  *) fail "no request id in reply: $(cat reply.json)" ;;
esac

# The metrics op, live, no restart.
printf '{"op":"metrics","id":"smoke"}\n' \
  | "$GRAPHIO" client --socket tel.sock > metrics.json
grep -q '"ok":true' metrics.json || fail "metrics request failed: $(cat metrics.json)"

# Validate the embedded Prometheus rendering against the text
# exposition format grammar: HELP/TYPE comments and sample lines with
# sane metric names, optional le-labels, and float values; histogram
# buckets must be cumulative and close with +Inf == _count.
python3 - <<'PY' metrics.json || fail "Prometheus grammar check failed"
import json, math, re, sys

with open(sys.argv[1]) as f:
    reply = json.load(f)

text = reply["prometheus"]
lat = reply["latency"]
assert lat["count"] >= 1, "latency.count must be >= 1 after a request"
assert lat["p50_s"] > 0 and lat["p95_s"] > 0 and lat["p99_s"] > 0, \
    "latency quantiles must be non-zero after a request"

NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
re_help = re.compile(rf"^# HELP ({NAME}) .+$")
re_type = re.compile(rf"^# TYPE ({NAME}) (counter|gauge|histogram)$")
re_sample = re.compile(rf'^({NAME})(\{{le="([^"]+)"\}})? (\S+)$')

types = {}
buckets = {}   # base name -> list of (le, cumulative count)
counts = {}    # base name -> _count value
n_samples = 0
for line in text.splitlines():
    if not line:
        continue
    if line.startswith("# HELP "):
        assert re_help.match(line), f"bad HELP line: {line!r}"
        continue
    if line.startswith("# TYPE "):
        m = re_type.match(line)
        assert m, f"bad TYPE line: {line!r}"
        types[m.group(1)] = m.group(2)
        continue
    m = re_sample.match(line)
    assert m, f"bad sample line: {line!r}"
    name, le, value = m.group(1), m.group(3), m.group(4)
    v = math.inf if value == "+Inf" else float(value)  # raises on junk
    n_samples += 1
    if name.endswith("_bucket"):
        assert le is not None, f"bucket sample without le: {line!r}"
        base = name[: -len("_bucket")]
        lev = math.inf if le == "+Inf" else float(le)
        buckets.setdefault(base, []).append((lev, v))
    elif name.endswith("_count"):
        counts[name[: -len("_count")]] = v

assert n_samples > 0, "no samples in exposition"
assert any(t == "histogram" for t in types.values()), "no histogram exposed"
for base, bs in buckets.items():
    les = [le for le, _ in bs]
    cums = [c for _, c in bs]
    assert les == sorted(les), f"{base}: bucket bounds not ascending"
    assert les[-1] == math.inf, f"{base}: missing +Inf bucket"
    assert cums == sorted(cums), f"{base}: bucket counts not cumulative"
    assert base in counts and cums[-1] == counts[base], \
        f"{base}: +Inf bucket != _count"
print(f"prometheus ok: {n_samples} samples, {len(buckets)} histogram(s)")
PY
ok "Prometheus exposition parses"

# Drain; the trace and any owned log channel are flushed on exit.
printf '{"op":"shutdown"}\n' | "$GRAPHIO" client --socket tel.sock >/dev/null
wait "$SRV"
trap - EXIT

grep -q "\"rid\":\"$RID\"" events.ndjson || fail "rid $RID absent from event log"
grep -q '"event":"server.request"' events.ndjson || fail "no server.request event"
grep -q '"event":"server.reply"' events.ndjson || fail "no server.reply event"
ok "rid $RID present in event log"

grep -q "\"rid\":\"$RID\"" trace.json || fail "rid $RID absent from span trace"
python3 -c 'import json,sys; json.load(open(sys.argv[1]))' trace.json \
  || fail "trace.json is not valid JSON"
ok "rid $RID present in Chrome trace"

echo "telemetry_smoke: PASS"
